// Fault injection and resilience: typed error surfacing at the api layer,
// retry/backoff/degradation in the serving layer, fault observability
// (counters + trace events), and bit-identical fault replay across host
// worker counts (DESIGN.md "Fault model & resilience").
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/algorithms.h"
#include "api/session.h"
#include "cpu/bfs_serial.h"
#include "cpu/sssp_serial.h"
#include "graph/gen/generators.h"
#include "service/graph_service.h"
#include "simt/exec_pool.h"
#include "simt/fault.h"
#include "trace/counters.h"
#include "trace/jsonl_trace.h"
#include "trace/trace_sink.h"

namespace {

adaptive::Graph make_graph(std::uint32_t n = 1500, std::uint32_t m = 4500,
                           std::uint64_t seed = 7) {
  return adaptive::Graph::from_csr(graph::gen::erdos_renyi(n, m, seed));
}

svc::QueryRequest bfs_req(svc::GraphId gid, graph::NodeId source) {
  svc::QueryRequest req;
  req.algo = svc::Algo::bfs;
  req.graph = gid;
  req.source = source;
  return req;
}

simt::FaultPlan plan(const std::string& spec) {
  return simt::FaultPlan::parse(spec);
}

// ---- plan parsing & injector determinism -------------------------------------

TEST(FaultPlan, ParseRoundTripsTheGrammar) {
  const auto p = plan(
      "seed=99, kernel.p=0.5, transfer.p=0.25, alloc.at=3, kernel.at=0, "
      "kernel.at=7, dead.after=100");
  EXPECT_EQ(p.seed, 99u);
  EXPECT_DOUBLE_EQ(p.p_kernel, 0.5);
  EXPECT_DOUBLE_EQ(p.p_transfer, 0.25);
  ASSERT_EQ(p.alloc_at.size(), 1u);
  EXPECT_EQ(p.alloc_at[0], 3u);
  ASSERT_EQ(p.kernel_at.size(), 2u);
  EXPECT_EQ(p.dead_after, 100u);
  EXPECT_FALSE(p.empty());
  EXPECT_FALSE(p.summary().empty());
  EXPECT_TRUE(simt::FaultPlan::parse("").empty());
}

TEST(FaultPlan, MalformedSpecAborts) {
  EXPECT_DEATH(simt::FaultPlan::parse("kernel.p=not_a_number"), "");
  EXPECT_DEATH(simt::FaultPlan::parse("bogus.key=1"), "");
}

TEST(FaultInjector, DecisionsAreAPureFunctionOfSeedAndIndex) {
  auto roll = [](std::uint64_t seed) {
    simt::FaultInjector inj;
    simt::FaultPlan p;
    p.seed = seed;
    p.p_kernel = 0.3;
    inj.install(p);
    std::vector<bool> fates;
    for (int i = 0; i < 64; ++i) fates.push_back(inj.next(simt::FaultKind::kernel).fail);
    return fates;
  };
  EXPECT_EQ(roll(1), roll(1));         // replayable
  EXPECT_NE(roll(1), roll(2));         // seed-sensitive
}

TEST(FaultInjector, DeadAfterKillsEveryLaterOp) {
  simt::FaultInjector inj;
  simt::FaultPlan p;
  p.dead_after = 2;
  inj.install(p);
  EXPECT_FALSE(inj.next(simt::FaultKind::kernel).fail);
  EXPECT_FALSE(inj.next(simt::FaultKind::transfer).fail);
  const auto d = inj.next(simt::FaultKind::alloc);
  EXPECT_TRUE(d.fail);
  EXPECT_TRUE(d.permanent);
  EXPECT_TRUE(inj.device_dead());
  EXPECT_TRUE(inj.next(simt::FaultKind::kernel).permanent);
}

// ---- api layer: faults become typed error Results ----------------------------

TEST(ApiResilience, KernelFaultReturnsTypedErrorAndReclaimsMemory) {
  simt::Device dev;
  const auto g = make_graph();
  dev.set_fault_plan(plan("kernel.at=0"));
  const std::uint64_t before = dev.mem_mark();
  const auto out = adaptive::bfs(dev, g, 0);
  EXPECT_EQ(out.status, adaptive::Status::error);
  EXPECT_EQ(out.code, adaptive::ErrorCode::kernel_fault);
  EXPECT_FALSE(out.error.empty());
  // The failed attempt's device allocations were reclaimed.
  EXPECT_EQ(dev.mem_mark(), before);
  // The device survives a transient fault: the op index has advanced past
  // the planned failure, so the same call now succeeds.
  EXPECT_TRUE(dev.healthy());
  const auto retry = adaptive::bfs(dev, g, 0);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.level, cpu::bfs(g.csr(), 0).level);
}

TEST(ApiResilience, PermanentFaultMapsToDeviceLost) {
  simt::Device dev;
  const auto g = make_graph();
  dev.set_fault_plan(plan("dead.after=1"));
  const auto out = adaptive::bfs(dev, g, 0);
  EXPECT_EQ(out.status, adaptive::Status::error);
  EXPECT_EQ(out.code, adaptive::ErrorCode::device_lost);
  EXPECT_FALSE(dev.healthy());
}

TEST(ApiResilience, SessionDegradesToCpuWhenDeviceDead) {
  adaptive::Session ses;
  auto g = make_graph();
  g.set_uniform_weights(1, 20);
  ses.register_graph(g);
  ses.device().set_fault_plan(plan("dead.after=1"));
  // Kill the device with one doomed query.
  (void)ses.bfs(g, 0);
  ASSERT_FALSE(ses.device().healthy());
  // Every algorithm still answers, exactly, via the CPU oracle.
  const auto b = ses.bfs(g, 3);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b.degraded);
  EXPECT_EQ(b.level, cpu::bfs(g.csr(), 3).level);
  const auto s = ses.sssp(g, 5);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s.degraded);
  EXPECT_EQ(s.dist, cpu::dijkstra(g.csr(), 5).dist);
  const auto c = ses.cc(g);
  EXPECT_TRUE(c.ok());
  EXPECT_TRUE(c.degraded);
  ses.unregister_graph(g);
}

// ---- serving layer: retry, degradation, typed rejection ----------------------

TEST(ServiceResilience, TransientFaultIsRetriedToSuccess) {
  svc::ServiceOptions opts;
  opts.batch_bfs = false;
  svc::GraphService service(opts);
  const auto gid = service.add_graph(make_graph());
  const graph::Csr csr = service.graph(gid).csr();
  service.set_fault_plan(plan("kernel.at=0"));
  service.submit(bfs_req(gid, 2));
  const auto outcomes = service.drain();
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].ok());
  EXPECT_EQ(outcomes[0].retries, 1u);
  EXPECT_FALSE(outcomes[0].degraded);
  EXPECT_EQ(outcomes[0].bfs().level, cpu::bfs(csr, 2).level);
  // The retry consumed modeled backoff time, not wall-clock.
  EXPECT_GT(outcomes[0].finish_us, 0.0);
}

TEST(ServiceResilience, ExhaustedRetriesDegradeToExactCpuAnswer) {
  svc::ServiceOptions opts;
  opts.batch_bfs = false;
  svc::GraphService service(opts);
  const auto gid = service.add_graph(make_graph());
  const graph::Csr csr = service.graph(gid).csr();
  service.set_fault_plan(plan("kernel.p=1"));  // every attempt faults
  service.submit(bfs_req(gid, 4));
  const auto outcomes = service.drain();
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].ok());
  EXPECT_TRUE(outcomes[0].degraded);
  EXPECT_EQ(outcomes[0].retries, service.options().resilience.max_retries);
  EXPECT_EQ(outcomes[0].bfs().level, cpu::bfs(csr, 4).level);
  EXPECT_TRUE(service.device_healthy());  // transient faults don't kill it
}

TEST(ServiceResilience, DegradationOffSurfacesTypedFailure) {
  struct Case {
    const char* spec;
    adaptive::ErrorCode code;
  };
  const Case cases[] = {
      {"kernel.p=1", adaptive::ErrorCode::kernel_fault},
      {"transfer.p=1", adaptive::ErrorCode::transfer_failed},
      {"alloc.p=1", adaptive::ErrorCode::device_oom},
      {"dead.after=1", adaptive::ErrorCode::device_lost},
  };
  for (const Case& c : cases) {
    svc::ServiceOptions opts;
    opts.batch_bfs = false;
    opts.resilience.degrade_to_cpu = false;
    opts.resilience.max_retries = 0;
    svc::GraphService service(opts);
    const auto gid = service.add_graph(make_graph());
    service.set_fault_plan(plan(c.spec));
    service.submit(bfs_req(gid, 1));
    const auto outcomes = service.drain();
    ASSERT_EQ(outcomes.size(), 1u) << c.spec;
    EXPECT_EQ(outcomes[0].status, adaptive::Status::error) << c.spec;
    EXPECT_EQ(outcomes[0].code, c.code)
        << c.spec << " -> " << adaptive::error_code_name(outcomes[0].code);
    EXPECT_FALSE(outcomes[0].error.empty());
  }
}

TEST(ServiceResilience, DeadDeviceAnswersEveryQueryDegraded) {
  svc::ServiceOptions opts;
  opts.batch_bfs = false;
  svc::GraphService service(opts);
  const auto gid = service.add_graph(make_graph());
  const graph::Csr csr = service.graph(gid).csr();
  service.set_fault_plan(plan("dead.after=1"));
  for (graph::NodeId s = 0; s < 6; ++s) service.submit(bfs_req(gid, s));
  const auto outcomes = service.drain();
  ASSERT_EQ(outcomes.size(), 6u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << "query " << i;
    EXPECT_TRUE(outcomes[i].degraded) << "query " << i;
    EXPECT_EQ(outcomes[i].bfs().level,
              cpu::bfs(csr, static_cast<graph::NodeId>(i)).level);
  }
  EXPECT_FALSE(service.device_healthy());
  // Degraded queries serialize on the modeled single host core: finish
  // times are strictly increasing.
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_GT(outcomes[i].finish_us, outcomes[i - 1].finish_us);
  }
}

TEST(ServiceResilience, BatchFaultFallsBackToSingleQueries) {
  svc::ServiceOptions opts;
  opts.concurrency = 1;  // one stream => the whole prefix batches
  svc::GraphService service(opts);
  const auto gid = service.add_graph(make_graph());
  const graph::Csr csr = service.graph(gid).csr();
  service.set_fault_plan(plan("kernel.at=0"));  // first fused launch faults
  for (graph::NodeId s = 0; s < 8; ++s) service.submit(bfs_req(gid, s));
  const auto outcomes = service.drain();
  ASSERT_EQ(outcomes.size(), 8u);
  for (const auto& out : outcomes) {
    ASSERT_TRUE(out.ok());
    // Query ids are issued 1..8 in submit order for sources 0..7.
    const auto src = static_cast<graph::NodeId>(out.id - 1);
    EXPECT_EQ(out.bfs().level, cpu::bfs(csr, src).level);
  }
}

TEST(ServiceResilience, TypedRejectionCodes) {
  svc::ServiceOptions opts;
  opts.queue_capacity = 1;
  opts.batch_bfs = false;
  svc::GraphService service(opts);
  auto g = make_graph();
  // Unweighted on purpose: sssp must be refused as invalid_argument.
  const auto gid = service.add_graph(std::move(g));

  service.submit(bfs_req(gid, 0));
  service.submit(bfs_req(gid, 1));  // over capacity
  auto outcomes = service.drain();
  ASSERT_EQ(outcomes.size(), 2u);
  std::size_t rejected = 0;
  for (const auto& out : outcomes) {
    if (out.status == adaptive::Status::rejected) {
      ++rejected;
      EXPECT_EQ(out.code, adaptive::ErrorCode::queue_full);
    }
  }
  EXPECT_EQ(rejected, 1u);

  svc::GraphService roomy;  // default capacity: all three fit the queue
  const auto gid_r = roomy.add_graph(make_graph());
  svc::QueryRequest cpu_req = bfs_req(gid_r, 0);
  cpu_req.policy = adaptive::Policy::cpu();
  roomy.submit(cpu_req);
  svc::QueryRequest sssp_req;
  sssp_req.algo = svc::Algo::sssp;
  sssp_req.graph = gid_r;
  roomy.submit(sssp_req);
  svc::QueryRequest oob = bfs_req(gid_r, 1u << 30);
  roomy.submit(oob);
  outcomes = roomy.drain();
  ASSERT_EQ(outcomes.size(), 3u);
  for (const auto& out : outcomes) {
    EXPECT_EQ(out.status, adaptive::Status::error);
    EXPECT_EQ(out.code, adaptive::ErrorCode::invalid_argument);
  }

  auto late = bfs_req(gid, 2);
  late.deadline_us = 1e-3;
  svc::ServiceOptions strict = opts;
  strict.resilience.degrade_to_cpu = false;
  svc::GraphService strict_service(strict);
  const auto gid2 = strict_service.add_graph(make_graph());
  late.graph = gid2;
  strict_service.submit(late);
  outcomes = strict_service.drain();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].status, adaptive::Status::timed_out);
  EXPECT_EQ(outcomes[0].code, adaptive::ErrorCode::deadline_exceeded);
}

// ---- observability: counters and trace events --------------------------------

TEST(ServiceResilience, FaultCountersTrackRetryAndDegradation) {
  auto& reg = trace::CounterRegistry::instance();
  reg.set_enabled(true);
  reg.reset();
  {
    svc::ServiceOptions opts;
    opts.batch_bfs = false;
    svc::GraphService service(opts);
    const auto gid = service.add_graph(make_graph());
    service.set_fault_plan(plan("kernel.p=1"));
    service.submit(bfs_req(gid, 0));
    service.drain();
    const auto& res = service.options().resilience;
    EXPECT_EQ(reg.counter_value("svc.fault"), res.max_retries + 1);
    EXPECT_EQ(reg.counter_value("svc.fault.kernel"), res.max_retries + 1);
    EXPECT_EQ(reg.counter_value("svc.retry"), res.max_retries);
    EXPECT_GT(reg.counter_value("svc.retry.backoff_us"), 0);
    EXPECT_EQ(reg.counter_value("svc.degraded"), 1);
    EXPECT_EQ(reg.counter_value("svc.degraded.fault"), 1);
    EXPECT_EQ(reg.counter_value("svc.completed"), 1);
    EXPECT_EQ(reg.counter_value("simt.fault.injected"),
              reg.counter_value("svc.fault"));
  }
  reg.set_enabled(false);
  reg.reset();
}

TEST(ServiceResilience, FaultEventsAppearInTrace) {
  auto& tracer = trace::Tracer::instance();
  tracer.clear();
  auto* sink = static_cast<trace::JsonlDecisionSink*>(
      tracer.attach(std::make_unique<trace::JsonlDecisionSink>()));
  {
    svc::ServiceOptions opts;
    opts.batch_bfs = false;
    svc::GraphService service(opts);
    const auto gid = service.add_graph(make_graph());
    service.set_fault_plan(plan("kernel.at=0"));
    service.submit(bfs_req(gid, 0));
    service.drain();
  }
  EXPECT_EQ(sink->faults(), 1u);
  EXPECT_NE(sink->data().find("\"kind\":\"fault\""), std::string::npos);
  EXPECT_NE(sink->data().find("\"fault\":\"kernel\""), std::string::npos);
  tracer.clear();
}

// ---- determinism: the fault schedule replays bit-identically -----------------

TEST(ServiceResilience, FaultReplayIsIdenticalAcrossSimThreads) {
  auto run = [] {
    auto& tracer = trace::Tracer::instance();
    tracer.clear();
    auto* sink = static_cast<trace::JsonlDecisionSink*>(
        tracer.attach(std::make_unique<trace::JsonlDecisionSink>()));
    svc::ServiceOptions opts;
    opts.concurrency = 3;
    svc::GraphService service(opts);
    auto g = make_graph(1800, 5400, 11);
    g.set_uniform_weights(1, 25);
    const auto gid = service.add_graph(std::move(g));
    service.set_fault_plan(plan("seed=42, kernel.p=0.2, transfer.p=0.05"));
    for (graph::NodeId i = 0; i < 12; ++i) {
      svc::QueryRequest req = bfs_req(gid, i * 5);
      if (i % 3 == 2) req.algo = svc::Algo::sssp;
      service.submit(req);
    }
    auto outcomes = service.drain();
    std::string trace_bytes = sink->data();
    const double makespan = service.makespan_us();
    tracer.clear();
    return std::make_tuple(std::move(outcomes), std::move(trace_bytes),
                           makespan);
  };

  simt::ExecPool::set_threads(1);
  const auto [a, trace_a, makespan_a] = run();
  simt::ExecPool::set_threads(4);
  const auto [b, trace_b, makespan_b] = run();
  simt::ExecPool::set_threads(0);  // restore default

  // The full fault/retry/degradation schedule — trace artifact included —
  // is byte-identical for any host worker count.
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_DOUBLE_EQ(makespan_a, makespan_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status) << i;
    EXPECT_EQ(a[i].code, b[i].code) << i;
    EXPECT_EQ(a[i].retries, b[i].retries) << i;
    EXPECT_EQ(a[i].degraded, b[i].degraded) << i;
    EXPECT_EQ(a[i].stream, b[i].stream) << i;
    EXPECT_DOUBLE_EQ(a[i].start_us, b[i].start_us) << i;
    EXPECT_DOUBLE_EQ(a[i].finish_us, b[i].finish_us) << i;
    ASSERT_EQ(a[i].payload.index(), b[i].payload.index()) << i;
    if (std::holds_alternative<adaptive::BfsResult>(a[i].payload)) {
      EXPECT_EQ(a[i].bfs().level, b[i].bfs().level) << i;
    } else if (std::holds_alternative<adaptive::SsspResult>(a[i].payload)) {
      EXPECT_EQ(a[i].sssp().dist, b[i].sssp().dist) << i;
    }
  }
}

}  // namespace
