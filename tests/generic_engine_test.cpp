// The generic frontier engine must reproduce the built-in algorithms when
// given their operators, across variants, with correct push deduplication.
#include <gtest/gtest.h>

#include "cpu/bfs_serial.h"
#include "gpu_graph/bfs_engine.h"
#include "gpu_graph/generic_engine.h"
#include "graph/gen/generators.h"
#include "runtime/adaptive_engine.h"

namespace {

constexpr simt::Site kLevel{0, "t.level"};
constexpr simt::Site kRows{1, "t.rows"};
constexpr simt::Site kEdges{2, "t.edges"};
constexpr simt::Site kNbr{3, "t.nbr"};
constexpr simt::Site kOps{4, "t.ops"};

// BFS expressed as a user operator.
struct BfsFixture {
  simt::Device dev;
  graph::Csr g;
  gg::DeviceGraph dg;
  simt::DeviceBuffer<std::uint32_t> level;

  explicit BfsFixture(graph::Csr graph_in, graph::NodeId source)
      : g(std::move(graph_in)) {
    dg = gg::DeviceGraph::upload(dev, g, false);
    level = dev.alloc<std::uint32_t>(g.num_nodes, "level");
    dev.fill(level, graph::kInfinity);
    dev.write_scalar(level, source, 0u);
  }

  auto op() {
    return [this](simt::ThreadCtx& ctx, std::uint32_t id, std::uint32_t offset,
                  std::uint32_t step, gg::Push& push) {
      const std::uint32_t lvl = ctx.load(level, id, kLevel);
      const std::uint32_t begin = ctx.load(dg.row_offsets, id, kRows);
      const std::uint32_t end = ctx.load(dg.row_offsets, id + 1, kRows);
      ctx.compute(4, kOps);
      for (std::uint32_t e = begin + offset; e < end; e += step) {
        const std::uint32_t t = ctx.load(dg.col_indices, e, kEdges);
        ctx.compute(3, kOps);
        if (lvl + 1 < ctx.load(level, t, kNbr)) {
          ctx.store(level, t, lvl + 1, kNbr);
          push.mark(t);
        }
      }
    };
  }
};

class GenericVariants : public ::testing::TestWithParam<gg::Variant> {};

TEST_P(GenericVariants, OperatorBfsMatchesBuiltin) {
  const auto g = graph::gen::erdos_renyi(3000, 15000, 71);
  const auto expected = cpu::bfs(g, 0);
  BfsFixture fx(g, 0);
  gg::run_frontier(fx.dev, fx.g, fx.dg, {0}, fx.op(),
                   gg::fixed_variant(GetParam()));
  std::vector<std::uint32_t> got(fx.level.host_view().begin(),
                                 fx.level.host_view().end());
  EXPECT_EQ(got, expected.level);
}

std::vector<gg::Variant> generic_variants() {
  const auto base = gg::unordered_variants();
  std::vector<gg::Variant> out(base.begin(), base.end());
  for (const auto v : gg::warp_centric_variants()) out.push_back(v);
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllVariants, GenericVariants,
                         ::testing::ValuesIn(generic_variants()),
                         [](const auto& info) {
                           return gg::variant_name(info.param);
                         });

TEST(GenericEngine, AdaptiveSelectorDrivesSwitches) {
  const auto g = graph::gen::erdos_renyi(60000, 300000, 72);
  const auto expected = cpu::bfs(g, 0);
  BfsFixture fx(g, 0);
  gg::EngineOptions opts;
  opts.monitor_interval = 1;
  const auto thresholds = rt::Thresholds::for_device(fx.dev.props());
  const auto result =
      gg::run_frontier(fx.dev, fx.g, fx.dg, {0}, fx.op(),
                       rt::make_adaptive_selector(thresholds), opts);
  std::vector<std::uint32_t> got(fx.level.host_view().begin(),
                                 fx.level.host_view().end());
  EXPECT_EQ(got, expected.level);
  EXPECT_GT(result.metrics.switches, 0u);
}

TEST(GenericEngine, MultiSourceInitialFrontier) {
  const auto g = graph::gen::erdos_renyi(2000, 8000, 73);
  BfsFixture fx(g, 0);
  fx.dev.write_scalar(fx.level, 1500, 0u);  // second source
  const auto result = gg::run_frontier(fx.dev, fx.g, fx.dg, {0, 1500}, fx.op(),
                                       gg::fixed_variant(gg::parse_variant("U_T_QU")));
  EXPECT_EQ(result.metrics.iterations.front().ws_size, 2u);
  // Multi-source BFS: level = min over sources.
  const auto a = cpu::bfs(g, 0);
  const auto b = cpu::bfs(g, 1500);
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    EXPECT_EQ(fx.level.host_view()[v], std::min(a.level[v], b.level[v])) << v;
  }
}

TEST(GenericEngine, PushDeduplicatesWithinIteration) {
  // A node with many in-edges from the frontier must enter the next working
  // set exactly once.
  std::vector<graph::Edge> edges;
  for (std::uint32_t v = 1; v <= 64; ++v) {
    edges.push_back({0, v});   // fan out
    edges.push_back({v, 65});  // all fan in to 65
  }
  const auto g = graph::csr_from_edges(66, edges);
  BfsFixture fx(g, 0);
  const auto result = gg::run_frontier(fx.dev, fx.g, fx.dg, {0}, fx.op(),
                                       gg::fixed_variant(gg::parse_variant("U_B_QU")));
  ASSERT_EQ(result.metrics.iterations.size(), 3u);
  EXPECT_EQ(result.metrics.iterations[1].ws_size, 64u);
  EXPECT_EQ(result.metrics.iterations[2].ws_size, 1u);  // node 65, once
}

TEST(GenericEngine, EmptyInitialFrontierIsANoOp) {
  const auto g = graph::gen::erdos_renyi(100, 400, 74);
  BfsFixture fx(g, 0);
  const auto result = gg::run_frontier(fx.dev, fx.g, fx.dg, {}, fx.op(),
                                       gg::fixed_variant(gg::parse_variant("U_T_BM")));
  EXPECT_TRUE(result.metrics.iterations.empty());
}

TEST(GenericEngine, MatchesBuiltinBfsCostShape) {
  // Same algorithm through both paths: modeled times must be close (the
  // built-in engine differs only in site labels and bitmap-clear placement).
  const auto g = graph::gen::erdos_renyi(20000, 100000, 75);
  BfsFixture fx(g, 0);
  const auto generic = gg::run_frontier(fx.dev, fx.g, fx.dg, {0}, fx.op(),
                                        gg::fixed_variant(gg::parse_variant("U_T_QU")));
  simt::Device dev2;
  const auto builtin = gg::run_bfs(dev2, g, 0, gg::parse_variant("U_T_QU"));
  const double ratio = generic.metrics.kernel_us / builtin.metrics.kernel_us;
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

}  // namespace
