// GraphService: FIFO scheduling, admission control, deadlines, batched
// multi-source BFS, and stream determinism (DESIGN.md "Serving layer").
#include <gtest/gtest.h>

#include <set>

#include "cpu/bfs_serial.h"
#include "cpu/sssp_serial.h"
#include "graph/gen/generators.h"
#include "service/graph_service.h"
#include "simt/exec_pool.h"
#include "trace/counters.h"

namespace {

adaptive::Graph make_graph(std::uint32_t n = 2000, std::uint32_t m = 6000,
                           std::uint64_t seed = 5) {
  return adaptive::Graph::from_csr(graph::gen::erdos_renyi(n, m, seed));
}

svc::QueryRequest bfs_req(svc::GraphId gid, graph::NodeId source) {
  svc::QueryRequest req;
  req.algo = svc::Algo::bfs;
  req.graph = gid;
  req.source = source;
  return req;
}

TEST(GraphService, OutcomesArriveInFifoOrder) {
  svc::GraphService service;
  const auto gid = service.add_graph(make_graph());
  std::vector<svc::QueryId> submitted;
  for (graph::NodeId s = 0; s < 6; ++s) {
    const auto id = service.submit(bfs_req(gid, s * 7));
    ASSERT_TRUE(id.has_value());
    submitted.push_back(*id);
  }
  const auto outcomes = service.drain();
  ASSERT_EQ(outcomes.size(), submitted.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].id, submitted[i]);
    EXPECT_TRUE(outcomes[i].ok());
  }
}

TEST(GraphService, ResultsMatchSerialReference) {
  svc::GraphService service;
  auto g = make_graph();
  g.set_uniform_weights(1, 100);
  const graph::Csr csr = g.csr();  // copy before handing over
  const auto gid = service.add_graph(std::move(g));

  auto b = bfs_req(gid, 3);
  service.submit(b);
  svc::QueryRequest s;
  s.algo = svc::Algo::sssp;
  s.graph = gid;
  s.source = 11;
  service.submit(s);
  svc::QueryRequest c;
  c.algo = svc::Algo::cc;
  c.graph = gid;
  service.submit(c);

  const auto outcomes = service.drain();
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].bfs().level, cpu::bfs(csr, 3).level);
  EXPECT_EQ(outcomes[1].sssp().dist, cpu::dijkstra(csr, 11).dist);
  EXPECT_TRUE(outcomes[2].ok());
}

TEST(GraphService, ConcurrencyCapBoundsStreamUse) {
  svc::ServiceOptions opts;
  opts.concurrency = 2;
  opts.batch_bfs = false;
  svc::GraphService service(opts);
  const auto gid = service.add_graph(make_graph());
  for (graph::NodeId s = 0; s < 8; ++s) service.submit(bfs_req(gid, s));
  const auto outcomes = service.drain();
  std::set<simt::StreamId> used;
  for (const auto& out : outcomes) used.insert(out.stream);
  EXPECT_LE(used.size(), 2u);
  EXPECT_GE(used.size(), 2u);  // 8 queries should exercise both streams
}

TEST(GraphService, ConcurrencyShrinksMakespan) {
  auto run = [](std::uint32_t concurrency) {
    svc::ServiceOptions opts;
    opts.concurrency = concurrency;
    opts.batch_bfs = false;
    svc::GraphService service(opts);
    auto g = make_graph(3000, 9000, 9);
    g.set_uniform_weights(1, 50);
    const auto gid = service.add_graph(std::move(g));
    for (graph::NodeId i = 0; i < 12; ++i) {
      svc::QueryRequest req = bfs_req(gid, i * 5);
      if (i % 3 == 1) req.algo = svc::Algo::sssp;
      service.submit(req);
    }
    const auto outcomes = service.drain();
    for (const auto& out : outcomes) EXPECT_TRUE(out.ok());
    return service.makespan_us();
  };
  EXPECT_LT(run(4), run(1));
}

TEST(GraphService, RejectsWhenQueueFull) {
  svc::ServiceOptions opts;
  opts.queue_capacity = 3;
  svc::GraphService service(opts);
  const auto gid = service.add_graph(make_graph());
  for (graph::NodeId s = 0; s < 3; ++s) {
    EXPECT_TRUE(service.submit(bfs_req(gid, s)).has_value());
  }
  EXPECT_FALSE(service.submit(bfs_req(gid, 9)).has_value());
  EXPECT_FALSE(service.submit(bfs_req(gid, 10)).has_value());
  const auto outcomes = service.drain();
  ASSERT_EQ(outcomes.size(), 5u);
  std::size_t rejected = 0;
  for (const auto& out : outcomes) {
    if (out.status == adaptive::Status::rejected) {
      ++rejected;
      EXPECT_EQ(out.code, adaptive::ErrorCode::queue_full);
    }
  }
  EXPECT_EQ(rejected, 2u);
  // Rejections never consume device time.
  EXPECT_EQ(service.pending(), 0u);
}

TEST(GraphService, DeadlineTimesOutLateQueries) {
  svc::ServiceOptions opts;
  opts.concurrency = 1;  // force queueing so later deadlines are missed
  opts.batch_bfs = false;
  svc::GraphService service(opts);
  const auto gid = service.add_graph(make_graph());

  // Generous deadline: completes.
  auto ok_req = bfs_req(gid, 1);
  ok_req.deadline_us = 1e9;
  service.submit(ok_req);
  // Impossible deadline: the traversal itself overruns it.
  auto tight = bfs_req(gid, 2);
  tight.deadline_us = 1e-3;
  service.submit(tight);
  // After the first two queries the single stream is busy far past 1us, so
  // this one times out before dispatch (no device time spent).
  auto late = bfs_req(gid, 3);
  late.deadline_us = 1.0;
  service.submit(late);

  const auto outcomes = service.drain();
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].status, adaptive::Status::ok);
  EXPECT_EQ(outcomes[0].code, adaptive::ErrorCode::none);
  EXPECT_EQ(outcomes[1].status, adaptive::Status::timed_out);
  EXPECT_EQ(outcomes[1].code, adaptive::ErrorCode::deadline_exceeded);
  EXPECT_EQ(outcomes[2].status, adaptive::Status::timed_out);
  EXPECT_EQ(outcomes[2].code, adaptive::ErrorCode::deadline_exceeded);
  // Timed-out queries carry no payload.
  EXPECT_TRUE(std::holds_alternative<std::monostate>(outcomes[1].payload));
  // The pre-dispatch timeout never started: finish time is unset.
  EXPECT_EQ(outcomes[2].finish_us, 0.0);
}

TEST(GraphService, BatchedBfsMatchesIndependentQueries) {
  const auto csr = graph::gen::erdos_renyi(2500, 7000, 21);

  // Batching on: one drain answers all queries via a fused launch.
  svc::ServiceOptions opts;
  opts.concurrency = 1;
  svc::GraphService batched(opts);
  const auto gid = batched.add_graph(adaptive::Graph::from_csr(graph::Csr(csr)));
  for (graph::NodeId s = 0; s < 32; ++s) {
    batched.submit(bfs_req(gid, (s * 67) % csr.num_nodes));
  }
  const auto fused = batched.drain();
  ASSERT_EQ(fused.size(), 32u);

  for (std::size_t i = 0; i < fused.size(); ++i) {
    ASSERT_TRUE(fused[i].ok());
    EXPECT_EQ(fused[i].batch_size, 32u);
    const auto expected =
        cpu::bfs(csr, static_cast<graph::NodeId>((i * 67) % csr.num_nodes));
    ASSERT_EQ(fused[i].bfs().level, expected.level) << "query " << i;
  }
}

TEST(GraphService, BatchedBfsIsFasterThanSerial) {
  const auto csr = graph::gen::erdos_renyi(4000, 16000, 33);
  auto run = [&](bool batch) {
    svc::ServiceOptions opts;
    opts.concurrency = 1;
    opts.batch_bfs = batch;
    svc::GraphService service(opts);
    const auto gid =
        service.add_graph(adaptive::Graph::from_csr(graph::Csr(csr)));
    for (graph::NodeId s = 0; s < 32; ++s) {
      service.submit(bfs_req(gid, (s * 101) % csr.num_nodes));
    }
    const auto outcomes = service.drain();
    for (const auto& out : outcomes) EXPECT_TRUE(out.ok());
    return service.makespan_us();
  };
  const double serial_us = run(false);
  const double batched_us = run(true);
  // Acceptance: the fused batch at least doubles modeled throughput.
  EXPECT_LT(batched_us * 2, serial_us);
}

TEST(GraphService, MixedAlgosBreakBatchesButAllComplete) {
  svc::GraphService service;
  auto g = make_graph();
  g.set_uniform_weights(1, 10);
  const auto gid = service.add_graph(std::move(g));
  for (graph::NodeId i = 0; i < 10; ++i) {
    svc::QueryRequest req = bfs_req(gid, i);
    if (i == 4) req.algo = svc::Algo::pagerank;
    if (i == 7) req.algo = svc::Algo::cc;
    service.submit(req);
  }
  const auto outcomes = service.drain();
  ASSERT_EQ(outcomes.size(), 10u);
  for (const auto& out : outcomes) EXPECT_TRUE(out.ok());
  // Queries 0..3 form a batch; 5..6 and 8..9 are smaller batches.
  EXPECT_EQ(outcomes[0].batch_size, 4u);
  EXPECT_EQ(outcomes[4].batch_size, 1u);
  EXPECT_EQ(outcomes[5].batch_size, 2u);
}

TEST(GraphService, CpuPolicyIsRefused) {
  svc::GraphService service;
  const auto gid = service.add_graph(make_graph());
  auto req = bfs_req(gid, 0);
  req.policy = adaptive::Policy::cpu();
  service.submit(req);
  const auto outcomes = service.drain();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].status, adaptive::Status::error);
  EXPECT_EQ(outcomes[0].code, adaptive::ErrorCode::invalid_argument);
  EXPECT_NE(outcomes[0].error.find("cpu_serial"), std::string::npos);
}

TEST(GraphService, CountersTrackLifecycle) {
  auto& reg = trace::CounterRegistry::instance();
  reg.set_enabled(true);
  reg.reset();

  svc::ServiceOptions opts;
  opts.queue_capacity = 4;
  svc::GraphService service(opts);
  const auto gid = service.add_graph(make_graph());
  for (graph::NodeId s = 0; s < 6; ++s) service.submit(bfs_req(gid, s));
  service.drain();

  EXPECT_EQ(reg.counter_value("svc.queued"), 4);
  EXPECT_EQ(reg.counter_value("svc.rejected"), 2);
  EXPECT_EQ(reg.counter_value("svc.completed"), 4);
  EXPECT_EQ(reg.counter_value("svc.batches"), 1);
  EXPECT_EQ(reg.counter_value("svc.batched"), 4);
  reg.set_enabled(false);
  reg.reset();
}

// The serving schedule is placed by host-sequential issue order, so modeled
// times — and therefore every outcome — are identical for any host worker
// count (the PR-1 determinism contract extended to streams).
TEST(GraphService, DeterministicAcrossSimThreads) {
  auto run = [] {
    svc::ServiceOptions opts;
    opts.concurrency = 3;
    svc::GraphService service(opts);
    auto g = make_graph(2200, 6600, 17);
    g.set_uniform_weights(1, 30);
    const auto gid = service.add_graph(std::move(g));
    for (graph::NodeId i = 0; i < 14; ++i) {
      svc::QueryRequest req = bfs_req(gid, i * 3);
      if (i % 4 == 3) req.algo = svc::Algo::sssp;
      service.submit(req);
    }
    return std::make_pair(service.drain(), service.makespan_us());
  };

  simt::ExecPool::set_threads(1);
  const auto [a, makespan_a] = run();
  simt::ExecPool::set_threads(8);
  const auto [b, makespan_b] = run();
  simt::ExecPool::set_threads(0);  // restore default

  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(makespan_a, makespan_b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stream, b[i].stream);
    EXPECT_DOUBLE_EQ(a[i].start_us, b[i].start_us);
    EXPECT_DOUBLE_EQ(a[i].finish_us, b[i].finish_us);
    EXPECT_EQ(a[i].payload.index(), b[i].payload.index());
  }
}

// Mixed read/mutate stream (ISSUE 9): mutations are version barriers in the
// FIFO — queries admitted before one answer against the old graph, queries
// after it against the new one — and the whole schedule is identical at any
// host worker count.
TEST(GraphService, MutationsOrderAgainstInFlightQueries) {
  auto run = [] {
    svc::ServiceOptions opts;
    opts.concurrency = 3;
    svc::GraphService service(opts);
    auto g = make_graph(1500, 4500, 23);
    const graph::Csr before = g.csr();
    const auto gid = service.add_graph(std::move(g));

    graph::EdgeDelta d;
    d.inserts.push_back({0, 1400});
    if (before.row_offsets[1] > before.row_offsets[0]) {
      d.deletes.push_back({0, before.col_indices[before.row_offsets[0]]});
    }
    const graph::Csr after = graph::apply_delta(before, d);

    const graph::NodeId src = 0;
    service.submit(bfs_req(gid, src));       // pre-mutation
    service.submit_mutation(gid, d);
    service.submit(bfs_req(gid, src));       // post-mutation, same source
    const auto outcomes = service.drain();
    return std::make_tuple(outcomes, before, after, service.makespan_us());
  };

  const auto [outs, before, after, makespan] = run();
  ASSERT_EQ(outs.size(), 3u);
  ASSERT_TRUE(outs[0].ok());
  ASSERT_TRUE(outs[1].ok());
  ASSERT_TRUE(outs[2].ok());
  EXPECT_TRUE(outs[1].mutation);
  // The pre-mutation query sees the old graph, the post-mutation one the
  // new graph — same source, different answers when the delta matters.
  EXPECT_EQ(outs[0].bfs().level, cpu::bfs(before, 0).level);
  EXPECT_EQ(outs[2].bfs().level, cpu::bfs(after, 0).level);
  // The mutation's device patch starts only after the in-flight query's
  // stream work, and the post-mutation query starts after the patch.
  EXPECT_GE(outs[1].finish_us, outs[0].finish_us);
  EXPECT_GE(outs[2].start_us, outs[1].finish_us);

  // Determinism across host worker counts, mutations included.
  simt::ExecPool::set_threads(1);
  const auto [a, ab, aa, ma] = run();
  simt::ExecPool::set_threads(4);
  const auto [b, bb, ba, mb] = run();
  simt::ExecPool::set_threads(0);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(ma, mb);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].start_us, b[i].start_us);
    EXPECT_DOUBLE_EQ(a[i].finish_us, b[i].finish_us);
    EXPECT_EQ(a[i].payload.index(), b[i].payload.index());
  }
}

// A queued mutation blocks request collapsing across it for the same graph:
// the post-mutation duplicate runs on its own and returns the new answer.
TEST(GraphService, CollapseStopsAtMutationBarrier) {
  svc::ServiceOptions opts;
  opts.cache_bytes = 1u << 20;
  opts.batch_bfs = false;
  svc::GraphService service(opts);
  auto g = make_graph(800, 2400, 31);
  const graph::Csr before = g.csr();
  const auto gid = service.add_graph(std::move(g));

  graph::EdgeDelta d;
  d.inserts.push_back({0, 799});

  service.submit(bfs_req(gid, 0));
  service.submit(bfs_req(gid, 0));  // collapses onto the first
  service.submit_mutation(gid, d);
  service.submit(bfs_req(gid, 0));  // behind the barrier: must NOT collapse
  const auto outs = service.drain();
  ASSERT_EQ(outs.size(), 4u);
  EXPECT_FALSE(outs[0].collapsed);
  EXPECT_TRUE(outs[1].collapsed);
  EXPECT_TRUE(outs[2].mutation);
  EXPECT_FALSE(outs[3].collapsed);
  const graph::Csr after = graph::apply_delta(before, d);
  EXPECT_EQ(outs[3].bfs().level, cpu::bfs(after, 0).level);
}

}  // namespace
