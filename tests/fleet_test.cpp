// Fleet serving (PR-8): ClusterSpec/Fleet construction, placement decisions,
// deterministic routing across sim-thread counts, replica failover vs the CPU
// oracles, sharded execution equality, the deprecated single-device API
// shims, and Session's opaque GraphId registration.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "api/algorithms.h"
#include "api/session.h"
#include "conformance_corpus.h"
#include "cpu/bfs_serial.h"
#include "cpu/cc_serial.h"
#include "cpu/sssp_serial.h"
#include "graph/gen/generators.h"
#include "service/graph_service.h"
#include "service/placement.h"
#include "simt/cluster.h"
#include "simt/exec_pool.h"
#include "simt/fault.h"
#include "trace/counters.h"

namespace {

graph::Csr test_graph(std::uint64_t seed = 1) {
  graph::gen::RmatParams rm;
  rm.scale = 9;
  rm.edges_per_node = 8;
  rm.seed = seed;
  return graph::gen::rmat(rm);
}

svc::ServiceOptions plain_options() {
  svc::ServiceOptions opts;
  opts.concurrency = 4;
  opts.cache_bytes = 0;
  opts.collapse = false;
  opts.batch_bfs = false;
  return opts;
}

std::vector<svc::QueryOutcome> run_bfs_stream(svc::GraphService& service,
                                              svc::GraphId gid,
                                              std::size_t n_queries) {
  const std::uint32_t n = service.graph(gid).num_nodes();
  for (std::size_t i = 0; i < n_queries; ++i) {
    svc::QueryRequest req;
    req.graph = gid;
    req.algo = svc::Algo::bfs;
    req.source = static_cast<graph::NodeId>((i * 37) % n);
    EXPECT_TRUE(service.submit(std::move(req)));
  }
  auto out = service.drain();
  std::sort(out.begin(), out.end(),
            [](const svc::QueryOutcome& a, const svc::QueryOutcome& b) {
              return a.id < b.id;
            });
  return out;
}

// ---- ClusterSpec / Fleet ----

TEST(ClusterSpecTest, EmptySpecMeansOneDefaultDevice) {
  simt::ClusterSpec spec;
  EXPECT_TRUE(spec.empty());
  EXPECT_EQ(spec.num_devices(), 1u);
  simt::Fleet fleet(spec);
  ASSERT_EQ(fleet.size(), 1u);
  EXPECT_EQ(fleet.device(0).ordinal(), 0u);
  EXPECT_TRUE(fleet.healthy(0));
}

TEST(ClusterSpecTest, HomogeneousStampsOrdinalsAndLabels) {
  simt::Fleet fleet(simt::ClusterSpec::homogeneous(3));
  ASSERT_EQ(fleet.size(), 3u);
  for (simt::DeviceIndex d = 0; d < 3; ++d) {
    EXPECT_EQ(fleet.device(d).ordinal(), d);
    EXPECT_EQ(fleet.device(d).label(), "dev" + std::to_string(d));
  }
  EXPECT_EQ(fleet.num_healthy(), 3u);
  EXPECT_EQ(fleet.makespan_us(), 0.0);
}

TEST(ClusterSpecTest, HeterogeneousBuilderKeepsOrderAndNames) {
  simt::ClusterSpec spec;
  spec.add_device(simt::DeviceProps::fermi_c2070())
      .add_device(simt::DeviceProps::fermi_c2070(),
                  simt::TimingModel::fermi_default(), "big");
  simt::Fleet fleet(spec);
  ASSERT_EQ(fleet.size(), 2u);
  EXPECT_EQ(fleet.device(0).label(), "dev0");
  EXPECT_EQ(fleet.device(1).label(), "big");
}

TEST(ClusterSpecTest, FleetMakespanIsMaxOverDevices) {
  simt::Fleet fleet(simt::ClusterSpec::homogeneous(2));
  fleet.device(1).account_host_compute(125.0);
  EXPECT_DOUBLE_EQ(fleet.makespan_us(), 125.0);
}

// ---- placement ----

TEST(PlacementTest, SmallGraphReplicatesEverywhere) {
  const auto csr = test_graph();
  simt::Fleet fleet(simt::ClusterSpec::homogeneous(4));
  const auto plan =
      svc::plan_placement(csr, true, fleet, svc::PlacementPolicy{});
  EXPECT_TRUE(plan.replicated());
  EXPECT_EQ(plan.replicas.size(), 4u);
}

TEST(PlacementTest, ReplicationFactorCapsReplicaSet) {
  const auto csr = test_graph();
  simt::Fleet fleet(simt::ClusterSpec::homogeneous(4));
  svc::PlacementPolicy policy;
  policy.replication = 2;
  const auto plan = svc::plan_placement(csr, true, fleet, policy);
  EXPECT_TRUE(plan.replicated());
  EXPECT_EQ(plan.replicas.size(), 2u);
}

TEST(PlacementTest, OversizedGraphShards) {
  const auto csr = test_graph();
  const std::uint64_t bytes = svc::device_graph_bytes(csr, true);
  simt::DeviceProps small = simt::DeviceProps::fermi_c2070();
  small.global_mem_bytes = bytes;  // < headroom * bytes
  simt::Fleet fleet(simt::ClusterSpec::homogeneous(4, small));
  const auto plan =
      svc::plan_placement(csr, true, fleet, svc::PlacementPolicy{});
  ASSERT_FALSE(plan.replicated());
  ASSERT_GE(plan.shards.size(), 2u);
  // Shards tile [0, n) contiguously.
  graph::NodeId row = 0;
  std::uint64_t edges = 0;
  for (const auto& s : plan.shards) {
    EXPECT_EQ(s.row_begin, row);
    EXPECT_GT(s.row_end, s.row_begin);
    row = s.row_end;
    edges += s.edges;
  }
  EXPECT_EQ(row, csr.num_nodes);
  EXPECT_EQ(edges, csr.num_edges());
}

TEST(PlacementTest, ShardSliceKeepsGlobalIdSpace) {
  const auto csr = test_graph();
  const auto slice = svc::shard_slice(csr, 100, 300);
  EXPECT_EQ(slice.num_nodes, csr.num_nodes);
  for (graph::NodeId v = 0; v < csr.num_nodes; ++v) {
    const auto want = (v >= 100 && v < 300)
                          ? csr.row_offsets[v + 1] - csr.row_offsets[v]
                          : 0;
    EXPECT_EQ(slice.row_offsets[v + 1] - slice.row_offsets[v], want);
  }
}

// ---- router determinism across sim-thread counts ----

TEST(FleetRoutingTest, BitIdenticalAcrossSimThreads) {
  struct Snapshot {
    std::vector<std::uint32_t> device;
    std::vector<bool> failover;
    std::vector<std::vector<std::uint32_t>> levels;
    double makespan = 0;
    std::string counters;
  };
  auto run = [&](int threads) {
    simt::ExecPool::set_threads(threads);
    auto& reg = trace::CounterRegistry::instance();
    reg.set_enabled(true);
    reg.reset();
    svc::ServiceOptions opts = plain_options();
    opts.cache_bytes = 16 << 20;  // exercise cache + collapse paths too
    opts.collapse = true;
    svc::GraphService service(opts, simt::ClusterSpec::homogeneous(3));
    const auto gid =
        service.add_graph(adaptive::Graph::from_csr(test_graph()));
    service.set_fault_plan(simt::FaultPlan::parse("dead.after=4"), 0);
    const auto outcomes = run_bfs_stream(service, gid, 48);
    Snapshot snap;
    for (const auto& out : outcomes) {
      EXPECT_EQ(out.status, adaptive::Status::ok);
      snap.device.push_back(out.device);
      snap.failover.push_back(out.failover);
      snap.levels.push_back(out.bfs().level);
    }
    snap.makespan = service.makespan_us();
    snap.counters = reg.to_json();
    reg.set_enabled(false);
    return snap;
  };
  const auto serial = run(1);
  const auto four = run(4);
  simt::ExecPool::set_threads(0);  // back to env/default resolution
  const auto pool = run(0);
  simt::ExecPool::set_threads(1);

  EXPECT_EQ(serial.device, four.device);
  EXPECT_EQ(serial.device, pool.device);
  EXPECT_EQ(serial.failover, four.failover);
  EXPECT_EQ(serial.failover, pool.failover);
  EXPECT_EQ(serial.levels, four.levels);
  EXPECT_EQ(serial.levels, pool.levels);
  EXPECT_DOUBLE_EQ(serial.makespan, four.makespan);
  EXPECT_DOUBLE_EQ(serial.makespan, pool.makespan);
  EXPECT_EQ(serial.counters, four.counters);
  EXPECT_EQ(serial.counters, pool.counters);
}

// ---- replica failover vs the CPU oracles over the shared corpus ----

TEST(FleetFailoverTest, FailoverMatchesOraclesOnCorpus) {
  for (const auto& gc : testutil::conformance_corpus()) {
    if (gc.csr.num_nodes == 0) continue;
    svc::GraphService service(plain_options(),
                              simt::ClusterSpec::homogeneous(2));
    const auto gid =
        service.add_graph(adaptive::Graph::from_csr(graph::Csr(gc.csr)));
    // Device 0 dies almost immediately; every query must complete on the
    // replica, never on the CPU fallback.
    service.set_fault_plan(simt::FaultPlan::parse("dead.after=1"), 0);
    const graph::NodeId src = graph::suggest_source(gc.csr);
    {
      svc::QueryRequest req;
      req.graph = gid;
      req.algo = svc::Algo::bfs;
      req.source = src;
      ASSERT_TRUE(service.submit(std::move(req)));
    }
    {
      svc::QueryRequest req;
      req.graph = gid;
      req.algo = svc::Algo::cc;
      ASSERT_TRUE(service.submit(std::move(req)));
    }
    const auto outcomes = service.drain();
    ASSERT_EQ(outcomes.size(), 2u) << gc.name;
    for (const auto& out : outcomes) {
      ASSERT_EQ(out.status, adaptive::Status::ok) << gc.name;
      EXPECT_FALSE(out.degraded) << gc.name;
      if (out.algo == svc::Algo::bfs) {
        EXPECT_EQ(out.bfs().level, cpu::bfs(gc.csr, src).level) << gc.name;
      } else {
        const auto want = cpu::connected_components(gc.csr);
        EXPECT_EQ(out.cc().component, want.component) << gc.name;
        EXPECT_EQ(out.cc().num_components, want.num_components) << gc.name;
      }
    }
    EXPECT_FALSE(service.device_healthy(0)) << gc.name;
    EXPECT_TRUE(service.device_healthy(1)) << gc.name;
  }
}

TEST(FleetFailoverTest, AllDevicesDeadDegradesToCpu) {
  svc::GraphService service(plain_options(),
                            simt::ClusterSpec::homogeneous(2));
  const auto csr = test_graph();
  const auto gid =
      service.add_graph(adaptive::Graph::from_csr(graph::Csr(csr)));
  service.set_fault_plan_all(simt::FaultPlan::parse("dead.after=1"));
  const auto outcomes = run_bfs_stream(service, gid, 4);
  ASSERT_EQ(outcomes.size(), 4u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& out = outcomes[i];
    ASSERT_EQ(out.status, adaptive::Status::ok);
    EXPECT_TRUE(out.degraded);
    // Outcomes are id-sorted, so index i is submission order; the stream
    // helper picked source (i * 37) % n.
    const auto src = static_cast<graph::NodeId>((i * 37) % csr.num_nodes);
    EXPECT_EQ(out.bfs().level, cpu::bfs(csr, src).level);
  }
}

// ---- sharded execution equality ----

TEST(ShardedTest, BfsAndCcMatchSingleDevice) {
  // Edges-dominated graph: per-slice row-offset overhead (full n rows) stays
  // small relative to the edge share, so shards genuinely save memory.
  graph::gen::RmatParams rm;
  rm.scale = 12;
  rm.edges_per_node = 16;
  rm.seed = 7;
  const auto csr = graph::gen::rmat(rm);
  const std::uint64_t bytes = svc::device_graph_bytes(csr, true);

  svc::GraphService single(plain_options(), simt::ClusterSpec::single());
  const auto sgid =
      single.add_graph(adaptive::Graph::from_csr(graph::Csr(csr)));

  // One byte below the replicated threshold (headroom 2.0 needs 2x bytes
  // free): the planner must shard, and has room for each slice plus its
  // lazy local symmetric closure (cc).
  simt::DeviceProps small = simt::DeviceProps::fermi_c2070();
  small.global_mem_bytes = 2 * bytes - 1;
  svc::GraphService sharded(plain_options(),
                            simt::ClusterSpec::homogeneous(4, small));
  const auto gid =
      sharded.add_graph(adaptive::Graph::from_csr(graph::Csr(csr)));
  ASSERT_FALSE(sharded.placement(gid).replicated());

  auto query = [](svc::GraphService& s, svc::GraphId g, svc::Algo algo,
                  graph::NodeId src) {
    svc::QueryRequest req;
    req.graph = g;
    req.algo = algo;
    req.source = src;
    EXPECT_TRUE(s.submit(std::move(req)));
    auto out = s.drain();
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].status, adaptive::Status::ok);
    return out[0];
  };

  for (const graph::NodeId src : {0u, 17u, 300u}) {
    const auto want = query(single, sgid, svc::Algo::bfs, src);
    const auto got = query(sharded, gid, svc::Algo::bfs, src);
    EXPECT_TRUE(got.sharded);
    EXPECT_FALSE(got.degraded);
    EXPECT_EQ(got.bfs().level, want.bfs().level);
  }
  const auto want_cc = query(single, sgid, svc::Algo::cc, 0);
  const auto got_cc = query(sharded, gid, svc::Algo::cc, 0);
  EXPECT_TRUE(got_cc.sharded);
  EXPECT_FALSE(got_cc.degraded);
  EXPECT_EQ(got_cc.cc().component, want_cc.cc().component);
  EXPECT_EQ(got_cc.cc().num_components, want_cc.cc().num_components);
}

// ---- deprecated API shims ----

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(ShimTest, OldServiceCtorMatchesClusterSpecSingle) {
  const auto csr = test_graph(3);
  auto run = [&](svc::GraphService service) {
    const auto gid =
        service.add_graph(adaptive::Graph::from_csr(graph::Csr(csr)));
    auto out = run_bfs_stream(service, gid, 8);
    return std::make_pair(std::move(out), service.makespan_us());
  };
  auto [new_out, new_mk] = run(svc::GraphService(
      plain_options(), simt::ClusterSpec::single(
                           simt::DeviceProps::fermi_c2070(),
                           simt::TimingModel::fermi_default())));
  auto [old_out, old_mk] = run(svc::GraphService(
      plain_options(), simt::DeviceProps::fermi_c2070(),
      simt::TimingModel::fermi_default()));
  ASSERT_EQ(new_out.size(), old_out.size());
  for (std::size_t i = 0; i < new_out.size(); ++i) {
    EXPECT_EQ(new_out[i].bfs().level, old_out[i].bfs().level);
  }
  EXPECT_DOUBLE_EQ(new_mk, old_mk);
}

TEST(ShimTest, OldSessionCtorMatchesClusterSpecSingle) {
  const auto g = adaptive::Graph::from_csr(test_graph(4));
  adaptive::Session session_new(
      simt::ClusterSpec::single(simt::DeviceProps::fermi_c2070()));
  adaptive::Session session_old(simt::DeviceProps::fermi_c2070());
  const auto a = session_new.bfs(g, 0);
  const auto b = session_old.bfs(g, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.level, b.level);
  EXPECT_DOUBLE_EQ(session_new.device().makespan_us(),
                   session_old.device().makespan_us());
}

#pragma GCC diagnostic pop

// ---- Session: opaque GraphId registration ----

TEST(SessionGraphIdTest, RegisterReturnsStableOpaqueId) {
  adaptive::Session session;
  const auto g = adaptive::Graph::from_csr(test_graph(5));
  const adaptive::GraphId id = session.register_graph(g);
  EXPECT_NE(id, 0u);
  EXPECT_TRUE(session.is_registered(g));
  EXPECT_TRUE(session.is_registered(id));
  EXPECT_EQ(session.graph_id(g), id);
  EXPECT_EQ(session.register_graph(g), id);  // idempotent

  const auto by_ref = session.bfs(g, 0);
  const auto by_id = session.bfs(id, 0);
  ASSERT_TRUE(by_ref.ok());
  EXPECT_EQ(by_ref.level, by_id.level);

  session.unregister_graph(id);
  EXPECT_FALSE(session.is_registered(g));
  EXPECT_EQ(session.graph_id(g), 0u);
}

TEST(SessionGraphIdTest, CopyIsADistinctRegistrableIdentity) {
  const auto g = adaptive::Graph::from_csr(test_graph(6));
  const adaptive::Graph copy = g;
  EXPECT_NE(g.uid(), copy.uid());
  adaptive::Session session;
  const auto id_g = session.register_graph(g);
  const auto id_copy = session.register_graph(copy);
  EXPECT_NE(id_g, id_copy);
  EXPECT_EQ(session.num_registered(), 2u);
}

TEST(SessionGraphIdTest, MoveKeepsIdentity) {
  auto g = adaptive::Graph::from_csr(test_graph(6));
  const std::uint64_t uid = g.uid();
  const adaptive::Graph moved = std::move(g);
  EXPECT_EQ(moved.uid(), uid);
}

// The address-reuse aliasing regression: with address-based cache keys, a new
// graph allocated where a destroyed one lived could be served the dead
// graph's cached answers. uid-based keys make collisions impossible — a
// fresh object never shares a uid, wherever it lives.
TEST(SessionGraphIdTest, RecreatedGraphCannotAliasCachedResults) {
  adaptive::Session session;
  session.enable_result_cache(16 << 20);
  auto slot = std::make_unique<adaptive::Graph>(
      adaptive::Graph::from_edges(3, {{0, 1}, {1, 2}}));
  session.register_graph(*slot);
  const auto first = session.bfs(*slot, 0);
  ASSERT_TRUE(first.ok());
  session.unregister_graph(*slot);
  // Recreate a *different* graph, plausibly at the recycled address.
  slot = std::make_unique<adaptive::Graph>(
      adaptive::Graph::from_edges(3, {{0, 2}, {2, 1}}));
  session.register_graph(*slot);
  const auto second = session.bfs(*slot, 0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.level, (std::vector<std::uint32_t>{0, 2, 1}));
  session.unregister_graph(*slot);
}

TEST(SessionFleetTest, QueriesBalanceAndFailOver) {
  adaptive::Session session(simt::ClusterSpec::homogeneous(2));
  EXPECT_EQ(session.num_devices(), 2u);
  const auto g = adaptive::Graph::from_csr(test_graph(8));
  session.register_graph(g);

  // Two back-to-back queries land on different devices (earliest-ready
  // routing): both device clocks advance.
  const auto a = session.bfs(g, 0);
  const auto b = session.bfs(g, 1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(session.fleet().device(0).makespan_us(), 0.0);
  EXPECT_GT(session.fleet().device(1).makespan_us(), 0.0);

  // Kill device 0: queries keep succeeding, un-degraded, on device 1.
  session.fleet().device(0).set_fault_plan(
      simt::FaultPlan::parse("dead.after=1"));
  for (int i = 0; i < 3; ++i) {
    const auto r = session.bfs(g, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.level, cpu::bfs(g.csr(), 0).level);
  }

  // Kill device 1 too: the CPU oracle answers, flagged degraded.
  session.fleet().device(1).set_fault_plan(
      simt::FaultPlan::parse("dead.after=1"));
  const auto r = session.bfs(g, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.level, cpu::bfs(g.csr(), 0).level);
}

// ---- error message context ----

TEST(ErrorMessageTest, ResultCarriesCodeAndContext) {
  adaptive::Result<adaptive::BfsResult> r;
  r.status = adaptive::Status::error;
  r.code = adaptive::ErrorCode::device_lost;
  EXPECT_EQ(r.error_message(), "device_lost: device permanently lost");
  r.error = "no healthy replica for graph 1";
  EXPECT_EQ(r.error_message(), "device_lost: no healthy replica for graph 1");
}

}  // namespace
