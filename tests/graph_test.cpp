#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/builder.h"
#include "graph/csr.h"
#include "graph/graph_stats.h"
#include "graph/io.h"

namespace {

graph::Csr diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  const std::vector<graph::Edge> edges{{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  return graph::csr_from_edges(4, edges);
}

TEST(Csr, FromEdgesBasics) {
  const auto g = diamond();
  g.validate();
  EXPECT_EQ(g.num_nodes, 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(3), 0u);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
}

TEST(Csr, StableOrderPreservesWeights) {
  const std::vector<graph::Edge> edges{{1, 0}, {0, 5}, {0, 3}, {1, 2}};
  const std::vector<std::uint32_t> w{10, 20, 30, 40};
  const auto g = graph::csr_from_edges(6, edges, w);
  EXPECT_EQ(g.neighbors(0)[0], 5u);
  EXPECT_EQ(g.edge_weights(0)[0], 20u);
  EXPECT_EQ(g.neighbors(0)[1], 3u);
  EXPECT_EQ(g.edge_weights(0)[1], 30u);
  EXPECT_EQ(g.edge_weights(1)[0], 10u);
  EXPECT_EQ(g.edge_weights(1)[1], 40u);
}

TEST(Csr, TransposeTwiceIsIdentityOnEdgeSet) {
  const auto g = diamond();
  const auto tt = graph::transpose(graph::transpose(g));
  ASSERT_EQ(tt.num_edges(), g.num_edges());
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    std::vector<std::uint32_t> a(g.neighbors(v).begin(), g.neighbors(v).end());
    std::vector<std::uint32_t> b(tt.neighbors(v).begin(), tt.neighbors(v).end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "node " << v;
  }
}

TEST(Csr, TransposeReversesEdges) {
  const auto t = graph::transpose(diamond());
  EXPECT_EQ(t.degree(0), 0u);
  EXPECT_EQ(t.degree(3), 2u);
  EXPECT_EQ(t.degree(1), 1u);
  EXPECT_EQ(t.neighbors(1)[0], 0u);
}

TEST(Csr, SymmetrizeDoublesEdges) {
  const auto s = graph::symmetrize(diamond());
  EXPECT_EQ(s.num_edges(), 8u);
  EXPECT_EQ(s.degree(3), 2u);  // reverse arcs of 1->3, 2->3
}

TEST(Csr, UniformWeightsInRange) {
  auto g = diamond();
  graph::assign_uniform_weights(g, 5, 9, 123);
  ASSERT_TRUE(g.has_weights());
  for (const auto w : g.weights) {
    EXPECT_GE(w, 5u);
    EXPECT_LE(w, 9u);
  }
}

TEST(Csr, SuggestSourcePicksMaxOutdegree) {
  const std::vector<graph::Edge> edges{{2, 0}, {2, 1}, {2, 3}, {0, 1}};
  const auto g = graph::csr_from_edges(4, edges);
  EXPECT_EQ(graph::suggest_source(g), 2u);
}

TEST(Builder, BuildsWeightedGraph) {
  graph::GraphBuilder b;
  b.add_edge(0, 1, 5).add_edge(1, 2, 7).add_undirected(2, 3, 9);
  const auto g = b.build();
  EXPECT_EQ(g.num_nodes, 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  ASSERT_TRUE(g.has_weights());
  EXPECT_EQ(g.edge_weights(2)[0], 9u);
  EXPECT_EQ(g.edge_weights(3)[0], 9u);
}

TEST(Builder, GrowsNodeCountImplicitly) {
  graph::GraphBuilder b;
  b.add_edge(0, 99);
  EXPECT_EQ(b.num_nodes(), 100u);
}

TEST(GraphStats, ComputesDegreeSummary) {
  const auto s = graph::GraphStats::compute(diamond());
  EXPECT_EQ(s.num_nodes, 4u);
  EXPECT_EQ(s.num_edges, 4u);
  EXPECT_EQ(s.outdeg_min, 0u);
  EXPECT_EQ(s.outdeg_max, 2u);
  EXPECT_DOUBLE_EQ(s.outdeg_avg, 1.0);
  EXPECT_NE(s.summary().find("n=4"), std::string::npos);
}

TEST(ReachProfile, CountsLevelsAndReach) {
  const auto p = graph::compute_reach(diamond(), 0);
  EXPECT_EQ(p.levels, 2u);
  EXPECT_EQ(p.reachable_nodes, 4u);
  EXPECT_EQ(p.reachable_edges, 4u);
  const auto from3 = graph::compute_reach(diamond(), 3);
  EXPECT_EQ(from3.levels, 0u);
  EXPECT_EQ(from3.reachable_nodes, 1u);
}

class IoTest : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    return (std::filesystem::temp_directory_path() / name).string();
  }
  void TearDown() override {
    for (const auto& p : cleanup_) std::remove(p.c_str());
  }
  std::vector<std::string> cleanup_;
};

TEST_F(IoTest, DimacsRoundTrip) {
  auto g = diamond();
  graph::assign_uniform_weights(g, 1, 50, 7);
  const auto p = path("agg_test.gr");
  cleanup_.push_back(p);
  graph::write_dimacs(g, p);
  const auto r = graph::read_dimacs(p);
  EXPECT_EQ(r.num_nodes, g.num_nodes);
  EXPECT_EQ(r.num_edges(), g.num_edges());
  EXPECT_EQ(r.col_indices, g.col_indices);
  EXPECT_EQ(r.weights, g.weights);
}

TEST_F(IoTest, SnapRoundTrip) {
  const auto g = diamond();
  const auto p = path("agg_test.txt");
  cleanup_.push_back(p);
  graph::write_snap_edgelist(g, p);
  const auto r = graph::read_snap_edgelist(p);
  EXPECT_EQ(r.num_nodes, g.num_nodes);
  EXPECT_EQ(r.col_indices, g.col_indices);
}

TEST_F(IoTest, BinaryRoundTripWithWeights) {
  auto g = diamond();
  graph::assign_uniform_weights(g, 1, 9, 3);
  const auto p = path("agg_test.agg");
  cleanup_.push_back(p);
  graph::write_binary(g, p);
  const auto r = graph::read_binary(p);
  EXPECT_EQ(r.num_nodes, g.num_nodes);
  EXPECT_EQ(r.row_offsets, g.row_offsets);
  EXPECT_EQ(r.col_indices, g.col_indices);
  EXPECT_EQ(r.weights, g.weights);
}

TEST_F(IoTest, BinaryRoundTripUnweighted) {
  const auto g = diamond();
  const auto p = path("agg_test2.agg");
  cleanup_.push_back(p);
  graph::write_binary(g, p);
  const auto r = graph::read_binary(p);
  EXPECT_FALSE(r.has_weights());
  EXPECT_EQ(r.col_indices, g.col_indices);
}

}  // namespace
