#include <gtest/gtest.h>

#include "api/algorithms.h"
#include <map>

#include "cpu/mst_serial.h"
#include "gpu_graph/cc_engine.h"
#include "gpu_graph/mst_engine.h"
#include "graph/builder.h"
#include "graph/gen/generators.h"
#include "graph/transform.h"
#include "runtime/adaptive_engine.h"

namespace {

using gg::Variant;

graph::Csr weighted_symmetric(graph::Csr g, std::uint32_t lo, std::uint32_t hi,
                              std::uint64_t seed) {
  graph::Csr s = graph::symmetrize(g);
  graph::assign_symmetric_uniform_weights(s, lo, hi, seed);
  return s;
}

struct GraphCase {
  const char* name;
  graph::Csr csr;
};

std::vector<GraphCase>& test_graphs() {
  static std::vector<GraphCase> cases = [] {
    std::vector<GraphCase> out;
    {
      // Classic textbook instance: unique MST of weight 37 on 9 nodes.
      graph::GraphBuilder b;
      b.add_undirected(0, 1, 4).add_undirected(0, 7, 8).add_undirected(1, 2, 8)
          .add_undirected(1, 7, 11).add_undirected(2, 3, 7).add_undirected(2, 8, 2)
          .add_undirected(2, 5, 4).add_undirected(3, 4, 9).add_undirected(3, 5, 14)
          .add_undirected(4, 5, 10).add_undirected(5, 6, 2).add_undirected(6, 7, 1)
          .add_undirected(6, 8, 6).add_undirected(7, 8, 7);
      out.push_back({"clrs", b.build()});
    }
    out.push_back({"er", weighted_symmetric(graph::gen::erdos_renyi(1500, 6000, 61),
                                            1, 100, 7)});
    {
      auto g = graph::gen::road_network(2000, 62);
      graph::assign_symmetric_uniform_weights(g, 1, 100, 8);
      out.push_back({"road", std::move(g)});
    }
    {
      // All-equal weights: pure tie-breaking stress.
      out.push_back({"ties", weighted_symmetric(
                                 graph::gen::erdos_renyi(800, 4000, 63), 5, 5, 9)});
    }
    return out;
  }();
  return cases;
}

struct MstCase {
  std::size_t graph_index;
  Variant variant;
};

std::vector<MstCase> all_cases() {
  std::vector<MstCase> cases;
  for (std::size_t g = 0; g < test_graphs().size(); ++g) {
    for (const Variant v : gg::unordered_variants()) cases.push_back({g, v});
    for (const Variant v : gg::warp_centric_variants()) cases.push_back({g, v});
  }
  return cases;
}

class GpuMstVariants : public ::testing::TestWithParam<MstCase> {};

TEST_P(GpuMstVariants, MatchesKruskalWeight) {
  const auto& [gi, variant] = GetParam();
  const auto& gc = test_graphs()[gi];
  const auto expected = cpu::minimum_spanning_forest(gc.csr);
  simt::Device dev;
  const auto got = gg::run_mst(dev, gc.csr, variant);
  EXPECT_EQ(got.total_weight, expected.total_weight) << gc.name;
  EXPECT_EQ(got.num_trees, expected.num_trees) << gc.name;
  EXPECT_EQ(got.edges_in_forest, expected.edges_in_forest) << gc.name;
}

INSTANTIATE_TEST_SUITE_P(AllVariantsAllGraphs, GpuMstVariants,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) {
                           return std::string(test_graphs()[info.param.graph_index].name) +
                                  "_" + gg::variant_name(info.param.variant);
                         });

TEST(CpuMst, TextbookWeight) {
  const auto r = cpu::minimum_spanning_forest(test_graphs()[0].csr);
  EXPECT_EQ(r.total_weight, 37u);
  EXPECT_EQ(r.num_trees, 1u);
  EXPECT_EQ(r.edges_in_forest, 8u);
}

TEST(CpuMst, ForestCountsComponents) {
  // Two disjoint triangles.
  graph::GraphBuilder b;
  b.add_undirected(0, 1, 3).add_undirected(1, 2, 1).add_undirected(2, 0, 2);
  b.add_undirected(3, 4, 5).add_undirected(4, 5, 4).add_undirected(5, 3, 6);
  const auto g = b.build();
  const auto r = cpu::minimum_spanning_forest(g);
  EXPECT_EQ(r.num_trees, 2u);
  EXPECT_EQ(r.edges_in_forest, 4u);
  EXPECT_EQ(r.total_weight, 1u + 2u + 4u + 5u);
}

TEST(GpuMst, EdgesPlusTreesEqualsNodes) {
  for (const auto& gc : test_graphs()) {
    simt::Device dev;
    const auto got = gg::run_mst(dev, gc.csr, gg::parse_variant("U_T_QU"));
    EXPECT_EQ(got.edges_in_forest + got.num_trees, gc.csr.num_nodes) << gc.name;
  }
}

TEST(GpuMst, LogarithmicRounds) {
  const auto& gc = test_graphs()[1];  // er, 1500 nodes, connected-ish
  simt::Device dev;
  const auto got = gg::run_mst(dev, gc.csr, gg::parse_variant("U_T_BM"));
  EXPECT_LE(got.metrics.iterations.size(), 16u);  // Boruvka halves components
  EXPECT_EQ(got.metrics.iterations.front().ws_size, gc.csr.num_nodes);
}

TEST(GpuMst, ComponentsMatchCcPartition) {
  const auto& gc = test_graphs()[2];
  simt::Device d1, d2;
  const auto mst = gg::run_mst(d1, gc.csr, gg::parse_variant("U_B_QU"));
  const auto cc = gg::run_cc(d2, gc.csr, gg::parse_variant("U_B_QU"));
  // Same partition (labels may differ): check pairwise consistency by
  // mapping mst labels to cc labels.
  std::map<std::uint32_t, std::uint32_t> mapping;
  for (std::uint32_t v = 0; v < gc.csr.num_nodes; ++v) {
    const auto [it, inserted] =
        mapping.emplace(mst.component[v], cc.component[v]);
    EXPECT_EQ(it->second, cc.component[v]) << v;
  }
}

TEST(GpuMst, DeterministicAcrossRuns) {
  const auto& gc = test_graphs()[3];  // ties
  simt::Device d1, d2;
  const auto a = gg::run_mst(d1, gc.csr, gg::parse_variant("U_B_BM"));
  const auto b = gg::run_mst(d2, gc.csr, gg::parse_variant("U_B_BM"));
  EXPECT_EQ(a.total_weight, b.total_weight);
  EXPECT_EQ(a.component, b.component);
  EXPECT_DOUBLE_EQ(a.metrics.total_us, b.metrics.total_us);
}

TEST(GpuMst, RequiresWeights) {
  const auto g = graph::symmetrize(
      graph::csr_from_edges(3, std::vector<graph::Edge>{{0, 1}, {1, 2}}));
  simt::Device dev;
  EXPECT_DEATH(gg::run_mst(dev, g, gg::parse_variant("U_T_BM")), "weights");
}

TEST(ApiMst, AllPoliciesAgree) {
  auto csr = graph::gen::erdos_renyi(1200, 4000, 66);
  graph::assign_uniform_weights(csr, 1, 50, 5);
  const auto g = adaptive::Graph::from_csr(std::move(csr));
  const auto cpu_out = adaptive::mst(g, adaptive::Policy::cpu());
  const auto adapt_out = adaptive::mst(g);
  const auto fixed_out = adaptive::mst(g, adaptive::Policy::fixed("U_W_QU"));
  EXPECT_EQ(adapt_out.total_weight, cpu_out.total_weight);
  EXPECT_EQ(fixed_out.total_weight, cpu_out.total_weight);
  EXPECT_EQ(adapt_out.num_trees, cpu_out.num_trees);
}

}  // namespace
