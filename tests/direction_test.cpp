// Direction-optimizing traversal (4th adaptive dimension): pull (gather)
// kernels and the Beamer push<->pull controller must be invisible in the
// answers — byte-identical to the push kernels and the serial CPU oracles
// across the whole conformance corpus — while actually changing the
// execution (the controller must reach pull iterations on frontier-heavy
// graphs), staying deterministic for any --sim-threads value, and parsing
// cleanly from user-facing policy strings.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/algorithms.h"
#include "api/session.h"
#include "conformance_corpus.h"
#include "cpu/bfs_serial.h"
#include "cpu/cc_serial.h"
#include "cpu/sssp_serial.h"
#include "gpu_graph/variant.h"
#include "graph/gen/generators.h"
#include "graph/transform.h"
#include "runtime/decision.h"
#include "simt/device.h"
#include "simt/exec_pool.h"

namespace {

using testutil::conformance_corpus;

adaptive::Policy pull_fixed() {
  return adaptive::Policy::fixed(gg::parse_variant("U_T_BM"))
      .with_direction(gg::Direction::pull);
}

adaptive::Policy push_fixed() {
  return adaptive::Policy::fixed(gg::parse_variant("U_T_BM"));
}

adaptive::Policy direction_optimizing() {
  return adaptive::Policy::adapt().with_direction(gg::Direction::adaptive);
}

bool ran_pull_iteration(const gg::TraversalMetrics& m) {
  return std::any_of(m.iterations.begin(), m.iterations.end(),
                     [](const gg::IterationRecord& it) {
                       return it.variant.direction == gg::Direction::pull;
                     });
}

// ---- naming / parsing -------------------------------------------------------

TEST(Direction, VariantNamesRoundTripTheDirectionSuffix) {
  gg::Variant v = gg::parse_variant("U_T_BM");
  EXPECT_EQ(gg::variant_name(v), "U_T_BM");
  v.direction = gg::Direction::pull;
  EXPECT_EQ(gg::variant_name(v), "U_T_BM_PULL");
  v.direction = gg::Direction::adaptive;
  EXPECT_EQ(gg::variant_name(v), "U_T_BM_DO");

  const auto pull = gg::try_parse_variant("O_B_QU_PULL");
  ASSERT_TRUE(pull.has_value());
  EXPECT_EQ(pull->direction, gg::Direction::pull);
  EXPECT_EQ(pull->ordering, gg::Ordering::ordered);
  const auto push = gg::try_parse_variant("U_W_QU_PUSH");
  ASSERT_TRUE(push.has_value());
  EXPECT_EQ(push->direction, gg::Direction::push);
  EXPECT_EQ(*push, gg::parse_variant("U_W_QU"));
  EXPECT_FALSE(gg::try_parse_variant("U_T_BM_SIDEWAYS").has_value());
  EXPECT_FALSE(gg::try_parse_variant("UTBM_PULL").has_value());
  EXPECT_FALSE(gg::try_parse_variant("").has_value());
}

TEST(Direction, ParsePolicyReturnsTypedErrorsInsteadOfAborting) {
  EXPECT_TRUE(adaptive::parse_policy("adaptive").ok());
  EXPECT_TRUE(adaptive::parse_policy("cpu").ok());

  const auto pull = adaptive::parse_policy("U_T_BM_PULL");
  ASSERT_TRUE(pull.ok());
  EXPECT_EQ(pull.policy.mode, adaptive::Policy::Mode::fixed_variant);
  EXPECT_EQ(pull.policy.variant.direction, gg::Direction::pull);
  EXPECT_TRUE(pull.policy.wants_pull());
  EXPECT_FALSE(adaptive::parse_policy("U_T_BM").policy.wants_pull());

  const auto bad = adaptive::parse_policy("bogus");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status, adaptive::Status::error);
  EXPECT_EQ(bad.code, adaptive::ErrorCode::invalid_argument);
  EXPECT_FALSE(bad.error.empty());

  // _DO names a trajectory, not a kernel: only the adaptive policy can
  // honor it, so the fixed spelling is a typed error with guidance.
  const auto fixed_do = adaptive::parse_policy("U_T_BM_DO");
  EXPECT_FALSE(fixed_do.ok());
  EXPECT_EQ(fixed_do.code, adaptive::ErrorCode::invalid_argument);
}

TEST(Direction, ControllerFlipsOnFrontierGrowthAndBack) {
  rt::Thresholds t;  // defaults: alpha = 0.5, beta = 0.05
  // Small frontier against a mostly-unexplored gather volume: stay push.
  EXPECT_EQ(rt::decide_direction(t, gg::Direction::push, 100, 10000, 1000),
            gg::Direction::push);
  // Frontier edge mass covers over half the gather volume: flip to pull.
  EXPECT_EQ(rt::decide_direction(t, gg::Direction::push, 6000, 5000, 1000),
            gg::Direction::pull);
  // Hysteresis band: 400 would not trigger entry (alpha needs > 3500) but it
  // is still above the exit band (beta needs < 350) — stay pull.
  EXPECT_EQ(rt::decide_direction(t, gg::Direction::push, 400, 6000, 1000),
            gg::Direction::push);
  EXPECT_EQ(rt::decide_direction(t, gg::Direction::pull, 400, 6000, 1000),
            gg::Direction::pull);
  // Frontier drained below beta * (unexplored + n): flip back to push.
  EXPECT_EQ(rt::decide_direction(t, gg::Direction::pull, 100, 6000, 1000),
            gg::Direction::push);
}

// ---- differential correctness ----------------------------------------------

TEST(Direction, PullAndDirectionOptimizingMatchTheOracleAcrossTheCorpus) {
  const std::vector<adaptive::Policy> policies{pull_fixed(),
                                               direction_optimizing()};
  for (const auto& gc : conformance_corpus()) {
    if (gc.csr.num_nodes == 0) continue;
    adaptive::Graph g = adaptive::Graph::from_csr(graph::Csr(gc.csr));
    const bool has_edges = g.num_edges() > 0;
    adaptive::Graph weighted = adaptive::Graph::from_csr(graph::Csr(gc.csr));
    if (has_edges) weighted.set_uniform_weights(1, 31);

    const graph::NodeId src = graph::suggest_source(gc.csr);
    const auto bfs_want = cpu::bfs(gc.csr, src);
    const auto cc_want = cpu::connected_components(gc.csr);

    for (const auto& policy : policies) {
      const char* tag = policy.mode == adaptive::Policy::Mode::adaptive
                            ? "direction-optimizing"
                            : "pull";
      simt::Device dev;
      const auto got = adaptive::bfs(dev, g, src, policy);
      ASSERT_TRUE(got.ok()) << gc.name << " bfs " << tag;
      ASSERT_EQ(got.level, bfs_want.level) << gc.name << " bfs " << tag;

      if (has_edges) {
        simt::Device sdev;
        const auto sg = adaptive::sssp(sdev, weighted, src, policy);
        ASSERT_TRUE(sg.ok()) << gc.name << " sssp " << tag;
        ASSERT_EQ(sg.dist, cpu::dijkstra(weighted.csr(), src).dist)
            << gc.name << " sssp " << tag;
      }

      simt::Device cdev;
      const auto cc = adaptive::cc(cdev, g, policy);
      ASSERT_TRUE(cc.ok()) << gc.name << " cc " << tag;
      ASSERT_EQ(cc.component, cc_want.component) << gc.name << " cc " << tag;
      ASSERT_EQ(cc.num_components, cc_want.num_components) << gc.name;
    }
  }
}

// The controller must actually reach pull iterations where they pay off —
// otherwise the differential test above only ever exercises push.
TEST(Direction, ControllerReachesPullOnFrontierHeavyGraphs) {
  graph::gen::RmatParams rm;
  rm.scale = 11;
  rm.edges_per_node = 16;
  rm.seed = 3;
  adaptive::Graph g = adaptive::Graph::from_csr(graph::gen::rmat(rm));
  const graph::NodeId src = graph::suggest_source(g.csr());

  simt::Device dev;
  const auto out = adaptive::bfs(dev, g, src, direction_optimizing());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.level, cpu::bfs(g.csr(), src).level);
  EXPECT_TRUE(ran_pull_iteration(out.metrics))
      << "direction controller never left push on a dense R-MAT";

  // CC starts with every vertex active (frontier_edges == m), so the
  // controller begins in pull and hands back to push as the frontier dries.
  simt::Device cdev;
  const auto cc = adaptive::cc(cdev, g, direction_optimizing());
  ASSERT_TRUE(cc.ok());
  EXPECT_TRUE(ran_pull_iteration(cc.metrics));
}

// ---- CSC cache --------------------------------------------------------------

TEST(Direction, CscIsCachedSharedForSymmetricAndInvalidatedOnMutation) {
  // Directed: the CSC is a real transpose, built once and cached.
  adaptive::Graph g = adaptive::Graph::from_csr(graph::csr_from_edges(
      4, std::vector<graph::Edge>{{0, 1}, {0, 2}, {1, 3}, {2, 3}}));
  const graph::Csr& csc = g.csc();
  EXPECT_EQ(&csc, &g.csc());  // cached, not rebuilt
  const graph::Csr want = graph::build_csc(g.csr());
  EXPECT_EQ(csc.row_offsets, want.row_offsets);
  EXPECT_EQ(csc.col_indices, want.col_indices);

  // Symmetric: CSR is its own transpose; no copy is made.
  adaptive::Graph sym = adaptive::Graph::from_csr(graph::csr_from_edges(
      3, std::vector<graph::Edge>{{0, 1}, {1, 0}, {1, 2}, {2, 1}}));
  EXPECT_EQ(&sym.csc(), &sym.csr());

  // Mutation (weights appearing) invalidates the cached transpose.
  g.set_uniform_weights(1, 9);
  const graph::Csr& csc2 = g.csc();
  EXPECT_TRUE(csc2.has_weights());
  EXPECT_EQ(csc2.row_offsets, want.row_offsets);
}

TEST(Direction, SessionServesPullPoliciesOnResidentGraphs) {
  graph::gen::PowerLawParams pl;
  pl.num_nodes = 400;
  pl.tail_max = 60;
  pl.seed = 7;
  adaptive::Graph g = adaptive::Graph::from_csr(
      graph::gen::powerlaw_configuration(pl));
  g.set_uniform_weights(1, 31);
  const graph::NodeId src = graph::suggest_source(g.csr());

  adaptive::Session session;
  session.register_graph(g);
  const auto push = session.bfs(g, src, push_fixed());
  const auto pull = session.bfs(g, src, pull_fixed());
  const auto dopt = session.bfs(g, src, direction_optimizing());
  ASSERT_TRUE(push.ok());
  ASSERT_TRUE(pull.ok());
  ASSERT_TRUE(dopt.ok());
  EXPECT_EQ(pull.level, push.level);
  EXPECT_EQ(dopt.level, push.level);
  EXPECT_EQ(push.level, cpu::bfs(g.csr(), src).level);

  const auto sp = session.sssp(g, src, pull_fixed());
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(sp.dist, cpu::dijkstra(g.csr(), src).dist);
  session.unregister_graph(g);
}

// ---- determinism ------------------------------------------------------------

struct DoCapture {
  std::vector<std::uint32_t> level;
  std::vector<std::string> variants;  // per-iteration, encodes the direction
  double total_us = 0;
};

DoCapture run_do_bfs_with_threads(int threads) {
  simt::ExecPool::set_threads(threads);
  graph::gen::RmatParams rm;
  rm.scale = 10;
  rm.edges_per_node = 12;
  rm.seed = 5;
  adaptive::Graph g = adaptive::Graph::from_csr(graph::gen::rmat(rm));
  simt::Device dev;
  const auto out =
      adaptive::bfs(dev, g, graph::suggest_source(g.csr()),
                    direction_optimizing());
  DoCapture cap;
  cap.level = out.level;
  for (const auto& it : out.metrics.iterations) {
    cap.variants.push_back(gg::variant_name(it.variant));
  }
  cap.total_us = out.metrics.total_us;
  simt::ExecPool::set_threads(1);
  return cap;
}

TEST(Direction, ControllerDecisionsAreSimThreadInvariant) {
  const DoCapture serial = run_do_bfs_with_threads(1);
  const DoCapture four = run_do_bfs_with_threads(4);
  const DoCapture pool = run_do_bfs_with_threads(0);  // hardware concurrency
  EXPECT_EQ(serial.level, four.level);
  EXPECT_EQ(serial.level, pool.level);
  EXPECT_EQ(serial.variants, four.variants);  // same flip points
  EXPECT_EQ(serial.variants, pool.variants);
  EXPECT_EQ(serial.total_us, four.total_us);  // bit-identical modeled time
  EXPECT_EQ(serial.total_us, pool.total_us);
  EXPECT_TRUE(std::any_of(
      serial.variants.begin(), serial.variants.end(),
      [](const std::string& v) { return v.find("_PULL") != std::string::npos; }));
}

}  // namespace
