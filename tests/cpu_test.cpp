#include <gtest/gtest.h>

#include "cpu/bfs_serial.h"
#include "cpu/cpu_cost_model.h"
#include "cpu/sssp_serial.h"
#include "graph/gen/generators.h"

namespace {

graph::Csr weighted_path() {
  // 0 -5-> 1 -3-> 2 -1-> 3, plus shortcut 0 -10-> 2
  const std::vector<graph::Edge> edges{{0, 1}, {1, 2}, {2, 3}, {0, 2}};
  const std::vector<std::uint32_t> w{5, 3, 1, 10};
  return graph::csr_from_edges(4, edges, w);
}

TEST(CpuBfs, LevelsOnKnownGraph) {
  const std::vector<graph::Edge> edges{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}};
  const auto g = graph::csr_from_edges(6, edges);
  const auto r = cpu::bfs(g, 0);
  EXPECT_EQ(r.level[0], 0u);
  EXPECT_EQ(r.level[1], 1u);
  EXPECT_EQ(r.level[2], 1u);
  EXPECT_EQ(r.level[3], 2u);
  EXPECT_EQ(r.level[4], 3u);
  EXPECT_EQ(r.level[5], graph::kInfinity);
  EXPECT_EQ(r.counts.levels, 3u);
  EXPECT_EQ(r.counts.nodes_popped, 5u);
  EXPECT_EQ(r.counts.edges_scanned, 5u);
}

TEST(CpuBfs, SourceOnlyGraph) {
  const auto g = graph::csr_from_edges(3, std::vector<graph::Edge>{});
  const auto r = cpu::bfs(g, 1);
  EXPECT_EQ(r.level[1], 0u);
  EXPECT_EQ(r.level[0], graph::kInfinity);
  EXPECT_EQ(r.counts.levels, 0u);
}

TEST(CpuDijkstra, TakesShortestNotFewestHops) {
  const auto g = weighted_path();
  const auto r = cpu::dijkstra(g, 0);
  EXPECT_EQ(r.dist[0], 0u);
  EXPECT_EQ(r.dist[1], 5u);
  EXPECT_EQ(r.dist[2], 8u);  // 0->1->2 beats 0->2 (10)
  EXPECT_EQ(r.dist[3], 9u);
}

TEST(CpuDijkstra, UnreachableIsInfinity) {
  const auto g = weighted_path();
  const auto r = cpu::dijkstra(g, 3);
  EXPECT_EQ(r.dist[3], 0u);
  EXPECT_EQ(r.dist[0], graph::kInfinity);
}

TEST(CpuSssp, BellmanFordAgreesWithDijkstra) {
  auto g = graph::gen::erdos_renyi(2000, 12000, 99);
  graph::assign_uniform_weights(g, 1, 100, 5);
  const auto a = cpu::dijkstra(g, 0);
  const auto b = cpu::bellman_ford(g, 0);
  EXPECT_EQ(a.dist, b.dist);
}

TEST(CpuSssp, AgreeOnRoadTopology) {
  auto g = graph::gen::road_network(4000, 17);
  graph::assign_uniform_weights(g, 1, 100, 6);
  const auto src = graph::suggest_source(g);
  EXPECT_EQ(cpu::dijkstra(g, src).dist, cpu::bellman_ford(g, src).dist);
}

TEST(CpuBfsVsSssp, UnitWeightsDistEqualsLevel) {
  auto g = graph::gen::erdos_renyi(1500, 6000, 123);
  graph::assign_uniform_weights(g, 1, 1, 1);
  const auto bfs = cpu::bfs(g, 3);
  const auto sssp = cpu::dijkstra(g, 3);
  EXPECT_EQ(bfs.level, sssp.dist);
}

TEST(CpuModel, MoreWorkCostsMore) {
  const auto& m = cpu::CpuModel::core_i7();
  cpu::BfsCounts small{1000, 5000, 10};
  cpu::BfsCounts large{10000, 50000, 10};
  EXPECT_LT(m.bfs_time_us(small, 100000), m.bfs_time_us(large, 100000));
}

TEST(CpuModel, CacheSpillIncreasesPerEdgeCost) {
  const auto& m = cpu::CpuModel::core_i7();
  cpu::BfsCounts counts{100000, 1000000, 10};
  const double fits = m.bfs_time_us(counts, 100000);        // 0.5 MB state
  const double spills = m.bfs_time_us(counts, 10'000'000);  // 50 MB state
  EXPECT_GT(spills, fits * 2.0);
}

TEST(CpuModel, DijkstraScalesWithHeapDepth) {
  const auto& m = cpu::CpuModel::core_i7();
  cpu::SsspCounts counts;
  counts.heap_pops = 100000;
  counts.heap_pushes = 100000;
  counts.edges_relaxed = 500000;
  EXPECT_LT(m.dijkstra_time_us(counts, 1 << 10),
            m.dijkstra_time_us(counts, 1 << 20));
}

}  // namespace
