#include <gtest/gtest.h>

#include "graph/gen/datasets.h"
#include "graph/gen/generators.h"
#include "graph/graph_stats.h"

namespace {

using graph::GraphStats;
namespace gen = graph::gen;

TEST(Road, HitsTargetSizeApproximately) {
  const auto g = gen::road_network(50000, 1);
  EXPECT_NEAR(static_cast<double>(g.num_nodes), 50000.0, 50000.0 * 0.15);
}

TEST(Road, SparseLowDegreeLargeDiameter) {
  const auto g = gen::road_network(20000, 2);
  const auto s = GraphStats::compute(g);
  EXPECT_LE(s.outdeg_max, 8u);
  EXPECT_GT(s.outdeg_avg, 1.5);
  EXPECT_LT(s.outdeg_avg, 3.5);
  const auto reach = graph::compute_reach(g, graph::suggest_source(g));
  // Grid-like topology: diameter scales with sqrt(n) times chain length.
  EXPECT_GT(reach.levels, 50u);
  EXPECT_GT(reach.reachable_nodes, g.num_nodes * 9 / 10);
}

TEST(Road, Deterministic) {
  const auto a = gen::road_network(5000, 42);
  const auto b = gen::road_network(5000, 42);
  EXPECT_EQ(a.col_indices, b.col_indices);
  const auto c = gen::road_network(5000, 43);
  EXPECT_NE(a.col_indices, c.col_indices);
}

TEST(Road, IsSymmetric) {
  const auto g = gen::road_network(3000, 7);
  const auto t = graph::transpose(g);
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    std::vector<std::uint32_t> a(g.neighbors(v).begin(), g.neighbors(v).end());
    std::vector<std::uint32_t> b(t.neighbors(v).begin(), t.neighbors(v).end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b) << "asymmetry at node " << v;
  }
}

TEST(Regular, MatchesPaperDistribution) {
  const auto g = gen::regular_copurchase(50000, 3);
  const auto s = GraphStats::compute(g);
  EXPECT_EQ(s.outdeg_min, 1u);
  EXPECT_EQ(s.outdeg_max, 10u);
  // 70% at 10, rest uniform 1..9: mean = 0.7*10 + 0.3*5 = 8.5.
  EXPECT_NEAR(s.outdeg_avg, 8.5, 0.2);
  const double frac10 =
      static_cast<double>(s.outdeg_hist.count_exact(10)) / g.num_nodes;
  EXPECT_NEAR(frac10, 0.70, 0.02);
}

TEST(Regular, NoSelfLoops) {
  const auto g = gen::regular_copurchase(2000, 5);
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    for (const auto t : g.neighbors(v)) ASSERT_NE(t, v);
  }
}

TEST(PowerLaw, SolveAlphaHitsTargetMean) {
  gen::PowerLawParams p;
  p.num_nodes = 100000;
  p.head_fraction = 0.9;
  p.head_min = 1;
  p.head_max = 2;
  p.tail_min = 3;
  p.tail_max = 1188;
  p.planted_hubs = 0;
  p.seed = 11;
  p.tail_alpha = gen::solve_tail_alpha(p, 36.9);
  const auto g = gen::powerlaw_configuration(p);
  const auto s = GraphStats::compute(g);
  EXPECT_NEAR(s.outdeg_avg, 36.9, 36.9 * 0.08);
  // 90% of nodes in the head range.
  const double head_frac = s.outdeg_hist.cdf_at(2);
  EXPECT_NEAR(head_frac, 0.90, 0.02);
}

TEST(PowerLaw, PlantedHubsReachMaxDegree) {
  gen::PowerLawParams p;
  p.num_nodes = 20000;
  p.tail_max = 500;
  p.planted_hubs = 2;
  p.tail_alpha = 2.0;
  p.seed = 4;
  const auto g = gen::powerlaw_configuration(p);
  EXPECT_EQ(GraphStats::compute(g).outdeg_max, 500u);
}

TEST(Rmat, ProducesSkewedDegrees) {
  gen::RmatParams p;
  p.scale = 12;
  p.edges_per_node = 8;
  const auto g = gen::rmat(p);
  EXPECT_EQ(g.num_nodes, 4096u);
  EXPECT_EQ(g.num_edges(), 4096u * 8u);
  const auto s = GraphStats::compute(g);
  EXPECT_GT(s.outdeg_max, 4 * static_cast<std::uint32_t>(s.outdeg_avg));
}

TEST(ErdosRenyi, ExactEdgeCountNoSelfLoops) {
  const auto g = gen::erdos_renyi(1000, 5000, 6);
  EXPECT_EQ(g.num_edges(), 5000u);
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    for (const auto t : g.neighbors(v)) ASSERT_NE(t, v);
  }
}

// ---- dataset stand-ins (scaled instances; full-size checked in benches) ----

struct DatasetCase {
  gen::DatasetId id;
  double min_avg, max_avg;
};

class DatasetTest : public ::testing::TestWithParam<DatasetCase> {};

TEST_P(DatasetTest, ScaledInstanceMatchesTopologyClass) {
  const auto [id, min_avg, max_avg] = GetParam();
  const auto d = gen::make_dataset_scaled_to(id, 30000);
  EXPECT_EQ(d.name, gen::dataset_name(id));
  EXPECT_TRUE(d.csr.has_weights());
  EXPECT_GE(d.stats.outdeg_avg, min_avg);
  EXPECT_LE(d.stats.outdeg_avg, max_avg);
  EXPECT_LT(d.source, d.csr.num_nodes);
  EXPECT_GT(d.csr.degree(d.source), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetTest,
    ::testing::Values(DatasetCase{gen::DatasetId::co_road, 1.5, 3.5},
                      DatasetCase{gen::DatasetId::citeseer, 25.0, 50.0},
                      DatasetCase{gen::DatasetId::p2p, 3.5, 6.5},
                      DatasetCase{gen::DatasetId::amazon, 7.5, 9.5},
                      DatasetCase{gen::DatasetId::google, 5.0, 9.0},
                      DatasetCase{gen::DatasetId::sns, 6.0, 10.0}),
    [](const auto& info) {
      std::string n = gen::dataset_name(info.param.id);
      for (auto& c : n) c = c == '-' ? '_' : c;
      return n;
    });

TEST(Datasets, WeightsInDocumentedRange) {
  const auto d = gen::make_dataset_scaled_to(gen::DatasetId::amazon, 5000);
  std::uint32_t lo = 0xffffffffu, hi = 0;
  for (const auto w : d.csr.weights) {
    lo = std::min(lo, w);
    hi = std::max(hi, w);
  }
  EXPECT_GE(lo, 1u);
  EXPECT_LE(hi, 1000u);
  EXPECT_GT(hi, 500u);  // the range is actually used
}

TEST(Datasets, AllSixEnumerated) {
  EXPECT_EQ(gen::all_datasets().size(), 6u);
}

TEST(Datasets, ScaleShrinksNodeCount) {
  const auto small = gen::make_dataset(gen::DatasetId::p2p, 0.1);
  const auto larger = gen::make_dataset(gen::DatasetId::p2p, 0.5);
  EXPECT_LT(small.csr.num_nodes, larger.csr.num_nodes);
  EXPECT_NEAR(static_cast<double>(small.csr.num_nodes), 3669.0, 10.0);
}

}  // namespace
