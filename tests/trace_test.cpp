// The tracing subsystem: JSON writer/parser round trips, the counter
// registry, the Chrome trace_event and decision-JSONL sinks, and the
// end-to-end instrumentation of the engines and the adaptive runtime.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "graph/gen/generators.h"
#include "runtime/adaptive_engine.h"
#include "simt/device.h"
#include "trace/chrome_trace.h"
#include "trace/counters.h"
#include "trace/json_writer.h"
#include "trace/jsonl_trace.h"
#include "trace/trace_sink.h"

namespace {

// Every test leaves the global tracer/registry the way it found them.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    trace::Tracer::instance().clear();
    trace::CounterRegistry::instance().set_enabled(false);
    trace::CounterRegistry::instance().reset();
    EXPECT_FALSE(trace::active());
  }
};

TEST_F(TraceTest, InactiveByDefault) { EXPECT_FALSE(trace::active()); }

TEST_F(TraceTest, ActiveFollowsSinksAndRegistry) {
  trace::Tracer::instance().attach(std::make_unique<trace::TraceSink>());
  EXPECT_TRUE(trace::active());
  trace::Tracer::instance().clear();
  EXPECT_FALSE(trace::active());
  trace::CounterRegistry::instance().set_enabled(true);
  EXPECT_TRUE(trace::active());
  trace::CounterRegistry::instance().set_enabled(false);
  EXPECT_FALSE(trace::active());
}

TEST_F(TraceTest, JsonWriterRendersDeterministicNumbers) {
  trace::JsonWriter w;
  w.begin_object();
  w.field("int", 42);
  w.field("whole", 1288.0);
  w.field("frac", 0.5);
  w.field("neg", std::int64_t{-7});
  w.field("str", "a\"b\\c\n");
  w.field("flag", true);
  w.end_object();
  const std::string doc = w.take();
  EXPECT_NE(doc.find("\"int\":42"), std::string::npos);
  EXPECT_NE(doc.find("\"whole\":1288"), std::string::npos);  // no trailing .0
  EXPECT_NE(doc.find("\"frac\":0.5"), std::string::npos);
  EXPECT_NE(doc.find("\"str\":\"a\\\"b\\\\c\\n\""), std::string::npos);

  const auto parsed = trace::json_parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("int")->num_or(-1), 42);
  EXPECT_EQ(parsed->find("frac")->num_or(-1), 0.5);
  EXPECT_EQ(parsed->find("neg")->num_or(0), -7);
  EXPECT_EQ(parsed->find("str")->str_or(""), "a\"b\\c\n");
  EXPECT_TRUE(parsed->find("flag")->boolean);
}

TEST_F(TraceTest, JsonParserRejectsMalformedInput) {
  EXPECT_FALSE(trace::json_parse("{").has_value());
  EXPECT_FALSE(trace::json_parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(trace::json_parse("[1,2] trailing").has_value());
  EXPECT_FALSE(trace::json_parse("").has_value());
  EXPECT_TRUE(trace::json_parse("{\"a\":[1,2,{\"b\":null}]}").has_value());
}

TEST_F(TraceTest, CounterRegistryAccumulatesAndResets) {
  auto& reg = trace::CounterRegistry::instance();
  reg.set_enabled(true);
  reg.counter("t.count").add();
  reg.counter("t.count").add(2.5);
  reg.gauge("t.peak").set_max(5);
  reg.gauge("t.peak").set_max(3);  // lower: ignored
  EXPECT_EQ(reg.counter_value("t.count"), 3.5);
  EXPECT_EQ(reg.gauge_value("t.peak"), 5);
  EXPECT_EQ(reg.counter_value("t.never_touched"), 0);

  const auto parsed = trace::json_parse(reg.to_json());
  ASSERT_TRUE(parsed.has_value());
  const auto* counters = parsed->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("t.count")->num_or(-1), 3.5);

  // Handles survive reset (values zeroed, entries kept).
  trace::Counter& handle = reg.counter("t.count");
  reg.reset();
  EXPECT_EQ(reg.counter_value("t.count"), 0);
  handle.add(7);
  EXPECT_EQ(reg.counter_value("t.count"), 7);
}

TEST_F(TraceTest, DeviceEventsReachChromeSink) {
  auto* sink = static_cast<trace::ChromeTraceSink*>(trace::Tracer::instance().attach(
      std::make_unique<trace::ChromeTraceSink>("", /*kernel_lanes=*/3)));
  simt::Device dev;
  auto buf = dev.alloc<std::uint32_t>(1024, "buf");
  dev.fill(buf, 1u);  // one kernel
  std::vector<std::uint32_t> host(1024, 0);
  dev.memcpy_d2h(std::span<std::uint32_t>(host), buf);  // one transfer
  dev.account_host_compute(12.5);                       // one host phase

  const auto parsed = trace::json_parse(sink->json());
  ASSERT_TRUE(parsed.has_value());
  const auto* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int kernels = 0, transfers = 0, hosts = 0;
  for (const auto& e : events->items) {
    const auto name = e.find("name")->str_or("");
    if (name == "fill") ++kernels;
    if (name == "memcpy.d2h") ++transfers;
    if (name == "host.compute") ++hosts;
  }
  EXPECT_EQ(kernels, 1);
  EXPECT_EQ(transfers, 1);
  EXPECT_EQ(hosts, 1);
}

TEST_F(TraceTest, AdaptiveRunEmitsIterationAndDecisionEvents) {
  auto* sink = static_cast<trace::ChromeTraceSink*>(trace::Tracer::instance().attach(
      std::make_unique<trace::ChromeTraceSink>()));
  trace::CounterRegistry::instance().set_enabled(true);

  const graph::Csr g = graph::gen::rmat({.scale = 12, .seed = 5});
  simt::Device dev;
  rt::AdaptiveOptions opts;
  opts.monitor_interval = 1;
  const auto r = rt::adaptive_bfs(dev, g, 0, opts);

  const auto parsed = trace::json_parse(sink->json());
  ASSERT_TRUE(parsed.has_value());
  int iterations = 0, decisions = 0;
  for (const auto& e : parsed->find("traceEvents")->items) {
    const auto name = e.find("name")->str_or("");
    if (name == "bfs.iteration") ++iterations;
    if (name == "bfs.decision") {
      ++decisions;
      const auto* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_GT(args->find("t1")->num_or(0), 0);
      EXPECT_GT(args->find("t2")->num_or(0), 0);
      EXPECT_GT(args->find("t3")->num_or(0), 0);
      EXPECT_EQ(args->find("interval")->num_or(0), 1);
      EXPECT_FALSE(args->find("variant")->str_or("").empty());
    }
  }
  EXPECT_EQ(iterations, static_cast<int>(r.metrics.iterations.size()));
  EXPECT_GE(decisions, 1);

  auto& reg = trace::CounterRegistry::instance();
  EXPECT_EQ(reg.counter_value("engine.iterations"),
            static_cast<double>(r.metrics.iterations.size()));
  EXPECT_EQ(reg.counter_value("engine.edges_processed"),
            static_cast<double>(r.metrics.edges_processed));
  EXPECT_EQ(reg.counter_value("rt.switches"),
            static_cast<double>(r.metrics.switches));
  EXPECT_GT(reg.counter_value("simt.kernels"), 0);
  EXPECT_GT(reg.counter_value("simt.transactions"), 0);
}

TEST_F(TraceTest, ThresholdSweepRecordsVariantSwitch) {
  // Thresholds pinned so the RMAT traversal crosses T2/T3 boundaries as the
  // frontier grows and shrinks: at least one switch must be recorded with
  // its inputs.
  auto* sink = static_cast<trace::JsonlDecisionSink*>(trace::Tracer::instance().attach(
      std::make_unique<trace::JsonlDecisionSink>()));

  const graph::Csr g = graph::gen::rmat({.scale = 13, .seed = 3});
  simt::Device dev;
  rt::AdaptiveOptions opts;
  opts.thresholds_overridden = true;
  opts.thresholds.t1_avg_outdegree = 32;
  opts.thresholds.t2_ws_size = 64;
  opts.thresholds.t3_fraction = 0.05;
  opts.monitor_interval = 1;
  (void)rt::adaptive_bfs(dev, g, 0, opts);

  EXPECT_GE(sink->decisions(), 2u);
  EXPECT_GE(sink->switches(), 1u);

  // Every line is a complete JSON object carrying the decision inputs.
  std::size_t lines = 0;
  bool saw_switch = false;
  const std::string& data = sink->data();
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t nl = data.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    const auto line = trace::json_parse(data.substr(pos, nl - pos));
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(line->find("kind")->str_or(""), "decision");
    EXPECT_EQ(line->find("t1")->num_or(0), 32);
    EXPECT_EQ(line->find("t2")->num_or(0), 64);
    EXPECT_EQ(line->find("num_nodes")->num_or(0), g.num_nodes);
    if (line->find("switched")->boolean) {
      saw_switch = true;
      EXPECT_FALSE(line->find("prev_variant")->str_or("").empty());
      EXPECT_NE(line->find("prev_variant")->str_or(""),
                line->find("variant")->str_or(""));
    }
    ++lines;
    pos = nl + 1;
  }
  EXPECT_EQ(lines, sink->decisions());
  EXPECT_TRUE(saw_switch);
}

TEST_F(TraceTest, SequenceNumbersAreMonotonic) {
  struct SeqSink : trace::TraceSink {
    std::vector<std::uint64_t> seqs;
    void kernel(const trace::KernelEvent& ev) override { seqs.push_back(ev.seq); }
    void transfer(const trace::TransferEvent& ev) override {
      seqs.push_back(ev.seq);
    }
  };
  auto* sink = static_cast<SeqSink*>(
      trace::Tracer::instance().attach(std::make_unique<SeqSink>()));
  simt::Device dev;
  auto buf = dev.alloc<std::uint32_t>(256, "buf");
  dev.fill(buf, 0u);
  dev.write_scalar(buf, 0, 1u);
  dev.fill(buf, 2u);
  ASSERT_EQ(sink->seqs.size(), 3u);
  for (std::size_t i = 1; i < sink->seqs.size(); ++i) {
    EXPECT_EQ(sink->seqs[i], sink->seqs[i - 1] + 1);
  }
}

}  // namespace
