// Failure injection for the IO layer and API preconditions: malformed and
// truncated inputs must fail loudly — the aborting read_* wrappers via
// AGG_CHECK, the try_read_* readers via typed IoError — and never load
// garbage. The fuzz section below drives a seeded mutation loop over all
// three formats through the typed readers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "api/algorithms.h"
#include "api/graph_api.h"
#include "common/prng.h"
#include "graph/io.h"

namespace {

class IoFailureTest : public ::testing::Test {
 protected:
  std::string write_file(const char* name, const std::string& content) {
    const auto p = (std::filesystem::temp_directory_path() / name).string();
    std::ofstream out(p, std::ios::binary);
    out << content;
    cleanup_.push_back(p);
    return p;
  }
  void TearDown() override {
    for (const auto& p : cleanup_) std::remove(p.c_str());
  }
  std::vector<std::string> cleanup_;
};

using IoFailureDeathTest = IoFailureTest;

TEST_F(IoFailureDeathTest, MissingFileAborts) {
  EXPECT_DEATH(graph::read_dimacs("/nonexistent/path.gr"), "nonexistent");
}

TEST_F(IoFailureDeathTest, DimacsMalformedProblemLine) {
  const auto p = write_file("bad1.gr", "p sp oops\n");
  EXPECT_DEATH(graph::read_dimacs(p), "malformed DIMACS problem line");
}

TEST_F(IoFailureDeathTest, DimacsArcCountMismatch) {
  const auto p = write_file("bad2.gr", "p sp 3 2\na 1 2 5\n");
  EXPECT_DEATH(graph::read_dimacs(p), "arc count mismatch");
}

TEST_F(IoFailureDeathTest, DimacsNodeIdOutOfRange) {
  const auto p = write_file("bad3.gr", "p sp 2 1\na 1 9 5\n");
  EXPECT_DEATH(graph::read_dimacs(p), "");
}

TEST_F(IoFailureDeathTest, SnapMalformedLine) {
  const auto p = write_file("bad4.txt", "0\t1\nnot numbers\n");
  EXPECT_DEATH(graph::read_snap_edgelist(p), "malformed SNAP edge line");
}

TEST_F(IoFailureDeathTest, BinaryBadMagic) {
  const auto p = write_file("bad5.agg", "XXXXXXXXsome random bytes beyond");
  EXPECT_DEATH(graph::read_binary(p), "bad magic");
}

TEST_F(IoFailureDeathTest, BinaryTruncated) {
  // Valid magic, then a header promising more data than the file holds.
  std::string content = "AGGCSR01";
  const std::uint64_t n = 1000, m = 1000, w = 0;
  content.append(reinterpret_cast<const char*>(&n), 8);
  content.append(reinterpret_cast<const char*>(&m), 8);
  content.append(reinterpret_cast<const char*>(&w), 8);
  content.append(16, '\0');  // far short of (n+1 + m) * 4 bytes
  const auto p = write_file("bad6.agg", content);
  EXPECT_DEATH(graph::read_binary(p), "");
}

TEST_F(IoFailureTest, DimacsCommentsAndBlankLinesIgnored) {
  const auto p = write_file("ok.gr",
                            "c comment line\n\np sp 2 1\nc another\na 1 2 7\n");
  const auto g = graph::read_dimacs(p);
  EXPECT_EQ(g.num_nodes, 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.weights[0], 7u);
}

TEST_F(IoFailureTest, SnapCommentsIgnored) {
  const auto p = write_file("ok.txt", "# Nodes: 2\n0\t1\n");
  const auto g = graph::read_snap_edgelist(p);
  EXPECT_EQ(g.num_nodes, 2u);
  EXPECT_EQ(g.num_edges(), 1u);
}

// ---- typed (non-aborting) readers --------------------------------------------

using IoTypedErrorTest = IoFailureTest;

TEST_F(IoTypedErrorTest, MissingFileIsOpenFailed) {
  const auto r = graph::try_read_dimacs("/nonexistent/path.gr");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error.kind, graph::IoErrorKind::open_failed);
}

TEST_F(IoTypedErrorTest, DimacsCorpusMapsToKinds) {
  struct Case {
    const char* content;
    graph::IoErrorKind kind;
  };
  const Case cases[] = {
      {"p sp oops\n", graph::IoErrorKind::bad_header},
      {"a 1 2 3\n", graph::IoErrorKind::bad_header},  // arc before header
      {"", graph::IoErrorKind::bad_header},           // no header at all
      {"p sp 3 2\na 1 2 5\n", graph::IoErrorKind::count_mismatch},
      {"p sp 2 1\na 1 9 5\n", graph::IoErrorKind::bad_record},
      {"p sp 2 1\na one two 5\n", graph::IoErrorKind::bad_record},
      {"p sp 2 1\na 1 2 99999999999\n", graph::IoErrorKind::overflow},
      {"p sp 99999999999 1\na 1 2 5\n", graph::IoErrorKind::overflow},
  };
  int i = 0;
  for (const Case& c : cases) {
    const auto p = write_file(("typed" + std::to_string(i++) + ".gr").c_str(),
                              c.content);
    const auto r = graph::try_read_dimacs(p);
    ASSERT_FALSE(r.ok()) << c.content;
    EXPECT_EQ(r.error.kind, c.kind)
        << c.content << " -> " << graph::io_error_kind_name(r.error.kind)
        << " (" << r.error.message << ")";
    EXPECT_FALSE(r.error.message.empty());
  }
}

TEST_F(IoTypedErrorTest, SnapCorpusMapsToKinds) {
  const auto bad = write_file("typed_bad.txt", "0\t1\nnot numbers\n");
  auto r = graph::try_read_snap_edgelist(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error.kind, graph::IoErrorKind::bad_record);

  const auto over = write_file("typed_over.txt", "0\t123456789123456789\n");
  r = graph::try_read_snap_edgelist(over);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error.kind, graph::IoErrorKind::overflow);

  const auto ok = write_file("typed_ok.txt", "# header\n0\t1\n1\t0\n");
  r = graph::try_read_snap_edgelist(ok);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.graph.num_nodes, 2u);
}

TEST_F(IoTypedErrorTest, BinaryCorpusMapsToKinds) {
  auto header = [](std::uint64_t n, std::uint64_t m, std::uint64_t w) {
    std::string s = "AGGCSR01";
    s.append(reinterpret_cast<const char*>(&n), 8);
    s.append(reinterpret_cast<const char*>(&m), 8);
    s.append(reinterpret_cast<const char*>(&w), 8);
    return s;
  };
  struct Case {
    std::string content;
    graph::IoErrorKind kind;
  };
  const Case cases[] = {
      {"XX", graph::IoErrorKind::truncated},
      {"XXXXXXXXjunk", graph::IoErrorKind::bad_magic},
      {"AGGCSR01\x01", graph::IoErrorKind::truncated},
      // Header promises more data than the file holds.
      {header(1000, 1000, 0) + std::string(16, '\0'),
       graph::IoErrorKind::truncated},
      // Absurd counts must be rejected before any allocation is sized.
      {header(0xffffffffffffffffull, 8, 0), graph::IoErrorKind::overflow},
      {header(8, 0xffffffffffffffffull, 0), graph::IoErrorKind::overflow},
      // Structurally invalid payload: offsets that don't end at the edge
      // count (n=1, m=1, row_offsets = {0, 9}).
      {header(1, 1, 0) + std::string("\x00\x00\x00\x00\x09\x00\x00\x00"
                                     "\x00\x00\x00\x00",
                                     12),
       graph::IoErrorKind::invalid_graph},
  };
  int i = 0;
  for (const Case& c : cases) {
    const auto p = write_file(("typedb" + std::to_string(i++) + ".agg").c_str(),
                              c.content);
    const auto r = graph::try_read_binary(p);
    ASSERT_FALSE(r.ok()) << i;
    EXPECT_EQ(r.error.kind, c.kind)
        << "case " << (i - 1) << " -> "
        << graph::io_error_kind_name(r.error.kind) << " ("
        << r.error.message << ")";
  }
}

TEST_F(IoTypedErrorTest, BinaryRoundTripSurvivesTypedPath) {
  auto g = graph::csr_from_edges(
      3, std::vector<graph::Edge>{{0, 1}, {1, 2}, {2, 0}});
  graph::assign_uniform_weights(g, 1, 9, 7);
  const auto p = write_file("roundtrip.agg", "");
  graph::write_binary(g, p);
  const auto r = graph::try_read_binary(p);
  ASSERT_TRUE(r.ok()) << r.error.message;
  EXPECT_EQ(r.graph.num_nodes, 3u);
  EXPECT_EQ(r.graph.num_edges(), 3u);
  EXPECT_EQ(r.graph.weights, g.weights);
}

// ---- structure-aware fuzz pass -----------------------------------------------
//
// Seeded mutation loop: start from a valid file of each format, apply
// deterministic structural mutations (truncation, byte corruption, garbage
// line injection), and require every mutant to either parse into a CSR whose
// invariants hold or fail with a typed IoError — never abort, crash, or
// silently truncate into an invalid graph.

class IoFuzzTest : public IoFailureTest {
 protected:
  // Applies one deterministic mutation drawn from `rng`.
  static std::string mutate(std::string s, agg::Prng& rng) {
    switch (rng.bounded(4)) {
      case 0:  // truncate
        return s.substr(0, rng.bounded(s.size() + 1));
      case 1: {  // flip a byte
        if (s.empty()) return s;
        s[rng.bounded(s.size())] = static_cast<char>(rng.next_u32() & 0xff);
        return s;
      }
      case 2: {  // insert garbage
        std::string junk;
        for (int i = 0; i < 8; ++i) {
          junk += static_cast<char>(rng.next_u32() & 0xff);
        }
        s.insert(rng.bounded(s.size() + 1), junk);
        return s;
      }
      default: {  // duplicate a slice (re-ordered records / double headers)
        if (s.empty()) return s;
        const std::size_t at = rng.bounded(s.size());
        const std::size_t len = 1 + rng.bounded(std::min<std::size_t>(
                                        16, s.size() - at));
        s.insert(at, s.substr(at, len));
        return s;
      }
    }
  }

  template <typename Reader>
  void run(const char* tag, const std::string& seed_content, Reader reader,
           int rounds) {
    agg::Prng rng(0xf0220000 + static_cast<std::uint64_t>(tag[0]));
    for (int i = 0; i < rounds; ++i) {
      std::string content = seed_content;
      const int kicks = 1 + static_cast<int>(rng.bounded(3));
      for (int k = 0; k < kicks; ++k) content = mutate(std::move(content), rng);
      const auto p = write_file(
          (std::string("fuzz_") + tag + std::to_string(i)).c_str(), content);
      const graph::IoResult r = reader(p);
      if (r.ok()) {
        // Accepted input must satisfy every structural invariant.
        EXPECT_TRUE(r.graph.validate_error().empty())
            << tag << " round " << i << ": accepted an invalid graph";
      } else {
        EXPECT_NE(r.error.kind, graph::IoErrorKind::none);
        EXPECT_FALSE(r.error.message.empty());
      }
    }
  }
};

TEST_F(IoFuzzTest, DimacsMutants) {
  std::string seed = "c fuzz seed\np sp 4 5\n";
  seed += "a 1 2 3\na 2 3 1\na 3 4 2\na 4 1 9\na 1 3 4\n";
  run("gr", seed, graph::try_read_dimacs, 120);
}

TEST_F(IoFuzzTest, SnapMutants) {
  const std::string seed = "# Nodes: 4\n0\t1\n1\t2\n2\t3\n3\t0\n1\t3\n";
  run("sn", seed, graph::try_read_snap_edgelist, 120);
}

TEST_F(IoFuzzTest, BinaryMutants) {
  auto g = graph::csr_from_edges(
      5, std::vector<graph::Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  graph::assign_uniform_weights(g, 1, 9, 3);
  const auto seed_path = write_file("fuzz_seed.agg", "");
  graph::write_binary(g, seed_path);
  std::ifstream in(seed_path, std::ios::binary);
  std::string seed((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  ASSERT_FALSE(seed.empty());
  run("bin", seed, graph::try_read_binary, 150);
}

// ---- API precondition failures ------------------------------------------------

using ApiFailureDeathTest = ::testing::Test;

TEST(ApiFailureDeathTest, BfsSourceOutOfRange) {
  const auto g = adaptive::Graph::from_edges(2, {{0, 1}});
  EXPECT_DEATH(adaptive::bfs(g, 5), "");
}

TEST(ApiFailureDeathTest, InvalidVariantName) {
  EXPECT_DEATH(adaptive::Policy::fixed("U_X_BM"), "");
  EXPECT_DEATH(adaptive::Policy::fixed("bogus"), "variant names");
}

TEST(ApiFailureDeathTest, CsrValidateRejectsCorruptOffsets) {
  graph::Csr g;
  g.num_nodes = 2;
  g.row_offsets = {0, 5, 1};  // non-monotone
  g.col_indices = {0};
  EXPECT_DEATH(g.validate(), "");
}

TEST(ApiFailureDeathTest, CsrValidateRejectsOutOfRangeTarget) {
  graph::Csr g;
  g.num_nodes = 2;
  g.row_offsets = {0, 1, 1};
  g.col_indices = {7};
  EXPECT_DEATH(g.validate(), "edge target out of range");
}

TEST(ApiFailureDeathTest, ZeroWeightRejected) {
  auto g = graph::csr_from_edges(2, std::vector<graph::Edge>{{0, 1}});
  EXPECT_DEATH(graph::assign_uniform_weights(g, 0, 5, 1), "");
}

}  // namespace
