// Failure injection for the IO layer and API preconditions: malformed and
// truncated inputs must fail loudly (AGG_CHECK aborts), never load garbage.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "api/algorithms.h"
#include "api/graph_api.h"
#include "graph/io.h"

namespace {

class IoFailureTest : public ::testing::Test {
 protected:
  std::string write_file(const char* name, const std::string& content) {
    const auto p = (std::filesystem::temp_directory_path() / name).string();
    std::ofstream out(p, std::ios::binary);
    out << content;
    cleanup_.push_back(p);
    return p;
  }
  void TearDown() override {
    for (const auto& p : cleanup_) std::remove(p.c_str());
  }
  std::vector<std::string> cleanup_;
};

using IoFailureDeathTest = IoFailureTest;

TEST_F(IoFailureDeathTest, MissingFileAborts) {
  EXPECT_DEATH(graph::read_dimacs("/nonexistent/path.gr"), "nonexistent");
}

TEST_F(IoFailureDeathTest, DimacsMalformedProblemLine) {
  const auto p = write_file("bad1.gr", "p sp oops\n");
  EXPECT_DEATH(graph::read_dimacs(p), "malformed DIMACS problem line");
}

TEST_F(IoFailureDeathTest, DimacsArcCountMismatch) {
  const auto p = write_file("bad2.gr", "p sp 3 2\na 1 2 5\n");
  EXPECT_DEATH(graph::read_dimacs(p), "arc count mismatch");
}

TEST_F(IoFailureDeathTest, DimacsNodeIdOutOfRange) {
  const auto p = write_file("bad3.gr", "p sp 2 1\na 1 9 5\n");
  EXPECT_DEATH(graph::read_dimacs(p), "");
}

TEST_F(IoFailureDeathTest, SnapMalformedLine) {
  const auto p = write_file("bad4.txt", "0\t1\nnot numbers\n");
  EXPECT_DEATH(graph::read_snap_edgelist(p), "malformed SNAP edge line");
}

TEST_F(IoFailureDeathTest, BinaryBadMagic) {
  const auto p = write_file("bad5.agg", "XXXXXXXXsome random bytes beyond");
  EXPECT_DEATH(graph::read_binary(p), "bad magic");
}

TEST_F(IoFailureDeathTest, BinaryTruncated) {
  // Valid magic, then a header promising more data than the file holds.
  std::string content = "AGGCSR01";
  const std::uint64_t n = 1000, m = 1000, w = 0;
  content.append(reinterpret_cast<const char*>(&n), 8);
  content.append(reinterpret_cast<const char*>(&m), 8);
  content.append(reinterpret_cast<const char*>(&w), 8);
  content.append(16, '\0');  // far short of (n+1 + m) * 4 bytes
  const auto p = write_file("bad6.agg", content);
  EXPECT_DEATH(graph::read_binary(p), "");
}

TEST_F(IoFailureTest, DimacsCommentsAndBlankLinesIgnored) {
  const auto p = write_file("ok.gr",
                            "c comment line\n\np sp 2 1\nc another\na 1 2 7\n");
  const auto g = graph::read_dimacs(p);
  EXPECT_EQ(g.num_nodes, 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.weights[0], 7u);
}

TEST_F(IoFailureTest, SnapCommentsIgnored) {
  const auto p = write_file("ok.txt", "# Nodes: 2\n0\t1\n");
  const auto g = graph::read_snap_edgelist(p);
  EXPECT_EQ(g.num_nodes, 2u);
  EXPECT_EQ(g.num_edges(), 1u);
}

// ---- API precondition failures ------------------------------------------------

using ApiFailureDeathTest = ::testing::Test;

TEST(ApiFailureDeathTest, BfsSourceOutOfRange) {
  const auto g = adaptive::Graph::from_edges(2, {{0, 1}});
  EXPECT_DEATH(adaptive::bfs(g, 5), "");
}

TEST(ApiFailureDeathTest, InvalidVariantName) {
  EXPECT_DEATH(adaptive::Policy::fixed("U_X_BM"), "");
  EXPECT_DEATH(adaptive::Policy::fixed("bogus"), "variant names");
}

TEST(ApiFailureDeathTest, CsrValidateRejectsCorruptOffsets) {
  graph::Csr g;
  g.num_nodes = 2;
  g.row_offsets = {0, 5, 1};  // non-monotone
  g.col_indices = {0};
  EXPECT_DEATH(g.validate(), "");
}

TEST(ApiFailureDeathTest, CsrValidateRejectsOutOfRangeTarget) {
  graph::Csr g;
  g.num_nodes = 2;
  g.row_offsets = {0, 1, 1};
  g.col_indices = {7};
  EXPECT_DEATH(g.validate(), "edge target out of range");
}

TEST(ApiFailureDeathTest, ZeroWeightRejected) {
  auto g = graph::csr_from_edges(2, std::vector<graph::Edge>{{0, 1}});
  EXPECT_DEATH(graph::assign_uniform_weights(g, 0, 5, 1), "");
}

}  // namespace
