#include <gtest/gtest.h>

#include <set>

#include "api/algorithms.h"
#include "cpu/cc_serial.h"
#include "gpu_graph/cc_engine.h"
#include "graph/gen/generators.h"
#include "runtime/adaptive_engine.h"

namespace {

using gg::Variant;

struct GraphCase {
  const char* name;
  graph::Csr csr;  // symmetric
};

std::vector<GraphCase>& test_graphs() {
  static std::vector<GraphCase> cases = [] {
    std::vector<GraphCase> out;
    {
      // Two triangles and an isolated node.
      const std::vector<graph::Edge> e{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}};
      out.push_back({"triangles", graph::symmetrize(graph::csr_from_edges(7, e))});
    }
    out.push_back({"er", graph::symmetrize(graph::gen::erdos_renyi(2000, 3000, 3))});
    out.push_back({"road", graph::gen::road_network(2500, 9)});  // already symmetric
    {
      graph::gen::PowerLawParams p;
      p.num_nodes = 3000;
      p.tail_max = 200;
      p.tail_alpha = 1.5;
      p.seed = 12;
      out.push_back({"powerlaw",
                     graph::symmetrize(graph::gen::powerlaw_configuration(p))});
    }
    return out;
  }();
  return cases;
}

struct CcCase {
  std::size_t graph_index;
  Variant variant;
};

std::vector<CcCase> all_cases() {
  std::vector<CcCase> cases;
  for (std::size_t g = 0; g < test_graphs().size(); ++g) {
    for (const Variant v : gg::unordered_variants()) cases.push_back({g, v});
    for (const Variant v : gg::warp_centric_variants()) cases.push_back({g, v});
  }
  return cases;
}

class GpuCcVariants : public ::testing::TestWithParam<CcCase> {};

TEST_P(GpuCcVariants, MatchesUnionFind) {
  const auto& [gi, variant] = GetParam();
  const auto& gc = test_graphs()[gi];
  const auto expected = cpu::connected_components(gc.csr);
  simt::Device dev;
  const auto got = gg::run_cc(dev, gc.csr, variant);
  EXPECT_EQ(got.component, expected.component) << gc.name;
  EXPECT_EQ(got.num_components, expected.num_components);
}

INSTANTIATE_TEST_SUITE_P(AllVariantsAllGraphs, GpuCcVariants,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) {
                           return std::string(test_graphs()[info.param.graph_index].name) +
                                  "_" + gg::variant_name(info.param.variant);
                         });

TEST(CpuCc, KnownPartition) {
  const auto& gc = test_graphs()[0];
  const auto r = cpu::connected_components(gc.csr);
  EXPECT_EQ(r.num_components, 3u);  // two triangles + isolated node 6
  EXPECT_EQ(r.component[0], 0u);
  EXPECT_EQ(r.component[1], 0u);
  EXPECT_EQ(r.component[2], 0u);
  EXPECT_EQ(r.component[3], 3u);
  EXPECT_EQ(r.component[5], 3u);
  EXPECT_EQ(r.component[6], 6u);
}

TEST(GpuCc, InitialWorkingSetIsAllNodes) {
  const auto& gc = test_graphs()[1];
  simt::Device dev;
  const auto got = gg::run_cc(dev, gc.csr, gg::parse_variant("U_T_BM"));
  ASSERT_FALSE(got.metrics.iterations.empty());
  EXPECT_EQ(got.metrics.iterations.front().ws_size, gc.csr.num_nodes);
  // Work shrinks as labels converge.
  EXPECT_LT(got.metrics.iterations.back().ws_size,
            got.metrics.iterations.front().ws_size);
}

TEST(GpuCc, AdaptiveMatchesUnionFind) {
  for (const auto& gc : test_graphs()) {
    const auto expected = cpu::connected_components(gc.csr);
    simt::Device dev;
    const auto got = rt::adaptive_cc(dev, gc.csr);
    ASSERT_EQ(got.component, expected.component) << gc.name;
  }
}

TEST(GpuCc, AdaptiveStartsLargeSoNotInBqURegion) {
  // Unlike BFS/SSSP, CC starts with |WS| = n, so on a graph with n above
  // the T2/T3 thresholds the first decision lands in the bitmap region of
  // the decision space.
  auto big = graph::symmetrize(graph::gen::erdos_renyi(20000, 30000, 4));
  simt::Device dev;
  const auto got = rt::adaptive_cc(dev, big);
  ASSERT_FALSE(got.metrics.iterations.empty());
  EXPECT_EQ(got.metrics.iterations.front().variant.repr,
            gg::WorksetRepr::bitmap);
}

TEST(GpuCc, DeterministicAcrossRuns) {
  const auto& gc = test_graphs()[3];
  simt::Device d1, d2;
  const auto a = gg::run_cc(d1, gc.csr, gg::parse_variant("U_B_QU"));
  const auto b = gg::run_cc(d2, gc.csr, gg::parse_variant("U_B_QU"));
  EXPECT_EQ(a.component, b.component);
  EXPECT_DOUBLE_EQ(a.metrics.total_us, b.metrics.total_us);
}

TEST(ApiCc, SymmetrizeHandlesDirectedInput) {
  // A directed chain is weakly connected.
  const auto g = adaptive::Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto out = adaptive::cc(g);
  EXPECT_EQ(out.num_components, 1u);
  for (const auto c : out.component) EXPECT_EQ(c, 0u);
}

TEST(ApiCc, WithoutSymmetrizeLabelsFollowDirectedReachability) {
  // Without reverse arcs, min-label propagation only flows along edges.
  const auto g = adaptive::Graph::from_edges(3, {{0, 1}, {1, 2}});
  const auto out = adaptive::cc(
      g, adaptive::Policy::adapt().with_symmetrize(adaptive::Symmetrize::never));
  EXPECT_EQ(out.component[0], 0u);
  EXPECT_EQ(out.component[2], 0u);  // label 0 reaches 2 along the chain
}

TEST(ApiCc, AllPoliciesAgree) {
  auto csr = graph::symmetrize(graph::gen::erdos_renyi(1500, 2200, 8));
  const auto g = adaptive::Graph::from_csr(std::move(csr));
  constexpr auto kNever = adaptive::Symmetrize::never;
  const auto cpu_out =
      adaptive::cc(g, adaptive::Policy::cpu().with_symmetrize(kNever));
  const auto adapt_out =
      adaptive::cc(g, adaptive::Policy::adapt().with_symmetrize(kNever));
  const auto fixed_out =
      adaptive::cc(g, adaptive::Policy::fixed("U_W_QU").with_symmetrize(kNever));
  EXPECT_EQ(adapt_out.component, cpu_out.component);
  EXPECT_EQ(fixed_out.component, cpu_out.component);
  EXPECT_EQ(adapt_out.num_components, cpu_out.num_components);
}

TEST(GpuCc, ComponentCountMatchesDistinctLabels) {
  const auto& gc = test_graphs()[2];
  simt::Device dev;
  const auto got = gg::run_cc(dev, gc.csr, gg::parse_variant("U_T_QU"));
  std::set<std::uint32_t> labels(got.component.begin(), got.component.end());
  EXPECT_EQ(labels.size(), got.num_components);
  // Every label is the minimum of its class: label[l] == l.
  for (const auto l : labels) EXPECT_EQ(got.component[l], l);
}

}  // namespace
