#include <gtest/gtest.h>

#include "cpu/sssp_serial.h"
#include "gpu_graph/edge_parallel.h"
#include "gpu_graph/sssp_engine.h"
#include "graph/coo.h"
#include "graph/gen/generators.h"

namespace {

TEST(Coo, RoundTripPreservesEverything) {
  auto g = graph::gen::erdos_renyi(500, 2500, 81);
  graph::assign_uniform_weights(g, 1, 9, 2);
  const auto coo = graph::Coo::from_csr(g);
  coo.validate();
  EXPECT_EQ(coo.num_edges(), g.num_edges());
  const auto back = coo.to_csr();
  EXPECT_EQ(back.row_offsets, g.row_offsets);
  EXPECT_EQ(back.col_indices, g.col_indices);
  EXPECT_EQ(back.weights, g.weights);
}

TEST(Coo, SourcesAreSortedInCsrOrder) {
  const auto g = graph::gen::erdos_renyi(200, 1000, 82);
  const auto coo = graph::Coo::from_csr(g);
  for (std::size_t i = 1; i < coo.src.size(); ++i) {
    EXPECT_LE(coo.src[i - 1], coo.src[i]);
  }
}

TEST(Coo, ValidateRejectsOutOfRange) {
  graph::Coo c;
  c.num_nodes = 2;
  c.src = {0};
  c.dst = {5};
  EXPECT_DEATH(c.validate(), "");
}

class EdgeParallelGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdgeParallelGraphs, MatchesDijkstra) {
  auto g = graph::gen::erdos_renyi(2000, 10000, GetParam());
  graph::assign_uniform_weights(g, 1, 100, GetParam());
  const auto expected = cpu::dijkstra(g, 0);
  simt::Device dev;
  const auto got = gg::run_sssp_edge_parallel(dev, g, 0);
  EXPECT_EQ(got.dist, expected.dist);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeParallelGraphs,
                         ::testing::Values(91ull, 92ull, 93ull));

TEST(EdgeParallel, RoundsTrackHopDepthNotNodeCount) {
  // Path graph: rounds ~ path length (the baseline's weakness).
  std::vector<graph::Edge> edges;
  for (std::uint32_t i = 0; i + 1 < 300; ++i) edges.push_back({i, i + 1});
  auto g = graph::csr_from_edges(300, edges);
  graph::assign_uniform_weights(g, 1, 1, 1);
  simt::Device dev;
  const auto got = gg::run_sssp_edge_parallel(dev, g, 0);
  EXPECT_GE(got.metrics.iterations.size(), 299u);
  EXPECT_EQ(got.dist[299], 299u);
}

TEST(EdgeParallel, EveryRoundCostsTheWholeEdgeArray) {
  auto g = graph::gen::road_network(3000, 83);
  graph::assign_uniform_weights(g, 1, 10, 3);
  const auto src = graph::suggest_source(g);
  simt::Device dev;
  const auto got = gg::run_sssp_edge_parallel(dev, g, src);
  EXPECT_EQ(got.metrics.edges_processed,
            got.metrics.iterations.size() * g.num_edges());
}

TEST(EdgeParallel, LosesToWorkingSetFrameworkOnRoads) {
  // Needs enough arcs that the per-round full-array scan dominates launch
  // overheads — the regime where the paper calls [7] "ineffective on sparse
  // graphs used in practice". (At full dataset scale the gap is ~10-25x;
  // see bench/ext_baseline.)
  auto g = graph::gen::road_network(25000, 84);
  graph::assign_uniform_weights(g, 1, 100, 4);
  const auto src = graph::suggest_source(g);
  simt::Device d1, d2;
  const auto ep = gg::run_sssp_edge_parallel(d1, g, src);
  const auto ws = gg::run_sssp(d2, g, src, gg::parse_variant("U_T_QU"));
  EXPECT_EQ(ep.dist, ws.dist);
  EXPECT_GT(ep.metrics.total_us, 1.5 * ws.metrics.total_us);
}

}  // namespace
