// Delta-aware cache invalidation (ISSUE 9): after a batched mutation, only
// entries whose source component intersects the delta are evicted; the
// survivors are re-keyed to the new version and keep hitting — and a stale
// answer is never served, proven against CPU oracles computed at each
// query's submission point.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/prng.h"
#include "cpu/bfs_serial.h"
#include "graph/delta.h"
#include "graph/gen/generators.h"
#include "service/graph_service.h"
#include "trace/counters.h"

namespace {

// K disjoint 16-node communities (dense enough that single-arc deletes keep
// them connected): the shape delta-aware invalidation is built for — a
// delta in one community provably cannot move answers rooted in another.
graph::Csr communities(std::uint32_t k) {
  std::vector<graph::Edge> edges;
  for (std::uint32_t c = 0; c < k; ++c) {
    const graph::NodeId base = c * 16;
    for (graph::NodeId u = 0; u < 16; ++u) {
      for (graph::NodeId v = 0; v < 16; ++v) {
        if (u != v) edges.push_back({base + u, base + v});
      }
    }
  }
  return graph::csr_from_edges(k * 16, edges);
}

svc::QueryRequest bfs_req(svc::GraphId gid, graph::NodeId source) {
  svc::QueryRequest req;
  req.algo = svc::Algo::bfs;
  req.graph = gid;
  req.source = source;
  return req;
}

svc::ServiceOptions cached_opts() {
  svc::ServiceOptions opts;
  opts.cache_bytes = 8u << 20;
  opts.batch_bfs = false;  // one entry per query, easier accounting
  return opts;
}

TEST(CacheInvalidation, ExactKeepSetAcrossDelta) {
  svc::GraphService service(cached_opts());
  const auto gid = service.add_graph(
      adaptive::Graph::from_csr(communities(4)));

  // Warm one BFS entry per community plus one whole-graph CC entry.
  for (std::uint32_t c = 0; c < 4; ++c) service.submit(bfs_req(gid, c * 16));
  svc::QueryRequest ccq;
  ccq.algo = svc::Algo::cc;
  ccq.graph = gid;
  service.submit(ccq);
  for (const auto& out : service.drain()) ASSERT_TRUE(out.ok());
  ASSERT_EQ(service.result_cache().entries(), 5u);

  // Delete one arc inside community 2.
  graph::EdgeDelta d;
  d.deletes.push_back({2 * 16, 2 * 16 + 1});
  service.submit_mutation(gid, d);
  for (const auto& out : service.drain()) ASSERT_TRUE(out.ok());

  // Exactly the community-2 BFS entry and the whole-graph CC entry drop.
  const auto& stats = service.result_cache().stats();
  EXPECT_EQ(stats.delta_kept, 3u);
  EXPECT_EQ(stats.delta_dropped, 2u);
  EXPECT_EQ(service.result_cache().entries(), 3u);

  // The survivors hit under the new version; the dropped ones miss and
  // recompute correctly.
  const graph::Csr now = service.graph(gid).csr();
  for (std::uint32_t c = 0; c < 4; ++c) service.submit(bfs_req(gid, c * 16));
  const auto outcomes = service.drain();
  ASSERT_EQ(outcomes.size(), 4u);
  for (std::uint32_t c = 0; c < 4; ++c) {
    EXPECT_EQ(outcomes[c].cached, c != 2) << "community " << c;
    EXPECT_EQ(outcomes[c].bfs().level, cpu::bfs(now, c * 16).level);
  }
}

TEST(CacheInvalidation, DeltaKeepCounterAndInsertTouchRules) {
  auto& reg = trace::CounterRegistry::instance();
  reg.set_enabled(true);
  reg.reset();
  svc::GraphService service(cached_opts());
  const auto gid = service.add_graph(
      adaptive::Graph::from_csr(communities(3)));
  for (std::uint32_t c = 0; c < 3; ++c) service.submit(bfs_req(gid, c * 16));
  service.drain();

  // An insert bridging communities 0 and 1 invalidates both of their
  // entries (the arc could extend either side's reachable set); community
  // 2 survives and bumps svc.cache.delta_keep.
  graph::EdgeDelta d;
  d.inserts.push_back({0, 16});
  service.submit_mutation(gid, d);
  service.drain();
  EXPECT_EQ(service.result_cache().stats().delta_kept, 1u);
  EXPECT_EQ(service.result_cache().stats().delta_dropped, 2u);
  EXPECT_EQ(reg.counter_value("svc.cache.delta_keep"), 1.0);
  EXPECT_EQ(reg.counter_value("svc.mutate"), 1.0);
  reg.set_enabled(false);
}

// Regression: a delete touching a cached BFS source must evict that entry
// even when the component stays connected (levels can still change).
TEST(CacheInvalidation, DeleteTouchingCachedSourceEvictsIt) {
  svc::GraphService service(cached_opts());
  const auto gid = service.add_graph(
      adaptive::Graph::from_csr(communities(2)));
  service.submit(bfs_req(gid, 0));
  service.drain();
  ASSERT_EQ(service.result_cache().entries(), 1u);

  graph::EdgeDelta d;
  d.deletes.push_back({0, 1});  // incident to the cached source
  service.submit_mutation(gid, d);
  service.drain();
  EXPECT_EQ(service.result_cache().entries(), 0u);

  service.submit(bfs_req(gid, 0));
  const auto outcomes = service.drain();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].cached);
  EXPECT_EQ(outcomes[0].bfs().level,
            cpu::bfs(service.graph(gid).csr(), 0).level);
}

// No stale hit, ever: a randomized read/mutate stream where every ok BFS
// answer — cached, collapsed, or computed — must equal the CPU oracle on
// the graph as of that query's admission point (mutations apply FIFO).
TEST(CacheInvalidation, RandomizedStreamNeverServesStaleAnswers) {
  svc::GraphService service(cached_opts());
  graph::Csr mirror = communities(5);
  const auto gid =
      service.add_graph(adaptive::Graph::from_csr(mirror));
  agg::Prng prng(42);
  std::map<svc::QueryId, std::vector<std::uint32_t>> expected;

  std::size_t checked = 0, hits = 0;
  for (int round = 0; round < 12; ++round) {
    for (int i = 0; i < 20; ++i) {
      if (prng.bernoulli(0.2)) {
        graph::EdgeDelta d;
        // Localized: one random delete + one random insert inside a single
        // random community, so other communities' entries keep surviving.
        const std::uint32_t c =
            static_cast<std::uint32_t>(prng.bounded(5)) * 16;
        const auto a = static_cast<graph::NodeId>(prng.bounded(16));
        auto b = static_cast<graph::NodeId>(prng.bounded(16));
        if (b == a) b = (b + 1) % 16;
        // Delete an existing arc of the community if one remains.
        bool deleted = false;
        for (std::uint32_t e = mirror.row_offsets[c + a];
             e < mirror.row_offsets[c + a + 1]; ++e) {
          d.deletes.push_back({c + a, mirror.col_indices[e]});
          deleted = true;
          break;
        }
        d.inserts.push_back({c + a, c + b});
        if (!deleted && d.inserts.empty()) continue;
        mirror = graph::apply_delta(mirror, d);
        ASSERT_TRUE(service.submit_mutation(gid, d).has_value());
      } else {
        const auto src =
            static_cast<graph::NodeId>(prng.bounded(mirror.num_nodes));
        const auto id = service.submit(bfs_req(gid, src));
        ASSERT_TRUE(id.has_value());
        expected[*id] = cpu::bfs(mirror, src).level;
      }
    }
    for (const auto& out : service.drain()) {
      ASSERT_TRUE(out.ok());
      if (out.mutation) continue;
      const auto it = expected.find(out.id);
      ASSERT_NE(it, expected.end());
      ASSERT_EQ(out.bfs().level, it->second)
          << "query " << out.id << " (cached=" << out.cached
          << " collapsed=" << out.collapsed << ")";
      ++checked;
      hits += out.cached;
    }
  }
  EXPECT_GT(checked, 100u);
  EXPECT_GT(hits, 0u);  // the cache did serve across deltas
  EXPECT_GT(service.result_cache().stats().delta_kept, 0u);
}

}  // namespace
