// The shared differential-test corpus: a randomized set of ~56 graphs
// covering all five topology families the paper evaluates (ER, road,
// regular co-purchase, power-law configuration, R-MAT, Watts–Strogatz)
// plus degenerate shapes (empty, self-loops, disconnected, stars, chains).
// conformance_test.cpp pushes every engine variant through it against the
// CPU oracles; direction_test.cpp replays the traversal algorithms in pull
// and direction-optimizing mode over the same graphs.
#pragma once

#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/gen/generators.h"

namespace testutil {

struct GraphCase {
  std::string name;
  graph::Csr csr;
};

inline std::vector<GraphCase> conformance_corpus() {
  std::vector<GraphCase> cases;
  auto add = [&](std::string name, graph::Csr g) {
    cases.push_back({std::move(name), std::move(g)});
  };

  // Five generator families, several seeds/sizes each.
  for (std::uint64_t s = 1; s <= 4; ++s) {
    add("er_small_" + std::to_string(s), graph::gen::erdos_renyi(200, 600, s));
    add("er_dense_" + std::to_string(s),
        graph::gen::erdos_renyi(400, 2000, 100 + s));
    add("road_" + std::to_string(s), graph::gen::road_network(250, s));
    add("road_big_" + std::to_string(s), graph::gen::road_network(450, 10 + s));
    add("regular_" + std::to_string(s), graph::gen::regular_copurchase(250, s));
    add("regular_big_" + std::to_string(s),
        graph::gen::regular_copurchase(350, 20 + s));
    graph::gen::PowerLawParams pl;
    pl.num_nodes = 300 + 50 * static_cast<std::uint32_t>(s);
    pl.tail_max = 40;
    pl.seed = s;
    add("powerlaw_" + std::to_string(s), graph::gen::powerlaw_configuration(pl));
    graph::gen::RmatParams rm;
    rm.scale = 8;
    rm.edges_per_node = (s % 2) ? 4 : 8;
    rm.seed = s;
    add("rmat_" + std::to_string(s), graph::gen::rmat(rm));
    add("ws_lattice_" + std::to_string(s),
        graph::gen::watts_strogatz(240, 4, 0.0, s));
    add("ws_rewired_" + std::to_string(s),
        graph::gen::watts_strogatz(320, 6, 0.5, 30 + s));
  }

  // Degenerate shapes.
  using E = graph::Edge;
  add("empty", graph::csr_from_edges(0, std::vector<E>{}));
  add("single_node", graph::csr_from_edges(1, std::vector<E>{}));
  add("self_loop", graph::csr_from_edges(1, std::vector<E>{{0, 0}}));
  add("loops_and_cycle",
      graph::csr_from_edges(
          3, std::vector<E>{{0, 0}, {0, 1}, {1, 2}, {2, 0}, {1, 1}}));
  {
    std::vector<E> two_cliques;
    for (std::uint32_t u = 0; u < 5; ++u)
      for (std::uint32_t v = 0; v < 5; ++v)
        if (u != v) {
          two_cliques.push_back({u, v});
          two_cliques.push_back({u + 5, v + 5});
        }
    add("disconnected", graph::csr_from_edges(10, two_cliques));
  }
  add("duplicate_edges",
      graph::csr_from_edges(
          4, std::vector<E>{{0, 1}, {0, 1}, {0, 1}, {1, 2}, {1, 2}, {2, 3}}));
  {
    std::vector<E> star;
    for (std::uint32_t i = 1; i < 64; ++i) star.push_back({0, i});
    add("star", graph::csr_from_edges(64, star));
  }
  {
    std::vector<E> chain;
    for (std::uint32_t i = 0; i + 1 < 80; ++i) chain.push_back({i, i + 1});
    add("chain", graph::csr_from_edges(80, chain));
  }
  add("two_node_cycle",
      graph::csr_from_edges(2, std::vector<E>{{0, 1}, {1, 0}}));
  // Isolated nodes around one edge: most of the graph is unreachable.
  add("mostly_isolated", graph::csr_from_edges(40, std::vector<E>{{3, 17}}));
  add("parallel_self_loops",
      graph::csr_from_edges(2, std::vector<E>{{0, 0}, {0, 0}, {0, 1}, {1, 1}}));
  return cases;
}

}  // namespace testutil
