#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "api/algorithms.h"
#include "cpu/pagerank_serial.h"
#include "gpu_graph/pagerank_engine.h"
#include "graph/gen/datasets.h"
#include "graph/gen/generators.h"
#include "runtime/adaptive_engine.h"

namespace {

using gg::Variant;

// Relative L1 distance between GPU (float) and CPU (double) rank vectors.
double rel_l1(const std::vector<float>& a, const std::vector<double>& b) {
  double diff = 0, norm = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff += std::abs(static_cast<double>(a[i]) - b[i]);
    norm += std::abs(b[i]);
  }
  return diff / norm;
}

struct GraphCase {
  const char* name;
  graph::Csr csr;
};

std::vector<GraphCase>& test_graphs() {
  static std::vector<GraphCase> cases = [] {
    std::vector<GraphCase> out;
    out.push_back({"er", graph::gen::erdos_renyi(2000, 10000, 51)});
    {
      graph::gen::PowerLawParams p;
      p.num_nodes = 2500;
      p.tail_max = 150;
      p.tail_alpha = 1.4;
      p.seed = 52;
      out.push_back({"powerlaw", graph::gen::powerlaw_configuration(p)});
    }
    out.push_back({"road", graph::gen::road_network(2000, 53)});
    return out;
  }();
  return cases;
}

struct PrCase {
  std::size_t graph_index;
  Variant variant;
};

std::vector<PrCase> all_cases() {
  std::vector<PrCase> cases;
  for (std::size_t g = 0; g < test_graphs().size(); ++g) {
    for (const Variant v : gg::unordered_variants()) cases.push_back({g, v});
    for (const Variant v : gg::warp_centric_variants()) cases.push_back({g, v});
  }
  return cases;
}

class GpuPageRankVariants : public ::testing::TestWithParam<PrCase> {};

TEST_P(GpuPageRankVariants, ConvergesToPowerIterationFixpoint) {
  const auto& [gi, variant] = GetParam();
  const auto& gc = test_graphs()[gi];
  const auto expected = cpu::pagerank(gc.csr);
  simt::Device dev;
  const auto got = gg::run_pagerank(dev, gc.csr, variant);
  EXPECT_LT(rel_l1(got.rank, expected.rank), 2e-3) << gc.name;
}

INSTANTIATE_TEST_SUITE_P(AllVariantsAllGraphs, GpuPageRankVariants,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) {
                           return std::string(test_graphs()[info.param.graph_index].name) +
                                  "_" + gg::variant_name(info.param.variant);
                         });

TEST(CpuPageRank, UniformOnRegularRing) {
  // A directed ring: perfectly symmetric, so all ranks are equal.
  std::vector<graph::Edge> edges;
  for (std::uint32_t v = 0; v < 100; ++v) edges.push_back({v, (v + 1) % 100});
  const auto g = graph::csr_from_edges(100, edges);
  const auto r = cpu::pagerank(g);
  for (const auto p : r.rank) EXPECT_NEAR(p, 0.01, 1e-6);
}

TEST(CpuPageRank, SinkOfAStarOutranksLeaves) {
  std::vector<graph::Edge> edges;
  for (std::uint32_t v = 1; v < 50; ++v) edges.push_back({v, 0});
  const auto g = graph::csr_from_edges(50, edges);
  const auto r = cpu::pagerank(g);
  for (std::uint32_t v = 1; v < 50; ++v) EXPECT_GT(r.rank[0], 5.0 * r.rank[v]);
}

TEST(CpuPageRank, RankMassBoundedByOne) {
  const auto g = graph::gen::erdos_renyi(1000, 4000, 5);
  const auto r = cpu::pagerank(g);
  const double total = std::accumulate(r.rank.begin(), r.rank.end(), 0.0);
  EXPECT_GT(total, 0.1);
  EXPECT_LE(total, 1.0 + 1e-9);  // dangling mass absorbed, never created
}

TEST(GpuPageRank, DampingChangesConcentration) {
  const auto& gc = test_graphs()[1];  // power law
  simt::Device d1, d2;
  gg::PageRankOptions low, high;
  low.damping = 0.5;
  high.damping = 0.95;
  const auto a = gg::run_pagerank(d1, gc.csr, gg::parse_variant("U_T_QU"), low);
  const auto b = gg::run_pagerank(d2, gc.csr, gg::parse_variant("U_T_QU"), high);
  // Higher damping concentrates more mass on well-linked nodes.
  const float max_a = *std::max_element(a.rank.begin(), a.rank.end());
  const float max_b = *std::max_element(b.rank.begin(), b.rank.end());
  const double sum_a = std::accumulate(a.rank.begin(), a.rank.end(), 0.0);
  const double sum_b = std::accumulate(b.rank.begin(), b.rank.end(), 0.0);
  EXPECT_GT(max_b / sum_b, max_a / sum_a);
}

TEST(GpuPageRank, WorkingSetShrinksAsResidualsDecay) {
  const auto& gc = test_graphs()[0];
  simt::Device dev;
  const auto got = gg::run_pagerank(dev, gc.csr, gg::parse_variant("U_T_BM"));
  ASSERT_GE(got.metrics.iterations.size(), 3u);
  EXPECT_EQ(got.metrics.iterations.front().ws_size, gc.csr.num_nodes);
  EXPECT_LT(got.metrics.iterations.back().ws_size,
            got.metrics.iterations.front().ws_size / 4);
}

TEST(GpuPageRank, TighterToleranceMoreAccurateAndSlower) {
  const auto& gc = test_graphs()[1];
  const auto expected = cpu::pagerank(gc.csr);
  simt::Device d1, d2;
  gg::PageRankOptions loose, tight;
  loose.push_tolerance = 1e-1;
  tight.push_tolerance = 1e-4;
  const auto a = gg::run_pagerank(d1, gc.csr, gg::parse_variant("U_B_QU"), loose);
  const auto b = gg::run_pagerank(d2, gc.csr, gg::parse_variant("U_B_QU"), tight);
  EXPECT_LT(rel_l1(b.rank, expected.rank), rel_l1(a.rank, expected.rank));
  EXPECT_GT(b.metrics.total_us, a.metrics.total_us);
}

TEST(GpuPageRank, DeterministicAcrossRuns) {
  const auto& gc = test_graphs()[1];
  simt::Device d1, d2;
  const auto a = gg::run_pagerank(d1, gc.csr, gg::parse_variant("U_B_BM"));
  const auto b = gg::run_pagerank(d2, gc.csr, gg::parse_variant("U_B_BM"));
  EXPECT_EQ(a.rank, b.rank);  // bitwise: same variant, same order
  EXPECT_DOUBLE_EQ(a.metrics.total_us, b.metrics.total_us);
}

TEST(ApiPageRank, AllPoliciesAgreeWithinTolerance) {
  const auto g = adaptive::Graph::from_csr(graph::gen::erdos_renyi(1500, 7000, 54));
  const auto cpu_out = adaptive::pagerank(g, 0.85, adaptive::Policy::cpu());
  const auto adapt_out = adaptive::pagerank(g);
  const auto fixed_out = adaptive::pagerank(g, 0.85, adaptive::Policy::fixed("U_W_QU"));
  double diff_a = 0, diff_f = 0, norm = 0;
  for (std::size_t i = 0; i < cpu_out.rank.size(); ++i) {
    diff_a += std::abs(adapt_out.rank[i] - cpu_out.rank[i]);
    diff_f += std::abs(fixed_out.rank[i] - cpu_out.rank[i]);
    norm += cpu_out.rank[i];
  }
  EXPECT_LT(diff_a / norm, 2e-3);
  EXPECT_LT(diff_f / norm, 2e-3);
}

TEST(ApiPageRank, RankCorrelatesWithInDegree) {
  // On the Google-like web graph, highly ranked pages should on average have
  // more inbound links (the paper's "rank the results" motivation). The
  // stand-in's in-degrees are near-Poisson, so we test the top decile's mean
  // in-degree, not a single hub.
  auto d = graph::gen::make_dataset_scaled_to(graph::gen::DatasetId::google, 8000);
  const auto g = adaptive::Graph::from_csr(std::move(d.csr));
  const auto out = adaptive::pagerank(g);
  const auto t = graph::transpose(g.csr());

  std::vector<std::uint32_t> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return out.rank[a] > out.rank[b];
  });
  const std::size_t decile = g.num_nodes() / 10;
  double top_in = 0;
  for (std::size_t i = 0; i < decile; ++i) top_in += t.degree(order[i]);
  top_in /= static_cast<double>(decile);
  const double avg_in =
      static_cast<double>(g.num_edges()) / static_cast<double>(g.num_nodes());
  EXPECT_GT(top_in, 1.3 * avg_in);
}

}  // namespace
