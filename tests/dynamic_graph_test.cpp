// Dynamic graphs (ISSUE 9): randomized metamorphic coverage of the batched
// mutation path over the shared conformance corpus.
//
//   - graph::apply_delta vs. a naive per-row reference rebuild (canonical
//     post-mutation layout, byte-for-byte);
//   - graph::IncrementalCc vs. from-scratch cpu::connected_components after
//     every delta of a randomized sequence (labels byte-identical);
//   - Session::mutate_graph: post-mutation queries equal fresh-session
//     oracles, device replicas are patched (dirty-region transfer bytes,
//     not a full re-upload), and results are identical at --sim-threads
//     1, 4 and the default pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "api/session.h"
#include "common/prng.h"
#include "conformance_corpus.h"
#include "cpu/bfs_serial.h"
#include "cpu/cc_serial.h"
#include "graph/delta.h"
#include "graph/incremental_cc.h"
#include "simt/exec_pool.h"

namespace {

// Deterministic random delta against `g`: ~half deletes of existing arcs
// (each arc position at most once, so multiplicity stays applicable), the
// rest random-endpoint inserts; weighted iff `g` is.
graph::EdgeDelta random_delta(agg::Prng& prng, const graph::Csr& g,
                              std::size_t ops) {
  graph::EdgeDelta d;
  if (g.num_nodes == 0) return d;
  std::vector<std::uint64_t> chosen;
  for (std::size_t i = 0; i < ops; ++i) {
    bool del = prng.bernoulli(0.5) && g.num_edges() > 0;
    if (del) {
      const std::uint64_t e = prng.bounded(g.num_edges());
      if (std::find(chosen.begin(), chosen.end(), e) != chosen.end()) {
        del = false;
      } else {
        chosen.push_back(e);
        const auto row = static_cast<graph::NodeId>(
            std::upper_bound(g.row_offsets.begin(), g.row_offsets.end(),
                             static_cast<std::uint32_t>(e)) -
            g.row_offsets.begin() - 1);
        d.deletes.push_back({row, g.col_indices[e]});
      }
    }
    if (!del) {
      d.inserts.push_back(
          {static_cast<graph::NodeId>(prng.bounded(g.num_nodes)),
           static_cast<graph::NodeId>(prng.bounded(g.num_nodes))});
      if (g.has_weights()) {
        d.insert_weights.push_back(
            static_cast<std::uint32_t>(prng.bounded(1000) + 1));
      }
    }
  }
  return d;
}

// Naive reference: expand every row into an arc list, mark each delete's
// first surviving structural match dead, append that row's inserts in delta
// order, rebuild.
graph::Csr reference_apply(const graph::Csr& g, const graph::EdgeDelta& d) {
  struct Arc {
    graph::NodeId dst;
    std::uint32_t w;
    bool dead = false;
  };
  std::vector<std::vector<Arc>> rows(g.num_nodes);
  for (graph::NodeId v = 0; v < g.num_nodes; ++v) {
    for (std::uint32_t e = g.row_offsets[v]; e < g.row_offsets[v + 1]; ++e) {
      rows[v].push_back(
          {g.col_indices[e], g.has_weights() ? g.weights[e] : 0u});
    }
  }
  for (const graph::Edge& del : d.deletes) {
    for (Arc& a : rows[del.src]) {
      if (!a.dead && a.dst == del.dst) {
        a.dead = true;
        break;
      }
    }
  }
  for (std::size_t i = 0; i < d.inserts.size(); ++i) {
    rows[d.inserts[i].src].push_back(
        {d.inserts[i].dst, g.has_weights() ? d.insert_weights[i] : 0u});
  }
  graph::Csr out;
  out.num_nodes = g.num_nodes;
  out.row_offsets.assign(1, 0);
  for (const auto& row : rows) {
    for (const Arc& a : row) {
      if (a.dead) continue;
      out.col_indices.push_back(a.dst);
      if (g.has_weights()) out.weights.push_back(a.w);
    }
    out.row_offsets.push_back(
        static_cast<std::uint32_t>(out.col_indices.size()));
  }
  return out;
}

TEST(DynamicGraph, ApplyDeltaMatchesNaiveReference) {
  agg::Prng prng(2026);
  for (const auto& gc : testutil::conformance_corpus()) {
    graph::Csr cur = gc.csr;
    for (int round = 0; round < 3; ++round) {
      const graph::EdgeDelta d = random_delta(prng, cur, 12);
      ASSERT_EQ(graph::delta_error(cur, d), "") << gc.name;
      const graph::Csr got = graph::apply_delta(cur, d);
      const graph::Csr want = reference_apply(cur, d);
      ASSERT_EQ(got.row_offsets, want.row_offsets) << gc.name;
      ASSERT_EQ(got.col_indices, want.col_indices) << gc.name;
      ASSERT_EQ(got.weights, want.weights) << gc.name;
      cur = got;
    }
  }
}

TEST(DynamicGraph, DeltaErrorRejectsBadDeltas) {
  const graph::Csr g = graph::csr_from_edges(
      3, std::vector<graph::Edge>{{0, 1}, {1, 2}});
  graph::EdgeDelta d;
  d.inserts.push_back({0, 3});  // endpoint out of range
  EXPECT_NE(graph::delta_error(g, d), "");
  d = {};
  d.deletes.push_back({0, 2});  // no such arc
  EXPECT_NE(graph::delta_error(g, d), "");
  d = {};
  d.deletes.push_back({0, 1});
  d.deletes.push_back({0, 1});  // multiplicity 1, two deletes
  EXPECT_NE(graph::delta_error(g, d), "");
  d = {};
  d.inserts.push_back({0, 2});
  d.insert_weights.push_back(5);  // weights on an unweighted graph
  EXPECT_NE(graph::delta_error(g, d), "");
  d = {};
  d.inserts.push_back({0, 2});
  EXPECT_EQ(graph::delta_error(g, d), "");
}

TEST(DynamicGraph, IncrementalCcByteIdenticalToFromScratch) {
  agg::Prng prng(77);
  for (const auto& gc : testutil::conformance_corpus()) {
    graph::Csr cur = gc.csr;
    graph::IncrementalCc inc(cur);
    {
      const cpu::CcResult want = cpu::connected_components(cur);
      ASSERT_EQ(inc.labels(), want.component) << gc.name << " (initial)";
      ASSERT_EQ(inc.num_components(), want.num_components) << gc.name;
    }
    for (int round = 0; round < 4; ++round) {
      const graph::EdgeDelta d = random_delta(prng, cur, 10);
      cur = graph::apply_delta(cur, d);
      inc.apply(cur, d);
      const cpu::CcResult want = cpu::connected_components(cur);
      ASSERT_EQ(inc.labels(), want.component)
          << gc.name << " round " << round;
      ASSERT_EQ(inc.num_components(), want.num_components)
          << gc.name << " round " << round;
    }
  }
}

TEST(DynamicGraph, IncrementalCcRescansOnlyAffectedRegion) {
  // Two far-apart cliques; a delta inside one must not rescan the other.
  std::vector<graph::Edge> edges;
  for (graph::NodeId u = 0; u < 50; ++u) {
    for (graph::NodeId v = 0; v < 50; ++v) {
      if (u != v) {
        edges.push_back({u, v});
        edges.push_back({u + 50, v + 50});
      }
    }
  }
  graph::Csr g = graph::csr_from_edges(100, edges);
  graph::IncrementalCc inc(g);
  ASSERT_EQ(inc.num_components(), 2u);
  graph::EdgeDelta d;
  d.deletes.push_back({0, 1});
  g = graph::apply_delta(g, d);
  inc.apply(g, d);
  EXPECT_EQ(inc.num_components(), 2u);  // clique stays connected
  EXPECT_LE(inc.last_nodes_rescanned(), 50u);  // only the touched component
  const cpu::CcResult want = cpu::connected_components(g);
  EXPECT_EQ(inc.labels(), want.component);

  // Insert-only deltas never rescan at all (pure union).
  graph::EdgeDelta ins;
  ins.inserts.push_back({0, 51});
  g = graph::apply_delta(g, ins);
  inc.apply(g, ins);
  EXPECT_EQ(inc.num_components(), 1u);
  EXPECT_EQ(inc.last_nodes_rescanned(), 0u);
  EXPECT_EQ(inc.labels(), cpu::connected_components(g).component);
}

// Session::mutate_graph end to end, at several host worker counts: the
// post-mutation answers equal a fresh session on the post-mutation graph,
// and the device copy is patched, not re-uploaded.
TEST(DynamicGraph, SessionMutateMatchesFreshSessionAcrossThreadCounts) {
  for (const int threads : {1, 4, 0}) {
    simt::ExecPool::set_threads(threads);
    agg::Prng prng(11);
    for (const auto& gc : testutil::conformance_corpus()) {
      if (gc.csr.num_nodes == 0) continue;
      adaptive::Graph g = adaptive::Graph::from_csr(gc.csr);
      adaptive::Session session;
      session.register_graph(g);
      const graph::NodeId src = g.default_source();
      (void)session.bfs(g, src);  // warm: resident upload
      const graph::EdgeDelta d = random_delta(prng, g.csr(), 8);
      session.mutate_graph(g, d);
      const adaptive::BfsResult got = session.bfs(g, src);
      const cpu::BfsResult want = cpu::bfs(g.csr(), src);
      ASSERT_EQ(got.level, want.level)
          << gc.name << " threads=" << threads;
      ASSERT_EQ(session.incremental_cc(session.graph_id(g)).labels(),
                cpu::connected_components(g.csr()).component)
          << gc.name;
    }
  }
  simt::ExecPool::set_threads(1);
}

TEST(DynamicGraph, SessionPatchTransfersDirtyRegionNotWholeGraph) {
  // A big graph with a tiny localized delta: the patch must move far fewer
  // bytes over the modeled PCIe link than the original upload did.
  graph::Csr csr = graph::gen::erdos_renyi(20000, 120000, 5);
  adaptive::Graph g = adaptive::Graph::from_csr(std::move(csr));
  adaptive::Session session;
  session.register_graph(g);
  (void)session.bfs(g, 0);  // resident
  const std::uint64_t upload_bytes = session.device().stats().bytes_h2d;
  ASSERT_GT(upload_bytes, 0u);

  graph::EdgeDelta d;
  d.deletes.push_back({g.csr().col_indices.empty() ? 0u : 19999u,
                       g.csr().col_indices.back()});
  // Delete the last arc: only the tail of col_indices and the trailing
  // row_offsets change, so the dirty regions are small.
  d.deletes.back() = {static_cast<graph::NodeId>(
                          std::upper_bound(g.csr().row_offsets.begin(),
                                           g.csr().row_offsets.end(),
                                           static_cast<std::uint32_t>(
                                               g.csr().num_edges() - 1)) -
                          g.csr().row_offsets.begin() - 1),
                      g.csr().col_indices.back()};
  session.mutate_graph(g, d);
  const std::uint64_t patch_bytes =
      session.device().stats().bytes_h2d - upload_bytes;
  EXPECT_GT(patch_bytes, 0u);
  EXPECT_LT(patch_bytes, upload_bytes / 10);

  const cpu::BfsResult want = cpu::bfs(g.csr(), 0);
  EXPECT_EQ(session.bfs(g, 0).level, want.level);
}

TEST(DynamicGraph, SessionRebuildsWhenCapacityExceeded) {
  // Inserting far more arcs than the capacity slack forces the compacting
  // rebuild; answers stay correct either way.
  adaptive::Graph g = adaptive::Graph::from_csr(
      graph::gen::erdos_renyi(300, 900, 9));
  adaptive::Session session;
  session.register_graph(g);
  (void)session.bfs(g, 0);
  agg::Prng prng(3);
  graph::EdgeDelta d;
  for (int i = 0; i < 500; ++i) {
    d.inserts.push_back({static_cast<graph::NodeId>(prng.bounded(300)),
                         static_cast<graph::NodeId>(prng.bounded(300))});
  }
  session.mutate_graph(g, d);
  EXPECT_EQ(g.num_edges(), 1400u);
  EXPECT_EQ(session.bfs(g, 0).level, cpu::bfs(g.csr(), 0).level);
}

TEST(DynamicGraph, MutateUnregisteredOrConstRegistrationAborts) {
  adaptive::Graph g = adaptive::Graph::from_csr(
      graph::csr_from_edges(2, std::vector<graph::Edge>{{0, 1}}));
  adaptive::Session session;
  const adaptive::Graph& cg = g;
  const adaptive::GraphId id = session.register_graph(cg);  // const overload
  graph::EdgeDelta d;
  d.inserts.push_back({1, 0});
  EXPECT_DEATH(session.mutate_graph(id, d), "");
}

}  // namespace
