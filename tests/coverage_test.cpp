// Miscellaneous coverage: small utilities and edge cases not naturally hit
// by the larger suites.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "common/table.h"
#include "graph/gen/generators.h"
#include "graph/graph_stats.h"
#include "simt/device_props.h"
#include "simt/launch.h"

namespace {

TEST(DeviceProps, ResidentBlocksClamps) {
  const auto& p = simt::DeviceProps::fermi_c2070();
  EXPECT_EQ(p.resident_blocks(1024), 1);   // 1536/1024 = 1
  EXPECT_EQ(p.resident_blocks(192), 8);    // capped by max blocks
  EXPECT_EQ(p.resident_blocks(32), 8);
  EXPECT_EQ(p.resident_blocks(0), 1);      // degenerate input
}

TEST(DeviceProps, ProfilesAreDistinct) {
  EXPECT_NE(simt::DeviceProps::fermi_c2070().num_sms,
            simt::DeviceProps::fermi_gtx580().num_sms);
  EXPECT_GT(simt::DeviceProps::kepler_k20().max_resident_blocks_per_sm,
            simt::DeviceProps::fermi_c2070().max_resident_blocks_per_sm);
}

TEST(GridSpec, BlockCountRoundsUp) {
  EXPECT_EQ(simt::GridSpec::dense(1, 256).blocks(), 1u);
  EXPECT_EQ(simt::GridSpec::dense(256, 256).blocks(), 1u);
  EXPECT_EQ(simt::GridSpec::dense(257, 256).blocks(), 2u);
}

TEST(RunningStats, EmptyMergeIsIdentity) {
  agg::RunningStats a, empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(RunningStats, EmptyAccessorsAreZero) {
  agg::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(DegreeHistogram, RenderHandlesEmpty) {
  agg::DegreeHistogram h(8);
  EXPECT_TRUE(h.render().empty());
  h.add(3);
  EXPECT_FALSE(h.render().empty());
}

TEST(Table, SingleColumn) {
  agg::Table t({"only"});
  t.add_row({"x"});
  EXPECT_NE(t.render().find("only"), std::string::npos);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(agg::Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(agg::Table::fmt(3.14159, 0), "3");
}

TEST(RmatParams, ValidationAborts) {
  graph::gen::RmatParams p;
  p.scale = 2;  // below the supported range
  EXPECT_DEATH(graph::gen::rmat(p), "");
}

TEST(WattsStrogatz, ValidationAborts) {
  EXPECT_DEATH(graph::gen::watts_strogatz(100, 3, 0.1, 1), "");   // odd k
  EXPECT_DEATH(graph::gen::watts_strogatz(100, 4, 1.5, 1), "");   // bad p
}

TEST(PowerLaw, SolveAlphaRejectsImpossibleTargets) {
  graph::gen::PowerLawParams p;
  p.num_nodes = 1000;
  p.head_fraction = 0.9;
  p.head_min = 1;
  p.head_max = 2;
  p.tail_min = 3;
  p.tail_max = 10;
  // Mean 500 is unreachable with tails capped at 10.
  EXPECT_DEATH(graph::gen::solve_tail_alpha(p, 500.0), "achievable");
}

TEST(GraphStats, SummaryOfEmptyGraph) {
  graph::Csr g;
  g.num_nodes = 0;
  g.row_offsets = {0};
  const auto s = graph::GraphStats::compute(g);
  EXPECT_EQ(s.num_nodes, 0u);
  EXPECT_FALSE(s.summary().empty());
}

TEST(ComputeReach, SelfLoopDoesNotInflateLevels) {
  const auto g = graph::csr_from_edges(
      2, std::vector<graph::Edge>{{0, 0}, {0, 1}});
  const auto r = graph::compute_reach(g, 0);
  EXPECT_EQ(r.levels, 1u);
  EXPECT_EQ(r.reachable_nodes, 2u);
}

}  // namespace
