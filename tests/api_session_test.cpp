// adaptive::Session: resident graphs, version-based invalidation, the
// default-session convenience overloads, and the Result<>/Symmetrize API.
#include <gtest/gtest.h>

#include "api/algorithms.h"
#include "api/session.h"
#include "cpu/bfs_serial.h"
#include "cpu/cc_serial.h"
#include "cpu/sssp_serial.h"
#include "graph/gen/generators.h"
#include "graph/transform.h"

namespace {

adaptive::Graph make_graph(std::uint32_t n = 1500, std::uint32_t m = 4500,
                           std::uint64_t seed = 3) {
  return adaptive::Graph::from_csr(graph::gen::erdos_renyi(n, m, seed));
}

TEST(Session, ResidentQueriesMatchReference) {
  adaptive::Session session;
  const auto g = make_graph();
  session.register_graph(g);
  EXPECT_TRUE(session.is_registered(g));
  const auto out = session.bfs(g, 5);
  EXPECT_EQ(out.level, cpu::bfs(g.csr(), 5).level);
  EXPECT_TRUE(out.ok());
}

TEST(Session, RegisteredGraphSkipsPerQueryUpload) {
  adaptive::Session resident;
  adaptive::Session fresh;
  const auto g = make_graph();
  resident.register_graph(g);

  const auto warm = resident.bfs(g, 0);
  const auto cold = fresh.bfs(g, 0);  // unregistered: upload per query
  EXPECT_EQ(warm.level, cold.level);
  // The cold path pays the CSR H2D transfer inside the query.
  EXPECT_GT(cold.metrics.transfer_us, warm.metrics.transfer_us);
  EXPECT_GT(cold.metrics.total_us, warm.metrics.total_us);
}

TEST(Session, UnregisterReleasesAndFallsBack) {
  adaptive::Session session;
  const auto g = make_graph();
  session.register_graph(g);
  ASSERT_EQ(session.num_registered(), 1u);
  session.unregister_graph(g);
  EXPECT_EQ(session.num_registered(), 0u);
  EXPECT_FALSE(session.is_registered(g));
  // Still answers (non-resident path).
  EXPECT_EQ(session.bfs(g, 2).level, cpu::bfs(g.csr(), 2).level);
}

TEST(Session, MutationInvalidatesResidentCopy) {
  adaptive::Session session;
  auto g = make_graph();
  session.register_graph(g);
  const auto v0 = g.version();
  g.set_uniform_weights(1, 64);  // bumps the version
  EXPECT_NE(g.version(), v0);
  // The stale pin is refreshed (re-upload with weights), not reused: sssp
  // sees the new weights.
  const auto out = session.sssp(g, 7);
  EXPECT_EQ(out.dist, cpu::dijkstra(g.csr(), 7).dist);
}

TEST(Session, CcOnDirectedGraphUsesSymmetrizedClosure) {
  adaptive::Session session;
  const auto g = adaptive::Graph::from_edges(5, {{0, 1}, {1, 2}, {3, 4}});
  session.register_graph(g);
  const auto out = session.cc(g);
  EXPECT_EQ(out.num_components, 2u);
  // Policy-level opt-out still works through the session.
  const auto directed = session.cc(
      g, adaptive::Policy::adapt().with_symmetrize(adaptive::Symmetrize::never));
  EXPECT_TRUE(directed.ok());
}

TEST(Session, EvictReleasesAndReuploadsOnNextQuery) {
  adaptive::Session session;
  const auto g = make_graph();
  session.register_graph(g);
  ASSERT_TRUE(session.is_resident(g));
  const std::uint64_t held = session.device().mem_in_use();

  session.evict(g);
  EXPECT_FALSE(session.is_resident(g));
  EXPECT_TRUE(session.is_registered(g));  // registration survives
  EXPECT_LT(session.device().mem_in_use(), held);

  // The next query transparently re-uploads and pins again.
  const auto out = session.bfs(g, 5);
  EXPECT_EQ(out.level, cpu::bfs(g.csr(), 5).level);
  EXPECT_TRUE(session.is_resident(g));
}

TEST(Session, EvictAllFreesEveryResidentGraph) {
  adaptive::Session session;
  const auto a = make_graph();
  const auto b = make_graph(800, 2400, 17);
  session.register_graph(a);
  session.register_graph(b);
  session.evict_all();
  EXPECT_FALSE(session.is_resident(a));
  EXPECT_FALSE(session.is_resident(b));
  EXPECT_EQ(session.num_registered(), 2u);
  // Both still answer correctly after re-upload.
  EXPECT_EQ(session.bfs(a, 1).level, cpu::bfs(a.csr(), 1).level);
  EXPECT_EQ(session.bfs(b, 1).level, cpu::bfs(b.csr(), 1).level);
}

TEST(Session, ResultCacheServesRepeatsAndInvalidatesOnMutation) {
  adaptive::Session session;
  auto g = make_graph();
  session.register_graph(g);
  session.enable_result_cache(16 << 20);

  const auto first = session.bfs(g, 5);
  ASSERT_EQ(session.result_cache().entries(), 1u);
  const auto repeat = session.bfs(g, 5);
  EXPECT_EQ(repeat.level, first.level);
  EXPECT_EQ(session.result_cache().stats().hits, 1u);

  g.set_uniform_weights(1, 64);  // version bump retires the entry
  const auto after = session.sssp(g, 5);
  EXPECT_EQ(after.dist, cpu::dijkstra(g.csr(), 5).dist);
  EXPECT_GE(session.result_cache().stats().invalidations, 1u);

  // Eviction changes residency, not answers: cached entries stay valid.
  session.evict(g);
  EXPECT_EQ(session.sssp(g, 5).dist, after.dist);
}

TEST(Session, DefaultSessionBacksConvenienceOverloads) {
  auto& session = adaptive::Session::default_session();
  ASSERT_EQ(&session, &adaptive::Session::default_session());
  const auto g = make_graph(800, 2400, 11);
  // The device-less overloads run on the default session's device; its
  // modeled clock advances monotonically across calls.
  const double t0 = session.device().now_us();
  const auto out = adaptive::bfs(g, 1);
  EXPECT_EQ(out.level, cpu::bfs(g.csr(), 1).level);
  EXPECT_GT(session.device().now_us(), t0);
}

TEST(GraphCache, SymmetrizedIsCachedAndVersioned) {
  auto g = adaptive::Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_FALSE(g.is_symmetric());
  const auto& s1 = g.symmetrized();
  const auto& s2 = g.symmetrized();
  EXPECT_EQ(&s1, &s2);  // cached, no recompute
  EXPECT_TRUE(graph::is_symmetric(s1));
  // A symmetric graph returns its own CSR without copying.
  auto sym = adaptive::Graph::from_csr(graph::symmetrize(g.csr()));
  EXPECT_TRUE(sym.is_symmetric());
  EXPECT_EQ(&sym.symmetrized(), &sym.csr());
}

TEST(ResultApi, StatusDefaultsToOkAndPayloadInherits) {
  const auto g = make_graph(600, 1800, 2);
  const adaptive::BfsResult out = adaptive::bfs(g, 0);
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.status, adaptive::Status::ok);
  EXPECT_TRUE(out.error.empty());
  // Payload fields read directly off the result (inheritance, not wrapping).
  EXPECT_EQ(out.level.size(), g.num_nodes());
  // The legacy *Output spelling stays valid.
  const adaptive::BfsOutput& legacy = out;
  EXPECT_EQ(legacy.level, out.level);
}

TEST(ResultApi, SymmetrizePolicyOnCc) {
  const auto directed = adaptive::Graph::from_edges(3, {{0, 1}, {1, 2}});
  simt::Device dev;
  const auto auto_out = adaptive::cc(dev, directed);  // auto_detect
  EXPECT_EQ(auto_out.num_components, 1u);
  const auto forced = adaptive::cc(
      dev, directed, adaptive::Policy::adapt().with_symmetrize(
                         adaptive::Symmetrize::always));
  EXPECT_EQ(forced.component, auto_out.component);
}

}  // namespace
