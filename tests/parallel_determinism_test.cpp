// The determinism contract of the parallel launch path (see exec_pool.h):
// for any SIMT thread count, every launch shape and every engine must
// produce bit-identical KernelStats, DeviceStats, and functional outputs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "gpu_graph/bfs_engine.h"
#include "gpu_graph/cc_engine.h"
#include "gpu_graph/pagerank_engine.h"
#include "gpu_graph/sssp_engine.h"
#include "graph/gen/generators.h"
#include "simt/exec_pool.h"
#include "simt/launch.h"
#include "simt/primitives.h"

namespace {

constexpr simt::Site kIn{0, "in"};
constexpr simt::Site kOut{1, "out"};
constexpr simt::Site kOps{2, "ops"};
constexpr simt::Site kCnt{3, "cnt"};
constexpr simt::Site kMin{4, "min"};

void expect_same_kernel(const simt::KernelStats& a, const simt::KernelStats& b) {
  EXPECT_STREQ(a.name, b.name);
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.total_threads, b.total_threads);
  EXPECT_EQ(a.warps_executed, b.warps_executed);
  EXPECT_EQ(a.warps_uniform, b.warps_uniform);
  EXPECT_EQ(a.issue_cycles, b.issue_cycles);
  EXPECT_EQ(a.mem_instrs, b.mem_instrs);
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.atomics, b.atomics);
  EXPECT_EQ(a.max_atomic_same_addr, b.max_atomic_same_addr);
  EXPECT_EQ(a.lane_work, b.lane_work);
  EXPECT_EQ(a.lockstep_work, b.lockstep_work);
  EXPECT_EQ(a.sm_time_us, b.sm_time_us);
  EXPECT_EQ(a.bw_time_us, b.bw_time_us);
  EXPECT_EQ(a.atomic_time_us, b.atomic_time_us);
  EXPECT_EQ(a.time_us, b.time_us);
}

void expect_same_device_stats(const simt::DeviceStats& a, const simt::DeviceStats& b) {
  EXPECT_EQ(a.kernels_launched, b.kernels_launched);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.kernel_time_us, b.kernel_time_us);
  EXPECT_EQ(a.transfer_time_us, b.transfer_time_us);
  EXPECT_EQ(a.host_time_us, b.host_time_us);
  EXPECT_EQ(a.issue_cycles, b.issue_cycles);
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.atomics, b.atomics);
  EXPECT_EQ(a.lane_work, b.lane_work);
  EXPECT_EQ(a.lockstep_work, b.lockstep_work);
  EXPECT_EQ(a.warps_executed, b.warps_executed);
  EXPECT_EQ(a.warps_uniform, b.warps_uniform);
  EXPECT_EQ(a.bytes_h2d, b.bytes_h2d);
  EXPECT_EQ(a.bytes_d2h, b.bytes_d2h);
}

// One captured run: every kernel's final stats (via the Device observer),
// the cumulative device stats, and whatever outputs the scenario exports.
struct Capture {
  std::vector<simt::KernelStats> kernels;
  simt::DeviceStats stats;
  std::vector<std::uint32_t> ints;
  std::vector<float> floats;
};

template <typename Scenario>
Capture run_with_threads(int threads, Scenario&& scenario) {
  simt::ExecPool::set_threads(threads);
  Capture run;
  simt::Device dev;
  dev.set_kernel_observer(
      [&](const simt::KernelStats& ks) { run.kernels.push_back(ks); });
  scenario(dev, run);
  run.stats = dev.stats();
  simt::ExecPool::set_threads(1);
  return run;
}

template <typename Scenario>
void expect_thread_invariant(Scenario&& scenario) {
  const Capture serial = run_with_threads(1, scenario);
  const Capture pooled = run_with_threads(8, scenario);
  ASSERT_EQ(serial.kernels.size(), pooled.kernels.size());
  for (std::size_t i = 0; i < serial.kernels.size(); ++i) {
    SCOPED_TRACE(serial.kernels[i].name);
    expect_same_kernel(serial.kernels[i], pooled.kernels[i]);
  }
  expect_same_device_stats(serial.stats, pooled.stats);
  EXPECT_EQ(serial.ints, pooled.ints);
  EXPECT_EQ(serial.floats, pooled.floats);
}

TEST(ParallelDeterminism, DenseComputeLoadStore) {
  expect_thread_invariant([](simt::Device& dev, Capture& run) {
    const std::uint64_t n = 1 << 15;
    auto in = dev.alloc<std::uint32_t>(n, "in");
    auto out = dev.alloc<std::uint32_t>(n, "out");
    for (std::size_t i = 0; i < n; ++i) {
      in.host_view()[i] = static_cast<std::uint32_t>(i * 2654435761u);
    }
    simt::launch(dev, "det.dense",
                 simt::GridSpec::dense(n, 256).with(simt::LaunchPolicy::parallel),
                 [&](simt::ThreadCtx& ctx) {
                   const std::uint64_t gid = ctx.global_id();
                   const std::uint32_t v = ctx.load(in, gid, kIn);
                   // Divergent work keyed on the value, to vary warp costs.
                   ctx.compute(1 + v % 7, kOps);
                   ctx.store(out, gid, v ^ 0x9e3779b9u, kOut);
                 });
    const auto view = out.host_view();
    run.ints.assign(view.begin(), view.end());
  });
}

TEST(ParallelDeterminism, DenseContendedAtomics) {
  expect_thread_invariant([](simt::Device& dev, Capture& run) {
    const std::uint64_t n = 1 << 14;
    auto counters = dev.alloc<std::uint32_t>(64, "counters");
    auto mins = dev.alloc<std::uint32_t>(64, "mins");
    dev.fill(counters, 0u);
    dev.fill(mins, 0xffffffffu);
    // Same-value counting and idempotent min folds: order-insensitive, so
    // the launch qualifies for the parallel policy.
    simt::launch(dev, "det.atomics",
                 simt::GridSpec::dense(n, 256).with(simt::LaunchPolicy::parallel),
                 [&](simt::ThreadCtx& ctx) {
                   const std::uint64_t gid = ctx.global_id();
                   ctx.atomic_add(counters, gid % 64, 1u, kCnt);
                   ctx.atomic_min(mins, gid % 64,
                                  static_cast<std::uint32_t>(gid / 64), kMin);
                 });
    const auto c = counters.host_view();
    const auto m = mins.host_view();
    run.ints.assign(c.begin(), c.end());
    run.ints.insert(run.ints.end(), m.begin(), m.end());
  });
}

TEST(ParallelDeterminism, SparseThreadsWithGaps) {
  expect_thread_invariant([](simt::Device& dev, Capture& run) {
    const std::uint64_t n = 1 << 14;
    auto flags = dev.alloc<std::uint8_t>(n, "flags");
    auto out = dev.alloc<std::uint32_t>(n, "out");
    dev.fill(out, 0u);
    // Active ids clustered in two block ranges with a large uniform gap in
    // between, so the launch mixes executed, partially-active, and folded
    // predicate-only blocks.
    std::vector<std::uint32_t> active;
    for (std::uint32_t id = 5 * 256; id < 20 * 256; id += 3) active.push_back(id);
    for (std::uint32_t id = 48 * 256; id < 52 * 256; id += 7) active.push_back(id);
    simt::Predicate pred;
    pred.base_addr = flags.base_addr();
    pred.stride = 1;
    pred.ops = 2;
    simt::launch(dev, "det.sparse_threads",
                 simt::GridSpec::over_threads(n, 256, active, pred)
                     .with(simt::LaunchPolicy::parallel),
                 [&](simt::ThreadCtx& ctx) {
                   const std::uint64_t gid = ctx.global_id();
                   ctx.compute(3, kOps);
                   ctx.store(out, gid, static_cast<std::uint32_t>(gid + 1), kOut);
                 });
    const auto view = out.host_view();
    run.ints.assign(view.begin(), view.end());
  });
}

TEST(ParallelDeterminism, SparseBlocks) {
  expect_thread_invariant([](simt::Device& dev, Capture& run) {
    const std::uint64_t total_blocks = 96;
    const std::uint32_t tpb = 64;
    auto flags = dev.alloc<std::uint8_t>(total_blocks, "flags");
    auto out = dev.alloc<std::uint32_t>(total_blocks * tpb, "out");
    dev.fill(out, 0u);
    std::vector<std::uint32_t> active;
    for (std::uint32_t b = 1; b < total_blocks; b += 5) active.push_back(b);
    simt::Predicate pred;
    pred.base_addr = flags.base_addr();
    pred.stride = 1;
    pred.ops = 2;
    simt::launch(dev, "det.sparse_blocks",
                 simt::GridSpec::over_blocks(total_blocks, tpb, active, pred)
                     .with(simt::LaunchPolicy::parallel),
                 [&](simt::ThreadCtx& ctx) {
                   ctx.store(out, ctx.global_id(),
                             static_cast<std::uint32_t>(ctx.block_idx()), kOut);
                 });
    const auto view = out.host_view();
    run.ints.assign(view.begin(), view.end());
  });
}

TEST(ParallelDeterminism, PhasedScanAndReduce) {
  expect_thread_invariant([](simt::Device& dev, Capture& run) {
    const std::size_t n = 1 << 14;
    auto values = dev.alloc<std::uint32_t>(n, "values");
    auto scanned = dev.alloc<std::uint32_t>(n, "scanned");
    for (std::size_t i = 0; i < n; ++i) {
      values.host_view()[i] = static_cast<std::uint32_t>((i * 31 + 7) % 97);
    }
    simt::prim::exclusive_scan(dev, values, scanned, n);
    const std::uint32_t min = simt::prim::reduce_min(dev, values, n);
    const auto view = scanned.host_view();
    run.ints.assign(view.begin(), view.end());
    run.ints.push_back(min);
  });
}

// Engines: the compute kernels stay serial by policy, but bitmap workset
// generation and the ordered-SSSP reduction run pooled inside real runs.
class EngineDeterminism : public ::testing::Test {
 protected:
  static const graph::Csr& er() {
    static const graph::Csr g = graph::gen::erdos_renyi(2000, 10000, 7);
    return g;
  }
  static const graph::Csr& road() {
    static const graph::Csr g = [] {
      graph::Csr g = graph::gen::road_network(1500, 3);
      graph::assign_uniform_weights(g, 1, 100, 2);
      return g;
    }();
    return g;
  }
};

TEST_F(EngineDeterminism, Bfs) {
  for (const char* vname : {"U_T_BM", "U_B_QU"}) {
    SCOPED_TRACE(vname);
    const gg::Variant v = gg::parse_variant(vname);
    expect_thread_invariant([&](simt::Device& dev, Capture& run) {
      auto r = gg::run_bfs(dev, er(), 0, v);
      run.ints = std::move(r.level);
      run.floats.push_back(static_cast<float>(r.metrics.total_us));
    });
  }
}

TEST_F(EngineDeterminism, SsspUnorderedAndOrdered) {
  for (const char* vname : {"U_T_BM", "O_T_BM"}) {
    SCOPED_TRACE(vname);
    const gg::Variant v = gg::parse_variant(vname);
    expect_thread_invariant([&](simt::Device& dev, Capture& run) {
      auto r = gg::run_sssp(dev, road(), 0, v);
      run.ints = std::move(r.dist);
      run.floats.push_back(static_cast<float>(r.metrics.total_us));
    });
  }
}

TEST_F(EngineDeterminism, PageRank) {
  expect_thread_invariant([&](simt::Device& dev, Capture& run) {
    auto r = gg::run_pagerank(dev, er(), gg::parse_variant("U_T_BM"));
    run.floats = std::move(r.rank);
    run.floats.push_back(static_cast<float>(r.metrics.total_us));
  });
}

TEST_F(EngineDeterminism, ConnectedComponents) {
  expect_thread_invariant([&](simt::Device& dev, Capture& run) {
    auto r = gg::run_cc(dev, er(), gg::parse_variant("U_T_BM"));
    run.ints = std::move(r.component);
    run.ints.push_back(r.num_components);
    run.floats.push_back(static_cast<float>(r.metrics.total_us));
  });
}

TEST(SimThreadsConfig, EnvVariableIsHonored) {
  simt::ExecPool::set_threads(0);  // fall back to env resolution
  ASSERT_EQ(setenv("SIMT_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(simt::ExecPool::threads(), 3);
  ASSERT_EQ(setenv("SIMT_THREADS", "garbage", 1), 0);
  EXPECT_GE(simt::ExecPool::threads(), 1);  // invalid values fall back
  ASSERT_EQ(unsetenv("SIMT_THREADS"), 0);
  simt::ExecPool::set_threads(5);  // explicit override wins over env
  ASSERT_EQ(setenv("SIMT_THREADS", "2", 1), 0);
  EXPECT_EQ(simt::ExecPool::threads(), 5);
  ASSERT_EQ(unsetenv("SIMT_THREADS"), 0);
  simt::ExecPool::set_threads(1);
}

TEST(LaunchGuards, PhasedValidatesTpb) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  simt::Device dev;
  EXPECT_DEATH(simt::launch_phased(dev, "bad.tpb0", 256, 0, 1,
                                   [](int, simt::ThreadCtx&) {}),
               "tpb >= 1");
  EXPECT_DEATH(simt::launch_phased(dev, "bad.tpb_huge", 256, 4096, 1,
                                   [](int, simt::ThreadCtx&) {}),
               "tpb >= 1");
}

TEST(LaunchGuards, OverBlocksRejectsOverflow) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::vector<std::uint32_t> active;
  EXPECT_DEATH(simt::GridSpec::over_blocks(
                   std::numeric_limits<std::uint64_t>::max() / 2, 256, active,
                   simt::Predicate{}),
               "total_blocks");
}

}  // namespace
