// Differential conformance harness: a randomized corpus of 56 graphs — all
// five topology families the paper evaluates plus degenerate shapes — pushed
// through every engine variant and the adaptive selector, with the serial
// CPU implementations as the oracle. BFS, SSSP, CC and MST must agree
// exactly; PageRank (float accumulation on the device path vs double on the
// oracle) must agree to a tight relative L1 bound, the same tolerance the
// engine tests use. A final round replays part of the corpus through the
// serving layer under an injected-fault plan: every query must still return
// the oracle answer, whether it was retried on-device or degraded to the
// CPU.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "api/algorithms.h"
#include "conformance_corpus.h"
#include "cpu/bfs_serial.h"
#include "cpu/cc_serial.h"
#include "cpu/mst_serial.h"
#include "cpu/pagerank_serial.h"
#include "cpu/sssp_serial.h"
#include "gpu_graph/variant.h"
#include "graph/gen/generators.h"
#include "service/graph_service.h"
#include "simt/device.h"
#include "simt/fault.h"

namespace {

using testutil::GraphCase;
using testutil::conformance_corpus;

std::vector<GraphCase> corpus() { return conformance_corpus(); }

double rel_l1(const std::vector<double>& got, const std::vector<double>& want) {
  double num = 0, den = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    num += std::abs(got[i] - want[i]);
    den += std::abs(want[i]);
  }
  return den == 0 ? num : num / den;
}

// The variant pools mirror the per-engine test suites: BFS/SSSP implement
// the full ordered x mapping x workset cube; CC/PageRank/MST implement the
// unordered half plus the warp-centric extension.
std::vector<adaptive::Policy> traversal_policies() {
  std::vector<adaptive::Policy> out;
  out.push_back(adaptive::Policy::adapt());
  for (const auto v : gg::all_variants()) out.push_back(adaptive::Policy::fixed(v));
  return out;
}

std::vector<adaptive::Policy> unordered_policies() {
  std::vector<adaptive::Policy> out;
  out.push_back(adaptive::Policy::adapt());
  for (const auto v : gg::unordered_variants())
    out.push_back(adaptive::Policy::fixed(v));
  for (const auto v : gg::warp_centric_variants())
    out.push_back(adaptive::Policy::fixed(v));
  return out;
}

std::string policy_name(const adaptive::Policy& p) {
  return p.mode == adaptive::Policy::Mode::adaptive
             ? "adaptive"
             : gg::variant_name(p.variant);
}

TEST(Conformance, CorpusIsLargeAndValid) {
  const auto cases = corpus();
  EXPECT_GE(cases.size(), 50u);
  for (const auto& gc : cases) {
    EXPECT_TRUE(gc.csr.validate_error().empty()) << gc.name;
  }
}

TEST(Conformance, EveryVariantMatchesTheOracleOnEveryGraph) {
  for (const auto& gc : corpus()) {
    adaptive::Graph g = adaptive::Graph::from_csr(graph::Csr(gc.csr));
    const bool has_nodes = g.num_nodes() > 0;
    const bool has_edges = g.num_edges() > 0;
    adaptive::Graph weighted = adaptive::Graph::from_csr(graph::Csr(gc.csr));
    if (has_edges) weighted.set_uniform_weights(1, 31);

    const graph::NodeId src = has_nodes ? graph::suggest_source(gc.csr) : 0;
    const auto bfs_want = has_nodes ? cpu::bfs(gc.csr, src) : cpu::BfsResult{};
    const auto sssp_want = has_edges ? cpu::dijkstra(weighted.csr(), src)
                                     : cpu::SsspResult{};
    const auto cc_want = cpu::connected_components(gc.csr);
    const auto pr_want = has_nodes ? cpu::pagerank(gc.csr) : cpu::PageRankResult{};
    // MST requires both arcs of an undirected edge to carry the same weight,
    // so its input is the symmetrized graph with endpoint-pair weights.
    adaptive::Graph mst_g = [&] {
      graph::Csr sym = graph::symmetrize(gc.csr);
      if (!sym.col_indices.empty()) {
        graph::assign_symmetric_uniform_weights(sym, 1, 31, 9);
      }
      return adaptive::Graph::from_csr(std::move(sym));
    }();
    const auto mst_want = has_edges
                              ? cpu::minimum_spanning_forest(mst_g.csr())
                              : cpu::MstResult{};

    if (has_nodes) {
      for (const auto& policy : traversal_policies()) {
        simt::Device dev;
        const auto got = adaptive::bfs(dev, g, src, policy);
        ASSERT_TRUE(got.ok()) << gc.name << " bfs " << policy_name(policy);
        ASSERT_EQ(got.level, bfs_want.level)
            << gc.name << " bfs " << policy_name(policy);
        if (has_edges) {
          simt::Device sdev;
          const auto sg = adaptive::sssp(sdev, weighted, src, policy);
          ASSERT_TRUE(sg.ok()) << gc.name << " sssp " << policy_name(policy);
          ASSERT_EQ(sg.dist, sssp_want.dist)
              << gc.name << " sssp " << policy_name(policy);
        }
      }
    }

    for (const auto& policy : unordered_policies()) {
      if (has_nodes) {
        simt::Device dev;
        const auto got = adaptive::cc(dev, g, policy);
        ASSERT_TRUE(got.ok()) << gc.name << " cc " << policy_name(policy);
        ASSERT_EQ(got.component, cc_want.component)
            << gc.name << " cc " << policy_name(policy);
        ASSERT_EQ(got.num_components, cc_want.num_components) << gc.name;
        simt::Device pdev;
        const auto pr = adaptive::pagerank(pdev, g, 0.85, policy);
        ASSERT_TRUE(pr.ok()) << gc.name << " pagerank " << policy_name(policy);
        ASSERT_EQ(pr.rank.size(), pr_want.rank.size()) << gc.name;
        ASSERT_LT(rel_l1(pr.rank, pr_want.rank), 2e-3)
            << gc.name << " pagerank " << policy_name(policy);
      }
      if (has_edges) {
        simt::Device mdev;
        const auto mst = adaptive::mst(mdev, mst_g, policy);
        ASSERT_TRUE(mst.ok()) << gc.name << " mst " << policy_name(policy);
        ASSERT_EQ(mst.total_weight, mst_want.total_weight)
            << gc.name << " mst " << policy_name(policy);
        ASSERT_EQ(mst.num_trees, mst_want.num_trees) << gc.name;
        ASSERT_EQ(mst.edges_in_forest, mst_want.edges_in_forest) << gc.name;
      }
    }
  }
}

// Replays part of the corpus through the serving layer with faults injected:
// transient kernel and transfer failures force retries (and occasionally
// full CPU degradation), but every answer must still be the oracle's.
TEST(Conformance, ServedAnswersSurviveInjectedFaults) {
  const auto cases = corpus();
  std::size_t exercised = 0;
  for (std::size_t i = 0; i < cases.size(); i += 7) {
    const auto& gc = cases[i];
    if (gc.csr.num_nodes == 0) continue;
    ++exercised;

    adaptive::Graph g = adaptive::Graph::from_csr(graph::Csr(gc.csr));
    const bool has_edges = g.num_edges() > 0;
    if (has_edges) g.set_uniform_weights(1, 31);
    const graph::Csr csr = g.csr();  // weighted copy for the oracles

    svc::ServiceOptions opts;
    opts.batch_bfs = false;
    svc::GraphService service(opts);
    const auto gid = service.add_graph(std::move(g));
    service.set_fault_plan(
        simt::FaultPlan::parse("seed=5, kernel.p=0.25, transfer.p=0.05"));

    const graph::NodeId src = graph::suggest_source(csr);
    svc::QueryRequest bfs;
    bfs.algo = svc::Algo::bfs;
    bfs.graph = gid;
    bfs.source = src;
    service.submit(bfs);
    if (has_edges) {
      svc::QueryRequest sssp = bfs;
      sssp.algo = svc::Algo::sssp;
      service.submit(sssp);
    }
    svc::QueryRequest cc;
    cc.algo = svc::Algo::cc;
    cc.graph = gid;
    service.submit(cc);
    svc::QueryRequest pr;
    pr.algo = svc::Algo::pagerank;
    pr.graph = gid;
    service.submit(pr);

    const auto outcomes = service.drain();
    const auto pr_want = cpu::pagerank(csr);
    for (const auto& out : outcomes) {
      ASSERT_TRUE(out.ok()) << gc.name << " " << svc::algo_name(out.algo)
                            << ": " << out.error;
      switch (out.algo) {
        case svc::Algo::bfs:
          EXPECT_EQ(out.bfs().level, cpu::bfs(csr, src).level) << gc.name;
          break;
        case svc::Algo::sssp:
          EXPECT_EQ(out.sssp().dist, cpu::dijkstra(csr, src).dist) << gc.name;
          break;
        case svc::Algo::cc:
          EXPECT_EQ(out.cc().component,
                    cpu::connected_components(csr).component)
              << gc.name;
          break;
        case svc::Algo::pagerank:
          EXPECT_LT(rel_l1(out.pagerank().rank, pr_want.rank), 2e-3) << gc.name;
          break;
      }
    }
  }
  EXPECT_GE(exercised, 7u);
}

}  // namespace
