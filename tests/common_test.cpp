#include <gtest/gtest.h>

#include <set>

#include "common/cli.h"
#include "common/prng.h"
#include "common/stats.h"
#include "common/table.h"

namespace {

TEST(Prng, Deterministic) {
  agg::Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiffer) {
  agg::Prng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(Prng, BoundedRange) {
  agg::Prng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Prng, BoundedOneAlwaysZero) {
  agg::Prng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Prng, UniformIntCoversRange) {
  agg::Prng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Prng, Uniform01InRange) {
  agg::Prng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(PowerLawSampler, BoundsRespected) {
  agg::Prng rng(5);
  const agg::PowerLawSampler s(1.5, 2, 100);
  for (int i = 0; i < 5000; ++i) {
    const auto k = s.sample(rng);
    EXPECT_GE(k, 2u);
    EXPECT_LE(k, 100u);
  }
}

TEST(PowerLawSampler, EmpiricalMeanMatchesAnalytic) {
  agg::Prng rng(5);
  const agg::PowerLawSampler s(2.0, 1, 1000);
  double sum = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += s.sample(rng);
  EXPECT_NEAR(sum / kSamples, s.mean(), 0.1 * s.mean());
}

TEST(PowerLawSampler, HigherAlphaLowerMean) {
  const agg::PowerLawSampler flat(0.5, 1, 500);
  const agg::PowerLawSampler steep(2.5, 1, 500);
  EXPECT_GT(flat.mean(), steep.mean());
}

TEST(AliasSampler, MatchesWeights) {
  agg::Prng rng(9);
  const std::vector<double> w{1.0, 3.0, 6.0};
  const agg::AliasSampler s(w);
  std::array<int, 3> counts{};
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[s.sample(rng)];
  EXPECT_NEAR(counts[0] / double(kSamples), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(kSamples), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / double(kSamples), 0.6, 0.015);
}

TEST(RunningStats, Basics) {
  agg::RunningStats s;
  for (const double x : {2.0, 4.0, 6.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_NEAR(s.variance(), 8.0 / 3.0, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  agg::RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(DegreeHistogram, DenseAndTailBins) {
  agg::DegreeHistogram h(8);
  h.add(0);
  h.add(3);
  h.add(3);
  h.add(100);  // 2^6..2^7-1 bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_exact(3), 2u);
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[2].lo, 64u);
  EXPECT_EQ(bins[2].hi, 127u);
  EXPECT_EQ(bins[2].count, 1u);
}

TEST(DegreeHistogram, CdfMonotone) {
  agg::DegreeHistogram h(16);
  for (std::uint64_t v = 0; v < 100; ++v) h.add(v % 20);
  double prev = 0;
  for (std::uint32_t v = 0; v < 32; ++v) {
    const double c = h.cdf_at(v);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h.cdf_at(1000), 1.0);
}

TEST(Percentile, NearestRank) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(agg::percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(agg::percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(agg::percentile(v, 10), 1.0);
}

TEST(Table, RendersAllCellsAndHighlights) {
  agg::Table t({"name", "value"});
  t.add_row({"alpha", "1"}, 1);
  t.add_row({"beta", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("[1]"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
}

TEST(Table, FormatsThousands) {
  EXPECT_EQ(agg::Table::fmt_int(0), "0");
  EXPECT_EQ(agg::Table::fmt_int(999), "999");
  EXPECT_EQ(agg::Table::fmt_int(1000), "1,000");
  EXPECT_EQ(agg::Table::fmt_int(4308452), "4,308,452");
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog", "--alpha=3", "--name", "foo", "pos1", "--flag"};
  agg::Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get("name", ""), "foo");
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_FALSE(cli.get_bool("absent", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

}  // namespace
