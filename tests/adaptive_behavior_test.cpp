// Behavioral properties of the adaptive runtime across topology families:
// the diameter/degree knobs of Watts-Strogatz graphs let us sweep a single
// parameter and check that the runtime reacts the way the paper's analysis
// predicts.
#include <gtest/gtest.h>

#include <set>

#include "cpu/bfs_serial.h"
#include "graph/gen/generators.h"
#include "runtime/adaptive_engine.h"

namespace {

class RewireSweep : public ::testing::TestWithParam<double> {};

TEST_P(RewireSweep, AdaptiveBfsCorrectAcrossDiameterRegimes) {
  const double p = GetParam();
  const auto g = graph::gen::watts_strogatz(20000, 6, p, 31);
  const auto expected = cpu::bfs(g, 0);
  simt::Device dev;
  const auto got = rt::adaptive_bfs(dev, g, 0);
  EXPECT_EQ(got.level, expected.level);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, RewireSweep,
                         ::testing::Values(0.0, 0.01, 0.05, 0.2, 0.8),
                         [](const auto& info) {
                           return "p" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

TEST(AdaptiveBehavior, IterationCountDropsWithRewiring) {
  // More shortcuts = smaller diameter = fewer level-synchronous iterations.
  simt::Device d1, d2;
  const auto lattice = graph::gen::watts_strogatz(20000, 6, 0.0, 7);
  const auto small_world = graph::gen::watts_strogatz(20000, 6, 0.3, 7);
  const auto a = rt::adaptive_bfs(d1, lattice, 0);
  const auto b = rt::adaptive_bfs(d2, small_world, 0);
  EXPECT_GT(a.metrics.iterations.size(), 3 * b.metrics.iterations.size());
}

TEST(AdaptiveBehavior, LatticeStaysInQueueRegion) {
  // A ring lattice's frontier is bounded by 2k; it never crosses T2, so the
  // runtime must remain in B_QU throughout (Fig. 11 leftmost region).
  const auto g = graph::gen::watts_strogatz(20000, 6, 0.0, 7);
  simt::Device dev;
  const auto got = rt::adaptive_bfs(dev, g, 0);
  for (const auto& it : got.metrics.iterations) {
    EXPECT_EQ(gg::variant_name(it.variant), "U_B_QU");
  }
  EXPECT_EQ(got.metrics.switches, 0u);
}

TEST(AdaptiveBehavior, SmallWorldCrossesIntoBitmapRegion) {
  // With strong rewiring the frontier explodes past T3 within a few hops.
  const auto g = graph::gen::watts_strogatz(30000, 8, 0.5, 7);
  simt::Device dev;
  const auto got = rt::adaptive_bfs(dev, g, 0);
  bool saw_bitmap = false;
  for (const auto& it : got.metrics.iterations) {
    saw_bitmap |= it.variant.repr == gg::WorksetRepr::bitmap;
  }
  EXPECT_TRUE(saw_bitmap);
  EXPECT_GT(got.metrics.switches, 0u);
}

TEST(AdaptiveBehavior, SwitchCountsMatchVariantChanges) {
  const auto g = graph::gen::erdos_renyi(50000, 250000, 21);
  simt::Device dev;
  const auto got = rt::adaptive_bfs(dev, g, 0);
  std::uint32_t observed = 0;
  for (std::size_t i = 1; i < got.metrics.iterations.size(); ++i) {
    observed += !(got.metrics.iterations[i].variant ==
                  got.metrics.iterations[i - 1].variant);
  }
  EXPECT_EQ(got.metrics.switches, observed);
}

TEST(AdaptiveBehavior, DecisionsPerIterationWithDefaultSampling) {
  const auto g = graph::gen::erdos_renyi(20000, 100000, 23);
  simt::Device dev;
  const auto got = rt::adaptive_bfs(dev, g, 0);
  EXPECT_EQ(got.metrics.decisions, got.metrics.iterations.size());
}

TEST(AdaptiveBehavior, StaleDecisionsWithCoarseSampling) {
  const auto g = graph::gen::erdos_renyi(20000, 100000, 23);
  simt::Device dev;
  rt::AdaptiveOptions opts;
  opts.monitor_interval = 1000;  // effectively never re-decide
  const auto got = rt::adaptive_bfs(dev, g, 0, opts);
  // Only the initial decision applies: no switches possible.
  EXPECT_EQ(got.metrics.switches, 0u);
  std::set<std::string> used;
  for (const auto& it : got.metrics.iterations) {
    used.insert(gg::variant_name(it.variant));
  }
  EXPECT_EQ(used.size(), 1u);
}

TEST(AdaptiveBehavior, MonitoringCostVisibleInModeledTime) {
  // R=1 in bitmap-heavy phases charges a count kernel per iteration; R=8
  // must therefore be no slower on a bitmap-dominated traversal.
  const auto g = graph::gen::erdos_renyi(80000, 500000, 29);
  simt::Device d1, d2;
  rt::AdaptiveOptions fine, coarse;
  fine.monitor_interval = 1;
  coarse.monitor_interval = 8;
  const auto a = rt::adaptive_bfs(d1, g, 0, fine);
  const auto b = rt::adaptive_bfs(d2, g, 0, coarse);
  EXPECT_EQ(a.level, b.level);
  EXPECT_GT(a.metrics.decisions, b.metrics.decisions);
}

TEST(AdaptiveBehavior, SharedUpdateVectorMakesSwitchesFree) {
  // A forced alternation of representations must not change the number of
  // frontier elements processed (the switch itself moves no data).
  const auto g = graph::gen::erdos_renyi(10000, 50000, 17);
  simt::Device d1, d2;
  const auto fixed = gg::run_bfs(d1, g, 0, gg::parse_variant("U_T_QU"));
  gg::EngineOptions opts;
  opts.monitor_interval = 1;
  const auto alternating = gg::run_bfs(
      d2, g, 0,
      [](const gg::SelectorInput& in) {
        return gg::unordered_variants()[in.iteration % 4];
      },
      opts);
  EXPECT_EQ(alternating.metrics.edges_processed, fixed.metrics.edges_processed);
  EXPECT_EQ(alternating.metrics.iterations.size(),
            fixed.metrics.iterations.size());
}

}  // namespace
