#include <gtest/gtest.h>

#include <numeric>

#include "cpu/bfs_serial.h"
#include "cpu/sssp_serial.h"
#include "graph/gen/generators.h"
#include "graph/graph_stats.h"
#include "graph/transform.h"

namespace {

TEST(IsSymmetric, DetectsBothCases) {
  const auto directed =
      graph::csr_from_edges(3, std::vector<graph::Edge>{{0, 1}, {1, 2}});
  EXPECT_FALSE(graph::is_symmetric(directed));
  EXPECT_TRUE(graph::is_symmetric(graph::symmetrize(directed)));
}

TEST(IsSymmetric, SelfLoopsAreTheirOwnReverse) {
  const auto g = graph::csr_from_edges(2, std::vector<graph::Edge>{{0, 0}});
  EXPECT_TRUE(graph::is_symmetric(g));
}

TEST(IsSymmetric, CountsMultiplicity) {
  // Two arcs one way, one arc back: not symmetric.
  const auto g = graph::csr_from_edges(
      2, std::vector<graph::Edge>{{0, 1}, {0, 1}, {1, 0}});
  EXPECT_FALSE(graph::is_symmetric(g));
}

TEST(IsSymmetric, GeneratorsProduceWhatTheyClaim) {
  EXPECT_TRUE(graph::is_symmetric(graph::gen::road_network(2000, 4)));
  EXPECT_TRUE(graph::is_symmetric(graph::gen::watts_strogatz(1000, 4, 0.1, 5)));
  EXPECT_FALSE(graph::is_symmetric(graph::gen::regular_copurchase(1000, 5)));
}

// is_symmetric is deliberately structural (weights not consulted);
// is_weight_symmetric is the strong form a weighted CSR must pass before it
// may alias its own CSC (the PR 6 follow-up).
TEST(IsWeightSymmetric, StructuralSymmetryIsNotEnough) {
  // 0<->1 both ways, but with different weights: structurally symmetric,
  // weight-asymmetric.
  const auto g = graph::csr_from_edges(
      2, std::vector<graph::Edge>{{0, 1}, {1, 0}},
      std::vector<std::uint32_t>{3, 7});
  EXPECT_TRUE(graph::is_symmetric(g));
  EXPECT_FALSE(graph::is_weight_symmetric(g));

  const auto ok = graph::csr_from_edges(
      2, std::vector<graph::Edge>{{0, 1}, {1, 0}},
      std::vector<std::uint32_t>{3, 3});
  EXPECT_TRUE(graph::is_weight_symmetric(ok));
}

TEST(IsWeightSymmetric, CountsWeightedMultiplicity) {
  // (0,1,w=3) twice but only one (1,0,w=3) back: not weight-symmetric even
  // though every arc has some reverse.
  const auto g = graph::csr_from_edges(
      2, std::vector<graph::Edge>{{0, 1}, {0, 1}, {1, 0}, {1, 0}},
      std::vector<std::uint32_t>{3, 3, 3, 5});
  EXPECT_FALSE(graph::is_weight_symmetric(g));
  // Matching multiset of weights per direction: symmetric.
  const auto ok = graph::csr_from_edges(
      2, std::vector<graph::Edge>{{0, 1}, {0, 1}, {1, 0}, {1, 0}},
      std::vector<std::uint32_t>{3, 5, 5, 3});
  EXPECT_TRUE(graph::is_weight_symmetric(ok));
}

TEST(IsWeightSymmetric, UnweightedFallsBackToStructural) {
  const auto sym = graph::symmetrize(
      graph::csr_from_edges(3, std::vector<graph::Edge>{{0, 1}, {1, 2}}));
  EXPECT_TRUE(graph::is_weight_symmetric(sym));
  const auto dir =
      graph::csr_from_edges(3, std::vector<graph::Edge>{{0, 1}, {1, 2}});
  EXPECT_FALSE(graph::is_weight_symmetric(dir));
  // Self loops are their own reverse in both forms.
  const auto loop = graph::csr_from_edges(
      1, std::vector<graph::Edge>{{0, 0}}, std::vector<std::uint32_t>{9});
  EXPECT_TRUE(graph::is_weight_symmetric(loop));
}

TEST(RelabelByDegree, SortsDegreesDescending) {
  const auto g = graph::gen::erdos_renyi(500, 3000, 9);
  const auto r = graph::relabel_by_degree(g);
  for (std::uint32_t v = 0; v + 1 < r.csr.num_nodes; ++v) {
    EXPECT_GE(r.csr.degree(v), r.csr.degree(v + 1));
  }
}

TEST(RelabelByDegree, MappingsAreInverse) {
  const auto g = graph::gen::erdos_renyi(300, 1200, 2);
  const auto r = graph::relabel_by_degree(g);
  for (std::uint32_t old = 0; old < g.num_nodes; ++old) {
    EXPECT_EQ(r.old_id[r.new_id[old]], old);
  }
}

TEST(Relabel, PreservesBfsStructure) {
  const auto g = graph::gen::erdos_renyi(800, 4000, 7);
  const auto r = graph::relabel_by_degree(g);
  const auto orig = cpu::bfs(g, 5);
  const auto relab = cpu::bfs(r.csr, r.new_id[5]);
  for (std::uint32_t old = 0; old < g.num_nodes; ++old) {
    EXPECT_EQ(orig.level[old], relab.level[r.new_id[old]]) << old;
  }
}

TEST(Relabel, PreservesWeightsAlongEdges) {
  auto g = graph::gen::erdos_renyi(400, 2000, 11);
  graph::assign_uniform_weights(g, 1, 99, 3);
  const auto r = graph::relabel_by_degree(g);
  const auto orig = cpu::dijkstra(g, 0);
  const auto relab = cpu::dijkstra(r.csr, r.new_id[0]);
  for (std::uint32_t old = 0; old < g.num_nodes; ++old) {
    EXPECT_EQ(orig.dist[old], relab.dist[r.new_id[old]]);
  }
}

TEST(Relabel, IdentityPermutationIsNoOp) {
  const auto g = graph::gen::erdos_renyi(100, 400, 1);
  std::vector<graph::NodeId> identity(g.num_nodes);
  std::iota(identity.begin(), identity.end(), 0u);
  const auto r = graph::relabel(g, identity);
  EXPECT_EQ(r.csr.row_offsets, g.row_offsets);
  EXPECT_EQ(r.csr.col_indices, g.col_indices);
}

TEST(InducedSubgraph, KeepsOnlyInternalEdges) {
  // 0-1-2-3 chain; take {1, 2}.
  const auto g = graph::csr_from_edges(
      4, std::vector<graph::Edge>{{0, 1}, {1, 2}, {2, 3}});
  const std::vector<graph::NodeId> sel{1, 2};
  const auto r = graph::induced_subgraph(g, sel);
  EXPECT_EQ(r.csr.num_nodes, 2u);
  EXPECT_EQ(r.csr.num_edges(), 1u);  // only 1->2 survives
  EXPECT_EQ(r.csr.neighbors(0)[0], 1u);
  EXPECT_EQ(r.old_id[0], 1u);
  EXPECT_EQ(r.old_id[1], 2u);
}

TEST(InducedSubgraph, RejectsDuplicates) {
  const auto g = graph::csr_from_edges(3, std::vector<graph::Edge>{{0, 1}});
  const std::vector<graph::NodeId> sel{1, 1};
  EXPECT_DEATH(graph::induced_subgraph(g, sel), "duplicate");
}

TEST(DedupEdges, KeepsMinWeight) {
  const std::vector<graph::Edge> e{{0, 1}, {0, 1}, {0, 2}};
  const std::vector<std::uint32_t> w{9, 4, 7};
  const auto g = graph::csr_from_edges(3, e, w);
  const auto d = graph::dedup_edges(g);
  EXPECT_EQ(d.num_edges(), 2u);
  EXPECT_EQ(d.edge_weights(0)[0], 4u);  // neighbors sorted by id: 1 then 2
  EXPECT_EQ(d.edge_weights(0)[1], 7u);
}

TEST(DedupEdges, ShortestPathsUnchanged) {
  auto g = graph::gen::erdos_renyi(500, 5000, 13);  // dense: duplicates likely
  graph::assign_uniform_weights(g, 1, 50, 2);
  const auto d = graph::dedup_edges(g);
  EXPECT_LE(d.num_edges(), g.num_edges());
  EXPECT_EQ(cpu::dijkstra(g, 0).dist, cpu::dijkstra(d, 0).dist);
}

TEST(WattsStrogatz, ZeroRewireIsRingLattice) {
  const auto g = graph::gen::watts_strogatz(100, 4, 0.0, 1);
  const auto s = graph::GraphStats::compute(g);
  EXPECT_EQ(s.outdeg_min, 4u);
  EXPECT_EQ(s.outdeg_max, 4u);
  const auto reach = graph::compute_reach(g, 0);
  EXPECT_EQ(reach.reachable_nodes, 100u);
  EXPECT_EQ(reach.levels, 25u);  // n / k hops around the ring
}

TEST(WattsStrogatz, RewiringShrinksDiameter) {
  const auto lattice = graph::gen::watts_strogatz(2000, 4, 0.0, 1);
  const auto small_world = graph::gen::watts_strogatz(2000, 4, 0.2, 1);
  EXPECT_GT(graph::compute_reach(lattice, 0).levels,
            2 * graph::compute_reach(small_world, 0).levels);
}

}  // namespace
