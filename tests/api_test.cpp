#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "api/algorithms.h"
#include "api/graph_api.h"
#include "graph/gen/generators.h"

namespace {

using adaptive::Graph;
using adaptive::Policy;

Graph small_graph() {
  return Graph::from_edges(5, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}});
}

TEST(GraphApi, FromEdges) {
  const auto g = small_graph();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_FALSE(g.is_weighted());
  EXPECT_EQ(g.default_source(), 0u);
}

TEST(GraphApi, FromBuilder) {
  graph::GraphBuilder b;
  b.add_undirected(0, 1).add_undirected(1, 2);
  const auto g = Graph::from_builder(b);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(GraphApi, StatsCached) {
  const auto g = small_graph();
  const auto& s1 = g.stats();
  const auto& s2 = g.stats();
  EXPECT_EQ(&s1, &s2);
  EXPECT_EQ(s1.num_nodes, 5u);
}

TEST(GraphApi, WeightsEnableSssp) {
  auto g = small_graph();
  EXPECT_FALSE(g.is_weighted());
  g.set_uniform_weights(1, 10);
  EXPECT_TRUE(g.is_weighted());
}

TEST(GraphApi, BinarySaveLoad) {
  const auto path =
      (std::filesystem::temp_directory_path() / "api_test.agg").string();
  auto g = small_graph();
  g.set_uniform_weights(1, 5);
  g.save_binary(path);
  const auto loaded = Graph::load_binary(path);
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_TRUE(loaded.is_weighted());
  std::remove(path.c_str());
}

TEST(Algorithms, BfsDefaultPolicy) {
  const auto g = small_graph();
  const auto out = adaptive::bfs(g, 0);
  EXPECT_EQ(out.level[4], 3u);
  EXPECT_GT(out.metrics.total_us, 0.0);
}

TEST(Algorithms, AllPoliciesAgree) {
  auto csr = graph::gen::erdos_renyi(5000, 25000, 13);
  graph::assign_uniform_weights(csr, 1, 100, 1);
  const auto g = Graph::from_csr(std::move(csr));

  const auto cpu_out = adaptive::bfs(g, 0, Policy::cpu());
  const auto adapt_out = adaptive::bfs(g, 0, Policy::adapt());
  const auto fixed_out = adaptive::bfs(g, 0, Policy::fixed("U_B_QU"));
  EXPECT_EQ(adapt_out.level, cpu_out.level);
  EXPECT_EQ(fixed_out.level, cpu_out.level);

  const auto cpu_d = adaptive::sssp(g, 0, Policy::cpu());
  const auto adapt_d = adaptive::sssp(g, 0, Policy::adapt());
  const auto fixed_d = adaptive::sssp(g, 0, Policy::fixed("O_T_QU"));
  EXPECT_EQ(adapt_d.dist, cpu_d.dist);
  EXPECT_EQ(fixed_d.dist, cpu_d.dist);
}

TEST(Algorithms, SharedDeviceAccumulatesClock) {
  const auto g = small_graph();
  simt::Device dev;
  adaptive::bfs(dev, g, 0);
  const double after_first = dev.now_us();
  adaptive::bfs(dev, g, 0);
  EXPECT_GT(dev.now_us(), after_first);
}

TEST(Algorithms, CpuPolicyReportsWallClock) {
  const auto g = small_graph();
  const auto out = adaptive::bfs(g, 0, Policy::cpu());
  EXPECT_GE(out.cpu_wall_ms, 0.0);
  EXPECT_EQ(out.metrics.kernels, 0u);
}

TEST(Algorithms, SsspWithoutWeightsDies) {
  const auto g = small_graph();
  EXPECT_DEATH(adaptive::sssp(g, 0), "weights");
}

TEST(Algorithms, FixedPolicyParsesAllNames) {
  for (const auto v : gg::all_variants()) {
    const auto p = Policy::fixed(gg::variant_name(v));
    EXPECT_EQ(p.variant, v);
  }
}

}  // namespace
