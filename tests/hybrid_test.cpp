// Hybrid CPU/GPU execution (extension; cf. Hong et al. [13]): correctness
// across thresholds and the performance claim on high-diameter graphs.
#include <gtest/gtest.h>

#include "cpu/bfs_serial.h"
#include "cpu/sssp_serial.h"
#include "gpu_graph/bfs_engine.h"
#include "gpu_graph/sssp_engine.h"
#include "graph/gen/generators.h"
#include "runtime/adaptive_engine.h"

namespace {

gg::EngineOptions hybrid_opts(std::uint64_t threshold) {
  gg::EngineOptions opts;
  opts.hybrid_cpu_threshold = threshold;
  return opts;
}

class ThresholdSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThresholdSweep, BfsCorrectAtEveryThreshold) {
  const auto g = graph::gen::erdos_renyi(5000, 25000, 41);
  const auto expected = cpu::bfs(g, 0);
  simt::Device dev;
  const auto got = gg::run_bfs(dev, g, 0, gg::parse_variant("U_T_QU"),
                               hybrid_opts(GetParam()));
  EXPECT_EQ(got.level, expected.level);
}

TEST_P(ThresholdSweep, SsspCorrectAtEveryThreshold) {
  auto g = graph::gen::erdos_renyi(4000, 20000, 43);
  graph::assign_uniform_weights(g, 1, 100, 4);
  const auto expected = cpu::dijkstra(g, 0);
  simt::Device dev;
  const auto got = gg::run_sssp(dev, g, 0, gg::parse_variant("U_B_QU"),
                                hybrid_opts(GetParam()));
  EXPECT_EQ(got.dist, expected.dist);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(1ull, 32ull, 500ull, 100000ull),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(Hybrid, DisabledByDefault) {
  const auto g = graph::gen::erdos_renyi(2000, 8000, 5);
  simt::Device dev;
  const auto got = gg::run_bfs(dev, g, 0, gg::parse_variant("U_T_QU"));
  for (const auto& it : got.metrics.iterations) EXPECT_FALSE(it.on_cpu);
  EXPECT_EQ(dev.stats().host_time_us, 0.0);
}

TEST(Hybrid, HugeThresholdRunsEntirelyOnHost) {
  const auto g = graph::gen::erdos_renyi(2000, 8000, 5);
  const auto expected = cpu::bfs(g, 0);
  simt::Device dev;
  const auto got = gg::run_bfs(dev, g, 0, gg::parse_variant("U_T_QU"),
                               hybrid_opts(1u << 30));
  EXPECT_EQ(got.level, expected.level);
  for (const auto& it : got.metrics.iterations) EXPECT_TRUE(it.on_cpu);
  EXPECT_GT(dev.stats().host_time_us, 0.0);
}

TEST(Hybrid, SmallFrontiersOnHostLargeOnDevice) {
  // A random graph: frontier 1 -> explodes -> collapses. With a threshold in
  // between, the run must mix phases with a bounded number of switches.
  const auto g = graph::gen::erdos_renyi(30000, 150000, 6);
  simt::Device dev;
  const auto got = gg::run_bfs(dev, g, 0, gg::parse_variant("U_T_BM"),
                               hybrid_opts(1000));
  bool saw_cpu = false, saw_gpu = false;
  int switches = 0;
  for (std::size_t i = 0; i < got.metrics.iterations.size(); ++i) {
    const auto& it = got.metrics.iterations[i];
    saw_cpu |= it.on_cpu;
    saw_gpu |= !it.on_cpu;
    EXPECT_EQ(it.on_cpu, it.ws_size < 1000) << "iteration " << i;
    if (i > 0) switches += it.on_cpu != got.metrics.iterations[i - 1].on_cpu;
  }
  EXPECT_TRUE(saw_cpu);
  EXPECT_TRUE(saw_gpu);
  EXPECT_LE(switches, 3);  // ramp-up and ramp-down, not thrashing
  EXPECT_GT(dev.stats().host_time_us, 0.0);
  EXPECT_EQ(got.level, cpu::bfs(g, 0).level);
}

TEST(Hybrid, BeatsPureGpuOnHighDiameterGraph) {
  // The paper's CO-road problem: hundreds of tiny frontiers each paying
  // kernel launch + readback. Hosting them must win (Hong et al.'s result).
  auto g = graph::gen::road_network(30000, 15);
  graph::assign_uniform_weights(g, 1, 1000, 2);
  const auto src = graph::suggest_source(g);
  simt::Device pure_dev, hybrid_dev;
  const auto pure = gg::run_sssp(pure_dev, g, src, gg::parse_variant("U_T_QU"));
  gg::EngineOptions opts = hybrid_opts(2688);
  const auto mixed = gg::run_sssp(hybrid_dev, g, src,
                                  gg::parse_variant("U_T_QU"), opts);
  EXPECT_EQ(pure.dist, mixed.dist);
  EXPECT_LT(mixed.metrics.total_us, 0.5 * pure.metrics.total_us);
}

TEST(Hybrid, SwitchPaysStateTransfer) {
  const auto g = graph::gen::erdos_renyi(30000, 150000, 6);
  simt::Device plain_dev, hybrid_dev;
  gg::run_bfs(plain_dev, g, 0, gg::parse_variant("U_T_QU"));
  gg::run_bfs(hybrid_dev, g, 0, gg::parse_variant("U_T_QU"), hybrid_opts(1000));
  // The hybrid run moves the n-word state array at each phase switch.
  EXPECT_GT(hybrid_dev.stats().bytes_d2h, plain_dev.stats().bytes_d2h);
}

TEST(Hybrid, ComposesWithAdaptiveSelector) {
  auto g = graph::gen::road_network(20000, 19);
  graph::assign_uniform_weights(g, 1, 1000, 3);
  const auto src = graph::suggest_source(g);
  const auto expected = cpu::dijkstra(g, src);
  simt::Device dev;
  rt::AdaptiveOptions opts;
  opts.engine.hybrid_cpu_threshold = 2688;
  const auto got = rt::adaptive_sssp(dev, g, src, opts);
  EXPECT_EQ(got.dist, expected.dist);
}

}  // namespace
