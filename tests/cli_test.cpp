// End-to-end tests of the `agg` command-line tool: generate / stats /
// convert / algorithm commands, exercised through the real binary.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace {

namespace fs = std::filesystem;

class CliTest : public ::testing::Test {
 protected:
  static std::string tool() {
    // ctest runs with CWD = build/tests; the tool lives in build/tools.
    for (const char* candidate : {"../tools/agg", "tools/agg", "./agg"}) {
      if (fs::exists(candidate)) return candidate;
    }
    return "";
  }

  void SetUp() override {
    if (tool().empty()) GTEST_SKIP() << "agg binary not found";
    work_ = fs::temp_directory_path() / "agg_cli_test";
    fs::create_directories(work_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(work_, ec);
  }

  // Runs the tool, captures stdout, returns (exit_code, output).
  std::pair<int, std::string> run(const std::string& args) {
    const std::string out_file = (work_ / "out.txt").string();
    const std::string cmd = tool() + " " + args + " > " + out_file + " 2>&1";
    const int rc = std::system(cmd.c_str());
    std::ifstream in(out_file);
    std::stringstream ss;
    ss << in.rdbuf();
    return {WEXITSTATUS(rc), ss.str()};
  }

  std::string path(const char* name) { return (work_ / name).string(); }

  fs::path work_;
};

TEST_F(CliTest, HelpExitsZero) {
  const auto [rc, out] = run("--help");
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("agg"), std::string::npos);
  EXPECT_NE(out.find("generate"), std::string::npos);
}

TEST_F(CliTest, NoArgumentsFailsWithUsage) {
  const auto [rc, out] = run("");
  EXPECT_EQ(rc, 2);
}

TEST_F(CliTest, UnknownCommandFails) {
  const auto [rc, out] = run("frobnicate x");
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, GenerateStatsPipeline) {
  const auto g = path("g.agg");
  auto [rc, out] = run("generate er --nodes=2000 --out=" + g);
  ASSERT_EQ(rc, 0) << out;
  EXPECT_TRUE(fs::exists(g));
  std::tie(rc, out) = run("stats " + g);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("n=2,000"), std::string::npos);
}

TEST_F(CliTest, BfsAgreesAcrossPolicies) {
  const auto g = path("g.agg");
  ASSERT_EQ(run("generate p2p --nodes=5000 --out=" + g).first, 0);
  const auto gpu = run("bfs " + g + " --policy=adaptive");
  const auto cpu = run("bfs " + g + " --policy=cpu");
  ASSERT_EQ(gpu.first, 0);
  ASSERT_EQ(cpu.first, 0);
  // Both report identical reach line ("BFS from X: reached ...").
  const auto first_line = [](const std::string& s) {
    return s.substr(0, s.find('\n'));
  };
  EXPECT_EQ(first_line(gpu.second), first_line(cpu.second));
}

TEST_F(CliTest, SsspAssignsWeightsWhenMissing) {
  const auto g = path("g.agg");
  ASSERT_EQ(run("generate er --nodes=1000 --out=" + g).first, 0);
  const auto [rc, out] = run("sssp " + g + " --policy=U_T_QU");
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("assigning uniform weights"), std::string::npos);
  EXPECT_NE(out.find("SSSP from"), std::string::npos);
}

TEST_F(CliTest, ConvertRoundTrip) {
  const auto a = path("a.agg");
  const auto b = path("b.gr");
  const auto c = path("c.agg");
  ASSERT_EQ(run("generate er --nodes=500 --weights --out=" + a).first, 0);
  ASSERT_EQ(run("convert " + a + " " + b).first, 0);
  ASSERT_EQ(run("convert " + b + " " + c).first, 0);
  const auto s1 = run("stats " + a).second;
  const auto s2 = run("stats " + c).second;
  EXPECT_EQ(s1.substr(0, s1.find('\n')), s2.substr(0, s2.find('\n')));
}

TEST_F(CliTest, CcAndMstAndPagerankRun) {
  const auto g = path("g.agg");
  ASSERT_EQ(run("generate p2p --nodes=3000 --weights --out=" + g).first, 0);
  auto [rc, out] = run("cc " + g);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("components"), std::string::npos);
  std::tie(rc, out) = run("mst " + g);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("spanning forest"), std::string::npos);
  std::tie(rc, out) = run("pagerank " + g + " --top=3");
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("top 3 pages"), std::string::npos);
}

TEST_F(CliTest, ProfileFlagPrintsKernelTable) {
  const auto g = path("g.agg");
  ASSERT_EQ(run("generate er --nodes=3000 --out=" + g).first, 0);
  const auto [rc, out] = run("bfs " + g + " --profile");
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("bound by"), std::string::npos);
  EXPECT_NE(out.find("workset_gen"), std::string::npos);
}

TEST_F(CliTest, MissingFileFails) {
  const auto [rc, out] = run("bfs /nonexistent/graph.agg");
  EXPECT_NE(rc, 0);
}

TEST_F(CliTest, ProfileFlagOnEveryAlgorithm) {
  const auto g = path("g.agg");
  ASSERT_EQ(run("generate p2p --nodes=3000 --weights --out=" + g).first, 0);
  for (const char* cmd : {"sssp", "cc", "pagerank", "mst"}) {
    SCOPED_TRACE(cmd);
    const auto [rc, out] = run(std::string(cmd) + " " + g + " --profile");
    EXPECT_EQ(rc, 0);
    EXPECT_NE(out.find("bound by"), std::string::npos) << out;
    EXPECT_NE(out.find("total kernel time"), std::string::npos);
  }
}

TEST_F(CliTest, ChromeTraceAndMetricsFilesWritten) {
  const auto g = path("g.agg");
  const auto trace_file = path("trace.json");
  const auto metrics_file = path("metrics.json");
  ASSERT_EQ(run("generate er --nodes=3000 --out=" + g).first, 0);
  const auto [rc, out] = run("bfs " + g + " --trace-out=" + trace_file +
                             " --trace-format=chrome --metrics-out=" +
                             metrics_file);
  ASSERT_EQ(rc, 0) << out;
  ASSERT_TRUE(fs::exists(trace_file));
  ASSERT_TRUE(fs::exists(metrics_file));

  std::stringstream tss, mss;
  tss << std::ifstream(trace_file).rdbuf();
  mss << std::ifstream(metrics_file).rdbuf();
  EXPECT_NE(tss.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(tss.str().find("memcpy.h2d"), std::string::npos);
  EXPECT_NE(tss.str().find("bfs.iteration"), std::string::npos);
  EXPECT_NE(mss.str().find("simt.kernels"), std::string::npos);
  EXPECT_NE(mss.str().find("engine.iterations"), std::string::npos);
}

TEST_F(CliTest, JsonlDecisionTraceWritten) {
  const auto g = path("g.agg");
  const auto trace_file = path("decisions.jsonl");
  ASSERT_EQ(run("generate er --nodes=3000 --out=" + g).first, 0);
  const auto [rc, out] =
      run("bfs " + g + " --trace-out=" + trace_file + " --trace-format=jsonl");
  ASSERT_EQ(rc, 0) << out;
  ASSERT_TRUE(fs::exists(trace_file));
  std::stringstream ss;
  ss << std::ifstream(trace_file).rdbuf();
  EXPECT_NE(ss.str().find("\"kind\":\"decision\""), std::string::npos);
  EXPECT_NE(ss.str().find("\"t1\":"), std::string::npos);
}

TEST_F(CliTest, BadTraceFormatFails) {
  const auto g = path("g.agg");
  ASSERT_EQ(run("generate er --nodes=500 --out=" + g).first, 0);
  const auto [rc, out] =
      run("bfs " + g + " --trace-out=" + path("t.json") + " --trace-format=xml");
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.find("unknown --trace-format"), std::string::npos);
}

}  // namespace
