#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cpu/bfs_serial.h"
#include "cpu/sssp_serial.h"
#include "graph/gen/datasets.h"
#include "graph/gen/generators.h"
#include "runtime/adaptive_engine.h"
#include "runtime/decision.h"
#include "runtime/inspector.h"
#include "runtime/tuner.h"

namespace {

using gg::Mapping;
using gg::Ordering;
using gg::WorksetRepr;
using rt::Thresholds;

Thresholds default_thresholds() {
  return Thresholds::for_device(simt::DeviceProps::fermi_c2070());
}

// ---- decision maker: the five regions of Fig. 11 ---------------------------

TEST(Decision, DerivedThresholdsMatchPaper) {
  const auto t = default_thresholds();
  EXPECT_DOUBLE_EQ(t.t1_avg_outdegree, 32.0);
  EXPECT_DOUBLE_EQ(t.t2_ws_size, 192.0 * 14.0);  // Sec. VII.B: 2,688
}

TEST(Decision, SmallWorksetAlwaysBlockQueue) {
  const auto t = default_thresholds();
  for (const double deg : {2.0, 20.0, 200.0}) {
    const auto v = rt::decide(t, 100, deg, 1000000);
    EXPECT_EQ(v.mapping, Mapping::block);
    EXPECT_EQ(v.repr, WorksetRepr::queue);
  }
}

TEST(Decision, MidWorksetLowDegreeThreadQueue) {
  const auto t = default_thresholds();
  // |WS| = 5000 (> T2), T3 = 30% of 1M (> |WS|), avg deg 5 (< T1).
  const auto v = rt::decide(t, 5000, 5.0, 1000000);
  EXPECT_EQ(v.mapping, Mapping::thread);
  EXPECT_EQ(v.repr, WorksetRepr::queue);
}

TEST(Decision, MidWorksetHighDegreeBlockQueue) {
  const auto t = default_thresholds();
  const auto v = rt::decide(t, 5000, 80.0, 1000000);
  EXPECT_EQ(v.mapping, Mapping::block);
  EXPECT_EQ(v.repr, WorksetRepr::queue);
}

TEST(Decision, LargeWorksetLowDegreeThreadBitmap) {
  const auto t = default_thresholds();
  const auto v = rt::decide(t, 400000, 5.0, 1000000);
  EXPECT_EQ(v.mapping, Mapping::thread);
  EXPECT_EQ(v.repr, WorksetRepr::bitmap);
}

TEST(Decision, LargeWorksetHighDegreeBlockBitmap) {
  const auto t = default_thresholds();
  const auto v = rt::decide(t, 400000, 80.0, 1000000);
  EXPECT_EQ(v.mapping, Mapping::block);
  EXPECT_EQ(v.repr, WorksetRepr::bitmap);
}

TEST(Decision, AlwaysUnordered) {
  const auto t = default_thresholds();
  for (const std::uint64_t ws : {10ull, 10000ull, 500000ull}) {
    for (const double deg : {3.0, 64.0}) {
      EXPECT_EQ(rt::decide(t, ws, deg, 1000000).ordering, Ordering::unordered);
    }
  }
}

TEST(Decision, T3ScalesWithNodeCount) {
  const auto t = default_thresholds();
  // Same |WS|: bitmap on a small graph, queue on a huge one.
  EXPECT_EQ(rt::decide(t, 50000, 5.0, 100000).repr, WorksetRepr::bitmap);
  EXPECT_EQ(rt::decide(t, 50000, 5.0, 10000000).repr, WorksetRepr::queue);
}

TEST(Decision, SkewAwareMappingPrefersBlockOnHeavyTails) {
  const auto t = default_thresholds();
  // avg 8 alone would pick thread; a heavy tail (stddev 100) flips to block
  // (Sec. VI.B: uneven outdegree distributions cause warp divergence under
  // thread mapping).
  EXPECT_EQ(rt::decide(t, 400000, 8.0, 1000000, 0.0).mapping, Mapping::thread);
  EXPECT_EQ(rt::decide(t, 400000, 8.0, 1000000, 100.0).mapping, Mapping::block);
}

TEST(Decision, SkewWeightZeroRestoresPaperRule) {
  auto t = default_thresholds();
  t.skew_weight = 0.0;
  EXPECT_EQ(rt::decide(t, 400000, 8.0, 1000000, 1000.0).mapping, Mapping::thread);
}

TEST(Decision, ExactBoundaryValues) {
  const auto t = default_thresholds();
  // ws == T2 is NOT below T2: the B_QU shortcut must not trigger.
  const auto at_t2 = rt::decide(t, 2688, 5.0, 1000000);
  EXPECT_EQ(at_t2.mapping, Mapping::thread);
  // ws == T3 exactly: "above T3" is strict, so queue.
  const auto at_t3 =
      rt::decide(t, static_cast<std::uint64_t>(0.30 * 1000000), 5.0, 1000000);
  EXPECT_EQ(at_t3.repr, WorksetRepr::queue);
}

TEST(Decision, DeviceDerivedT2TracksSmCount) {
  const auto c2070 = Thresholds::for_device(simt::DeviceProps::fermi_c2070());
  const auto gtx580 = Thresholds::for_device(simt::DeviceProps::fermi_gtx580());
  EXPECT_DOUBLE_EQ(c2070.t2_ws_size, 192.0 * 14);
  EXPECT_DOUBLE_EQ(gtx580.t2_ws_size, 192.0 * 16);
}

// ---- inspector --------------------------------------------------------------

TEST(Inspector, ComputesStaticAttributes) {
  const auto d = graph::gen::make_dataset_scaled_to(graph::gen::DatasetId::amazon, 20000);
  rt::GraphInspector insp(d.csr);
  EXPECT_EQ(insp.num_nodes(), d.csr.num_nodes);
  EXPECT_NEAR(insp.avg_outdegree(), 8.5, 0.3);
  insp.set_monitor_interval(0);
  EXPECT_EQ(insp.monitor_interval(), 1u);  // clamped
  insp.set_monitor_interval(8);
  EXPECT_EQ(insp.monitor_interval(), 8u);
}

// ---- adaptive engine --------------------------------------------------------

class AdaptiveCorrectness
    : public ::testing::TestWithParam<graph::gen::DatasetId> {};

TEST_P(AdaptiveCorrectness, BfsMatchesCpu) {
  const auto d = graph::gen::make_dataset_scaled_to(GetParam(), 8000);
  const auto expected = cpu::bfs(d.csr, d.source);
  simt::Device dev;
  const auto got = rt::adaptive_bfs(dev, d.csr, d.source);
  EXPECT_EQ(got.level, expected.level);
  EXPECT_GT(got.metrics.decisions, 0u);
}

TEST_P(AdaptiveCorrectness, SsspMatchesCpu) {
  const auto d = graph::gen::make_dataset_scaled_to(GetParam(), 6000);
  const auto expected = cpu::dijkstra(d.csr, d.source);
  simt::Device dev;
  const auto got = rt::adaptive_sssp(dev, d.csr, d.source);
  EXPECT_EQ(got.dist, expected.dist);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, AdaptiveCorrectness,
                         ::testing::ValuesIn(graph::gen::all_datasets()),
                         [](const auto& info) {
                           std::string n = graph::gen::dataset_name(info.param);
                           for (auto& c : n) c = c == '-' ? '_' : c;
                           return n;
                         });

TEST(Adaptive, StartsInBlockQueueRegion) {
  // The first frontier has size 1 < T2, so the first iterations must run
  // B_QU regardless of topology.
  const auto d = graph::gen::make_dataset_scaled_to(graph::gen::DatasetId::amazon, 20000);
  simt::Device dev;
  const auto got = rt::adaptive_bfs(dev, d.csr, d.source);
  ASSERT_FALSE(got.metrics.iterations.empty());
  const auto first = got.metrics.iterations.front().variant;
  EXPECT_EQ(first.mapping, Mapping::block);
  EXPECT_EQ(first.repr, WorksetRepr::queue);
}

TEST(Adaptive, SwitchesVariantDuringTraversalOnLargeFrontiers) {
  // A random graph's frontier explodes past T2/T3, forcing at least one
  // representation or mapping switch during the traversal.
  auto g = graph::gen::erdos_renyi(60000, 300000, 5);
  simt::Device dev;
  const auto got = rt::adaptive_bfs(dev, g, 0);
  EXPECT_GT(got.metrics.switches, 0u);
  // And more than one distinct variant must actually have run.
  std::set<std::string> used;
  for (const auto& it : got.metrics.iterations) {
    used.insert(gg::variant_name(it.variant));
  }
  EXPECT_GT(used.size(), 1u);
}

TEST(Adaptive, MonitorIntervalReducesDecisions) {
  auto g = graph::gen::erdos_renyi(30000, 150000, 6);
  simt::Device d1, d2;
  rt::AdaptiveOptions every;
  every.monitor_interval = 1;
  rt::AdaptiveOptions sampled;
  sampled.monitor_interval = 4;
  const auto a = rt::adaptive_bfs(d1, g, 0, every);
  const auto b = rt::adaptive_bfs(d2, g, 0, sampled);
  EXPECT_GT(a.metrics.decisions, b.metrics.decisions);
  // Correctness unaffected by sampling.
  const auto expected = cpu::bfs(g, 0);
  EXPECT_EQ(a.level, expected.level);
  EXPECT_EQ(b.level, expected.level);
}

TEST(Adaptive, ThresholdOverrideRespected) {
  auto g = graph::gen::erdos_renyi(30000, 150000, 8);
  simt::Device dev;
  rt::AdaptiveOptions opts;
  // T3 fraction 0 => bitmap whenever |WS| > T2; queue only below T2.
  opts.thresholds = Thresholds::for_device(dev.props(), 192, 0.0);
  opts.thresholds_overridden = true;
  const auto got = rt::adaptive_bfs(dev, g, 0, opts);
  bool saw_bitmap = false;
  for (const auto& it : got.metrics.iterations) {
    if (it.ws_size > opts.thresholds.t2_ws_size) {
      EXPECT_EQ(it.variant.repr, WorksetRepr::bitmap);
      saw_bitmap = true;
    }
  }
  EXPECT_TRUE(saw_bitmap);
}

// ---- tuner -------------------------------------------------------------------

TEST(Tuner, T3SweepProducesCurveAndBest) {
  const auto d = graph::gen::make_dataset_scaled_to(graph::gen::DatasetId::google, 10000);
  simt::Device dev;
  const std::vector<double> fractions{0.01, 0.05, 0.10};
  const auto sweep = rt::sweep_t3(dev, d.csr, d.source, fractions,
                                  rt::TunedAlgorithm::sssp);
  ASSERT_EQ(sweep.curve.size(), 3u);
  for (const auto& p : sweep.curve) EXPECT_GT(p.time_us, 0.0);
  EXPECT_GT(sweep.best_time_us, 0.0);
  bool best_in_set = false;
  for (const double f : fractions) best_in_set |= f == sweep.best_value;
  EXPECT_TRUE(best_in_set);
}

TEST(Tuner, MonitorSweepRuns) {
  const auto d = graph::gen::make_dataset_scaled_to(graph::gen::DatasetId::p2p, 8000);
  simt::Device dev;
  const std::vector<std::uint32_t> intervals{1, 2, 8};
  const auto sweep = rt::sweep_monitor_interval(dev, d.csr, d.source, intervals,
                                                rt::TunedAlgorithm::bfs);
  ASSERT_EQ(sweep.curve.size(), 3u);
}

}  // namespace
