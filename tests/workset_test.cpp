#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gpu_graph/workset.h"

namespace {

using gg::Workset;
using gg::WorksetRepr;

class WorksetTest : public ::testing::Test {
 protected:
  simt::Device dev;
};

TEST_F(WorksetTest, ConstructionZeroInitializes) {
  Workset ws(dev, 100);
  for (const auto b : ws.bitmap().host_view()) EXPECT_EQ(b, 0);
  for (const auto u : ws.update().host_view()) EXPECT_EQ(u, 0);
  EXPECT_EQ(ws.queue_len().host_view()[0], 0u);
  ws.release(dev);
}

TEST_F(WorksetTest, InitSourceBitmap) {
  Workset ws(dev, 100);
  ws.init_source(dev, 42, WorksetRepr::bitmap);
  EXPECT_EQ(ws.bitmap().host_view()[42], 1);
  EXPECT_EQ(ws.queue_len().host_view()[0], 0u);
  ws.release(dev);
}

TEST_F(WorksetTest, InitSourceQueue) {
  Workset ws(dev, 100);
  ws.init_source(dev, 42, WorksetRepr::queue);
  EXPECT_EQ(ws.queue_len().host_view()[0], 1u);
  EXPECT_EQ(ws.queue().host_view()[0], 42u);
  ws.release(dev);
}

// Sets the given update flags on the device (simulating the computation
// kernel's effect) and returns the sorted id list.
std::vector<std::uint32_t> set_updates(Workset& ws,
                                       std::initializer_list<std::uint32_t> ids) {
  std::vector<std::uint32_t> sorted(ids);
  std::sort(sorted.begin(), sorted.end());
  for (const auto id : sorted) ws.update().host_view()[id] = 1;
  return sorted;
}

TEST_F(WorksetTest, GenerateBitmapSetsBitsAndClearsUpdate) {
  Workset ws(dev, 256);
  const auto updated = set_updates(ws, {3, 77, 200});
  const auto size = ws.generate(dev, WorksetRepr::bitmap, updated);
  EXPECT_EQ(size, 3u);
  for (std::uint32_t i = 0; i < 256; ++i) {
    const bool in = i == 3 || i == 77 || i == 200;
    EXPECT_EQ(ws.bitmap().host_view()[i], in ? 1 : 0) << i;
    EXPECT_EQ(ws.update().host_view()[i], 0) << i;
  }
  ws.release(dev);
}

TEST_F(WorksetTest, GenerateQueueContainsExactlyUpdatedIds) {
  Workset ws(dev, 256);
  const auto updated = set_updates(ws, {5, 9, 120, 255});
  const auto size = ws.generate(dev, WorksetRepr::queue, updated);
  EXPECT_EQ(size, 4u);
  EXPECT_EQ(ws.queue_len().host_view()[0], 4u);
  std::vector<std::uint32_t> contents(ws.queue().host_view().begin(),
                                      ws.queue().host_view().begin() + 4);
  std::sort(contents.begin(), contents.end());
  EXPECT_EQ(contents, updated);
  for (const auto u : ws.update().host_view()) EXPECT_EQ(u, 0);
  ws.release(dev);
}

TEST_F(WorksetTest, RepresentationsAreInterchangeablePerIteration) {
  // The minimal-overhead switching property: generating queue form after
  // bitmap form (from fresh update flags) yields the same logical set.
  Workset ws(dev, 128);
  auto updated = set_updates(ws, {1, 2, 64});
  ws.generate(dev, WorksetRepr::bitmap, updated);
  std::vector<std::uint32_t> from_bitmap;
  for (std::uint32_t i = 0; i < 128; ++i) {
    if (ws.bitmap().host_view()[i]) from_bitmap.push_back(i);
  }
  updated = set_updates(ws, {1, 2, 64});
  ws.generate(dev, WorksetRepr::queue, updated);
  std::vector<std::uint32_t> from_queue(
      ws.queue().host_view().begin(),
      ws.queue().host_view().begin() + ws.queue_len().host_view()[0]);
  std::sort(from_queue.begin(), from_queue.end());
  EXPECT_EQ(from_bitmap, from_queue);
  ws.release(dev);
}

TEST_F(WorksetTest, QueueGenerationSerializesOnTailCounter) {
  // The queue's atomic insertions must show up as same-address contention.
  Workset ws(dev, 4096);
  std::vector<std::uint32_t> updated(512);
  std::iota(updated.begin(), updated.end(), 0u);
  for (const auto id : updated) ws.update().host_view()[id] = 1;

  std::uint64_t max_atomic = 0;
  dev.set_kernel_observer(
      [&](const simt::KernelStats& ks) { max_atomic = ks.max_atomic_same_addr; });
  ws.generate(dev, WorksetRepr::queue, updated);
  EXPECT_EQ(max_atomic, 512u);
  ws.release(dev);
}

TEST_F(WorksetTest, BitmapGenerationHasNoAtomics) {
  Workset ws(dev, 4096);
  std::vector<std::uint32_t> updated(512);
  std::iota(updated.begin(), updated.end(), 0u);
  for (const auto id : updated) ws.update().host_view()[id] = 1;

  double atomics = -1;
  dev.set_kernel_observer(
      [&](const simt::KernelStats& ks) { atomics = ks.atomics; });
  ws.generate(dev, WorksetRepr::bitmap, updated);
  EXPECT_EQ(atomics, 0.0);
  ws.release(dev);
}

TEST_F(WorksetTest, LargerUpdateSetCostsMoreQueueTime) {
  Workset ws(dev, 1u << 16);
  auto run = [&](std::uint32_t count) {
    std::vector<std::uint32_t> updated(count);
    std::iota(updated.begin(), updated.end(), 0u);
    for (const auto id : updated) ws.update().host_view()[id] = 1;
    const double t0 = dev.now_us();
    ws.generate(dev, WorksetRepr::queue, updated);
    return dev.now_us() - t0;
  };
  EXPECT_LT(run(100), run(20000));
  ws.release(dev);
}

TEST_F(WorksetTest, ChargesAreAccountedOnDeviceClock) {
  Workset ws(dev, 1000);
  const double t0 = dev.now_us();
  ws.charge_queue_len_readback(dev);
  const double t1 = dev.now_us();
  ws.charge_changed_flag_readback(dev);
  const double t2 = dev.now_us();
  ws.charge_bitmap_count_kernel(dev);
  const double t3 = dev.now_us();
  EXPECT_GT(t1, t0);
  EXPECT_GT(t2, t1);
  // The monitoring kernel costs more than a scalar readback (Sec. VI.E:
  // "This overhead is much greater than that of the decision maker").
  EXPECT_GT(t3 - t2, t1 - t0);
  ws.release(dev);
}

TEST_F(WorksetTest, EmptyGenerateIsValid) {
  Workset ws(dev, 64);
  const auto size = ws.generate(dev, WorksetRepr::queue, {});
  EXPECT_EQ(size, 0u);
  EXPECT_EQ(ws.queue_len().host_view()[0], 0u);
  ws.release(dev);
}

}  // namespace
