// Trace artifacts extend the parallel determinism contract (see
// parallel_determinism_test.cpp): the Chrome trace document and the decision
// JSONL produced by a run must be byte-identical for any SIMT thread count,
// because every event carries modeled time and a launch-order sequence
// number, never wall-clock or worker identity.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "graph/gen/generators.h"
#include "runtime/adaptive_engine.h"
#include "simt/device.h"
#include "simt/exec_pool.h"
#include "trace/chrome_trace.h"
#include "trace/counters.h"
#include "trace/jsonl_trace.h"
#include "trace/trace_sink.h"

namespace {

struct Artifacts {
  std::string chrome;
  std::string jsonl;
  double metrics_total_us = 0;
};

Artifacts run_traced_adaptive_bfs(int threads, const graph::Csr& g) {
  simt::ExecPool::set_threads(threads);
  auto& tracer = trace::Tracer::instance();
  auto* chrome = static_cast<trace::ChromeTraceSink*>(
      tracer.attach(std::make_unique<trace::ChromeTraceSink>("", 14)));
  auto* jsonl = static_cast<trace::JsonlDecisionSink*>(
      tracer.attach(std::make_unique<trace::JsonlDecisionSink>()));

  simt::Device dev;
  rt::AdaptiveOptions opts;
  opts.monitor_interval = 1;
  const auto r = rt::adaptive_bfs(dev, g, 0, opts);

  Artifacts a;
  a.chrome = chrome->json();
  a.jsonl = jsonl->data();
  a.metrics_total_us = r.metrics.total_us;
  tracer.clear();  // destroys the sinks and resets the sequence counter
  simt::ExecPool::set_threads(1);
  return a;
}

TEST(TraceDeterminism, ArtifactsAreByteIdenticalAcrossThreadCounts) {
  const graph::Csr g = graph::gen::rmat({.scale = 13, .seed = 11});
  const Artifacts serial = run_traced_adaptive_bfs(1, g);
  const Artifacts pooled = run_traced_adaptive_bfs(8, g);

  EXPECT_FALSE(serial.chrome.empty());
  EXPECT_FALSE(serial.jsonl.empty());
  EXPECT_EQ(serial.metrics_total_us, pooled.metrics_total_us);
  // Byte-for-byte: same events, same order, same timestamps, same sequence
  // numbers (Tracer::clear() between runs resets the counter).
  EXPECT_EQ(serial.chrome, pooled.chrome);
  EXPECT_EQ(serial.jsonl, pooled.jsonl);
}

TEST(TraceDeterminism, CountersAreThreadInvariant) {
  const graph::Csr g = graph::gen::erdos_renyi(4000, 40000, 9);
  auto& reg = trace::CounterRegistry::instance();

  auto run = [&](int threads) {
    simt::ExecPool::set_threads(threads);
    reg.set_enabled(true);
    reg.reset();
    simt::Device dev;
    (void)rt::adaptive_bfs(dev, g, 0);
    const std::string snapshot = reg.to_json();
    reg.set_enabled(false);
    reg.reset();
    simt::ExecPool::set_threads(1);
    return snapshot;
  };

  const std::string serial = run(1);
  const std::string pooled = run(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, pooled);
}

}  // namespace
