// Resource discipline: every engine must release all device allocations
// (simulated-GPU memory is accounted, so leaks are observable), and the
// metrics/summary surfaces must stay consistent across algorithms.
#include <gtest/gtest.h>

#include "gpu_graph/bfs_engine.h"
#include "gpu_graph/cc_engine.h"
#include "gpu_graph/edge_parallel.h"
#include "gpu_graph/mst_engine.h"
#include "gpu_graph/pagerank_engine.h"
#include "gpu_graph/sssp_engine.h"
#include "graph/gen/generators.h"
#include "graph/transform.h"
#include "runtime/adaptive_engine.h"

namespace {

graph::Csr weighted_graph() {
  auto g = graph::gen::erdos_renyi(1000, 5000, 99);
  graph::assign_uniform_weights(g, 1, 50, 1);
  return g;
}

TEST(DeviceMemory, BfsReleasesEverything) {
  const auto g = weighted_graph();
  simt::Device dev;
  const auto before = dev.mem_in_use();
  for (const auto v : gg::all_variants()) {
    gg::run_bfs(dev, g, 0, v);
    EXPECT_EQ(dev.mem_in_use(), before) << gg::variant_name(v);
  }
}

TEST(DeviceMemory, SsspReleasesEverything) {
  const auto g = weighted_graph();
  simt::Device dev;
  const auto before = dev.mem_in_use();
  for (const auto v : gg::all_variants()) {
    gg::run_sssp(dev, g, 0, v);
    EXPECT_EQ(dev.mem_in_use(), before) << gg::variant_name(v);
  }
}

TEST(DeviceMemory, ExtensionEnginesReleaseEverything) {
  auto g = graph::symmetrize(weighted_graph());
  graph::assign_symmetric_uniform_weights(g, 1, 50, 2);
  simt::Device dev;
  const auto before = dev.mem_in_use();
  gg::run_cc(dev, g, gg::parse_variant("U_T_QU"));
  EXPECT_EQ(dev.mem_in_use(), before);
  gg::run_pagerank(dev, g, gg::parse_variant("U_T_QU"));
  EXPECT_EQ(dev.mem_in_use(), before);
  gg::run_mst(dev, g, gg::parse_variant("U_T_QU"));
  EXPECT_EQ(dev.mem_in_use(), before);
  gg::run_sssp_edge_parallel(dev, g, 0);
  EXPECT_EQ(dev.mem_in_use(), before);
}

TEST(DeviceMemory, AllocationsAreBoundedDuringRun) {
  // The working set + per-node state of BFS is a handful of n-sized arrays;
  // peak device memory must stay well under 20 bytes per node + CSR.
  const auto g = weighted_graph();
  simt::Device dev;
  std::uint64_t peak = 0;
  dev.set_kernel_observer(
      [&](const simt::KernelStats&) { peak = std::max(peak, dev.mem_in_use()); });
  gg::run_bfs(dev, g, 0, gg::parse_variant("U_B_QU"));
  const std::uint64_t csr_bytes = (g.num_nodes + 1 + g.num_edges()) * 4;
  EXPECT_LT(peak, csr_bytes + 32ull * g.num_nodes + (1u << 16));
}

TEST(DeviceMemory, OutOfMemoryThrowsTypedFault) {
  simt::DeviceProps tiny = simt::DeviceProps::test_tiny();
  tiny.global_mem_bytes = 1 << 16;
  simt::Device dev(tiny);
  try {
    (void)dev.alloc<std::uint32_t>(1 << 20, "too-big");
    FAIL() << "allocation over capacity must throw";
  } catch (const simt::DeviceFault& f) {
    EXPECT_EQ(f.kind(), simt::FaultKind::alloc);
    EXPECT_FALSE(f.permanent());
    EXPECT_NE(std::string(f.what()).find("too-big"), std::string::npos);
  }
  // Exhaustion is not a device death: the device stays usable.
  EXPECT_TRUE(dev.healthy());
  EXPECT_NO_THROW((void)dev.alloc<std::uint32_t>(16, "small"));
}

TEST(Metrics, SummaryMentionsKeyQuantities) {
  const auto g = weighted_graph();
  simt::Device dev;
  const auto r = rt::adaptive_bfs(dev, g, 0);
  const auto s = r.metrics.summary();
  EXPECT_NE(s.find("iterations"), std::string::npos);
  EXPECT_NE(s.find("ms"), std::string::npos);
  EXPECT_NE(s.find("edge visits"), std::string::npos);
}

TEST(Metrics, MaxWsSizeMatchesIterations) {
  const auto g = weighted_graph();
  simt::Device dev;
  const auto r = gg::run_bfs(dev, g, 0, gg::parse_variant("U_T_QU"));
  std::uint64_t expected = 0;
  for (const auto& it : r.metrics.iterations) {
    expected = std::max(expected, it.ws_size);
  }
  EXPECT_EQ(r.metrics.max_ws_size(), expected);
  EXPECT_GT(expected, 0u);
}

TEST(Device, SequentialAlgorithmsShareOneTimeline) {
  auto g = graph::symmetrize(weighted_graph());
  graph::assign_symmetric_uniform_weights(g, 1, 50, 3);
  simt::Device dev;
  const double t0 = dev.now_us();
  gg::run_bfs(dev, g, 0, gg::parse_variant("U_T_QU"));
  const double t1 = dev.now_us();
  gg::run_cc(dev, g, gg::parse_variant("U_B_QU"));
  const double t2 = dev.now_us();
  EXPECT_GT(t1, t0);
  EXPECT_GT(t2, t1);
  EXPECT_GT(dev.stats().kernels_launched, 10u);
}

}  // namespace
