// Result cache & request collapsing: LRU replacement policy, capacity
// accounting, version/generation invalidation, singleflight collapse
// correctness, cache-vs-uncached payload identity across host worker
// counts, and fault interaction (no partial-result poisoning) — DESIGN.md
// "Result cache & request collapsing".
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/gen/generators.h"
#include "service/graph_service.h"
#include "service/result_cache.h"
#include "simt/exec_pool.h"
#include "simt/fault.h"

namespace {

adaptive::Graph make_graph(std::uint32_t n = 1500, std::uint32_t m = 4500,
                           std::uint64_t seed = 7) {
  return adaptive::Graph::from_csr(graph::gen::erdos_renyi(n, m, seed));
}

svc::QueryRequest bfs_req(svc::GraphId gid, graph::NodeId source) {
  svc::QueryRequest req;
  req.algo = svc::Algo::bfs;
  req.graph = gid;
  req.source = source;
  return req;
}

svc::CacheKey key(std::uint64_t graph, std::uint32_t source) {
  svc::CacheKey k;
  k.graph_key = graph;
  k.version = 1;
  k.algo = 0;
  k.source = source;
  return k;
}

// ---- the LRU itself ---------------------------------------------------------

TEST(ResultCache, EvictsLeastRecentlyUsedFirst) {
  svc::ResultCache<int> cache(30);
  cache.insert(key(1, 0), 10, 10);
  cache.insert(key(1, 1), 11, 10);
  cache.insert(key(1, 2), 12, 10);
  // Touch key 0: key 1 becomes the LRU victim.
  ASSERT_NE(cache.lookup(key(1, 0)), nullptr);
  cache.insert(key(1, 3), 13, 10);  // evicts exactly one entry
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.lookup(key(1, 1)), nullptr);  // the untouched one went
  EXPECT_NE(cache.lookup(key(1, 0)), nullptr);
  EXPECT_NE(cache.lookup(key(1, 2)), nullptr);
  EXPECT_NE(cache.lookup(key(1, 3)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, KeysLruFirstReportsEvictionOrder) {
  svc::ResultCache<int> cache(100);
  cache.insert(key(1, 0), 0, 10);
  cache.insert(key(1, 1), 1, 10);
  cache.insert(key(1, 2), 2, 10);
  cache.lookup(key(1, 0));  // promote 0 to MRU
  const auto order = cache.keys_lru_first();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].source, 1u);  // next victim
  EXPECT_EQ(order[1].source, 2u);
  EXPECT_EQ(order[2].source, 0u);  // most recently used
}

TEST(ResultCache, AccountsBytesAndEvictsUntilFit) {
  svc::ResultCache<int> cache(100);
  cache.insert(key(1, 0), 0, 40);
  cache.insert(key(1, 1), 1, 40);
  EXPECT_EQ(cache.bytes_in_use(), 80u);
  // 50 bytes does not fit next to 80: evicting the LRU entry (40 freed)
  // brings usage to 40 + 50 = 90, within budget — exactly one victim.
  const auto evicted = cache.insert(key(1, 2), 2, 50);
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(cache.bytes_in_use(), 90u);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.lookup(key(1, 0)), nullptr);  // the LRU entry was the victim
}

TEST(ResultCache, RejectsValuesLargerThanTheBudget) {
  svc::ResultCache<int> cache(100);
  cache.insert(key(1, 0), 0, 101);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.stats().rejected, 1u);
}

TEST(ResultCache, DuplicateKeyKeepsTheExistingEntry) {
  svc::ResultCache<int> cache(100);
  cache.insert(key(1, 0), 7, 10);
  cache.insert(key(1, 0), 8, 10);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.lookup(key(1, 0))->value, 7);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(ResultCache, InvalidateGraphDropsOnlyThatGraph) {
  svc::ResultCache<int> cache(100);
  cache.insert(key(1, 0), 0, 10);
  cache.insert(key(2, 0), 1, 10);
  cache.insert(key(1, 1), 2, 10);
  EXPECT_EQ(cache.invalidate_graph(1), 2u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes_in_use(), 10u);
  EXPECT_NE(cache.lookup(key(2, 0)), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(ResultCache, ShrinkingCapacityEvictsImmediately) {
  svc::ResultCache<int> cache(100);
  cache.insert(key(1, 0), 0, 40);
  cache.insert(key(1, 1), 1, 40);
  cache.set_capacity(50);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_NE(cache.lookup(key(1, 1)), nullptr);  // MRU survived
  cache.set_capacity(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(ResultCache, PolicySignatureIgnoresTheDispatchStream) {
  adaptive::Policy a, b;
  a.options.engine.stream = 1;
  b.options.engine.stream = 3;
  EXPECT_EQ(svc::policy_signature(a), svc::policy_signature(b));
  b.mode = adaptive::Policy::Mode::fixed_variant;
  EXPECT_NE(svc::policy_signature(a), svc::policy_signature(b));
}

TEST(ResultCache, PolicySignatureSeparatesTraversalDirections) {
  // Push, pull and direction-optimizing answers agree bit-for-bit but their
  // metrics and modeled costs differ: they must never alias in the cache.
  const adaptive::Policy fixed =
      adaptive::Policy::fixed(gg::parse_variant("U_T_BM"));
  EXPECT_NE(svc::policy_signature(fixed),
            svc::policy_signature(fixed.with_direction(gg::Direction::pull)));

  const adaptive::Policy adapt = adaptive::Policy::adapt();
  const adaptive::Policy dopt =
      adapt.with_direction(gg::Direction::adaptive);
  EXPECT_NE(svc::policy_signature(adapt), svc::policy_signature(dopt));

  // The Beamer knobs shape the adaptive trajectory, so they key the entry.
  adaptive::Policy tuned = dopt;
  tuned.options.thresholds.do_alpha = 0.9;
  EXPECT_NE(svc::policy_signature(dopt), svc::policy_signature(tuned));
  tuned = dopt;
  tuned.options.thresholds.do_beta = 0.25;
  EXPECT_NE(svc::policy_signature(dopt), svc::policy_signature(tuned));
}

// ---- service integration ----------------------------------------------------

TEST(ServiceCache, RepeatQueryIsServedFromTheCache) {
  svc::GraphService service;
  const auto gid = service.add_graph(make_graph());
  service.submit(bfs_req(gid, 5));
  const auto first = service.drain();
  ASSERT_EQ(first.size(), 1u);
  ASSERT_TRUE(first[0].ok());
  EXPECT_FALSE(first[0].cached);

  service.submit(bfs_req(gid, 5));
  const auto second = service.drain();
  ASSERT_EQ(second.size(), 1u);
  ASSERT_TRUE(second[0].ok());
  EXPECT_TRUE(second[0].cached);
  EXPECT_EQ(second[0].stream, 0u);  // never dispatched to a device stream
  EXPECT_EQ(second[0].bfs().level, first[0].bfs().level);
  EXPECT_EQ(service.result_cache().stats().hits, 1u);
}

TEST(ServiceCache, CacheHitCostsModeledHostTimeOnly) {
  svc::GraphService service;
  const auto gid = service.add_graph(make_graph());
  service.submit(bfs_req(gid, 5));
  service.drain();
  const double device_before = service.device().makespan_us();
  service.submit(bfs_req(gid, 5));
  service.drain();
  // The device did nothing for the hit; the service makespan still moved
  // because the modeled host copied the payload.
  EXPECT_EQ(service.device().makespan_us(), device_before);
  EXPECT_GT(service.makespan_us(), 0.0);
}

TEST(ServiceCache, UpdateGraphInvalidatesCachedResults) {
  svc::GraphService service;
  const auto gid = service.add_graph(make_graph());
  service.submit(bfs_req(gid, 5));
  service.drain();
  ASSERT_GE(service.result_cache().entries(), 1u);

  service.update_graph(gid, make_graph(1500, 4500, 99));  // different edges
  EXPECT_EQ(service.result_cache().entries(), 0u);

  service.submit(bfs_req(gid, 5));
  const auto after = service.drain();
  ASSERT_TRUE(after[0].ok());
  EXPECT_FALSE(after[0].cached);  // fresh execution on the new graph
}

TEST(ServiceCache, CollapseFollowersMatchTheLeader) {
  svc::ServiceOptions opts;
  opts.batch_bfs = false;  // exercise the singleflight path, not the batcher
  svc::GraphService service(opts);
  const auto gid = service.add_graph(make_graph());
  service.submit(bfs_req(gid, 9));
  service.submit(bfs_req(gid, 9));
  service.submit(bfs_req(gid, 9));
  const auto outs = service.drain();
  ASSERT_EQ(outs.size(), 3u);
  std::size_t collapsed = 0;
  for (const auto& out : outs) {
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.bfs().level, outs[0].bfs().level);
    if (out.collapsed) {
      ++collapsed;
      EXPECT_EQ(out.collapsed_into, outs[0].id);
      EXPECT_GE(out.finish_us, outs[0].finish_us);  // cannot precede leader
    }
  }
  EXPECT_EQ(collapsed, 2u);
}

TEST(ServiceCache, BatcherCollapsesDuplicateSources) {
  svc::GraphService service;
  const auto gid = service.add_graph(make_graph());
  service.submit(bfs_req(gid, 4));
  service.submit(bfs_req(gid, 4));
  service.submit(bfs_req(gid, 8));
  const auto outs = service.drain();
  ASSERT_EQ(outs.size(), 3u);
  for (const auto& out : outs) {
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.batch_size, 2u);  // two distinct sources fused
  }
  EXPECT_EQ(outs[0].bfs().level, outs[1].bfs().level);
  EXPECT_TRUE(outs[1].collapsed);
  EXPECT_EQ(outs[1].collapsed_into, outs[0].id);
}

// The cached configuration must return byte-identical payloads to the
// uncached one, at every host worker count.
TEST(ServiceCache, CachedAndUncachedAgreeAcrossWorkerCounts) {
  auto run = [](std::size_t cache_bytes, bool collapse) {
    svc::ServiceOptions opts;
    opts.cache_bytes = cache_bytes;
    opts.collapse = collapse;
    svc::GraphService service(opts);
    const auto gid = service.add_graph(make_graph());
    const graph::NodeId sources[] = {3, 3, 17, 3, 17, 42, 3};
    for (const auto s : sources) service.submit(bfs_req(gid, s));
    std::vector<std::vector<std::uint32_t>> levels;
    for (const auto& out : service.drain()) {
      levels.push_back(out.bfs().level);
    }
    return levels;
  };
  const auto expected = run(0, false);
  for (const int threads : {1, 4}) {
    simt::ExecPool::set_threads(threads);
    EXPECT_EQ(run(64 << 20, true), expected) << "threads=" << threads;
    EXPECT_EQ(run(0, false), expected) << "threads=" << threads;
  }
  simt::ExecPool::set_threads(0);
}

// ---- fault interaction ------------------------------------------------------

TEST(ServiceCache, FaultedAttemptsNeverPopulateTheCache) {
  svc::ServiceOptions opts;
  opts.batch_bfs = false;
  opts.resilience.max_retries = 1;
  opts.resilience.degrade_to_cpu = false;  // exhausted queries report faults
  svc::GraphService service(opts);
  const auto gid = service.add_graph(make_graph());
  service.set_fault_plan(simt::FaultPlan::parse("seed=3, kernel.p=1.0"));
  service.submit(bfs_req(gid, 5));
  const auto outs = service.drain();
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].status, adaptive::Status::error);
  EXPECT_EQ(service.result_cache().entries(), 0u);  // nothing poisoned
}

TEST(ServiceCache, DegradedResultsAreExactAndCacheable) {
  svc::ServiceOptions opts;
  opts.batch_bfs = false;
  opts.resilience.max_retries = 0;
  svc::GraphService service(opts);
  const auto gid = service.add_graph(make_graph());
  service.set_fault_plan(simt::FaultPlan::parse("seed=3, kernel.p=1.0"));
  service.submit(bfs_req(gid, 5));
  const auto first = service.drain();
  ASSERT_TRUE(first[0].ok());
  EXPECT_TRUE(first[0].degraded);
  EXPECT_EQ(service.result_cache().entries(), 1u);

  service.submit(bfs_req(gid, 5));
  const auto second = service.drain();
  ASSERT_TRUE(second[0].ok());
  EXPECT_TRUE(second[0].cached);
  // The cached copy is an exact answer; the outcome is a cache serve, not a
  // degradation, even though the payload was first computed by the oracle.
  EXPECT_FALSE(second[0].degraded);
  EXPECT_EQ(second[0].bfs().level, first[0].bfs().level);
}

}  // namespace
