#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simt/device.h"
#include "simt/launch.h"
#include "simt/primitives.h"

namespace {

using simt::Device;
using simt::DeviceProps;
using simt::GridSpec;
using simt::Site;
using simt::ThreadCtx;

constexpr Site kLoad{0, "load"};
constexpr Site kStore{1, "store"};
constexpr Site kOps{2, "ops"};
constexpr Site kAtomic{3, "atomic"};

TEST(AddressSpace, AlignsAndTracks) {
  simt::AddressSpace space(1 << 20);
  const auto a = space.allocate(10);
  const auto b = space.allocate(10);
  EXPECT_NE(a, 0u);
  EXPECT_EQ(a % 256, 0u);
  EXPECT_EQ(b % 256, 0u);
  EXPECT_GE(b, a + 256);
  EXPECT_EQ(space.bytes_in_use(), 512u);
  space.release(10);
  EXPECT_EQ(space.bytes_in_use(), 256u);
}

TEST(DeviceBuffer, AddressesAreContiguous) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(100, "buf");
  EXPECT_EQ(buf.addr_of(1), buf.addr_of(0) + 4);
  EXPECT_EQ(buf.size(), 100u);
}

TEST(Device, TransfersRoundTripAndAdvanceClock) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(16, "buf");
  std::vector<std::uint32_t> in(16);
  std::iota(in.begin(), in.end(), 0);
  const double t0 = dev.now_us();
  dev.memcpy_h2d(buf, std::span<const std::uint32_t>(in));
  EXPECT_GT(dev.now_us(), t0);
  std::vector<std::uint32_t> out(16);
  dev.memcpy_d2h(std::span<std::uint32_t>(out), buf);
  EXPECT_EQ(in, out);
  EXPECT_EQ(dev.stats().transfers, 2u);
}

TEST(Device, FillSetsValuesAndCharges) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(1000, "buf");
  dev.fill(buf, 7u);
  for (const auto v : buf.host_view()) EXPECT_EQ(v, 7u);
  EXPECT_EQ(dev.stats().kernels_launched, 1u);
}

// ---- warp trace: coalescing -------------------------------------------------

// Runs one full warp whose lane i touches `addr_of(i * stride_elems)` and
// returns the kernel stats.
simt::KernelStats one_warp_stride(Device& dev, std::uint32_t stride_elems) {
  auto buf = dev.alloc<std::uint32_t>(32 * stride_elems + 32, "buf");
  return simt::launch(dev, "stride", GridSpec::dense(32, 32), [&](ThreadCtx& ctx) {
    (void)ctx.load(buf, ctx.global_id() * stride_elems, kLoad);
  });
}

TEST(Coalescing, ContiguousWarpIsOneTransaction) {
  Device dev;
  const auto ks = one_warp_stride(dev, 1);  // 32 x 4B consecutive = 128B
  EXPECT_DOUBLE_EQ(ks.transactions, 1.0);
}

TEST(Coalescing, Stride2UsesTwoSegments) {
  Device dev;
  const auto ks = one_warp_stride(dev, 2);
  EXPECT_DOUBLE_EQ(ks.transactions, 2.0);
}

TEST(Coalescing, Stride32IsFullyScattered) {
  Device dev;
  const auto ks = one_warp_stride(dev, 32);  // each lane a different 128B segment
  EXPECT_DOUBLE_EQ(ks.transactions, 32.0);
}

TEST(Coalescing, BroadcastIsOneTransaction) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(4, "buf");
  const auto ks =
      simt::launch(dev, "bcast", GridSpec::dense(32, 32), [&](ThreadCtx& ctx) {
        (void)ctx.load(buf, 0, kLoad);
      });
  EXPECT_DOUBLE_EQ(ks.transactions, 1.0);
}

// ---- warp trace: divergence -------------------------------------------------

TEST(Divergence, LoopTripImbalanceCostsMaxLane) {
  Device dev;
  // Lane i performs i ops: lockstep cost = 31 (max), lane work = sum = 496.
  const auto ks =
      simt::launch(dev, "div", GridSpec::dense(32, 32), [&](ThreadCtx& ctx) {
        const auto ops = static_cast<std::uint64_t>(ctx.global_id());
        if (ops > 0) ctx.compute(ops, kOps);
      });
  EXPECT_DOUBLE_EQ(ks.lane_work, 496.0);
  EXPECT_DOUBLE_EQ(ks.lockstep_work, 32.0 * 31.0);
  EXPECT_NEAR(ks.simd_efficiency(), 496.0 / (32.0 * 31.0), 1e-12);
}

TEST(Divergence, UniformWorkIsFullyEfficient) {
  Device dev;
  const auto ks =
      simt::launch(dev, "uni", GridSpec::dense(64, 32), [&](ThreadCtx& ctx) {
        ctx.compute(10, kOps);
        (void)ctx;
      });
  EXPECT_DOUBLE_EQ(ks.simd_efficiency(), 1.0);
}

// ---- atomics ----------------------------------------------------------------

TEST(Atomics, SameAddressSerializationTracked) {
  Device dev;
  auto counter = dev.alloc<std::uint32_t>(1, "counter");
  dev.fill(counter, 0u);
  const auto ks =
      simt::launch(dev, "atomics", GridSpec::dense(256, 64), [&](ThreadCtx& ctx) {
        ctx.atomic_add(counter, 0, 1u, kAtomic);
      });
  EXPECT_EQ(counter.host_view()[0], 256u);
  EXPECT_EQ(ks.max_atomic_same_addr, 256u);
  EXPECT_DOUBLE_EQ(ks.atomics, 256.0);
}

TEST(Atomics, DistinctAddressesDoNotSerialize) {
  Device dev;
  auto cells = dev.alloc<std::uint32_t>(256, "cells");
  dev.fill(cells, 0u);
  const auto ks =
      simt::launch(dev, "atomics", GridSpec::dense(256, 64), [&](ThreadCtx& ctx) {
        ctx.atomic_add(cells, ctx.global_id(), 1u, kAtomic);
      });
  EXPECT_EQ(ks.max_atomic_same_addr, 1u);
}

TEST(Atomics, AtomicMinFunctional) {
  Device dev;
  auto cell = dev.alloc<std::uint32_t>(1, "cell");
  dev.fill(cell, 1000u);
  simt::launch(dev, "amin", GridSpec::dense(64, 64), [&](ThreadCtx& ctx) {
    ctx.atomic_min(cell, 0, 500u + static_cast<std::uint32_t>(ctx.global_id()), kAtomic);
  });
  EXPECT_EQ(cell.host_view()[0], 500u);
}

// ---- wave accumulator / scheduling -----------------------------------------

simt::TimingModel no_dispatch_tm() {
  simt::TimingModel tm;
  tm.block_dispatch_cycles = 0;
  return tm;
}

TEST(WaveAccumulator, SingleBlockLatencyBound) {
  simt::WaveAccumulator waves(DeviceProps::test_tiny(), no_dispatch_tm(), 64);
  waves.add_block(0, /*issue=*/10.0, /*crit=*/500.0);
  EXPECT_DOUBLE_EQ(waves.finish_cycles(), 500.0);
}

TEST(WaveAccumulator, ThroughputBoundWhenIssueDominates) {
  simt::WaveAccumulator waves(DeviceProps::test_tiny(), no_dispatch_tm(), 64);
  // tiny device: 2 SMs, 2 resident blocks. 4 blocks = 1 wave per SM.
  for (std::uint64_t b = 0; b < 4; ++b) waves.add_block(b, 1000.0, 100.0);
  EXPECT_DOUBLE_EQ(waves.finish_cycles(), 2000.0);  // 2 blocks/SM x 1000
}

TEST(WaveAccumulator, UniformMatchesExplicit) {
  const auto& props = DeviceProps::test_tiny();
  const auto tm = simt::TimingModel::fermi_default();
  simt::WaveAccumulator a(props, tm, 64);
  simt::WaveAccumulator b(props, tm, 64);
  constexpr std::uint64_t kBlocks = 1037;
  for (std::uint64_t i = 0; i < kBlocks; ++i) a.add_block(i, 37.0, 210.0);
  b.add_uniform_blocks(kBlocks, 37.0, 210.0);
  EXPECT_NEAR(a.finish_cycles(), b.finish_cycles(), 1e-9);
}

TEST(WaveAccumulator, MixedActiveAndUniformRuns) {
  const auto& props = DeviceProps::fermi_c2070();
  const auto tm = simt::TimingModel::fermi_default();
  simt::WaveAccumulator a(props, tm, 256);
  simt::WaveAccumulator b(props, tm, 256);
  constexpr std::uint64_t kBlocks = 5000;
  for (std::uint64_t i = 0; i < kBlocks; ++i) {
    const bool active = i % 97 == 3;
    a.add_block(i, active ? 900.0 : 12.0, active ? 2500.0 : 420.0);
  }
  // Same stream expressed as uniform runs + explicit active blocks.
  std::uint64_t next = 0;
  for (std::uint64_t i = 0; i < kBlocks; ++i) {
    if (i % 97 == 3) {
      if (i > next) b.add_uniform_blocks(i - next, 12.0, 420.0);
      b.add_block(i, 900.0, 2500.0);
      next = i + 1;
    }
  }
  if (next < kBlocks) b.add_uniform_blocks(kBlocks - next, 12.0, 420.0);
  EXPECT_NEAR(a.finish_cycles(), b.finish_cycles(), 1e-6);
}

// ---- sparse launches ---------------------------------------------------------

TEST(SparseThreads, OnlyActiveRunBody) {
  Device dev;
  auto out = dev.alloc<std::uint32_t>(10000, "out");
  dev.fill(out, 0u);
  auto flags = dev.alloc<std::uint8_t>(10000, "flags");
  dev.fill(flags, std::uint8_t{0});
  const std::vector<std::uint32_t> active{3, 777, 5123, 9999};
  simt::Predicate pred;
  pred.base_addr = flags.base_addr();
  pred.stride = 1;
  const auto grid = GridSpec::over_threads(10000, 256, active, pred);
  const auto ks = simt::launch(dev, "sparse", grid, [&](ThreadCtx& ctx) {
    ctx.store(out, ctx.global_id(), 1u, kStore);
  });
  std::uint64_t set = 0;
  for (const auto v : out.host_view()) set += v;
  EXPECT_EQ(set, active.size());
  for (const auto id : active) EXPECT_EQ(out.host_view()[id], 1u);
  // Grid has 40 blocks; actives fall in blocks {0, 3, 20, 39}, one warp each.
  // The 36 inactive blocks contribute 8 predicate warps apiece, the active
  // blocks 7 each — except block 39, whose 16-thread tail holds one warp.
  EXPECT_EQ(ks.warps_executed, 4u);
  EXPECT_EQ(ks.warps_uniform, 36u * 8u + 3u * 7u);
}

TEST(SparseThreads, CheaperThanDenseEquivalentWork) {
  Device dev;
  auto flags = dev.alloc<std::uint8_t>(100000, "flags");
  const std::vector<std::uint32_t> active{50};
  simt::Predicate pred;
  pred.base_addr = flags.base_addr();
  pred.stride = 1;
  const auto sparse = simt::launch(
      dev, "s", GridSpec::over_threads(100000, 256, active, pred),
      [&](ThreadCtx& ctx) { ctx.compute(100, kOps); });
  const auto dense = simt::launch(
      dev, "d", GridSpec::dense(100000, 256),
      [&](ThreadCtx& ctx) { ctx.compute(100, kOps); });
  EXPECT_LT(sparse.time_us, dense.time_us);
}

TEST(SparseBlocks, AllLanesOfActiveBlocksRun) {
  Device dev;
  auto out = dev.alloc<std::uint32_t>(1, "out");
  dev.fill(out, 0u);
  auto flags = dev.alloc<std::uint8_t>(100, "flags");
  const std::vector<std::uint32_t> active{7, 42};
  simt::Predicate pred;
  pred.base_addr = flags.base_addr();
  pred.stride = 1;
  const auto grid = GridSpec::over_blocks(100, 64, active, pred);
  simt::launch(dev, "sb", grid, [&](ThreadCtx& ctx) {
    ctx.atomic_add(out, 0, 1u, kAtomic);
  });
  EXPECT_EQ(out.host_view()[0], 2u * 64u);
}

// ---- phased kernels & shared memory ------------------------------------------

TEST(Phased, SharedMemoryPersistsAcrossPhases) {
  Device dev;
  auto out = dev.alloc<std::uint32_t>(4, "out");
  dev.fill(out, 0u);
  simt::launch_phased(dev, "ph", /*threads=*/4 * 32, /*tpb=*/32, /*phases=*/2,
                      [&](int phase, ThreadCtx& ctx) {
                        auto sh = ctx.shared_alloc<std::uint32_t>(0, 32);
                        const auto tid = ctx.thread_in_block();
                        if (phase == 0) {
                          ctx.shared_store(sh, tid, tid + 1, kStore);
                        } else if (tid == 0) {
                          std::uint32_t sum = 0;
                          for (std::uint32_t i = 0; i < 32; ++i) {
                            sum += ctx.shared_load(sh, i, kLoad);
                          }
                          ctx.store(out, ctx.block_idx(), sum, kStore);
                        }
                      });
  for (const auto v : out.host_view()) EXPECT_EQ(v, 32u * 33u / 2u);
}

TEST(SharedMemory, BankConflictsIncreaseIssue) {
  Device dev;
  auto run = [&](std::uint32_t stride) {
    return simt::launch_phased(dev, "bank", 32, 32, 1,
                               [&](int, ThreadCtx& ctx) {
                                 auto sh = ctx.shared_alloc<std::uint32_t>(0, 32 * 32);
                                 ctx.shared_store(sh, ctx.thread_in_block() * stride,
                                                  1u, kStore);
                               });
  };
  const auto conflict_free = run(1);
  const auto conflicted = run(32);  // all lanes hit bank 0
  EXPECT_GT(conflicted.issue_cycles, conflict_free.issue_cycles);
}

// ---- primitives ---------------------------------------------------------------

TEST(ReduceMin, FindsMinimum) {
  Device dev;
  constexpr std::size_t kN = 5000;
  auto buf = dev.alloc<std::uint32_t>(kN, "vals");
  auto view = buf.host_view();
  for (std::size_t i = 0; i < kN; ++i) {
    view[i] = 1000 + static_cast<std::uint32_t>((i * 2654435761u) % 100000);
  }
  view[3777] = 5;
  EXPECT_EQ(simt::prim::reduce_min(dev, buf, kN), 5u);
}

TEST(ReduceMin, SingleElement) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(1, "vals");
  buf.host_view()[0] = 42;
  EXPECT_EQ(simt::prim::reduce_min(dev, buf, 1), 42u);
}

TEST(ReduceMin, AnalyticChargeTracksExecutedCost) {
  for (const std::size_t n : {1000ul, 30000ul, 200000ul}) {
    Device executed;
    auto buf = executed.alloc<std::uint32_t>(n, "vals");
    executed.fill(buf, 77u);
    const double before = executed.now_us();
    simt::prim::reduce_min(executed, buf, n);
    const double exec_time = executed.now_us() - before;

    Device analytic;
    simt::prim::charge_reduce_min(analytic, n);
    const double model_time = analytic.now_us();
    EXPECT_NEAR(model_time, exec_time, 0.5 * exec_time)
        << "n=" << n << " exec=" << exec_time << " model=" << model_time;
  }
}

TEST(ExclusiveScan, MatchesReferenceAcrossSizes) {
  for (const std::size_t n : {1ul, 7ul, 255ul, 256ul, 257ul, 1000ul, 70000ul}) {
    Device dev;
    auto in = dev.alloc<std::uint32_t>(n, "in");
    auto out = dev.alloc<std::uint32_t>(n, "out");
    auto view = in.host_view();
    for (std::size_t i = 0; i < n; ++i) {
      view[i] = static_cast<std::uint32_t>((i * 2654435761u) % 7);
    }
    simt::prim::exclusive_scan(dev, in, out, n);
    std::uint32_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out.host_view()[i], expected) << "n=" << n << " i=" << i;
      expected += view[i];
    }
  }
}

TEST(ExclusiveScan, AllOnesGivesIota) {
  Device dev;
  constexpr std::size_t kN = 600;
  auto in = dev.alloc<std::uint32_t>(kN, "in");
  auto out = dev.alloc<std::uint32_t>(kN, "out");
  dev.fill(in, 1u);
  simt::prim::exclusive_scan(dev, in, out, kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out.host_view()[i], static_cast<std::uint32_t>(i));
  }
}

TEST(ExclusiveScan, ChargeScanApproximatesExecutedCost) {
  constexpr std::size_t kN = 50000;
  Device executed;
  auto in = executed.alloc<std::uint32_t>(kN, "in");
  auto out = executed.alloc<std::uint32_t>(kN, "out");
  executed.fill(in, 1u);
  const double before = executed.now_us();
  simt::prim::exclusive_scan(executed, in, out, kN);
  const double exec_time = executed.now_us() - before;

  Device analytic;
  simt::prim::charge_scan(analytic, kN);
  EXPECT_NEAR(analytic.now_us(), exec_time, exec_time);  // same order of magnitude
}

TEST(UniformEstimate, MatchesExecutedUniformKernel) {
  Device dev;
  constexpr std::uint64_t kThreads = 40000;
  auto buf = dev.alloc<std::uint32_t>(kThreads, "buf");
  const auto executed = simt::launch(
      dev, "uniform", GridSpec::dense(kThreads, 256), [&](ThreadCtx& ctx) {
        ctx.compute(12, kOps);
        (void)ctx.load(buf, ctx.global_id(), kLoad);
      });
  simt::UniformThreadCost cost;
  cost.ops = 12;
  cost.mem_instrs = 1;
  cost.transactions_per_warp = 1;
  const auto estimated = simt::estimate_uniform_kernel(
      dev.props(), dev.timing(), "uniform-est", kThreads, 256, cost);
  EXPECT_NEAR(estimated.time_us, executed.time_us, 0.15 * executed.time_us);
}

TEST(WaveAccumulator, BlockDispatchAddsThroughputCost) {
  const auto& props = DeviceProps::test_tiny();
  simt::TimingModel tm = no_dispatch_tm();
  tm.block_dispatch_cycles = 100.0;
  simt::WaveAccumulator with(props, tm, 64);
  simt::WaveAccumulator without(props, no_dispatch_tm(), 64);
  for (std::uint64_t b = 0; b < 8; ++b) {
    with.add_block(b, 1000.0, 10.0);
    without.add_block(b, 1000.0, 10.0);
  }
  // 4 blocks per SM: dispatch adds 4 x 100 cycles of issue per SM.
  EXPECT_DOUBLE_EQ(with.finish_cycles(), without.finish_cycles() + 400.0);
}

TEST(KernelTime, IncludesLaunchOverhead) {
  Device dev;
  const auto ks = simt::launch(dev, "empty", GridSpec::dense(1, 32),
                               [](ThreadCtx&) {});
  EXPECT_GE(ks.time_us, dev.timing().launch_overhead_us);
}

}  // namespace
