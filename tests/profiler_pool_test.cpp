// Profiler behavior under the pooled launch path: the observer fires on the
// launching thread after block reduction, so the aggregated report must be
// identical for any worker count; stacked observers chain and restore.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "graph/gen/generators.h"
#include "runtime/adaptive_engine.h"
#include "simt/device.h"
#include "simt/exec_pool.h"
#include "simt/launch.h"
#include "simt/profiler.h"

namespace {

constexpr simt::Site kOut{0, "out"};
constexpr simt::Site kOps{1, "ops"};

void expect_same_entries(const std::map<std::string, simt::Profiler::Entry>& a,
                         const std::map<std::string, simt::Profiler::Entry>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [name, ea] : a) {
    SCOPED_TRACE(name);
    const auto it = b.find(name);
    ASSERT_NE(it, b.end());
    const auto& eb = it->second;
    EXPECT_EQ(ea.launches, eb.launches);
    EXPECT_EQ(ea.time_us, eb.time_us);
    EXPECT_EQ(ea.sm_time_us, eb.sm_time_us);
    EXPECT_EQ(ea.bw_time_us, eb.bw_time_us);
    EXPECT_EQ(ea.atomic_time_us, eb.atomic_time_us);
    EXPECT_EQ(ea.transactions, eb.transactions);
    EXPECT_EQ(ea.atomics, eb.atomics);
    EXPECT_EQ(ea.lane_work, eb.lane_work);
    EXPECT_EQ(ea.lockstep_work, eb.lockstep_work);
    EXPECT_EQ(ea.warps_executed, eb.warps_executed);
  }
}

std::map<std::string, simt::Profiler::Entry> profile_run(int threads) {
  simt::ExecPool::set_threads(threads);
  const graph::Csr g = graph::gen::rmat({.scale = 12, .seed = 21});
  simt::Device dev;
  simt::Profiler prof(dev);
  (void)rt::adaptive_bfs(dev, g, 0);
  auto entries = prof.entries();
  simt::ExecPool::set_threads(1);
  return entries;
}

TEST(ProfilerPool, EntriesAreWorkerCountInvariant) {
  const auto serial = profile_run(1);
  const auto pooled = profile_run(8);
  EXPECT_FALSE(serial.empty());
  expect_same_entries(serial, pooled);
}

TEST(ProfilerPool, PooledLaunchesAggregateOnLaunchThread) {
  simt::ExecPool::set_threads(8);
  simt::Device dev;
  simt::Profiler prof(dev);
  const std::uint64_t n = 1 << 14;
  auto out = dev.alloc<std::uint32_t>(n, "out");
  for (int rep = 0; rep < 4; ++rep) {
    simt::launch(dev, "pool.work",
                 simt::GridSpec::dense(n, 256).with(simt::LaunchPolicy::parallel),
                 [&](simt::ThreadCtx& ctx) {
                   const std::uint64_t gid = ctx.global_id();
                   ctx.compute(1 + gid % 5, kOps);
                   ctx.store(out, gid, static_cast<std::uint32_t>(gid), kOut);
                 });
  }
  const auto entries = prof.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries.at("pool.work").launches, 4u);
  EXPECT_GT(prof.total_time_us(), 0);
  EXPECT_NE(prof.report().find("pool.work"), std::string::npos);
  simt::ExecPool::set_threads(1);
}

TEST(ProfilerPool, ObserversChainAndRestore) {
  simt::Device dev;
  std::vector<std::string> outer_seen;
  dev.set_kernel_observer([&](const simt::KernelStats& ks) {
    outer_seen.emplace_back(ks.name);
  });

  auto buf = dev.alloc<std::uint32_t>(512, "buf");
  {
    simt::Profiler prof(dev);
    dev.fill(buf, 1u);
    // Both the profiler and the pre-existing observer saw the launch.
    EXPECT_EQ(prof.entries().count("fill"), 1u);
    ASSERT_EQ(outer_seen.size(), 1u);
    EXPECT_EQ(outer_seen[0], "fill");
  }
  // Profiler destroyed: the original observer is restored, not dropped.
  dev.fill(buf, 2u);
  ASSERT_EQ(outer_seen.size(), 2u);

  dev.set_kernel_observer({});
  dev.fill(buf, 3u);
  EXPECT_EQ(outer_seen.size(), 2u);
}

TEST(ProfilerPool, StackedProfilersBothObserve) {
  simt::Device dev;
  auto buf = dev.alloc<std::uint32_t>(256, "buf");
  simt::Profiler outer(dev);
  dev.fill(buf, 1u);
  {
    simt::Profiler inner(dev);
    dev.fill(buf, 2u);
    EXPECT_EQ(inner.entries().at("fill").launches, 1u);
    EXPECT_EQ(outer.entries().at("fill").launches, 2u);
  }
  dev.fill(buf, 3u);
  EXPECT_EQ(outer.entries().at("fill").launches, 3u);
}

}  // namespace
