#include <gtest/gtest.h>

#include "cpu/sssp_serial.h"
#include "gpu_graph/sssp_engine.h"
#include "graph/gen/generators.h"
#include "graph/graph_stats.h"

namespace {

using gg::Variant;

struct GraphCase {
  const char* name;
  graph::Csr csr;
  graph::NodeId source;
};

std::vector<GraphCase>& test_graphs() {
  static std::vector<GraphCase> cases = [] {
    std::vector<GraphCase> out;
    {
      const std::vector<graph::Edge> edges{{0, 1}, {1, 2}, {2, 3}, {0, 2}};
      const std::vector<std::uint32_t> w{5, 3, 1, 10};
      out.push_back({"tiny", graph::csr_from_edges(4, edges, w), 0});
    }
    {
      auto g = graph::gen::erdos_renyi(2500, 12500, 21);
      graph::assign_uniform_weights(g, 1, 100, 2);
      out.push_back({"er", std::move(g), 0});
    }
    {
      auto g = graph::gen::road_network(2000, 5);
      graph::assign_uniform_weights(g, 1, 100, 3);
      const auto src = graph::suggest_source(g);
      out.push_back({"road", std::move(g), src});
    }
    {
      graph::gen::PowerLawParams p;
      p.num_nodes = 3000;
      p.tail_max = 200;
      p.tail_alpha = 1.3;
      p.seed = 31;
      auto g = graph::gen::powerlaw_configuration(p);
      graph::assign_uniform_weights(g, 1, 100, 4);
      const auto src = graph::suggest_source(g);
      out.push_back({"powerlaw", std::move(g), src});
    }
    return out;
  }();
  return cases;
}

struct SsspCase {
  std::size_t graph_index;
  Variant variant;
};

class GpuSsspVariants : public ::testing::TestWithParam<SsspCase> {};

TEST_P(GpuSsspVariants, MatchesSerialDijkstra) {
  const auto& [gi, variant] = GetParam();
  const auto& gc = test_graphs()[gi];
  const auto expected = cpu::dijkstra(gc.csr, gc.source);

  simt::Device dev;
  const auto got = gg::run_sssp(dev, gc.csr, gc.source, variant);
  EXPECT_EQ(got.dist, expected.dist) << gc.name;
  EXPECT_GT(got.metrics.total_us, 0.0);
  EXPECT_FALSE(got.metrics.iterations.empty());
}

std::vector<SsspCase> all_sssp_cases() {
  std::vector<SsspCase> cases;
  for (std::size_t g = 0; g < test_graphs().size(); ++g) {
    for (const Variant v : gg::all_variants()) {
      cases.push_back({g, v});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllVariantsAllGraphs, GpuSsspVariants,
                         ::testing::ValuesIn(all_sssp_cases()),
                         [](const auto& info) {
                           return std::string(test_graphs()[info.param.graph_index].name) +
                                  "_" + gg::variant_name(info.param.variant);
                         });

TEST(GpuSssp, OrderedSettlesEachNodeOnce) {
  // Ordered (Dijkstra-like) processes every reachable node exactly once, so
  // edge visits equal the reachable edge count.
  const auto& gc = test_graphs()[1];
  const auto reach = graph::compute_reach(gc.csr, gc.source);
  simt::Device dev;
  const auto got = gg::run_sssp(dev, gc.csr, gc.source,
                                gg::parse_variant("O_T_BM"));
  EXPECT_EQ(got.metrics.edges_processed, reach.reachable_edges);
}

TEST(GpuSssp, UnorderedRevisitsNodes) {
  // Unordered (Bellman-Ford-like) re-processes nodes whose distance
  // improves; on a weighted random graph it must do strictly more edge work
  // than the ordered algorithm.
  const auto& gc = test_graphs()[1];
  simt::Device dev_u, dev_o;
  const auto u = gg::run_sssp(dev_u, gc.csr, gc.source, gg::parse_variant("U_T_BM"));
  const auto o = gg::run_sssp(dev_o, gc.csr, gc.source, gg::parse_variant("O_T_BM"));
  EXPECT_GT(u.metrics.edges_processed, o.metrics.edges_processed);
}

TEST(GpuSssp, OrderedTakesMoreIterations) {
  // Paper Sec. IV.A: ordered algorithms take more iterations to converge
  // (one per distinct distance value vs one per relaxation wave).
  const auto& gc = test_graphs()[1];
  simt::Device dev_u, dev_o;
  const auto u = gg::run_sssp(dev_u, gc.csr, gc.source, gg::parse_variant("U_B_QU"));
  const auto o = gg::run_sssp(dev_o, gc.csr, gc.source, gg::parse_variant("O_B_QU"));
  EXPECT_GT(o.metrics.iterations.size(), u.metrics.iterations.size());
}

TEST(GpuSssp, UnorderedBeatsOrderedOnModeledTime) {
  // Paper Sec. VII.A: "unordered algorithms are significantly faster than
  // their ordered version" on SSSP.
  const auto& gc = test_graphs()[3];  // power-law
  simt::Device dev_u, dev_o;
  const auto u = gg::run_sssp(dev_u, gc.csr, gc.source, gg::parse_variant("U_B_QU"));
  const auto o = gg::run_sssp(dev_o, gc.csr, gc.source, gg::parse_variant("O_B_QU"));
  EXPECT_LT(u.metrics.total_us, o.metrics.total_us);
}

TEST(GpuSssp, UnitWeightsMatchBfsLevels) {
  auto g = graph::gen::erdos_renyi(2000, 9000, 77);
  graph::assign_uniform_weights(g, 1, 1, 1);
  const auto expected = cpu::dijkstra(g, 0);
  simt::Device dev;
  const auto got = gg::run_sssp(dev, g, 0, gg::parse_variant("U_T_QU"));
  EXPECT_EQ(got.dist, expected.dist);
}

TEST(GpuSssp, WorkingSetLargerThanBfs) {
  // Paper Sec. III.B: SSSP working sets are larger than BFS ones because
  // nodes re-enter when their distance improves.
  const auto& gc = test_graphs()[1];
  simt::Device dev;
  const auto got = gg::run_sssp(dev, gc.csr, gc.source, gg::parse_variant("U_T_QU"));
  std::uint64_t total_ws = 0;
  for (const auto& it : got.metrics.iterations) total_ws += it.ws_size;
  const auto reach = graph::compute_reach(gc.csr, gc.source);
  EXPECT_GT(total_ws, reach.reachable_nodes);
}

TEST(GpuSssp, RequiresWeights) {
  const auto g = graph::csr_from_edges(2, std::vector<graph::Edge>{{0, 1}});
  simt::Device dev;
  EXPECT_DEATH(gg::run_sssp(dev, g, 0, gg::parse_variant("U_T_BM")),
               "weights");
}

TEST(GpuSssp, DeterministicAcrossRuns) {
  const auto& gc = test_graphs()[3];
  simt::Device d1, d2;
  const auto a = gg::run_sssp(d1, gc.csr, gc.source, gg::parse_variant("O_B_BM"));
  const auto b = gg::run_sssp(d2, gc.csr, gc.source, gg::parse_variant("O_B_BM"));
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_DOUBLE_EQ(a.metrics.total_us, b.metrics.total_us);
}

// ---- extension: virtual-warp-centric mapping (Hong et al. [12]) ------------

class GpuSsspWarpCentric : public ::testing::TestWithParam<SsspCase> {};

TEST_P(GpuSsspWarpCentric, MatchesSerialCpu) {
  const auto& [gi, variant] = GetParam();
  const auto& gc = test_graphs()[gi];
  const auto expected = cpu::dijkstra(gc.csr, gc.source).dist;
  simt::Device dev;
  const auto got = gg::run_sssp(dev, gc.csr, gc.source, variant);
  EXPECT_EQ(got.dist, expected) << gc.name;
}

std::vector<SsspCase> warp_sssp_cases() {
  std::vector<SsspCase> cases;
  for (std::size_t g = 0; g < test_graphs().size(); ++g) {
    for (const Variant v : gg::warp_centric_variants()) {
      cases.push_back({g, v});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(WarpVariants, GpuSsspWarpCentric,
                         ::testing::ValuesIn(warp_sssp_cases()),
                         [](const auto& info) {
                           return std::string(test_graphs()[info.param.graph_index].name) +
                                  "_" + gg::variant_name(info.param.variant);
                         });

TEST(WarpCentric, ScanQueueGenMatchesAtomic) {
  const auto& gc = test_graphs()[1];
  simt::Device d1, d2;
  gg::EngineOptions scan_opts;
  scan_opts.scan_queue_gen = true;
  const auto a = gg::run_sssp(d1, gc.csr, gc.source, gg::parse_variant("U_B_QU"));
  const auto b = gg::run_sssp(d2, gc.csr, gc.source, gg::parse_variant("U_B_QU"), scan_opts);
  EXPECT_EQ(a.dist, b.dist);
  // Scan generation removes the tail-counter serialization but pays extra
  // passes: times must differ, results must not.
  EXPECT_NE(a.metrics.total_us, b.metrics.total_us);
}

}  // namespace
