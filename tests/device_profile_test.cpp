// Correctness must be independent of the device profile: the timing model
// changes, the results must not. Parameterized over all shipped profiles.
#include <gtest/gtest.h>

#include "cpu/bfs_serial.h"
#include "cpu/sssp_serial.h"
#include "gpu_graph/bfs_engine.h"
#include "gpu_graph/sssp_engine.h"
#include "graph/gen/generators.h"
#include "runtime/adaptive_engine.h"

namespace {

struct Profile {
  const char* name;
  const simt::DeviceProps* props;
  simt::TimingModel tm;
};

std::vector<Profile> profiles() {
  return {
      {"c2070", &simt::DeviceProps::fermi_c2070(), simt::TimingModel::fermi_default()},
      {"gtx580", &simt::DeviceProps::fermi_gtx580(), simt::TimingModel::fermi_default()},
      {"k20", &simt::DeviceProps::kepler_k20(), simt::TimingModel::kepler_default()},
      {"tiny", &simt::DeviceProps::test_tiny(), simt::TimingModel::fermi_default()},
  };
}

class ProfileSweep : public ::testing::TestWithParam<Profile> {};

TEST_P(ProfileSweep, BfsResultsProfileIndependent) {
  const auto g = graph::gen::erdos_renyi(4000, 20000, 55);
  const auto expected = cpu::bfs(g, 0);
  simt::Device dev(*GetParam().props, GetParam().tm);
  const auto got = gg::run_bfs(dev, g, 0, gg::parse_variant("U_B_QU"));
  EXPECT_EQ(got.level, expected.level);
  EXPECT_GT(got.metrics.total_us, 0.0);
}

TEST_P(ProfileSweep, AdaptiveSsspProfileIndependent) {
  auto g = graph::gen::erdos_renyi(3000, 15000, 56);
  graph::assign_uniform_weights(g, 1, 100, 5);
  const auto expected = cpu::dijkstra(g, 0);
  simt::Device dev(*GetParam().props, GetParam().tm);
  const auto got = rt::adaptive_sssp(dev, g, 0);
  EXPECT_EQ(got.dist, expected.dist);
}

TEST_P(ProfileSweep, ThresholdsDeriveFromProfile) {
  const auto t = rt::Thresholds::for_device(*GetParam().props);
  EXPECT_DOUBLE_EQ(t.t1_avg_outdegree, 32.0);
  EXPECT_DOUBLE_EQ(t.t2_ws_size, 192.0 * GetParam().props->num_sms);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileSweep,
                         ::testing::ValuesIn(profiles()),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(ProfileTiming, FasterCardFinishesSooner) {
  // GTX 580 has more SMs, higher clock, more bandwidth than C2070: the same
  // traversal must be modeled faster.
  const auto g = graph::gen::erdos_renyi(50000, 400000, 57);
  simt::Device slow(simt::DeviceProps::fermi_c2070());
  simt::Device fast(simt::DeviceProps::fermi_gtx580());
  const auto a = gg::run_bfs(slow, g, 0, gg::parse_variant("U_T_BM"));
  const auto b = gg::run_bfs(fast, g, 0, gg::parse_variant("U_T_BM"));
  EXPECT_EQ(a.level, b.level);
  EXPECT_GT(a.metrics.total_us, b.metrics.total_us);
}

}  // namespace
