#include <gtest/gtest.h>

#include "cpu/bfs_serial.h"
#include "gpu_graph/bfs_engine.h"
#include "graph/gen/generators.h"
#include "graph/graph_stats.h"

namespace {

using gg::Variant;

struct GraphCase {
  const char* name;
  graph::Csr csr;
  graph::NodeId source;
};

std::vector<GraphCase>& test_graphs() {
  static std::vector<GraphCase> cases = [] {
    std::vector<GraphCase> out;
    {
      const std::vector<graph::Edge> edges{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}};
      out.push_back({"tiny", graph::csr_from_edges(6, edges), 0});
    }
    out.push_back({"er", graph::gen::erdos_renyi(3000, 15000, 7), 0});
    out.push_back({"road", graph::gen::road_network(2500, 3),
                   0});  // high diameter
    {
      graph::gen::PowerLawParams p;
      p.num_nodes = 4000;
      p.tail_max = 300;
      p.tail_alpha = 1.2;
      p.seed = 9;
      auto g = graph::gen::powerlaw_configuration(p);
      const auto src = graph::suggest_source(g);
      out.push_back({"powerlaw", std::move(g), src});
    }
    for (auto& c : out) {
      if (graph::suggest_source(c.csr) != c.source && c.csr.degree(c.source) == 0) {
        c.source = graph::suggest_source(c.csr);
      }
    }
    return out;
  }();
  return cases;
}

struct BfsCase {
  std::size_t graph_index;
  Variant variant;
};

class GpuBfsVariants : public ::testing::TestWithParam<BfsCase> {};

TEST_P(GpuBfsVariants, MatchesSerialCpu) {
  const auto& [gi, variant] = GetParam();
  const auto& gc = test_graphs()[gi];
  const auto expected = cpu::bfs(gc.csr, gc.source);

  simt::Device dev;
  const auto got = gg::run_bfs(dev, gc.csr, gc.source, variant);
  ASSERT_EQ(got.level.size(), expected.level.size());
  EXPECT_EQ(got.level, expected.level) << gc.name;
  EXPECT_GT(got.metrics.total_us, 0.0);
  EXPECT_GT(got.metrics.kernels, 0u);
  EXPECT_FALSE(got.metrics.iterations.empty());
}

std::vector<BfsCase> all_bfs_cases() {
  std::vector<BfsCase> cases;
  for (std::size_t g = 0; g < test_graphs().size(); ++g) {
    for (const Variant v : gg::all_variants()) {
      cases.push_back({g, v});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllVariantsAllGraphs, GpuBfsVariants,
                         ::testing::ValuesIn(all_bfs_cases()),
                         [](const auto& info) {
                           return std::string(test_graphs()[info.param.graph_index].name) +
                                  "_" + gg::variant_name(info.param.variant);
                         });

TEST(GpuBfs, IterationCountEqualsLevels) {
  const auto& gc = test_graphs()[1];
  const auto expected = cpu::bfs(gc.csr, gc.source);
  simt::Device dev;
  const auto got = gg::run_bfs(dev, gc.csr, gc.source,
                               gg::parse_variant("U_T_BM"));
  // Level-synchronous: one iteration per BFS level (plus none for the empty
  // final frontier).
  EXPECT_EQ(got.metrics.iterations.size(), expected.counts.levels + 1u);
}

TEST(GpuBfs, FirstIterationProcessesSourceOnly) {
  const auto& gc = test_graphs()[1];
  simt::Device dev;
  const auto got = gg::run_bfs(dev, gc.csr, gc.source,
                               gg::parse_variant("U_B_QU"));
  EXPECT_EQ(got.metrics.iterations.front().ws_size, 1u);
}

TEST(GpuBfs, WorkingSetGrowsThenShrinks) {
  // Paper Fig. 2 shape on a random graph: ramp up, peak, collapse.
  const auto& gc = test_graphs()[1];
  simt::Device dev;
  const auto got = gg::run_bfs(dev, gc.csr, gc.source,
                               gg::parse_variant("U_T_QU"));
  const auto& its = got.metrics.iterations;
  ASSERT_GE(its.size(), 3u);
  std::uint64_t peak = 0;
  std::size_t peak_at = 0;
  for (std::size_t i = 0; i < its.size(); ++i) {
    if (its[i].ws_size > peak) {
      peak = its[i].ws_size;
      peak_at = i;
    }
  }
  EXPECT_GT(peak_at, 0u);
  EXPECT_LT(peak_at, its.size() - 1);
  EXPECT_GT(peak, its.front().ws_size);
  EXPECT_GT(peak, its.back().ws_size);
}

TEST(GpuBfs, EdgesProcessedMatchesReachableEdges) {
  const auto& gc = test_graphs()[1];
  const auto reach = graph::compute_reach(gc.csr, gc.source);
  simt::Device dev;
  // Ordered BFS processes each reached node exactly once.
  const auto got = gg::run_bfs(dev, gc.csr, gc.source,
                               gg::parse_variant("O_T_QU"));
  EXPECT_EQ(got.metrics.edges_processed, reach.reachable_edges);
}

TEST(GpuBfs, ThreadMappingDivergesOnSkewedGraph) {
  // Thread mapping on a power-law graph must show SIMD inefficiency;
  // block mapping distributes the neighbor visit and stays higher.
  const auto& gc = test_graphs()[3];
  simt::Device dev_t;
  const auto t = gg::run_bfs(dev_t, gc.csr, gc.source, gg::parse_variant("U_T_QU"));
  simt::Device dev_b;
  const auto b = gg::run_bfs(dev_b, gc.csr, gc.source, gg::parse_variant("U_B_QU"));
  EXPECT_LT(t.metrics.simd_efficiency, 0.9);
  EXPECT_GT(b.metrics.simd_efficiency, t.metrics.simd_efficiency);
}

TEST(GpuBfs, SourceWithNoEdgesTerminatesImmediately) {
  const std::vector<graph::Edge> edges{{1, 2}};
  const auto g = graph::csr_from_edges(3, edges);
  simt::Device dev;
  const auto got = gg::run_bfs(dev, g, 0, gg::parse_variant("U_T_BM"));
  EXPECT_EQ(got.level[0], 0u);
  EXPECT_EQ(got.level[1], graph::kInfinity);
  EXPECT_EQ(got.metrics.iterations.size(), 1u);
}

TEST(GpuBfs, DeterministicAcrossRuns) {
  const auto& gc = test_graphs()[3];
  simt::Device d1, d2;
  const auto a = gg::run_bfs(d1, gc.csr, gc.source, gg::parse_variant("U_B_BM"));
  const auto b = gg::run_bfs(d2, gc.csr, gc.source, gg::parse_variant("U_B_BM"));
  EXPECT_EQ(a.level, b.level);
  EXPECT_DOUBLE_EQ(a.metrics.total_us, b.metrics.total_us);
}

TEST(GpuBfs, SelectorCanSwitchRepresentationMidRun) {
  const auto& gc = test_graphs()[1];
  const auto expected = cpu::bfs(gc.csr, gc.source);
  simt::Device dev;
  gg::EngineOptions opts;
  opts.monitor_interval = 1;
  // Alternate all four unordered variants by iteration parity.
  const auto selector = [](const gg::SelectorInput& in) {
    const auto pool = gg::unordered_variants();
    return pool[in.iteration % pool.size()];
  };
  const auto got = gg::run_bfs(dev, gc.csr, gc.source, selector, opts);
  EXPECT_EQ(got.level, expected.level);
  EXPECT_GT(got.metrics.switches, 0u);
  EXPECT_GT(got.metrics.decisions, 0u);
}

// ---- extension: virtual-warp-centric mapping (Hong et al. [12]) ------------

class GpuBfsWarpCentric : public ::testing::TestWithParam<BfsCase> {};

TEST_P(GpuBfsWarpCentric, MatchesSerialCpu) {
  const auto& [gi, variant] = GetParam();
  const auto& gc = test_graphs()[gi];
  const auto expected = cpu::bfs(gc.csr, gc.source).level;
  simt::Device dev;
  const auto got = gg::run_bfs(dev, gc.csr, gc.source, variant);
  EXPECT_EQ(got.level, expected) << gc.name;
}

std::vector<BfsCase> warp_bfs_cases() {
  std::vector<BfsCase> cases;
  for (std::size_t g = 0; g < test_graphs().size(); ++g) {
    for (const Variant v : gg::warp_centric_variants()) {
      cases.push_back({g, v});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(WarpVariants, GpuBfsWarpCentric,
                         ::testing::ValuesIn(warp_bfs_cases()),
                         [](const auto& info) {
                           return std::string(test_graphs()[info.param.graph_index].name) +
                                  "_" + gg::variant_name(info.param.variant);
                         });

TEST(WarpCentric, ScanQueueGenMatchesAtomic) {
  const auto& gc = test_graphs()[1];
  simt::Device d1, d2;
  gg::EngineOptions scan_opts;
  scan_opts.scan_queue_gen = true;
  const auto a = gg::run_bfs(d1, gc.csr, gc.source, gg::parse_variant("U_B_QU"));
  const auto b = gg::run_bfs(d2, gc.csr, gc.source, gg::parse_variant("U_B_QU"), scan_opts);
  EXPECT_EQ(a.level, b.level);
  // Scan generation removes the tail-counter serialization but pays extra
  // passes: times must differ, results must not.
  EXPECT_NE(a.metrics.total_us, b.metrics.total_us);
}

}  // namespace
