// Property-style sweeps over the SIMT simulator: invariants that must hold
// for arbitrary access patterns, grid shapes and device profiles.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/prng.h"
#include "simt/launch.h"
#include "simt/primitives.h"
#include "simt/profiler.h"

namespace {

using simt::Device;
using simt::GridSpec;
using simt::Site;
using simt::ThreadCtx;

constexpr Site kLoad{0, "load"};
constexpr Site kOps{1, "ops"};
constexpr Site kAtomic{2, "atomic"};

// ---- coalescing bounds over random strides ---------------------------------

class StrideSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StrideSweep, TransactionsBetweenOneAndWarpSize) {
  const std::uint32_t stride = GetParam();
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(64 * (stride + 1) + 64, "buf");
  const auto ks =
      simt::launch(dev, "stride", GridSpec::dense(64, 64), [&](ThreadCtx& ctx) {
        (void)ctx.load(buf, ctx.global_id() * stride, kLoad);
      });
  // Two warps, one dynamic load instruction each.
  EXPECT_GE(ks.transactions, stride == 0 ? 2.0 : 2.0);
  EXPECT_LE(ks.transactions, 2.0 * simt::kWarpSize);
  // Transactions grow monotonically with stride until fully scattered.
  const double expected =
      2.0 * std::min<double>(simt::kWarpSize,
                             std::max<double>(1.0, stride * 4.0 * 32 / 128.0));
  EXPECT_NEAR(ks.transactions, expected, expected * 0.5 + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Strides, StrideSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 8u, 16u, 32u, 64u));

// ---- time monotonicity -------------------------------------------------------

class WorkSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkSweep, TimeMonotoneInThreadCount) {
  const std::uint64_t threads = GetParam();
  Device dev;
  const auto small = simt::launch(dev, "w", GridSpec::dense(threads, 256),
                                  [](ThreadCtx& ctx) { ctx.compute(50, kOps); });
  const auto larger = simt::launch(dev, "w", GridSpec::dense(threads * 4, 256),
                                   [](ThreadCtx& ctx) { ctx.compute(50, kOps); });
  EXPECT_LE(small.time_us, larger.time_us);
  EXPECT_GT(small.time_us, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WorkSweep,
                         ::testing::Values(64ull, 1000ull, 10000ull, 100000ull));

// ---- sparse launch == dense launch when everything is active ----------------

TEST(SparseDenseEquivalence, FullyActiveSparseMatchesDenseWork) {
  Device dev;
  constexpr std::uint64_t kThreads = 4096;
  auto buf = dev.alloc<std::uint32_t>(kThreads, "buf");
  std::vector<std::uint32_t> all(kThreads);
  for (std::uint32_t i = 0; i < kThreads; ++i) all[i] = i;

  const auto dense = simt::launch(dev, "d", GridSpec::dense(kThreads, 256),
                                  [&](ThreadCtx& ctx) {
                                    (void)ctx.load(buf, ctx.global_id(), kLoad);
                                    ctx.compute(5, kOps);
                                  });
  simt::Predicate pred;  // disabled: pure grid-bound check
  const auto sparse = simt::launch(
      dev, "s", GridSpec::over_threads(kThreads, 256, all, pred),
      [&](ThreadCtx& ctx) {
        (void)ctx.load(buf, ctx.global_id(), kLoad);
        ctx.compute(5, kOps);
      });
  EXPECT_EQ(sparse.warps_executed, dense.warps_executed);
  EXPECT_DOUBLE_EQ(sparse.transactions, dense.transactions);
  EXPECT_NEAR(sparse.time_us, dense.time_us, 0.05 * dense.time_us);
}

// ---- SIMD efficiency bounds --------------------------------------------------

TEST(SimdEfficiency, AlwaysWithinUnitInterval) {
  Device dev;
  agg::Prng rng(17);
  for (int round = 0; round < 8; ++round) {
    std::vector<std::uint32_t> work(512);
    for (auto& w : work) w = 1 + static_cast<std::uint32_t>(rng.bounded(97));
    const auto ks = simt::launch(dev, "rand", GridSpec::dense(512, 64),
                                 [&](ThreadCtx& ctx) {
                                   ctx.compute(work[ctx.global_id()], kOps);
                                 });
    EXPECT_GT(ks.simd_efficiency(), 0.0);
    EXPECT_LE(ks.simd_efficiency(), 1.0);
  }
}

// ---- line-buffer model ---------------------------------------------------------

TEST(LineBuffer, SequentialScanCheaperThanScattered) {
  Device dev;
  constexpr std::uint32_t kLen = 64;
  auto buf = dev.alloc<std::uint32_t>(32 * kLen, "buf");
  // Each lane scans its own contiguous chunk.
  const auto sequential =
      simt::launch(dev, "seq", GridSpec::dense(32, 32), [&](ThreadCtx& ctx) {
        const std::uint64_t base = ctx.global_id() * kLen;
        for (std::uint32_t i = 0; i < kLen; ++i) {
          (void)ctx.load(buf, base + i, kLoad);
        }
      });
  // Each lane hops across segments every access.
  const auto scattered =
      simt::launch(dev, "scat", GridSpec::dense(32, 32), [&](ThreadCtx& ctx) {
        const std::uint64_t lane = ctx.global_id();
        for (std::uint32_t i = 0; i < kLen; ++i) {
          (void)ctx.load(buf, (i * 32 + lane) * 37 % (32 * kLen), kLoad);
        }
      });
  EXPECT_LT(sequential.transactions, scattered.transactions);
  EXPECT_LT(sequential.mem_instrs, scattered.mem_instrs);
}

TEST(LineBuffer, StreamRefetchChargesBandwidthPeriodically) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(32 * 32, "buf");
  const auto ks =
      simt::launch(dev, "stream", GridSpec::dense(1, 32), [&](ThreadCtx& ctx) {
        if (ctx.global_id() != 0) return;
        for (std::uint32_t i = 0; i < 32; ++i) (void)ctx.load(buf, i, kLoad);
      });
  // 32 sequential 4B loads within one 128B segment: 1 cold miss plus
  // refetches every stream_refetch_period-th hit.
  const double hits = 31.0;
  const double expected =
      1.0 + std::floor(hits / dev.timing().stream_refetch_period);
  EXPECT_NEAR(ks.transactions, expected, 1.0);
}

// ---- atomic contention properties ---------------------------------------------

TEST(AtomicContention, SerializationScalesWithSameAddressOps) {
  Device dev;
  auto cell = dev.alloc<std::uint32_t>(1, "cell");
  auto run = [&](std::uint64_t threads) {
    return simt::launch(dev, "a", GridSpec::dense(threads, 256),
                        [&](ThreadCtx& ctx) {
                          ctx.atomic_add(cell, 0, 1u, kAtomic);
                        })
        .atomic_time_us;
  };
  const double t1 = run(1000);
  const double t2 = run(4000);
  EXPECT_NEAR(t2 / t1, 4.0, 0.2);
}

TEST(AtomicContention, SpreadingAddressesRemovesSerialization) {
  Device dev;
  auto cells = dev.alloc<std::uint32_t>(8192, "cells");
  const auto spread = simt::launch(dev, "s", GridSpec::dense(8192, 256),
                                   [&](ThreadCtx& ctx) {
                                     ctx.atomic_add(cells, ctx.global_id(), 1u,
                                                    kAtomic);
                                   });
  auto cell = dev.alloc<std::uint32_t>(1, "cell");
  const auto contended = simt::launch(dev, "c", GridSpec::dense(8192, 256),
                                      [&](ThreadCtx& ctx) {
                                        ctx.atomic_add(cell, 0, 1u, kAtomic);
                                      });
  EXPECT_LT(spread.atomic_time_us, contended.atomic_time_us);
  EXPECT_LT(spread.time_us, contended.time_us);
}

// ---- analytic estimator vs execution over a parameter sweep -------------------

struct EstimateCase {
  std::uint64_t threads;
  std::uint32_t tpb;
  std::uint32_t ops;
};

class EstimateSweep : public ::testing::TestWithParam<EstimateCase> {};

TEST_P(EstimateSweep, AnalyticWithinFifteenPercentOfExecuted) {
  const auto [threads, tpb, ops] = GetParam();
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(threads, "buf");
  const std::uint32_t ops_copy = ops;
  const auto executed = simt::launch(
      dev, "u", GridSpec::dense(threads, tpb), [&](ThreadCtx& ctx) {
        ctx.compute(ops_copy, kOps);
        (void)ctx.load(buf, ctx.global_id(), kLoad);
      });
  simt::UniformThreadCost cost;
  cost.ops = ops;
  cost.mem_instrs = 1;
  cost.transactions_per_warp = 1;
  const auto estimated = simt::estimate_uniform_kernel(
      dev.props(), dev.timing(), "u-est", threads, tpb, cost);
  EXPECT_NEAR(estimated.time_us, executed.time_us, 0.15 * executed.time_us)
      << "threads=" << threads << " tpb=" << tpb << " ops=" << ops;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EstimateSweep,
    ::testing::Values(EstimateCase{512, 64, 4}, EstimateCase{4096, 128, 16},
                      EstimateCase{20000, 256, 2}, EstimateCase{100000, 256, 8},
                      EstimateCase{65536, 512, 32}));

// ---- device clock & stats invariants ------------------------------------------

TEST(PredicateShift, WarpCentricBroadcastIsOneTransaction) {
  // With id_shift = 5 all 32 lanes of a warp read the same predicate byte.
  Device dev;
  auto flags = dev.alloc<std::uint8_t>(64, "flags");
  simt::Predicate pred;
  pred.base_addr = flags.base_addr();
  pred.stride = 1;
  pred.id_shift = 5;
  std::vector<std::uint32_t> active;
  for (std::uint32_t i = 0; i < 32; ++i) active.push_back(i);  // one full warp
  const auto ks = simt::launch(
      dev, "shift", GridSpec::over_threads(64 * 32, 32, active, pred),
      [](ThreadCtx&) {});
  // The executed warp's predicate access coalesces to a single segment.
  EXPECT_GE(ks.warps_executed, 1u);
}

TEST(PhasedLaunch, BlocksHaveIndependentSharedMemory) {
  Device dev;
  auto out = dev.alloc<std::uint32_t>(4, "out");
  simt::launch_phased(dev, "iso", 4 * 32, 32, 2, [&](int phase, ThreadCtx& ctx) {
    auto sh = ctx.shared_alloc<std::uint32_t>(0, 1);
    if (phase == 0 && ctx.thread_in_block() == 0) {
      ctx.shared_store(sh, 0, static_cast<std::uint32_t>(ctx.block_idx() + 100),
                       kOps);
    } else if (phase == 1 && ctx.thread_in_block() == 0) {
      ctx.store(out, ctx.block_idx(), ctx.shared_load(sh, 0, kOps), kOps);
    }
  });
  for (std::uint32_t b = 0; b < 4; ++b) {
    EXPECT_EQ(out.host_view()[b], b + 100) << "shared state leaked across blocks";
  }
}

TEST(ReduceMinEdge, AllEqualValues) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(1000, "vals");
  dev.fill(buf, 7u);
  EXPECT_EQ(simt::prim::reduce_min(dev, buf, 1000), 7u);
}

TEST(ReduceMinEdge, MinAtEveryPosition) {
  for (const std::size_t pos : {0ul, 255ul, 256ul, 999ul}) {
    Device dev;
    auto buf = dev.alloc<std::uint32_t>(1000, "vals");
    dev.fill(buf, 100u);
    buf.host_view()[pos] = 1;
    EXPECT_EQ(simt::prim::reduce_min(dev, buf, 1000), 1u) << pos;
  }
}

TEST(ReduceMinEdge, InfinitySentinelsSurvive) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(300, "vals");
  dev.fill(buf, 0xffffffffu);
  EXPECT_EQ(simt::prim::reduce_min(dev, buf, 300), 0xffffffffu);
}

TEST(PartialTransfer, DownloadPrefixOnly) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(100, "buf");
  for (std::uint32_t i = 0; i < 100; ++i) buf.host_view()[i] = i;
  std::vector<std::uint32_t> out(10);
  dev.memcpy_d2h(std::span<std::uint32_t>(out), buf);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
}

TEST(KeplerProfile, FastAtomicsReduceContention) {
  Device fermi(simt::DeviceProps::fermi_c2070(), simt::TimingModel::fermi_default());
  Device kepler(simt::DeviceProps::kepler_k20(), simt::TimingModel::kepler_default());
  auto run = [](Device& dev) {
    auto cell = dev.alloc<std::uint32_t>(1, "cell");
    return simt::launch(dev, "a", GridSpec::dense(50000, 256),
                        [&](ThreadCtx& ctx) { ctx.atomic_add(cell, 0, 1u, kAtomic); })
        .atomic_time_us;
  };
  EXPECT_LT(run(kepler), run(fermi) / 2.0);
}

TEST(IssueWidth, WiderSchedulerShrinksComputeTime) {
  simt::TimingModel narrow = simt::TimingModel::fermi_default();
  simt::TimingModel wide = narrow;
  wide.warps_issued_per_cycle = 2.0;
  const simt::UniformThreadCost cost{/*ops=*/64, 0, 0, 0};
  const auto& props = simt::DeviceProps::fermi_c2070();
  const auto a = simt::estimate_uniform_kernel(props, narrow, "n", 1 << 20, 256, cost);
  const auto b = simt::estimate_uniform_kernel(props, wide, "w", 1 << 20, 256, cost);
  EXPECT_GT(a.sm_time_us, 1.5 * b.sm_time_us);
}

TEST(Profiler, AggregatesByKernelName) {
  Device dev;
  simt::Profiler prof(dev);
  auto buf = dev.alloc<std::uint32_t>(4096, "buf");
  for (int i = 0; i < 3; ++i) {
    simt::launch(dev, "alpha", GridSpec::dense(4096, 256), [&](ThreadCtx& ctx) {
      (void)ctx.load(buf, ctx.global_id(), kLoad);
    });
  }
  simt::launch(dev, "beta", GridSpec::dense(64, 64),
               [](ThreadCtx& ctx) { ctx.compute(5, kOps); });
  ASSERT_EQ(prof.entries().size(), 2u);
  EXPECT_EQ(prof.entries().at("alpha").launches, 3u);
  EXPECT_EQ(prof.entries().at("beta").launches, 1u);
  EXPECT_GT(prof.total_time_us(), 0.0);
  const auto report = prof.report();
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("beta"), std::string::npos);
  prof.reset();
  EXPECT_TRUE(prof.entries().empty());
}

TEST(Profiler, ClassifiesBottlenecks) {
  Device dev;
  simt::Profiler prof(dev);
  auto cell = dev.alloc<std::uint32_t>(1, "cell");
  simt::launch(dev, "hot-atomic", GridSpec::dense(100000, 256),
               [&](ThreadCtx& ctx) { ctx.atomic_add(cell, 0, 1u, kAtomic); });
  simt::launch(dev, "hot-compute", GridSpec::dense(100000, 256),
               [](ThreadCtx& ctx) { ctx.compute(200, kOps); });
  EXPECT_STREQ(prof.entries().at("hot-atomic").bottleneck(), "atomics");
  EXPECT_STREQ(prof.entries().at("hot-compute").bottleneck(), "compute");
}

TEST(DeviceClock, NeverDecreases) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(1024, "buf");
  double prev = dev.now_us();
  for (int i = 0; i < 5; ++i) {
    dev.fill(buf, static_cast<std::uint32_t>(i));
    simt::launch(dev, "k", GridSpec::dense(256, 64),
                 [](ThreadCtx& ctx) { ctx.compute(3, kOps); });
    simt::prim::charge_reduce_min(dev, 1024);
    EXPECT_GE(dev.now_us(), prev);
    prev = dev.now_us();
  }
}

TEST(DeviceStats, AggregateAcrossLaunches) {
  Device dev;
  const auto before = dev.stats().kernels_launched;
  for (int i = 0; i < 3; ++i) {
    simt::launch(dev, "k", GridSpec::dense(64, 64),
                 [](ThreadCtx& ctx) { ctx.compute(1, kOps); });
  }
  EXPECT_EQ(dev.stats().kernels_launched, before + 3);
}

TEST(TinyDevice, SlowerThanFermiOnSameKernel) {
  Device fermi;
  Device tiny(simt::DeviceProps::test_tiny());
  auto run = [](Device& dev) {
    return simt::launch(dev, "k", GridSpec::dense(100000, 128),
                        [](ThreadCtx& ctx) { ctx.compute(20, kOps); })
        .time_us;
  };
  EXPECT_GT(run(tiny), run(fermi));
}

}  // namespace
