// TraversalMetrics reporting: summary(), max_ws_size(), and the JSON
// exporter round-tripped through the in-tree parser.
#include <gtest/gtest.h>

#include "gpu_graph/metrics.h"
#include "graph/gen/generators.h"
#include "runtime/adaptive_engine.h"
#include "simt/device.h"
#include "trace/json_writer.h"

namespace {

gg::TraversalMetrics sample_metrics() {
  gg::TraversalMetrics m;
  m.total_us = 1500.25;
  m.kernel_us = 900;
  m.transfer_us = 400;
  m.kernels = 7;
  m.simd_efficiency = 0.875;
  m.edges_processed = 123456;
  m.switches = 2;
  m.decisions = 4;
  m.iterations.push_back({0, 1, gg::parse_variant("U_B_QU"), 100.5, false});
  m.iterations.push_back({1, 950, gg::parse_variant("U_T_QU"), 700.25, false});
  m.iterations.push_back({2, 12, gg::parse_variant("U_B_QU"), 99.5, true});
  return m;
}

TEST(TraversalMetrics, MaxWsSizeAndSummary) {
  const auto m = sample_metrics();
  EXPECT_EQ(m.max_ws_size(), 950u);
  EXPECT_EQ(gg::TraversalMetrics{}.max_ws_size(), 0u);

  const std::string s = m.summary();
  EXPECT_NE(s.find("3 iterations"), std::string::npos);
  EXPECT_NE(s.find("1.500 ms"), std::string::npos);
  EXPECT_NE(s.find("2 switches"), std::string::npos);
  // No switches -> the clause is omitted entirely.
  EXPECT_EQ(gg::TraversalMetrics{}.summary().find("switches"), std::string::npos);
}

TEST(TraversalMetrics, JsonRoundTrip) {
  const auto m = sample_metrics();
  const auto doc = trace::json_parse(m.to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("total_us")->num_or(0), 1500.25);
  EXPECT_EQ(doc->find("kernels")->num_or(0), 7);
  EXPECT_EQ(doc->find("simd_efficiency")->num_or(0), 0.875);
  EXPECT_EQ(doc->find("edges_processed")->num_or(0), 123456);
  EXPECT_EQ(doc->find("switches")->num_or(0), 2);
  EXPECT_EQ(doc->find("decisions")->num_or(0), 4);
  EXPECT_EQ(doc->find("max_ws_size")->num_or(0), 950);

  const auto* iters = doc->find("iterations");
  ASSERT_NE(iters, nullptr);
  ASSERT_TRUE(iters->is_array());
  ASSERT_EQ(iters->items.size(), 3u);
  const auto& it1 = iters->items[1];
  EXPECT_EQ(it1.find("iteration")->num_or(-1), 1);
  EXPECT_EQ(it1.find("ws_size")->num_or(0), 950);
  EXPECT_EQ(it1.find("variant")->str_or(""), "U_T_QU");
  EXPECT_EQ(it1.find("time_us")->num_or(0), 700.25);
  EXPECT_FALSE(it1.find("on_cpu")->boolean);
  EXPECT_TRUE(iters->items[2].find("on_cpu")->boolean);
}

TEST(TraversalMetrics, JsonFromRealTraversal) {
  const graph::Csr g = graph::gen::erdos_renyi(3000, 24000, 4);
  simt::Device dev;
  const auto r = rt::adaptive_bfs(dev, g, 0);
  const auto doc = trace::json_parse(r.metrics.to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("iterations")->items.size(), r.metrics.iterations.size());
  EXPECT_EQ(doc->find("total_us")->num_or(-1), r.metrics.total_us);
  EXPECT_EQ(doc->find("edges_processed")->num_or(-1),
            static_cast<double>(r.metrics.edges_processed));
}

}  // namespace
