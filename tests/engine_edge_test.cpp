// Engine edge cases and cross-variant equivalence properties: all variants
// (including the warp-centric extension) must agree with each other on
// arbitrary graphs, and degenerate topologies must not trip the engines.
#include <gtest/gtest.h>

#include <vector>

#include "cpu/bfs_serial.h"
#include "cpu/sssp_serial.h"
#include "gpu_graph/bfs_engine.h"
#include "gpu_graph/sssp_engine.h"
#include "graph/gen/generators.h"

namespace {

std::vector<gg::Variant> every_variant() {
  std::vector<gg::Variant> out;
  for (const auto v : gg::all_variants()) out.push_back(v);
  for (const auto v : gg::warp_centric_variants()) out.push_back(v);
  return out;
}

void expect_all_variants_agree(const graph::Csr& g, graph::NodeId src) {
  simt::Device ref_dev;
  const auto ref = gg::run_bfs(ref_dev, g, src, gg::parse_variant("U_T_QU"));
  for (const auto v : every_variant()) {
    simt::Device dev;
    const auto got = gg::run_bfs(dev, g, src, v);
    ASSERT_EQ(got.level, ref.level) << gg::variant_name(v);
  }
}

TEST(EngineEdge, SingleNodeGraph) {
  const auto g = graph::csr_from_edges(1, std::vector<graph::Edge>{});
  expect_all_variants_agree(g, 0);
}

TEST(EngineEdge, SelfLoopOnly) {
  const auto g = graph::csr_from_edges(1, std::vector<graph::Edge>{{0, 0}});
  simt::Device dev;
  const auto got = gg::run_bfs(dev, g, 0, gg::parse_variant("U_T_BM"));
  EXPECT_EQ(got.level[0], 0u);
  EXPECT_LE(got.metrics.iterations.size(), 2u);
}

TEST(EngineEdge, TwoNodeCycle) {
  const auto g =
      graph::csr_from_edges(2, std::vector<graph::Edge>{{0, 1}, {1, 0}});
  expect_all_variants_agree(g, 0);
}

TEST(EngineEdge, StarGraphHubSource) {
  // One node with a huge outdegree: one iteration discovers everything.
  std::vector<graph::Edge> edges;
  for (std::uint32_t i = 1; i < 3000; ++i) edges.push_back({0, i});
  const auto g = graph::csr_from_edges(3000, edges);
  simt::Device dev;
  const auto got = gg::run_bfs(dev, g, 0, gg::parse_variant("U_B_QU"));
  EXPECT_EQ(got.metrics.iterations.size(), 2u);
  for (std::uint32_t i = 1; i < 3000; ++i) EXPECT_EQ(got.level[i], 1u);
}

TEST(EngineEdge, StarGraphLeafSource) {
  std::vector<graph::Edge> edges;
  for (std::uint32_t i = 1; i < 100; ++i) edges.push_back({0, i});
  const auto g = graph::csr_from_edges(100, edges);
  simt::Device dev;
  const auto got = gg::run_bfs(dev, g, 50, gg::parse_variant("U_T_QU"));
  EXPECT_EQ(got.level[50], 0u);
  EXPECT_EQ(got.level[0], graph::kInfinity);
}

TEST(EngineEdge, LongChain) {
  // Worst-case iteration count: a path graph.
  constexpr std::uint32_t kLen = 2000;
  std::vector<graph::Edge> edges;
  for (std::uint32_t i = 0; i + 1 < kLen; ++i) edges.push_back({i, i + 1});
  const auto g = graph::csr_from_edges(kLen, edges);
  simt::Device dev;
  const auto got = gg::run_bfs(dev, g, 0, gg::parse_variant("U_B_QU"));
  EXPECT_EQ(got.level[kLen - 1], kLen - 1);
  EXPECT_EQ(got.metrics.iterations.size(), kLen);
}

TEST(EngineEdge, MultigraphDuplicateEdges) {
  std::vector<graph::Edge> edges{{0, 1}, {0, 1}, {0, 1}, {1, 2}, {1, 2}};
  std::vector<std::uint32_t> w{5, 3, 9, 2, 7};
  const auto g = graph::csr_from_edges(3, edges, w);
  const auto expected = cpu::dijkstra(g, 0);
  EXPECT_EQ(expected.dist[1], 3u);  // min parallel edge
  EXPECT_EQ(expected.dist[2], 5u);
  for (const auto v : every_variant()) {
    simt::Device dev;
    const auto got = gg::run_sssp(dev, g, 0, v);
    ASSERT_EQ(got.dist, expected.dist) << gg::variant_name(v);
  }
}

TEST(EngineEdge, DisconnectedComponents) {
  auto g = graph::gen::erdos_renyi(500, 1500, 3);
  // Append an isolated clique unreachable from component one.
  std::vector<graph::Edge> edges;
  for (std::uint32_t v = 0; v < 500; ++v) {
    for (const auto t : g.neighbors(v)) edges.push_back({v, t});
  }
  for (std::uint32_t i = 500; i < 510; ++i) {
    for (std::uint32_t j = 500; j < 510; ++j) {
      if (i != j) edges.push_back({i, j});
    }
  }
  const auto g2 = graph::csr_from_edges(510, edges);
  simt::Device dev;
  const auto got = gg::run_bfs(dev, g2, 0, gg::parse_variant("U_T_BM"));
  for (std::uint32_t i = 500; i < 510; ++i) {
    EXPECT_EQ(got.level[i], graph::kInfinity);
  }
}

TEST(EngineEdge, AllVariantsAgreeOnRandomGraphs) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const auto g = graph::gen::erdos_renyi(800, 4000, seed);
    expect_all_variants_agree(g, 0);
  }
}

TEST(EngineEdge, AllVariantsAgreeOnSsspRandomGraph) {
  auto g = graph::gen::erdos_renyi(600, 3000, 44);
  graph::assign_uniform_weights(g, 1, 50, 9);
  const auto expected = cpu::dijkstra(g, 0);
  for (const auto v : every_variant()) {
    simt::Device dev;
    const auto got = gg::run_sssp(dev, g, 0, v);
    ASSERT_EQ(got.dist, expected.dist) << gg::variant_name(v);
  }
}

TEST(EngineEdge, MaxIterationsSafetyValveTrips) {
  const auto g = graph::csr_from_edges(
      5, std::vector<graph::Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  simt::Device dev;
  gg::EngineOptions opts;
  opts.max_iterations = 2;  // the chain needs 5
  EXPECT_DEATH(gg::run_bfs(dev, g, 0, gg::parse_variant("U_T_QU"), opts),
               "failed to converge");
}

TEST(EngineEdge, MetricsTotalsAreConsistent) {
  auto g = graph::gen::erdos_renyi(2000, 10000, 5);
  simt::Device dev;
  const auto got = gg::run_bfs(dev, g, 0, gg::parse_variant("U_B_BM"));
  double iter_sum = 0;
  for (const auto& it : got.metrics.iterations) iter_sum += it.time_us;
  // Per-iteration times exclude setup/teardown transfers, so they must sum
  // to less than the total but account for most of it.
  EXPECT_LT(iter_sum, got.metrics.total_us);
  EXPECT_GT(got.metrics.kernel_us, 0.0);
  EXPECT_GT(got.metrics.transfer_us, 0.0);
  EXPECT_GT(got.metrics.total_us,
            got.metrics.kernel_us + got.metrics.transfer_us - 1e-6);
}

TEST(EngineEdge, OrderedBfsWarpMappingSupported) {
  // Warp mapping restriction applies to ordered SSSP only; ordered BFS is
  // level-synchronous and runs under any mapping.
  const auto g = graph::gen::erdos_renyi(500, 2500, 6);
  const auto expected = cpu::bfs(g, 0);
  simt::Device dev;
  const auto got = gg::run_bfs(dev, g, 0, gg::parse_variant("O_W_QU"));
  EXPECT_EQ(got.level, expected.level);
}

TEST(EngineEdge, OrderedSsspWarpMappingRejected) {
  auto g = graph::gen::erdos_renyi(100, 500, 7);
  graph::assign_uniform_weights(g, 1, 10, 1);
  simt::Device dev;
  EXPECT_DEATH(gg::run_sssp(dev, g, 0, gg::parse_variant("O_W_QU")),
               "unordered-only");
}

}  // namespace
