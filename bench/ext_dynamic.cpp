// Extension experiment (ours): dynamic graphs — batched mutations served
// in-place vs a replace-everything baseline (ISSUE 9).
//
// Workload: K disjoint communities (the shape real serving graphs take:
// most deltas are local), a Zipfian BFS read stream, and localized edge
// deltas (one delete + one insert inside a random community) interleaved at
// a fixed mutation fraction. Two configurations serve the identical stream:
//
//   incremental — GraphService::submit_mutation: the resident device CSR is
//     patched in place (dirty regions only), incremental CC advances the
//     component labels, and the result cache keeps every entry whose source
//     component the delta does not touch (svc.cache.delta_keep).
//   replace     — the pre-ISSUE-9 recipe: every delta rebuilds the whole
//     Graph host-side and update_graph re-uploads and re-places it, which
//     also wipes the cache (generation bump).
//
// Measured claims (modeled clock, deterministic):
//  1. *Steady-state speedup*: the incremental configuration's makespan for
//     the mixed stream beats replace-everything (enforced by AGG_CHECK).
//  2. *Exactness*: every read answer is byte-identical between the two
//     configurations.
#include <algorithm>
#include <cstdio>
#include <optional>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/prng.h"
#include "common/table.h"
#include "graph/delta.h"
#include "service/graph_service.h"

namespace {

constexpr std::uint32_t kCommunities = 24;
constexpr std::uint32_t kCommunitySize = 96;
constexpr std::size_t kReads = 224;
constexpr double kMutateFraction = 0.125;

graph::Csr community_graph() {
  agg::Prng prng(1234);
  std::vector<graph::Edge> edges;
  for (std::uint32_t c = 0; c < kCommunities; ++c) {
    const graph::NodeId base = c * kCommunitySize;
    // A ring plus random chords: connected, sparse, delta-tolerant.
    for (graph::NodeId v = 0; v < kCommunitySize; ++v) {
      edges.push_back({base + v, base + (v + 1) % kCommunitySize});
      edges.push_back({base + (v + 1) % kCommunitySize, base + v});
    }
    for (int i = 0; i < 3 * static_cast<int>(kCommunitySize); ++i) {
      const auto u = static_cast<graph::NodeId>(prng.bounded(kCommunitySize));
      const auto v = static_cast<graph::NodeId>(prng.bounded(kCommunitySize));
      if (u != v) edges.push_back({base + u, base + v});
    }
  }
  return graph::csr_from_edges(kCommunities * kCommunitySize, edges);
}

struct Op {
  std::optional<graph::EdgeDelta> delta;  // set: mutation; unset: read
  graph::NodeId source = 0;
};

// The shared op stream: deltas are generated against a mirror CSR evolved
// in stream order, so both configurations apply the identical sequence.
std::vector<Op> make_stream(const graph::Csr& start) {
  agg::Prng prng(55);
  const agg::PowerLawSampler zipf(1.0, 1, start.num_nodes);
  graph::Csr mirror = start;
  std::vector<Op> ops;
  std::size_t reads = 0;
  while (reads < kReads) {
    Op op;
    if (prng.bernoulli(kMutateFraction)) {
      const graph::NodeId base =
          static_cast<graph::NodeId>(prng.bounded(kCommunities)) *
          kCommunitySize;
      const auto a = static_cast<graph::NodeId>(prng.bounded(kCommunitySize));
      auto b = static_cast<graph::NodeId>(prng.bounded(kCommunitySize));
      if (b == a) b = (b + 1) % kCommunitySize;
      graph::EdgeDelta d;
      if (mirror.row_offsets[base + a + 1] > mirror.row_offsets[base + a]) {
        d.deletes.push_back(
            {base + a, mirror.col_indices[mirror.row_offsets[base + a]]});
      }
      d.inserts.push_back({base + a, base + b});
      mirror = graph::apply_delta(mirror, d);
      op.delta = std::move(d);
    } else {
      op.source = static_cast<graph::NodeId>(zipf.sample(prng) - 1);
      ++reads;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

svc::ServiceOptions service_options() {
  svc::ServiceOptions opts;
  opts.concurrency = 4;
  opts.queue_capacity = 1 << 16;
  opts.cache_bytes = 64ull << 20;
  return opts;
}

struct RunResult {
  double warm_us = 0;       // makespan of the cache-warming read pass
  double steady_us = 0;     // makespan of the mixed read/mutate stream
  std::vector<std::vector<std::uint32_t>> answers;  // per read, in order
  std::uint64_t cache_hits = 0;
  std::uint64_t delta_kept = 0;
};

RunResult run_config(const graph::Csr& start, const std::vector<Op>& ops,
                     bool incremental) {
  svc::GraphService service(service_options());
  graph::Csr mirror = start;
  const svc::GraphId gid =
      service.add_graph(adaptive::Graph::from_csr(graph::Csr(start)));

  auto read = [&](graph::NodeId src) {
    svc::QueryRequest req;
    req.graph = gid;
    req.algo = svc::Algo::bfs;
    req.source = src;
    AGG_CHECK(service.submit(std::move(req)).has_value());
  };

  // Warm pass: replay every distinct read source once to populate the
  // cache — steady-state serving, not cold-start, is what the two
  // configurations differ on.
  {
    std::vector<graph::NodeId> uniq;
    for (const Op& op : ops) {
      if (!op.delta) uniq.push_back(op.source);
    }
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    for (const auto s : uniq) read(s);
    for (const auto& out : service.drain()) AGG_CHECK(out.ok());
  }

  RunResult r;
  r.warm_us = service.makespan_us();
  const std::uint64_t hits0 = service.result_cache().stats().hits;

  for (const Op& op : ops) {
    if (op.delta) {
      if (incremental) {
        AGG_CHECK(service.submit_mutation(gid, *op.delta).has_value());
      } else {
        // Replace-everything: drain in-flight work (update_graph applies
        // immediately, outside the queue), rebuild host-side, re-place.
        for (const auto& out : service.drain()) {
          AGG_CHECK(out.ok());
          if (!out.mutation) {
            r.answers.push_back(
                std::get<adaptive::BfsResult>(out.payload).level);
          }
        }
        mirror = graph::apply_delta(mirror, *op.delta);
        service.update_graph(gid, adaptive::Graph::from_csr(graph::Csr(mirror)));
      }
    } else {
      read(op.source);
    }
  }
  for (const auto& out : service.drain()) {
    AGG_CHECK(out.ok());
    if (!out.mutation) {
      r.answers.push_back(std::get<adaptive::BfsResult>(out.payload).level);
    }
  }
  r.steady_us = service.makespan_us() - r.warm_us;
  r.cache_hits = service.result_cache().stats().hits - hits0;
  r.delta_kept = service.result_cache().stats().delta_kept;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Dynamic graphs: in-place batched mutations "
                     "(incremental patch + delta-aware cache) vs a "
                     "replace-everything baseline on a mixed stream."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Extension - dynamic graphs",
      "Modeled steady-state makespan of a mixed Zipf-read / localized-delta "
      "stream over a community graph: GraphService::submit_mutation "
      "(incremental device patch, delta-aware cache invalidation) vs "
      "update_graph replace-everything.",
      opts);

  const graph::Csr start = community_graph();
  const std::vector<Op> ops = make_stream(start);
  std::size_t n_mut = 0;
  for (const Op& op : ops) n_mut += op.delta.has_value();

  const RunResult inc = run_config(start, ops, /*incremental=*/true);
  const RunResult rep = run_config(start, ops, /*incremental=*/false);

  AGG_CHECK_MSG(inc.answers.size() == rep.answers.size(),
                "read counts diverged between configurations");
  // The baseline drains at every mutation, the incremental path at the end,
  // so completion order differs; answers are keyed by source replay order
  // per segment — compare as sorted multisets for exactness.
  {
    auto a = inc.answers;
    auto b = rep.answers;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    AGG_CHECK_MSG(a == b, "answers diverged between configurations");
  }

  const double qps_inc =
      static_cast<double>(kReads) / (inc.steady_us / 1e6);
  const double qps_rep =
      static_cast<double>(kReads) / (rep.steady_us / 1e6);
  agg::Table table({"config", "reads", "deltas", "steady (ms)", "QPS",
                    "cache hits", "delta kept", "exact"});
  table.add_row({"incremental", std::to_string(kReads), std::to_string(n_mut),
                 agg::Table::fmt(inc.steady_us / 1000.0, 3),
                 agg::Table::fmt(qps_inc, 0), std::to_string(inc.cache_hits),
                 std::to_string(inc.delta_kept), "yes"});
  table.add_row({"replace-all", std::to_string(kReads), std::to_string(n_mut),
                 agg::Table::fmt(rep.steady_us / 1000.0, 3),
                 agg::Table::fmt(qps_rep, 0), std::to_string(rep.cache_hits),
                 std::to_string(rep.delta_kept), "yes"});
  std::printf("%s\n", table.render().c_str());
  std::printf("steady-state speedup (replace/incremental): %.2fx\n",
              rep.steady_us / inc.steady_us);

  AGG_CHECK_MSG(inc.delta_kept > 0,
                "delta-aware invalidation kept no cache entries");
  AGG_CHECK_MSG(inc.steady_us < rep.steady_us,
                "incremental mutation did not beat replace-everything");
  return 0;
}
