// Reproduces Figure 12: processing speed (million nodes per second) of the
// best GPU implementation of BFS and SSSP on each dataset.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"

namespace {

struct Best {
  gg::Variant variant;
  double nodes_per_sec = 0;
};

Best best_speed(bench::Algo algo, const graph::gen::Dataset& d,
                const std::vector<std::uint32_t>& expected) {
  // The paper's metric is nodes per second: reached nodes over end-to-end
  // time. BFS beats SSSP on every dataset "due to its faster convergence"
  // (re-relaxations make SSSP spend more time on the same node set).
  std::uint64_t reached = 0;
  for (const auto v : expected) reached += v != graph::kInfinity;
  Best best;
  for (const gg::Variant v : gg::all_variants()) {
    const auto run = bench::run_static(algo, d, v, /*cpu_us=*/1.0, expected);
    const double speed = static_cast<double>(reached) / run.gpu_us * 1e6;
    if (speed > best.nodes_per_sec) {
      best.nodes_per_sec = speed;
      best.variant = v;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Reproduces paper Figure 12: processing speed (M nodes/s) "
                     "of the best BFS and SSSP implementation per dataset."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Figure 12 - processing speed of the best implementation",
      "Paper shape: BFS is faster than SSSP on every dataset (faster "
      "convergence); scale-free datasets reach the highest rates.",
      opts);

  agg::Table table({"Network", "BFS (M nodes/s)", "BFS best", "SSSP (M nodes/s)",
                    "SSSP best"});
  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    const auto bfs_base = bench::cpu_baseline_bfs(d);
    const auto sssp_base = bench::cpu_baseline_sssp(d);
    const auto bfs = best_speed(bench::Algo::bfs, d, bfs_base.bfs_level);
    const auto sssp = best_speed(bench::Algo::sssp, d, sssp_base.sssp_dist);
    table.add_row({d.name, agg::Table::fmt(bfs.nodes_per_sec / 1e6, 2),
                   gg::variant_name(bfs.variant),
                   agg::Table::fmt(sssp.nodes_per_sec / 1e6, 2),
                   gg::variant_name(sssp.variant)});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
