// Shared infrastructure for the experiment benches: dataset caching, common
// flags, CPU-baseline pricing, and the static-variant sweep used by the
// speedup tables.
//
// Every bench accepts:
//   --scale=<f>       fraction of the paper's dataset sizes (default 1.0)
//   --quick           shorthand for --scale=0.2
//   --datasets=a,b    comma-separated subset (CO-road,CiteSeer,p2p,Amazon,Google,SNS)
//   --cache=<dir>     dataset cache directory (default .dataset-cache)
//   --sim-threads=<n> host worker threads for the simulator's parallel launch
//                     path (overrides SIMT_THREADS; default hardware concurrency)
//   --trace-out=<f>   write a trace of the bench's runs (flushed at exit)
//   --trace-format=<f> chrome (timeline, default) | jsonl (decision log)
//   --metrics-out=<f> write the metrics-counter registry as JSON at exit
#pragma once

#include <string>
#include <vector>

#include "common/cli.h"
#include "gpu_graph/engine_common.h"
#include "gpu_graph/metrics.h"
#include "gpu_graph/variant.h"
#include "graph/gen/datasets.h"
#include "simt/device.h"

namespace bench {

struct Options {
  double scale = 1.0;
  std::vector<graph::gen::DatasetId> datasets;
  std::string cache_dir = ".dataset-cache";
};

Options parse_common(const agg::Cli& cli);

// Generates the dataset (or loads it from the binary cache) at the given
// scale; the cache key includes the scale.
graph::gen::Dataset load_dataset(graph::gen::DatasetId id, double scale,
                                 const std::string& cache_dir);
std::vector<graph::gen::Dataset> load_datasets(const Options& opts);

// Serial CPU baseline, priced with the deterministic cost model (the runs
// also provide the expected results used to verify the GPU outputs).
struct CpuBaseline {
  double bfs_us = 0;
  double sssp_us = 0;
  std::vector<std::uint32_t> bfs_level;
  std::vector<std::uint32_t> sssp_dist;
};
CpuBaseline cpu_baseline_bfs(const graph::gen::Dataset& d);
CpuBaseline cpu_baseline_sssp(const graph::gen::Dataset& d);

enum class Algo { bfs, sssp };

// One static GPU implementation run; result verified against `expected`
// (abort on mismatch — a bench must never report numbers for wrong output).
struct VariantRun {
  gg::Variant variant;
  double gpu_us = 0;
  double speedup = 0;  // cpu_us / gpu_us
  gg::TraversalMetrics metrics;
};
VariantRun run_static(Algo algo, const graph::gen::Dataset& d, gg::Variant v,
                      double cpu_us, const std::vector<std::uint32_t>& expected);

// All eight variants in table order.
std::vector<VariantRun> run_all_static(Algo algo, const graph::gen::Dataset& d,
                                       double cpu_us,
                                       const std::vector<std::uint32_t>& expected);

// Standard banner naming the paper artifact a bench reproduces.
void print_banner(const char* artifact, const char* description,
                  const Options& opts);

}  // namespace bench
