// Ablation (ours): validates the Sec. VI.A design choice of restricting the
// adaptive pool to unordered variants. Compares the adaptive runtime against
// the best *ordered* static implementation per dataset and algorithm.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "runtime/adaptive_engine.h"

namespace {

void run_algo(bench::Algo algo, const bench::Options& opts) {
  agg::Table table({"Network", "best ordered", "t_ordered (ms)", "adaptive (ms)",
                    "ordered/adaptive"});
  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    const auto base = algo == bench::Algo::bfs ? bench::cpu_baseline_bfs(d)
                                               : bench::cpu_baseline_sssp(d);
    const auto& expected =
        algo == bench::Algo::bfs ? base.bfs_level : base.sssp_dist;

    bench::VariantRun best;
    best.gpu_us = 0;
    for (const gg::Variant v : gg::all_variants()) {
      if (v.ordering != gg::Ordering::ordered) continue;
      const auto run = bench::run_static(algo, d, v, 1.0, expected);
      if (best.gpu_us == 0 || run.gpu_us < best.gpu_us) best = run;
    }

    simt::Device dev;
    double adaptive_us = 0;
    if (algo == bench::Algo::bfs) {
      auto r = rt::adaptive_bfs(dev, d.csr, d.source);
      AGG_CHECK(r.level == expected);
      adaptive_us = r.metrics.total_us;
    } else {
      auto r = rt::adaptive_sssp(dev, d.csr, d.source);
      AGG_CHECK(r.dist == expected);
      adaptive_us = r.metrics.total_us;
    }

    table.add_row({d.name, gg::variant_name(best.variant),
                   agg::Table::fmt(best.gpu_us / 1000.0, 2),
                   agg::Table::fmt(adaptive_us / 1000.0, 2),
                   agg::Table::fmt(best.gpu_us / adaptive_us, 2)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Ablation: adaptive (unordered pool) vs best ordered "
                     "static implementation."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Ablation - unordered adaptive pool vs ordered implementations",
      "Paper Sec. VI.A: unordered implementations generally perform better; "
      "the adaptive framework therefore only uses unordered variants. The "
      "last column >= 1 supports that choice.",
      opts);

  std::printf(">>> BFS\n");
  run_algo(bench::Algo::bfs, opts);
  std::printf(">>> SSSP\n");
  run_algo(bench::Algo::sssp, opts);
  return 0;
}
