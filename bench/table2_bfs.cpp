// Reproduces Table 2: speedup of each of the eight GPU BFS implementations
// over the serial CPU baseline, per dataset. The best implementation per
// dataset is bracketed (the paper greys it).
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Reproduces paper Table 2: BFS speedups (GPU over serial "
                     "CPU) for O/U x T/B x BM/QU."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Table 2 - BFS speedup over serial CPU",
      "Paper shape: best variant differs per dataset (CO-road & CiteSeer favor "
      "U_B_QU; Amazon & p2p favor U_T_BM); ordered ~ unordered for BFS; the "
      "large-diameter CO-road stays below 1x.",
      opts);

  std::vector<std::string> header{"Network"};
  for (const auto v : gg::all_variants()) header.push_back(gg::variant_name(v));
  agg::Table table(header);

  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    const auto base = bench::cpu_baseline_bfs(d);
    const auto runs =
        bench::run_all_static(bench::Algo::bfs, d, base.bfs_us, base.bfs_level);

    std::vector<std::string> row{d.name};
    int best = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      row.push_back(agg::Table::fmt(runs[i].speedup, 2));
      if (runs[i].speedup > runs[best].speedup) best = static_cast<int>(i);
    }
    table.add_row(std::move(row), best + 1);
    std::printf("  %-9s cpu(model) %8.2f ms | best %s at %.2f ms GPU\n",
                d.name.c_str(), base.bfs_us / 1000.0,
                gg::variant_name(runs[best].variant).c_str(),
                runs[best].gpu_us / 1000.0);
  }
  std::printf("\n%s\n", table.render().c_str());
  return 0;
}
