// Extension bench: direction-optimizing traversal (push vs pull vs the
// Beamer push<->pull controller) for BFS and SSSP on every dataset. The
// paper's four static dimensions all scatter along out-edges; this measures
// what the 4th adaptive dimension buys on frontier-heavy (heavy-tailed)
// graphs, where one or two saturated iterations dominate the traversal and
// gathering along in-edges skips the contended atomics.
//
// Times are measured in the serving regime (cf. Session pinning): the CSR —
// and, for runs that may gather, the CSC — is device-resident before the
// traversal starts, so the columns compare traversal policy, not one-time
// uploads. A one-shot pull run would additionally pay the transpose upload.
//
// Acceptance (tracked in results/BENCH_direction.json via run_benches.sh):
// direction-optimizing BFS beats always-push adaptive on at least one
// heavy-tailed dataset and never loses more than 5% anywhere. Every run is
// verified against the serial CPU oracle before its time is reported.
//
// Extra flag: --json-out=FILE writes the per-dataset numbers as JSON.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "gpu_graph/device_graph.h"
#include "graph/graph_stats.h"
#include "graph/transform.h"
#include "runtime/adaptive_engine.h"
#include "trace/json_writer.h"

namespace {

struct DirRun {
  double us = 0;
  std::uint32_t pull_iterations = 0;
  std::uint32_t flips = 0;  // direction changes along the trajectory
};

DirRun run_one(bench::Algo algo, const graph::gen::Dataset& d,
               const graph::Csr& csc, gg::Direction direction,
               const std::vector<std::uint32_t>& expected) {
  rt::AdaptiveOptions opts;
  opts.direction = direction;
  simt::Device dev;
  const bool with_weights = algo == bench::Algo::sssp;
  auto dg = gg::DeviceGraph::upload(dev, d.csr, with_weights);
  std::optional<graph::Csr> scratch;
  if (direction != gg::Direction::push) {
    // Serving regime: the gather view is pinned before the query, like a
    // Session would keep it across repeated traversals.
    gg::ensure_csc_resident(dev, dg, d.csr, &csc, with_weights, scratch);
    opts.engine.csc = &csc;
  }
  gg::TraversalMetrics m;
  if (algo == bench::Algo::bfs) {
    auto r = rt::adaptive_bfs(dev, dg, d.csr, d.source, opts);
    AGG_CHECK(r.level == expected);
    m = std::move(r.metrics);
  } else {
    auto r = rt::adaptive_sssp(dev, dg, d.csr, d.source, opts);
    AGG_CHECK(r.dist == expected);
    m = std::move(r.metrics);
  }
  dg.release(dev);
  DirRun out;
  out.us = m.total_us;
  gg::Direction prev = gg::Direction::push;
  for (const auto& it : m.iterations) {
    if (it.variant.direction == gg::Direction::pull) ++out.pull_iterations;
    if (it.variant.direction != prev) ++out.flips;
    prev = it.variant.direction;
  }
  return out;
}

struct Row {
  std::string dataset;
  const char* algo = "";
  bool heavy_tailed = false;
  DirRun push, pull, dopt;
};

void run_algo(bench::Algo algo, const bench::Options& opts,
              std::vector<Row>& rows) {
  agg::Table table({"Network", "push (ms)", "pull (ms)", "DO (ms)",
                    "DO pull iters", "DO flips", "DO/push"});
  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    const auto base = algo == bench::Algo::bfs ? bench::cpu_baseline_bfs(d)
                                               : bench::cpu_baseline_sssp(d);
    const auto& expected =
        algo == bench::Algo::bfs ? base.bfs_level : base.sssp_dist;

    Row row;
    row.dataset = d.name;
    row.algo = algo == bench::Algo::bfs ? "bfs" : "sssp";
    // Heavy-tailed degree distribution: the regime pull is built for.
    const auto stats = graph::GraphStats::compute(d.csr);
    row.heavy_tailed = stats.outdeg_stddev > stats.outdeg_avg;
    const graph::Csr csc = graph::build_csc(d.csr);
    row.push = run_one(algo, d, csc, gg::Direction::push, expected);
    row.pull = run_one(algo, d, csc, gg::Direction::pull, expected);
    row.dopt = run_one(algo, d, csc, gg::Direction::adaptive, expected);

    const double vs_push = row.push.us / row.dopt.us;  // >1: DO wins
    table.add_row({d.name, agg::Table::fmt(row.push.us / 1000.0, 2),
                   agg::Table::fmt(row.pull.us / 1000.0, 2),
                   agg::Table::fmt(row.dopt.us / 1000.0, 2),
                   std::to_string(row.dopt.pull_iterations),
                   std::to_string(row.dopt.flips),
                   agg::Table::fmt(vs_push, 2)},
                  vs_push >= 1.0 ? 6 : -1);
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("ext_direction");
  w.key("rows");
  w.begin_array();
  for (const auto& r : rows) {
    w.begin_object();
    w.field("dataset", r.dataset);
    w.field("algo", r.algo);
    w.field("heavy_tailed", r.heavy_tailed);
    w.field("push_us", r.push.us);
    w.field("pull_us", r.pull.us);
    w.field("do_us", r.dopt.us);
    w.field("do_pull_iterations", r.dopt.pull_iterations);
    w.field("do_flips", r.dopt.flips);
    w.field("do_speedup_vs_push", r.push.us / r.dopt.us);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (f) {
    f << w.str() << '\n';
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Push vs pull vs direction-optimizing traversal on every "
                     "dataset; --json-out=FILE for machine-readable results."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Direction-optimizing traversal (extension)",
      "Beamer-style push<->pull controller as a 4th adaptive dimension: flip "
      "to gather when frontier edges dominate the unexplored volume, back to "
      "scatter when the frontier drains.",
      opts);

  std::vector<Row> rows;
  std::printf(">>> BFS\n");
  run_algo(bench::Algo::bfs, opts, rows);
  std::printf(">>> SSSP\n");
  run_algo(bench::Algo::sssp, opts, rows);

  // Acceptance: on BFS, DO wins somewhere heavy-tailed and never loses >5%.
  int heavy_wins = 0;
  int regressions = 0;
  for (const auto& r : rows) {
    if (std::string(r.algo) != "bfs") continue;
    const double ratio = r.push.us / r.dopt.us;
    if (r.heavy_tailed && ratio > 1.0) ++heavy_wins;
    if (ratio < 0.95) ++regressions;
  }
  std::printf("acceptance: DO-BFS beats always-push on %d heavy-tailed "
              "dataset(s); regressions beyond 5%%: %d -> %s\n",
              heavy_wins, regressions,
              heavy_wins >= 1 && regressions == 0 ? "PASS" : "FAIL");

  const std::string json_out = cli.get("json-out", "");
  if (!json_out.empty()) write_json(json_out, rows);
  return heavy_wins >= 1 && regressions == 0 ? 0 : 1;
}
