// Extension experiment (ours): result caching & request collapsing under
// skewed query traffic. Real serving workloads are Zipfian — a few sources
// account for most queries — so a byte-bounded LRU of completed results plus
// collapsing of identical in-flight queries converts repeat work into a
// modeled host copy. Measured claims (modeled clock):
//
//  1. *Warm-cache speedup*: replaying a Zipf(s=1.0) stream of 256 BFS
//     queries against a warmed cache finishes >= 2x faster (modeled
//     makespan) than the same stream with caching and collapsing disabled.
//  2. *Exactness*: every per-query payload served by the cached
//     configuration is byte-identical to the uncached run's answer.
//
// The sweep reports, per skew exponent: uncached makespan, cold-cache
// makespan (misses + insertions + collapsing), warm-cache makespan (pure
// hits), and the observed hit rate. All numbers are deterministic.
//
// Budget: at least 64 MB, grown to hold the stream's distinct payloads —
// a cache smaller than the hot working set degenerates to an LRU scan on
// replay (near-0% hits), which is a provisioning failure, not a caching
// result. The budget used is reported per row.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/prng.h"
#include "common/table.h"
#include "service/graph_service.h"

namespace {

constexpr std::size_t kQueries = 256;

std::vector<graph::NodeId> zipf_stream(double s, std::size_t n_nodes) {
  agg::Prng prng(97);
  const agg::PowerLawSampler sampler(s, 1,
                                     static_cast<std::uint32_t>(n_nodes));
  std::vector<graph::NodeId> sources;
  sources.reserve(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    sources.push_back(static_cast<graph::NodeId>(sampler.sample(prng) - 1));
  }
  return sources;
}

// Submits the stream and drains it, returning outcomes ordered by query id
// so runs with different interleavings compare element-wise.
std::vector<svc::QueryOutcome> run_stream(
    svc::GraphService& service, svc::GraphId gid,
    const std::vector<graph::NodeId>& sources) {
  for (const auto s : sources) {
    svc::QueryRequest req;
    req.graph = gid;
    req.algo = svc::Algo::bfs;
    req.source = s;
    AGG_CHECK(service.submit(std::move(req)));
  }
  auto outcomes = service.drain();
  std::sort(outcomes.begin(), outcomes.end(),
            [](const svc::QueryOutcome& a, const svc::QueryOutcome& b) {
              return a.id < b.id;
            });
  return outcomes;
}

svc::ServiceOptions service_options(std::size_t cache_bytes, bool collapse) {
  svc::ServiceOptions opts;
  opts.concurrency = 4;
  opts.queue_capacity = kQueries;
  opts.cache_bytes = cache_bytes;
  opts.collapse = collapse;
  return opts;
}

// Cache budget sized to the stream's hot set: every distinct source's
// payload (one level per node + bookkeeping) must fit, with headroom, and
// never less than 64 MB.
std::size_t budget_for(const std::vector<graph::NodeId>& sources,
                       std::size_t n_nodes) {
  std::vector<graph::NodeId> uniq(sources);
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  const std::size_t per_entry = n_nodes * sizeof(std::uint32_t) + 4096;
  return std::max<std::size_t>(64ull << 20, 2 * uniq.size() * per_entry);
}

void bench_cache(const std::vector<graph::gen::Dataset>& datasets) {
  agg::Table table({"Network", "zipf s", "cache MB", "no-cache (ms)",
                    "cold (ms)", "warm (ms)", "warm speedup", "hit rate",
                    "exact"});
  for (const auto& d : datasets) {
    for (const double s : {0.8, 1.0, 1.2}) {
      const auto sources = zipf_stream(s, d.csr.num_nodes);
      const std::size_t budget = budget_for(sources, d.csr.num_nodes);

      // Baseline: cache and collapsing off, stream replayed twice; the
      // second pass's makespan delta prices steady-state uncached serving.
      svc::GraphService plain(service_options(0, false));
      svc::GraphId gid =
          plain.add_graph(adaptive::Graph::from_csr(graph::Csr(d.csr)));
      const auto expected = run_stream(plain, gid, sources);
      const double plain_first = plain.makespan_us();
      run_stream(plain, gid, sources);
      const double plain_warm = plain.makespan_us() - plain_first;

      // Cached: first pass populates (cold), second replays from the LRU.
      svc::GraphService cached(service_options(budget, true));
      gid = cached.add_graph(adaptive::Graph::from_csr(graph::Csr(d.csr)));
      const auto cold_out = run_stream(cached, gid, sources);
      const double cold = cached.makespan_us();
      const auto warm_out = run_stream(cached, gid, sources);
      const double warm = cached.makespan_us() - cold;

      bool exact = expected.size() == cold_out.size();
      for (std::size_t i = 0; exact && i < expected.size(); ++i) {
        exact = std::get<adaptive::BfsResult>(expected[i].payload).level ==
                    std::get<adaptive::BfsResult>(cold_out[i].payload).level &&
                std::get<adaptive::BfsResult>(expected[i].payload).level ==
                    std::get<adaptive::BfsResult>(warm_out[i].payload).level;
      }
      AGG_CHECK(exact);

      const auto& st = cached.result_cache().stats();
      const double hit_rate =
          static_cast<double>(st.hits) /
          static_cast<double>(st.hits + st.misses);
      const double speedup = plain_warm / warm;
      if (s == 1.0) AGG_CHECK_MSG(speedup >= 2.0, "warm-cache speedup < 2x");
      table.add_row({d.name, agg::Table::fmt(s, 1),
                     agg::Table::fmt(static_cast<double>(budget >> 20), 0),
                     agg::Table::fmt(plain_warm / 1000.0, 2),
                     agg::Table::fmt(cold / 1000.0, 2),
                     agg::Table::fmt(warm / 1000.0, 2),
                     agg::Table::fmt(speedup, 2),
                     agg::Table::fmt(hit_rate * 100.0, 1) + "%",
                     exact ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Result cache & request collapsing: warm/cold makespan "
                     "vs an uncached baseline on Zipfian query streams."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Extension - GraphService result cache",
      "Modeled makespan of a 256-query Zipfian BFS stream: uncached "
      "baseline vs cold and warm result cache (LRU sized to the hot set, "
      "min 64 MB; collapsing on).",
      opts);

  const auto datasets = bench::load_datasets(opts);

  std::printf("-- Zipf BFS stream: uncached vs cold vs warm cache --\n");
  bench_cache(datasets);
  return 0;
}
