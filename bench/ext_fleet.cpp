// Extension experiment (ours): fleet serving — replication, routing, and
// vertex-cut sharding across N simulated devices (PR-8). Measured claims
// (modeled clock, deterministic at any --sim-threads):
//
//  1. *Replicated scaling*: serving a Zipf(s=1.0) stream of 256 BFS queries
//     from N=1..4 homogeneous replicas improves makespan monotonically, and
//     N=4 is >= 2x faster than N=1 (cache/collapse/batching off, so every
//     query pays its traversal — the speedup is pure routing parallelism).
//  2. *Failover exactness*: the same stream against a 4-device fleet whose
//     device 0 dies mid-run completes every query on the surviving replicas
//     with payloads byte-identical to the healthy single-device run, and no
//     query degrades to the CPU oracle.
//  3. *Sharded serving*: shrinking each device's modeled memory below the
//     graph's working-set footprint forces the vertex-cut placement; the
//     BSP execution over row shards answers every query byte-identically to
//     a single big device.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/prng.h"
#include "common/table.h"
#include "service/graph_service.h"
#include "service/placement.h"

namespace {

constexpr std::size_t kQueries = 256;

std::vector<graph::NodeId> zipf_stream(double s, std::size_t n_nodes) {
  agg::Prng prng(97);
  const agg::PowerLawSampler sampler(s, 1,
                                     static_cast<std::uint32_t>(n_nodes));
  std::vector<graph::NodeId> sources;
  sources.reserve(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    sources.push_back(static_cast<graph::NodeId>(sampler.sample(prng) - 1));
  }
  return sources;
}

// Submits the stream and drains it, returning outcomes ordered by query id
// so runs with different routings compare element-wise.
std::vector<svc::QueryOutcome> run_stream(
    svc::GraphService& service, svc::GraphId gid,
    const std::vector<graph::NodeId>& sources) {
  for (const auto s : sources) {
    svc::QueryRequest req;
    req.graph = gid;
    req.algo = svc::Algo::bfs;
    req.source = s;
    AGG_CHECK(service.submit(std::move(req)));
  }
  auto outcomes = service.drain();
  std::sort(outcomes.begin(), outcomes.end(),
            [](const svc::QueryOutcome& a, const svc::QueryOutcome& b) {
              return a.id < b.id;
            });
  return outcomes;
}

// Cache, collapsing and MS-BFS batching all off: each query pays its full
// traversal, so makespan measures routing parallelism alone.
svc::ServiceOptions service_options() {
  svc::ServiceOptions opts;
  opts.concurrency = 4;
  opts.queue_capacity = kQueries;
  opts.cache_bytes = 0;
  opts.collapse = false;
  opts.batch_bfs = false;
  return opts;
}

bool payloads_equal(const std::vector<svc::QueryOutcome>& a,
                    const std::vector<svc::QueryOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].status != adaptive::Status::ok ||
        b[i].status != adaptive::Status::ok) {
      return false;
    }
    if (std::get<adaptive::BfsResult>(a[i].payload).level !=
        std::get<adaptive::BfsResult>(b[i].payload).level) {
      return false;
    }
  }
  return true;
}

void bench_scaling(const std::vector<graph::gen::Dataset>& datasets) {
  agg::Table table({"Network", "N=1 (ms)", "N=2 (ms)", "N=3 (ms)", "N=4 (ms)",
                    "N=4 speedup", "exact"});
  for (const auto& d : datasets) {
    const auto sources = zipf_stream(1.0, d.csr.num_nodes);
    std::vector<double> makespans;
    std::vector<svc::QueryOutcome> reference;
    bool exact = true;
    for (std::size_t n = 1; n <= 4; ++n) {
      svc::GraphService service(service_options(),
                                simt::ClusterSpec::homogeneous(n));
      const svc::GraphId gid =
          service.add_graph(adaptive::Graph::from_csr(graph::Csr(d.csr)));
      const auto outcomes = run_stream(service, gid, sources);
      makespans.push_back(service.makespan_us());
      if (n == 1) {
        reference = outcomes;
      } else {
        exact = exact && payloads_equal(reference, outcomes);
      }
    }
    for (std::size_t n = 1; n < makespans.size(); ++n) {
      AGG_CHECK_MSG(makespans[n] <= makespans[n - 1] + 1e-9,
                    "fleet makespan not monotone in N");
    }
    const double speedup = makespans.front() / makespans.back();
    AGG_CHECK_MSG(speedup >= 2.0, "replicated serving < 2x at N=4");
    AGG_CHECK_MSG(exact, "replica payload mismatch");
    table.add_row({d.name, agg::Table::fmt(makespans[0] / 1000.0, 2),
                   agg::Table::fmt(makespans[1] / 1000.0, 2),
                   agg::Table::fmt(makespans[2] / 1000.0, 2),
                   agg::Table::fmt(makespans[3] / 1000.0, 2),
                   agg::Table::fmt(speedup, 2), exact ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());
}

void bench_failover(const std::vector<graph::gen::Dataset>& datasets) {
  agg::Table table({"Network", "healthy (ms)", "dev0 dies (ms)", "failovers",
                    "degraded", "exact"});
  for (const auto& d : datasets) {
    const auto sources = zipf_stream(1.0, d.csr.num_nodes);

    svc::GraphService healthy(service_options(),
                              simt::ClusterSpec::homogeneous(1));
    svc::GraphId gid =
        healthy.add_graph(adaptive::Graph::from_csr(graph::Csr(d.csr)));
    const auto expected = run_stream(healthy, gid, sources);

    svc::GraphService faulty(service_options(),
                             simt::ClusterSpec::homogeneous(4));
    gid = faulty.add_graph(adaptive::Graph::from_csr(graph::Csr(d.csr)));
    // Device 0 permanently dies after its 5th fault-site visit; replicas
    // 1..3 absorb its traffic.
    faulty.set_fault_plan(simt::FaultPlan::parse("dead.after=5"), 0);
    const auto outcomes = run_stream(faulty, gid, sources);

    std::size_t failovers = 0, degraded = 0;
    for (const auto& out : outcomes) {
      failovers += out.failover;
      degraded += out.degraded;
    }
    const bool exact = payloads_equal(expected, outcomes);
    AGG_CHECK_MSG(exact, "failover payload mismatch");
    AGG_CHECK_MSG(failovers > 0, "dead device produced no failovers");
    AGG_CHECK_MSG(degraded == 0,
                  "query degraded to CPU despite healthy replicas");
    table.add_row({d.name, agg::Table::fmt(healthy.makespan_us() / 1000.0, 2),
                   agg::Table::fmt(faulty.makespan_us() / 1000.0, 2),
                   agg::Table::fmt(static_cast<double>(failovers), 0),
                   agg::Table::fmt(static_cast<double>(degraded), 0),
                   exact ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());
}

void bench_sharded(const std::vector<graph::gen::Dataset>& datasets) {
  agg::Table table({"Network", "CSR MB", "device MB", "placement",
                    "single (ms)", "sharded (ms)", "exact"});
  for (const auto& d : datasets) {
    const auto sources = zipf_stream(1.0, d.csr.num_nodes);

    svc::GraphService single(service_options(),
                             simt::ClusterSpec::homogeneous(1));
    svc::GraphId gid =
        single.add_graph(adaptive::Graph::from_csr(graph::Csr(d.csr)));
    const auto expected = run_stream(single, gid, sources);

    // Devices too small for a full replica (placement needs
    // headroom * csr_bytes free) but big enough for one quarter-cut shard:
    // the planner must choose the vertex-cut placement.
    const std::uint64_t bytes = svc::device_graph_bytes(d.csr, true);
    simt::DeviceProps small = simt::DeviceProps::fermi_c2070();
    small.global_mem_bytes = bytes + (bytes >> 2);
    svc::GraphService sharded(service_options(),
                              simt::ClusterSpec::homogeneous(4, small));
    gid = sharded.add_graph(adaptive::Graph::from_csr(graph::Csr(d.csr)));
    AGG_CHECK_MSG(!sharded.placement(gid).replicated(),
                  "over-budget graph was not sharded");
    const auto outcomes = run_stream(sharded, gid, sources);

    const bool exact = payloads_equal(expected, outcomes);
    AGG_CHECK_MSG(exact, "sharded payload mismatch");
    table.add_row(
        {d.name, agg::Table::fmt(static_cast<double>(bytes >> 20), 0),
         agg::Table::fmt(static_cast<double>(small.global_mem_bytes >> 20), 0),
         sharded.placement(gid).describe(),
         agg::Table::fmt(single.makespan_us() / 1000.0, 2),
         agg::Table::fmt(sharded.makespan_us() / 1000.0, 2),
         exact ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Fleet serving: replicated makespan scaling N=1..4, "
                     "replica failover, and vertex-cut sharded execution."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Extension - fleet serving & placement",
      "Modeled makespan of a 256-query Zipf(1.0) BFS stream served by "
      "N=1..4 simulated replicas; failover under a dead device; vertex-cut "
      "sharding when the graph exceeds one device's memory.",
      opts);

  const auto datasets = bench::load_datasets(opts);

  std::printf("-- Replicated serving: makespan vs fleet size --\n");
  bench_scaling(datasets);
  std::printf("-- Replica failover: device 0 dies mid-stream --\n");
  bench_failover(datasets);
  std::printf("-- Vertex-cut sharding: graph exceeds device memory --\n");
  bench_sharded(datasets);
  return 0;
}
