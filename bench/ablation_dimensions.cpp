// Ablation (ours): how much each decision dimension contributes. Runs the
// adaptive SSSP with (a) the full decision space, (b) the mapping dimension
// frozen (always thread / always block), and (c) the representation
// dimension frozen (always bitmap / always queue).
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "gpu_graph/sssp_engine.h"
#include "runtime/adaptive_engine.h"

namespace {

double run_with(const graph::gen::Dataset& d,
                const gg::VariantSelector& selector) {
  simt::Device dev;
  gg::EngineOptions opts;
  opts.monitor_interval = 1;
  const auto r = gg::run_sssp(dev, d.csr, d.source, selector, opts);
  return r.metrics.total_us;
}

}  // namespace

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Ablation: adaptive SSSP with one decision dimension "
                     "frozen at a time."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Ablation - contribution of the decision dimensions (SSSP)",
      "Freezing a dimension shows what the full two-dimensional decision "
      "space (Fig. 11) buys over one-dimensional policies.",
      opts);

  const auto thresholds =
      rt::Thresholds::for_device(simt::DeviceProps::fermi_c2070());
  const auto full = rt::make_adaptive_selector(thresholds);

  auto frozen_mapping = [&](gg::Mapping m) {
    return [=](const gg::SelectorInput& in) {
      auto v = full(in);
      v.mapping = m;
      return v;
    };
  };
  auto frozen_repr = [&](gg::WorksetRepr w) {
    return [=](const gg::SelectorInput& in) {
      auto v = full(in);
      v.repr = w;
      return v;
    };
  };

  agg::Table table({"Network", "full (ms)", "thread-only", "block-only",
                    "bitmap-only", "queue-only"});
  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    const double t_full = run_with(d, full);
    auto rel = [&](double t) {
      return agg::Table::fmt(t / t_full, 2) + "x";
    };
    table.add_row({d.name, agg::Table::fmt(t_full / 1000.0, 2),
                   rel(run_with(d, frozen_mapping(gg::Mapping::thread))),
                   rel(run_with(d, frozen_mapping(gg::Mapping::block))),
                   rel(run_with(d, frozen_repr(gg::WorksetRepr::bitmap))),
                   rel(run_with(d, frozen_repr(gg::WorksetRepr::queue)))});
  }
  std::printf("%s\n(frozen columns are relative to the full decision space; "
              ">1.00x means the frozen policy is slower)\n",
              table.render().c_str());
  return 0;
}
