// Extension experiment (ours): PageRank by residual push under the
// framework — speedups of the unordered + warp variants and the adaptive
// runtime over serial power iteration, per dataset (the paper's web-search
// motivation: "rank the results of queries").
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "cpu/cpu_cost_model.h"
#include "cpu/pagerank_serial.h"
#include "gpu_graph/pagerank_engine.h"
#include "runtime/adaptive_engine.h"

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("PageRank: GPU variants + adaptive vs serial power "
                     "iteration."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Extension - PageRank (residual push)",
      "The working set starts at n and decays with the residuals; speedups "
      "over serial power iteration (modeled CPU).",
      opts);

  std::vector<std::string> header{"Network"};
  for (const auto v : gg::unordered_variants()) header.push_back(gg::variant_name(v));
  header.push_back("U_W_QU");
  header.push_back("adaptive");
  agg::Table table(header);

  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    const auto expected = cpu::pagerank(d.csr);
    // Price power iteration with the BFS edge-scan constants (sequential
    // sweeps over the CSR with random writes to the next-rank array).
    cpu::BfsCounts counts;
    counts.nodes_popped =
        static_cast<std::uint64_t>(expected.counts.iterations) * d.csr.num_nodes;
    counts.edges_scanned = expected.counts.edge_updates;
    const double cpu_us =
        cpu::CpuModel::core_i7().bfs_time_us(counts, d.csr.num_nodes);

    auto check = [&](const std::vector<float>& rank) {
      double diff = 0, norm = 0;
      for (std::size_t i = 0; i < rank.size(); ++i) {
        diff += std::abs(static_cast<double>(rank[i]) - expected.rank[i]);
        norm += expected.rank[i];
      }
      AGG_CHECK_MSG(diff / norm < 5e-3, "PageRank drifted from power iteration");
    };

    std::vector<std::string> row{d.name};
    int best = 0, col = 0;
    double best_speedup = 0;
    auto record = [&](double gpu_us) {
      const double s = cpu_us / gpu_us;
      row.push_back(agg::Table::fmt(s, 2));
      ++col;
      if (s > best_speedup) {
        best_speedup = s;
        best = col;
      }
    };
    for (const auto v : gg::unordered_variants()) {
      simt::Device dev;
      const auto r = gg::run_pagerank(dev, d.csr, v);
      check(r.rank);
      record(r.metrics.total_us);
    }
    {
      simt::Device dev;
      const auto r =
          gg::run_pagerank(dev, d.csr, gg::parse_variant("U_W_QU"));
      check(r.rank);
      record(r.metrics.total_us);
    }
    {
      simt::Device dev;
      const auto r = rt::adaptive_pagerank(dev, d.csr);
      check(r.rank);
      record(r.metrics.total_us);
    }
    std::printf("  %-9s cpu(model) %8.2f ms (%u power iterations)\n",
                d.name.c_str(), cpu_us / 1000.0, expected.counts.iterations);
    table.add_row(std::move(row), best);
  }
  std::printf("\n%s\n", table.render().c_str());
  return 0;
}
