// Reproduces the Section VI.E monitoring-overhead study: adaptive SSSP
// execution time as a function of the working-set sampling interval R (the
// inspector measures |WS| and re-decides every R iterations).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "runtime/tuner.h"

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Sec. VI.E experiment: adaptive SSSP time vs sampling "
                     "interval R."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Sampling-rate study - adaptive SSSP time vs monitoring interval R",
      "Trade-off (Sec. VI.E): R=1 pays the monitoring kernel every iteration; "
      "large R makes decisions stale. The best R is in between.",
      opts);

  const std::vector<std::uint32_t> intervals{1, 2, 4, 8, 16, 32};
  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    simt::Device dev;
    const auto sweep = rt::sweep_monitor_interval(dev, d.csr, d.source, intervals,
                                                  rt::TunedAlgorithm::sssp);
    std::printf("--- %s (best R = %.0f at %.2f ms) ---\n", d.name.c_str(),
                sweep.best_value, sweep.best_time_us / 1000.0);
    double worst = 0;
    for (const auto& p : sweep.curve) worst = std::max(worst, p.time_us);
    for (const auto& p : sweep.curve) {
      const auto len = static_cast<int>(50.0 * p.time_us / worst);
      std::printf("  R=%2.0f %8.2f ms |%s\n", p.value, p.time_us / 1000.0,
                  std::string(static_cast<std::size_t>(len), '#').c_str());
    }
    std::printf("\n");
  }
  return 0;
}
