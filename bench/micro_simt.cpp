// Microbenchmarks of the SIMT simulator substrate itself (google-benchmark):
// tracing throughput, coalescing analysis, sparse-launch accounting, and the
// reduction primitive. These bound the simulation cost per modeled event and
// guard against regressions that would make the experiment benches unusable.
#include <benchmark/benchmark.h>

#include <memory>

#include "simt/exec_pool.h"
#include "simt/launch.h"
#include "simt/primitives.h"
#include "trace/chrome_trace.h"
#include "trace/trace_sink.h"

namespace {

constexpr simt::Site kLoad{0, "load"};
constexpr simt::Site kOps{1, "ops"};
constexpr simt::Site kAtomic{2, "atomic"};

void BM_DenseLaunchCompute(benchmark::State& state) {
  simt::Device dev;
  const auto threads = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    simt::launch(dev, "compute", simt::GridSpec::dense(threads, 256),
                 [](simt::ThreadCtx& ctx) { ctx.compute(4, kOps); });
  }
  state.SetItemsProcessed(state.iterations() * threads);
}
BENCHMARK(BM_DenseLaunchCompute)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_CoalescedLoads(benchmark::State& state) {
  simt::Device dev;
  const auto threads = static_cast<std::uint64_t>(state.range(0));
  auto buf = dev.alloc<std::uint32_t>(threads, "buf");
  for (auto _ : state) {
    simt::launch(dev, "loads", simt::GridSpec::dense(threads, 256),
                 [&](simt::ThreadCtx& ctx) {
                   benchmark::DoNotOptimize(ctx.load(buf, ctx.global_id(), kLoad));
                 });
  }
  state.SetItemsProcessed(state.iterations() * threads);
}
BENCHMARK(BM_CoalescedLoads)->Arg(1 << 14)->Arg(1 << 17);

void BM_ScatteredLoads(benchmark::State& state) {
  simt::Device dev;
  const auto threads = static_cast<std::uint64_t>(state.range(0));
  auto buf = dev.alloc<std::uint32_t>(threads * 64, "buf");
  for (auto _ : state) {
    simt::launch(dev, "scatter", simt::GridSpec::dense(threads, 256),
                 [&](simt::ThreadCtx& ctx) {
                   const std::size_t i = ctx.global_id() * 2654435761u % (threads * 64);
                   benchmark::DoNotOptimize(ctx.load(buf, i, kLoad));
                 });
  }
  state.SetItemsProcessed(state.iterations() * threads);
}
BENCHMARK(BM_ScatteredLoads)->Arg(1 << 14);

void BM_AtomicTally(benchmark::State& state) {
  simt::Device dev;
  auto counter = dev.alloc<std::uint32_t>(1, "counter");
  const auto threads = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    simt::launch(dev, "atomics", simt::GridSpec::dense(threads, 256),
                 [&](simt::ThreadCtx& ctx) {
                   ctx.atomic_add(counter, 0, 1u, kAtomic);
                 });
  }
  state.SetItemsProcessed(state.iterations() * threads);
}
BENCHMARK(BM_AtomicTally)->Arg(1 << 14);

void BM_SparseLaunchAccounting(benchmark::State& state) {
  // One active thread in a grid of `range` threads: measures the analytic
  // accounting cost of predicate-only blocks.
  simt::Device dev;
  const auto total = static_cast<std::uint64_t>(state.range(0));
  auto flags = dev.alloc<std::uint8_t>(total, "flags");
  const std::vector<std::uint32_t> active{static_cast<std::uint32_t>(total / 2)};
  simt::Predicate pred;
  pred.base_addr = flags.base_addr();
  pred.stride = 1;
  for (auto _ : state) {
    simt::launch(dev, "sparse",
                 simt::GridSpec::over_threads(total, 256, active, pred),
                 [](simt::ThreadCtx& ctx) { ctx.compute(1, kOps); });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparseLaunchAccounting)->Arg(1 << 16)->Arg(1 << 22);

void BM_ReduceMinExecuted(benchmark::State& state) {
  simt::Device dev;
  const auto n = static_cast<std::size_t>(state.range(0));
  auto buf = dev.alloc<std::uint32_t>(n, "vals");
  dev.fill(buf, 123u);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simt::prim::reduce_min(dev, buf, n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ReduceMinExecuted)->Arg(1 << 12)->Arg(1 << 16);

void BM_ReduceMinAnalytic(benchmark::State& state) {
  simt::Device dev;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    simt::prim::charge_reduce_min(dev, n);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReduceMinAnalytic)->Arg(1 << 22);

// ---- serial vs pooled launch path ----
//
// Each Pooled* benchmark runs the identical kernel under
// LaunchPolicy::parallel at a configured worker count (second argument;
// 1 = the exact serial path). The host wall-clock speedup of the N-thread
// row over the 1-thread row is the figure of merit; the simulated
// KernelStats are bit-identical across rows by construction.

// Restores the configured thread count on scope exit so the pooled rows
// don't leak their setting into later benchmarks.
struct SimThreadsScope {
  explicit SimThreadsScope(int n) { simt::ExecPool::set_threads(n); }
  ~SimThreadsScope() { simt::ExecPool::set_threads(1); }
};

void BM_PooledDenseCompute(benchmark::State& state) {
  SimThreadsScope scope(static_cast<int>(state.range(1)));
  simt::Device dev;
  const auto threads = static_cast<std::uint64_t>(state.range(0));
  auto in = dev.alloc<std::uint32_t>(threads, "in");
  auto out = dev.alloc<std::uint32_t>(threads, "out");
  const auto grid =
      simt::GridSpec::dense(threads, 256).with(simt::LaunchPolicy::parallel);
  for (auto _ : state) {
    simt::launch(dev, "pooled.compute", grid, [&](simt::ThreadCtx& ctx) {
      const std::uint64_t gid = ctx.global_id();
      const std::uint32_t v = ctx.load(in, gid, kLoad);
      ctx.compute(4 + v % 5, kOps);
      ctx.store(out, gid, v + 1, kLoad);
    });
  }
  state.SetItemsProcessed(state.iterations() * threads);
}
BENCHMARK(BM_PooledDenseCompute)
    ->Args({1 << 17, 1})
    ->Args({1 << 17, 2})
    ->Args({1 << 17, 4})
    ->Args({1 << 17, 8})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 8});

void BM_PooledSparseThreads(benchmark::State& state) {
  SimThreadsScope scope(static_cast<int>(state.range(1)));
  simt::Device dev;
  const auto total = static_cast<std::uint64_t>(state.range(0));
  auto flags = dev.alloc<std::uint8_t>(total, "flags");
  auto out = dev.alloc<std::uint32_t>(total, "out");
  std::vector<std::uint32_t> active;
  for (std::uint64_t id = 0; id < total; id += 2) {
    active.push_back(static_cast<std::uint32_t>(id));
  }
  simt::Predicate pred;
  pred.base_addr = flags.base_addr();
  pred.stride = 1;
  const auto grid = simt::GridSpec::over_threads(total, 256, active, pred)
                        .with(simt::LaunchPolicy::parallel);
  for (auto _ : state) {
    simt::launch(dev, "pooled.sparse_threads", grid, [&](simt::ThreadCtx& ctx) {
      ctx.compute(4, kOps);
      ctx.store(out, ctx.global_id(), 1u, kLoad);
    });
  }
  state.SetItemsProcessed(state.iterations() * active.size());
}
BENCHMARK(BM_PooledSparseThreads)->Args({1 << 17, 1})->Args({1 << 17, 8});

void BM_PooledSparseBlocks(benchmark::State& state) {
  SimThreadsScope scope(static_cast<int>(state.range(1)));
  simt::Device dev;
  const auto total_blocks = static_cast<std::uint64_t>(state.range(0)) / 256;
  auto flags = dev.alloc<std::uint8_t>(total_blocks, "flags");
  auto out = dev.alloc<std::uint32_t>(total_blocks * 256, "out");
  std::vector<std::uint32_t> active;
  for (std::uint64_t b = 0; b < total_blocks; b += 2) {
    active.push_back(static_cast<std::uint32_t>(b));
  }
  simt::Predicate pred;
  pred.base_addr = flags.base_addr();
  pred.stride = 1;
  const auto grid = simt::GridSpec::over_blocks(total_blocks, 256, active, pred)
                        .with(simt::LaunchPolicy::parallel);
  for (auto _ : state) {
    simt::launch(dev, "pooled.sparse_blocks", grid, [&](simt::ThreadCtx& ctx) {
      ctx.compute(4, kOps);
      ctx.store(out, ctx.global_id(), 1u, kLoad);
    });
  }
  state.SetItemsProcessed(state.iterations() * active.size() * 256);
}
BENCHMARK(BM_PooledSparseBlocks)->Args({1 << 17, 1})->Args({1 << 17, 8});

void BM_PooledPhasedScan(benchmark::State& state) {
  SimThreadsScope scope(static_cast<int>(state.range(1)));
  simt::Device dev;
  const auto n = static_cast<std::size_t>(state.range(0));
  auto values = dev.alloc<std::uint32_t>(n, "vals");
  auto out = dev.alloc<std::uint32_t>(n, "scan");
  dev.fill(values, 3u);
  for (auto _ : state) {
    simt::prim::exclusive_scan(dev, values, out, n);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PooledPhasedScan)->Args({1 << 17, 1})->Args({1 << 17, 8});

// ---- tracing overhead ----
//
// Second argument: 0 = tracing off (each launch pays exactly one
// predicted-false trace::active() branch — this row must track the plain
// launch numbers), 1 = Chrome sink attached in memory (cost of rendering
// every kernel event).
void BM_LaunchTraceOverhead(benchmark::State& state) {
  if (state.range(1) != 0) {
    trace::Tracer::instance().attach(std::make_unique<trace::ChromeTraceSink>());
  }
  simt::Device dev;
  const auto threads = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    simt::launch(dev, "traced", simt::GridSpec::dense(threads, 256),
                 [](simt::ThreadCtx& ctx) { ctx.compute(4, kOps); });
  }
  trace::Tracer::instance().clear();
  state.SetItemsProcessed(state.iterations() * threads);
}
BENCHMARK(BM_LaunchTraceOverhead)->Args({1 << 14, 0})->Args({1 << 14, 1});

}  // namespace

BENCHMARK_MAIN();
