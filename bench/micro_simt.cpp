// Microbenchmarks of the SIMT simulator substrate itself (google-benchmark):
// tracing throughput, coalescing analysis, sparse-launch accounting, and the
// reduction primitive. These bound the simulation cost per modeled event and
// guard against regressions that would make the experiment benches unusable.
#include <benchmark/benchmark.h>

#include "simt/launch.h"
#include "simt/primitives.h"

namespace {

constexpr simt::Site kLoad{0, "load"};
constexpr simt::Site kOps{1, "ops"};
constexpr simt::Site kAtomic{2, "atomic"};

void BM_DenseLaunchCompute(benchmark::State& state) {
  simt::Device dev;
  const auto threads = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    simt::launch(dev, "compute", simt::GridSpec::dense(threads, 256),
                 [](simt::ThreadCtx& ctx) { ctx.compute(4, kOps); });
  }
  state.SetItemsProcessed(state.iterations() * threads);
}
BENCHMARK(BM_DenseLaunchCompute)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_CoalescedLoads(benchmark::State& state) {
  simt::Device dev;
  const auto threads = static_cast<std::uint64_t>(state.range(0));
  auto buf = dev.alloc<std::uint32_t>(threads, "buf");
  for (auto _ : state) {
    simt::launch(dev, "loads", simt::GridSpec::dense(threads, 256),
                 [&](simt::ThreadCtx& ctx) {
                   benchmark::DoNotOptimize(ctx.load(buf, ctx.global_id(), kLoad));
                 });
  }
  state.SetItemsProcessed(state.iterations() * threads);
}
BENCHMARK(BM_CoalescedLoads)->Arg(1 << 14)->Arg(1 << 17);

void BM_ScatteredLoads(benchmark::State& state) {
  simt::Device dev;
  const auto threads = static_cast<std::uint64_t>(state.range(0));
  auto buf = dev.alloc<std::uint32_t>(threads * 64, "buf");
  for (auto _ : state) {
    simt::launch(dev, "scatter", simt::GridSpec::dense(threads, 256),
                 [&](simt::ThreadCtx& ctx) {
                   const std::size_t i = ctx.global_id() * 2654435761u % (threads * 64);
                   benchmark::DoNotOptimize(ctx.load(buf, i, kLoad));
                 });
  }
  state.SetItemsProcessed(state.iterations() * threads);
}
BENCHMARK(BM_ScatteredLoads)->Arg(1 << 14);

void BM_AtomicTally(benchmark::State& state) {
  simt::Device dev;
  auto counter = dev.alloc<std::uint32_t>(1, "counter");
  const auto threads = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    simt::launch(dev, "atomics", simt::GridSpec::dense(threads, 256),
                 [&](simt::ThreadCtx& ctx) {
                   ctx.atomic_add(counter, 0, 1u, kAtomic);
                 });
  }
  state.SetItemsProcessed(state.iterations() * threads);
}
BENCHMARK(BM_AtomicTally)->Arg(1 << 14);

void BM_SparseLaunchAccounting(benchmark::State& state) {
  // One active thread in a grid of `range` threads: measures the analytic
  // accounting cost of predicate-only blocks.
  simt::Device dev;
  const auto total = static_cast<std::uint64_t>(state.range(0));
  auto flags = dev.alloc<std::uint8_t>(total, "flags");
  const std::vector<std::uint32_t> active{static_cast<std::uint32_t>(total / 2)};
  simt::Predicate pred;
  pred.base_addr = flags.base_addr();
  pred.stride = 1;
  for (auto _ : state) {
    simt::launch(dev, "sparse",
                 simt::GridSpec::over_threads(total, 256, active, pred),
                 [](simt::ThreadCtx& ctx) { ctx.compute(1, kOps); });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparseLaunchAccounting)->Arg(1 << 16)->Arg(1 << 22);

void BM_ReduceMinExecuted(benchmark::State& state) {
  simt::Device dev;
  const auto n = static_cast<std::size_t>(state.range(0));
  auto buf = dev.alloc<std::uint32_t>(n, "vals");
  dev.fill(buf, 123u);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simt::prim::reduce_min(dev, buf, n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ReduceMinExecuted)->Arg(1 << 12)->Arg(1 << 16);

void BM_ReduceMinAnalytic(benchmark::State& state) {
  simt::Device dev;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    simt::prim::charge_reduce_min(dev, n);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReduceMinAnalytic)->Arg(1 << 22);

}  // namespace

BENCHMARK_MAIN();
