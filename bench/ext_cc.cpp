// Extension experiment (ours): connected components under the framework —
// speedups of the unordered variants and the adaptive runtime over serial
// union-find, per dataset. Validates the paper's projection that the
// approach "can be extended to many other graph algorithms".
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "cpu/cc_serial.h"
#include "cpu/cpu_cost_model.h"
#include "gpu_graph/cc_engine.h"
#include "runtime/adaptive_engine.h"

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Connected components: GPU variants + adaptive vs serial "
                     "union-find."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Extension - connected components (min-label propagation)",
      "The CC working set starts at n (every node active) and shrinks, the "
      "mirror image of a traversal — a different regime for the decision "
      "space. Speedups over serial union-find.",
      opts);

  std::vector<std::string> header{"Network"};
  for (const auto v : gg::unordered_variants()) header.push_back(gg::variant_name(v));
  for (const auto v : gg::warp_centric_variants()) header.push_back(gg::variant_name(v));
  header.push_back("adaptive");
  agg::Table table(header);

  for (const auto id : opts.datasets) {
    auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    const graph::Csr sym = graph::symmetrize(d.csr);
    const auto expected = cpu::connected_components(sym);
    const double cpu_us =
        cpu::CpuModel::core_i7().cc_time_us(expected.counts, sym.num_nodes);

    std::vector<std::string> row{d.name};
    double best = 0;
    int best_col = 0;
    int col = 0;
    auto record = [&](double gpu_us) {
      const double speedup = cpu_us / gpu_us;
      row.push_back(agg::Table::fmt(speedup, 2));
      ++col;
      if (speedup > best) {
        best = speedup;
        best_col = col;
      }
    };

    const auto pool = [] {
      const auto base = gg::unordered_variants();
      std::vector<gg::Variant> out(base.begin(), base.end());
      for (const auto v : gg::warp_centric_variants()) out.push_back(v);
      return out;
    }();
    {
      for (const auto v : pool) {
        simt::Device dev;
        const auto r = gg::run_cc(dev, sym, v);
        AGG_CHECK_MSG(r.component == expected.component, "CC result mismatch");
        record(r.metrics.total_us);
      }
    }
    {
      simt::Device dev;
      const auto r = rt::adaptive_cc(dev, sym);
      AGG_CHECK(r.component == expected.component);
      record(r.metrics.total_us);
    }
    std::printf("  %-9s cpu(model) %8.2f ms | %s components\n", d.name.c_str(),
                cpu_us / 1000.0, agg::Table::fmt_int(expected.num_components).c_str());
    table.add_row(std::move(row), best_col);
  }
  std::printf("\n%s\n", table.render().c_str());
  return 0;
}
