// Reproduces the Section VII.B T2 validation: per-iteration time of the
// thread-mapped queue (T_QU) vs block-mapped queue (B_QU) implementations as
// a function of the working-set size. The paper measures B_QU winning below
// |WS| ~ 3,000 (192 threads/block x 14 SMs = 2,688).
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "gpu_graph/sssp_engine.h"

namespace {

// Buckets per-iteration times by log2 of the working-set size.
std::map<int, std::pair<double, int>> bucketize(const gg::TraversalMetrics& m) {
  std::map<int, std::pair<double, int>> buckets;  // bucket -> (sum_us, count)
  for (const auto& it : m.iterations) {
    if (it.ws_size == 0) continue;
    int b = 0;
    for (std::uint64_t v = it.ws_size; v > 1; v >>= 1) ++b;
    auto& [sum, count] = buckets[b];
    sum += it.time_us;
    ++count;
  }
  return buckets;
}

}  // namespace

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Reproduces the Sec. VII.B T2 experiment: T_QU vs B_QU "
                     "iteration time vs working-set size."))
    return 0;
  auto opts = bench::parse_common(cli);
  if (!cli.has("datasets")) {
    opts.datasets = {graph::gen::DatasetId::google, graph::gen::DatasetId::co_road};
  }
  bench::print_banner(
      "T2 validation - T_QU vs B_QU per-iteration time by |WS|",
      "Paper finding: B_QU outperforms T_QU for working sets smaller than "
      "~3,000 nodes; we report mean iteration time per |WS| bucket and the "
      "observed crossover.",
      opts);

  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    simt::Device dev_t, dev_b;
    const auto t = gg::run_sssp(dev_t, d.csr, d.source, gg::parse_variant("U_T_QU"));
    const auto b = gg::run_sssp(dev_b, d.csr, d.source, gg::parse_variant("U_B_QU"));
    const auto tb = bucketize(t.metrics);
    const auto bb = bucketize(b.metrics);

    std::printf("--- %s ---\n", d.name.c_str());
    std::printf("  %-18s %12s %12s %s\n", "|WS| range", "T_QU (us)", "B_QU (us)",
                "winner");
    std::uint64_t crossover = 0;
    for (const auto& [bucket, tq] : tb) {
      const auto it = bb.find(bucket);
      if (it == bb.end()) continue;
      const double t_us = tq.first / tq.second;
      const double b_us = it->second.first / it->second.second;
      const std::uint64_t lo = 1ull << bucket;
      char range[32];
      std::snprintf(range, sizeof range, "%llu-%llu",
                    static_cast<unsigned long long>(lo),
                    static_cast<unsigned long long>(lo * 2 - 1));
      std::printf("  %-18s %12.2f %12.2f %s\n", range, t_us, b_us,
                  b_us <= t_us ? "B_QU" : "T_QU");
      if (b_us <= t_us) crossover = lo * 2 - 1;
    }
    std::printf("  => B_QU preferable up to |WS| ~ %llu (paper: ~3,000; derived "
                "T2 = %d)\n\n",
                static_cast<unsigned long long>(crossover), 192 * 14);
  }
  return 0;
}
