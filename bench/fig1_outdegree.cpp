// Reproduces Figure 1: outdegree distributions of the CO-road, Amazon and
// CiteSeer networks (histogram of % nodes per outdegree).
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Reproduces paper Figure 1: outdegree distributions.")) return 0;
  auto opts = bench::parse_common(cli);
  if (!cli.has("datasets")) {
    opts.datasets = {graph::gen::DatasetId::co_road, graph::gen::DatasetId::amazon,
                     graph::gen::DatasetId::citeseer};
  }
  bench::print_banner("Figure 1 - outdegree distributions",
                      "Paper shapes: CO-road mass at degrees 1-4 (max 8); Amazon "
                      "~70% at 10, rest uniform 1-9; CiteSeer ~90% below 2 with a "
                      "tail to 1,188.",
                      opts);

  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    std::printf("--- %s (%s) ---\n%s\n", d.name.c_str(), d.stats.summary().c_str(),
                d.stats.outdeg_hist.render().c_str());
  }
  return 0;
}
