// Reproduces the adaptive-vs-static comparison (the evaluation the abstract
// summarizes: "our dynamic solution outperforms the best static one (up to a
// factor of 2X) on most datasets, and is more robust to the irregularities
// typical of real world graphs"). For BFS and SSSP on every dataset we report
// the best static variant, the worst static variant, the adaptive runtime,
// and the adaptive-over-best-static ratio.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "runtime/adaptive_engine.h"

namespace {

void run_algo(bench::Algo algo, const bench::Options& opts) {
  agg::Table table({"Network", "best static", "t_best (ms)", "worst static",
                    "t_worst (ms)", "adaptive (ms)", "switches",
                    "DO (ms)", "adaptive/best", "adaptive/worst"});
  int adaptive_wins = 0;
  int rows = 0;
  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    const auto base = algo == bench::Algo::bfs ? bench::cpu_baseline_bfs(d)
                                               : bench::cpu_baseline_sssp(d);
    const auto& expected =
        algo == bench::Algo::bfs ? base.bfs_level : base.sssp_dist;
    const auto runs = bench::run_all_static(algo, d, 1.0, expected);

    std::size_t best = 0, worst = 0;
    for (std::size_t i = 1; i < runs.size(); ++i) {
      if (runs[i].gpu_us < runs[best].gpu_us) best = i;
      if (runs[i].gpu_us > runs[worst].gpu_us) worst = i;
    }

    simt::Device dev;
    gg::TraversalMetrics am;
    if (algo == bench::Algo::bfs) {
      auto r = rt::adaptive_bfs(dev, d.csr, d.source);
      AGG_CHECK(r.level == expected);
      am = std::move(r.metrics);
    } else {
      auto r = rt::adaptive_sssp(dev, d.csr, d.source);
      AGG_CHECK(r.dist == expected);
      am = std::move(r.metrics);
    }

    // The enlarged space: the same adaptive runtime with the Beamer
    // direction controller enabled (push<->pull as a 4th dimension).
    simt::Device ddev;
    rt::AdaptiveOptions dopts;
    dopts.direction = gg::Direction::adaptive;
    gg::TraversalMetrics dm;
    if (algo == bench::Algo::bfs) {
      auto r = rt::adaptive_bfs(ddev, d.csr, d.source, dopts);
      AGG_CHECK(r.level == expected);
      dm = std::move(r.metrics);
    } else {
      auto r = rt::adaptive_sssp(ddev, d.csr, d.source, dopts);
      AGG_CHECK(r.dist == expected);
      dm = std::move(r.metrics);
    }

    const double vs_best = runs[best].gpu_us / am.total_us;   // >1: adaptive wins
    const double vs_worst = runs[worst].gpu_us / am.total_us;
    adaptive_wins += vs_best >= 1.0;
    ++rows;
    table.add_row({d.name, gg::variant_name(runs[best].variant),
                   agg::Table::fmt(runs[best].gpu_us / 1000.0, 2),
                   gg::variant_name(runs[worst].variant),
                   agg::Table::fmt(runs[worst].gpu_us / 1000.0, 2),
                   agg::Table::fmt(am.total_us / 1000.0, 2),
                   std::to_string(am.switches),
                   agg::Table::fmt(dm.total_us / 1000.0, 2),
                   agg::Table::fmt(vs_best, 2),
                   agg::Table::fmt(vs_worst, 2)},
                  vs_best >= 1.0 ? 8 : -1);
  }
  std::printf("%s\nadaptive matches or beats the best static on %d/%d datasets "
              "(speedup vs best static shown in column 'adaptive/best').\n\n",
              table.render().c_str(), adaptive_wins, rows);
}

}  // namespace

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Adaptive runtime vs the 8 static implementations, BFS "
                     "and SSSP, all datasets."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Adaptive vs static (abstract / Sec. VII)",
      "Paper claim: the dynamic solution outperforms the best static one (up "
      "to 2x) on most datasets and is far from the worst one everywhere.",
      opts);

  std::printf(">>> BFS\n");
  run_algo(bench::Algo::bfs, opts);
  std::printf(">>> SSSP\n");
  run_algo(bench::Algo::sssp, opts);
  return 0;
}
