#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>

#include "common/check.h"
#include "cpu/bfs_serial.h"
#include "cpu/cpu_cost_model.h"
#include "cpu/sssp_serial.h"
#include "gpu_graph/bfs_engine.h"
#include "gpu_graph/sssp_engine.h"
#include "graph/io.h"
#include "simt/exec_pool.h"
#include "trace/chrome_trace.h"
#include "trace/counters.h"
#include "trace/jsonl_trace.h"
#include "trace/trace_sink.h"

namespace bench {
namespace {

graph::gen::DatasetId parse_dataset(const std::string& name) {
  for (const auto id : graph::gen::all_datasets()) {
    if (name == graph::gen::dataset_name(id)) return id;
  }
  std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
  std::abort();
}

std::string g_metrics_out;

// Benches exit through main's return (or google-benchmark's shutdown), so
// trace artifacts are finalized from an atexit hook.
void flush_trace_artifacts() {
  trace::Tracer::instance().clear();
  if (g_metrics_out.empty()) return;
  std::ofstream f(g_metrics_out, std::ios::binary | std::ios::trunc);
  if (f) f << trace::CounterRegistry::instance().to_json() << '\n';
}

void setup_tracing(const agg::Cli& cli) {
  const std::string trace_out = cli.get("trace-out", "");
  g_metrics_out = cli.get("metrics-out", "");
  if (trace_out.empty() && g_metrics_out.empty()) return;
  if (!trace_out.empty()) {
    const std::string format = cli.get("trace-format", "chrome");
    if (format == "chrome") {
      const int lanes =
          static_cast<int>(simt::DeviceProps::fermi_c2070().num_sms);
      trace::Tracer::instance().attach(
          std::make_unique<trace::ChromeTraceSink>(trace_out, lanes));
    } else if (format == "jsonl") {
      trace::Tracer::instance().attach(
          std::make_unique<trace::JsonlDecisionSink>(trace_out));
    } else {
      std::fprintf(stderr, "unknown --trace-format '%s' (expect chrome|jsonl)\n",
                   format.c_str());
      std::exit(2);
    }
  }
  if (!g_metrics_out.empty()) {
    trace::CounterRegistry::instance().set_enabled(true);
  }
  std::atexit(flush_trace_artifacts);
}

}  // namespace

Options parse_common(const agg::Cli& cli) {
  Options opts;
  opts.scale = cli.get_double("scale", cli.get_bool("quick", false) ? 0.2 : 1.0);
  opts.cache_dir = cli.get("cache", ".dataset-cache");
  const auto sim_threads = cli.get_int("sim-threads", 0);
  if (sim_threads > 0) {
    simt::ExecPool::set_threads(static_cast<int>(sim_threads));
  }
  setup_tracing(cli);
  const std::string list = cli.get("datasets", "");
  if (list.empty()) {
    opts.datasets = graph::gen::all_datasets();
  } else {
    std::size_t pos = 0;
    while (pos != std::string::npos) {
      const std::size_t comma = list.find(',', pos);
      const std::string tok = list.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      opts.datasets.push_back(parse_dataset(tok));
      pos = comma == std::string::npos ? comma : comma + 1;
    }
  }
  return opts;
}

graph::gen::Dataset load_dataset(graph::gen::DatasetId id, double scale,
                                 const std::string& cache_dir) {
  char key[128];
  std::snprintf(key, sizeof key, "%s_%.4f.agg", graph::gen::dataset_name(id), scale);
  const std::filesystem::path path = std::filesystem::path(cache_dir) / key;
  if (std::filesystem::exists(path)) {
    graph::gen::Dataset d;
    d.id = id;
    d.name = graph::gen::dataset_name(id);
    d.csr = graph::read_binary(path.string());
    d.source = graph::suggest_source(d.csr);
    d.stats = graph::GraphStats::compute(d.csr);
    return d;
  }
  graph::gen::Dataset d = graph::gen::make_dataset(id, scale);
  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  if (!ec) graph::write_binary(d.csr, path.string());
  return d;
}

std::vector<graph::gen::Dataset> load_datasets(const Options& opts) {
  std::vector<graph::gen::Dataset> out;
  out.reserve(opts.datasets.size());
  for (const auto id : opts.datasets) {
    out.push_back(load_dataset(id, opts.scale, opts.cache_dir));
    const auto& d = out.back();
    std::printf("  loaded %-9s %s\n", d.name.c_str(), d.stats.summary().c_str());
  }
  return out;
}

CpuBaseline cpu_baseline_bfs(const graph::gen::Dataset& d) {
  CpuBaseline base;
  auto r = cpu::bfs(d.csr, d.source);
  base.bfs_us = cpu::CpuModel::core_i7().bfs_time_us(r.counts, d.csr.num_nodes);
  base.bfs_level = std::move(r.level);
  return base;
}

CpuBaseline cpu_baseline_sssp(const graph::gen::Dataset& d) {
  CpuBaseline base;
  auto r = cpu::dijkstra(d.csr, d.source);
  base.sssp_us = cpu::CpuModel::core_i7().dijkstra_time_us(r.counts, d.csr.num_nodes);
  base.sssp_dist = std::move(r.dist);
  return base;
}

VariantRun run_static(Algo algo, const graph::gen::Dataset& d, gg::Variant v,
                      double cpu_us, const std::vector<std::uint32_t>& expected) {
  VariantRun run;
  run.variant = v;
  simt::Device dev;
  if (algo == Algo::bfs) {
    auto r = gg::run_bfs(dev, d.csr, d.source, v);
    AGG_CHECK_MSG(r.level == expected, "GPU BFS result mismatch in bench");
    run.gpu_us = r.metrics.total_us;
    run.metrics = std::move(r.metrics);
  } else {
    auto r = gg::run_sssp(dev, d.csr, d.source, v);
    AGG_CHECK_MSG(r.dist == expected, "GPU SSSP result mismatch in bench");
    run.gpu_us = r.metrics.total_us;
    run.metrics = std::move(r.metrics);
  }
  run.speedup = cpu_us / run.gpu_us;
  return run;
}

std::vector<VariantRun> run_all_static(Algo algo, const graph::gen::Dataset& d,
                                       double cpu_us,
                                       const std::vector<std::uint32_t>& expected) {
  std::vector<VariantRun> runs;
  for (const gg::Variant v : gg::all_variants()) {
    runs.push_back(run_static(algo, d, v, cpu_us, expected));
  }
  return runs;
}

void print_banner(const char* artifact, const char* description,
                  const Options& opts) {
  std::printf("=== %s ===\n%s\n", artifact, description);
  std::printf("device: %s | dataset scale: %.2f%s\n\n",
              simt::DeviceProps::fermi_c2070().name.c_str(), opts.scale,
              opts.scale < 1.0 ? "  (use --scale=1 for the paper's sizes)" : "");
}

}  // namespace bench
