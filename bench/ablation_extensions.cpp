// Ablation (ours): the two orthogonal optimizations the paper cites and this
// library implements as extensions —
//  * virtual-warp-centric mapping (Hong et al. [12]): U_W_BM / U_W_QU
//    against the paper's thread and block mappings;
//  * scan-based queue generation (Merrill et al. [9]) against the basic
//    atomic insertion of [33].
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "gpu_graph/sssp_engine.h"

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Extensions ablation: warp-centric mapping and scan-based "
                     "queue generation (SSSP)."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Extensions - warp-centric mapping & scan-based queue generation",
      "Both are named by the paper as orthogonal optimizations; this bench "
      "quantifies them on the simulated device (SSSP, times in ms).",
      opts);

  agg::Table table({"Network", "U_T_QU", "U_B_QU", "U_W_QU", "U_T_BM", "U_B_BM",
                    "U_W_BM", "U_B_QU+scan"});
  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    const auto base = bench::cpu_baseline_sssp(d);

    auto run = [&](const char* name, bool scan) {
      simt::Device dev;
      gg::EngineOptions eo;
      eo.scan_queue_gen = scan;
      const auto r =
          gg::run_sssp(dev, d.csr, d.source, gg::parse_variant(name), eo);
      AGG_CHECK_MSG(r.dist == base.sssp_dist, "result mismatch");
      return r.metrics.total_us / 1000.0;
    };

    std::vector<std::string> row{d.name};
    std::vector<double> times;
    for (const char* name :
         {"U_T_QU", "U_B_QU", "U_W_QU", "U_T_BM", "U_B_BM", "U_W_BM"}) {
      times.push_back(run(name, false));
    }
    times.push_back(run("U_B_QU", true));
    int best = 0;
    for (std::size_t i = 0; i < times.size(); ++i) {
      if (times[i] < times[best]) best = static_cast<int>(i);
      row.push_back(agg::Table::fmt(times[i], 2));
    }
    table.add_row(std::move(row), best + 1);
  }
  std::printf("%s\n(bracketed = fastest; W columns are the warp-centric "
              "extension, the last column replaces the atomic queue insertion "
              "with a prefix-scan compaction)\n",
              table.render().c_str());
  return 0;
}
