// Extension experiment (ours): hardware portability of the adaptive runtime.
// The decision thresholds derive from the device (T2 = thread_tpb x #SMs),
// so the same runtime re-tunes itself across GPU generations. Runs SSSP on
// three device profiles — Tesla C2070 (the paper's card), GTX 580 (larger
// Fermi), Tesla K20 (Kepler: fast atomics, wide issue) — and reports the
// best static variant and the adaptive runtime on each.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "gpu_graph/sssp_engine.h"
#include "runtime/adaptive_engine.h"

namespace {

struct Profile {
  const char* label;
  const simt::DeviceProps* props;
  simt::TimingModel tm;
};

}  // namespace

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Hardware portability: adaptive SSSP across simulated "
                     "device generations."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Extension - device portability (SSSP)",
      "The runtime derives its thresholds from the device; winners shift "
      "across generations (Kepler's fast atomics rehabilitate queues). Times "
      "in ms, best static bracketed per row.",
      opts);

  const Profile profiles[] = {
      {"C2070", &simt::DeviceProps::fermi_c2070(), simt::TimingModel::fermi_default()},
      {"GTX580", &simt::DeviceProps::fermi_gtx580(), simt::TimingModel::fermi_default()},
      {"K20", &simt::DeviceProps::kepler_k20(), simt::TimingModel::kepler_default()},
  };

  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    const auto base = bench::cpu_baseline_sssp(d);

    agg::Table table({"Device", "best static", "t_best (ms)", "adaptive (ms)",
                      "adaptive/best", "T2 (derived)"});
    for (const auto& prof : profiles) {
      std::string best_name;
      double best_us = 0;
      for (const auto v : gg::unordered_variants()) {
        simt::Device dev(*prof.props, prof.tm);
        const auto r = gg::run_sssp(dev, d.csr, d.source, v);
        AGG_CHECK(r.dist == base.sssp_dist);
        if (best_us == 0 || r.metrics.total_us < best_us) {
          best_us = r.metrics.total_us;
          best_name = gg::variant_name(v);
        }
      }
      simt::Device dev(*prof.props, prof.tm);
      const auto a = rt::adaptive_sssp(dev, d.csr, d.source);
      AGG_CHECK(a.dist == base.sssp_dist);
      const auto t2 = rt::Thresholds::for_device(*prof.props).t2_ws_size;
      table.add_row({prof.label, best_name, agg::Table::fmt(best_us / 1000.0, 2),
                     agg::Table::fmt(a.metrics.total_us / 1000.0, 2),
                     agg::Table::fmt(best_us / a.metrics.total_us, 2),
                     agg::Table::fmt(t2, 0)});
    }
    std::printf("--- %s ---\n%s\n", d.name.c_str(), table.render().c_str());
  }
  return 0;
}
