// Reproduces Table 3: speedup of each of the eight GPU SSSP implementations
// over the serial CPU baseline (Dijkstra with a binary heap), per dataset.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Reproduces paper Table 3: SSSP speedups (GPU over serial "
                     "CPU Dijkstra) for O/U x T/B x BM/QU."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Table 3 - SSSP speedup over serial CPU (Dijkstra)",
      "Paper shape: unordered significantly faster than ordered; block mapping "
      "wins on high-outdegree graphs (CiteSeer, SNS); best variant is "
      "dataset-dependent.",
      opts);

  std::vector<std::string> header{"Network"};
  for (const auto v : gg::all_variants()) header.push_back(gg::variant_name(v));
  agg::Table table(header);

  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    const auto base = bench::cpu_baseline_sssp(d);
    const auto runs =
        bench::run_all_static(bench::Algo::sssp, d, base.sssp_us, base.sssp_dist);

    std::vector<std::string> row{d.name};
    int best = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      row.push_back(agg::Table::fmt(runs[i].speedup, 2));
      if (runs[i].speedup > runs[best].speedup) best = static_cast<int>(i);
    }
    table.add_row(std::move(row), best + 1);
    std::printf("  %-9s cpu(model) %8.2f ms | best %s at %.2f ms GPU\n",
                d.name.c_str(), base.sssp_us / 1000.0,
                gg::variant_name(runs[best].variant).c_str(),
                runs[best].gpu_us / 1000.0);
  }
  std::printf("\n%s\n", table.render().c_str());
  return 0;
}
