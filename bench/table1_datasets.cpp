// Reproduces Table 1: dataset characterization (nodes, edges, min/max/avg
// outdegree) for the six synthetic stand-ins.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Reproduces paper Table 1: dataset characterization.")) return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner("Table 1 - dataset characterization",
                      "Columns as in the paper: nodes, edges, node outdegree "
                      "min/max/avg.",
                      opts);

  agg::Table table({"Network", "# Nodes", "# Edges", "outdeg min", "outdeg max",
                    "outdeg avg"});
  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    const auto& s = d.stats;
    table.add_row({d.name, agg::Table::fmt_int(s.num_nodes),
                   agg::Table::fmt_int(s.num_edges), std::to_string(s.outdeg_min),
                   agg::Table::fmt_int(s.outdeg_max), agg::Table::fmt(s.outdeg_avg, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper reference values (Table 1): CO-road 435,666 / ~1M / avg 2.4;\n"
              "CiteSeer 434,102 / ~16M; p2p 36,692 / ~0.18M; Amazon 396,830;\n"
              "Google 739,454; SNS 4,308,452 / ~34.5M.\n");
  return 0;
}
