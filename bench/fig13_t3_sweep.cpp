// Reproduces Figure 13: adaptive SSSP execution time as a function of the T3
// threshold, swept from 1% to 13% of the node count, per dataset.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "runtime/tuner.h"

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Reproduces paper Figure 13: performance under different "
                     "T3 settings (adaptive SSSP)."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Figure 13 - execution time vs T3 (percentage of node count)",
      "Paper shape: each dataset has its own best T3; extremes (too eager or "
      "too reluctant to switch to the bitmap) lose time.",
      opts);

  std::vector<double> fractions;
  for (int pct = 1; pct <= 13; ++pct) fractions.push_back(pct / 100.0);

  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    simt::Device dev;
    const auto sweep = rt::sweep_t3(dev, d.csr, d.source, fractions,
                                    rt::TunedAlgorithm::sssp);
    double worst = 0;
    for (const auto& p : sweep.curve) worst = std::max(worst, p.time_us);
    std::printf("--- %s (best T3 = %.0f%% at %.2f ms) ---\n", d.name.c_str(),
                sweep.best_value * 100, sweep.best_time_us / 1000.0);
    for (const auto& p : sweep.curve) {
      const auto len = static_cast<int>(50.0 * p.time_us / worst);
      std::printf("  T3=%3.0f%% %8.2f ms |%s\n", p.value * 100, p.time_us / 1000.0,
                  std::string(static_cast<std::size_t>(len), '#').c_str());
    }
    std::printf("\n");
  }
  return 0;
}
