// Extension experiment (ours): minimum spanning forest (Boruvka) under the
// framework — speedups over serial Kruskal, per dataset. MST is one of the
// algorithm families the paper's related work groups with shortest paths
// and connected components.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "cpu/cpu_cost_model.h"
#include "cpu/mst_serial.h"
#include "gpu_graph/mst_engine.h"
#include "graph/transform.h"
#include "runtime/adaptive_engine.h"

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Minimum spanning forest: GPU Boruvka vs serial Kruskal."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Extension - minimum spanning forest (Boruvka)",
      "Symmetric weighted instances of each dataset; speedups over serial "
      "Kruskal (modeled CPU: sort + union-find).",
      opts);

  std::vector<std::string> header{"Network"};
  for (const auto v : gg::unordered_variants()) header.push_back(gg::variant_name(v));
  header.push_back("adaptive");
  agg::Table table(header);

  for (const auto id : opts.datasets) {
    auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    graph::Csr sym = graph::symmetrize(d.csr);
    graph::assign_symmetric_uniform_weights(sym, 1, 1000, 77);
    const auto expected = cpu::minimum_spanning_forest(sym);
    // Kruskal cost: sort m log m + near-linear union-find.
    const auto& cm = cpu::CpuModel::core_i7();
    const double log_m = std::log2(std::max<double>(expected.counts.edges_sorted, 2));
    const double cycles =
        static_cast<double>(expected.counts.edges_sorted) * (6.0 * log_m + 10.0) +
        static_cast<double>(expected.counts.union_ops) * 40.0;
    const double cpu_us = cycles / (cm.clock_ghz * 1e3);

    std::vector<std::string> row{d.name};
    int best = 0, col = 0;
    double best_speedup = 0;
    auto run_one = [&](auto&& runner) {
      simt::Device dev;
      const auto r = runner(dev);
      AGG_CHECK_MSG(r.total_weight == expected.total_weight &&
                        r.num_trees == expected.num_trees,
                    "MST mismatch");
      const double s = cpu_us / r.metrics.total_us;
      row.push_back(agg::Table::fmt(s, 2));
      ++col;
      if (s > best_speedup) {
        best_speedup = s;
        best = col;
      }
    };
    for (const auto v : gg::unordered_variants()) {
      run_one([&](simt::Device& dev) { return gg::run_mst(dev, sym, v); });
    }
    run_one([&](simt::Device& dev) { return rt::adaptive_mst(dev, sym); });
    std::printf("  %-9s cpu(model) %8.2f ms | forest weight %llu, %s trees\n",
                d.name.c_str(), cpu_us / 1000.0,
                static_cast<unsigned long long>(expected.total_weight),
                agg::Table::fmt_int(expected.num_trees).c_str());
    table.add_row(std::move(row), best);
  }
  std::printf("\n%s\n", table.render().c_str());
  return 0;
}
