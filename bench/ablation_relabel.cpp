// Ablation (ours): degree-ordered relabeling as GPU preprocessing. Sorting
// nodes by outdegree clusters heavy nodes into the same warps, so the
// lockstep cost of thread mapping (paid at the per-warp *maximum* lane
// degree) drops; bitmap frontiers also become denser at the hot end.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "gpu_graph/bfs_engine.h"
#include "graph/transform.h"

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Ablation: BFS with and without degree-ordered node "
                     "relabeling (thread-mapped variants)."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Ablation - degree-ordered relabeling (BFS)",
      "Thread-mapped kernels pay per-warp max lane degree; relabeling sorts "
      "degrees so warps are homogeneous. Times in ms; eff = SIMD efficiency.",
      opts);

  agg::Table table({"Network", "U_T_QU (ms)", "eff", "relabeled (ms)", "eff ",
                    "speedup"});
  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    const auto relab = graph::relabel_by_degree(d.csr);

    simt::Device d1, d2;
    const auto base = gg::run_bfs(d1, d.csr, d.source, gg::parse_variant("U_T_QU"));
    const auto sorted = gg::run_bfs(d2, relab.csr, relab.new_id[d.source],
                                    gg::parse_variant("U_T_QU"));
    // Same traversal structure regardless of numbering.
    AGG_CHECK(base.metrics.iterations.size() == sorted.metrics.iterations.size());

    table.add_row({d.name, agg::Table::fmt(base.metrics.total_us / 1000.0, 2),
                   agg::Table::fmt(base.metrics.simd_efficiency, 3),
                   agg::Table::fmt(sorted.metrics.total_us / 1000.0, 2),
                   agg::Table::fmt(sorted.metrics.simd_efficiency, 3),
                   agg::Table::fmt(base.metrics.total_us / sorted.metrics.total_us, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
