// Extension experiment (ours): resilience of the serving layer under
// deterministic fault injection. Two claims are measured on the modeled
// clock:
//
//  1. *Transient faults are absorbed, not surfaced*: the same mixed
//     BFS/SSSP workload is drained against fault plans of increasing
//     kernel/transfer fault probability. Every query must still return an
//     exact answer (verified against the serial CPU oracles); the cost of
//     the faults shows up only as retry/degradation counts and a bounded
//     makespan overhead versus the fault-free run.
//
//  2. *A dead device loses no queries*: with `dead.after=1` every device
//     launch fails permanently, so the service degrades every query to the
//     CPU oracle. All queries complete, all are marked degraded, none are
//     lost, and the payloads stay exact.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/prng.h"
#include "common/table.h"
#include "cpu/bfs_serial.h"
#include "cpu/sssp_serial.h"
#include "service/graph_service.h"
#include "simt/fault.h"

namespace {

struct DrainStats {
  double makespan_us = 0;
  std::size_t completed = 0;
  std::uint64_t retries = 0;
  std::size_t degraded = 0;
  bool exact = true;   // every payload matched its CPU oracle
  bool healthy = true;  // device still alive after the drain
};

constexpr int kQueries = 24;

// Submits the standard mixed workload (2/3 BFS, 1/3 SSSP, seeded sources)
// under the given fault plan and checks every answer against the oracle.
DrainStats run_workload(const graph::gen::Dataset& d,
                        const std::string& plan_spec) {
  svc::ServiceOptions opts;
  opts.concurrency = 4;
  opts.batch_bfs = false;  // keep per-query retry accounting legible
  svc::GraphService service(opts);
  adaptive::Graph g = adaptive::Graph::from_csr(graph::Csr(d.csr));
  g.set_uniform_weights(1, 1000);
  const svc::GraphId gid = service.add_graph(std::move(g));
  const graph::Csr& weighted = service.graph(gid).csr();
  service.set_fault_plan(simt::FaultPlan::parse(plan_spec));

  agg::Prng prng(43);
  std::vector<graph::NodeId> sources;
  for (int i = 0; i < kQueries; ++i) {
    svc::QueryRequest req;
    req.graph = gid;
    req.algo = i % 3 == 2 ? svc::Algo::sssp : svc::Algo::bfs;
    req.source = static_cast<graph::NodeId>(
        prng.bounded(service.graph(gid).num_nodes()));
    sources.push_back(req.source);
    AGG_CHECK_MSG(service.submit(req).has_value(), "submission rejected");
  }

  DrainStats stats;
  const auto outcomes = service.drain();
  for (const auto& out : outcomes) {
    AGG_CHECK_MSG(out.ok(), "query lost under fault plan");
    ++stats.completed;
    stats.retries += out.retries;
    stats.degraded += out.degraded ? 1 : 0;
    // End-to-end makespan: the device makespan alone would under-count
    // degraded queries, whose finish times live on the modeled CPU
    // timeline.
    stats.makespan_us = std::max(stats.makespan_us, out.finish_us);
    const graph::NodeId src = sources[out.id - 1];
    if (out.algo == svc::Algo::bfs) {
      stats.exact &= out.bfs().level == cpu::bfs(weighted, src).level;
    } else {
      stats.exact &= out.sssp().dist == cpu::dijkstra(weighted, src).dist;
    }
  }
  stats.healthy = service.device_healthy();
  return stats;
}

// Claim 1: increasing transient fault rates cost retries, never answers.
void bench_transient(const std::vector<graph::gen::Dataset>& datasets) {
  const struct {
    const char* label;
    const char* spec;
  } plans[] = {
      // Per-launch probabilities: a single query issues tens to hundreds
      // of kernel launches, so even small rates fault most queries at
      // least once.
      {"fault-free", ""},
      {"p=0.002", "seed=11, kernel.p=0.002, transfer.p=0.0005"},
      {"p=0.01", "seed=11, kernel.p=0.01, transfer.p=0.002"},
  };
  agg::Table table({"Network", "plan", "makespan (ms)", "overhead",
                    "retries", "degraded", "exact"});
  for (const auto& d : datasets) {
    double base_us = 0;
    for (const auto& p : plans) {
      const DrainStats s = run_workload(d, p.spec);
      AGG_CHECK_MSG(s.completed == kQueries, "lost queries");
      if (base_us == 0) base_us = s.makespan_us;
      table.add_row({d.name, p.label,
                     agg::Table::fmt(s.makespan_us / 1000.0, 2),
                     agg::Table::fmt(s.makespan_us / base_us, 2),
                     std::to_string(s.retries),
                     std::to_string(s.degraded), s.exact ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.render().c_str());
}

// Claim 2: a permanently dead device still answers the whole stream.
void bench_dead_device(const std::vector<graph::gen::Dataset>& datasets) {
  agg::Table table({"Network", "completed", "degraded", "lost",
                    "makespan (ms)", "device", "exact"});
  for (const auto& d : datasets) {
    const DrainStats s = run_workload(d, "dead.after=1");
    table.add_row({d.name,
                   std::to_string(s.completed) + "/" +
                       std::to_string(kQueries),
                   std::to_string(s.degraded),
                   std::to_string(kQueries - s.completed),
                   agg::Table::fmt(s.makespan_us / 1000.0, 2),
                   s.healthy ? "healthy" : "dead", s.exact ? "yes" : "NO"});
    AGG_CHECK_MSG(s.completed == kQueries && s.degraded == kQueries,
                  "dead-device degradation must answer every query on the CPU");
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Resilience layer: retry/degradation overhead under "
                     "injected faults, and dead-device degradation."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Extension - fault injection & resilience",
      "Makespan overhead, retry and degradation counts of a mixed "
      "BFS/SSSP workload under deterministic fault plans; answers are "
      "verified exact against the serial CPU oracles.",
      opts);

  const auto datasets = bench::load_datasets(opts);

  std::printf("-- transient faults: retry/degradation overhead "
              "(24 queries, concurrency 4) --\n");
  bench_transient(datasets);

  std::printf("-- dead device (dead.after=1): full CPU degradation, "
              "no query lost --\n");
  bench_dead_device(datasets);
  return 0;
}
