// Extension experiment (ours): the serving layer. Two claims are measured
// on the modeled clock:
//
//  1. *Batched multi-source BFS*: answering a batch of 32 same-graph BFS
//     queries with one fused mask-per-node traversal (bfs_multi_engine)
//     beats 32 independent sequential traversals by >= 2x modeled
//     throughput — the fused pass shares the frontier structure, so each
//     adjacency list is read once per union-frontier iteration rather than
//     once per query.
//
//  2. *Stream concurrency*: a mixed BFS/SSSP workload drained through
//     GraphService at concurrency 4 finishes (modeled makespan) ahead of
//     the same workload at concurrency 1, because kernels from independent
//     queries backfill engine gaps and transfers overlap compute.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/prng.h"
#include "common/table.h"
#include "gpu_graph/bfs_multi_engine.h"
#include "runtime/adaptive_engine.h"
#include "service/graph_service.h"

namespace {

// Batched MS-BFS vs the same 32 queries run back-to-back on one device.
void bench_batching(const std::vector<graph::gen::Dataset>& datasets) {
  agg::Table table({"Network", "32 serial (ms)", "fused batch (ms)",
                    "speedup", "verified"});
  for (const auto& d : datasets) {
    agg::Prng prng(41);
    std::vector<graph::NodeId> sources;
    for (int i = 0; i < 32; ++i) {
      sources.push_back(
          static_cast<graph::NodeId>(prng.bounded(d.csr.num_nodes)));
    }

    double serial_us = 0;
    std::vector<std::vector<std::uint32_t>> expected;
    {
      simt::Device dev;
      gg::DeviceGraph dg = gg::DeviceGraph::upload(dev, d.csr, false);
      for (const auto s : sources) {
        const auto r = rt::adaptive_bfs(dev, dg, d.csr, s);
        serial_us += r.metrics.total_us;
        expected.push_back(r.level);
      }
      dg.release(dev);
    }

    double batch_us = 0;
    bool match = true;
    {
      simt::Device dev;
      gg::DeviceGraph dg = gg::DeviceGraph::upload(dev, d.csr, false);
      const auto r = rt::adaptive_bfs_multi(dev, dg, d.csr, sources);
      batch_us = r.metrics.total_us;
      for (std::size_t s = 0; s < sources.size() && match; ++s) {
        for (std::size_t v = 0; v < d.csr.num_nodes; ++v) {
          if (r.levels[v * sources.size() + s] != expected[s][v]) {
            match = false;
            break;
          }
        }
      }
      dg.release(dev);
    }

    table.add_row({d.name, agg::Table::fmt(serial_us / 1000.0, 2),
                   agg::Table::fmt(batch_us / 1000.0, 2),
                   agg::Table::fmt(serial_us / batch_us, 2),
                   match ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());
}

// Same submitted workload, drained at different concurrency levels.
void bench_concurrency(const std::vector<graph::gen::Dataset>& datasets) {
  agg::Table table({"Network", "c=1 (ms)", "c=2 (ms)", "c=4 (ms)",
                    "c=4 speedup"});
  for (const auto& d : datasets) {
    std::vector<double> makespans;
    for (const std::uint32_t c : {1u, 2u, 4u}) {
      svc::ServiceOptions opts;
      opts.concurrency = c;
      opts.batch_bfs = false;  // isolate stream interleaving from batching
      svc::GraphService service(opts);
      adaptive::Graph g = adaptive::Graph::from_csr(graph::Csr(d.csr));
      g.set_uniform_weights(1, 1000);
      const svc::GraphId gid = service.add_graph(std::move(g));

      agg::Prng prng(43);
      for (int i = 0; i < 24; ++i) {
        svc::QueryRequest req;
        req.graph = gid;
        req.algo = i % 3 == 2 ? svc::Algo::sssp : svc::Algo::bfs;
        req.source = static_cast<graph::NodeId>(
            prng.bounded(service.graph(gid).num_nodes()));
        service.submit(req);
      }
      const auto outcomes = service.drain();
      for (const auto& out : outcomes) AGG_CHECK(out.ok());
      makespans.push_back(service.makespan_us());
    }
    table.add_row({d.name, agg::Table::fmt(makespans[0] / 1000.0, 2),
                   agg::Table::fmt(makespans[1] / 1000.0, 2),
                   agg::Table::fmt(makespans[2] / 1000.0, 2),
                   agg::Table::fmt(makespans[0] / makespans[2], 2)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Serving layer: fused multi-source BFS batching and "
                     "multi-stream concurrency."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Extension - GraphService serving layer",
      "Batched MS-BFS throughput vs independent queries, and modeled "
      "makespan of a mixed workload vs stream concurrency.",
      opts);

  const auto datasets = bench::load_datasets(opts);

  std::printf("-- fused 32-source BFS vs 32 sequential BFS --\n");
  bench_batching(datasets);

  std::printf("-- mixed BFS/SSSP drain makespan vs concurrency "
              "(24 queries, batching off) --\n");
  bench_concurrency(datasets);
  return 0;
}
