// Reproduces Figure 2: working-set size per iteration of unordered SSSP on
// the CO-road, Amazon and SNS networks.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "gpu_graph/sssp_engine.h"

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Reproduces paper Figure 2: working-set evolution of "
                     "unordered SSSP."))
    return 0;
  auto opts = bench::parse_common(cli);
  if (!cli.has("datasets")) {
    opts.datasets = {graph::gen::DatasetId::co_road, graph::gen::DatasetId::amazon,
                     graph::gen::DatasetId::sns};
  }
  bench::print_banner(
      "Figure 2 - working set size during unordered SSSP",
      "Paper shape: limited work at the start, growth to a peak once enough "
      "nodes are discovered, then collapse; the road network stays flat and "
      "long, the scale-free networks spike.",
      opts);

  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    simt::Device dev;
    const auto r = gg::run_sssp(dev, d.csr, d.source, gg::parse_variant("U_T_BM"));
    const auto& its = r.metrics.iterations;

    std::uint64_t peak = 0, total = 0;
    std::size_t peak_at = 0;
    for (std::size_t i = 0; i < its.size(); ++i) {
      total += its[i].ws_size;
      if (its[i].ws_size > peak) {
        peak = its[i].ws_size;
        peak_at = i + 1;
      }
    }
    std::printf("--- %s: %zu iterations, peak |WS| = %llu (at iteration %zu), "
                "sum |WS| = %llu (%.2fx nodes) ---\n",
                d.name.c_str(), its.size(), static_cast<unsigned long long>(peak),
                peak_at, static_cast<unsigned long long>(total),
                static_cast<double>(total) / d.csr.num_nodes);

    // Bar-chart series, decimated to at most 48 rows.
    const std::size_t step = std::max<std::size_t>(1, its.size() / 48);
    for (std::size_t i = 0; i < its.size(); i += step) {
      const auto len = static_cast<int>(
          60.0 * static_cast<double>(its[i].ws_size) / static_cast<double>(peak));
      std::printf("  iter %5u |%-60s| %llu\n", its[i].iteration,
                  std::string(static_cast<std::size_t>(len), '#').c_str(),
                  static_cast<unsigned long long>(its[i].ws_size));
    }
    std::printf("\n");
  }
  return 0;
}
