// Extension experiment (ours): hybrid CPU/GPU execution vs GPU-only.
//
// The paper positions itself against Hong et al. [13] ("considers an
// adaptive solution that alternates CPU and GPU execution. We, on the other
// hand, focus on the automatic selection of different GPU solutions").
// Having both mechanisms in one framework lets us measure what each is
// worth: small frontiers run serially on the host (no launch/readback
// overhead), large ones on the device, with state-array transfers at each
// switch.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "runtime/adaptive_engine.h"

namespace {

void run_algo(bench::Algo algo, const bench::Options& opts) {
  agg::Table table({"Network", "adaptive GPU (ms)", "hybrid (ms)", "gain",
                    "CPU iters", "GPU iters"});
  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    const auto base = algo == bench::Algo::bfs ? bench::cpu_baseline_bfs(d)
                                               : bench::cpu_baseline_sssp(d);
    const auto& expected =
        algo == bench::Algo::bfs ? base.bfs_level : base.sssp_dist;

    auto run = [&](std::uint64_t threshold) {
      simt::Device dev;
      rt::AdaptiveOptions ao;
      ao.engine.hybrid_cpu_threshold = threshold;
      gg::TraversalMetrics m;
      if (algo == bench::Algo::bfs) {
        auto r = rt::adaptive_bfs(dev, d.csr, d.source, ao);
        AGG_CHECK(r.level == expected);
        m = std::move(r.metrics);
      } else {
        auto r = rt::adaptive_sssp(dev, d.csr, d.source, ao);
        AGG_CHECK(r.dist == expected);
        m = std::move(r.metrics);
      }
      return m;
    };

    const auto pure = run(0);
    // Host the frontiers that cannot fill the device (the T2 region).
    const auto mixed = run(2688);
    std::uint64_t cpu_iters = 0;
    for (const auto& it : mixed.iterations) cpu_iters += it.on_cpu;
    table.add_row(
        {d.name, agg::Table::fmt(pure.total_us / 1000.0, 2),
         agg::Table::fmt(mixed.total_us / 1000.0, 2),
         agg::Table::fmt(pure.total_us / mixed.total_us, 2) + "x",
         agg::Table::fmt_int(cpu_iters),
         agg::Table::fmt_int(mixed.iterations.size() - cpu_iters)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Hybrid CPU/GPU execution vs GPU-only adaptive (Hong et "
                     "al. [13] mechanism inside this framework)."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Extension - hybrid CPU/GPU execution",
      "Frontiers below T2 run serially on the host. Expected shape: large "
      "gains on the high-diameter road network (hundreds of tiny frontiers), "
      "no loss on scale-free graphs (one or two switches).",
      opts);

  std::printf(">>> BFS\n");
  run_algo(bench::Algo::bfs, opts);
  std::printf(">>> SSSP\n");
  run_algo(bench::Algo::sssp, opts);
  return 0;
}
