// Extension experiment (ours): the Harish & Narayanan-style edge-parallel
// baseline (the paper's reference [7]) against the paper's working-set
// framework. The paper's critique — "pretty basic and ineffective on sparse
// graphs used in practice" — is quantified: edge-parallel re-scans all m
// arcs every round, so high-diameter graphs pay m x diameter.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "gpu_graph/edge_parallel.h"
#include "gpu_graph/sssp_engine.h"
#include "runtime/adaptive_engine.h"

int main(int argc, char** argv) {
  agg::Cli cli(argc, argv);
  if (cli.maybe_help("Edge-parallel [7]-style SSSP vs the working-set "
                     "framework."))
    return 0;
  const auto opts = bench::parse_common(cli);
  bench::print_banner(
      "Baseline - edge-parallel SSSP (Harish & Narayanan style, ref. [7])",
      "Each round scans all m arcs with one thread per arc; no working set. "
      "Expected shape: competitive on low-diameter dense graphs, collapses "
      "on the road network (rounds ~ diameter).",
      opts);

  agg::Table table({"Network", "edge-parallel (ms)", "rounds", "U_T_QU (ms)",
                    "adaptive (ms)", "framework gain"});
  for (const auto id : opts.datasets) {
    const auto d = bench::load_dataset(id, opts.scale, opts.cache_dir);
    const auto base = bench::cpu_baseline_sssp(d);

    simt::Device d1, d2, d3;
    const auto ep = gg::run_sssp_edge_parallel(d1, d.csr, d.source);
    AGG_CHECK(ep.dist == base.sssp_dist);
    const auto tq = gg::run_sssp(d2, d.csr, d.source, gg::parse_variant("U_T_QU"));
    AGG_CHECK(tq.dist == base.sssp_dist);
    auto ad = rt::adaptive_sssp(d3, d.csr, d.source);
    AGG_CHECK(ad.dist == base.sssp_dist);

    table.add_row({d.name, agg::Table::fmt(ep.metrics.total_us / 1000.0, 2),
                   agg::Table::fmt_int(ep.metrics.iterations.size()),
                   agg::Table::fmt(tq.metrics.total_us / 1000.0, 2),
                   agg::Table::fmt(ad.metrics.total_us / 1000.0, 2),
                   agg::Table::fmt(ep.metrics.total_us / ad.metrics.total_us, 1) +
                       "x"});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
