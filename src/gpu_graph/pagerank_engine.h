// GPU PageRank by residual push ("delta-push") — another instantiation of
// the paper's iterative working-set framework: each active node folds its
// residual into its rank and pushes damped shares to its out-neighbors;
// nodes whose residual crosses the tolerance re-enter the working set.
// Converges to the fixpoint of  p = (1-d)/n + d * M p  (dangling mass is
// absorbed, matching cpu::pagerank).
#pragma once

#include <vector>

#include "gpu_graph/device_graph.h"
#include "gpu_graph/engine_common.h"
#include "gpu_graph/metrics.h"
#include "graph/csr.h"
#include "simt/device.h"

namespace gg {

struct PageRankOptions {
  double damping = 0.85;
  // A node re-enters the working set while its residual exceeds
  // push_tolerance * (1-damping)/n (i.e. this is relative to the per-node
  // teleport mass, making accuracy independent of graph size).
  double push_tolerance = 1e-3;
  EngineOptions engine;
};

struct GpuPageRankResult {
  std::vector<float> rank;
  TraversalMetrics metrics;
};

GpuPageRankResult run_pagerank(simt::Device& dev, const graph::Csr& g,
                               const VariantSelector& selector,
                               const PageRankOptions& opts = {});

// Resident-graph form (see bfs_engine.h): `dg` must have been uploaded from
// `g`; no upload is charged to the metrics.
GpuPageRankResult run_pagerank(simt::Device& dev, DeviceGraph& dg,
                               const graph::Csr& g,
                               const VariantSelector& selector,
                               const PageRankOptions& opts = {});

inline GpuPageRankResult run_pagerank(simt::Device& dev, const graph::Csr& g,
                                      Variant variant,
                                      const PageRankOptions& opts = {}) {
  return run_pagerank(dev, g, fixed_variant(variant), opts);
}

}  // namespace gg
