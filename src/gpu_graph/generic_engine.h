// Generic frontier engine: the paper's reusable "algorithm pattern"
// (Sec. II: "we provide to the user a graph API including some algorithm
// patterns that can be reused in the context of more complex applications").
//
// A user algorithm supplies a per-element operator; the engine supplies
// everything the built-in algorithms share — the two-kernel iteration
// framework, the dual bitmap/queue working set, the thread/block/warp
// mapping shapes, adaptive variant selection, monitoring, and metrics.
//
// The operator has the signature
//
//   void op(simt::ThreadCtx& ctx, std::uint32_t id,
//           std::uint32_t offset, std::uint32_t step, gg::Push& push);
//
// and must visit the element's adjacency as `for (e = begin+offset; e < end;
// e += step)` so every mapping granularity partitions the work correctly.
// Algorithm state lives in user-allocated DeviceBuffers accessed through
// `ctx` with user site ids 0..13 (14-17 are reserved by the engine).
// Calling `push.mark(t)` admits node t into the next working set
// (deduplicated through the shared update vector).
#pragma once

#include <algorithm>
#include <vector>

#include "gpu_graph/device_graph.h"
#include "gpu_graph/engine_common.h"
#include "gpu_graph/metrics.h"
#include "gpu_graph/workset.h"
#include "simt/launch.h"

namespace gg {

namespace generic_detail {
inline constexpr simt::Site kUpdateLoad{14, "generic.update-load"};
inline constexpr simt::Site kUpdateStore{15, "generic.update-store"};
inline constexpr simt::Site kQueueLoad{16, "generic.queue-load"};
inline constexpr simt::Site kBitmapClear{17, "generic.bitmap-clear"};
}  // namespace generic_detail

// Handle through which an operator admits nodes to the next working set.
class Push {
 public:
  Push(simt::ThreadCtx& ctx, Workset& ws, std::vector<std::uint32_t>& updated)
      : ctx_(&ctx), ws_(&ws), updated_(&updated) {}

  void mark(std::uint32_t node) {
    if (ctx_->load(ws_->update(), node, generic_detail::kUpdateLoad) == 0) {
      ctx_->store(ws_->update(), node, std::uint8_t{1},
                  generic_detail::kUpdateStore);
      updated_->push_back(node);
    }
  }

 private:
  simt::ThreadCtx* ctx_;
  Workset* ws_;
  std::vector<std::uint32_t>* updated_;
};

struct GenericResult {
  TraversalMetrics metrics;
};

// Runs the operator to a fixpoint starting from `initial` (sorted, unique
// node ids). The DeviceGraph is supplied by the caller so the operator can
// capture it (and its own state buffers) directly.
template <typename Op>
GenericResult run_frontier(simt::Device& dev, const graph::Csr& g,
                           const DeviceGraph& dg,
                           std::vector<std::uint32_t> initial, Op&& op,
                           const VariantSelector& selector,
                           const EngineOptions& opts = {}) {
  namespace gd = generic_detail;
  const simt::DeviceStats stats_before = dev.stats();
  const double t_begin = dev.now_us();

  GenericResult result;
  const std::uint32_t block_tpb =
      opts.block_tpb ? opts.block_tpb : derive_block_tpb(dg.avg_outdegree);
  Workset ws(dev, g.num_nodes);

  SelectorInput sel;
  sel.ws_size = initial.size();
  sel.avg_outdegree = dg.avg_outdegree;
  sel.outdeg_stddev = dg.outdeg_stddev;
  sel.num_nodes = g.num_nodes;
  Variant variant = selector(sel);
  variant.ordering = Ordering::unordered;

  std::vector<std::uint32_t> frontier = std::move(initial);
  std::sort(frontier.begin(), frontier.end());
  for (const std::uint32_t v : frontier) ws.update().host_view()[v] = 1;
  ws.generate(dev, variant.repr, frontier,
              opts.scan_queue_gen ? Workset::GenMethod::scan
                                  : Workset::GenMethod::atomic);

  std::vector<std::uint32_t> updated;
  const std::uint64_t max_iters =
      opts.max_iterations ? opts.max_iterations : 64ull * g.num_nodes + 4096;

  // One launch of the computation kernel under the current variant. Always
  // LaunchPolicy::serial: the user-supplied operator may branch on atomic
  // returns, and Push records updates into a host-side vector.
  auto launch_op = [&](Variant v) {
    simt::Predicate pred;
    pred.base_addr = ws.bitmap().base_addr();
    pred.stride = 1;
    pred.ops = 2;
    const std::uint32_t n = g.num_nodes;

    auto body = [&](simt::ThreadCtx& ctx, std::uint32_t id, std::uint32_t offset,
                    std::uint32_t step) {
      Push push(ctx, ws, updated);
      op(ctx, id, offset, step, push);
    };

    switch (v.mapping) {
      case Mapping::thread:
        if (v.repr == WorksetRepr::bitmap) {
          simt::launch(dev, "generic.T_BM",
                       simt::GridSpec::over_threads(n, opts.thread_tpb, frontier, pred),
                       [&](simt::ThreadCtx& ctx) {
                         const auto id = static_cast<std::uint32_t>(ctx.global_id());
                         ctx.store(ws.bitmap(), id, std::uint8_t{0}, gd::kBitmapClear);
                         body(ctx, id, 0, 1);
                       });
        } else {
          simt::launch(dev, "generic.T_QU",
                       simt::GridSpec::dense(frontier.size(), opts.thread_tpb),
                       [&](simt::ThreadCtx& ctx) {
                         const std::uint32_t id =
                             ctx.load(ws.queue(), ctx.global_id(), gd::kQueueLoad);
                         body(ctx, id, 0, 1);
                       });
        }
        break;
      case Mapping::block:
        if (v.repr == WorksetRepr::bitmap) {
          simt::launch(dev, "generic.B_BM",
                       simt::GridSpec::over_blocks(n, block_tpb, frontier, pred),
                       [&](simt::ThreadCtx& ctx) {
                         const auto id = static_cast<std::uint32_t>(ctx.block_idx());
                         if (ctx.thread_in_block() == 0) {
                           ctx.store(ws.bitmap(), id, std::uint8_t{0}, gd::kBitmapClear);
                         }
                         body(ctx, id, ctx.thread_in_block(), ctx.block_dim());
                       });
        } else {
          simt::launch(dev, "generic.B_QU",
                       simt::GridSpec::dense(frontier.size() * block_tpb, block_tpb),
                       [&](simt::ThreadCtx& ctx) {
                         const std::uint32_t id =
                             ctx.load(ws.queue(), ctx.block_idx(), gd::kQueueLoad);
                         body(ctx, id, ctx.thread_in_block(), ctx.block_dim());
                       });
        }
        break;
      case Mapping::warp:
        if (v.repr == WorksetRepr::bitmap) {
          simt::launch(dev, "generic.W_BM",
                       simt::GridSpec::over_blocks(n, simt::kWarpSize, frontier, pred),
                       [&](simt::ThreadCtx& ctx) {
                         const auto id = static_cast<std::uint32_t>(ctx.block_idx());
                         if (ctx.thread_in_block() == 0) {
                           ctx.store(ws.bitmap(), id, std::uint8_t{0}, gd::kBitmapClear);
                         }
                         body(ctx, id, ctx.thread_in_block(), simt::kWarpSize);
                       });
        } else {
          simt::launch(dev, "generic.W_QU",
                       simt::GridSpec::dense(frontier.size() * simt::kWarpSize,
                                             opts.thread_tpb),
                       [&](simt::ThreadCtx& ctx) {
                         const auto wid = static_cast<std::uint32_t>(
                             ctx.global_id() / simt::kWarpSize);
                         const std::uint32_t id =
                             ctx.load(ws.queue(), wid, gd::kQueueLoad);
                         body(ctx, id,
                              static_cast<std::uint32_t>(ctx.global_id() %
                                                         simt::kWarpSize),
                              simt::kWarpSize);
                       });
        }
        break;
    }
  };

  std::uint32_t iteration = 0;
  while (!frontier.empty()) {
    ++iteration;
    AGG_CHECK_MSG(iteration <= max_iters, "operator failed to converge");
    const double t_iter = dev.now_us();

    launch_op(variant);
    for (const std::uint32_t v : frontier) {
      result.metrics.edges_processed += g.degree(v);
    }
    std::sort(updated.begin(), updated.end());

    if (variant.repr == WorksetRepr::queue) {
      ws.charge_queue_len_readback(dev);
    } else {
      ws.charge_changed_flag_readback(dev);
    }

    Variant next = variant;
    if (opts.monitor_interval > 0 && iteration % opts.monitor_interval == 0) {
      if (variant.repr == WorksetRepr::bitmap) {
        ws.charge_bitmap_count_kernel(dev);
      }
      sel.iteration = iteration;
      sel.ws_size = updated.size();
      ++result.metrics.decisions;
      next = selector(sel);
      next.ordering = Ordering::unordered;
      if (next != variant) ++result.metrics.switches;
    }

    if (!updated.empty()) {
      ws.generate(dev, next.repr, updated,
                  opts.scan_queue_gen ? Workset::GenMethod::scan
                                      : Workset::GenMethod::atomic);
    }
    record_iteration(result.metrics, "generic",
                     {iteration, frontier.size(), variant,
                      dev.now_us() - t_iter},
                     dev.now_us());
    frontier.swap(updated);
    updated.clear();
    variant = next;
  }

  ws.release(dev);
  fill_from_device_delta(result.metrics, stats_before, dev.stats(), t_begin,
                         dev.now_us());
  return result;
}

}  // namespace gg
