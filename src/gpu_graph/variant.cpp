#include "gpu_graph/variant.h"

#include "common/check.h"

namespace gg {

std::array<Variant, 8> all_variants() {
  std::array<Variant, 8> out;
  std::size_t i = 0;
  for (const Ordering o : {Ordering::ordered, Ordering::unordered}) {
    for (const Mapping m : {Mapping::thread, Mapping::block}) {
      for (const WorksetRepr w : {WorksetRepr::bitmap, WorksetRepr::queue}) {
        out[i++] = Variant{o, m, w};
      }
    }
  }
  return out;
}

std::array<Variant, 4> unordered_variants() {
  std::array<Variant, 4> out;
  std::size_t i = 0;
  for (const Mapping m : {Mapping::thread, Mapping::block}) {
    for (const WorksetRepr w : {WorksetRepr::bitmap, WorksetRepr::queue}) {
      out[i++] = Variant{Ordering::unordered, m, w};
    }
  }
  return out;
}

std::array<Variant, 2> warp_centric_variants() {
  return {Variant{Ordering::unordered, Mapping::warp, WorksetRepr::bitmap},
          Variant{Ordering::unordered, Mapping::warp, WorksetRepr::queue}};
}

const char* direction_name(Direction d) {
  switch (d) {
    case Direction::push: return "push";
    case Direction::pull: return "pull";
    case Direction::adaptive: return "adaptive";
  }
  return "push";
}

std::string variant_name(const Variant& v) {
  std::string name;
  name += v.ordering == Ordering::ordered ? "O" : "U";
  switch (v.mapping) {
    case Mapping::thread: name += "_T"; break;
    case Mapping::block: name += "_B"; break;
    case Mapping::warp: name += "_W"; break;
  }
  name += v.repr == WorksetRepr::bitmap ? "_BM" : "_QU";
  // Push is the paper's (implicit) direction and keeps the paper's names;
  // the direction extension only surfaces when it deviates.
  if (v.direction == Direction::pull) name += "_PULL";
  if (v.direction == Direction::adaptive) name += "_DO";
  return name;
}

std::optional<Variant> try_parse_variant(const std::string& name) {
  std::string base = name;
  Direction dir = Direction::push;
  const auto strip = [&base](const char* suffix) {
    const std::string s(suffix);
    if (base.size() > s.size() &&
        base.compare(base.size() - s.size(), s.size(), s) == 0) {
      base.resize(base.size() - s.size());
      return true;
    }
    return false;
  };
  if (strip("_PULL")) {
    dir = Direction::pull;
  } else if (strip("_DO")) {
    dir = Direction::adaptive;
  } else {
    strip("_PUSH");  // explicit push spelling, same as no suffix
  }
  if (base.size() != 6 || base[1] != '_' || base[3] != '_') return std::nullopt;
  Variant v;
  v.direction = dir;
  if (base[0] == 'O') {
    v.ordering = Ordering::ordered;
  } else if (base[0] == 'U') {
    v.ordering = Ordering::unordered;
  } else {
    return std::nullopt;
  }
  switch (base[2]) {
    case 'T': v.mapping = Mapping::thread; break;
    case 'B': v.mapping = Mapping::block; break;
    case 'W': v.mapping = Mapping::warp; break;
    default: return std::nullopt;
  }
  const std::string repr = base.substr(4);
  if (repr == "BM") {
    v.repr = WorksetRepr::bitmap;
  } else if (repr == "QU") {
    v.repr = WorksetRepr::queue;
  } else {
    return std::nullopt;
  }
  return v;
}

Variant parse_variant(const std::string& name) {
  const std::optional<Variant> v = try_parse_variant(name);
  AGG_CHECK_MSG(v.has_value(),
                "variant names look like U_T_BM (optionally _PULL/_DO)");
  return *v;
}

}  // namespace gg
