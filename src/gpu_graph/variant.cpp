#include "gpu_graph/variant.h"

#include "common/check.h"

namespace gg {

std::array<Variant, 8> all_variants() {
  std::array<Variant, 8> out;
  std::size_t i = 0;
  for (const Ordering o : {Ordering::ordered, Ordering::unordered}) {
    for (const Mapping m : {Mapping::thread, Mapping::block}) {
      for (const WorksetRepr w : {WorksetRepr::bitmap, WorksetRepr::queue}) {
        out[i++] = Variant{o, m, w};
      }
    }
  }
  return out;
}

std::array<Variant, 4> unordered_variants() {
  std::array<Variant, 4> out;
  std::size_t i = 0;
  for (const Mapping m : {Mapping::thread, Mapping::block}) {
    for (const WorksetRepr w : {WorksetRepr::bitmap, WorksetRepr::queue}) {
      out[i++] = Variant{Ordering::unordered, m, w};
    }
  }
  return out;
}

std::array<Variant, 2> warp_centric_variants() {
  return {Variant{Ordering::unordered, Mapping::warp, WorksetRepr::bitmap},
          Variant{Ordering::unordered, Mapping::warp, WorksetRepr::queue}};
}

std::string variant_name(const Variant& v) {
  std::string name;
  name += v.ordering == Ordering::ordered ? "O" : "U";
  switch (v.mapping) {
    case Mapping::thread: name += "_T"; break;
    case Mapping::block: name += "_B"; break;
    case Mapping::warp: name += "_W"; break;
  }
  name += v.repr == WorksetRepr::bitmap ? "_BM" : "_QU";
  return name;
}

Variant parse_variant(const std::string& name) {
  AGG_CHECK_MSG(name.size() == 6, "variant names look like U_T_BM");
  Variant v;
  AGG_CHECK(name[0] == 'O' || name[0] == 'U');
  v.ordering = name[0] == 'O' ? Ordering::ordered : Ordering::unordered;
  AGG_CHECK(name[2] == 'T' || name[2] == 'B' || name[2] == 'W');
  v.mapping = name[2] == 'T'   ? Mapping::thread
              : name[2] == 'B' ? Mapping::block
                               : Mapping::warp;
  const std::string repr = name.substr(4);
  AGG_CHECK(repr == "BM" || repr == "QU");
  v.repr = repr == "BM" ? WorksetRepr::bitmap : WorksetRepr::queue;
  return v;
}

}  // namespace gg
