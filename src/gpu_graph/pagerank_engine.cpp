#include "gpu_graph/pagerank_engine.h"

#include <algorithm>
#include <numeric>

#include "gpu_graph/device_graph.h"
#include "gpu_graph/workset.h"
#include "simt/launch.h"

namespace gg {
namespace {

constexpr simt::Site kResidual{0, "pr.residual"};
constexpr simt::Site kRankStore{1, "pr.rank"};
constexpr simt::Site kRowOffsets{2, "pr.row-offsets"};
constexpr simt::Site kNodeOps{3, "pr.node-ops"};
constexpr simt::Site kEdgeLoad{4, "pr.edge-load"};
constexpr simt::Site kEdgeOps{5, "pr.edge-ops"};
constexpr simt::Site kPush{6, "pr.push-atomic"};
constexpr simt::Site kUpdateLoad{7, "pr.update-load"};
constexpr simt::Site kUpdateStore{8, "pr.update-store"};
constexpr simt::Site kQueueLoad{9, "pr.queue-load"};
constexpr simt::Site kBitmapClear{10, "pr.bitmap-clear"};

struct PrState {
  simt::DeviceBuffer<float>* rank;
  simt::DeviceBuffer<float>* residual;
  DeviceGraph* graph;
  Workset* ws;
  std::vector<std::uint32_t>* updated;
  // Residuals of the frontier as of kernel launch, indexed by node id. On
  // real hardware every lane of an element's warp reads r[id] in lockstep
  // before the owner clears it; the sequential lane emulation reproduces
  // that by snapshotting at launch. Pushes that land on a frontier node
  // *during* the kernel stay in its residual for the next round.
  std::vector<float>* snapshot;
  float damping;
  float push_tolerance;
};

// Folds the node's residual into its rank and pushes damped shares. The
// residual is consumed by the element's *owner* lane (thread mapping) or
// lane 0 (block/warp mapping); pushes are strided like the other engines.
void push_element(simt::ThreadCtx& ctx, PrState& st, std::uint32_t id,
                  std::uint32_t offset, std::uint32_t step) {
  const float now = ctx.load(*st.residual, id, kResidual);
  const float res = (*st.snapshot)[id];  // lockstep read-before-clear value
  const std::uint32_t begin = ctx.load(st.graph->row_offsets, id, kRowOffsets);
  const std::uint32_t end = ctx.load(st.graph->row_offsets, id + 1, kRowOffsets);
  ctx.compute(6, kNodeOps);
  if (offset == 0) {
    // Claim the snapshot residual: fold into the rank, leave any mass that
    // arrived during this kernel for the next round.
    const float rank = ctx.load(*st.rank, id, kRankStore);
    ctx.store(*st.rank, id, rank + res, kRankStore);
    ctx.store(*st.residual, id, now - res, kResidual);
  }
  const std::uint32_t deg = end - begin;
  if (deg == 0) return;  // dangling: mass absorbed
  const float share = st.damping * res / static_cast<float>(deg);

  for (std::uint32_t e = begin + offset; e < end; e += step) {
    const std::uint32_t t = ctx.load(st.graph->col_indices, e, kEdgeLoad);
    ctx.compute(3, kEdgeOps);
    const float before = ctx.atomic_add(*st.residual, t, share, kPush);
    const float after = before + share;
    if (after >= st.push_tolerance &&
        ctx.load(st.ws->update(), t, kUpdateLoad) == 0) {
      ctx.store(st.ws->update(), t, std::uint8_t{1}, kUpdateStore);
      st.updated->push_back(t);
    }
  }
}

// Keeps the default LaunchPolicy::serial: the push branches on the float
// atomic_add return (residual crossing the tolerance) and push_backs into the
// host-side updated list, both order-dependent across blocks.
void launch_pr(simt::Device& dev, PrState& st, Variant v,
               std::span<const std::uint32_t> frontier, std::uint32_t thread_tpb,
               std::uint32_t block_tpb) {
  const std::uint32_t n = st.graph->num_nodes;
  simt::Predicate pred;
  pred.base_addr = st.ws->bitmap().base_addr();
  pred.stride = 1;
  pred.ops = 2;

  switch (v.mapping) {
    case Mapping::thread:
      if (v.repr == WorksetRepr::bitmap) {
        const auto grid = simt::GridSpec::over_threads(n, thread_tpb, frontier, pred);
        simt::launch(dev, "pr.compute.T_BM", grid, [&](simt::ThreadCtx& ctx) {
          const auto id = static_cast<std::uint32_t>(ctx.global_id());
          ctx.store(st.ws->bitmap(), id, std::uint8_t{0}, kBitmapClear);
          push_element(ctx, st, id, 0, 1);
        });
      } else {
        const auto grid = simt::GridSpec::dense(frontier.size(), thread_tpb);
        simt::launch(dev, "pr.compute.T_QU", grid, [&](simt::ThreadCtx& ctx) {
          const std::uint32_t id =
              ctx.load(st.ws->queue(), ctx.global_id(), kQueueLoad);
          push_element(ctx, st, id, 0, 1);
        });
      }
      break;
    case Mapping::block:
      if (v.repr == WorksetRepr::bitmap) {
        const auto grid = simt::GridSpec::over_blocks(n, block_tpb, frontier, pred);
        simt::launch(dev, "pr.compute.B_BM", grid, [&](simt::ThreadCtx& ctx) {
          const auto id = static_cast<std::uint32_t>(ctx.block_idx());
          if (ctx.thread_in_block() == 0) {
            ctx.store(st.ws->bitmap(), id, std::uint8_t{0}, kBitmapClear);
          }
          push_element(ctx, st, id, ctx.thread_in_block(), ctx.block_dim());
        });
      } else {
        const auto grid =
            simt::GridSpec::dense(frontier.size() * block_tpb, block_tpb);
        simt::launch(dev, "pr.compute.B_QU", grid, [&](simt::ThreadCtx& ctx) {
          const std::uint32_t id =
              ctx.load(st.ws->queue(), ctx.block_idx(), kQueueLoad);
          push_element(ctx, st, id, ctx.thread_in_block(), ctx.block_dim());
        });
      }
      break;
    case Mapping::warp:
      if (v.repr == WorksetRepr::bitmap) {
        const auto grid =
            simt::GridSpec::over_blocks(n, simt::kWarpSize, frontier, pred);
        simt::launch(dev, "pr.compute.W_BM", grid, [&](simt::ThreadCtx& ctx) {
          const auto id = static_cast<std::uint32_t>(ctx.block_idx());
          if (ctx.thread_in_block() == 0) {
            ctx.store(st.ws->bitmap(), id, std::uint8_t{0}, kBitmapClear);
          }
          push_element(ctx, st, id, ctx.thread_in_block(), simt::kWarpSize);
        });
      } else {
        const auto grid =
            simt::GridSpec::dense(frontier.size() * simt::kWarpSize, thread_tpb);
        simt::launch(dev, "pr.compute.W_QU", grid, [&](simt::ThreadCtx& ctx) {
          const auto wid =
              static_cast<std::uint32_t>(ctx.global_id() / simt::kWarpSize);
          const std::uint32_t id = ctx.load(st.ws->queue(), wid, kQueueLoad);
          push_element(
              ctx, st, id,
              static_cast<std::uint32_t>(ctx.global_id() % simt::kWarpSize),
              simt::kWarpSize);
        });
      }
      break;
  }
}

}  // namespace

GpuPageRankResult run_pagerank(simt::Device& dev, const graph::Csr& g,
                               const VariantSelector& selector,
                               const PageRankOptions& opts) {
  simt::StreamGuard sguard(dev, opts.engine.stream);
  const simt::DeviceStats stats_before = dev.stats();
  const double t_begin = dev.now_us();
  DeviceGraph dg = DeviceGraph::upload(dev, g, /*with_weights=*/false);
  GpuPageRankResult result = run_pagerank(dev, dg, g, selector, opts);
  dg.release(dev);
  result.metrics.total_us = dev.now_us() - t_begin;
  result.metrics.transfer_us =
      dev.stats().transfer_time_us - stats_before.transfer_time_us;
  return result;
}

GpuPageRankResult run_pagerank(simt::Device& dev, DeviceGraph& dg,
                               const graph::Csr& g,
                               const VariantSelector& selector,
                               const PageRankOptions& opts) {
  AGG_CHECK(g.num_nodes > 0);
  AGG_CHECK(opts.damping > 0.0 && opts.damping < 1.0);
  simt::StreamGuard sguard(dev, opts.engine.stream);
  const simt::DeviceStats stats_before = dev.stats();
  const double t_begin = dev.now_us();

  GpuPageRankResult result;
  const std::uint32_t block_tpb = opts.engine.block_tpb
                                      ? opts.engine.block_tpb
                                      : derive_block_tpb(dg.avg_outdegree);

  auto rank = dev.alloc<float>(g.num_nodes, "pr.rank");
  auto residual = dev.alloc<float>(g.num_nodes, "pr.residual");
  dev.fill(rank, 0.0f);
  dev.fill(residual,
           static_cast<float>((1.0 - opts.damping) / g.num_nodes));
  Workset ws(dev, g.num_nodes);

  SelectorInput sel;
  sel.ws_size = g.num_nodes;
  sel.avg_outdegree = dg.avg_outdegree;
  sel.outdeg_stddev = dg.outdeg_stddev;
  sel.num_nodes = g.num_nodes;
  Variant variant = selector(sel);
  variant.ordering = Ordering::unordered;

  std::vector<std::uint32_t> frontier(g.num_nodes);
  std::iota(frontier.begin(), frontier.end(), 0u);
  std::fill(ws.update().host_view().begin(), ws.update().host_view().end(),
            std::uint8_t{1});
  ws.generate(dev, variant.repr, frontier);

  std::vector<std::uint32_t> updated;
  std::vector<float> snapshot(g.num_nodes, 0.0f);
  // The re-entry threshold scales with the per-node teleport mass so that
  // accuracy is independent of the graph size.
  const auto threshold = static_cast<float>(
      opts.push_tolerance * (1.0 - opts.damping) / g.num_nodes);
  PrState st{&rank,
             &residual,
             &dg,
             &ws,
             &updated,
             &snapshot,
             static_cast<float>(opts.damping),
             threshold};

  const std::uint64_t max_iters =
      opts.engine.max_iterations ? opts.engine.max_iterations
                                 : 64ull * g.num_nodes + 4096;

  std::uint32_t iteration = 0;
  while (!frontier.empty()) {
    ++iteration;
    AGG_CHECK_MSG(iteration <= max_iters, "PageRank failed to converge");
    const double t_iter = dev.now_us();

    for (const std::uint32_t v : frontier) {
      snapshot[v] = residual.host_view()[v];
    }
    launch_pr(dev, st, variant, frontier, opts.engine.thread_tpb, block_tpb);
    for (const std::uint32_t v : frontier) {
      result.metrics.edges_processed += g.degree(v);
    }
    std::sort(updated.begin(), updated.end());

    if (variant.repr == WorksetRepr::queue) {
      ws.charge_queue_len_readback(dev);
    } else {
      ws.charge_changed_flag_readback(dev);
    }

    Variant next = variant;
    const std::uint32_t interval =
        opts.engine.monitor_interval ? opts.engine.monitor_interval : 0;
    if (interval > 0 && iteration % interval == 0) {
      if (variant.repr == WorksetRepr::bitmap) {
        ws.charge_bitmap_count_kernel(dev);
      }
      sel.iteration = iteration;
      sel.ws_size = updated.size();
      ++result.metrics.decisions;
      next = selector(sel);
      next.ordering = Ordering::unordered;
      if (next != variant) ++result.metrics.switches;
    }

    if (!updated.empty()) {
      ws.generate(dev, next.repr, updated);
    }

    record_iteration(result.metrics, "pagerank",
                     {iteration, frontier.size(), variant,
                      dev.now_us() - t_iter},
                     dev.now_us());
    frontier.swap(updated);
    updated.clear();
    variant = next;
  }

  result.rank.resize(g.num_nodes);
  dev.memcpy_d2h(std::span<float>(result.rank), rank);
  // Fold unconverged residual mass in (bounded by n * push_tolerance).
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    result.rank[v] += residual.host_view()[v];
  }

  ws.release(dev);
  dev.free(rank);
  dev.free(residual);
  fill_from_device_delta(result.metrics, stats_before, dev.stats(), t_begin,
                         dev.now_us());
  return result;
}

}  // namespace gg
