// Dual-representation device working set (paper Sec. IV.C / V.C / VI).
//
// Both representations are backed by the same *update vector*: the
// computation kernel marks nodes to be processed next by setting update[id],
// and the CUDA_workset_gen kernel (Fig. 9) transforms the update vector into
// bitmap or queue form while clearing it. Because generation starts from the
// shared update vector every iteration, the adaptive runtime can switch
// representation between iterations at no extra cost — the paper's
// "data structures that lead to minimal overhead when switching" design.
//
// Simulation note: the engines keep a host-side shadow of the ids whose
// update flag is set (collected while the computation kernel executes) so
// the generation kernel can be driven as a sparse launch; the device-side
// contents of bitmap/queue/update are nevertheless fully materialized and
// verified by tests.
#pragma once

#include <cstdint>
#include <span>

#include "gpu_graph/variant.h"
#include "simt/device.h"

namespace gg {

class Workset {
 public:
  Workset(simt::Device& dev, std::uint32_t num_nodes);
  void release(simt::Device& dev);

  std::uint32_t num_nodes() const { return n_; }

  // Seeds the working set with the traversal source in `repr` form.
  void init_source(simt::Device& dev, std::uint32_t source, WorksetRepr repr);

  // How the queue form is generated (paper Sec. V.C): `atomic` is the basic
  // implementation of [33] (one atomicAdd per inserted element — serialized
  // on the tail counter); `scan` is the Merrill et al. optimization the
  // paper cites as orthogonal (an exclusive prefix scan over the update
  // vector computes insertion offsets without atomics, at the cost of extra
  // passes over all n flags).
  enum class GenMethod { atomic, scan };

  // Runs CUDA_workset_gen: transforms the update vector into `repr`,
  // clearing the flags. `updated` is the sorted host shadow of the set
  // flags. Returns the working-set size (= updated.size()).
  std::uint64_t generate(simt::Device& dev, WorksetRepr repr,
                         std::span<const std::uint32_t> updated,
                         GenMethod method = GenMethod::atomic);

  // Clears the bitmap bits of `frontier` (the sorted current working set).
  // Pull (gather) iterations read the frontier bitmap concurrently from many
  // threads, so — unlike the push kernels, which clear their own bit as they
  // process it — the consumed frontier is wiped afterwards by this sparse
  // kernel, restoring the bitmap-holds-exactly-the-frontier invariant before
  // the next generate().
  void clear_frontier_bitmap(simt::Device& dev,
                             std::span<const std::uint32_t> frontier);

  // Termination / monitoring readback costs (paper Sec. VI.E):
  //  * queue mode: the queue length is read back anyway (the host needs the
  //    next grid size) — charge_queue_len_readback();
  //  * bitmap mode: termination uses a 4-byte changed-flag readback; the
  //    exact working-set size requires the extra population-count kernel,
  //    charged only on sampled iterations — charge_bitmap_count_kernel().
  void charge_queue_len_readback(simt::Device& dev) const;
  void charge_changed_flag_readback(simt::Device& dev) const;
  void charge_bitmap_count_kernel(simt::Device& dev) const;

  simt::DeviceBuffer<std::uint8_t>& bitmap() { return bitmap_; }
  simt::DeviceBuffer<std::uint32_t>& queue() { return queue_; }
  simt::DeviceBuffer<std::uint32_t>& queue_len() { return queue_len_; }
  simt::DeviceBuffer<std::uint8_t>& update() { return update_; }
  const simt::DeviceBuffer<std::uint8_t>& bitmap() const { return bitmap_; }
  const simt::DeviceBuffer<std::uint32_t>& queue() const { return queue_; }
  const simt::DeviceBuffer<std::uint8_t>& update() const { return update_; }

 private:
  std::uint32_t n_ = 0;
  simt::DeviceBuffer<std::uint8_t> bitmap_;      // n bytes
  simt::DeviceBuffer<std::uint32_t> queue_;      // n ids
  simt::DeviceBuffer<std::uint32_t> queue_len_;  // scalar
  simt::DeviceBuffer<std::uint8_t> update_;      // n flags
  simt::DeviceBuffer<std::uint32_t> changed_;    // scalar flag
};

}  // namespace gg
