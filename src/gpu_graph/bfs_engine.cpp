#include "gpu_graph/bfs_engine.h"

#include <algorithm>
#include <cmath>

#include "gpu_graph/device_graph.h"
#include "gpu_graph/workset.h"
#include "simt/launch.h"

namespace gg {
namespace {

// Static access sites of the CUDA_computation kernel (Fig. 9 top).
constexpr simt::Site kNodeLevel{0, "bfs.node-level"};
constexpr simt::Site kRowOffsets{1, "bfs.row-offsets"};
constexpr simt::Site kNodeOps{2, "bfs.node-ops"};
constexpr simt::Site kEdgeLoad{3, "bfs.edge-load"};
constexpr simt::Site kEdgeOps{4, "bfs.edge-ops"};
constexpr simt::Site kNbrLevel{5, "bfs.nbr-level"};
constexpr simt::Site kLevelStore{6, "bfs.level-store"};
constexpr simt::Site kUpdateLoad{7, "bfs.update-load"};
constexpr simt::Site kUpdateStore{8, "bfs.update-store"};
constexpr simt::Site kQueueLoad{9, "bfs.queue-load"};
constexpr simt::Site kBitmapClear{10, "bfs.bitmap-clear"};
constexpr simt::Site kPullRowOffsets{11, "bfs.pull-row-offsets"};
constexpr simt::Site kPullEdgeLoad{12, "bfs.pull-edge-load"};
constexpr simt::Site kPullFrontierTest{13, "bfs.pull-frontier-test"};

struct BfsKernelState {
  simt::DeviceBuffer<std::uint32_t>* level;
  DeviceGraph* graph;
  Workset* ws;
  std::vector<std::uint32_t>* updated;  // host shadow of set update flags
  bool ordered;
};

// Per-element body shared by all launch shapes. The caller chooses how the
// adjacency is partitioned: thread mapping visits it whole (offset 0, step
// 1); block mapping strides it across the block; warp-centric mapping
// strides it across the 32 lanes of the owning virtual warp.
void visit_element(simt::ThreadCtx& ctx, BfsKernelState& st, std::uint32_t id,
                   std::uint32_t offset, std::uint32_t step) {
  const std::uint32_t lvl = ctx.load(*st.level, id, kNodeLevel);
  const std::uint32_t begin = ctx.load(st.graph->row_offsets, id, kRowOffsets);
  const std::uint32_t end = ctx.load(st.graph->row_offsets, id + 1, kRowOffsets);
  ctx.compute(4, kNodeOps);
  const std::uint32_t next = lvl + 1;

  for (std::uint32_t e = begin + offset; e < end; e += step) {
    const std::uint32_t t = ctx.load(st.graph->col_indices, e, kEdgeLoad);
    ctx.compute(3, kEdgeOps);
    const std::uint32_t tl = ctx.load(*st.level, t, kNbrLevel);
    // Fig. 4: ordered processes a node once (undefined level); unordered
    // re-admits as long as the level decreases.
    const bool improves = st.ordered ? tl == graph::kInfinity : next < tl;
    if (improves) {
      ctx.store(*st.level, t, next, kLevelStore);
      if (ctx.load(st.ws->update(), t, kUpdateLoad) == 0) {
        ctx.store(st.ws->update(), t, std::uint8_t{1}, kUpdateStore);
        st.updated->push_back(t);
      }
    }
  }
}

// All compute variants keep the default LaunchPolicy::serial: visit_element
// branches on the update-flag claim and push_backs into the host-side updated
// list, so the functional result depends on the order blocks run.
void launch_computation(simt::Device& dev, BfsKernelState& st, Variant v,
                        std::span<const std::uint32_t> frontier,
                        std::uint32_t thread_tpb, std::uint32_t block_tpb) {
  const std::uint32_t n = st.graph->num_nodes;
  simt::Predicate pred;
  pred.base_addr = st.ws->bitmap().base_addr();
  pred.stride = 1;
  pred.ops = 2;

  if (v.mapping == Mapping::thread) {
    if (v.repr == WorksetRepr::bitmap) {
      const auto grid = simt::GridSpec::over_threads(n, thread_tpb, frontier, pred);
      simt::launch(dev, "bfs.compute.T_BM", grid, [&](simt::ThreadCtx& ctx) {
        const auto id = static_cast<std::uint32_t>(ctx.global_id());
        ctx.store(st.ws->bitmap(), id, std::uint8_t{0}, kBitmapClear);
        visit_element(ctx, st, id, 0, 1);
      });
    } else {
      const auto grid = simt::GridSpec::dense(frontier.size(), thread_tpb);
      simt::launch(dev, "bfs.compute.T_QU", grid, [&](simt::ThreadCtx& ctx) {
        const std::uint32_t id =
            ctx.load(st.ws->queue(), ctx.global_id(), kQueueLoad);
        visit_element(ctx, st, id, 0, 1);
      });
    }
  } else if (v.mapping == Mapping::warp) {
    // Extension: virtual-warp-centric mapping (Hong et al. [12]). Queue
    // form packs thread_tpb/32 virtual warps per physical block; bitmap
    // form runs one-warp blocks over the node range.
    if (v.repr == WorksetRepr::bitmap) {
      const auto grid =
          simt::GridSpec::over_blocks(n, simt::kWarpSize, frontier, pred);
      simt::launch(dev, "bfs.compute.W_BM", grid, [&](simt::ThreadCtx& ctx) {
        const auto id = static_cast<std::uint32_t>(ctx.block_idx());
        if (ctx.thread_in_block() == 0) {
          ctx.store(st.ws->bitmap(), id, std::uint8_t{0}, kBitmapClear);
        }
        visit_element(ctx, st, id, ctx.thread_in_block(), simt::kWarpSize);
      });
    } else {
      const auto grid =
          simt::GridSpec::dense(frontier.size() * simt::kWarpSize, thread_tpb);
      simt::launch(dev, "bfs.compute.W_QU", grid, [&](simt::ThreadCtx& ctx) {
        const auto wid = static_cast<std::uint32_t>(ctx.global_id() / simt::kWarpSize);
        const std::uint32_t id = ctx.load(st.ws->queue(), wid, kQueueLoad);
        visit_element(ctx, st, id,
                      static_cast<std::uint32_t>(ctx.global_id() % simt::kWarpSize),
                      simt::kWarpSize);
      });
    }
  } else {
    if (v.repr == WorksetRepr::bitmap) {
      const auto grid = simt::GridSpec::over_blocks(n, block_tpb, frontier, pred);
      simt::launch(dev, "bfs.compute.B_BM", grid, [&](simt::ThreadCtx& ctx) {
        const auto id = static_cast<std::uint32_t>(ctx.block_idx());
        if (ctx.thread_in_block() == 0) {
          ctx.store(st.ws->bitmap(), id, std::uint8_t{0}, kBitmapClear);
        }
        visit_element(ctx, st, id, ctx.thread_in_block(), ctx.block_dim());
      });
    } else {
      const auto grid =
          simt::GridSpec::dense(frontier.size() * block_tpb, block_tpb);
      simt::launch(dev, "bfs.compute.B_QU", grid, [&](simt::ThreadCtx& ctx) {
        const std::uint32_t id =
            ctx.load(st.ws->queue(), ctx.block_idx(), kQueueLoad);
        visit_element(ctx, st, id, ctx.thread_in_block(), ctx.block_dim());
      });
    }
  }
}

// Pull (gather) formulation, Beamer-style: a dense thread-per-vertex kernel
// in which every *unvisited* vertex scans its in-neighbors (CSC) for a
// frontier member, early-exiting on the first hit. No scatter-side work at
// all — each thread stores only to its own level/update cells, so there is
// no inter-thread claim on the update flag — and the in-edge reads are the
// coalesced gather the CSC exists for. Serial policy: discovered ids are
// push_backed into the host-side updated shadow.
void launch_pull(simt::Device& dev, BfsKernelState& st, std::uint32_t thread_tpb) {
  const std::uint32_t n = st.graph->num_nodes;
  const auto grid = simt::GridSpec::dense(n, thread_tpb);
  simt::launch(dev, "bfs.compute.T_PULL", grid, [&](simt::ThreadCtx& ctx) {
    const auto id = static_cast<std::uint32_t>(ctx.global_id());
    const std::uint32_t lvl = ctx.load(*st.level, id, kNodeLevel);
    ctx.compute(1, kNodeOps);
    if (lvl != graph::kInfinity) return;  // visited: one load and out
    const std::uint32_t begin =
        ctx.load(st.graph->in_row_offsets, id, kPullRowOffsets);
    const std::uint32_t end =
        ctx.load(st.graph->in_row_offsets, id + 1, kPullRowOffsets);
    ctx.compute(2, kNodeOps);
    for (std::uint32_t e = begin; e < end; ++e) {
      const std::uint32_t u = ctx.load(st.graph->in_col_indices, e, kPullEdgeLoad);
      ctx.compute(2, kEdgeOps);
      if (ctx.load(st.ws->bitmap(), u, kPullFrontierTest) == 0) continue;
      const std::uint32_t ul = ctx.load(*st.level, u, kNbrLevel);
      ctx.store(*st.level, id, ul + 1, kLevelStore);
      ctx.store(st.ws->update(), id, std::uint8_t{1}, kUpdateStore);
      st.updated->push_back(id);
      break;  // first frontier in-neighbor wins; rest of the scan is skipped
    }
  });
}

}  // namespace

std::uint32_t derive_block_tpb(double avg_outdegree) {
  const double rounded = std::round(avg_outdegree / simt::kWarpSize) *
                         simt::kWarpSize;
  return static_cast<std::uint32_t>(
      std::clamp(rounded, 32.0, 1024.0));
}

GpuBfsResult run_bfs(simt::Device& dev, const graph::Csr& g, graph::NodeId source,
                     const VariantSelector& selector, const EngineOptions& opts) {
  // Fig. 8 lines 1-3: create data structures, initialize, transfer. The
  // one-shot upload (and its PCIe cost) belongs to this query, so it is
  // folded into the reported totals on top of the resident-form metrics.
  simt::StreamGuard sguard(dev, opts.stream);
  const simt::DeviceStats stats_before = dev.stats();
  const double t_begin = dev.now_us();
  DeviceGraph dg = DeviceGraph::upload(dev, g, /*with_weights=*/false);
  GpuBfsResult result = run_bfs(dev, dg, g, source, selector, opts);
  dg.release(dev);
  result.metrics.total_us = dev.now_us() - t_begin;
  result.metrics.transfer_us =
      dev.stats().transfer_time_us - stats_before.transfer_time_us;
  return result;
}

GpuBfsResult run_bfs(simt::Device& dev, DeviceGraph& dg, const graph::Csr& g,
                     graph::NodeId source, const VariantSelector& selector,
                     const EngineOptions& opts) {
  AGG_CHECK(source < g.num_nodes);
  simt::StreamGuard sguard(dev, opts.stream);
  const simt::DeviceStats stats_before = dev.stats();
  const double t_begin = dev.now_us();

  GpuBfsResult result;

  const std::uint32_t block_tpb =
      opts.block_tpb ? opts.block_tpb : derive_block_tpb(dg.avg_outdegree);
  auto level = dev.alloc<std::uint32_t>(g.num_nodes, "bfs.level");
  dev.fill(level, graph::kInfinity);
  dev.write_scalar(level, source, 0u);
  Workset ws(dev, g.num_nodes);

  // Direction-optimizing bookkeeping (Beamer-style, host side): out-edges of
  // vertices the traversal has not touched yet, maintained by first-touch
  // accounting over the updated lists.
  std::uint64_t unexplored_edges = dg.num_edges - g.degree(source);
  std::vector<std::uint8_t> seen(g.num_nodes, 0);
  seen[source] = 1;
  std::optional<graph::Csr> csc_scratch;

  SelectorInput sel;
  sel.iteration = 0;
  sel.ws_size = 1;
  sel.avg_outdegree = dg.avg_outdegree;
  sel.outdeg_stddev = dg.outdeg_stddev;
  sel.num_nodes = g.num_nodes;
  sel.frontier_edges = g.degree(source);
  sel.unexplored_edges = unexplored_edges;
  sel.num_edges = dg.num_edges;
  sel.direction = Direction::push;
  Variant variant = normalize_direction(selector(sel));
  ws.init_source(dev, source, variant.repr);

  std::vector<std::uint32_t> frontier{source};
  std::vector<std::uint32_t> updated;
  BfsKernelState st{&level, &dg, &ws, &updated, variant.ordering == Ordering::ordered};

  const std::uint64_t max_iters =
      opts.max_iterations ? opts.max_iterations
                          : 4ull * g.num_nodes + 64;

  const bool hybrid = opts.hybrid_cpu_threshold > 0;
  bool on_cpu = hybrid && frontier.size() < opts.hybrid_cpu_threshold;
  if (on_cpu) {
    // Entering a CPU phase: download the state array (Hong et al. [13]-style
    // hybrid execution keeps host and device copies in sync at switches).
    dev.account_transfer(4ull * g.num_nodes, /*to_device=*/false);
  }

  std::uint32_t iteration = 0;
  while (!frontier.empty()) {
    ++iteration;
    AGG_CHECK_MSG(iteration <= max_iters, "BFS failed to converge");
    const double t_iter = dev.now_us();

    st.ordered = variant.ordering == Ordering::ordered;
    std::uint64_t frontier_edges = 0;
    for (const std::uint32_t v : frontier) frontier_edges += g.degree(v);
    result.metrics.edges_processed += frontier_edges;

    if (on_cpu) {
      // Serial host processing of this (small) frontier: no kernel launches,
      // no readbacks — the hybrid's whole advantage on high-diameter graphs.
      auto level_view = level.host_view();
      auto update_view = ws.update().host_view();
      for (const std::uint32_t v : frontier) {
        const std::uint32_t next_level = level_view[v] + 1;
        for (const graph::NodeId t : g.neighbors(v)) {
          const bool improves = st.ordered ? level_view[t] == graph::kInfinity
                                           : next_level < level_view[t];
          if (improves) {
            level_view[t] = next_level;
            if (update_view[t] == 0) {
              update_view[t] = 1;
              updated.push_back(t);
            }
          }
        }
      }
      dev.account_host_compute(
          (static_cast<double>(frontier.size()) * opts.hybrid_cpu_cycles_per_node +
           static_cast<double>(frontier_edges) * opts.hybrid_cpu_cycles_per_edge) /
          (opts.hybrid_cpu_clock_ghz * 1e3));
    } else if (variant.direction == Direction::pull) {
      // Gather iteration: make the CSC resident (first pull pays the
      // transfer; Session pins keep it across queries), run the dense pull
      // kernel against the bitmap frontier, then wipe the consumed frontier
      // bits (pull kernels cannot clear them in-kernel — every in-edge scan
      // reads them).
      ensure_csc_resident(dev, dg, g, opts.csc, /*with_weights=*/false,
                          csc_scratch);
      launch_pull(dev, st, opts.thread_tpb);
      ws.charge_changed_flag_readback(dev);
      ws.clear_frontier_bitmap(dev, frontier);
    } else {
      launch_computation(dev, st, variant, frontier, opts.thread_tpb, block_tpb);
      // Per-iteration termination signal (Fig. 8 line 4).
      if (variant.repr == WorksetRepr::queue) {
        ws.charge_queue_len_readback(dev);
      } else {
        ws.charge_changed_flag_readback(dev);
      }
    }
    std::sort(updated.begin(), updated.end());

    std::uint64_t next_frontier_edges = 0;
    for (const std::uint32_t v : updated) {
      const std::uint64_t d = g.degree(v);
      next_frontier_edges += d;
      if (!seen[v]) {
        seen[v] = 1;
        unexplored_edges -= d;
      }
    }

    // Decision point (Sec. VI.E): sampled working-set monitoring + selector.
    Variant next = variant;
    if (opts.monitor_interval > 0 && iteration % opts.monitor_interval == 0) {
      if (!on_cpu && variant.repr == WorksetRepr::bitmap) {
        ws.charge_bitmap_count_kernel(dev);  // queue mode: size known from tail
      }
      sel.iteration = iteration;
      sel.ws_size = updated.size();
      sel.frontier_edges = next_frontier_edges;
      sel.unexplored_edges = unexplored_edges;
      sel.direction = variant.direction;
      ++result.metrics.decisions;
      next = normalize_direction(selector(sel));
      next.ordering = variant.ordering;  // ordering is fixed per traversal
      if (!on_cpu && next != variant) ++result.metrics.switches;
    }

    const bool next_on_cpu =
        hybrid && updated.size() < opts.hybrid_cpu_threshold;
    // Host phases are scalar scatter loops; direction only applies on device.
    if (next_on_cpu) next.direction = Direction::push;
    if (on_cpu != next_on_cpu) {
      // Direction switch: sync the state array across PCIe.
      if (next_on_cpu) {
        dev.account_transfer(4ull * g.num_nodes, /*to_device=*/false);
      } else {
        dev.account_transfer(4ull * g.num_nodes, /*to_device=*/true);
        // Re-materialize the device update vector before generation.
        dev.account_transfer(g.num_nodes, /*to_device=*/true);
      }
    }

    if (!updated.empty() && !next_on_cpu) {
      ws.generate(dev, next.repr, updated,
                  opts.scan_queue_gen ? Workset::GenMethod::scan
                                      : Workset::GenMethod::atomic);
    } else if (!updated.empty()) {
      // CPU phase: clear the flags functionally (the host owns the state).
      for (const std::uint32_t v : updated) ws.update().host_view()[v] = 0;
    }

    record_iteration(result.metrics, "bfs",
                     {iteration, frontier.size(), variant,
                      dev.now_us() - t_iter, on_cpu},
                     dev.now_us());
    frontier.swap(updated);
    updated.clear();
    variant = next;
    on_cpu = next_on_cpu;
  }

  // Download the result (included in the measured time, as in the paper).
  result.level.resize(g.num_nodes);
  if (on_cpu) {
    // Hybrid run ended in a CPU phase: the state array is already host
    // resident, so no download is charged.
    const auto view = level.host_view();
    std::copy(view.begin(), view.end(), result.level.begin());
  } else {
    dev.memcpy_d2h(std::span<std::uint32_t>(result.level), level);
  }

  ws.release(dev);
  dev.free(level);

  fill_from_device_delta(result.metrics, stats_before, dev.stats(), t_begin,
                         dev.now_us());
  return result;
}

}  // namespace gg
