#include "gpu_graph/workset.h"

#include "simt/launch.h"
#include "simt/primitives.h"

namespace gg {
namespace {

constexpr simt::Site kBitmapStore{0, "gen.bitmap-store"};
constexpr simt::Site kQueueTail{1, "gen.queue-tail"};
constexpr simt::Site kQueueStore{2, "gen.queue-store"};
constexpr simt::Site kUpdateClear{3, "gen.update-clear"};
constexpr simt::Site kChangedStore{4, "gen.changed"};
constexpr simt::Site kFrontierClear{5, "gen.frontier-clear"};

constexpr std::uint32_t kGenTpb = 256;

}  // namespace

Workset::Workset(simt::Device& dev, std::uint32_t num_nodes) : n_(num_nodes) {
  bitmap_ = dev.alloc<std::uint8_t>(num_nodes, "ws.bitmap");
  queue_ = dev.alloc<std::uint32_t>(num_nodes, "ws.queue");
  queue_len_ = dev.alloc<std::uint32_t>(1, "ws.queue_len");
  update_ = dev.alloc<std::uint8_t>(num_nodes, "ws.update");
  changed_ = dev.alloc<std::uint32_t>(1, "ws.changed");
  dev.fill(bitmap_, std::uint8_t{0});
  dev.fill(update_, std::uint8_t{0});
  dev.write_scalar(queue_len_, 0, 0u);
}

void Workset::release(simt::Device& dev) {
  dev.free(bitmap_);
  dev.free(queue_);
  dev.free(queue_len_);
  dev.free(update_);
  dev.free(changed_);
}

void Workset::init_source(simt::Device& dev, std::uint32_t source, WorksetRepr repr) {
  AGG_CHECK(source < n_);
  if (repr == WorksetRepr::bitmap) {
    dev.write_scalar(bitmap_, source, std::uint8_t{1});
  } else {
    dev.write_scalar(queue_, 0, source);
    dev.write_scalar(queue_len_, 0, 1u);
  }
}

std::uint64_t Workset::generate(simt::Device& dev, WorksetRepr repr,
                                std::span<const std::uint32_t> updated,
                                GenMethod method) {
  // Counter resets ahead of the generation kernel. In the reference CUDA
  // implementation the previous computation kernel's epilogue clears these
  // scalars in place (the [33]-style queue keeps its tail counter resident),
  // so no transfer or extra launch is charged — the reset below is the
  // functional equivalent only.
  if (repr == WorksetRepr::queue) {
    queue_len_.host_view()[0] = 0;
  } else {
    changed_.host_view()[0] = 0;
  }

  simt::Predicate pred;
  pred.base_addr = update_.base_addr();
  pred.stride = 1;
  pred.ops = 2;
  const simt::GridSpec grid = simt::GridSpec::over_threads(n_, kGenTpb, updated, pred);

  if (repr == WorksetRepr::bitmap) {
    // Parallel policy: each thread flips only its own bitmap_/update_ flag,
    // and every writer stores the same value into changed_[0].
    simt::launch(dev, "workset_gen.bitmap",
                 grid.with(simt::LaunchPolicy::parallel),
                 [&](simt::ThreadCtx& ctx) {
      const auto id = static_cast<std::uint32_t>(ctx.global_id());
      ctx.store(bitmap_, id, std::uint8_t{1}, kBitmapStore);
      ctx.store(update_, id, std::uint8_t{0}, kUpdateClear);
      ctx.store(changed_, 0, 1u, kChangedStore);
    });
  } else if (method == GenMethod::atomic) {
    // Serial policy: queue slot assignment is the atomic_add return value, so
    // the queue contents depend on the order atomics land.
    simt::launch(dev, "workset_gen.queue", grid, [&](simt::ThreadCtx& ctx) {
      const auto id = static_cast<std::uint32_t>(ctx.global_id());
      const std::uint32_t pos = ctx.atomic_add(queue_len_, 0, 1u, kQueueTail);
      ctx.store(queue_, pos, id, kQueueStore);
      ctx.store(update_, id, std::uint8_t{0}, kUpdateClear);
    });
  } else {
    // Scan-based compaction: an exclusive prefix scan over the n update
    // flags yields each set flag's queue offset; a scatter pass then writes
    // the ids. No tail-counter atomics — the cost is the scan's extra
    // passes over all n flags regardless of |WS|.
    simt::prim::charge_scan(dev, n_);
    // Serial policy: the scatter models its scan offsets with a host-side
    // counter incremented in thread order.
    simt::launch(dev, "workset_gen.queue_scan", grid, [&](simt::ThreadCtx& ctx) {
      const auto id = static_cast<std::uint32_t>(ctx.global_id());
      const std::uint32_t pos = queue_len_.host_view()[0]++;  // offset from scan
      ctx.compute(2, kQueueTail);
      ctx.store(queue_, pos, id, kQueueStore);
      ctx.store(update_, id, std::uint8_t{0}, kUpdateClear);
    });
  }
  return updated.size();
}

void Workset::clear_frontier_bitmap(simt::Device& dev,
                                    std::span<const std::uint32_t> frontier) {
  simt::Predicate pred;
  pred.base_addr = bitmap_.base_addr();
  pred.stride = 1;
  pred.ops = 2;
  const simt::GridSpec grid =
      simt::GridSpec::over_threads(n_, kGenTpb, frontier, pred);
  // Parallel policy: each thread clears only its own bit.
  simt::launch(dev, "workset_gen.frontier_clear",
               grid.with(simt::LaunchPolicy::parallel),
               [&](simt::ThreadCtx& ctx) {
    const auto id = static_cast<std::uint32_t>(ctx.global_id());
    ctx.store(bitmap_, id, std::uint8_t{0}, kFrontierClear);
  });
}

void Workset::charge_queue_len_readback(simt::Device& dev) const {
  dev.account_transfer(sizeof(std::uint32_t), /*to_device=*/false);
}

void Workset::charge_changed_flag_readback(simt::Device& dev) const {
  dev.account_transfer(sizeof(std::uint32_t), /*to_device=*/false);
}

void Workset::charge_bitmap_count_kernel(simt::Device& dev) const {
  // Population-count kernel over the update/bitmap vector: each thread loads
  // a flag, blocks tree-reduce in shared memory, one atomicAdd per block on
  // the global counter (paper Sec. VI.E: "running a separate kernel").
  simt::UniformThreadCost cost;
  cost.ops = 2.0 + 2.0 * 8.0;  // predicate + shared-memory tree reduction
  cost.mem_instrs = 1;
  cost.transactions_per_warp =
      simt::kWarpSize * 1.0 / dev.timing().segment_bytes;  // 1-byte flags
  simt::KernelStats ks = simt::estimate_uniform_kernel(
      dev.props(), dev.timing(), "ws_count(analytic)", n_, kGenTpb, cost);
  // One global atomicAdd per block, all on the same counter address.
  ks.max_atomic_same_addr = ks.blocks;
  ks.atomics += static_cast<double>(ks.blocks);
  const double cycles_per_us = dev.props().clock_ghz * 1e3;
  ks.atomic_time_us = static_cast<double>(ks.max_atomic_same_addr) *
                      dev.timing().atomic_serial_cycles / cycles_per_us;
  ks.time_us = std::max({ks.sm_time_us, ks.bw_time_us, ks.atomic_time_us}) +
               dev.timing().launch_overhead_us;
  dev.account_kernel(ks);
  // Count readback.
  dev.account_transfer(sizeof(std::uint32_t), /*to_device=*/false);
}

}  // namespace gg
