// Per-traversal metrics recorded by the engines: drives the evaluation
// benches (working-set evolution, speedups, decision traces) and the
// adaptive runtime's own monitoring.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpu_graph/variant.h"
#include "simt/device.h"

namespace gg {

struct IterationRecord {
  std::uint32_t iteration = 0;
  std::uint64_t ws_size = 0;   // working-set size processed this iteration
  Variant variant;             // implementation used this iteration
  double time_us = 0;          // modeled device + sync time of this iteration
  bool on_cpu = false;         // hybrid execution: processed on the host
};

struct TraversalMetrics {
  std::vector<IterationRecord> iterations;
  double total_us = 0;      // end to end, including initial/final transfers
  double kernel_us = 0;
  double transfer_us = 0;
  std::uint64_t kernels = 0;
  double simd_efficiency = 1.0;
  std::uint64_t edges_processed = 0;  // adjacency entries visited on device
  std::uint32_t switches = 0;         // adaptive: variant changes performed
  std::uint32_t decisions = 0;        // adaptive: decision points evaluated

  double total_ms() const { return total_us / 1000.0; }
  std::uint64_t max_ws_size() const;
  std::string summary() const;
  // Full JSON document (iterations array + scalar fields); `--metrics-out`
  // and the exporter tests parse this back with trace::json_parse.
  std::string to_json() const;
};

// Appends `rec` to m.iterations and, when tracing is active, publishes it as
// an IterationEvent on the host track (start derived from `end_us`, the
// device's modeled clock after the iteration's final sync) and bumps the
// engine.* counters.
void record_iteration(TraversalMetrics& m, const char* algo,
                      const IterationRecord& rec, double end_us);

// Captures the difference of two DeviceStats snapshots into metrics fields.
void fill_from_device_delta(TraversalMetrics& m, const simt::DeviceStats& before,
                            const simt::DeviceStats& after, double t_begin_us,
                            double t_end_us);

}  // namespace gg
