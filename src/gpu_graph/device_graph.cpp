#include "gpu_graph/device_graph.h"

#include <cmath>

#include "graph/transform.h"

namespace gg {

DeviceGraph DeviceGraph::upload(simt::Device& dev, const graph::Csr& g,
                                bool with_weights) {
  AGG_CHECK(!with_weights || g.has_weights());
  DeviceGraph dg;
  dg.num_nodes = g.num_nodes;
  dg.num_edges = g.num_edges();
  dg.avg_outdegree = g.num_nodes > 0 ? static_cast<double>(g.num_edges()) /
                                           static_cast<double>(g.num_nodes)
                                     : 0.0;
  double sq = 0.0;
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    const double d = static_cast<double>(g.degree(v)) - dg.avg_outdegree;
    sq += d * d;
  }
  dg.outdeg_stddev =
      g.num_nodes > 0 ? std::sqrt(sq / static_cast<double>(g.num_nodes)) : 0.0;
  dg.row_offsets = dev.alloc<std::uint32_t>(g.row_offsets.size(), "csr.row_offsets");
  dev.memcpy_h2d(dg.row_offsets, std::span<const std::uint32_t>(g.row_offsets));
  dg.col_indices = dev.alloc<std::uint32_t>(g.col_indices.size(), "csr.col_indices");
  dev.memcpy_h2d(dg.col_indices, std::span<const std::uint32_t>(g.col_indices));
  if (with_weights) {
    dg.weights = dev.alloc<std::uint32_t>(g.weights.size(), "csr.weights");
    dev.memcpy_h2d(dg.weights, std::span<const std::uint32_t>(g.weights));
  }
  return dg;
}

void DeviceGraph::upload_csc(simt::Device& dev, const graph::Csr& csc,
                             bool with_weights) {
  AGG_CHECK(csc.num_nodes == num_nodes && csc.num_edges() == num_edges);
  AGG_CHECK(!with_weights || csc.has_weights());
  if (!in_row_offsets.valid()) {
    in_row_offsets =
        dev.alloc<std::uint32_t>(csc.row_offsets.size(), "csc.row_offsets");
    dev.memcpy_h2d(in_row_offsets,
                   std::span<const std::uint32_t>(csc.row_offsets));
    in_col_indices =
        dev.alloc<std::uint32_t>(csc.col_indices.size(), "csc.col_indices");
    dev.memcpy_h2d(in_col_indices,
                   std::span<const std::uint32_t>(csc.col_indices));
  }
  if (with_weights && !in_weights.valid()) {
    in_weights = dev.alloc<std::uint32_t>(csc.weights.size(), "csc.weights");
    dev.memcpy_h2d(in_weights, std::span<const std::uint32_t>(csc.weights));
  }
}

void DeviceGraph::release(simt::Device& dev) {
  dev.free(row_offsets);
  dev.free(col_indices);
  if (weights.valid()) dev.free(weights);
  if (in_row_offsets.valid()) dev.free(in_row_offsets);
  if (in_col_indices.valid()) dev.free(in_col_indices);
  if (in_weights.valid()) dev.free(in_weights);
}

void ensure_csc_resident(simt::Device& dev, DeviceGraph& dg,
                         const graph::Csr& g, const graph::Csr* host_csc,
                         bool with_weights,
                         std::optional<graph::Csr>& scratch) {
  if (dg.csc_resident(with_weights)) return;
  if (host_csc == nullptr) {
    if (!scratch) scratch = graph::build_csc(g);
    host_csc = &*scratch;
  }
  dg.upload_csc(dev, *host_csc, with_weights);
}

}  // namespace gg
