#include "gpu_graph/device_graph.h"

#include <cmath>

namespace gg {

DeviceGraph DeviceGraph::upload(simt::Device& dev, const graph::Csr& g,
                                bool with_weights) {
  AGG_CHECK(!with_weights || g.has_weights());
  DeviceGraph dg;
  dg.num_nodes = g.num_nodes;
  dg.num_edges = g.num_edges();
  dg.avg_outdegree = g.num_nodes > 0 ? static_cast<double>(g.num_edges()) /
                                           static_cast<double>(g.num_nodes)
                                     : 0.0;
  double sq = 0.0;
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    const double d = static_cast<double>(g.degree(v)) - dg.avg_outdegree;
    sq += d * d;
  }
  dg.outdeg_stddev =
      g.num_nodes > 0 ? std::sqrt(sq / static_cast<double>(g.num_nodes)) : 0.0;
  dg.row_offsets = dev.alloc<std::uint32_t>(g.row_offsets.size(), "csr.row_offsets");
  dev.memcpy_h2d(dg.row_offsets, std::span<const std::uint32_t>(g.row_offsets));
  dg.col_indices = dev.alloc<std::uint32_t>(g.col_indices.size(), "csr.col_indices");
  dev.memcpy_h2d(dg.col_indices, std::span<const std::uint32_t>(g.col_indices));
  if (with_weights) {
    dg.weights = dev.alloc<std::uint32_t>(g.weights.size(), "csr.weights");
    dev.memcpy_h2d(dg.weights, std::span<const std::uint32_t>(g.weights));
  }
  return dg;
}

void DeviceGraph::release(simt::Device& dev) {
  dev.free(row_offsets);
  dev.free(col_indices);
  if (weights.valid()) dev.free(weights);
}

}  // namespace gg
