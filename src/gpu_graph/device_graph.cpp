#include "gpu_graph/device_graph.h"

#include <cmath>

#include "graph/transform.h"

namespace gg {

DeviceGraph DeviceGraph::upload(simt::Device& dev, const graph::Csr& g,
                                bool with_weights) {
  AGG_CHECK(!with_weights || g.has_weights());
  DeviceGraph dg;
  dg.num_nodes = g.num_nodes;
  dg.num_edges = g.num_edges();
  dg.avg_outdegree = g.num_nodes > 0 ? static_cast<double>(g.num_edges()) /
                                           static_cast<double>(g.num_nodes)
                                     : 0.0;
  double sq = 0.0;
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    const double d = static_cast<double>(g.degree(v)) - dg.avg_outdegree;
    sq += d * d;
  }
  dg.outdeg_stddev =
      g.num_nodes > 0 ? std::sqrt(sq / static_cast<double>(g.num_nodes)) : 0.0;
  dg.row_offsets = dev.alloc<std::uint32_t>(g.row_offsets.size(), "csr.row_offsets");
  dev.memcpy_h2d(dg.row_offsets, std::span<const std::uint32_t>(g.row_offsets));
  dg.col_indices = dev.alloc<std::uint32_t>(g.col_indices.size(), "csr.col_indices");
  dev.memcpy_h2d(dg.col_indices, std::span<const std::uint32_t>(g.col_indices));
  if (with_weights) {
    dg.weights = dev.alloc<std::uint32_t>(g.weights.size(), "csr.weights");
    dev.memcpy_h2d(dg.weights, std::span<const std::uint32_t>(g.weights));
  }
  return dg;
}

namespace {

// Re-sends the dirty region of `host` into `buf`. The common prefix is
// skipped; when logical sizes match the common suffix is skipped too (a
// net-zero delta leaves the tail in place), otherwise everything from the
// first mismatch to the new end shifted and must be re-sent. `old_n` is the
// previous logical element count (buffer capacity may exceed both).
std::uint64_t patch_array(simt::Device& dev,
                          simt::DeviceBuffer<std::uint32_t>& buf,
                          std::span<const std::uint32_t> host,
                          std::size_t old_n) {
  const auto view = buf.host_view();
  const std::size_t common = std::min(old_n, host.size());
  std::size_t first = 0;
  while (first < common && view[first] == host[first]) ++first;
  std::size_t last = host.size();  // one past the last dirty element
  if (old_n == host.size()) {
    while (last > first && view[last - 1] == host[last - 1]) --last;
  }
  if (first >= last) return 0;
  dev.memcpy_h2d(buf, host.subspan(first, last - first), first);
  return (last - first) * sizeof(std::uint32_t);
}

}  // namespace

DeviceGraph::PatchStats DeviceGraph::patch(simt::Device& dev,
                                           const graph::Csr& g,
                                           bool with_weights) {
  AGG_CHECK(row_offsets.valid() && col_indices.valid());
  AGG_CHECK(g.num_nodes == num_nodes);
  AGG_CHECK(with_weights == weights.valid());
  AGG_CHECK(!with_weights || g.has_weights());

  PatchStats ps;
  const std::uint64_t m_old = num_edges;
  const std::uint64_t m_new = g.num_edges();
  if (m_new > col_indices.size()) {
    // Compacting rebuild: the overlay outgrew the buffer. Re-allocate with
    // slack so a steady trickle of inserts amortizes to O(1) reallocations.
    ps.rebuilt = true;
    const std::size_t cap =
        static_cast<std::size_t>(m_new + m_new / 8 + 64);
    dev.free(col_indices);
    col_indices = dev.alloc<std::uint32_t>(cap, "csr.col_indices");
    dev.memcpy_h2d(col_indices, std::span<const std::uint32_t>(g.col_indices));
    if (with_weights) {
      dev.free(weights);
      weights = dev.alloc<std::uint32_t>(cap, "csr.weights");
      dev.memcpy_h2d(weights, std::span<const std::uint32_t>(g.weights));
    }
    dev.memcpy_h2d(row_offsets, std::span<const std::uint32_t>(g.row_offsets));
    ps.bytes_sent = (g.row_offsets.size() + m_new * (with_weights ? 2 : 1)) *
                    sizeof(std::uint32_t);
  } else {
    ps.bytes_sent += patch_array(
        dev, row_offsets, std::span<const std::uint32_t>(g.row_offsets),
        g.row_offsets.size());
    ps.bytes_sent += patch_array(
        dev, col_indices, std::span<const std::uint32_t>(g.col_indices),
        static_cast<std::size_t>(m_old));
    if (with_weights) {
      ps.bytes_sent += patch_array(
          dev, weights, std::span<const std::uint32_t>(g.weights),
          static_cast<std::size_t>(m_old));
    }
  }
  num_edges = m_new;
  avg_outdegree = num_nodes > 0 ? static_cast<double>(m_new) /
                                      static_cast<double>(num_nodes)
                                : 0.0;
  double sq = 0.0;
  for (std::uint32_t v = 0; v < num_nodes; ++v) {
    const double d = static_cast<double>(g.degree(v)) - avg_outdegree;
    sq += d * d;
  }
  outdeg_stddev =
      num_nodes > 0 ? std::sqrt(sq / static_cast<double>(num_nodes)) : 0.0;
  // The CSC view no longer matches; drop it (lazily rebuilt on demand).
  if (in_row_offsets.valid()) dev.free(in_row_offsets);
  if (in_col_indices.valid()) dev.free(in_col_indices);
  if (in_weights.valid()) dev.free(in_weights);
  return ps;
}

void DeviceGraph::upload_csc(simt::Device& dev, const graph::Csr& csc,
                             bool with_weights) {
  AGG_CHECK(csc.num_nodes == num_nodes && csc.num_edges() == num_edges);
  AGG_CHECK(!with_weights || csc.has_weights());
  if (!in_row_offsets.valid()) {
    in_row_offsets =
        dev.alloc<std::uint32_t>(csc.row_offsets.size(), "csc.row_offsets");
    dev.memcpy_h2d(in_row_offsets,
                   std::span<const std::uint32_t>(csc.row_offsets));
    in_col_indices =
        dev.alloc<std::uint32_t>(csc.col_indices.size(), "csc.col_indices");
    dev.memcpy_h2d(in_col_indices,
                   std::span<const std::uint32_t>(csc.col_indices));
  }
  if (with_weights && !in_weights.valid()) {
    in_weights = dev.alloc<std::uint32_t>(csc.weights.size(), "csc.weights");
    dev.memcpy_h2d(in_weights, std::span<const std::uint32_t>(csc.weights));
  }
}

void DeviceGraph::release(simt::Device& dev) {
  dev.free(row_offsets);
  dev.free(col_indices);
  if (weights.valid()) dev.free(weights);
  if (in_row_offsets.valid()) dev.free(in_row_offsets);
  if (in_col_indices.valid()) dev.free(in_col_indices);
  if (in_weights.valid()) dev.free(in_weights);
}

void ensure_csc_resident(simt::Device& dev, DeviceGraph& dg,
                         const graph::Csr& g, const graph::Csr* host_csc,
                         bool with_weights,
                         std::optional<graph::Csr>& scratch) {
  if (dg.csc_resident(with_weights)) return;
  if (host_csc == nullptr) {
    if (!scratch) scratch = graph::build_csc(g);
    host_csc = &*scratch;
  }
  dg.upload_csc(dev, *host_csc, with_weights);
}

}  // namespace gg
