// GPU SSSP across the implementation space (paper Sec. IV/V, Fig. 5).
//
// Unordered (Bellman-Ford-like): the same two-kernel iteration framework as
// BFS, with relaxations performed through atomic min on the distance array.
//
// Ordered (Dijkstra-like): the working set holds <node, tentative-distance>
// candidates; every iteration finds the minimum tentative distance by GPU
// parallel reduction (Sec. V.B), settles the nodes at that distance, and
// relaxes their neighborhoods. With a bitmap working set the findmin/extract
// phases scan all n nodes; with a queue they scan the candidate compaction.
#pragma once

#include <vector>

#include "gpu_graph/device_graph.h"
#include "gpu_graph/engine_common.h"
#include "gpu_graph/metrics.h"
#include "graph/csr.h"
#include "simt/device.h"

namespace gg {

struct GpuSsspResult {
  std::vector<std::uint32_t> dist;  // graph::kInfinity where unreachable
  TraversalMetrics metrics;
};

// Dispatches on variant.ordering: the selector's ordering choice at iteration
// 0 fixes the algorithm; mapping/representation may change per decision
// point (unordered only — the ordered engine honors the initial variant).
GpuSsspResult run_sssp(simt::Device& dev, const graph::Csr& g, graph::NodeId source,
                       const VariantSelector& selector, const EngineOptions& opts = {});

// Resident-graph form (see bfs_engine.h): `dg` must have been uploaded from
// `g` with weights; no upload is charged to the metrics.
GpuSsspResult run_sssp(simt::Device& dev, DeviceGraph& dg, const graph::Csr& g,
                       graph::NodeId source, const VariantSelector& selector,
                       const EngineOptions& opts = {});

inline GpuSsspResult run_sssp(simt::Device& dev, const graph::Csr& g,
                              graph::NodeId source, Variant variant,
                              const EngineOptions& opts = {}) {
  return run_sssp(dev, g, source, fixed_variant(variant), opts);
}

}  // namespace gg
