#include "gpu_graph/metrics.h"

#include <algorithm>

#include "common/table.h"

namespace gg {

std::uint64_t TraversalMetrics::max_ws_size() const {
  std::uint64_t m = 0;
  for (const auto& it : iterations) m = std::max(m, it.ws_size);
  return m;
}

std::string TraversalMetrics::summary() const {
  return std::to_string(iterations.size()) + " iterations, " +
         agg::Table::fmt(total_ms(), 3) + " ms, " +
         agg::Table::fmt_int(edges_processed) + " edge visits, SIMD eff " +
         agg::Table::fmt(simd_efficiency, 3) +
         (switches ? ", " + std::to_string(switches) + " switches" : "");
}

void fill_from_device_delta(TraversalMetrics& m, const simt::DeviceStats& before,
                            const simt::DeviceStats& after, double t_begin_us,
                            double t_end_us) {
  m.total_us = t_end_us - t_begin_us;
  m.kernel_us = after.kernel_time_us - before.kernel_time_us;
  m.transfer_us = after.transfer_time_us - before.transfer_time_us;
  m.kernels = after.kernels_launched - before.kernels_launched;
  const double lane = after.lane_work - before.lane_work;
  const double lockstep = after.lockstep_work - before.lockstep_work;
  m.simd_efficiency = lockstep > 0 ? lane / lockstep : 1.0;
}

}  // namespace gg
