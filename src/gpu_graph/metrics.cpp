#include "gpu_graph/metrics.h"

#include <algorithm>

#include "common/table.h"
#include "trace/counters.h"
#include "trace/json_writer.h"
#include "trace/trace_sink.h"

namespace gg {

std::uint64_t TraversalMetrics::max_ws_size() const {
  std::uint64_t m = 0;
  for (const auto& it : iterations) m = std::max(m, it.ws_size);
  return m;
}

std::string TraversalMetrics::summary() const {
  return std::to_string(iterations.size()) + " iterations, " +
         agg::Table::fmt(total_ms(), 3) + " ms, " +
         agg::Table::fmt_int(edges_processed) + " edge visits, SIMD eff " +
         agg::Table::fmt(simd_efficiency, 3) +
         (switches ? ", " + std::to_string(switches) + " switches" : "");
}

std::string TraversalMetrics::to_json() const {
  trace::JsonWriter w;
  w.begin_object();
  w.field("total_us", total_us);
  w.field("kernel_us", kernel_us);
  w.field("transfer_us", transfer_us);
  w.field("kernels", kernels);
  w.field("simd_efficiency", simd_efficiency);
  w.field("edges_processed", edges_processed);
  w.field("switches", switches);
  w.field("decisions", decisions);
  w.field("max_ws_size", max_ws_size());
  w.key("iterations").begin_array();
  for (const auto& it : iterations) {
    w.begin_object();
    w.field("iteration", it.iteration);
    w.field("ws_size", it.ws_size);
    w.field("variant", variant_name(it.variant));
    w.field("time_us", it.time_us);
    w.field("on_cpu", it.on_cpu);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void record_iteration(TraversalMetrics& m, const char* algo,
                      const IterationRecord& rec, double end_us) {
  m.iterations.push_back(rec);
  if (!trace::active()) return;
  auto& tracer = trace::Tracer::instance();
  if (tracer.has_sinks()) {
    trace::IterationEvent ev;
    ev.algo = algo;
    ev.iteration = rec.iteration;
    ev.ws_size = rec.ws_size;
    ev.variant = variant_name(rec.variant);
    ev.on_cpu = rec.on_cpu;
    ev.start_us = end_us - rec.time_us;
    ev.dur_us = rec.time_us;
    tracer.iteration(ev);
  }
  auto& reg = trace::CounterRegistry::instance();
  if (reg.enabled()) {
    reg.counter("engine.iterations").add();
    reg.gauge("engine.max_ws_size").set_max(static_cast<double>(rec.ws_size));
  }
}

void fill_from_device_delta(TraversalMetrics& m, const simt::DeviceStats& before,
                            const simt::DeviceStats& after, double t_begin_us,
                            double t_end_us) {
  m.total_us = t_end_us - t_begin_us;
  m.kernel_us = after.kernel_time_us - before.kernel_time_us;
  m.transfer_us = after.transfer_time_us - before.transfer_time_us;
  m.kernels = after.kernels_launched - before.kernels_launched;
  const double lane = after.lane_work - before.lane_work;
  const double lockstep = after.lockstep_work - before.lockstep_work;
  m.simd_efficiency = lockstep > 0 ? lane / lockstep : 1.0;

  // One engine run finished: roll its totals into the metrics registry.
  auto& reg = trace::CounterRegistry::instance();
  if (reg.enabled()) {
    reg.counter("engine.traversals").add();
    reg.counter("engine.edges_processed")
        .add(static_cast<double>(m.edges_processed));
    reg.counter("rt.decisions").add(m.decisions);
    reg.counter("rt.switches").add(m.switches);
  }
}

}  // namespace gg
