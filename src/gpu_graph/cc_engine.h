// GPU connected components — the first "other graph algorithm" the paper
// projects its framework onto ("we believe that our analysis can be extended
// to many other graph algorithms, which can be expressed as a sequence of
// iterative steps, each step processing a set of elements").
//
// Algorithm: unordered min-label propagation. Every node starts in the
// working set with its own id as label; each iteration pushes labels along
// edges with atomic min, and nodes whose label dropped re-enter the working
// set. Converges in O(component diameter) iterations. The same two-kernel
// framework, dual working set, mapping granularities (including the
// warp-centric extension) and adaptive selection apply unchanged.
//
// The input graph must be symmetric (both arcs stored) for the result to be
// the weakly-connected components; use graph::symmetrize() otherwise.
#pragma once

#include <vector>

#include "gpu_graph/device_graph.h"
#include "gpu_graph/engine_common.h"
#include "gpu_graph/metrics.h"
#include "graph/csr.h"
#include "simt/device.h"

namespace gg {

struct GpuCcResult {
  // component[v] = smallest node id in v's component.
  std::vector<std::uint32_t> component;
  std::uint32_t num_components = 0;
  TraversalMetrics metrics;
};

// Ordering is ignored (label propagation is inherently unordered); mapping
// and representation follow the selector per decision point.
GpuCcResult run_cc(simt::Device& dev, const graph::Csr& g,
                   const VariantSelector& selector, const EngineOptions& opts = {});

// Resident-graph form (see bfs_engine.h): `dg` must have been uploaded from
// `g` (a symmetric graph); no upload is charged to the metrics.
GpuCcResult run_cc(simt::Device& dev, DeviceGraph& dg, const graph::Csr& g,
                   const VariantSelector& selector, const EngineOptions& opts = {});

inline GpuCcResult run_cc(simt::Device& dev, const graph::Csr& g, Variant variant,
                          const EngineOptions& opts = {}) {
  return run_cc(dev, g, fixed_variant(variant), opts);
}

}  // namespace gg
