// GPU minimum spanning forest (Boruvka) — the MST pattern the paper's
// related work groups with shortest paths and connected components. Each
// round, every component selects its minimum-weight outgoing edge (total
// order (weight, arc index) so ties are safe), components hook along the
// selected edges (symmetric hooks broken by root id), and labels flatten by
// pointer jumping. The per-round edge scan is the framework's working-set
// kernel: nodes stay in the working set while their component still has
// outgoing edges, so the set starts at n and shrinks as components coalesce.
//
// Requires a symmetric weighted CSR (both arcs stored).
#pragma once

#include <vector>

#include "gpu_graph/engine_common.h"
#include "gpu_graph/metrics.h"
#include "graph/csr.h"
#include "simt/device.h"

namespace gg {

struct GpuMstResult {
  std::uint64_t total_weight = 0;
  std::uint32_t num_trees = 0;
  std::uint32_t edges_in_forest = 0;
  // component[v] = root id of v's tree (consistent within trees).
  std::vector<std::uint32_t> component;
  TraversalMetrics metrics;
};

GpuMstResult run_mst(simt::Device& dev, const graph::Csr& g,
                     const VariantSelector& selector,
                     const EngineOptions& opts = {});

inline GpuMstResult run_mst(simt::Device& dev, const graph::Csr& g,
                            Variant variant, const EngineOptions& opts = {}) {
  return run_mst(dev, g, fixed_variant(variant), opts);
}

}  // namespace gg
