#include "gpu_graph/bfs_multi_engine.h"

#include <algorithm>
#include <bit>

#include "gpu_graph/workset.h"
#include "simt/launch.h"

namespace gg {
namespace {

// Static access sites of the fused computation kernel.
constexpr simt::Site kFrontierMask{0, "msbfs.frontier-mask"};
constexpr simt::Site kRowOffsets{1, "msbfs.row-offsets"};
constexpr simt::Site kNodeOps{2, "msbfs.node-ops"};
constexpr simt::Site kEdgeLoad{3, "msbfs.edge-load"};
constexpr simt::Site kEdgeOps{4, "msbfs.edge-ops"};
constexpr simt::Site kVisited{5, "msbfs.visited"};
constexpr simt::Site kNextMask{6, "msbfs.next-mask"};
constexpr simt::Site kLevelStore{7, "msbfs.level-store"};
constexpr simt::Site kUpdateLoad{8, "msbfs.update-load"};
constexpr simt::Site kUpdateStore{9, "msbfs.update-store"};
constexpr simt::Site kQueueLoad{10, "msbfs.queue-load"};
constexpr simt::Site kBitmapClear{11, "msbfs.bitmap-clear"};
constexpr simt::Site kBitOps{12, "msbfs.bit-ops"};

struct MultiState {
  simt::DeviceBuffer<std::uint32_t>* frontier_mask;
  simt::DeviceBuffer<std::uint32_t>* visited;
  simt::DeviceBuffer<std::uint32_t>* next_mask;
  simt::DeviceBuffer<std::uint32_t>* levels;  // n * k
  DeviceGraph* graph;
  Workset* ws;
  std::vector<std::uint32_t>* updated;  // host shadow of set update flags
  std::uint32_t k = 0;                  // batch width
  std::uint32_t depth = 0;              // current iteration = level being set
};

// Shared per-element body (cf. bfs_engine.cpp visit_element): the caller
// chooses adjacency partitioning per mapping. Mask buffers are never
// cleared: a stale bit is, by construction, one the node already expanded
// the last time it sat in the working set, so every neighbor's visited word
// already contains it and `fresh` masks it out. Frontier membership comes
// from the workset, not from the mask words.
void visit_element(simt::ThreadCtx& ctx, MultiState& st, std::uint32_t id,
                   std::uint32_t offset, std::uint32_t step) {
  const std::uint32_t fm = ctx.load(*st.frontier_mask, id, kFrontierMask);
  const std::uint32_t begin = ctx.load(st.graph->row_offsets, id, kRowOffsets);
  const std::uint32_t end = ctx.load(st.graph->row_offsets, id + 1, kRowOffsets);
  ctx.compute(4, kNodeOps);

  for (std::uint32_t e = begin + offset; e < end; e += step) {
    const std::uint32_t t = ctx.load(st.graph->col_indices, e, kEdgeLoad);
    ctx.compute(3, kEdgeOps);
    const std::uint32_t vis = ctx.load(*st.visited, t, kVisited);
    std::uint32_t fresh = fm & ~vis;
    if (fresh == 0) continue;
    // All blocks run under LaunchPolicy::serial (the functional result
    // depends on block order through the update-flag claim below), so the
    // read-modify-write pair models atomicOr's cost without needing one.
    ctx.store(*st.visited, t, vis | fresh, kVisited);
    const std::uint32_t nm = ctx.load(*st.next_mask, t, kNextMask);
    ctx.store(*st.next_mask, t, nm | fresh, kNextMask);
    // One level store per search that just reached t; lockstep advance makes
    // the level exactly the current depth for every fresh bit.
    while (fresh != 0) {
      const auto s = static_cast<std::uint32_t>(std::countr_zero(fresh));
      ctx.compute(3, kBitOps);  // ctz + clear-lowest + index arithmetic
      ctx.store(*st.levels, static_cast<std::size_t>(t) * st.k + s, st.depth,
                kLevelStore);
      fresh &= fresh - 1;
    }
    if (ctx.load(st.ws->update(), t, kUpdateLoad) == 0) {
      ctx.store(st.ws->update(), t, std::uint8_t{1}, kUpdateStore);
      st.updated->push_back(t);
    }
  }
}

void launch_computation(simt::Device& dev, MultiState& st, Variant v,
                        std::span<const std::uint32_t> frontier,
                        std::uint32_t thread_tpb, std::uint32_t block_tpb) {
  const std::uint32_t n = st.graph->num_nodes;
  simt::Predicate pred;
  pred.base_addr = st.ws->bitmap().base_addr();
  pred.stride = 1;
  pred.ops = 2;

  if (v.mapping == Mapping::thread) {
    if (v.repr == WorksetRepr::bitmap) {
      const auto grid = simt::GridSpec::over_threads(n, thread_tpb, frontier, pred);
      simt::launch(dev, "msbfs.compute.T_BM", grid, [&](simt::ThreadCtx& ctx) {
        const auto id = static_cast<std::uint32_t>(ctx.global_id());
        ctx.store(st.ws->bitmap(), id, std::uint8_t{0}, kBitmapClear);
        visit_element(ctx, st, id, 0, 1);
      });
    } else {
      const auto grid = simt::GridSpec::dense(frontier.size(), thread_tpb);
      simt::launch(dev, "msbfs.compute.T_QU", grid, [&](simt::ThreadCtx& ctx) {
        const std::uint32_t id =
            ctx.load(st.ws->queue(), ctx.global_id(), kQueueLoad);
        visit_element(ctx, st, id, 0, 1);
      });
    }
  } else if (v.mapping == Mapping::warp) {
    if (v.repr == WorksetRepr::bitmap) {
      const auto grid =
          simt::GridSpec::over_blocks(n, simt::kWarpSize, frontier, pred);
      simt::launch(dev, "msbfs.compute.W_BM", grid, [&](simt::ThreadCtx& ctx) {
        const auto id = static_cast<std::uint32_t>(ctx.block_idx());
        if (ctx.thread_in_block() == 0) {
          ctx.store(st.ws->bitmap(), id, std::uint8_t{0}, kBitmapClear);
        }
        visit_element(ctx, st, id, ctx.thread_in_block(), simt::kWarpSize);
      });
    } else {
      const auto grid =
          simt::GridSpec::dense(frontier.size() * simt::kWarpSize, thread_tpb);
      simt::launch(dev, "msbfs.compute.W_QU", grid, [&](simt::ThreadCtx& ctx) {
        const auto wid = static_cast<std::uint32_t>(ctx.global_id() / simt::kWarpSize);
        const std::uint32_t id = ctx.load(st.ws->queue(), wid, kQueueLoad);
        visit_element(ctx, st, id,
                      static_cast<std::uint32_t>(ctx.global_id() % simt::kWarpSize),
                      simt::kWarpSize);
      });
    }
  } else {
    if (v.repr == WorksetRepr::bitmap) {
      const auto grid = simt::GridSpec::over_blocks(n, block_tpb, frontier, pred);
      simt::launch(dev, "msbfs.compute.B_BM", grid, [&](simt::ThreadCtx& ctx) {
        const auto id = static_cast<std::uint32_t>(ctx.block_idx());
        if (ctx.thread_in_block() == 0) {
          ctx.store(st.ws->bitmap(), id, std::uint8_t{0}, kBitmapClear);
        }
        visit_element(ctx, st, id, ctx.thread_in_block(), ctx.block_dim());
      });
    } else {
      const auto grid =
          simt::GridSpec::dense(frontier.size() * block_tpb, block_tpb);
      simt::launch(dev, "msbfs.compute.B_QU", grid, [&](simt::ThreadCtx& ctx) {
        const std::uint32_t id =
            ctx.load(st.ws->queue(), ctx.block_idx(), kQueueLoad);
        visit_element(ctx, st, id, ctx.thread_in_block(), ctx.block_dim());
      });
    }
  }
}

}  // namespace

GpuBfsMultiResult run_bfs_multi(simt::Device& dev, const graph::Csr& g,
                                std::span<const graph::NodeId> sources,
                                const VariantSelector& selector,
                                const EngineOptions& opts) {
  simt::StreamGuard sguard(dev, opts.stream);
  const simt::DeviceStats stats_before = dev.stats();
  const double t_begin = dev.now_us();
  DeviceGraph dg = DeviceGraph::upload(dev, g, /*with_weights=*/false);
  GpuBfsMultiResult result = run_bfs_multi(dev, dg, g, sources, selector, opts);
  dg.release(dev);
  result.metrics.total_us = dev.now_us() - t_begin;
  result.metrics.transfer_us =
      dev.stats().transfer_time_us - stats_before.transfer_time_us;
  return result;
}

GpuBfsMultiResult run_bfs_multi(simt::Device& dev, DeviceGraph& dg,
                                const graph::Csr& g,
                                std::span<const graph::NodeId> sources,
                                const VariantSelector& selector,
                                const EngineOptions& opts) {
  AGG_CHECK_MSG(!sources.empty() && sources.size() <= kMaxBatchedSources,
                "batch of 1..32 sources required");
  for (const graph::NodeId s : sources) AGG_CHECK(s < g.num_nodes);
  simt::StreamGuard sguard(dev, opts.stream);
  const simt::DeviceStats stats_before = dev.stats();
  const double t_begin = dev.now_us();

  GpuBfsMultiResult result;
  const auto k = static_cast<std::uint32_t>(sources.size());
  result.num_sources = k;
  const std::uint32_t block_tpb =
      opts.block_tpb ? opts.block_tpb : derive_block_tpb(dg.avg_outdegree);

  auto frontier_mask = dev.alloc<std::uint32_t>(g.num_nodes, "msbfs.frontier_mask");
  auto visited = dev.alloc<std::uint32_t>(g.num_nodes, "msbfs.visited");
  auto next_mask = dev.alloc<std::uint32_t>(g.num_nodes, "msbfs.next_mask");
  auto levels =
      dev.alloc<std::uint32_t>(static_cast<std::size_t>(g.num_nodes) * k,
                               "msbfs.levels");
  dev.fill(frontier_mask, 0u);
  dev.fill(visited, 0u);
  dev.fill(next_mask, 0u);
  dev.fill(levels, graph::kInfinity);
  Workset ws(dev, g.num_nodes);

  // Seed: distinct source nodes form the initial frontier; a node hosting
  // several batched sources simply starts with several bits.
  std::vector<std::uint32_t> frontier;
  for (std::uint32_t s = 0; s < k; ++s) {
    const std::uint32_t v = sources[s];
    dev.write_scalar(frontier_mask, v,
                     frontier_mask.host_view()[v] | (1u << s));
    dev.write_scalar(visited, v, visited.host_view()[v] | (1u << s));
    dev.write_scalar(levels, static_cast<std::size_t>(v) * k + s, 0u);
    if (std::find(frontier.begin(), frontier.end(), v) == frontier.end()) {
      frontier.push_back(v);
    }
  }
  std::sort(frontier.begin(), frontier.end());

  SelectorInput sel;
  sel.iteration = 0;
  sel.ws_size = frontier.size();
  sel.avg_outdegree = dg.avg_outdegree;
  sel.outdeg_stddev = dg.outdeg_stddev;
  sel.num_nodes = g.num_nodes;
  Variant variant = selector(sel);
  variant.ordering = Ordering::unordered;  // lockstep masks have no ordered form
  for (const std::uint32_t v : frontier) {
    // Materialize the initial working set in `variant.repr` form through the
    // regular generation path (flags were just written host-side).
    dev.write_scalar(ws.update(), v, std::uint8_t{1});
  }
  ws.generate(dev, variant.repr, frontier);

  std::vector<std::uint32_t> updated;
  MultiState st{&frontier_mask, &visited, &next_mask,
                &levels,        &dg,      &ws,
                &updated,       k,        0};

  const std::uint64_t max_iters =
      opts.max_iterations ? opts.max_iterations : 4ull * g.num_nodes + 64;

  std::uint32_t iteration = 0;
  while (!frontier.empty()) {
    ++iteration;
    AGG_CHECK_MSG(iteration <= max_iters, "multi-source BFS failed to converge");
    const double t_iter = dev.now_us();
    st.depth = iteration;

    std::uint64_t frontier_edges = 0;
    for (const std::uint32_t v : frontier) frontier_edges += g.degree(v);
    result.metrics.edges_processed += frontier_edges;

    launch_computation(dev, st, variant, frontier, opts.thread_tpb, block_tpb);
    if (variant.repr == WorksetRepr::queue) {
      ws.charge_queue_len_readback(dev);
    } else {
      ws.charge_changed_flag_readback(dev);
    }
    std::sort(updated.begin(), updated.end());

    // The old frontier buffer becomes next iteration's accumulation target;
    // its stale bits are harmless (see visit_element).
    std::swap(frontier_mask, next_mask);
    st.frontier_mask = &frontier_mask;
    st.next_mask = &next_mask;

    Variant next = variant;
    if (opts.monitor_interval > 0 && iteration % opts.monitor_interval == 0) {
      if (variant.repr == WorksetRepr::bitmap) {
        ws.charge_bitmap_count_kernel(dev);
      }
      sel.iteration = iteration;
      sel.ws_size = updated.size();
      ++result.metrics.decisions;
      next = selector(sel);
      next.ordering = Ordering::unordered;
      if (next != variant) ++result.metrics.switches;
    }

    if (!updated.empty()) {
      ws.generate(dev, next.repr, updated,
                  opts.scan_queue_gen ? Workset::GenMethod::scan
                                      : Workset::GenMethod::atomic);
    }

    record_iteration(result.metrics, "msbfs",
                     {iteration, frontier.size(), variant,
                      dev.now_us() - t_iter},
                     dev.now_us());
    frontier.swap(updated);
    updated.clear();
    variant = next;
  }

  // Download the full levels matrix (n x k) — the batch's entire answer.
  result.levels.resize(static_cast<std::size_t>(g.num_nodes) * k);
  dev.memcpy_d2h(std::span<std::uint32_t>(result.levels), levels);

  ws.release(dev);
  dev.free(frontier_mask);
  dev.free(visited);
  dev.free(next_mask);
  dev.free(levels);

  fill_from_device_delta(result.metrics, stats_before, dev.stats(), t_begin,
                         dev.now_us());
  return result;
}

}  // namespace gg
