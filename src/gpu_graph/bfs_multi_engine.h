// Batched multi-source BFS: one fused level-synchronous traversal answers up
// to 32 BFS queries over the same graph (the serving layer coalesces
// same-graph BFS requests into one batch; cf. the MS-BFS technique of Then et
// al., "The More the Merrier: Efficient Multi-Source Graph Traversal").
//
// Mechanics: each node carries a 32-bit mask per array —
//   frontier_mask[v]  bit s set = search s processes v this iteration
//   visited_mask[v]   bit s set = search s has reached v
//   next_mask[v]      bit s set = search s reaches v next iteration
// The computation kernel propagates  new = frontier_mask[v] & ~visited[t]
// along every edge, so one pass over the frontier's adjacency serves every
// batched search that is at v — the source of the >= 2x modeled throughput
// over independent traversals. Because the batch advances in lockstep, every
// bit newly set at iteration i corresponds to a BFS distance of exactly i,
// which keeps the per-search levels identical to independent runs.
//
// The working set (which nodes have any pending bit) reuses the dual
// bitmap/queue Workset, so the mapping x representation variants and the
// per-iteration selector apply exactly as in the single-source engine.
#pragma once

#include <span>
#include <vector>

#include "gpu_graph/device_graph.h"
#include "gpu_graph/engine_common.h"
#include "gpu_graph/metrics.h"
#include "graph/csr.h"
#include "simt/device.h"

namespace gg {

// Mask width: one uint32 per node serves up to 32 concurrent searches.
inline constexpr std::uint32_t kMaxBatchedSources = 32;

struct GpuBfsMultiResult {
  std::uint32_t num_sources = 0;
  // levels[v * num_sources + s] = BFS level of node v from sources[s]
  // (graph::kInfinity where unreachable); identical to num_sources
  // independent BFS runs.
  std::vector<std::uint32_t> levels;
  TraversalMetrics metrics;

  std::span<const std::uint32_t> levels_for(std::uint32_t v) const {
    return std::span<const std::uint32_t>(levels).subspan(
        static_cast<std::size_t>(v) * num_sources, num_sources);
  }
};

// Resident-graph form; 1 <= sources.size() <= kMaxBatchedSources (duplicate
// sources are allowed — their searches simply share bits' trajectories).
GpuBfsMultiResult run_bfs_multi(simt::Device& dev, DeviceGraph& dg,
                                const graph::Csr& g,
                                std::span<const graph::NodeId> sources,
                                const VariantSelector& selector,
                                const EngineOptions& opts = {});

// Convenience form that uploads/releases the graph around the traversal.
GpuBfsMultiResult run_bfs_multi(simt::Device& dev, const graph::Csr& g,
                                std::span<const graph::NodeId> sources,
                                const VariantSelector& selector,
                                const EngineOptions& opts = {});

}  // namespace gg
