// GPU BFS across the full implementation space (paper Sec. IV/V, Figs. 4, 8,
// 9): level-synchronous traversal driven by the two-kernel iteration
// framework (CUDA_computation + CUDA_workset_gen), supporting all eight
// ordering x mapping x working-set variants, with an optional per-iteration
// variant selector for the adaptive runtime.
#pragma once

#include <vector>

#include "gpu_graph/device_graph.h"
#include "gpu_graph/engine_common.h"
#include "gpu_graph/metrics.h"
#include "graph/csr.h"
#include "simt/device.h"

namespace gg {

struct GpuBfsResult {
  std::vector<std::uint32_t> level;  // graph::kInfinity where unreachable
  TraversalMetrics metrics;
};

// The selector is consulted at decision points (see
// EngineOptions::monitor_interval); between decision points the previous
// variant keeps running. Ordered and unordered BFS differ in the visited
// check (Fig. 4 line 8 vs 8'); both are level-synchronous.
GpuBfsResult run_bfs(simt::Device& dev, const graph::Csr& g, graph::NodeId source,
                     const VariantSelector& selector, const EngineOptions& opts = {});

// Resident-graph form: the caller owns an already-uploaded DeviceGraph (the
// serving layer keeps registered graphs resident across queries), so the
// metrics cover only the traversal itself — no upload is charged. `dg` must
// have been uploaded from `g` on `dev`.
GpuBfsResult run_bfs(simt::Device& dev, DeviceGraph& dg, const graph::Csr& g,
                     graph::NodeId source, const VariantSelector& selector,
                     const EngineOptions& opts = {});

inline GpuBfsResult run_bfs(simt::Device& dev, const graph::Csr& g,
                            graph::NodeId source, Variant variant,
                            const EngineOptions& opts = {}) {
  return run_bfs(dev, g, source, fixed_variant(variant), opts);
}

}  // namespace gg
