// The implementation exploration space (paper Sec. IV, Fig. 3): ordering x
// mapping granularity x working-set representation = 8 variants per
// algorithm, named as in the paper's tables (e.g. U_T_BM = unordered,
// thread-mapped, bitmap working set).
//
// Direction (push vs pull) extends that space as a fourth axis: push
// scatters from the frontier along out-edges (CSR), pull gathers over
// in-edges (CSC) — the direction-optimizing axis of Beamer et al. that
// SIMD-X and Gunrock adopt. `Direction::adaptive` never reaches a kernel:
// the runtime controller resolves it to push or pull per iteration.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace gg {

enum class Ordering : std::uint8_t { ordered, unordered };
// thread/block are the paper's two granularities (Sec. IV.B); warp is the
// virtual-warp-centric granularity of Hong et al. [12], which the paper
// names as integrable with its framework — provided here as an extension
// (one element per 32-lane warp, several warps packed per physical block).
enum class Mapping : std::uint8_t { thread, block, warp };
enum class WorksetRepr : std::uint8_t { bitmap, queue };
enum class Direction : std::uint8_t { push, pull, adaptive };

struct Variant {
  Ordering ordering = Ordering::unordered;
  Mapping mapping = Mapping::thread;
  WorksetRepr repr = WorksetRepr::bitmap;
  Direction direction = Direction::push;

  bool operator==(const Variant&) const = default;
};

// All eight variants in the tables' column order:
// O_T_BM O_T_QU O_B_BM O_B_QU U_T_BM U_T_QU U_B_BM U_B_QU.
std::array<Variant, 8> all_variants();
// The adaptive runtime's pool: the four unordered variants (paper Sec. VI.A).
std::array<Variant, 4> unordered_variants();
// Extension variants: unordered warp-centric mapping (U_W_BM, U_W_QU).
std::array<Variant, 2> warp_centric_variants();

std::string variant_name(const Variant& v);
const char* direction_name(Direction d);
// Parses names like "U_B_QU", optionally suffixed with a direction
// ("U_T_BM_PULL", "U_T_BM_DO"); no suffix (or "_PUSH") means push.
// Returns nullopt on malformed input.
std::optional<Variant> try_parse_variant(const std::string& name);
// Same grammar; aborts on malformed input (legacy contract).
Variant parse_variant(const std::string& name);

}  // namespace gg
