// The implementation exploration space (paper Sec. IV, Fig. 3): ordering x
// mapping granularity x working-set representation = 8 variants per
// algorithm, named as in the paper's tables (e.g. U_T_BM = unordered,
// thread-mapped, bitmap working set).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace gg {

enum class Ordering : std::uint8_t { ordered, unordered };
// thread/block are the paper's two granularities (Sec. IV.B); warp is the
// virtual-warp-centric granularity of Hong et al. [12], which the paper
// names as integrable with its framework — provided here as an extension
// (one element per 32-lane warp, several warps packed per physical block).
enum class Mapping : std::uint8_t { thread, block, warp };
enum class WorksetRepr : std::uint8_t { bitmap, queue };

struct Variant {
  Ordering ordering = Ordering::unordered;
  Mapping mapping = Mapping::thread;
  WorksetRepr repr = WorksetRepr::bitmap;

  bool operator==(const Variant&) const = default;
};

// All eight variants in the tables' column order:
// O_T_BM O_T_QU O_B_BM O_B_QU U_T_BM U_T_QU U_B_BM U_B_QU.
std::array<Variant, 8> all_variants();
// The adaptive runtime's pool: the four unordered variants (paper Sec. VI.A).
std::array<Variant, 4> unordered_variants();
// Extension variants: unordered warp-centric mapping (U_W_BM, U_W_QU).
std::array<Variant, 2> warp_centric_variants();

std::string variant_name(const Variant& v);
// Parses names like "U_B_QU"; aborts on malformed input.
Variant parse_variant(const std::string& name);

}  // namespace gg
