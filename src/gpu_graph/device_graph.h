// Device-resident CSR (paper Sec. V.A): node vector, edge vector, optional
// weight vector, uploaded once per traversal with transfer costs accounted.
// The pull (gather) kernels additionally need the CSC view; it is uploaded
// lazily — upload_csc() on first pull iteration — so push-only traversals
// never pay for it, and it stays resident alongside the CSR (Session pins
// keep it across queries; release() drops both).
#pragma once

#include <optional>

#include "graph/csr.h"
#include "simt/device.h"

namespace gg {

struct DeviceGraph {
  std::uint32_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  double avg_outdegree = 0;
  double outdeg_stddev = 0;
  simt::DeviceBuffer<std::uint32_t> row_offsets;  // n + 1
  simt::DeviceBuffer<std::uint32_t> col_indices;  // m
  simt::DeviceBuffer<std::uint32_t> weights;      // m if weighted, else empty
  // CSC (in-neighbor) view, empty until upload_csc().
  simt::DeviceBuffer<std::uint32_t> in_row_offsets;  // n + 1
  simt::DeviceBuffer<std::uint32_t> in_col_indices;  // m
  simt::DeviceBuffer<std::uint32_t> in_weights;      // m if weighted

  static DeviceGraph upload(simt::Device& dev, const graph::Csr& g,
                            bool with_weights);

  // Incremental patch toward `g` (the post-delta CSR of the same node set).
  // Diffs the resident arrays against `g` and re-sends only the dirty
  // regions; the edge/weight buffers keep capacity slack so small growth
  // never reallocates (num_edges tracks the logical size). Falls back to a
  // compacting rebuild — free + slack realloc + full re-upload — when the
  // new edge count exceeds the buffer capacity. The CSC view is invalidated
  // per-structure (freed; re-uploaded lazily on the next pull iteration).
  // Degree statistics are recomputed. Requires a resident CSR with the same
  // num_nodes and weight mode.
  struct PatchStats {
    bool rebuilt = false;
    std::uint64_t bytes_sent = 0;  // h2d payload of this patch
  };
  PatchStats patch(simt::Device& dev, const graph::Csr& g, bool with_weights);
  // Uploads the CSC view (see graph::build_csc); `csc` must describe the
  // same graph as the resident CSR. Idempotent per residency: callers guard
  // with csc_resident().
  void upload_csc(simt::Device& dev, const graph::Csr& csc, bool with_weights);
  bool csc_resident(bool with_weights) const {
    return in_row_offsets.valid() && (!with_weights || in_weights.valid());
  }
  void release(simt::Device& dev);
};

// Makes the CSC view resident ahead of a pull iteration. `host_csc` is the
// caller-provided CSC (the API layers pass Graph's cached copy); when null,
// the transpose is built once into `scratch` and kept for the rest of the
// traversal (one-shot paths).
void ensure_csc_resident(simt::Device& dev, DeviceGraph& dg,
                         const graph::Csr& g, const graph::Csr* host_csc,
                         bool with_weights,
                         std::optional<graph::Csr>& scratch);

}  // namespace gg
