// Device-resident CSR (paper Sec. V.A): node vector, edge vector, optional
// weight vector, uploaded once per traversal with transfer costs accounted.
#pragma once

#include "graph/csr.h"
#include "simt/device.h"

namespace gg {

struct DeviceGraph {
  std::uint32_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  double avg_outdegree = 0;
  double outdeg_stddev = 0;
  simt::DeviceBuffer<std::uint32_t> row_offsets;  // n + 1
  simt::DeviceBuffer<std::uint32_t> col_indices;  // m
  simt::DeviceBuffer<std::uint32_t> weights;      // m if weighted, else empty

  static DeviceGraph upload(simt::Device& dev, const graph::Csr& g,
                            bool with_weights);
  void release(simt::Device& dev);
};

}  // namespace gg
