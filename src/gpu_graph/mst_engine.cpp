#include "gpu_graph/mst_engine.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <tuple>

#include "gpu_graph/device_graph.h"
#include "gpu_graph/workset.h"
#include "simt/launch.h"

namespace gg {
namespace {

constexpr simt::Site kCompLoad{0, "mst.comp"};
constexpr simt::Site kRowOffsets{1, "mst.row-offsets"};
constexpr simt::Site kNodeOps{2, "mst.node-ops"};
constexpr simt::Site kEdgeLoad{3, "mst.edge-load"};
constexpr simt::Site kWeightLoad{4, "mst.weight-load"};
constexpr simt::Site kNbrComp{5, "mst.nbr-comp"};
constexpr simt::Site kEdgeOps{6, "mst.edge-ops"};
constexpr simt::Site kBestMin{7, "mst.best-atomic"};
constexpr simt::Site kUpdateLoad{8, "mst.update-load"};
constexpr simt::Site kUpdateStore{9, "mst.update-store"};
constexpr simt::Site kQueueLoad{10, "mst.queue-load"};
constexpr simt::Site kBitmapClear{11, "mst.bitmap-clear"};

constexpr std::uint64_t kNoEdge = ~0ull;

constexpr std::uint64_t pack(std::uint32_t weight, std::uint32_t arc) {
  return (static_cast<std::uint64_t>(weight) << 32) | arc;
}
constexpr std::uint32_t unpack_arc(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed);
}
constexpr std::uint32_t unpack_weight(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed >> 32);
}

struct MstState {
  simt::DeviceBuffer<std::uint32_t>* comp;
  simt::DeviceBuffer<std::uint64_t>* best;
  simt::DeviceBuffer<std::uint32_t>* canon;  // canonical undirected-edge ids
  DeviceGraph* graph;
  Workset* ws;
  std::vector<std::uint32_t>* updated;  // nodes still live next round
};

// Both arcs of an undirected edge must sort identically under the Boruvka
// tie-break, or equal-weight ties could hook components into cycles longer
// than the symmetric 2-cycles the break step handles. Arcs are therefore
// paired into canonical undirected-edge ids once per run.
std::vector<std::uint32_t> canonical_edge_ids(const graph::Csr& g) {
  std::vector<std::uint32_t> canon(g.num_edges(), 0);
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>,
           std::vector<std::uint32_t>>
      pending;  // (min,max,w) -> forward canonical ids not yet matched
  std::uint32_t next_id = 0;
  for (std::uint32_t u = 0; u < g.num_nodes; ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const std::uint32_t e = g.row_offsets[u] + static_cast<std::uint32_t>(i);
      const std::uint32_t v = nbrs[i];
      if (u < v) {
        canon[e] = next_id;
        pending[{u, v, wts[i]}].push_back(next_id);
        ++next_id;
      } else if (u == v) {
        canon[e] = next_id++;  // self loop: never a cross edge anyway
      }
    }
  }
  for (std::uint32_t u = 0; u < g.num_nodes; ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const std::uint32_t e = g.row_offsets[u] + static_cast<std::uint32_t>(i);
      const std::uint32_t v = nbrs[i];
      if (u <= v) continue;
      auto it = pending.find({v, u, wts[i]});
      if (it != pending.end() && !it->second.empty()) {
        canon[e] = it->second.back();
        it->second.pop_back();
      } else {
        canon[e] = next_id++;  // asymmetric stray arc: unique id keeps order total
      }
    }
  }
  return canon;
}

// The traced working-set kernel: scan the node's adjacency for the minimum
// cross-component arc and fold it into the component's best slot.
void find_min_element(simt::ThreadCtx& ctx, MstState& st, std::uint32_t id,
                      std::uint32_t offset, std::uint32_t step) {
  const std::uint32_t rv = ctx.load(*st.comp, id, kCompLoad);
  const std::uint32_t begin = ctx.load(st.graph->row_offsets, id, kRowOffsets);
  const std::uint32_t end = ctx.load(st.graph->row_offsets, id + 1, kRowOffsets);
  ctx.compute(4, kNodeOps);

  bool saw_cross = false;
  for (std::uint32_t e = begin + offset; e < end; e += step) {
    const std::uint32_t t = ctx.load(st.graph->col_indices, e, kEdgeLoad);
    const std::uint32_t w = ctx.load(st.graph->weights, e, kWeightLoad);
    const std::uint32_t rt = ctx.load(*st.comp, t, kNbrComp);
    ctx.compute(4, kEdgeOps);
    if (rt == rv) continue;
    saw_cross = true;
    const std::uint32_t c = ctx.load(*st.canon, e, kEdgeLoad);
    ctx.atomic_min(*st.best, rv, pack(w, c), kBestMin);
  }
  if (saw_cross) {
    if (ctx.load(st.ws->update(), id, kUpdateLoad) == 0) {
      ctx.store(st.ws->update(), id, std::uint8_t{1}, kUpdateStore);
      st.updated->push_back(id);
    }
  }
}

// Keeps the default LaunchPolicy::serial: the update-flag claim and host-side
// updated push_back make the result depend on the order blocks run.
void launch_find_min(simt::Device& dev, MstState& st, Variant v,
                     std::span<const std::uint32_t> frontier,
                     std::uint32_t thread_tpb, std::uint32_t block_tpb) {
  const std::uint32_t n = st.graph->num_nodes;
  simt::Predicate pred;
  pred.base_addr = st.ws->bitmap().base_addr();
  pred.stride = 1;
  pred.ops = 2;

  switch (v.mapping) {
    case Mapping::thread:
      if (v.repr == WorksetRepr::bitmap) {
        const auto grid = simt::GridSpec::over_threads(n, thread_tpb, frontier, pred);
        simt::launch(dev, "mst.findmin.T_BM", grid, [&](simt::ThreadCtx& ctx) {
          const auto id = static_cast<std::uint32_t>(ctx.global_id());
          ctx.store(st.ws->bitmap(), id, std::uint8_t{0}, kBitmapClear);
          find_min_element(ctx, st, id, 0, 1);
        });
      } else {
        const auto grid = simt::GridSpec::dense(frontier.size(), thread_tpb);
        simt::launch(dev, "mst.findmin.T_QU", grid, [&](simt::ThreadCtx& ctx) {
          const std::uint32_t id =
              ctx.load(st.ws->queue(), ctx.global_id(), kQueueLoad);
          find_min_element(ctx, st, id, 0, 1);
        });
      }
      break;
    case Mapping::block:
      if (v.repr == WorksetRepr::bitmap) {
        const auto grid = simt::GridSpec::over_blocks(n, block_tpb, frontier, pred);
        simt::launch(dev, "mst.findmin.B_BM", grid, [&](simt::ThreadCtx& ctx) {
          const auto id = static_cast<std::uint32_t>(ctx.block_idx());
          if (ctx.thread_in_block() == 0) {
            ctx.store(st.ws->bitmap(), id, std::uint8_t{0}, kBitmapClear);
          }
          find_min_element(ctx, st, id, ctx.thread_in_block(), ctx.block_dim());
        });
      } else {
        const auto grid =
            simt::GridSpec::dense(frontier.size() * block_tpb, block_tpb);
        simt::launch(dev, "mst.findmin.B_QU", grid, [&](simt::ThreadCtx& ctx) {
          const std::uint32_t id =
              ctx.load(st.ws->queue(), ctx.block_idx(), kQueueLoad);
          find_min_element(ctx, st, id, ctx.thread_in_block(), ctx.block_dim());
        });
      }
      break;
    case Mapping::warp:
      if (v.repr == WorksetRepr::bitmap) {
        const auto grid =
            simt::GridSpec::over_blocks(n, simt::kWarpSize, frontier, pred);
        simt::launch(dev, "mst.findmin.W_BM", grid, [&](simt::ThreadCtx& ctx) {
          const auto id = static_cast<std::uint32_t>(ctx.block_idx());
          if (ctx.thread_in_block() == 0) {
            ctx.store(st.ws->bitmap(), id, std::uint8_t{0}, kBitmapClear);
          }
          find_min_element(ctx, st, id, ctx.thread_in_block(), simt::kWarpSize);
        });
      } else {
        const auto grid =
            simt::GridSpec::dense(frontier.size() * simt::kWarpSize, thread_tpb);
        simt::launch(dev, "mst.findmin.W_QU", grid, [&](simt::ThreadCtx& ctx) {
          const auto wid =
              static_cast<std::uint32_t>(ctx.global_id() / simt::kWarpSize);
          const std::uint32_t id = ctx.load(st.ws->queue(), wid, kQueueLoad);
          find_min_element(
              ctx, st, id,
              static_cast<std::uint32_t>(ctx.global_id() % simt::kWarpSize),
              simt::kWarpSize);
        });
      }
      break;
  }
}

// Source node of an arc (binary search over the row offsets; host side only,
// used during hooking).
std::uint32_t edge_source(const graph::Csr& g, std::uint32_t arc) {
  const auto it = std::upper_bound(g.row_offsets.begin(), g.row_offsets.end(), arc);
  return static_cast<std::uint32_t>(it - g.row_offsets.begin()) - 1;
}

// Analytic charge for the auxiliary per-root / per-node kernels (hooking,
// cycle breaking, one pointer-jump pass).
void charge_aux_kernel(simt::Device& dev, const char* name, std::uint64_t threads,
                       double mem_instrs) {
  simt::UniformThreadCost c;
  c.ops = 4;
  c.mem_instrs = mem_instrs;
  c.transactions_per_warp = mem_instrs * simt::kWarpSize * 4 / 128.0;
  dev.account_kernel(
      simt::estimate_uniform_kernel(dev.props(), dev.timing(), name, threads, 256, c));
}

}  // namespace

GpuMstResult run_mst(simt::Device& dev, const graph::Csr& g,
                     const VariantSelector& selector, const EngineOptions& opts) {
  AGG_CHECK_MSG(g.has_weights(), "MST requires edge weights");
  // MST contracts the graph as it runs, so there is no resident-graph form;
  // the stream context still applies (the whole run issues on opts.stream).
  simt::StreamGuard sguard(dev, opts.stream);
  const simt::DeviceStats stats_before = dev.stats();
  const double t_begin = dev.now_us();

  GpuMstResult result;
  DeviceGraph dg = DeviceGraph::upload(dev, g, /*with_weights=*/true);
  const std::uint32_t block_tpb =
      opts.block_tpb ? opts.block_tpb : derive_block_tpb(dg.avg_outdegree);

  auto comp = dev.alloc<std::uint32_t>(g.num_nodes, "mst.comp");
  std::iota(comp.host_view().begin(), comp.host_view().end(), 0u);
  charge_aux_kernel(dev, "mst.init", g.num_nodes, 1);
  auto best = dev.alloc<std::uint64_t>(g.num_nodes, "mst.best");
  dev.fill(best, kNoEdge);
  // Canonical undirected-edge ids, uploaded once beside the CSR.
  const auto canon_host = canonical_edge_ids(g);
  auto canon = dev.alloc<std::uint32_t>(g.num_edges(), "mst.canon");
  dev.memcpy_h2d(canon, std::span<const std::uint32_t>(canon_host));
  // arc_of[canonical id] = one arc carrying it (for weight/endpoint lookup).
  std::vector<std::uint32_t> arc_of(g.num_edges());
  for (std::uint32_t e = 0; e < g.num_edges(); ++e) arc_of[canon_host[e]] = e;
  Workset ws(dev, g.num_nodes);

  SelectorInput sel;
  sel.ws_size = g.num_nodes;
  sel.avg_outdegree = dg.avg_outdegree;
  sel.outdeg_stddev = dg.outdeg_stddev;
  sel.num_nodes = g.num_nodes;
  Variant variant = selector(sel);
  variant.ordering = Ordering::unordered;

  std::vector<std::uint32_t> frontier(g.num_nodes);
  std::iota(frontier.begin(), frontier.end(), 0u);
  std::fill(ws.update().host_view().begin(), ws.update().host_view().end(),
            std::uint8_t{1});
  ws.generate(dev, variant.repr, frontier);

  std::vector<std::uint32_t> updated;
  MstState st{&comp, &best, &canon, &dg, &ws, &updated};
  std::vector<std::uint32_t> parent(g.num_nodes);
  std::vector<std::uint8_t> selected(g.num_edges(), 0);
  std::vector<std::uint32_t> live_roots;

  std::uint32_t iteration = 0;
  while (!frontier.empty()) {
    ++iteration;
    AGG_CHECK_MSG(iteration <= 64 + g.num_nodes, "Boruvka diverged");
    const double t_iter = dev.now_us();

    // (1) Reset best slots of the components still in play.
    live_roots.clear();
    {
      auto comp_view = comp.host_view();
      auto best_view = best.host_view();
      for (const std::uint32_t v : frontier) {
        const std::uint32_t r = comp_view[v];
        live_roots.push_back(r);
        best_view[r] = kNoEdge;
      }
      std::sort(live_roots.begin(), live_roots.end());
      live_roots.erase(std::unique(live_roots.begin(), live_roots.end()),
                       live_roots.end());
      charge_aux_kernel(dev, "mst.reset_best", live_roots.size(), 1);
    }

    // (2) Traced working-set kernel: per-component minimum outgoing arc.
    launch_find_min(dev, st, variant, frontier, opts.thread_tpb, block_tpb);
    for (const std::uint32_t v : frontier) {
      result.metrics.edges_processed += g.degree(v);
    }
    std::sort(updated.begin(), updated.end());
    if (variant.repr == WorksetRepr::queue) {
      ws.charge_queue_len_readback(dev);
    } else {
      ws.charge_changed_flag_readback(dev);
    }

    // (3) Hook components along their best arcs (per-root kernel).
    std::iota(parent.begin(), parent.end(), 0u);
    std::uint32_t hooks = 0;
    {
      auto comp_view = comp.host_view();
      auto best_view = best.host_view();
      for (const std::uint32_t r : live_roots) {
        if (best_view[r] == kNoEdge) continue;
        const std::uint32_t arc = arc_of[unpack_arc(best_view[r])];
        // Hook towards the side of the arc that is NOT r's component.
        const std::uint32_t rt = comp_view[g.col_indices[arc]];
        parent[r] = rt != r ? rt : comp_view[edge_source(g, arc)];
        ++hooks;
      }
      charge_aux_kernel(dev, "mst.hook", live_roots.size(), 3);

      // (4) Break symmetric hooks: the smaller root stays a root; the
      // surviving hook's arc joins the forest.
      for (const std::uint32_t r : live_roots) {
        if (parent[r] != r && parent[parent[r]] == r && r < parent[r]) {
          parent[r] = r;
          --hooks;
        }
      }
      charge_aux_kernel(dev, "mst.cycle_break", live_roots.size(), 2);
      for (const std::uint32_t r : live_roots) {
        if (parent[r] == r || best_view[r] == kNoEdge) continue;
        const std::uint32_t c = unpack_arc(best_view[r]);  // canonical id
        if (!selected[c]) {
          selected[c] = 1;
          result.total_weight += unpack_weight(best_view[r]);
          ++result.edges_in_forest;
        }
      }
    }

    // (5) Pointer jumping: flatten every node's label to its new root.
    {
      auto comp_view = comp.host_view();
      std::uint32_t jump_passes = 0;
      bool changed = true;
      while (changed) {
        changed = false;
        ++jump_passes;
        for (const std::uint32_t r : live_roots) {
          if (parent[r] != parent[parent[r]]) {
            parent[r] = parent[parent[r]];
            changed = true;
          }
        }
      }
      for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
        comp_view[v] = parent[comp_view[v]];
      }
      // One per-node relabel pass plus jump_passes passes over the roots.
      charge_aux_kernel(dev, "mst.relabel", g.num_nodes, 2);
      for (std::uint32_t p = 0; p < jump_passes; ++p) {
        charge_aux_kernel(dev, "mst.jump", live_roots.size(), 2);
      }
    }

    Variant next = variant;
    if (opts.monitor_interval > 0 && iteration % opts.monitor_interval == 0) {
      if (variant.repr == WorksetRepr::bitmap) {
        ws.charge_bitmap_count_kernel(dev);
      }
      sel.iteration = iteration;
      sel.ws_size = updated.size();
      ++result.metrics.decisions;
      next = selector(sel);
      next.ordering = Ordering::unordered;
      if (next != variant) ++result.metrics.switches;
    }

    if (hooks == 0) {
      // No component merged: the surviving update flags are stale; clear
      // them and stop.
      for (const std::uint32_t v : updated) ws.update().host_view()[v] = 0;
      record_iteration(result.metrics, "mst",
                       {iteration, frontier.size(), variant,
                        dev.now_us() - t_iter},
                       dev.now_us());
      break;
    }

    if (!updated.empty()) {
      ws.generate(dev, next.repr, updated);
    }
    record_iteration(result.metrics, "mst",
                     {iteration, frontier.size(), variant,
                      dev.now_us() - t_iter},
                     dev.now_us());
    frontier.swap(updated);
    updated.clear();
    variant = next;
  }

  result.component.resize(g.num_nodes);
  dev.memcpy_d2h(std::span<std::uint32_t>(result.component), comp);
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    if (result.component[v] == v) ++result.num_trees;
  }

  ws.release(dev);
  dev.free(comp);
  dev.free(best);
  dev.free(canon);
  dg.release(dev);
  fill_from_device_delta(result.metrics, stats_before, dev.stats(), t_begin,
                         dev.now_us());
  return result;
}

}  // namespace gg
