#include "gpu_graph/edge_parallel.h"

#include "graph/coo.h"
#include "simt/launch.h"

namespace gg {
namespace {

// Per-arc kernel cost: load src id + dst id + weight (all streaming,
// coalesced), load dist[src] (consecutive arcs share a source: mostly
// broadcast) and dist[dst] (scattered), compare; relaxations themselves are
// rare and folded into the scattered traffic.
simt::UniformThreadCost per_arc_cost() {
  simt::UniformThreadCost c;
  c.ops = 6;
  c.mem_instrs = 5;
  // src/dst/w streams: 3 segments per warp; dist[src]: ~2 (few distinct
  // sources per warp); dist[dst]: scattered, ~half the lanes miss.
  c.transactions_per_warp = 3.0 + 2.0 + 16.0;
  return c;
}

}  // namespace

GpuEdgeParallelResult run_sssp_edge_parallel(simt::Device& dev,
                                             const graph::Csr& g,
                                             graph::NodeId source) {
  AGG_CHECK(source < g.num_nodes);
  AGG_CHECK_MSG(g.has_weights(), "SSSP requires edge weights");
  const simt::DeviceStats stats_before = dev.stats();
  const double t_begin = dev.now_us();

  GpuEdgeParallelResult result;
  const graph::Coo coo = graph::Coo::from_csr(g);

  // Device arrays: the three COO streams plus the distance array.
  auto src = dev.alloc<std::uint32_t>(coo.num_edges(), "ep.src");
  dev.memcpy_h2d(src, std::span<const std::uint32_t>(coo.src));
  auto dst = dev.alloc<std::uint32_t>(coo.num_edges(), "ep.dst");
  dev.memcpy_h2d(dst, std::span<const std::uint32_t>(coo.dst));
  auto wts = dev.alloc<std::uint32_t>(coo.num_edges(), "ep.w");
  dev.memcpy_h2d(wts, std::span<const std::uint32_t>(coo.weights));
  auto dist = dev.alloc<std::uint32_t>(g.num_nodes, "ep.dist");
  dev.fill(dist, graph::kInfinity);
  dev.write_scalar(dist, source, 0u);

  // Host-functional relaxation with the full-array kernel charged each
  // round: the kernel's cost is uniform per arc (it scans all m arcs whether
  // or not they relax), so only the arcs that actually relax need functional execution.
  auto dist_view = dist.host_view();
  std::vector<std::uint32_t> changed{source};
  std::vector<std::uint8_t> queued(g.num_nodes, 0);

  std::uint32_t round = 0;
  while (!changed.empty()) {
    ++round;
    AGG_CHECK_MSG(round <= g.num_nodes + 2, "edge-parallel SSSP diverged");
    const double t_iter = dev.now_us();

    // Charge the full m-thread kernel + changed-flag readback.
    dev.account_kernel(simt::estimate_uniform_kernel(
        dev.props(), dev.timing(), "ep.relax_all", coo.num_edges(), 256,
        per_arc_cost()));
    dev.account_transfer(sizeof(std::uint32_t), /*to_device=*/false);
    result.metrics.edges_processed += coo.num_edges();

    // Functional effect of the round: relax out-arcs of changed sources.
    std::vector<std::uint32_t> next;
    for (const std::uint32_t v : changed) queued[v] = 0;
    for (const std::uint32_t v : changed) {
      const std::uint32_t dv = dist_view[v];
      const auto nbrs = g.neighbors(v);
      const auto w = g.edge_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const std::uint32_t nd = dv + w[i];
        if (nd < dist_view[nbrs[i]]) {
          dist_view[nbrs[i]] = nd;
          if (!queued[nbrs[i]]) {
            queued[nbrs[i]] = 1;
            next.push_back(nbrs[i]);
          }
        }
      }
    }
    changed.swap(next);
    record_iteration(result.metrics, "sssp_edge",
                     {round, coo.num_edges(), gg::Variant{},
                      dev.now_us() - t_iter},
                     dev.now_us());
  }

  result.dist.resize(g.num_nodes);
  dev.memcpy_d2h(std::span<std::uint32_t>(result.dist), dist);

  dev.free(src);
  dev.free(dst);
  dev.free(wts);
  dev.free(dist);
  fill_from_device_delta(result.metrics, stats_before, dev.stats(), t_begin,
                         dev.now_us());
  return result;
}

}  // namespace gg
