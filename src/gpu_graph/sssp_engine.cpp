#include "gpu_graph/sssp_engine.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "gpu_graph/device_graph.h"
#include "gpu_graph/workset.h"
#include "simt/launch.h"
#include "simt/primitives.h"

namespace gg {
namespace {

constexpr simt::Site kNodeDist{0, "sssp.node-dist"};
constexpr simt::Site kRowOffsets{1, "sssp.row-offsets"};
constexpr simt::Site kNodeOps{2, "sssp.node-ops"};
constexpr simt::Site kEdgeLoad{3, "sssp.edge-load"};
constexpr simt::Site kWeightLoad{4, "sssp.weight-load"};
constexpr simt::Site kEdgeOps{5, "sssp.edge-ops"};
constexpr simt::Site kRelax{6, "sssp.relax-atomic"};
constexpr simt::Site kUpdateLoad{7, "sssp.update-load"};
constexpr simt::Site kUpdateStore{8, "sssp.update-store"};
constexpr simt::Site kQueueLoad{9, "sssp.queue-load"};
constexpr simt::Site kBitmapClear{10, "sssp.bitmap-clear"};
constexpr simt::Site kTentLoad{11, "sssp.tent-load"};
constexpr simt::Site kDistStore{12, "sssp.dist-store"};
constexpr simt::Site kCandFlag{13, "sssp.cand-flag"};
constexpr simt::Site kCandTail{14, "sssp.cand-tail"};
constexpr simt::Site kPullRowOffsets{15, "sssp.pull-row-offsets"};
constexpr simt::Site kPullEdgeLoad{16, "sssp.pull-edge-load"};
constexpr simt::Site kPullWeightLoad{17, "sssp.pull-weight-load"};
constexpr simt::Site kPullFrontierTest{18, "sssp.pull-frontier-test"};

// ---------------------------------------------------------------------------
// Unordered SSSP (Bellman-Ford over the two-kernel framework).
// ---------------------------------------------------------------------------

struct UnorderedState {
  simt::DeviceBuffer<std::uint32_t>* dist;
  DeviceGraph* graph;
  Workset* ws;
  std::vector<std::uint32_t>* updated;
};

void relax_element(simt::ThreadCtx& ctx, UnorderedState& st, std::uint32_t id,
                   std::uint32_t offset, std::uint32_t step) {
  const std::uint32_t d = ctx.load(*st.dist, id, kNodeDist);
  const std::uint32_t begin = ctx.load(st.graph->row_offsets, id, kRowOffsets);
  const std::uint32_t end = ctx.load(st.graph->row_offsets, id + 1, kRowOffsets);
  ctx.compute(4, kNodeOps);

  for (std::uint32_t e = begin + offset; e < end; e += step) {
    const std::uint32_t t = ctx.load(st.graph->col_indices, e, kEdgeLoad);
    const std::uint32_t w = ctx.load(st.graph->weights, e, kWeightLoad);
    ctx.compute(3, kEdgeOps);
    const std::uint32_t nd = d + w;
    const std::uint32_t old = ctx.atomic_min(*st.dist, t, nd, kRelax);
    if (nd < old) {
      if (ctx.load(st.ws->update(), t, kUpdateLoad) == 0) {
        ctx.store(st.ws->update(), t, std::uint8_t{1}, kUpdateStore);
        st.updated->push_back(t);
      }
    }
  }
}

// All compute variants keep the default LaunchPolicy::serial: relax_element
// branches on the atomic_min return value and push_backs into the host-side
// updated list, so the functional result depends on the order blocks run.
void launch_unordered(simt::Device& dev, UnorderedState& st, Variant v,
                      std::span<const std::uint32_t> frontier,
                      std::uint32_t thread_tpb, std::uint32_t block_tpb) {
  const std::uint32_t n = st.graph->num_nodes;
  simt::Predicate pred;
  pred.base_addr = st.ws->bitmap().base_addr();
  pred.stride = 1;
  pred.ops = 2;

  if (v.mapping == Mapping::thread) {
    if (v.repr == WorksetRepr::bitmap) {
      const auto grid = simt::GridSpec::over_threads(n, thread_tpb, frontier, pred);
      simt::launch(dev, "sssp.compute.T_BM", grid, [&](simt::ThreadCtx& ctx) {
        const auto id = static_cast<std::uint32_t>(ctx.global_id());
        ctx.store(st.ws->bitmap(), id, std::uint8_t{0}, kBitmapClear);
        relax_element(ctx, st, id, 0, 1);
      });
    } else {
      const auto grid = simt::GridSpec::dense(frontier.size(), thread_tpb);
      simt::launch(dev, "sssp.compute.T_QU", grid, [&](simt::ThreadCtx& ctx) {
        const std::uint32_t id =
            ctx.load(st.ws->queue(), ctx.global_id(), kQueueLoad);
        relax_element(ctx, st, id, 0, 1);
      });
    }
  } else if (v.mapping == Mapping::warp) {
    if (v.repr == WorksetRepr::bitmap) {
      const auto grid =
          simt::GridSpec::over_blocks(n, simt::kWarpSize, frontier, pred);
      simt::launch(dev, "sssp.compute.W_BM", grid, [&](simt::ThreadCtx& ctx) {
        const auto id = static_cast<std::uint32_t>(ctx.block_idx());
        if (ctx.thread_in_block() == 0) {
          ctx.store(st.ws->bitmap(), id, std::uint8_t{0}, kBitmapClear);
        }
        relax_element(ctx, st, id, ctx.thread_in_block(), simt::kWarpSize);
      });
    } else {
      const auto grid =
          simt::GridSpec::dense(frontier.size() * simt::kWarpSize, thread_tpb);
      simt::launch(dev, "sssp.compute.W_QU", grid, [&](simt::ThreadCtx& ctx) {
        const auto wid = static_cast<std::uint32_t>(ctx.global_id() / simt::kWarpSize);
        const std::uint32_t id = ctx.load(st.ws->queue(), wid, kQueueLoad);
        relax_element(ctx, st, id,
                      static_cast<std::uint32_t>(ctx.global_id() % simt::kWarpSize),
                      simt::kWarpSize);
      });
    }
  } else {
    if (v.repr == WorksetRepr::bitmap) {
      const auto grid = simt::GridSpec::over_blocks(n, block_tpb, frontier, pred);
      simt::launch(dev, "sssp.compute.B_BM", grid, [&](simt::ThreadCtx& ctx) {
        const auto id = static_cast<std::uint32_t>(ctx.block_idx());
        if (ctx.thread_in_block() == 0) {
          ctx.store(st.ws->bitmap(), id, std::uint8_t{0}, kBitmapClear);
        }
        relax_element(ctx, st, id, ctx.thread_in_block(), ctx.block_dim());
      });
    } else {
      const auto grid =
          simt::GridSpec::dense(frontier.size() * block_tpb, block_tpb);
      simt::launch(dev, "sssp.compute.B_QU", grid, [&](simt::ThreadCtx& ctx) {
        const std::uint32_t id =
            ctx.load(st.ws->queue(), ctx.block_idx(), kQueueLoad);
        relax_element(ctx, st, id, ctx.thread_in_block(), ctx.block_dim());
      });
    }
  }
}

// Pull (gather) relaxation in the style of the sssp_pull-topological
// exemplar: a dense thread-per-vertex kernel where each vertex scans its
// in-edges (CSC), filters frontier members through the bitmap, folds the
// candidate distances into a register-local minimum, and performs a single
// own-cell store if it improved — "atomicMin on self": no inter-thread
// atomics on the scatter side, and the in-edge reads are coalesced gathers.
// Serial policy: improved ids are push_backed into the host updated shadow.
void launch_pull_unordered(simt::Device& dev, UnorderedState& st,
                           std::uint32_t thread_tpb) {
  const std::uint32_t n = st.graph->num_nodes;
  const auto grid = simt::GridSpec::dense(n, thread_tpb);
  simt::launch(dev, "sssp.compute.T_PULL", grid, [&](simt::ThreadCtx& ctx) {
    const auto id = static_cast<std::uint32_t>(ctx.global_id());
    const std::uint32_t d = ctx.load(*st.dist, id, kNodeDist);
    const std::uint32_t begin =
        ctx.load(st.graph->in_row_offsets, id, kPullRowOffsets);
    const std::uint32_t end =
        ctx.load(st.graph->in_row_offsets, id + 1, kPullRowOffsets);
    ctx.compute(4, kNodeOps);
    std::uint32_t best = d;
    for (std::uint32_t e = begin; e < end; ++e) {
      const std::uint32_t u = ctx.load(st.graph->in_col_indices, e, kPullEdgeLoad);
      ctx.compute(2, kEdgeOps);
      if (ctx.load(st.ws->bitmap(), u, kPullFrontierTest) == 0) continue;
      const std::uint32_t du = ctx.load(*st.dist, u, kNodeDist);
      const std::uint32_t w = ctx.load(st.graph->in_weights, e, kPullWeightLoad);
      ctx.compute(2, kEdgeOps);
      if (du != graph::kInfinity && du + w < best) best = du + w;
    }
    if (best < d) {
      ctx.store(*st.dist, id, best, kDistStore);
      ctx.store(st.ws->update(), id, std::uint8_t{1}, kUpdateStore);
      st.updated->push_back(id);
    }
  });
}

GpuSsspResult run_unordered(simt::Device& dev, DeviceGraph& dg,
                            const graph::Csr& g, graph::NodeId source,
                            Variant variant, const VariantSelector& selector,
                            const EngineOptions& opts) {
  const simt::DeviceStats stats_before = dev.stats();
  const double t_begin = dev.now_us();
  variant = normalize_direction(variant);

  GpuSsspResult result;
  const std::uint32_t block_tpb =
      opts.block_tpb ? opts.block_tpb : derive_block_tpb(dg.avg_outdegree);
  auto dist = dev.alloc<std::uint32_t>(g.num_nodes, "sssp.dist");
  dev.fill(dist, graph::kInfinity);
  dev.write_scalar(dist, source, 0u);
  Workset ws(dev, g.num_nodes);
  ws.init_source(dev, source, variant.repr);

  std::vector<std::uint32_t> frontier{source};
  std::vector<std::uint32_t> updated;
  UnorderedState st{&dist, &dg, &ws, &updated};

  std::optional<graph::Csr> csc_scratch;

  SelectorInput sel;
  sel.avg_outdegree = dg.avg_outdegree;
  sel.outdeg_stddev = dg.outdeg_stddev;
  sel.num_nodes = g.num_nodes;
  sel.num_edges = dg.num_edges;
  // Direction controller input: unlike BFS, a weighted min-fold cannot stop
  // at the first frontier in-neighbor, so a pull iteration always rescans
  // every in-edge *and* its weight — the gather volume is a flat 2m however
  // little remains unexplored. Reporting that (instead of BFS's first-touch
  // remainder) keeps the alpha rule honest: the frontier's scatter mass can
  // never cover it, so direction-optimizing SSSP correctly stays push.
  sel.unexplored_edges = 2 * dg.num_edges;

  const std::uint64_t max_iters =
      opts.max_iterations ? opts.max_iterations : 16ull * g.num_nodes + 64;

  const bool hybrid = opts.hybrid_cpu_threshold > 0;
  bool on_cpu = hybrid && frontier.size() < opts.hybrid_cpu_threshold;
  if (on_cpu) {
    dev.account_transfer(4ull * g.num_nodes, /*to_device=*/false);
  }

  std::uint32_t iteration = 0;
  while (!frontier.empty()) {
    ++iteration;
    AGG_CHECK_MSG(iteration <= max_iters, "SSSP failed to converge");
    const double t_iter = dev.now_us();

    std::uint64_t frontier_edges = 0;
    for (const std::uint32_t v : frontier) frontier_edges += g.degree(v);
    result.metrics.edges_processed += frontier_edges;

    if (on_cpu) {
      // Serial host relaxation of a small frontier (hybrid execution,
      // cf. Hong et al. [13]).
      auto dist_view = dist.host_view();
      auto update_view = ws.update().host_view();
      for (const std::uint32_t v : frontier) {
        const std::uint32_t dv = dist_view[v];
        const auto nbrs = g.neighbors(v);
        const auto wts = g.edge_weights(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const std::uint32_t nd = dv + wts[i];
          if (nd < dist_view[nbrs[i]]) {
            dist_view[nbrs[i]] = nd;
            if (update_view[nbrs[i]] == 0) {
              update_view[nbrs[i]] = 1;
              updated.push_back(nbrs[i]);
            }
          }
        }
      }
      dev.account_host_compute(
          (static_cast<double>(frontier.size()) * opts.hybrid_cpu_cycles_per_node +
           static_cast<double>(frontier_edges) * opts.hybrid_cpu_cycles_per_edge) /
          (opts.hybrid_cpu_clock_ghz * 1e3));
    } else if (variant.direction == Direction::pull) {
      ensure_csc_resident(dev, dg, g, opts.csc, /*with_weights=*/true,
                          csc_scratch);
      launch_pull_unordered(dev, st, opts.thread_tpb);
      ws.charge_changed_flag_readback(dev);
      ws.clear_frontier_bitmap(dev, frontier);
    } else {
      launch_unordered(dev, st, variant, frontier, opts.thread_tpb, block_tpb);
      if (variant.repr == WorksetRepr::queue) {
        ws.charge_queue_len_readback(dev);
      } else {
        ws.charge_changed_flag_readback(dev);
      }
    }
    std::sort(updated.begin(), updated.end());

    std::uint64_t next_frontier_edges = 0;
    for (const std::uint32_t v : updated) next_frontier_edges += g.degree(v);

    Variant next = variant;
    if (opts.monitor_interval > 0 && iteration % opts.monitor_interval == 0) {
      if (!on_cpu && variant.repr == WorksetRepr::bitmap) {
        ws.charge_bitmap_count_kernel(dev);
      }
      sel.iteration = iteration;
      sel.ws_size = updated.size();
      sel.frontier_edges = next_frontier_edges;
      sel.direction = variant.direction;
      ++result.metrics.decisions;
      next = normalize_direction(selector(sel));
      next.ordering = Ordering::unordered;
      if (!on_cpu && next != variant) ++result.metrics.switches;
    }

    const bool next_on_cpu =
        hybrid && updated.size() < opts.hybrid_cpu_threshold;
    // Host phases are scalar scatter loops; direction only applies on device.
    if (next_on_cpu) next.direction = Direction::push;
    if (on_cpu != next_on_cpu) {
      if (next_on_cpu) {
        dev.account_transfer(4ull * g.num_nodes, /*to_device=*/false);
      } else {
        dev.account_transfer(4ull * g.num_nodes, /*to_device=*/true);
        dev.account_transfer(g.num_nodes, /*to_device=*/true);
      }
    }

    if (!updated.empty() && !next_on_cpu) {
      ws.generate(dev, next.repr, updated,
                  opts.scan_queue_gen ? Workset::GenMethod::scan
                                      : Workset::GenMethod::atomic);
    } else if (!updated.empty()) {
      for (const std::uint32_t v : updated) ws.update().host_view()[v] = 0;
    }

    record_iteration(result.metrics, "sssp",
                     {iteration, frontier.size(), variant,
                      dev.now_us() - t_iter, on_cpu},
                     dev.now_us());
    frontier.swap(updated);
    updated.clear();
    variant = next;
    on_cpu = next_on_cpu;
  }

  result.dist.resize(g.num_nodes);
  if (on_cpu) {
    // Hybrid run ended in a CPU phase: the state array is already host
    // resident, so no download is charged.
    const auto view = dist.host_view();
    std::copy(view.begin(), view.end(), result.dist.begin());
  } else {
    dev.memcpy_d2h(std::span<std::uint32_t>(result.dist), dist);
  }

  ws.release(dev);
  dev.free(dist);
  fill_from_device_delta(result.metrics, stats_before, dev.stats(), t_begin,
                         dev.now_us());
  return result;
}

// ---------------------------------------------------------------------------
// Ordered SSSP (Dijkstra-like with GPU parallel-reduction findmin).
// ---------------------------------------------------------------------------

struct OrderedState {
  simt::DeviceBuffer<std::uint32_t>* dist;  // settled distances
  simt::DeviceBuffer<std::uint32_t>* tent;  // tentative distances (candidates)
  simt::DeviceBuffer<std::uint8_t>* cand;   // candidate flags
  DeviceGraph* graph;
  // Host-functional candidate index: tentative value -> nodes (lazy entries;
  // an entry is live iff tent[v] still equals the bucket key and cand[v]).
  std::map<std::uint32_t, std::vector<std::uint32_t>>* buckets;
  std::uint64_t* cand_count;
  std::uint64_t* pairs_outstanding;  // queue repr: <node, distance> pairs queued
};

void settle_element(simt::ThreadCtx& ctx, OrderedState& st, std::uint32_t id,
                    bool strided, bool queue_repr, simt::DeviceBuffer<std::uint32_t>& cand_tail) {
  const std::uint32_t tv = ctx.load(*st.tent, id, kTentLoad);
  if (!strided || ctx.thread_in_block() == 0) {
    ctx.store(*st.dist, id, tv, kDistStore);
    ctx.store(*st.cand, id, std::uint8_t{0}, kCandFlag);
  }
  const std::uint32_t begin = ctx.load(st.graph->row_offsets, id, kRowOffsets);
  const std::uint32_t end = ctx.load(st.graph->row_offsets, id + 1, kRowOffsets);
  ctx.compute(4, kNodeOps);

  std::uint32_t e = begin + (strided ? ctx.thread_in_block() : 0);
  const std::uint32_t step = strided ? ctx.block_dim() : 1;
  for (; e < end; e += step) {
    const std::uint32_t t = ctx.load(st.graph->col_indices, e, kEdgeLoad);
    const std::uint32_t w = ctx.load(st.graph->weights, e, kWeightLoad);
    ctx.compute(3, kEdgeOps);
    const std::uint32_t dt = ctx.load(*st.dist, t, kNodeDist);
    if (dt != graph::kInfinity) continue;  // already settled
    const std::uint32_t nd = tv + w;
    const std::uint32_t old = ctx.atomic_min(*st.tent, t, nd, kRelax);
    if (nd < old) {
      (*st.buckets)[nd].push_back(t);
      ++*st.pairs_outstanding;
      if (queue_repr) {
        // Working-set pair append (atomic tail, as in workset generation).
        ctx.atomic_add(cand_tail, 0, 1u, kCandTail);
      }
      if (ctx.load(*st.cand, t, kUpdateLoad) == 0) {
        ctx.store(*st.cand, t, std::uint8_t{1}, kUpdateStore);
        ++*st.cand_count;
      }
    }
  }
}

GpuSsspResult run_ordered(simt::Device& dev, DeviceGraph& dg,
                          const graph::Csr& g, graph::NodeId source,
                          Variant variant, const EngineOptions& opts) {
  const simt::DeviceStats stats_before = dev.stats();
  const double t_begin = dev.now_us();

  GpuSsspResult result;
  const std::uint32_t block_tpb =
      opts.block_tpb ? opts.block_tpb : derive_block_tpb(dg.avg_outdegree);
  auto dist = dev.alloc<std::uint32_t>(g.num_nodes, "osssp.dist");
  auto tent = dev.alloc<std::uint32_t>(g.num_nodes, "osssp.tent");
  auto cand = dev.alloc<std::uint8_t>(g.num_nodes, "osssp.cand");
  auto cand_tail = dev.alloc<std::uint32_t>(1, "osssp.cand_tail");
  // Frontier queue produced (device-side) by the extract/compaction kernel.
  auto fqueue = dev.alloc<std::uint32_t>(g.num_nodes, "osssp.frontier");
  dev.fill(dist, graph::kInfinity);
  dev.fill(tent, graph::kInfinity);
  dev.fill(cand, std::uint8_t{0});
  dev.write_scalar(tent, source, 0u);
  dev.write_scalar(cand, source, std::uint8_t{1});

  std::map<std::uint32_t, std::vector<std::uint32_t>> buckets;
  buckets[0].push_back(source);
  std::uint64_t cand_count = 1;
  // Queue representation: the ordered working set holds <node, distance>
  // pairs, and "the same node can appear multiple times in the working set
  // with different weight values" (Sec. IV.A) — findmin and extraction scan
  // every outstanding pair, not the deduplicated candidate set.
  std::uint64_t pairs_outstanding = 1;
  OrderedState st{&dist, &tent, &cand, &dg, &buckets, &cand_count, &pairs_outstanding};
  const bool queue_repr = variant.repr == WorksetRepr::queue;

  std::vector<std::uint32_t> frontier;
  simt::Predicate pred;
  pred.base_addr = cand.base_addr();
  pred.stride = 1;
  pred.ops = 4;  // candidate flag + tentative-distance comparison

  std::uint32_t iteration = 0;
  while (cand_count > 0) {
    ++iteration;
    AGG_CHECK_MSG(iteration <= 64ull * g.num_nodes + 64, "ordered SSSP diverged");
    const double t_iter = dev.now_us();

    // (1) findmin by parallel reduction (Sec. V.B): over the dense tentative
    // array (bitmap) or the compacted candidate queue (queue).
    const std::uint64_t reduce_n =
        queue_repr ? std::max<std::uint64_t>(pairs_outstanding, 1) : g.num_nodes;
    simt::prim::charge_reduce_min(dev, reduce_n);

    // Functional minimum from the bucket index (skipping stale entries).
    frontier.clear();
    while (!buckets.empty() && frontier.empty()) {
      auto it = buckets.begin();
      const std::uint32_t min_key = it->first;
      const auto tent_view = tent.host_view();
      const auto cand_view = cand.host_view();
      for (const std::uint32_t v : it->second) {
        if (cand_view[v] == 1 && tent_view[v] == min_key) frontier.push_back(v);
      }
      pairs_outstanding -= std::min<std::uint64_t>(pairs_outstanding, it->second.size());
      buckets.erase(it);
    }
    if (frontier.empty()) break;  // only stale entries remained
    std::sort(frontier.begin(), frontier.end());
    frontier.erase(std::unique(frontier.begin(), frontier.end()), frontier.end());

    // (2) frontier extraction kernel: queue repr compacts the candidate
    // queue (dropping settled/stale entries); bitmap repr skips this — the
    // settle kernel scans all n with the candidate predicate inline.
    if (queue_repr) {
      simt::UniformThreadCost c;
      c.ops = 5;
      c.mem_instrs = 2;  // candidate id + tentative distance
      c.transactions_per_warp = 2.0 * simt::kWarpSize * 4 / 128.0;
      dev.account_kernel(simt::estimate_uniform_kernel(
          dev.props(), dev.timing(), "osssp.extract(analytic)",
          std::max<std::uint64_t>(pairs_outstanding + frontier.size(), 1), 256, c));
      // Functional content of the device frontier queue the extract kernel
      // produced (its cost is the estimate above).
      std::copy(frontier.begin(), frontier.end(), fqueue.host_view().begin());
    }

    // (3) settle + relax kernel over the frontier (mapping-dependent).
    if (variant.mapping == Mapping::thread) {
      if (queue_repr) {
        const auto grid = simt::GridSpec::dense(frontier.size(), opts.thread_tpb);
        simt::launch(dev, "osssp.settle.T_QU", grid, [&](simt::ThreadCtx& ctx) {
          const std::uint32_t id = ctx.load(fqueue, ctx.global_id(), kQueueLoad);
          settle_element(ctx, st, id, false, true, cand_tail);
        });
      } else {
        const auto grid = simt::GridSpec::over_threads(
            g.num_nodes, opts.thread_tpb, frontier, pred);
        simt::launch(dev, "osssp.settle.T_BM", grid, [&](simt::ThreadCtx& ctx) {
          settle_element(ctx, st, static_cast<std::uint32_t>(ctx.global_id()),
                         false, false, cand_tail);
        });
      }
    } else {
      if (queue_repr) {
        const auto grid =
            simt::GridSpec::dense(frontier.size() * block_tpb, block_tpb);
        simt::launch(dev, "osssp.settle.B_QU", grid, [&](simt::ThreadCtx& ctx) {
          const std::uint32_t id = ctx.load(fqueue, ctx.block_idx(), kQueueLoad);
          settle_element(ctx, st, id, true, true, cand_tail);
        });
      } else {
        const auto grid =
            simt::GridSpec::over_blocks(g.num_nodes, block_tpb, frontier, pred);
        simt::launch(dev, "osssp.settle.B_BM", grid, [&](simt::ThreadCtx& ctx) {
          settle_element(ctx, st, static_cast<std::uint32_t>(ctx.block_idx()),
                         true, false, cand_tail);
        });
      }
    }
    for (const std::uint32_t v : frontier) {
      result.metrics.edges_processed += g.degree(v);
    }
    cand_count -= frontier.size();

    record_iteration(result.metrics, "sssp_delta",
                     {iteration, frontier.size(), variant,
                      dev.now_us() - t_iter},
                     dev.now_us());
  }

  result.dist.resize(g.num_nodes);
  dev.memcpy_d2h(std::span<std::uint32_t>(result.dist), dist);

  dev.free(dist);
  dev.free(tent);
  dev.free(cand);
  dev.free(cand_tail);
  dev.free(fqueue);
  fill_from_device_delta(result.metrics, stats_before, dev.stats(), t_begin,
                         dev.now_us());
  return result;
}

}  // namespace

GpuSsspResult run_sssp(simt::Device& dev, const graph::Csr& g, graph::NodeId source,
                       const VariantSelector& selector, const EngineOptions& opts) {
  AGG_CHECK_MSG(g.has_weights(), "SSSP requires edge weights");
  simt::StreamGuard sguard(dev, opts.stream);
  const simt::DeviceStats stats_before = dev.stats();
  const double t_begin = dev.now_us();
  DeviceGraph dg = DeviceGraph::upload(dev, g, /*with_weights=*/true);
  GpuSsspResult result = run_sssp(dev, dg, g, source, selector, opts);
  dg.release(dev);
  result.metrics.total_us = dev.now_us() - t_begin;
  result.metrics.transfer_us =
      dev.stats().transfer_time_us - stats_before.transfer_time_us;
  return result;
}

GpuSsspResult run_sssp(simt::Device& dev, DeviceGraph& dg, const graph::Csr& g,
                       graph::NodeId source, const VariantSelector& selector,
                       const EngineOptions& opts) {
  AGG_CHECK(source < g.num_nodes);
  AGG_CHECK_MSG(g.has_weights(), "SSSP requires edge weights");
  simt::StreamGuard sguard(dev, opts.stream);
  SelectorInput sel;
  sel.ws_size = 1;
  sel.avg_outdegree = dg.avg_outdegree;
  sel.outdeg_stddev = dg.outdeg_stddev;
  sel.num_nodes = g.num_nodes;
  sel.num_edges = dg.num_edges;
  sel.frontier_edges = g.degree(source);
  // Flat gather-volume proxy; see run_unordered for why SSSP reports 2m.
  sel.unexplored_edges = 2 * dg.num_edges;
  Variant initial = selector(sel);
  if (initial.ordering == Ordering::ordered) {
    AGG_CHECK_MSG(initial.mapping != Mapping::warp,
                  "warp-centric mapping is an unordered-only extension");
    // The ordered (Dijkstra-like) formulation has no gather phase; pull is
    // an unordered-only axis.
    initial.direction = Direction::push;
    return run_ordered(dev, dg, g, source, initial, opts);
  }
  return run_unordered(dev, dg, g, source, initial, selector, opts);
}

}  // namespace gg
