#include "gpu_graph/cc_engine.h"

#include <algorithm>
#include <numeric>

#include "gpu_graph/device_graph.h"
#include "gpu_graph/workset.h"
#include "simt/launch.h"

namespace gg {
namespace {

constexpr simt::Site kNodeLabel{0, "cc.node-label"};
constexpr simt::Site kRowOffsets{1, "cc.row-offsets"};
constexpr simt::Site kNodeOps{2, "cc.node-ops"};
constexpr simt::Site kEdgeLoad{3, "cc.edge-load"};
constexpr simt::Site kEdgeOps{4, "cc.edge-ops"};
constexpr simt::Site kPropagate{5, "cc.propagate-atomic"};
constexpr simt::Site kUpdateLoad{6, "cc.update-load"};
constexpr simt::Site kUpdateStore{7, "cc.update-store"};
constexpr simt::Site kQueueLoad{8, "cc.queue-load"};
constexpr simt::Site kBitmapClear{9, "cc.bitmap-clear"};
constexpr simt::Site kPullFrontierTest{10, "cc.pull-frontier-test"};
constexpr simt::Site kLabelStore{11, "cc.label-store"};

struct CcState {
  simt::DeviceBuffer<std::uint32_t>* label;
  DeviceGraph* graph;
  Workset* ws;
  std::vector<std::uint32_t>* updated;
};

void propagate_element(simt::ThreadCtx& ctx, CcState& st, std::uint32_t id,
                       std::uint32_t offset, std::uint32_t step) {
  const std::uint32_t c = ctx.load(*st.label, id, kNodeLabel);
  const std::uint32_t begin = ctx.load(st.graph->row_offsets, id, kRowOffsets);
  const std::uint32_t end = ctx.load(st.graph->row_offsets, id + 1, kRowOffsets);
  ctx.compute(4, kNodeOps);
  for (std::uint32_t e = begin + offset; e < end; e += step) {
    const std::uint32_t t = ctx.load(st.graph->col_indices, e, kEdgeLoad);
    ctx.compute(2, kEdgeOps);
    const std::uint32_t old = ctx.atomic_min(*st.label, t, c, kPropagate);
    if (c < old) {
      if (ctx.load(st.ws->update(), t, kUpdateLoad) == 0) {
        ctx.store(st.ws->update(), t, std::uint8_t{1}, kUpdateStore);
        st.updated->push_back(t);
      }
    }
  }
}

// Keeps the default LaunchPolicy::serial: label propagation branches on the
// atomic_min return value and push_backs into the host-side updated list.
void launch_cc(simt::Device& dev, CcState& st, Variant v,
               std::span<const std::uint32_t> frontier, std::uint32_t thread_tpb,
               std::uint32_t block_tpb) {
  const std::uint32_t n = st.graph->num_nodes;
  simt::Predicate pred;
  pred.base_addr = st.ws->bitmap().base_addr();
  pred.stride = 1;
  pred.ops = 2;

  switch (v.mapping) {
    case Mapping::thread:
      if (v.repr == WorksetRepr::bitmap) {
        const auto grid = simt::GridSpec::over_threads(n, thread_tpb, frontier, pred);
        simt::launch(dev, "cc.compute.T_BM", grid, [&](simt::ThreadCtx& ctx) {
          const auto id = static_cast<std::uint32_t>(ctx.global_id());
          ctx.store(st.ws->bitmap(), id, std::uint8_t{0}, kBitmapClear);
          propagate_element(ctx, st, id, 0, 1);
        });
      } else {
        const auto grid = simt::GridSpec::dense(frontier.size(), thread_tpb);
        simt::launch(dev, "cc.compute.T_QU", grid, [&](simt::ThreadCtx& ctx) {
          const std::uint32_t id =
              ctx.load(st.ws->queue(), ctx.global_id(), kQueueLoad);
          propagate_element(ctx, st, id, 0, 1);
        });
      }
      break;
    case Mapping::block:
      if (v.repr == WorksetRepr::bitmap) {
        const auto grid = simt::GridSpec::over_blocks(n, block_tpb, frontier, pred);
        simt::launch(dev, "cc.compute.B_BM", grid, [&](simt::ThreadCtx& ctx) {
          const auto id = static_cast<std::uint32_t>(ctx.block_idx());
          if (ctx.thread_in_block() == 0) {
            ctx.store(st.ws->bitmap(), id, std::uint8_t{0}, kBitmapClear);
          }
          propagate_element(ctx, st, id, ctx.thread_in_block(), ctx.block_dim());
        });
      } else {
        const auto grid =
            simt::GridSpec::dense(frontier.size() * block_tpb, block_tpb);
        simt::launch(dev, "cc.compute.B_QU", grid, [&](simt::ThreadCtx& ctx) {
          const std::uint32_t id =
              ctx.load(st.ws->queue(), ctx.block_idx(), kQueueLoad);
          propagate_element(ctx, st, id, ctx.thread_in_block(), ctx.block_dim());
        });
      }
      break;
    case Mapping::warp:
      if (v.repr == WorksetRepr::bitmap) {
        const auto grid =
            simt::GridSpec::over_blocks(n, simt::kWarpSize, frontier, pred);
        simt::launch(dev, "cc.compute.W_BM", grid, [&](simt::ThreadCtx& ctx) {
          const auto id = static_cast<std::uint32_t>(ctx.block_idx());
          if (ctx.thread_in_block() == 0) {
            ctx.store(st.ws->bitmap(), id, std::uint8_t{0}, kBitmapClear);
          }
          propagate_element(ctx, st, id, ctx.thread_in_block(), simt::kWarpSize);
        });
      } else {
        const auto grid =
            simt::GridSpec::dense(frontier.size() * simt::kWarpSize, thread_tpb);
        simt::launch(dev, "cc.compute.W_QU", grid, [&](simt::ThreadCtx& ctx) {
          const auto wid =
              static_cast<std::uint32_t>(ctx.global_id() / simt::kWarpSize);
          const std::uint32_t id = ctx.load(st.ws->queue(), wid, kQueueLoad);
          propagate_element(
              ctx, st, id,
              static_cast<std::uint32_t>(ctx.global_id() % simt::kWarpSize),
              simt::kWarpSize);
        });
      }
      break;
  }
}

// Pull (gather) label propagation, atomicMin-on-self style: CC requires a
// symmetric graph, so the in-neighbor (CSC) view *is* the resident CSR —
// the gather reads the same row_offsets/col_indices arrays and no separate
// CSC upload is needed. Each vertex folds the labels of its frontier
// neighbors into a register-local minimum and performs a single own-cell
// store if it improved; no inter-thread atomics.
void launch_cc_pull(simt::Device& dev, CcState& st, std::uint32_t thread_tpb) {
  const std::uint32_t n = st.graph->num_nodes;
  const auto grid = simt::GridSpec::dense(n, thread_tpb);
  simt::launch(dev, "cc.compute.T_PULL", grid, [&](simt::ThreadCtx& ctx) {
    const auto id = static_cast<std::uint32_t>(ctx.global_id());
    const std::uint32_t c = ctx.load(*st.label, id, kNodeLabel);
    const std::uint32_t begin = ctx.load(st.graph->row_offsets, id, kRowOffsets);
    const std::uint32_t end = ctx.load(st.graph->row_offsets, id + 1, kRowOffsets);
    ctx.compute(4, kNodeOps);
    std::uint32_t best = c;
    for (std::uint32_t e = begin; e < end; ++e) {
      const std::uint32_t u = ctx.load(st.graph->col_indices, e, kEdgeLoad);
      ctx.compute(2, kEdgeOps);
      if (ctx.load(st.ws->bitmap(), u, kPullFrontierTest) == 0) continue;
      const std::uint32_t cu = ctx.load(*st.label, u, kNodeLabel);
      if (cu < best) best = cu;
    }
    if (best < c) {
      ctx.store(*st.label, id, best, kLabelStore);
      ctx.store(st.ws->update(), id, std::uint8_t{1}, kUpdateStore);
      st.updated->push_back(id);
    }
  });
}

}  // namespace

GpuCcResult run_cc(simt::Device& dev, const graph::Csr& g,
                   const VariantSelector& selector, const EngineOptions& opts) {
  simt::StreamGuard sguard(dev, opts.stream);
  const simt::DeviceStats stats_before = dev.stats();
  const double t_begin = dev.now_us();
  DeviceGraph dg = DeviceGraph::upload(dev, g, /*with_weights=*/false);
  GpuCcResult result = run_cc(dev, dg, g, selector, opts);
  dg.release(dev);
  result.metrics.total_us = dev.now_us() - t_begin;
  result.metrics.transfer_us =
      dev.stats().transfer_time_us - stats_before.transfer_time_us;
  return result;
}

GpuCcResult run_cc(simt::Device& dev, DeviceGraph& dg, const graph::Csr& g,
                   const VariantSelector& selector, const EngineOptions& opts) {
  simt::StreamGuard sguard(dev, opts.stream);
  const simt::DeviceStats stats_before = dev.stats();
  const double t_begin = dev.now_us();

  GpuCcResult result;
  const std::uint32_t block_tpb =
      opts.block_tpb ? opts.block_tpb : derive_block_tpb(dg.avg_outdegree);

  // label[v] = v (device-side iota, charged as one uniform kernel).
  auto label = dev.alloc<std::uint32_t>(g.num_nodes, "cc.label");
  std::iota(label.host_view().begin(), label.host_view().end(), 0u);
  {
    simt::UniformThreadCost cost;
    cost.ops = 2;
    cost.mem_instrs = 1;
    cost.transactions_per_warp = simt::kWarpSize * 4 / dev.timing().segment_bytes;
    dev.account_kernel(simt::estimate_uniform_kernel(
        dev.props(), dev.timing(), "cc.init_labels", g.num_nodes, 256, cost));
  }
  Workset ws(dev, g.num_nodes);

  SelectorInput sel;
  sel.ws_size = g.num_nodes;  // every node starts active
  sel.avg_outdegree = dg.avg_outdegree;
  sel.outdeg_stddev = dg.outdeg_stddev;
  sel.num_nodes = g.num_nodes;
  sel.num_edges = dg.num_edges;
  // Every node starts in the working set, so every edge is frontier-adjacent
  // and the gather sweep has nothing extra to read (unexplored = m - fe = 0):
  // the direction controller sees a saturated frontier from iteration one and
  // starts CC in pull, flipping to push as the frontier drains.
  sel.frontier_edges = dg.num_edges;
  sel.unexplored_edges = 0;
  Variant variant = normalize_direction(selector(sel));
  variant.ordering = Ordering::unordered;

  // Initial working set = all nodes, produced by the generation kernel from
  // a fully-set update vector.
  std::vector<std::uint32_t> frontier(g.num_nodes);
  std::iota(frontier.begin(), frontier.end(), 0u);
  std::fill(ws.update().host_view().begin(), ws.update().host_view().end(),
            std::uint8_t{1});
  ws.generate(dev, variant.repr, frontier,
              opts.scan_queue_gen ? Workset::GenMethod::scan
                                  : Workset::GenMethod::atomic);

  std::vector<std::uint32_t> updated;
  CcState st{&label, &dg, &ws, &updated};

  const std::uint64_t max_iters =
      opts.max_iterations ? opts.max_iterations : 4ull * g.num_nodes + 64;

  std::uint32_t iteration = 0;
  while (!frontier.empty()) {
    ++iteration;
    AGG_CHECK_MSG(iteration <= max_iters, "CC failed to converge");
    const double t_iter = dev.now_us();

    if (variant.direction == Direction::pull) {
      launch_cc_pull(dev, st, opts.thread_tpb);
    } else {
      launch_cc(dev, st, variant, frontier, opts.thread_tpb, block_tpb);
    }
    for (const std::uint32_t v : frontier) {
      result.metrics.edges_processed += g.degree(v);
    }
    std::sort(updated.begin(), updated.end());

    if (variant.direction == Direction::pull) {
      ws.charge_changed_flag_readback(dev);
      ws.clear_frontier_bitmap(dev, frontier);
    } else if (variant.repr == WorksetRepr::queue) {
      ws.charge_queue_len_readback(dev);
    } else {
      ws.charge_changed_flag_readback(dev);
    }

    std::uint64_t next_frontier_edges = 0;
    for (const std::uint32_t v : updated) next_frontier_edges += g.degree(v);

    Variant next = variant;
    if (opts.monitor_interval > 0 && iteration % opts.monitor_interval == 0) {
      if (variant.repr == WorksetRepr::bitmap) {
        ws.charge_bitmap_count_kernel(dev);
      }
      sel.iteration = iteration;
      sel.ws_size = updated.size();
      sel.frontier_edges = next_frontier_edges;
      // The CC gather folds over the resident (symmetric) CSR: edges whose
      // endpoint is not in the frontier cost only the bitmap membership test,
      // so the extra scan volume is whatever is not frontier-adjacent.
      sel.unexplored_edges = dg.num_edges - next_frontier_edges;
      sel.direction = variant.direction;
      ++result.metrics.decisions;
      next = normalize_direction(selector(sel));
      next.ordering = Ordering::unordered;
      if (next != variant) ++result.metrics.switches;
    }

    if (!updated.empty()) {
      ws.generate(dev, next.repr, updated,
                  opts.scan_queue_gen ? Workset::GenMethod::scan
                                      : Workset::GenMethod::atomic);
    }

    record_iteration(result.metrics, "cc",
                     {iteration, frontier.size(), variant,
                      dev.now_us() - t_iter},
                     dev.now_us());
    frontier.swap(updated);
    updated.clear();
    variant = next;
  }

  result.component.resize(g.num_nodes);
  dev.memcpy_d2h(std::span<std::uint32_t>(result.component), label);
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    if (result.component[v] == v) ++result.num_components;
  }

  ws.release(dev);
  dev.free(label);
  fill_from_device_delta(result.metrics, stats_before, dev.stats(), t_begin,
                         dev.now_us());
  return result;
}

}  // namespace gg
