// Edge-parallel Bellman-Ford: the Harish & Narayanan-style baseline the
// paper cites as reference [7] and critiques ("pretty basic and ineffective
// on sparse graphs used in practice"). One thread per arc, every arc every
// round, no working set — rounds repeat until no distance improves.
//
// Included as the historical baseline so the evaluation can quantify what
// the paper's working-set framework buys over it.
#pragma once

#include <vector>

#include "gpu_graph/metrics.h"
#include "graph/csr.h"
#include "simt/device.h"

namespace gg {

struct GpuEdgeParallelResult {
  std::vector<std::uint32_t> dist;
  TraversalMetrics metrics;  // one IterationRecord per round, ws_size = m
};

GpuEdgeParallelResult run_sssp_edge_parallel(simt::Device& dev,
                                             const graph::Csr& g,
                                             graph::NodeId source);

}  // namespace gg
