// Types shared by the BFS and SSSP engines: launch configuration knobs and
// the per-iteration variant-selection hook through which both the static
// implementations (constant selector) and the adaptive runtime (decision
// maker) drive the same traversal loop (paper Fig. 8).
#pragma once

#include <cstdint>
#include <functional>

#include "gpu_graph/variant.h"
#include "simt/stream.h"

namespace graph {
struct Csr;
}

namespace gg {

struct EngineOptions {
  // Stream context (simt/stream.h): every kernel, transfer and host phase of
  // the traversal is issued on this stream, so traversals on different
  // streams of one device interleave on the modeled clock. 0 = the default
  // serialized stream (legacy single-query behavior).
  simt::StreamId stream = 0;
  // Paper Sec. VII.A: "the best results can be achieved with 192 threads per
  // block" for thread-based mapping.
  std::uint32_t thread_tpb = 192;
  // Paper Sec. VII.A: for block-based mapping "the optimal number of threads
  // per block is the multiple of 32 closest to the average node outdegree".
  // 0 = derive from the graph.
  std::uint32_t block_tpb = 0;
  // Working-set monitoring interval R (paper Sec. VI.E (ii)): the decision
  // point (selector call + monitoring kernel when in bitmap mode) runs every
  // R iterations. 0 = never (static runs: no monitoring overhead at all).
  std::uint32_t monitor_interval = 0;
  // Queue generation method (paper Sec. V.C): false = the basic atomic
  // insertion of [33]; true = the scan-based compaction of Merrill et al.,
  // which the paper cites as an orthogonal optimization.
  bool scan_queue_gen = false;
  // Safety valve; 0 = derive (a generous multiple of the node count).
  std::uint64_t max_iterations = 0;

  // Hybrid CPU/GPU execution (extension; cf. Hong et al. [13], which the
  // paper contrasts itself against): frontiers smaller than
  // `hybrid_cpu_threshold` are processed serially on the host, skipping the
  // kernel-launch + readback overhead that dominates small iterations.
  // Switching direction pays a full state-array transfer. 0 = disabled.
  std::uint64_t hybrid_cpu_threshold = 0;
  double hybrid_cpu_clock_ghz = 3.4;
  double hybrid_cpu_cycles_per_edge = 14.0;
  double hybrid_cpu_cycles_per_node = 8.0;

  // Host CSC (graph::build_csc) for pull iterations. When null and a pull
  // iteration occurs, the engine builds the transpose itself (one-shot
  // paths); the API/Session layers pass the Graph's cached CSC so repeated
  // queries share one build. The device copy is uploaded lazily into the
  // DeviceGraph on the first pull iteration and stays resident (Session
  // pinning keeps it across queries). Not owned; must outlive the call.
  const graph::Csr* csc = nullptr;
};

struct SelectorInput {
  std::uint32_t iteration = 0;
  // Working-set size as known to the runtime (exact at decision points,
  // stale in between — the sampling trade-off of Sec. VI.E).
  std::uint64_t ws_size = 0;
  double avg_outdegree = 0;   // whole-graph average (Sec. VI.E (i))
  double outdeg_stddev = 0;   // whole-graph spread (skew-aware mapping rule)
  std::uint32_t num_nodes = 0;
  // Direction-optimizing inputs (Beamer-style, fed from the same inspector
  // bookkeeping): out-edges incident to the working set, out-edges of
  // not-yet-touched vertices, total edges, and the direction the previous
  // iteration ran in (push on the initial selection).
  std::uint64_t frontier_edges = 0;
  std::uint64_t unexplored_edges = 0;
  std::uint64_t num_edges = 0;
  Direction direction = Direction::push;
};

using VariantSelector = std::function<Variant(const SelectorInput&)>;

inline VariantSelector fixed_variant(Variant v) {
  return [v](const SelectorInput&) { return v; };
}

// Canonicalizes a selected variant for execution. Direction::adaptive never
// reaches a kernel (the runtime controller resolves it; a fixed "_DO"
// variant without the controller degrades to push), and pull iterations run
// the canonical gather shape: a dense thread-per-vertex kernel over a
// bitmap frontier, so mapping/repr are forced to thread/bitmap — the repr
// force is also what guarantees the *previous* generate() materialized the
// frontier in the bitmap the gather tests membership against.
inline Variant normalize_direction(Variant v) {
  if (v.direction == Direction::adaptive) v.direction = Direction::push;
  if (v.direction == Direction::pull) {
    v.mapping = Mapping::thread;
    v.repr = WorksetRepr::bitmap;
  }
  return v;
}

// Paper Sec. VII.A block size rule.
std::uint32_t derive_block_tpb(double avg_outdegree);

}  // namespace gg
