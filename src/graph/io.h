// Graph serialization.
//
// Three formats:
//  * DIMACS shortest-path (.gr)  — the 9th DIMACS challenge format the paper
//    draws its road network from ("p sp <n> <m>" header, "a <u> <v> <w>"
//    arcs, 1-based ids);
//  * SNAP edge list (.txt)       — "# comment" lines then "<u>\t<v>" pairs,
//    0-based ids, as distributed by the Stanford Large Network Collection;
//  * binary (.agg)               — fast load/store of CSR + weights.
//
// Users with the original paper datasets can load them directly; the bench
// harness falls back to the synthetic stand-ins otherwise.
#pragma once

#include <string>

#include "graph/csr.h"

namespace graph {

Csr read_dimacs(const std::string& path);
void write_dimacs(const Csr& g, const std::string& path);

// `num_nodes` of the result is 1 + max id seen.
Csr read_snap_edgelist(const std::string& path);
void write_snap_edgelist(const Csr& g, const std::string& path);

Csr read_binary(const std::string& path);
void write_binary(const Csr& g, const std::string& path);

}  // namespace graph
