// Graph serialization.
//
// Three formats:
//  * DIMACS shortest-path (.gr)  — the 9th DIMACS challenge format the paper
//    draws its road network from ("p sp <n> <m>" header, "a <u> <v> <w>"
//    arcs, 1-based ids);
//  * SNAP edge list (.txt)       — "# comment" lines then "<u>\t<v>" pairs,
//    0-based ids, as distributed by the Stanford Large Network Collection;
//  * binary (.agg)               — fast load/store of CSR + weights.
//
// Users with the original paper datasets can load them directly; the bench
// harness falls back to the synthetic stand-ins otherwise.
#pragma once

#include <string>

#include "graph/csr.h"

namespace graph {

// Typed loading failures. The try_read_* functions never abort on bad
// input: every malformed, truncated or overflowing file maps to one of
// these kinds with a descriptive message.
enum class IoErrorKind : std::uint8_t {
  none = 0,
  open_failed,     // file missing / unreadable
  bad_header,      // malformed or missing header line / record
  bad_record,      // malformed arc/edge line or out-of-range endpoint
  count_mismatch,  // header promised a different number of records
  bad_magic,       // binary file does not start with the format magic
  truncated,       // binary file shorter than its header implies
  overflow,        // counts/ids exceed the format's 32-bit limits
  invalid_graph,   // structurally invalid CSR after decode
};
const char* io_error_kind_name(IoErrorKind k);

struct IoError {
  IoErrorKind kind = IoErrorKind::none;
  std::string message;  // detail; empty iff kind == none

  bool ok() const { return kind == IoErrorKind::none; }
};

struct IoResult {
  Csr graph;
  IoError error;

  bool ok() const { return error.ok(); }
};

// Non-aborting readers for untrusted input (fuzzing, user-supplied files).
IoResult try_read_dimacs(const std::string& path);
IoResult try_read_snap_edgelist(const std::string& path);
IoResult try_read_binary(const std::string& path);

// Aborting wrappers (AGG_CHECK with the IoError message) for trusted paths:
// bench harnesses and tests that treat a bad file as a fatal setup error.
Csr read_dimacs(const std::string& path);
void write_dimacs(const Csr& g, const std::string& path);

// `num_nodes` of the result is 1 + max id seen.
Csr read_snap_edgelist(const std::string& path);
void write_snap_edgelist(const Csr& g, const std::string& path);

Csr read_binary(const std::string& path);
void write_binary(const Csr& g, const std::string& path);

}  // namespace graph
