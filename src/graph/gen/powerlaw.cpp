#include <algorithm>
#include <vector>

#include "common/prng.h"
#include "graph/gen/generators.h"

namespace graph::gen {
namespace {

double mixture_mean(const PowerLawParams& p, double tail_alpha) {
  const double head_mean = (p.head_min + p.head_max) / 2.0;
  const agg::PowerLawSampler tail(tail_alpha, p.tail_min, p.tail_max);
  return p.head_fraction * head_mean + (1.0 - p.head_fraction) * tail.mean();
}

}  // namespace

double solve_tail_alpha(const PowerLawParams& params, double target_mean) {
  // mixture_mean is strictly decreasing in alpha; bisect on [lo, hi].
  double lo = -1.0;  // negative alpha biases towards tail_max
  double hi = 4.0;
  AGG_CHECK_MSG(mixture_mean(params, lo) >= target_mean &&
                    mixture_mean(params, hi) <= target_mean,
                "target mean outside achievable range");
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (mixture_mean(params, mid) > target_mean) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

Csr powerlaw_configuration(const PowerLawParams& p) {
  AGG_CHECK(p.num_nodes >= 16);
  AGG_CHECK(p.head_fraction >= 0.0 && p.head_fraction <= 1.0);
  AGG_CHECK(p.head_min <= p.head_max);
  AGG_CHECK(p.tail_min >= 1 && p.tail_min <= p.tail_max);

  agg::Prng rng(p.seed);
  const agg::PowerLawSampler tail(p.tail_alpha, p.tail_min, p.tail_max);

  std::vector<std::uint32_t> degree(p.num_nodes);
  for (auto& d : degree) {
    d = rng.bernoulli(p.head_fraction)
            ? static_cast<std::uint32_t>(rng.uniform_int(p.head_min, p.head_max))
            : tail.sample(rng);
  }
  // Plant hubs at deterministic positions so the dataset's maximum outdegree
  // matches the published value. Capped at n/8 so scaled-down instances keep
  // their average outdegree (at the paper's full sizes the cap is inactive).
  const std::uint32_t hub_degree = std::min(p.tail_max, p.num_nodes / 8);
  for (std::uint32_t h = 0; h < p.planted_hubs && p.num_nodes > 0; ++h) {
    const std::uint32_t at =
        static_cast<std::uint32_t>((static_cast<std::uint64_t>(h) * 2654435761u) % p.num_nodes);
    degree[at] = hub_degree;
  }

  Csr g;
  g.num_nodes = p.num_nodes;
  g.row_offsets.resize(static_cast<std::size_t>(p.num_nodes) + 1);
  g.row_offsets[0] = 0;
  for (std::uint32_t v = 0; v < p.num_nodes; ++v) {
    g.row_offsets[v + 1] = g.row_offsets[v] + degree[v];
  }
  g.col_indices.resize(g.row_offsets.back());
  for (std::uint32_t v = 0; v < p.num_nodes; ++v) {
    for (std::uint32_t k = 0; k < degree[v]; ++k) {
      std::uint32_t t;
      do {
        t = static_cast<std::uint32_t>(rng.bounded(p.num_nodes));
      } while (t == v);
      g.col_indices[g.row_offsets[v] + k] = t;
    }
  }
  g.validate();
  return g;
}

}  // namespace graph::gen
