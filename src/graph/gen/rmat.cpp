#include <vector>

#include "common/prng.h"
#include "graph/gen/generators.h"

namespace graph::gen {

Csr rmat(const RmatParams& p) {
  AGG_CHECK(p.scale >= 4 && p.scale <= 30);
  AGG_CHECK(p.a > 0 && p.b >= 0 && p.c >= 0 && p.a + p.b + p.c < 1.0);
  agg::Prng rng(p.seed);

  const std::uint32_t n = 1u << p.scale;
  const std::uint64_t m = static_cast<std::uint64_t>(n) * p.edges_per_node;
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint32_t u = 0, v = 0;
    for (std::uint32_t bit = 0; bit < p.scale; ++bit) {
      const double r = rng.uniform01();
      // Quadrant selection with light noise, as in the Graph500 reference.
      if (r < p.a) {
        // top-left: no bits set
      } else if (r < p.a + p.b) {
        v |= 1u << bit;
      } else if (r < p.a + p.b + p.c) {
        u |= 1u << bit;
      } else {
        u |= 1u << bit;
        v |= 1u << bit;
      }
    }
    if (u == v) {
      v = (v + 1) % n;  // avoid self loops deterministically
    }
    edges.push_back({u, v});
  }
  Csr g = csr_from_edges(n, edges);
  g.validate();
  return g;
}

}  // namespace graph::gen
