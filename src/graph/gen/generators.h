// Synthetic graph generators.
//
// These produce the topology classes the paper evaluates on (Sec. III.A,
// Table 1, Fig. 1): a sparse large-diameter road network, a regular
// co-purchase network, and heavy-tailed scale-free networks. R-MAT and
// Erdos-Renyi are included for tests and as general library utilities.
// Every generator is deterministic in its seed.
#pragma once

#include <cstdint>

#include "graph/csr.h"

namespace graph::gen {

// ---- road network (CO-road stand-in) --------------------------------------
//
// A grid of intersections; each grid road is subdivided into a chain of
// degree-2 nodes (the paper: "most towns are usually directly connected to a
// handful of other towns"); a small fraction of intersections become hubs
// with extra links ("few bigger cities ... have as many as 7-8 intercity
// roads"). Undirected: both arcs are stored. Large diameter by construction.
struct RoadParams {
  std::uint32_t grid_width = 281;
  std::uint32_t grid_height = 282;
  double edge_drop = 0.10;       // fraction of grid roads removed
  std::uint32_t chain_min = 1;   // intermediate nodes per road
  std::uint32_t chain_max = 4;
  double hub_fraction = 0.002;   // intersections promoted to hubs
  std::uint32_t max_degree = 8;  // paper: CO-road max outdegree is 8
  std::uint64_t seed = 1;
};
Csr road_network(const RoadParams& params);
// Chooses grid dimensions so the result has approximately `target_nodes`.
Csr road_network(std::uint32_t target_nodes, std::uint64_t seed);

// ---- regular network (Amazon stand-in) ------------------------------------
//
// Paper Fig. 1: "70% of the nodes have 10 outgoing edges, and the remaining
// nodes have an outdegree uniformly distributed between 1 and 9." Directed;
// targets uniform at random (no self loops).
Csr regular_copurchase(std::uint32_t num_nodes, std::uint64_t seed);

// ---- heavy-tailed configuration model (CiteSeer / p2p / Google / SNS) -----
//
// A two-population outdegree mixture: `head_fraction` of the nodes draw a
// uniform degree in [head_min, head_max] (the "about 90% of the nodes have
// less than 2 outgoing edges" mass), the rest draw from a bounded power law
// k^-tail_alpha on [tail_min, tail_max]. `planted_hubs` nodes are forced to
// tail_max so the dataset's reported maximum outdegree is hit exactly.
struct PowerLawParams {
  std::uint32_t num_nodes = 0;
  double head_fraction = 0.9;
  std::uint32_t head_min = 1;
  std::uint32_t head_max = 2;
  double tail_alpha = 1.0;
  std::uint32_t tail_min = 3;
  std::uint32_t tail_max = 1000;
  std::uint32_t planted_hubs = 2;
  std::uint64_t seed = 1;
};
Csr powerlaw_configuration(const PowerLawParams& params);

// Solves tail_alpha so the *overall* mean outdegree of the mixture matches
// `target_mean` (bisection over the tail sampler's analytic mean).
double solve_tail_alpha(const PowerLawParams& params, double target_mean);

// ---- R-MAT (Graph500-style) ------------------------------------------------
struct RmatParams {
  std::uint32_t scale = 16;          // 2^scale nodes
  std::uint32_t edges_per_node = 16;
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  std::uint64_t seed = 1;
};
Csr rmat(const RmatParams& params);

// ---- uniform random --------------------------------------------------------
// G(n, m): m directed edges with independent uniform endpoints.
Csr erdos_renyi(std::uint32_t num_nodes, std::uint64_t num_edges, std::uint64_t seed);

// ---- small world (Watts-Strogatz) -------------------------------------------
// Ring lattice of even degree k with each forward edge rewired with
// probability `rewire_prob`; symmetric (both arcs stored). Interpolates
// between the road-like regime (p = 0: large diameter) and the scale-free
// regime's short diameters (p -> 1), useful for studying how the adaptive
// thresholds respond to diameter alone.
Csr watts_strogatz(std::uint32_t num_nodes, std::uint32_t k, double rewire_prob,
                   std::uint64_t seed);

}  // namespace graph::gen
