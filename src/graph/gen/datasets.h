// The six evaluation datasets of the paper (Table 1), as synthetic stand-ins
// parameterized to match the published node/edge counts and outdegree
// statistics. See DESIGN.md for the paper-value reconciliation.
//
// `scale` proportionally shrinks the node count (degree distributions are
// preserved) so tests and smoke runs can use the same topology classes at a
// fraction of the size; scale = 1.0 reproduces the paper's sizes.
#pragma once

#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/graph_stats.h"

namespace graph::gen {

enum class DatasetId { co_road, citeseer, p2p, amazon, google, sns };

struct Dataset {
  DatasetId id;
  std::string name;
  Csr csr;             // weighted (uniform integer weights for SSSP)
  NodeId source;       // deterministic traversal source
  GraphStats stats;
};

const char* dataset_name(DatasetId id);
std::vector<DatasetId> all_datasets();

Dataset make_dataset(DatasetId id, double scale = 1.0);

// Convenience for tests: a small instance (~`approx_nodes` nodes) of the
// dataset's topology class.
Dataset make_dataset_scaled_to(DatasetId id, std::uint32_t approx_nodes);

}  // namespace graph::gen
