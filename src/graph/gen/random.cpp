#include <vector>

#include "common/prng.h"
#include "graph/gen/generators.h"

namespace graph::gen {

Csr erdos_renyi(std::uint32_t num_nodes, std::uint64_t num_edges, std::uint64_t seed) {
  AGG_CHECK(num_nodes >= 2);
  agg::Prng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (std::uint64_t e = 0; e < num_edges; ++e) {
    const auto u = static_cast<std::uint32_t>(rng.bounded(num_nodes));
    std::uint32_t v;
    do {
      v = static_cast<std::uint32_t>(rng.bounded(num_nodes));
    } while (v == u);
    edges.push_back({u, v});
  }
  Csr g = csr_from_edges(num_nodes, edges);
  g.validate();
  return g;
}

}  // namespace graph::gen
