#include <algorithm>
#include <cmath>
#include <vector>

#include "common/prng.h"
#include "graph/gen/generators.h"

namespace graph::gen {
namespace {

// Undirected edge accumulator with a degree cap.
class UndirectedEdges {
 public:
  explicit UndirectedEdges(std::uint32_t max_degree) : max_degree_(max_degree) {}

  std::uint32_t add_node() {
    degree_.push_back(0);
    return static_cast<std::uint32_t>(degree_.size() - 1);
  }

  bool try_connect(std::uint32_t u, std::uint32_t v) {
    if (u == v) return false;
    if (degree_[u] >= max_degree_ || degree_[v] >= max_degree_) return false;
    edges_.push_back({u, v});
    edges_.push_back({v, u});
    ++degree_[u];
    ++degree_[v];
    return true;
  }

  std::uint32_t degree(std::uint32_t v) const { return degree_[v]; }
  std::uint32_t num_nodes() const { return static_cast<std::uint32_t>(degree_.size()); }
  const std::vector<Edge>& edges() const { return edges_; }

 private:
  std::uint32_t max_degree_;
  std::vector<std::uint32_t> degree_;
  std::vector<Edge> edges_;
};

}  // namespace

Csr road_network(const RoadParams& params) {
  AGG_CHECK(params.grid_width >= 2 && params.grid_height >= 2);
  AGG_CHECK(params.chain_min >= 1 && params.chain_min <= params.chain_max);
  AGG_CHECK(params.edge_drop >= 0.0 && params.edge_drop < 1.0);

  agg::Prng rng(params.seed);
  const std::uint32_t w = params.grid_width;
  const std::uint32_t h = params.grid_height;
  UndirectedEdges acc(params.max_degree);
  for (std::uint32_t i = 0; i < w * h; ++i) acc.add_node();

  auto intersection = [&](std::uint32_t x, std::uint32_t y) { return y * w + x; };

  // Connects two intersections through a chain of degree-2 towns.
  auto lay_road = [&](std::uint32_t u, std::uint32_t v) {
    const auto len =
        static_cast<std::uint32_t>(rng.uniform_int(params.chain_min, params.chain_max));
    std::uint32_t prev = u;
    for (std::uint32_t i = 0; i < len; ++i) {
      const std::uint32_t town = acc.add_node();
      acc.try_connect(prev, town);
      prev = town;
    }
    acc.try_connect(prev, v);
  };

  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      if (x + 1 < w && !rng.bernoulli(params.edge_drop)) {
        lay_road(intersection(x, y), intersection(x + 1, y));
      }
      if (y + 1 < h && !rng.bernoulli(params.edge_drop)) {
        lay_road(intersection(x, y), intersection(x, y + 1));
      }
    }
  }

  // Hubs: a few cities gain direct intercity roads to *nearby* intersections
  // (towards the max degree). Keeping the extra links local preserves the
  // large-diameter character real road networks have; uniform long-range
  // links would turn the graph small-world.
  const auto num_hubs =
      static_cast<std::uint32_t>(params.hub_fraction * static_cast<double>(w) * h);
  for (std::uint32_t i = 0; i < num_hubs; ++i) {
    const auto hx = static_cast<std::uint32_t>(rng.bounded(w));
    const auto hy = static_cast<std::uint32_t>(rng.bounded(h));
    const auto extra = static_cast<std::uint32_t>(rng.uniform_int(2, 4));
    for (std::uint32_t k = 0; k < extra; ++k) {
      const auto tx = static_cast<std::uint32_t>(
          std::clamp<std::int64_t>(static_cast<std::int64_t>(hx) + rng.uniform_int(-6, 6),
                                   0, w - 1));
      const auto ty = static_cast<std::uint32_t>(
          std::clamp<std::int64_t>(static_cast<std::int64_t>(hy) + rng.uniform_int(-6, 6),
                                   0, h - 1));
      acc.try_connect(intersection(hx, hy), intersection(tx, ty));
    }
  }

  Csr g = csr_from_edges(acc.num_nodes(), acc.edges());
  g.validate();
  return g;
}

Csr road_network(std::uint32_t target_nodes, std::uint64_t seed) {
  RoadParams p;
  p.seed = seed;
  // nodes ~= W*H * (1 + 2*(1-drop)*avg_chain); solve for a square-ish grid.
  const double avg_chain = (p.chain_min + p.chain_max) / 2.0;
  const double per_cell = 1.0 + 2.0 * (1.0 - p.edge_drop) * avg_chain;
  const double cells = static_cast<double>(target_nodes) / per_cell;
  p.grid_width = std::max<std::uint32_t>(2, static_cast<std::uint32_t>(std::sqrt(cells)));
  p.grid_height = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(cells / static_cast<double>(p.grid_width)));
  return road_network(p);
}

}  // namespace graph::gen
