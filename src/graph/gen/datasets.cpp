#include "graph/gen/datasets.h"

#include <algorithm>

#include "graph/gen/generators.h"

namespace graph::gen {
namespace {

constexpr std::uint64_t kWeightSeed = 0x5e55'10b5'2013'0001ull;

struct PaperSizes {
  std::uint32_t nodes;
  double avg_outdeg;     // target average outdegree
  std::uint32_t max_outdeg;
};

// Published (Table 1) sizes, reconciled where the OCR is ambiguous.
PaperSizes sizes_for(DatasetId id) {
  switch (id) {
    case DatasetId::co_road:  return {435'666, 2.4, 8};
    case DatasetId::citeseer: return {434'102, 36.9, 1'188};
    case DatasetId::p2p:      return {36'692, 5.0, 103};
    case DatasetId::amazon:   return {396'830, 8.5, 10};
    case DatasetId::google:   return {739'454, 6.9, 456};
    case DatasetId::sns:      return {4'308'452, 8.0, 20'293};
  }
  AGG_CHECK(false);
  return {};
}

Csr make_csr(DatasetId id, std::uint32_t nodes) {
  const PaperSizes sizes = sizes_for(id);
  switch (id) {
    case DatasetId::co_road:
      return road_network(nodes, /*seed=*/0xc0'0a'd0 + 1);
    case DatasetId::amazon:
      return regular_copurchase(nodes, /*seed=*/0xa3a204);
    case DatasetId::citeseer: {
      PowerLawParams p;
      p.num_nodes = nodes;
      p.head_fraction = 0.90;
      p.head_min = 1;
      p.head_max = 2;
      p.tail_min = 3;
      p.tail_max = sizes.max_outdeg;
      p.planted_hubs = 2;
      p.seed = 0xc17e5ee8;
      p.tail_alpha = solve_tail_alpha(p, sizes.avg_outdeg);
      return powerlaw_configuration(p);
    }
    case DatasetId::p2p: {
      PowerLawParams p;
      p.num_nodes = nodes;
      p.head_fraction = 0.50;
      p.head_min = 0;
      p.head_max = 4;
      p.tail_min = 5;
      p.tail_max = sizes.max_outdeg;
      p.planted_hubs = 2;
      p.seed = 0x9292;
      p.tail_alpha = solve_tail_alpha(p, sizes.avg_outdeg);
      return powerlaw_configuration(p);
    }
    case DatasetId::google: {
      PowerLawParams p;
      p.num_nodes = nodes;
      p.head_fraction = 0.60;
      p.head_min = 0;
      p.head_max = 4;
      p.tail_min = 5;
      p.tail_max = sizes.max_outdeg;
      p.planted_hubs = 2;
      p.seed = 0x60061e;
      p.tail_alpha = solve_tail_alpha(p, sizes.avg_outdeg);
      return powerlaw_configuration(p);
    }
    case DatasetId::sns: {
      PowerLawParams p;
      p.num_nodes = nodes;
      p.head_fraction = 0.60;
      p.head_min = 0;
      p.head_max = 5;
      p.tail_min = 6;
      p.tail_max = sizes.max_outdeg;
      p.planted_hubs = 3;
      p.seed = 0x50c1a1;
      p.tail_alpha = solve_tail_alpha(p, sizes.avg_outdeg);
      return powerlaw_configuration(p);
    }
  }
  AGG_CHECK(false);
  return {};
}

Dataset make_with_nodes(DatasetId id, std::uint32_t nodes) {
  Dataset d;
  d.id = id;
  d.name = dataset_name(id);
  d.csr = make_csr(id, nodes);
  // DIMACS road networks carry travel-time weights with a wide integer range;
  // we use the same range on every dataset for comparability. The range also
  // controls how many distinct distance values (= iterations) the ordered
  // SSSP must process.
  assign_uniform_weights(d.csr, 1, 1000,
                         kWeightSeed ^ static_cast<std::uint64_t>(id));
  d.source = suggest_source(d.csr);
  d.stats = GraphStats::compute(d.csr);
  return d;
}

}  // namespace

const char* dataset_name(DatasetId id) {
  switch (id) {
    case DatasetId::co_road:  return "CO-road";
    case DatasetId::citeseer: return "CiteSeer";
    case DatasetId::p2p:      return "p2p";
    case DatasetId::amazon:   return "Amazon";
    case DatasetId::google:   return "Google";
    case DatasetId::sns:      return "SNS";
  }
  return "?";
}

std::vector<DatasetId> all_datasets() {
  return {DatasetId::co_road, DatasetId::citeseer, DatasetId::p2p,
          DatasetId::amazon,  DatasetId::google,   DatasetId::sns};
}

Dataset make_dataset(DatasetId id, double scale) {
  AGG_CHECK(scale > 0.0 && scale <= 1.0);
  const auto nodes = std::max<std::uint32_t>(
      64, static_cast<std::uint32_t>(sizes_for(id).nodes * scale));
  return make_with_nodes(id, nodes);
}

Dataset make_dataset_scaled_to(DatasetId id, std::uint32_t approx_nodes) {
  return make_with_nodes(id, std::max<std::uint32_t>(64, approx_nodes));
}

}  // namespace graph::gen
