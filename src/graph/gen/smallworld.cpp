#include <vector>

#include "common/prng.h"
#include "graph/gen/generators.h"

namespace graph::gen {

Csr watts_strogatz(std::uint32_t num_nodes, std::uint32_t k, double rewire_prob,
                   std::uint64_t seed) {
  AGG_CHECK(num_nodes >= 8);
  AGG_CHECK(k >= 2 && k % 2 == 0 && k < num_nodes);
  AGG_CHECK(rewire_prob >= 0.0 && rewire_prob <= 1.0);
  agg::Prng rng(seed);

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_nodes) * k);
  for (std::uint32_t v = 0; v < num_nodes; ++v) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      std::uint32_t t = (v + j) % num_nodes;
      if (rng.bernoulli(rewire_prob)) {
        // Rewire to a uniform random endpoint (no self loop).
        do {
          t = static_cast<std::uint32_t>(rng.bounded(num_nodes));
        } while (t == v);
      }
      edges.push_back({v, t});
      edges.push_back({t, v});
    }
  }
  Csr g = csr_from_edges(num_nodes, edges);
  g.validate();
  return g;
}

}  // namespace graph::gen
