#include <numeric>
#include <vector>

#include "common/prng.h"
#include "graph/gen/generators.h"

namespace graph::gen {

Csr regular_copurchase(std::uint32_t num_nodes, std::uint64_t seed) {
  AGG_CHECK(num_nodes >= 16);
  agg::Prng rng(seed);

  std::vector<std::uint32_t> degree(num_nodes);
  for (auto& d : degree) {
    d = rng.bernoulli(0.70) ? 10u
                            : static_cast<std::uint32_t>(rng.uniform_int(1, 9));
  }

  Csr g;
  g.num_nodes = num_nodes;
  g.row_offsets.resize(static_cast<std::size_t>(num_nodes) + 1);
  g.row_offsets[0] = 0;
  for (std::uint32_t v = 0; v < num_nodes; ++v) {
    g.row_offsets[v + 1] = g.row_offsets[v] + degree[v];
  }
  g.col_indices.resize(g.row_offsets.back());
  for (std::uint32_t v = 0; v < num_nodes; ++v) {
    for (std::uint32_t k = 0; k < degree[v]; ++k) {
      std::uint32_t t;
      do {
        t = static_cast<std::uint32_t>(rng.bounded(num_nodes));
      } while (t == v);
      g.col_indices[g.row_offsets[v] + k] = t;
    }
  }
  g.validate();
  return g;
}

}  // namespace graph::gen
