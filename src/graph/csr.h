// Compressed sparse row graph representation (paper Sec. V.A, Fig. 7).
//
// The node vector (`row_offsets`, n+1 entries) indexes into the edge vector
// (`col_indices`, m entries); SSSP additionally carries a parallel `weights`
// array. This is the exact layout the engines upload to the device.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace graph {

using NodeId = std::uint32_t;

inline constexpr std::uint32_t kInfinity = 0xffffffffu;

struct Csr {
  std::uint32_t num_nodes = 0;
  std::vector<std::uint32_t> row_offsets;  // num_nodes + 1
  std::vector<NodeId> col_indices;         // num_edges
  std::vector<std::uint32_t> weights;      // empty, or num_edges

  std::uint64_t num_edges() const { return col_indices.size(); }
  bool has_weights() const { return !weights.empty(); }

  std::uint32_t degree(NodeId v) const {
    AGG_DCHECK(v < num_nodes);
    return row_offsets[v + 1] - row_offsets[v];
  }

  std::span<const NodeId> neighbors(NodeId v) const {
    AGG_DCHECK(v < num_nodes);
    return {col_indices.data() + row_offsets[v], degree(v)};
  }

  std::span<const std::uint32_t> edge_weights(NodeId v) const {
    AGG_DCHECK(v < num_nodes && has_weights());
    return {weights.data() + row_offsets[v], degree(v)};
  }

  // Structural invariants: offsets monotone and bounded, targets in range,
  // weights either absent or parallel to the edge vector. Aborts on
  // violation; used by tests and after deserialization.
  void validate() const;

  // Non-aborting variant for untrusted input (the typed IO path): empty
  // string when the invariants hold, else the first violation.
  std::string validate_error() const;

  // Estimated bytes of the in-memory representation.
  std::uint64_t memory_bytes() const;
};

// Builds a CSR from an (unsorted) edge list via counting sort; preserves the
// relative order of edges with equal source (stable). `weights` may be empty
// or parallel to `edges`.
struct Edge {
  NodeId src;
  NodeId dst;
};
Csr csr_from_edges(std::uint32_t num_nodes, std::span<const Edge> edges,
                   std::span<const std::uint32_t> weights = {});

// Returns the reverse (transposed) graph; weights follow their edges.
Csr transpose(const Csr& g);

// Adds the reverse of every edge (symmetrizes a directed graph). Used by the
// undirected datasets (road, co-citation), which store both arcs.
Csr symmetrize(const Csr& g);

// Assigns deterministic pseudo-random integer weights in [lo, hi] to every
// edge (SSSP workloads).
void assign_uniform_weights(Csr& g, std::uint32_t lo, std::uint32_t hi,
                            std::uint64_t seed);

// Like assign_uniform_weights, but the weight is a deterministic function of
// the unordered endpoint pair, so both arcs of an undirected edge carry the
// same weight (required by MST; parallel edges share a weight).
void assign_symmetric_uniform_weights(Csr& g, std::uint32_t lo, std::uint32_t hi,
                                      std::uint64_t seed);

// A deterministic, well-connected traversal source: the node with the
// largest outdegree (smallest id breaking ties).
NodeId suggest_source(const Csr& g);

}  // namespace graph
