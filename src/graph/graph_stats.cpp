#include "graph/graph_stats.h"

#include <vector>

#include "common/table.h"

namespace graph {

GraphStats GraphStats::compute(const Csr& g) {
  GraphStats s;
  s.num_nodes = g.num_nodes;
  s.num_edges = g.num_edges();
  agg::RunningStats deg;
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    const std::uint32_t d = g.degree(v);
    deg.add(d);
    s.outdeg_hist.add(d);
  }
  s.outdeg_min = static_cast<std::uint32_t>(deg.min());
  s.outdeg_max = static_cast<std::uint32_t>(deg.max());
  s.outdeg_avg = deg.mean();
  s.outdeg_stddev = deg.stddev();
  return s;
}

std::string GraphStats::summary() const {
  return "n=" + agg::Table::fmt_int(num_nodes) + " m=" + agg::Table::fmt_int(num_edges) +
         " outdeg " + std::to_string(outdeg_min) + "/" + std::to_string(outdeg_max) +
         "/" + agg::Table::fmt(outdeg_avg, 2);
}

ReachProfile compute_reach(const Csr& g, NodeId source) {
  AGG_CHECK(source < g.num_nodes);
  ReachProfile p;
  std::vector<std::uint32_t> level(g.num_nodes, kInfinity);
  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next;
  level[source] = 0;
  p.reachable_nodes = 1;
  while (!frontier.empty()) {
    ++p.levels;
    next.clear();
    for (const NodeId v : frontier) {
      p.reachable_edges += g.degree(v);
      for (const NodeId t : g.neighbors(v)) {
        if (level[t] == kInfinity) {
          level[t] = level[v] + 1;
          ++p.reachable_nodes;
          next.push_back(t);
        }
      }
    }
    frontier.swap(next);
  }
  --p.levels;  // the last iteration discovered nothing
  return p;
}

}  // namespace graph
