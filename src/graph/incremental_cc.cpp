#include "graph/incremental_cc.h"

#include <algorithm>
#include <numeric>

namespace graph {

IncrementalCc::IncrementalCc(const Csr& g)
    : parent_(g.num_nodes), rank_(g.num_nodes, 0) {
  std::iota(parent_.begin(), parent_.end(), 0u);
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    for (const NodeId t : g.neighbors(v)) unite(v, t);
  }
  normalize();
}

std::uint32_t IncrementalCc::find(std::uint32_t v) {
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];  // path halving
    v = parent_[v];
  }
  return v;
}

void IncrementalCc::unite(std::uint32_t a, std::uint32_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
}

void IncrementalCc::apply(const Csr& g_new, const EdgeDelta& d) {
  AGG_CHECK_MSG(g_new.num_nodes == parent_.size(),
                "IncrementalCc: node count changed");
  last_nodes_rescanned_ = 0;
  last_edges_rescanned_ = 0;

  if (!d.deletes.empty()) {
    // Old components touched by a deleted arc. Both endpoints of a deleted
    // arc carried the same old label (the arc existed), but take both for
    // robustness.
    std::vector<std::uint32_t> affected;
    affected.reserve(2 * d.deletes.size());
    for (const Edge& e : d.deletes) {
      affected.push_back(labels_[e.src]);
      affected.push_back(labels_[e.dst]);
    }
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());

    const auto is_affected = [&](std::uint32_t v) {
      return std::binary_search(affected.begin(), affected.end(), labels_[v]);
    };
    // Reset the affected region, then rebuild it from the post-delta rows
    // of its members. Arcs into the region from outside are necessarily
    // batch inserts (old arcs never cross the old-component boundary) and
    // are unioned below with the rest of the inserts.
    for (std::uint32_t v = 0; v < g_new.num_nodes; ++v) {
      if (!is_affected(v)) continue;
      parent_[v] = v;
      rank_[v] = 0;
    }
    for (std::uint32_t v = 0; v < g_new.num_nodes; ++v) {
      if (!is_affected(v)) continue;
      ++last_nodes_rescanned_;
      for (const NodeId t : g_new.neighbors(v)) {
        unite(v, t);
        ++last_edges_rescanned_;
      }
    }
  }
  for (const Edge& e : d.inserts) unite(e.src, e.dst);
  last_edges_rescanned_ += d.inserts.size();
  normalize();
}

void IncrementalCc::normalize() {
  const std::uint32_t n = static_cast<std::uint32_t>(parent_.size());
  labels_.assign(n, kInfinity);
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t root = find(v);
    labels_[root] = std::min(labels_[root], v);
  }
  num_components_ = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    labels_[v] = labels_[find(v)];
    if (labels_[v] == v) ++num_components_;
  }
}

}  // namespace graph
