// Incremental graph construction for users of the public API.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace graph {

class GraphBuilder {
 public:
  // num_nodes may grow implicitly as edges reference higher ids.
  explicit GraphBuilder(std::uint32_t num_nodes = 0) : num_nodes_(num_nodes) {}

  GraphBuilder& add_edge(NodeId src, NodeId dst);
  GraphBuilder& add_edge(NodeId src, NodeId dst, std::uint32_t weight);
  // Adds both (src,dst) and (dst,src).
  GraphBuilder& add_undirected(NodeId src, NodeId dst, std::uint32_t weight = 0);

  std::uint32_t num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return edges_.size(); }

  // Builds the CSR. If any edge carried a weight, all edges must have, and
  // the CSR is weighted. The builder may be reused afterwards.
  Csr build() const;

 private:
  std::uint32_t num_nodes_;
  std::vector<Edge> edges_;
  std::vector<std::uint32_t> weights_;
};

}  // namespace graph
