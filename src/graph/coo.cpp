#include "graph/coo.h"

namespace graph {

Coo Coo::from_csr(const Csr& g) {
  Coo c;
  c.num_nodes = g.num_nodes;
  c.src.reserve(g.num_edges());
  c.dst.reserve(g.num_edges());
  if (g.has_weights()) c.weights.reserve(g.num_edges());
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      c.src.push_back(v);
      c.dst.push_back(nbrs[i]);
      if (g.has_weights()) c.weights.push_back(g.weights[g.row_offsets[v] + i]);
    }
  }
  return c;
}

Csr Coo::to_csr() const {
  std::vector<Edge> edges(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) edges[i] = {src[i], dst[i]};
  return csr_from_edges(num_nodes, edges, weights);
}

void Coo::validate() const {
  AGG_CHECK(src.size() == dst.size());
  AGG_CHECK(weights.empty() || weights.size() == src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    AGG_CHECK(src[i] < num_nodes && dst[i] < num_nodes);
  }
}

}  // namespace graph
