// Static topology characterization — the "graph inspector" input of the
// adaptive runtime (paper Sec. VI.A) and the source of Table 1 / Figure 1.
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.h"
#include "graph/csr.h"

namespace graph {

struct GraphStats {
  std::uint32_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t outdeg_min = 0;
  std::uint32_t outdeg_max = 0;
  double outdeg_avg = 0;
  double outdeg_stddev = 0;
  agg::DegreeHistogram outdeg_hist{64};

  static GraphStats compute(const Csr& g);

  // One-line summary ("n=435,666 m=1,057,066 deg 1/8/2.43").
  std::string summary() const;
};

// BFS-level profile from `source`: number of levels (eccentricity within the
// reachable component) and reachable node/edge counts. Used by dataset tests
// and by the CPU cost model.
struct ReachProfile {
  std::uint32_t levels = 0;
  std::uint32_t reachable_nodes = 0;
  std::uint64_t reachable_edges = 0;
};
ReachProfile compute_reach(const Csr& g, NodeId source);

}  // namespace graph
