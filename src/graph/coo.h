// Coordinate (edge-list) representation: the layout edge-parallel kernels
// consume (one thread per arc). Convertible to/from CSR; conversions keep
// edge order (CSR order = arcs sorted by source).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace graph {

struct Coo {
  std::uint32_t num_nodes = 0;
  std::vector<NodeId> src;
  std::vector<NodeId> dst;
  std::vector<std::uint32_t> weights;  // empty or parallel to src/dst

  std::uint64_t num_edges() const { return src.size(); }
  bool has_weights() const { return !weights.empty(); }

  static Coo from_csr(const Csr& g);
  Csr to_csr() const;
  void validate() const;
};

}  // namespace graph
