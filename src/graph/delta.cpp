#include "graph/delta.h"

#include <algorithm>
#include <utility>

namespace graph {

std::string delta_error(const Csr& g, const EdgeDelta& d) {
  if (!d.insert_weights.empty() &&
      d.insert_weights.size() != d.inserts.size()) {
    return "insert_weights not parallel to inserts";
  }
  if (g.has_weights() && !d.inserts.empty() && d.insert_weights.empty()) {
    return "weighted graph requires insert_weights";
  }
  if (!g.has_weights() && !d.insert_weights.empty()) {
    return "insert_weights on unweighted graph";
  }
  for (const Edge& e : d.inserts) {
    if (e.src >= g.num_nodes || e.dst >= g.num_nodes) {
      return "insert endpoint out of range";
    }
  }
  for (const Edge& e : d.deletes) {
    if (e.src >= g.num_nodes || e.dst >= g.num_nodes) {
      return "delete endpoint out of range";
    }
  }
  // Every delete must match a distinct arc: per (src,dst) pair the delete
  // count may not exceed the arc multiplicity in g.
  std::vector<std::pair<NodeId, NodeId>> want;
  want.reserve(d.deletes.size());
  for (const Edge& e : d.deletes) want.emplace_back(e.src, e.dst);
  std::sort(want.begin(), want.end());
  for (std::size_t i = 0; i < want.size();) {
    std::size_t j = i;
    while (j < want.size() && want[j] == want[i]) ++j;
    std::uint64_t have = 0;
    for (const NodeId t : g.neighbors(want[i].first)) {
      have += (t == want[i].second) ? 1 : 0;
    }
    if (have < j - i) return "delete of missing arc";
    i = j;
  }
  return "";
}

Csr apply_delta(const Csr& g, const EdgeDelta& d) {
  const std::string err = delta_error(g, d);
  AGG_CHECK_MSG(err.empty(), err.c_str());

  const std::uint32_t n = g.num_nodes;
  const bool weighted = g.has_weights();

  // Mark deleted positions: each delete claims the first unclaimed arc of
  // its row with a matching target.
  std::vector<std::uint8_t> dead(g.col_indices.size(), 0);
  for (const Edge& e : d.deletes) {
    const std::uint32_t lo = g.row_offsets[e.src];
    const std::uint32_t hi = g.row_offsets[e.src + 1];
    for (std::uint32_t p = lo; p < hi; ++p) {
      if (!dead[p] && g.col_indices[p] == e.dst) {
        dead[p] = 1;
        break;
      }
    }
  }

  std::vector<std::uint32_t> ins_count(n, 0);
  for (const Edge& e : d.inserts) ++ins_count[e.src];

  Csr out;
  out.num_nodes = n;
  out.row_offsets.assign(n + 1, 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    std::uint32_t deg = ins_count[u];
    for (std::uint32_t p = g.row_offsets[u]; p < g.row_offsets[u + 1]; ++p) {
      deg += dead[p] ? 0 : 1;
    }
    out.row_offsets[u + 1] = out.row_offsets[u] + deg;
  }
  out.col_indices.resize(out.row_offsets[n]);
  if (weighted) out.weights.resize(out.row_offsets[n]);

  // Survivors first (original relative order), inserts appended per row in
  // delta order.
  std::vector<std::uint32_t> cursor(out.row_offsets.begin(),
                                    out.row_offsets.end() - 1);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t p = g.row_offsets[u]; p < g.row_offsets[u + 1]; ++p) {
      if (dead[p]) continue;
      out.col_indices[cursor[u]] = g.col_indices[p];
      if (weighted) out.weights[cursor[u]] = g.weights[p];
      ++cursor[u];
    }
  }
  for (std::size_t i = 0; i < d.inserts.size(); ++i) {
    const Edge& e = d.inserts[i];
    out.col_indices[cursor[e.src]] = e.dst;
    if (weighted) out.weights[cursor[e.src]] = d.insert_weights[i];
    ++cursor[e.src];
  }
  return out;
}

std::vector<NodeId> delta_touched_nodes(const EdgeDelta& d) {
  std::vector<NodeId> touched;
  touched.reserve(2 * (d.inserts.size() + d.deletes.size()));
  for (const Edge& e : d.inserts) {
    touched.push_back(e.src);
    touched.push_back(e.dst);
  }
  for (const Edge& e : d.deletes) {
    touched.push_back(e.src);
    touched.push_back(e.dst);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

}  // namespace graph
