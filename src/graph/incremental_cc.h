// Incremental connected components over a mutating arc set, in the spirit
// of the static+incremental connectivity design space of Hong et al.
// (PAPERS.md): a persistent union-find absorbs edge inserts as plain
// unions, while a batch containing deletes re-unions only the affected
// region — the members of the old components touched by a deleted arc.
//
// Labels are weak-connectivity components normalized exactly like
// cpu::connected_components (smallest member id per component), so the
// incremental state is byte-identical to a from-scratch run at every
// step: normalization is a pure function of the partition, and the
// affected-region argument below shows the partition itself is exact.
//
// Why resetting only affected nodes is sound:
//  - every pre-delta arc joins two nodes of the same old weak component,
//    so "old component is affected" is closed under pre-delta arcs;
//  - union-find parent chains never leave a component, so unaffected
//    nodes' chains survive the reset untouched;
//  - every post-delta arc with an affected endpoint is either an old arc
//    out of an affected node (rescanned) or a batch insert (re-unioned),
//    so no connectivity is missed.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/delta.h"

namespace graph {

class IncrementalCc {
 public:
  IncrementalCc() = default;
  // Builds the initial state from g (one full union-find pass).
  explicit IncrementalCc(const Csr& g);

  // Applies `d`, where `g_new` is the post-delta CSR (callers run
  // apply_delta first). Insert-only batches are pure unions; batches with
  // deletes reset and rescan the affected region only.
  void apply(const Csr& g_new, const EdgeDelta& d);

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(parent_.size());
  }
  // Smallest-member-id label per node, byte-identical to
  // cpu::connected_components(g).component on the current graph.
  const std::vector<std::uint32_t>& labels() const { return labels_; }
  std::uint32_t num_components() const { return num_components_; }

  // Work done by the last apply(), for tests and benches: nodes whose
  // union-find state was rebuilt and arcs rescanned while doing so.
  std::uint64_t last_nodes_rescanned() const { return last_nodes_rescanned_; }
  std::uint64_t last_edges_rescanned() const { return last_edges_rescanned_; }

 private:
  std::uint32_t find(std::uint32_t v);
  void unite(std::uint32_t a, std::uint32_t b);
  void normalize();

  std::vector<std::uint32_t> parent_;
  std::vector<std::uint8_t> rank_;
  std::vector<std::uint32_t> labels_;
  std::uint32_t num_components_ = 0;
  std::uint64_t last_nodes_rescanned_ = 0;
  std::uint64_t last_edges_rescanned_ = 0;
};

}  // namespace graph
