#include "graph/builder.h"

#include <algorithm>

namespace graph {

GraphBuilder& GraphBuilder::add_edge(NodeId src, NodeId dst) {
  AGG_CHECK_MSG(weights_.empty(), "mixing weighted and unweighted edges");
  num_nodes_ = std::max(num_nodes_, std::max(src, dst) + 1);
  edges_.push_back({src, dst});
  return *this;
}

GraphBuilder& GraphBuilder::add_edge(NodeId src, NodeId dst, std::uint32_t weight) {
  AGG_CHECK_MSG(weights_.size() == edges_.size(),
                "mixing weighted and unweighted edges");
  num_nodes_ = std::max(num_nodes_, std::max(src, dst) + 1);
  edges_.push_back({src, dst});
  weights_.push_back(weight);
  return *this;
}

GraphBuilder& GraphBuilder::add_undirected(NodeId src, NodeId dst, std::uint32_t weight) {
  if (weights_.empty() && !edges_.empty() && weight != 0) {
    AGG_CHECK_MSG(false, "mixing weighted and unweighted edges");
  }
  if (weight != 0 || !weights_.empty()) {
    add_edge(src, dst, weight);
    add_edge(dst, src, weight);
  } else {
    add_edge(src, dst);
    add_edge(dst, src);
  }
  return *this;
}

Csr GraphBuilder::build() const {
  return csr_from_edges(num_nodes_, edges_, weights_);
}

}  // namespace graph
