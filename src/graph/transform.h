// Graph transformations: preprocessing utilities commonly applied before GPU
// traversal (relabeling, deduplication) plus structural predicates.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.h"

namespace graph {

// True iff for every arc (u,v) the reverse arc (v,u) exists (multiplicity
// counted): the precondition of connected components. Weights are NOT
// consulted — a structurally symmetric graph may still carry asymmetric
// weights; use is_weight_symmetric when the weighted view matters.
bool is_symmetric(const Csr& g);

// True iff for every arc (u,v) with weight w the reverse arc (v,u) exists
// with the SAME weight (multiplicity counted). Equals is_symmetric on
// unweighted graphs. This is the predicate that decides whether a weighted
// CSR may alias its CSC: transposing a weight-asymmetric graph permutes
// weights even when the structure is symmetric (PR 6 follow-up).
bool is_weight_symmetric(const Csr& g);

struct RelabeledGraph {
  Csr csr;
  // new_id[old] = position of the old node in the new numbering.
  std::vector<NodeId> new_id;
  // old_id[new] = inverse mapping.
  std::vector<NodeId> old_id;
};

// Renumbers nodes by outdegree (descending by default): a standard GPU
// preprocessing step that groups heavy nodes together, so thread-mapped
// warps see more uniform per-lane work and bitmap frontiers of hubs stay
// dense. Weights follow their edges.
RelabeledGraph relabel_by_degree(const Csr& g, bool descending = true);

// Applies an arbitrary permutation (new_id[old] = new position).
RelabeledGraph relabel(const Csr& g, std::span<const NodeId> new_id);

// The subgraph induced by `nodes` (need not be sorted; must be unique).
// Nodes are renumbered 0..k-1 in the given order; old_id maps back.
RelabeledGraph induced_subgraph(const Csr& g, std::span<const NodeId> nodes);

// Removes parallel edges; for weighted graphs the minimum weight survives
// (the only one shortest paths can use). Self loops are preserved (deduped).
Csr dedup_edges(const Csr& g);

// The CSC (compressed sparse column) view of g, materialized as the CSR of
// the transposed graph: row v lists the in-neighbors of v, weights follow
// their edges. This is what the pull (gather) traversal kernels read; for
// a symmetric graph it equals g itself, so callers holding the symmetrized
// closure can reuse it instead.
Csr build_csc(const Csr& g);

}  // namespace graph
