#include "graph/csr.h"

#include <algorithm>
#include <numeric>

#include "common/prng.h"

namespace graph {

void Csr::validate() const {
  const std::string err = validate_error();
  AGG_CHECK_MSG(err.empty(), err.c_str());
}

std::string Csr::validate_error() const {
  if (row_offsets.size() != static_cast<std::size_t>(num_nodes) + 1) {
    return "row_offsets must have num_nodes + 1 entries";
  }
  if (row_offsets.front() != 0) return "row_offsets must start at 0";
  if (row_offsets.back() != col_indices.size()) {
    return "row_offsets must end at the edge count";
  }
  for (std::uint32_t v = 0; v < num_nodes; ++v) {
    if (row_offsets[v] > row_offsets[v + 1]) return "offsets must be monotone";
  }
  for (const NodeId t : col_indices) {
    if (t >= num_nodes) return "edge target out of range";
  }
  if (!weights.empty() && weights.size() != col_indices.size()) {
    return "weights must be absent or parallel to the edge vector";
  }
  return {};
}

std::uint64_t Csr::memory_bytes() const {
  return row_offsets.size() * sizeof(std::uint32_t) +
         col_indices.size() * sizeof(NodeId) + weights.size() * sizeof(std::uint32_t);
}

Csr csr_from_edges(std::uint32_t num_nodes, std::span<const Edge> edges,
                   std::span<const std::uint32_t> weights) {
  AGG_CHECK(weights.empty() || weights.size() == edges.size());
  Csr g;
  g.num_nodes = num_nodes;
  g.row_offsets.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const Edge& e : edges) {
    AGG_CHECK(e.src < num_nodes && e.dst < num_nodes);
    ++g.row_offsets[e.src + 1];
  }
  std::partial_sum(g.row_offsets.begin(), g.row_offsets.end(), g.row_offsets.begin());
  g.col_indices.resize(edges.size());
  if (!weights.empty()) g.weights.resize(edges.size());

  std::vector<std::uint32_t> cursor(g.row_offsets.begin(), g.row_offsets.end() - 1);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const std::uint32_t pos = cursor[edges[i].src]++;
    g.col_indices[pos] = edges[i].dst;
    if (!weights.empty()) g.weights[pos] = weights[i];
  }
  return g;
}

Csr transpose(const Csr& g) {
  Csr t;
  t.num_nodes = g.num_nodes;
  t.row_offsets.assign(static_cast<std::size_t>(g.num_nodes) + 1, 0);
  for (const NodeId dst : g.col_indices) ++t.row_offsets[dst + 1];
  std::partial_sum(t.row_offsets.begin(), t.row_offsets.end(), t.row_offsets.begin());
  t.col_indices.resize(g.col_indices.size());
  if (g.has_weights()) t.weights.resize(g.weights.size());

  std::vector<std::uint32_t> cursor(t.row_offsets.begin(), t.row_offsets.end() - 1);
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const std::uint32_t pos = cursor[nbrs[i]]++;
      t.col_indices[pos] = v;
      if (g.has_weights()) t.weights[pos] = g.weights[g.row_offsets[v] + i];
    }
  }
  return t;
}

Csr symmetrize(const Csr& g) {
  std::vector<Edge> edges;
  edges.reserve(g.num_edges() * 2);
  std::vector<std::uint32_t> w;
  if (g.has_weights()) w.reserve(g.num_edges() * 2);
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      edges.push_back({v, nbrs[i]});
      edges.push_back({nbrs[i], v});
      if (g.has_weights()) {
        const std::uint32_t wi = g.weights[g.row_offsets[v] + i];
        w.push_back(wi);
        w.push_back(wi);
      }
    }
  }
  return csr_from_edges(g.num_nodes, edges, w);
}

void assign_uniform_weights(Csr& g, std::uint32_t lo, std::uint32_t hi,
                            std::uint64_t seed) {
  AGG_CHECK(lo >= 1 && lo <= hi);  // zero weights would make SSSP degenerate
  agg::Prng rng(seed);
  g.weights.resize(g.col_indices.size());
  for (auto& w : g.weights) {
    w = static_cast<std::uint32_t>(rng.uniform_int(lo, hi));
  }
}

void assign_symmetric_uniform_weights(Csr& g, std::uint32_t lo, std::uint32_t hi,
                                      std::uint64_t seed) {
  AGG_CHECK(lo >= 1 && lo <= hi);
  g.weights.resize(g.col_indices.size());
  const std::uint64_t range = static_cast<std::uint64_t>(hi) - lo + 1;
  for (std::uint32_t u = 0; u < g.num_nodes; ++u) {
    const auto nbrs = g.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const std::uint32_t a = std::min(u, nbrs[i]);
      const std::uint32_t b = std::max(u, nbrs[i]);
      std::uint64_t h = seed ^ (static_cast<std::uint64_t>(a) << 32 | b);
      h = agg::splitmix64(h);
      g.weights[g.row_offsets[u] + i] = lo + static_cast<std::uint32_t>(h % range);
    }
  }
}

NodeId suggest_source(const Csr& g) {
  AGG_CHECK(g.num_nodes > 0);
  NodeId best = 0;
  std::uint32_t best_deg = g.degree(0);
  for (NodeId v = 1; v < g.num_nodes; ++v) {
    const std::uint32_t d = g.degree(v);
    if (d > best_deg) {
      best = v;
      best_deg = d;
    }
  }
  return best;
}

}  // namespace graph
