#include "graph/transform.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <tuple>

namespace graph {

bool is_symmetric(const Csr& g) {
  // Count-compare arc multisets in both directions via sorted (min,max) keys
  // is wrong for direction; instead compare per-pair directed multiplicities.
  std::map<std::pair<NodeId, NodeId>, std::int64_t> balance;
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    for (const NodeId t : g.neighbors(v)) {
      if (v == t) continue;  // self loops are their own reverse
      const auto key = std::minmax(v, t);
      balance[{key.first, key.second}] += v < t ? 1 : -1;
    }
  }
  for (const auto& [key, count] : balance) {
    if (count != 0) return false;
  }
  return true;
}

bool is_weight_symmetric(const Csr& g) {
  if (!g.has_weights()) return is_symmetric(g);
  // Same balance trick, but the key carries the weight: (u,v,w) must be
  // matched by (v,u,w), multiplicity counted. Self loops pair with
  // themselves.
  std::map<std::tuple<NodeId, NodeId, std::uint32_t>, std::int64_t> balance;
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId t = nbrs[i];
      if (v == t) continue;
      const std::uint32_t w = g.weights[g.row_offsets[v] + i];
      const auto key = std::minmax(v, t);
      balance[{key.first, key.second, w}] += v < t ? 1 : -1;
    }
  }
  for (const auto& [key, count] : balance) {
    if (count != 0) return false;
  }
  return true;
}

RelabeledGraph relabel(const Csr& g, std::span<const NodeId> new_id) {
  AGG_CHECK(new_id.size() == g.num_nodes);
  RelabeledGraph out;
  out.new_id.assign(new_id.begin(), new_id.end());
  out.old_id.assign(g.num_nodes, 0);
  for (std::uint32_t old = 0; old < g.num_nodes; ++old) {
    AGG_CHECK(new_id[old] < g.num_nodes);
    out.old_id[new_id[old]] = old;
  }

  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  std::vector<std::uint32_t> weights;
  if (g.has_weights()) weights.reserve(g.num_edges());
  for (std::uint32_t nv = 0; nv < g.num_nodes; ++nv) {
    const std::uint32_t old = out.old_id[nv];
    const auto nbrs = g.neighbors(old);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      edges.push_back({nv, new_id[nbrs[i]]});
      if (g.has_weights()) weights.push_back(g.weights[g.row_offsets[old] + i]);
    }
  }
  out.csr = csr_from_edges(g.num_nodes, edges, weights);
  return out;
}

RelabeledGraph relabel_by_degree(const Csr& g, bool descending) {
  std::vector<NodeId> order(g.num_nodes);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return descending ? g.degree(a) > g.degree(b) : g.degree(a) < g.degree(b);
  });
  std::vector<NodeId> new_id(g.num_nodes);
  for (std::uint32_t pos = 0; pos < g.num_nodes; ++pos) new_id[order[pos]] = pos;
  return relabel(g, new_id);
}

RelabeledGraph induced_subgraph(const Csr& g, std::span<const NodeId> nodes) {
  RelabeledGraph out;
  out.old_id.assign(nodes.begin(), nodes.end());
  std::vector<NodeId> new_id(g.num_nodes, kInfinity);
  for (std::uint32_t pos = 0; pos < nodes.size(); ++pos) {
    AGG_CHECK(nodes[pos] < g.num_nodes);
    AGG_CHECK_MSG(new_id[nodes[pos]] == kInfinity, "duplicate node in selection");
    new_id[nodes[pos]] = pos;
  }
  out.new_id = new_id;

  std::vector<Edge> edges;
  std::vector<std::uint32_t> weights;
  for (std::uint32_t pos = 0; pos < nodes.size(); ++pos) {
    const NodeId old = nodes[pos];
    const auto nbrs = g.neighbors(old);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (new_id[nbrs[i]] == kInfinity) continue;
      edges.push_back({pos, new_id[nbrs[i]]});
      if (g.has_weights()) weights.push_back(g.weights[g.row_offsets[old] + i]);
    }
  }
  out.csr = csr_from_edges(static_cast<std::uint32_t>(nodes.size()), edges, weights);
  return out;
}

Csr dedup_edges(const Csr& g) {
  std::vector<Edge> edges;
  std::vector<std::uint32_t> weights;
  std::map<NodeId, std::uint32_t> best;  // per source: target -> min weight
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    best.clear();
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const std::uint32_t w =
          g.has_weights() ? g.weights[g.row_offsets[v] + i] : 1;
      const auto [it, inserted] = best.emplace(nbrs[i], w);
      if (!inserted) it->second = std::min(it->second, w);
    }
    for (const auto& [t, w] : best) {
      edges.push_back({v, t});
      if (g.has_weights()) weights.push_back(w);
    }
  }
  return csr_from_edges(g.num_nodes, edges,
                        g.has_weights() ? std::span<const std::uint32_t>(weights)
                                        : std::span<const std::uint32_t>{});
}

Csr build_csc(const Csr& g) { return transpose(g); }

}  // namespace graph
