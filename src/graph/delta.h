// Batched graph mutations (ROADMAP "Dynamic graphs").
//
// An EdgeDelta is an ordered batch of arc inserts and deletes applied
// atomically to a Csr. apply_delta defines the canonical post-mutation
// layout that every consumer (host rebuild, incremental device patch,
// incremental CC) must reproduce byte-for-byte:
//   - per source row: surviving old arcs keep their original relative
//     order, then that row's inserts are appended in delta order;
//   - each delete removes the first not-yet-deleted arc of its row with
//     a matching target (multiplicity counted; weights are not consulted
//     when matching, mirroring is_symmetric's structural semantics).
//
// Deltas never add or remove nodes: the node set is fixed at build time
// (serving-layer placement and device buffers are sized by num_nodes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.h"

namespace graph {

struct EdgeDelta {
  std::vector<Edge> inserts;
  // Empty (unweighted target) or parallel to `inserts`.
  std::vector<std::uint32_t> insert_weights;
  std::vector<Edge> deletes;

  bool empty() const { return inserts.empty() && deletes.empty(); }
  std::uint64_t num_ops() const { return inserts.size() + deletes.size(); }
};

// Empty string when `d` can be applied to `g`: all endpoints in range,
// insert weights parallel iff g is weighted, and every delete matches a
// distinct arc of g. Non-aborting, for untrusted (service) input.
std::string delta_error(const Csr& g, const EdgeDelta& d);

// Applies `d` to `g` and returns the canonical post-mutation CSR.
// Aborts if delta_error(g, d) is non-empty.
Csr apply_delta(const Csr& g, const EdgeDelta& d);

// The endpoints touched by `d` (sources and targets of both inserts and
// deletes), deduplicated and sorted: the seed set for affected-region
// recomputation and delta-aware cache invalidation.
std::vector<NodeId> delta_touched_nodes(const EdgeDelta& d);

}  // namespace graph
