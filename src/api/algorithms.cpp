#include "api/algorithms.h"

#include "api/session.h"
#include "cpu/bfs_serial.h"
#include "cpu/cc_serial.h"
#include "cpu/mst_serial.h"
#include "cpu/pagerank_serial.h"
#include "cpu/sssp_serial.h"
#include "gpu_graph/bfs_engine.h"
#include "gpu_graph/cc_engine.h"
#include "gpu_graph/mst_engine.h"
#include "gpu_graph/pagerank_engine.h"
#include "gpu_graph/sssp_engine.h"

namespace adaptive {

namespace detail {
// Defined in session.cpp; shared symmetrize-policy resolution.
const graph::Csr& resolve_symmetric_csr(const Graph& g, const Policy& policy);

ErrorCode fault_code(const simt::DeviceFault& f) {
  if (f.permanent()) return ErrorCode::device_lost;
  switch (f.kind()) {
    case simt::FaultKind::alloc:
      return ErrorCode::device_oom;
    case simt::FaultKind::transfer:
      return ErrorCode::transfer_failed;
    case simt::FaultKind::kernel:
      return ErrorCode::kernel_fault;
  }
  return ErrorCode::internal;
}

}  // namespace detail

ParsedPolicy parse_policy(const std::string& name) {
  ParsedPolicy out;
  if (name == "adaptive") {
    out.policy = Policy::adapt();
    return out;
  }
  if (name == "cpu") {
    out.policy = Policy::cpu();
    return out;
  }
  if (const std::optional<gg::Variant> v = gg::try_parse_variant(name)) {
    if (v->direction == gg::Direction::adaptive) {
      // A fixed variant cannot host the direction controller (its selector
      // never re-decides); steer the caller to the adaptive policy.
      out.status = Status::error;
      out.code = ErrorCode::invalid_argument;
      out.error = "policy '" + name +
                  "': the _DO (direction-optimizing) suffix requires the "
                  "adaptive policy; use --policy=adaptive --direction=adaptive";
      return out;
    }
    out.policy = Policy::fixed(*v);
    return out;
  }
  out.status = Status::error;
  out.code = ErrorCode::invalid_argument;
  out.error = "unknown policy '" + name +
              "': expected adaptive, cpu, or a variant name like U_T_BM "
              "(optionally suffixed _PULL)";
  return out;
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::none:
      return "none";
    case ErrorCode::device_oom:
      return "device_oom";
    case ErrorCode::transfer_failed:
      return "transfer_failed";
    case ErrorCode::kernel_fault:
      return "kernel_fault";
    case ErrorCode::device_lost:
      return "device_lost";
    case ErrorCode::deadline_exceeded:
      return "deadline_exceeded";
    case ErrorCode::queue_full:
      return "queue_full";
    case ErrorCode::invalid_argument:
      return "invalid_argument";
    case ErrorCode::io_error:
      return "io_error";
    case ErrorCode::internal:
      return "internal";
  }
  return "?";
}

const char* error_code_message(ErrorCode code) {
  switch (code) {
    case ErrorCode::none:
      return "no error";
    case ErrorCode::device_oom:
      return "simulated device memory exhausted";
    case ErrorCode::transfer_failed:
      return "host<->device transfer failed";
    case ErrorCode::kernel_fault:
      return "kernel launch failed";
    case ErrorCode::device_lost:
      return "device permanently lost";
    case ErrorCode::deadline_exceeded:
      return "modeled deadline exceeded";
    case ErrorCode::queue_full:
      return "admission queue full";
    case ErrorCode::invalid_argument:
      return "invalid argument";
    case ErrorCode::io_error:
      return "graph io failure";
    case ErrorCode::internal:
      return "internal error";
  }
  return "?";
}

BfsResult bfs(simt::Device& dev, const Graph& g, NodeId source,
              const Policy& policy) {
  AGG_CHECK(source < g.num_nodes());
  return detail::run_guarded<BfsResult>(dev, [&] {
  BfsResult out;
  switch (policy.mode) {
    case Policy::Mode::cpu_serial: {
      cpu::BfsResult r = cpu::bfs(g.csr(), source);
      out.level = std::move(r.level);
      out.cpu_wall_ms = r.wall_ms;
      return out;
    }
    case Policy::Mode::fixed_variant: {
      gg::EngineOptions eo = policy.options.engine;
      if (policy.wants_pull()) eo.csc = &g.csc();
      gg::GpuBfsResult r = gg::run_bfs(dev, g.csr(), source, policy.variant, eo);
      out.level = std::move(r.level);
      out.metrics = std::move(r.metrics);
      return out;
    }
    case Policy::Mode::adaptive: {
      rt::AdaptiveOptions ao = policy.options;
      if (policy.wants_pull()) ao.engine.csc = &g.csc();
      gg::GpuBfsResult r = rt::adaptive_bfs(dev, g.csr(), source, ao);
      out.level = std::move(r.level);
      out.metrics = std::move(r.metrics);
      return out;
    }
  }
  AGG_CHECK(false);
  return out;
  });
}

SsspResult sssp(simt::Device& dev, const Graph& g, NodeId source,
                const Policy& policy) {
  AGG_CHECK(source < g.num_nodes());
  AGG_CHECK_MSG(g.is_weighted(), "call set_uniform_weights() or load weights first");
  return detail::run_guarded<SsspResult>(dev, [&] {
  SsspResult out;
  switch (policy.mode) {
    case Policy::Mode::cpu_serial: {
      cpu::SsspResult r = cpu::dijkstra(g.csr(), source);
      out.dist = std::move(r.dist);
      out.cpu_wall_ms = r.wall_ms;
      return out;
    }
    case Policy::Mode::fixed_variant: {
      gg::EngineOptions eo = policy.options.engine;
      if (policy.wants_pull()) eo.csc = &g.csc();
      gg::GpuSsspResult r = gg::run_sssp(dev, g.csr(), source, policy.variant, eo);
      out.dist = std::move(r.dist);
      out.metrics = std::move(r.metrics);
      return out;
    }
    case Policy::Mode::adaptive: {
      rt::AdaptiveOptions ao = policy.options;
      if (policy.wants_pull()) ao.engine.csc = &g.csc();
      gg::GpuSsspResult r = rt::adaptive_sssp(dev, g.csr(), source, ao);
      out.dist = std::move(r.dist);
      out.metrics = std::move(r.metrics);
      return out;
    }
  }
  AGG_CHECK(false);
  return out;
  });
}

CcResult cc(simt::Device& dev, const Graph& g, const Policy& policy) {
  const graph::Csr& csr = detail::resolve_symmetric_csr(g, policy);
  return detail::run_guarded<CcResult>(dev, [&] {
  CcResult out;
  switch (policy.mode) {
    case Policy::Mode::cpu_serial: {
      cpu::CcResult r = cpu::connected_components(csr);
      out.component = std::move(r.component);
      out.num_components = r.num_components;
      out.cpu_wall_ms = r.wall_ms;
      return out;
    }
    case Policy::Mode::fixed_variant: {
      gg::GpuCcResult r = gg::run_cc(dev, csr, policy.variant,
                                     policy.options.engine);
      out.component = std::move(r.component);
      out.num_components = r.num_components;
      out.metrics = std::move(r.metrics);
      return out;
    }
    case Policy::Mode::adaptive: {
      gg::GpuCcResult r = rt::adaptive_cc(dev, csr, policy.options);
      out.component = std::move(r.component);
      out.num_components = r.num_components;
      out.metrics = std::move(r.metrics);
      return out;
    }
  }
  AGG_CHECK(false);
  return out;
  });
}

MstResult mst(simt::Device& dev, const Graph& g, const Policy& policy) {
  AGG_CHECK_MSG(g.is_weighted(), "MST requires edge weights");
  const graph::Csr& csr = detail::resolve_symmetric_csr(g, policy);
  return detail::run_guarded<MstResult>(dev, [&] {
  MstResult out;
  switch (policy.mode) {
    case Policy::Mode::cpu_serial: {
      cpu::MstResult r = cpu::minimum_spanning_forest(csr);
      out.total_weight = r.total_weight;
      out.num_trees = r.num_trees;
      out.edges_in_forest = r.edges_in_forest;
      out.cpu_wall_ms = r.wall_ms;
      return out;
    }
    case Policy::Mode::fixed_variant: {
      gg::GpuMstResult r = gg::run_mst(dev, csr, policy.variant,
                                       policy.options.engine);
      out.total_weight = r.total_weight;
      out.num_trees = r.num_trees;
      out.edges_in_forest = r.edges_in_forest;
      out.metrics = std::move(r.metrics);
      return out;
    }
    case Policy::Mode::adaptive: {
      gg::GpuMstResult r = rt::adaptive_mst(dev, csr, policy.options);
      out.total_weight = r.total_weight;
      out.num_trees = r.num_trees;
      out.edges_in_forest = r.edges_in_forest;
      out.metrics = std::move(r.metrics);
      return out;
    }
  }
  AGG_CHECK(false);
  return out;
  });
}

PageRankResult pagerank(simt::Device& dev, const Graph& g, double damping,
                        const Policy& policy) {
  return detail::run_guarded<PageRankResult>(dev, [&] {
  PageRankResult out;
  switch (policy.mode) {
    case Policy::Mode::cpu_serial: {
      cpu::PageRankOptions po;
      po.damping = damping;
      cpu::PageRankResult r = cpu::pagerank(g.csr(), po);
      out.rank = std::move(r.rank);
      out.cpu_wall_ms = r.wall_ms;
      return out;
    }
    case Policy::Mode::fixed_variant: {
      gg::PageRankOptions po;
      po.damping = damping;
      po.engine = policy.options.engine;
      gg::GpuPageRankResult r = gg::run_pagerank(dev, g.csr(), policy.variant, po);
      out.rank.assign(r.rank.begin(), r.rank.end());
      out.metrics = std::move(r.metrics);
      return out;
    }
    case Policy::Mode::adaptive: {
      gg::PageRankOptions po;
      po.damping = damping;
      gg::GpuPageRankResult r =
          rt::adaptive_pagerank(dev, g.csr(), po, policy.options);
      out.rank.assign(r.rank.begin(), r.rank.end());
      out.metrics = std::move(r.metrics);
      return out;
    }
  }
  AGG_CHECK(false);
  return out;
  });
}

// Device-less convenience overloads: route through the thread's default
// Session so repeated calls share one device (api/session.h).
BfsResult bfs(const Graph& g, NodeId source, const Policy& policy) {
  return Session::default_session().bfs(g, source, policy);
}

SsspResult sssp(const Graph& g, NodeId source, const Policy& policy) {
  return Session::default_session().sssp(g, source, policy);
}

CcResult cc(const Graph& g, const Policy& policy) {
  return Session::default_session().cc(g, policy);
}

MstResult mst(const Graph& g, const Policy& policy) {
  return Session::default_session().mst(g, policy);
}

PageRankResult pagerank(const Graph& g, double damping, const Policy& policy) {
  return Session::default_session().pagerank(g, damping, policy);
}

}  // namespace adaptive
