#include "api/session.h"

#include "trace/counters.h"
#include "trace/trace_sink.h"

namespace adaptive {
namespace {

// Shared by Session and the free cc()/mst() in algorithms.cpp: resolve the
// CSR an arc-closure algorithm should run on under `policy.symmetrize`.
const graph::Csr& resolve_symmetric(const Graph& g, const Policy& policy) {
  switch (policy.symmetrize) {
    case Symmetrize::never:
      return g.csr();
    case Symmetrize::always:
      return g.symmetrized();
    case Symmetrize::auto_detect:
      return g.is_symmetric() ? g.csr() : g.symmetrized();
  }
  AGG_CHECK(false);
  return g.csr();
}

void bump(std::string_view name, double d = 1) {
  auto& reg = trace::CounterRegistry::instance();
  if (reg.enabled()) reg.counter(name).add(d);
}

void gauge_max(const char* name, double v) {
  auto& reg = trace::CounterRegistry::instance();
  if (reg.enabled()) reg.gauge(name).set_max(v);
}

}  // namespace

namespace detail {
const graph::Csr& resolve_symmetric_csr(const Graph& g, const Policy& policy) {
  return resolve_symmetric(g, policy);
}
}  // namespace detail

Session::Session(const simt::ClusterSpec& spec) : fleet_(spec) {}

Session::Session(const simt::DeviceProps& props, simt::TimingModel tm)
    : Session(simt::ClusterSpec::single(props, tm)) {}

Session::~Session() {
  for (auto& [id, reg] : regs_) {
    for (simt::DeviceIndex d = 0; d < fleet_.size(); ++d) {
      release_pin(d, reg.pins[d]);
    }
  }
}

Session::Registration* Session::find_reg(const Graph& g) {
  auto it = by_uid_.find(g.uid());
  if (it == by_uid_.end()) return nullptr;
  return &regs_.at(it->second);
}

const Session::Registration* Session::find_reg(const Graph& g) const {
  auto it = by_uid_.find(g.uid());
  if (it == by_uid_.end()) return nullptr;
  return &regs_.at(it->second);
}

const Graph& Session::graph_for(GraphId id) const {
  auto it = regs_.find(id);
  AGG_CHECK_MSG(it != regs_.end(), "unknown GraphId");
  return *it->second.g;
}

simt::DeviceIndex Session::route_device() const {
  simt::DeviceIndex best = kNoDevice;
  double best_ready = 0;
  for (simt::DeviceIndex d = 0; d < fleet_.size(); ++d) {
    if (!fleet_.device(d).healthy()) continue;
    const double ready = fleet_.device(d).stream_ready_us(0);
    if (best == kNoDevice || ready < best_ready) {
      best = d;
      best_ready = ready;
    }
  }
  return best;
}

void Session::release_pin(simt::DeviceIndex d, Pin& pin) {
  simt::Device& dev = fleet_.device(d);
  if (pin.resident) {
    pin.dg.release(dev);
    pin.resident = false;
  }
  if (pin.sym_dg) {
    pin.sym_dg->release(dev);
    pin.sym_dg.reset();
  }
}

Session::Pin& Session::ensure_fresh(Registration& reg, simt::DeviceIndex d,
                                    bool with_weights) {
  Pin& pin = reg.pins[d];
  const Graph& g = *reg.g;
  if (!pin.resident || pin.version != g.version() ||
      (with_weights && !pin.with_weights)) {
    // Stale upload (graph mutated since registration), evicted pin, or
    // weights appeared: refresh transparently, charged to the current query.
    simt::Device& dev = fleet_.device(d);
    if (pin.resident) {
      pin.dg.release(dev);
      pin.resident = false;
    }
    if (pin.sym_dg) {
      // The closure of a mutated graph is stale too; drop it so cc()
      // re-derives on demand.
      pin.sym_dg->release(dev);
      pin.sym_dg.reset();
    }
    pin.dg = gg::DeviceGraph::upload(dev, g.csr(),
                                     with_weights || g.is_weighted());
    pin.with_weights = with_weights || g.is_weighted();
    pin.version = g.version();
    pin.resident = true;
  }
  return pin;
}

gg::DeviceGraph& Session::ensure_sym(Registration& reg, simt::DeviceIndex d,
                                     const graph::Csr& target) {
  Pin& pin = reg.pins[d];
  const Graph& g = *reg.g;
  if (pin.sym_dg && pin.sym_version == g.version()) return *pin.sym_dg;
  simt::Device& dev = fleet_.device(d);
  if (pin.sym_dg) {
    pin.sym_dg->release(dev);
    pin.sym_dg.reset();
  }
  pin.sym_dg = gg::DeviceGraph::upload(dev, target, /*with_weights=*/false);
  pin.sym_version = g.version();
  return *pin.sym_dg;
}

GraphId Session::register_graph(const Graph& g) {
  if (Registration* reg = find_reg(g)) {
    // Idempotent: refresh every device's replica and return the existing id.
    for (simt::DeviceIndex d = 0; d < fleet_.size(); ++d) {
      if (fleet_.device(d).healthy()) ensure_fresh(*reg, d, g.is_weighted());
    }
    return by_uid_.at(g.uid());
  }
  Registration reg;
  reg.g = &g;
  reg.uid = g.uid();
  reg.pins.resize(fleet_.size());
  for (simt::DeviceIndex d = 0; d < fleet_.size(); ++d) {
    Pin& pin = reg.pins[d];
    if (!fleet_.device(d).healthy()) {
      // A dead device takes no replica; queries route around it.
      pin.resident = false;
      continue;
    }
    pin.dg = gg::DeviceGraph::upload(fleet_.device(d), g.csr(),
                                     g.is_weighted());
    pin.with_weights = g.is_weighted();
    pin.version = g.version();
  }
  const GraphId id = next_graph_id_++;
  by_uid_[g.uid()] = id;
  regs_.emplace(id, std::move(reg));
  return id;
}

GraphId Session::register_graph(Graph& g) {
  const GraphId id = register_graph(static_cast<const Graph&>(g));
  regs_.at(id).mutable_g = &g;
  return id;
}

void Session::mutate_graph(Graph& g, const graph::EdgeDelta& delta) {
  auto it = by_uid_.find(g.uid());
  AGG_CHECK_MSG(it != by_uid_.end(), "mutate_graph: graph not registered");
  mutate_graph(it->second, delta);
}

void Session::mutate_graph(GraphId id, const graph::EdgeDelta& delta) {
  auto rit = regs_.find(id);
  AGG_CHECK_MSG(rit != regs_.end(), "unknown GraphId");
  Registration& reg = rit->second;
  AGG_CHECK_MSG(reg.mutable_g != nullptr,
                "mutate_graph: graph was registered const; use the mutable "
                "register_graph overload");
  Graph& g = *reg.mutable_g;
  const std::string err = graph::delta_error(g.csr(), delta);
  AGG_CHECK_MSG(err.empty(), err.c_str());
  if (delta.empty()) return;

  // Old-component view (pre-delta) drives the delta-aware invalidation.
  if (!reg.inc_cc) reg.inc_cc = graph::IncrementalCc(g.csr());
  const std::vector<std::uint32_t> affected =
      svc::affected_components(reg.inc_cc->labels(), delta);
  std::vector<std::uint32_t> old_labels;
  if (rcache_.enabled()) old_labels = reg.inc_cc->labels();

  g.apply_delta(delta);
  reg.inc_cc->apply(g.csr(), delta);

  bump("svc.mutate");
  bump("svc.mutate.edges", static_cast<double>(delta.num_ops()));

  // Incrementally patch every healthy resident replica; the version written
  // into the pin stops ensure_fresh from re-uploading wholesale.
  for (simt::DeviceIndex d = 0; d < fleet_.size(); ++d) {
    Pin& pin = reg.pins[d];
    if (!pin.resident || !fleet_.device(d).healthy()) continue;
    simt::Device& dev = fleet_.device(d);
    try {
      const auto ps = pin.dg.patch(dev, g.csr(), pin.with_weights);
      bump(ps.rebuilt ? "svc.mutate.rebuild" : "svc.mutate.patch");
      bump("svc.mutate.bytes", static_cast<double>(ps.bytes_sent));
      pin.version = g.version();
      if (pin.sym_dg) {
        // The symmetrized closure is stale; drop it per-structure (cc()
        // re-derives on demand).
        pin.sym_dg->release(dev);
        pin.sym_dg.reset();
      }
    } catch (const simt::DeviceFault&) {
      // A fault mid-patch leaves the replica inconsistent: drop residency;
      // the next query against this device re-uploads from scratch.
      release_pin(d, pin);
    }
  }

  if (rcache_.enabled()) {
    const auto res = rcache_.delta_invalidate(
        id, g.version(), [&](const svc::CacheKey& k) {
          return svc::entry_survives_delta(k, old_labels, affected);
        });
    rcache_versions_[reg.uid] = g.version();
    if (res.kept > 0) bump("svc.cache.delta_keep", static_cast<double>(res.kept));
    if (res.dropped > 0) {
      bump("svc.cache.invalidate", static_cast<double>(res.dropped));
    }
    if (trace::active()) {
      trace::ServiceEvent ev;
      ev.action = "cache_delta";
      ev.graph = id;
      ev.version = g.version();
      ev.bytes = res.kept;
      ev.ts_us = fleet_.device(0).now_us();
      trace::Tracer::instance().service(ev);
    }
  }
}

const graph::IncrementalCc& Session::incremental_cc(GraphId id) {
  auto it = regs_.find(id);
  AGG_CHECK_MSG(it != regs_.end(), "unknown GraphId");
  Registration& reg = it->second;
  if (!reg.inc_cc) reg.inc_cc = graph::IncrementalCc(reg.g->csr());
  return *reg.inc_cc;
}

void Session::unregister_graph(const Graph& g) {
  auto it = by_uid_.find(g.uid());
  if (it == by_uid_.end()) return;
  unregister_graph(it->second);
}

void Session::unregister_graph(GraphId id) {
  auto it = regs_.find(id);
  if (it == regs_.end()) return;
  Registration& reg = it->second;
  for (simt::DeviceIndex d = 0; d < fleet_.size(); ++d) {
    release_pin(d, reg.pins[d]);
  }
  // Cached answers are only served to registered graphs; drop them so their
  // bytes return to the budget.
  if (rcache_.enabled()) rcache_.invalidate_graph(id);
  rcache_versions_.erase(reg.uid);
  by_uid_.erase(reg.uid);
  regs_.erase(it);
}

bool Session::is_registered(const Graph& g) const {
  return by_uid_.count(g.uid()) > 0;
}

GraphId Session::graph_id(const Graph& g) const {
  auto it = by_uid_.find(g.uid());
  return it == by_uid_.end() ? 0 : it->second;
}

void Session::evict(const Graph& g) {
  auto it = by_uid_.find(g.uid());
  if (it != by_uid_.end()) evict(it->second);
}

void Session::evict(GraphId id) {
  auto it = regs_.find(id);
  if (it == regs_.end()) return;
  for (simt::DeviceIndex d = 0; d < fleet_.size(); ++d) {
    release_pin(d, it->second.pins[d]);
  }
}

void Session::evict_all() {
  for (auto& [id, reg] : regs_) {
    for (simt::DeviceIndex d = 0; d < fleet_.size(); ++d) {
      release_pin(d, reg.pins[d]);
    }
  }
}

bool Session::is_resident(const Graph& g) const {
  const Registration* reg = find_reg(g);
  if (reg == nullptr) return false;
  for (const Pin& pin : reg->pins) {
    if (pin.resident) return true;
  }
  return false;
}

void Session::enable_result_cache(std::size_t capacity_bytes) {
  rcache_.set_capacity(capacity_bytes);
  if (capacity_bytes == 0) {
    rcache_.clear();
    rcache_versions_.clear();
  }
}

std::uint64_t Session::rcache_graph_key(const Graph& g) const {
  const GraphId id = graph_id(g);
  return id != 0 ? id : g.uid();
}

void Session::rcache_refresh_version(const Graph& g) {
  auto [it, inserted] = rcache_versions_.try_emplace(g.uid(), g.version());
  if (inserted || it->second == g.version()) return;
  // The graph mutated since the last query: every cached answer for it is
  // stale. The version in the key already guarantees no hit; dropping them
  // eagerly returns their bytes to the budget.
  const std::size_t dropped = rcache_.invalidate_graph(rcache_graph_key(g));
  it->second = g.version();
  if (dropped > 0) {
    bump("svc.cache.invalidate", static_cast<double>(dropped));
    if (trace::active()) {
      trace::ServiceEvent ev;
      ev.action = "cache_invalidate";
      ev.graph = rcache_graph_key(g);
      ev.version = g.version();
      ev.bytes = dropped;  // entry count; their bytes are already released
      ev.ts_us = fleet_.device(0).now_us();
      trace::Tracer::instance().service(ev);
    }
  }
}

const svc::Payload* Session::rcache_lookup(const Graph& g, svc::Algo algo,
                                           NodeId source, double damping,
                                           const Policy& policy) {
  if (!rcache_.enabled() || !is_registered(g)) return nullptr;
  rcache_refresh_version(g);
  const svc::CacheKey key = svc::make_cache_key(
      rcache_graph_key(g), g.version(), algo, source, damping, policy);
  const auto* e = rcache_.lookup(key);
  if (e == nullptr) {
    bump("svc.cache.miss");
    return nullptr;
  }
  // Serve from host memory at modeled copy cost; no kernel, no transfer.
  // Charged to device 0 — cache hits keep the single-device clock semantics
  // regardless of fleet size.
  fleet_.device(0).account_host_compute(rcache_cost_.hit_us(e->bytes));
  bump("svc.cache.hit");
  if (trace::active()) {
    trace::ServiceEvent ev;
    ev.action = "cache_hit";
    ev.algo = svc::algo_name(algo);
    ev.graph = rcache_graph_key(g);
    ev.version = g.version();
    ev.source = source;
    ev.bytes = e->bytes;
    ev.ts_us = fleet_.device(0).now_us();
    trace::Tracer::instance().service(ev);
  }
  return &e->value;
}

void Session::rcache_store(const Graph& g, svc::Algo algo, NodeId source,
                           double damping, const Policy& policy,
                           svc::Payload payload) {
  if (!rcache_.enabled() || !is_registered(g)) return;
  rcache_refresh_version(g);
  const svc::CacheKey key = svc::make_cache_key(
      rcache_graph_key(g), g.version(), algo, source, damping, policy);
  const std::size_t bytes = svc::payload_bytes(payload);
  const std::size_t before = rcache_.entries();
  const std::size_t evicted = rcache_.insert(key, std::move(payload), bytes);
  if (evicted > 0) bump("svc.cache.evict", static_cast<double>(evicted));
  if (rcache_.entries() > before - evicted) {
    bump("svc.cache.insert");
    gauge_max("svc.cache.bytes", static_cast<double>(rcache_.bytes_in_use()));
    if (trace::active()) {
      trace::ServiceEvent ev;
      ev.action = "cache_insert";
      ev.algo = svc::algo_name(algo);
      ev.graph = rcache_graph_key(g);
      ev.version = g.version();
      ev.source = source;
      ev.bytes = bytes;
      ev.ts_us = fleet_.device(0).now_us();
      trace::Tracer::instance().service(ev);
    }
  }
}

BfsResult Session::bfs_on(simt::DeviceIndex d, const Graph& g, NodeId source,
                          const Policy& policy) {
  simt::Device& dev = fleet_.device(d);
  Registration* reg = find_reg(g);
  if (reg == nullptr) return adaptive::bfs(dev, g, source, policy);
  AGG_CHECK(source < g.num_nodes());
  return detail::run_guarded<BfsResult>(dev, [&] {
    Pin& pin = ensure_fresh(*reg, d, false);
    BfsResult r;
    gg::GpuBfsResult gr;
    if (policy.mode == Policy::Mode::fixed_variant) {
      gg::EngineOptions eo = policy.options.engine;
      // Pull iterations gather over the CSC; hand the engine the host copy
      // cached on the Graph so the device upload (kept resident in this pin
      // until release) reuses it instead of re-transposing.
      if (policy.wants_pull()) eo.csc = &g.csc();
      gr = gg::run_bfs(dev, pin.dg, g.csr(), source,
                       gg::fixed_variant(policy.variant), eo);
    } else {
      rt::AdaptiveOptions ao = policy.options;
      if (policy.wants_pull()) ao.engine.csc = &g.csc();
      gr = rt::adaptive_bfs(dev, pin.dg, g.csr(), source, ao);
    }
    r.level = std::move(gr.level);
    r.metrics = std::move(gr.metrics);
    return r;
  });
}

SsspResult Session::sssp_on(simt::DeviceIndex d, const Graph& g, NodeId source,
                            const Policy& policy) {
  simt::Device& dev = fleet_.device(d);
  Registration* reg = find_reg(g);
  if (reg == nullptr) return adaptive::sssp(dev, g, source, policy);
  AGG_CHECK(source < g.num_nodes());
  AGG_CHECK_MSG(g.is_weighted(),
                "call set_uniform_weights() or load weights first");
  return detail::run_guarded<SsspResult>(dev, [&] {
    Pin& pin = ensure_fresh(*reg, d, true);
    SsspResult r;
    gg::GpuSsspResult gr;
    if (policy.mode == Policy::Mode::fixed_variant) {
      gg::EngineOptions eo = policy.options.engine;
      if (policy.wants_pull()) eo.csc = &g.csc();
      gr = gg::run_sssp(dev, pin.dg, g.csr(), source,
                        gg::fixed_variant(policy.variant), eo);
    } else {
      rt::AdaptiveOptions ao = policy.options;
      if (policy.wants_pull()) ao.engine.csc = &g.csc();
      gr = rt::adaptive_sssp(dev, pin.dg, g.csr(), source, ao);
    }
    r.dist = std::move(gr.dist);
    r.metrics = std::move(gr.metrics);
    return r;
  });
}

CcResult Session::cc_on(simt::DeviceIndex d, const Graph& g,
                        const Policy& policy) {
  simt::Device& dev = fleet_.device(d);
  Registration* reg = find_reg(g);
  if (reg == nullptr) return adaptive::cc(dev, g, policy);
  const graph::Csr& target = resolve_symmetric(g, policy);
  return detail::run_guarded<CcResult>(dev, [&] {
    gg::DeviceGraph* dg;
    if (&target == &g.csr()) {
      dg = &ensure_fresh(*reg, d, false).dg;
    } else {
      // First cc() on a registered directed graph: keep the symmetrized CSR
      // resident too, so repeat queries skip the upload.
      ensure_fresh(*reg, d, false);
      dg = &ensure_sym(*reg, d, target);
    }
    CcResult r;
    gg::GpuCcResult gr =
        policy.mode == Policy::Mode::fixed_variant
            ? gg::run_cc(dev, *dg, target, gg::fixed_variant(policy.variant),
                         policy.options.engine)
            : rt::adaptive_cc(dev, *dg, target, policy.options);
    r.component = std::move(gr.component);
    r.num_components = gr.num_components;
    r.metrics = std::move(gr.metrics);
    return r;
  });
}

PageRankResult Session::pagerank_on(simt::DeviceIndex d, const Graph& g,
                                    double damping, const Policy& policy) {
  simt::Device& dev = fleet_.device(d);
  Registration* reg = find_reg(g);
  if (reg == nullptr) return adaptive::pagerank(dev, g, damping, policy);
  return detail::run_guarded<PageRankResult>(dev, [&] {
    Pin& pin = ensure_fresh(*reg, d, false);
    PageRankResult r;
    gg::PageRankOptions po;
    po.damping = damping;
    gg::GpuPageRankResult gr;
    if (policy.mode == Policy::Mode::fixed_variant) {
      po.engine = policy.options.engine;
      gr = gg::run_pagerank(dev, pin.dg, g.csr(),
                            gg::fixed_variant(policy.variant), po);
    } else {
      gr = rt::adaptive_pagerank(dev, pin.dg, g.csr(), po, policy.options);
    }
    r.rank.assign(gr.rank.begin(), gr.rank.end());
    r.metrics = std::move(gr.metrics);
    return r;
  });
}

BfsResult Session::bfs(const Graph& g, NodeId source, const Policy& policy) {
  if (policy.mode == Policy::Mode::cpu_serial) {
    return adaptive::bfs(fleet_.device(0), g, source, policy);
  }
  if (const svc::Payload* hit =
          rcache_lookup(g, svc::Algo::bfs, source, 0.0, policy)) {
    return std::get<BfsResult>(*hit);
  }
  simt::DeviceIndex d = route_device();
  BfsResult out;
  if (d != kNoDevice) {
    out = bfs_on(d, g, source, policy);
    // Failover: a permanent fault killed the routed device mid-query; the
    // next healthy device re-runs it. Transient faults surface as before.
    while (!out.ok() && out.code == ErrorCode::device_lost &&
           (d = route_device()) != kNoDevice) {
      out = bfs_on(d, g, source, policy);
    }
  }
  if (d == kNoDevice || (!out.ok() && out.code == ErrorCode::device_lost)) {
    // No healthy device remains: the serial CPU oracle answers, exactly.
    out = adaptive::bfs(fleet_.device(0), g, source, Policy::cpu());
    out.degraded = true;
  }
  if (out.ok()) {
    rcache_store(g, svc::Algo::bfs, source, 0.0, policy, svc::Payload(out));
  }
  return out;
}

SsspResult Session::sssp(const Graph& g, NodeId source, const Policy& policy) {
  if (policy.mode == Policy::Mode::cpu_serial) {
    return adaptive::sssp(fleet_.device(0), g, source, policy);
  }
  if (const svc::Payload* hit =
          rcache_lookup(g, svc::Algo::sssp, source, 0.0, policy)) {
    return std::get<SsspResult>(*hit);
  }
  simt::DeviceIndex d = route_device();
  SsspResult out;
  if (d != kNoDevice) {
    out = sssp_on(d, g, source, policy);
    while (!out.ok() && out.code == ErrorCode::device_lost &&
           (d = route_device()) != kNoDevice) {
      out = sssp_on(d, g, source, policy);
    }
  }
  if (d == kNoDevice || (!out.ok() && out.code == ErrorCode::device_lost)) {
    out = adaptive::sssp(fleet_.device(0), g, source, Policy::cpu());
    out.degraded = true;
  }
  if (out.ok()) {
    rcache_store(g, svc::Algo::sssp, source, 0.0, policy, svc::Payload(out));
  }
  return out;
}

CcResult Session::cc(const Graph& g, const Policy& policy) {
  if (policy.mode == Policy::Mode::cpu_serial) {
    return adaptive::cc(fleet_.device(0), g, policy);
  }
  if (const svc::Payload* hit =
          rcache_lookup(g, svc::Algo::cc, 0, 0.0, policy)) {
    return std::get<CcResult>(*hit);
  }
  simt::DeviceIndex d = route_device();
  CcResult out;
  if (d != kNoDevice) {
    out = cc_on(d, g, policy);
    while (!out.ok() && out.code == ErrorCode::device_lost &&
           (d = route_device()) != kNoDevice) {
      out = cc_on(d, g, policy);
    }
  }
  if (d == kNoDevice || (!out.ok() && out.code == ErrorCode::device_lost)) {
    out = adaptive::cc(fleet_.device(0), g,
                       Policy::cpu().with_symmetrize(policy.symmetrize));
    out.degraded = true;
  }
  if (out.ok()) {
    rcache_store(g, svc::Algo::cc, 0, 0.0, policy, svc::Payload(out));
  }
  return out;
}

MstResult Session::mst(const Graph& g, const Policy& policy) {
  if (policy.mode == Policy::Mode::cpu_serial) {
    return adaptive::mst(fleet_.device(0), g, policy);
  }
  simt::DeviceIndex d = route_device();
  MstResult out;
  if (d != kNoDevice) {
    out = adaptive::mst(fleet_.device(d), g, policy);
    while (!out.ok() && out.code == ErrorCode::device_lost &&
           (d = route_device()) != kNoDevice) {
      out = adaptive::mst(fleet_.device(d), g, policy);
    }
  }
  if (d == kNoDevice || (!out.ok() && out.code == ErrorCode::device_lost)) {
    out = adaptive::mst(fleet_.device(0), g,
                        Policy::cpu().with_symmetrize(policy.symmetrize));
    out.degraded = true;
  }
  return out;
}

PageRankResult Session::pagerank(const Graph& g, double damping,
                                 const Policy& policy) {
  if (policy.mode == Policy::Mode::cpu_serial) {
    return adaptive::pagerank(fleet_.device(0), g, damping, policy);
  }
  if (const svc::Payload* hit =
          rcache_lookup(g, svc::Algo::pagerank, 0, damping, policy)) {
    return std::get<PageRankResult>(*hit);
  }
  simt::DeviceIndex d = route_device();
  PageRankResult out;
  if (d != kNoDevice) {
    out = pagerank_on(d, g, damping, policy);
    while (!out.ok() && out.code == ErrorCode::device_lost &&
           (d = route_device()) != kNoDevice) {
      out = pagerank_on(d, g, damping, policy);
    }
  }
  if (d == kNoDevice || (!out.ok() && out.code == ErrorCode::device_lost)) {
    out = adaptive::pagerank(fleet_.device(0), g, damping, Policy::cpu());
    out.degraded = true;
  }
  if (out.ok()) {
    rcache_store(g, svc::Algo::pagerank, 0, damping, policy,
                 svc::Payload(out));
  }
  return out;
}

BfsResult Session::bfs(GraphId id, NodeId source, const Policy& policy) {
  return bfs(graph_for(id), source, policy);
}

SsspResult Session::sssp(GraphId id, NodeId source, const Policy& policy) {
  return sssp(graph_for(id), source, policy);
}

CcResult Session::cc(GraphId id, const Policy& policy) {
  return cc(graph_for(id), policy);
}

PageRankResult Session::pagerank(GraphId id, double damping,
                                 const Policy& policy) {
  return pagerank(graph_for(id), damping, policy);
}

Session& Session::default_session() {
  thread_local Session session;
  return session;
}

}  // namespace adaptive
