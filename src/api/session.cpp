#include "api/session.h"

namespace adaptive {
namespace {

// Shared by Session and the free cc()/mst() in algorithms.cpp: resolve the
// CSR an arc-closure algorithm should run on under `policy.symmetrize`.
const graph::Csr& resolve_symmetric(const Graph& g, const Policy& policy) {
  switch (policy.symmetrize) {
    case Symmetrize::never:
      return g.csr();
    case Symmetrize::always:
      return g.symmetrized();
    case Symmetrize::auto_detect:
      return g.is_symmetric() ? g.csr() : g.symmetrized();
  }
  AGG_CHECK(false);
  return g.csr();
}

}  // namespace

namespace detail {
const graph::Csr& resolve_symmetric_csr(const Graph& g, const Policy& policy) {
  return resolve_symmetric(g, policy);
}
}  // namespace detail

Session::Session(const simt::DeviceProps& props, simt::TimingModel tm)
    : dev_(props, tm) {}

Session::~Session() {
  for (auto& [key, pin] : pins_) pin.dg.release(dev_);
}

Session::Pin* Session::ensure_fresh(const graph::Csr* key, const graph::Csr& csr,
                                    bool with_weights, std::uint64_t version) {
  auto it = pins_.find(key);
  if (it == pins_.end()) return nullptr;
  Pin& pin = it->second;
  if (pin.version != version || (with_weights && !pin.with_weights)) {
    // Stale upload (graph mutated since registration) or weights appeared:
    // refresh transparently, charged to the current query's stream.
    pin.dg.release(dev_);
    try {
      pin.dg = gg::DeviceGraph::upload(dev_, csr, with_weights || csr.has_weights());
    } catch (const simt::DeviceFault&) {
      // The old upload is gone and the new one failed: drop the pin so a
      // later query re-registers instead of double-releasing stale buffers.
      pins_.erase(it);
      throw;
    }
    pin.with_weights = with_weights || csr.has_weights();
    pin.version = version;
  }
  return &pin;
}

void Session::register_graph(const Graph& g) {
  const graph::Csr* key = &g.csr();
  if (ensure_fresh(key, g.csr(), g.is_weighted(), g.version())) return;
  Pin pin;
  pin.dg = gg::DeviceGraph::upload(dev_, g.csr(), g.is_weighted());
  pin.with_weights = g.is_weighted();
  pin.version = g.version();
  pins_.emplace(key, std::move(pin));
}

void Session::unregister_graph(const Graph& g) {
  auto drop = [this](const graph::Csr* key) {
    auto it = pins_.find(key);
    if (it != pins_.end()) {
      it->second.dg.release(dev_);
      pins_.erase(it);
    }
  };
  // Drop any derived (symmetrized-CSR) pin first, then the base pin.
  auto d = derived_.find(&g.csr());
  if (d != derived_.end()) {
    drop(d->second);
    derived_.erase(d);
  }
  drop(&g.csr());
}

bool Session::is_registered(const Graph& g) const {
  return pins_.count(&g.csr()) > 0;
}

BfsResult Session::bfs(const Graph& g, NodeId source, const Policy& policy) {
  if (policy.mode != Policy::Mode::cpu_serial) {
    if (!dev_.healthy()) {
      BfsResult out = adaptive::bfs(dev_, g, source, Policy::cpu());
      out.degraded = true;
      return out;
    }
    if (is_registered(g)) {
      AGG_CHECK(source < g.num_nodes());
      return detail::run_guarded<BfsResult>(dev_, [&] {
        Pin* pin = ensure_fresh(&g.csr(), g.csr(), false, g.version());
        BfsResult out;
        gg::GpuBfsResult r =
            policy.mode == Policy::Mode::fixed_variant
                ? gg::run_bfs(dev_, pin->dg, g.csr(), source,
                              gg::fixed_variant(policy.variant),
                              policy.options.engine)
                : rt::adaptive_bfs(dev_, pin->dg, g.csr(), source,
                                   policy.options);
        out.level = std::move(r.level);
        out.metrics = std::move(r.metrics);
        return out;
      });
    }
  }
  return adaptive::bfs(dev_, g, source, policy);
}

SsspResult Session::sssp(const Graph& g, NodeId source, const Policy& policy) {
  if (policy.mode != Policy::Mode::cpu_serial) {
    if (!dev_.healthy()) {
      SsspResult out = adaptive::sssp(dev_, g, source, Policy::cpu());
      out.degraded = true;
      return out;
    }
    if (is_registered(g)) {
      AGG_CHECK(source < g.num_nodes());
      AGG_CHECK_MSG(g.is_weighted(),
                    "call set_uniform_weights() or load weights first");
      return detail::run_guarded<SsspResult>(dev_, [&] {
        Pin* pin = ensure_fresh(&g.csr(), g.csr(), true, g.version());
        SsspResult out;
        gg::GpuSsspResult r =
            policy.mode == Policy::Mode::fixed_variant
                ? gg::run_sssp(dev_, pin->dg, g.csr(), source,
                               gg::fixed_variant(policy.variant),
                               policy.options.engine)
                : rt::adaptive_sssp(dev_, pin->dg, g.csr(), source,
                                    policy.options);
        out.dist = std::move(r.dist);
        out.metrics = std::move(r.metrics);
        return out;
      });
    }
  }
  return adaptive::sssp(dev_, g, source, policy);
}

CcResult Session::cc(const Graph& g, const Policy& policy) {
  if (policy.mode != Policy::Mode::cpu_serial) {
    if (!dev_.healthy()) {
      CcResult out = adaptive::cc(dev_, g, Policy::cpu().with_symmetrize(
                                               policy.symmetrize));
      out.degraded = true;
      return out;
    }
    if (is_registered(g)) {
      const graph::Csr& target = resolve_symmetric(g, policy);
      return detail::run_guarded<CcResult>(dev_, [&] {
        Pin* pin = ensure_fresh(&target, target, false, g.version());
        if (!pin && &target != &g.csr()) {
          // First cc() on a registered directed graph: keep the symmetrized
          // CSR resident too, so repeat queries skip the upload.
          Pin derived;
          derived.dg = gg::DeviceGraph::upload(dev_, target, false);
          derived.with_weights = false;
          derived.version = g.version();
          pin = &pins_.emplace(&target, std::move(derived)).first->second;
          derived_[&g.csr()] = &target;
        }
        if (!pin) return adaptive::cc(dev_, g, policy);
        CcResult out;
        gg::GpuCcResult r =
            policy.mode == Policy::Mode::fixed_variant
                ? gg::run_cc(dev_, pin->dg, target,
                             gg::fixed_variant(policy.variant),
                             policy.options.engine)
                : rt::adaptive_cc(dev_, pin->dg, target, policy.options);
        out.component = std::move(r.component);
        out.num_components = r.num_components;
        out.metrics = std::move(r.metrics);
        return out;
      });
    }
  }
  return adaptive::cc(dev_, g, policy);
}

MstResult Session::mst(const Graph& g, const Policy& policy) {
  if (policy.mode != Policy::Mode::cpu_serial && !dev_.healthy()) {
    MstResult out = adaptive::mst(dev_, g, Policy::cpu().with_symmetrize(
                                               policy.symmetrize));
    out.degraded = true;
    return out;
  }
  return adaptive::mst(dev_, g, policy);
}

PageRankResult Session::pagerank(const Graph& g, double damping,
                                 const Policy& policy) {
  if (policy.mode != Policy::Mode::cpu_serial) {
    if (!dev_.healthy()) {
      PageRankResult out = adaptive::pagerank(dev_, g, damping, Policy::cpu());
      out.degraded = true;
      return out;
    }
    if (is_registered(g)) {
      return detail::run_guarded<PageRankResult>(dev_, [&] {
        Pin* pin = ensure_fresh(&g.csr(), g.csr(), false, g.version());
        PageRankResult out;
        gg::PageRankOptions po;
        po.damping = damping;
        gg::GpuPageRankResult r;
        if (policy.mode == Policy::Mode::fixed_variant) {
          po.engine = policy.options.engine;
          r = gg::run_pagerank(dev_, pin->dg, g.csr(),
                               gg::fixed_variant(policy.variant), po);
        } else {
          r = rt::adaptive_pagerank(dev_, pin->dg, g.csr(), po, policy.options);
        }
        out.rank.assign(r.rank.begin(), r.rank.end());
        out.metrics = std::move(r.metrics);
        return out;
      });
    }
  }
  return adaptive::pagerank(dev_, g, damping, policy);
}

Session& Session::default_session() {
  thread_local Session session;
  return session;
}

}  // namespace adaptive
