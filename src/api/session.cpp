#include "api/session.h"

#include "trace/counters.h"
#include "trace/trace_sink.h"

namespace adaptive {
namespace {

// Shared by Session and the free cc()/mst() in algorithms.cpp: resolve the
// CSR an arc-closure algorithm should run on under `policy.symmetrize`.
const graph::Csr& resolve_symmetric(const Graph& g, const Policy& policy) {
  switch (policy.symmetrize) {
    case Symmetrize::never:
      return g.csr();
    case Symmetrize::always:
      return g.symmetrized();
    case Symmetrize::auto_detect:
      return g.is_symmetric() ? g.csr() : g.symmetrized();
  }
  AGG_CHECK(false);
  return g.csr();
}

void bump(std::string_view name, double d = 1) {
  auto& reg = trace::CounterRegistry::instance();
  if (reg.enabled()) reg.counter(name).add(d);
}

void gauge_max(const char* name, double v) {
  auto& reg = trace::CounterRegistry::instance();
  if (reg.enabled()) reg.gauge(name).set_max(v);
}

// splitmix64 finalizer over the CSR address: a stable, well-mixed graph key
// for the session's result cache (bijective, so distinct CSRs never clash).
std::uint64_t mix_ptr(const void* p) {
  auto x = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p));
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

namespace detail {
const graph::Csr& resolve_symmetric_csr(const Graph& g, const Policy& policy) {
  return resolve_symmetric(g, policy);
}
}  // namespace detail

Session::Session(const simt::DeviceProps& props, simt::TimingModel tm)
    : dev_(props, tm) {}

Session::~Session() {
  for (auto& [key, pin] : pins_) {
    if (pin.resident) pin.dg.release(dev_);
  }
}

Session::Pin* Session::ensure_fresh(const graph::Csr* key, const graph::Csr& csr,
                                    bool with_weights, std::uint64_t version) {
  auto it = pins_.find(key);
  if (it == pins_.end()) return nullptr;
  Pin& pin = it->second;
  if (!pin.resident || pin.version != version ||
      (with_weights && !pin.with_weights)) {
    // Stale upload (graph mutated since registration), evicted pin, or
    // weights appeared: refresh transparently, charged to the current query.
    if (pin.resident) pin.dg.release(dev_);
    try {
      pin.dg = gg::DeviceGraph::upload(dev_, csr, with_weights || csr.has_weights());
    } catch (const simt::DeviceFault&) {
      // The old upload is gone and the new one failed: drop the pin so a
      // later query re-registers instead of double-releasing stale buffers.
      pins_.erase(it);
      throw;
    }
    pin.with_weights = with_weights || csr.has_weights();
    pin.version = version;
    pin.resident = true;
  }
  return &pin;
}

void Session::register_graph(const Graph& g) {
  const graph::Csr* key = &g.csr();
  if (ensure_fresh(key, g.csr(), g.is_weighted(), g.version())) return;
  Pin pin;
  pin.dg = gg::DeviceGraph::upload(dev_, g.csr(), g.is_weighted());
  pin.with_weights = g.is_weighted();
  pin.version = g.version();
  pins_.emplace(key, std::move(pin));
}

void Session::unregister_graph(const Graph& g) {
  auto drop = [this](const graph::Csr* key) {
    auto it = pins_.find(key);
    if (it != pins_.end()) {
      if (it->second.resident) it->second.dg.release(dev_);
      pins_.erase(it);
    }
  };
  // Drop any derived (symmetrized-CSR) pin first, then the base pin.
  auto d = derived_.find(&g.csr());
  if (d != derived_.end()) {
    drop(d->second);
    derived_.erase(d);
  }
  drop(&g.csr());
  // Cached answers are only served to registered graphs; drop them so their
  // bytes return to the budget.
  if (rcache_.enabled()) rcache_.invalidate_graph(rcache_graph_key(g));
  rcache_versions_.erase(&g.csr());
}

bool Session::is_registered(const Graph& g) const {
  return pins_.count(&g.csr()) > 0;
}

void Session::evict(const Graph& g) {
  // The derived symmetrized pin is dropped outright — cc() re-derives and
  // re-uploads it on demand.
  auto d = derived_.find(&g.csr());
  if (d != derived_.end()) {
    auto it = pins_.find(d->second);
    if (it != pins_.end()) {
      if (it->second.resident) it->second.dg.release(dev_);
      pins_.erase(it);
    }
    derived_.erase(d);
  }
  auto it = pins_.find(&g.csr());
  if (it != pins_.end() && it->second.resident) {
    it->second.dg.release(dev_);
    it->second.resident = false;
  }
}

void Session::evict_all() {
  for (auto& [base, dkey] : derived_) {
    auto it = pins_.find(dkey);
    if (it != pins_.end()) {
      if (it->second.resident) it->second.dg.release(dev_);
      pins_.erase(it);
    }
  }
  derived_.clear();
  for (auto& [key, pin] : pins_) {
    if (pin.resident) {
      pin.dg.release(dev_);
      pin.resident = false;
    }
  }
}

bool Session::is_resident(const Graph& g) const {
  auto it = pins_.find(&g.csr());
  return it != pins_.end() && it->second.resident;
}

void Session::enable_result_cache(std::size_t capacity_bytes) {
  rcache_.set_capacity(capacity_bytes);
  if (capacity_bytes == 0) {
    rcache_.clear();
    rcache_versions_.clear();
  }
}

std::uint64_t Session::rcache_graph_key(const Graph& g) const {
  return mix_ptr(&g.csr());
}

void Session::rcache_refresh_version(const Graph& g) {
  auto [it, inserted] = rcache_versions_.try_emplace(&g.csr(), g.version());
  if (inserted || it->second == g.version()) return;
  // The graph mutated since the last query: every cached answer for it is
  // stale. The version in the key already guarantees no hit; dropping them
  // eagerly returns their bytes to the budget.
  const std::size_t dropped = rcache_.invalidate_graph(rcache_graph_key(g));
  it->second = g.version();
  if (dropped > 0) {
    bump("svc.cache.invalidate", static_cast<double>(dropped));
    if (trace::active()) {
      trace::ServiceEvent ev;
      ev.action = "cache_invalidate";
      ev.graph = rcache_graph_key(g);
      ev.version = g.version();
      ev.bytes = dropped;  // entry count; their bytes are already released
      ev.ts_us = dev_.now_us();
      trace::Tracer::instance().service(ev);
    }
  }
}

const svc::Payload* Session::rcache_lookup(const Graph& g, svc::Algo algo,
                                           NodeId source, double damping,
                                           const Policy& policy) {
  if (!rcache_.enabled() || !is_registered(g)) return nullptr;
  rcache_refresh_version(g);
  const svc::CacheKey key = svc::make_cache_key(
      rcache_graph_key(g), g.version(), algo, source, damping, policy);
  const auto* e = rcache_.lookup(key);
  if (e == nullptr) {
    bump("svc.cache.miss");
    return nullptr;
  }
  // Serve from host memory at modeled copy cost; no kernel, no transfer.
  dev_.account_host_compute(rcache_cost_.hit_us(e->bytes));
  bump("svc.cache.hit");
  if (trace::active()) {
    trace::ServiceEvent ev;
    ev.action = "cache_hit";
    ev.algo = svc::algo_name(algo);
    ev.graph = rcache_graph_key(g);
    ev.version = g.version();
    ev.source = source;
    ev.bytes = e->bytes;
    ev.ts_us = dev_.now_us();
    trace::Tracer::instance().service(ev);
  }
  return &e->value;
}

void Session::rcache_store(const Graph& g, svc::Algo algo, NodeId source,
                           double damping, const Policy& policy,
                           svc::Payload payload) {
  if (!rcache_.enabled() || !is_registered(g)) return;
  rcache_refresh_version(g);
  const svc::CacheKey key = svc::make_cache_key(
      rcache_graph_key(g), g.version(), algo, source, damping, policy);
  const std::size_t bytes = svc::payload_bytes(payload);
  const std::size_t before = rcache_.entries();
  const std::size_t evicted = rcache_.insert(key, std::move(payload), bytes);
  if (evicted > 0) bump("svc.cache.evict", static_cast<double>(evicted));
  if (rcache_.entries() > before - evicted) {
    bump("svc.cache.insert");
    gauge_max("svc.cache.bytes", static_cast<double>(rcache_.bytes_in_use()));
    if (trace::active()) {
      trace::ServiceEvent ev;
      ev.action = "cache_insert";
      ev.algo = svc::algo_name(algo);
      ev.graph = rcache_graph_key(g);
      ev.version = g.version();
      ev.source = source;
      ev.bytes = bytes;
      ev.ts_us = dev_.now_us();
      trace::Tracer::instance().service(ev);
    }
  }
}

BfsResult Session::bfs(const Graph& g, NodeId source, const Policy& policy) {
  if (policy.mode != Policy::Mode::cpu_serial) {
    if (const svc::Payload* hit =
            rcache_lookup(g, svc::Algo::bfs, source, 0.0, policy)) {
      return std::get<BfsResult>(*hit);
    }
    if (!dev_.healthy()) {
      BfsResult out = adaptive::bfs(dev_, g, source, Policy::cpu());
      out.degraded = true;
      if (out.ok()) {
        rcache_store(g, svc::Algo::bfs, source, 0.0, policy,
                     svc::Payload(out));
      }
      return out;
    }
    if (is_registered(g)) {
      AGG_CHECK(source < g.num_nodes());
      BfsResult out = detail::run_guarded<BfsResult>(dev_, [&] {
        Pin* pin = ensure_fresh(&g.csr(), g.csr(), false, g.version());
        BfsResult r;
        gg::GpuBfsResult gr;
        if (policy.mode == Policy::Mode::fixed_variant) {
          gg::EngineOptions eo = policy.options.engine;
          // Pull iterations gather over the CSC; hand the engine the host
          // copy cached on the Graph so the device upload (kept resident in
          // this pin until release) reuses it instead of re-transposing.
          if (policy.wants_pull()) eo.csc = &g.csc();
          gr = gg::run_bfs(dev_, pin->dg, g.csr(), source,
                           gg::fixed_variant(policy.variant), eo);
        } else {
          rt::AdaptiveOptions ao = policy.options;
          if (policy.wants_pull()) ao.engine.csc = &g.csc();
          gr = rt::adaptive_bfs(dev_, pin->dg, g.csr(), source, ao);
        }
        r.level = std::move(gr.level);
        r.metrics = std::move(gr.metrics);
        return r;
      });
      if (out.ok()) {
        rcache_store(g, svc::Algo::bfs, source, 0.0, policy,
                     svc::Payload(out));
      }
      return out;
    }
  }
  return adaptive::bfs(dev_, g, source, policy);
}

SsspResult Session::sssp(const Graph& g, NodeId source, const Policy& policy) {
  if (policy.mode != Policy::Mode::cpu_serial) {
    if (const svc::Payload* hit =
            rcache_lookup(g, svc::Algo::sssp, source, 0.0, policy)) {
      return std::get<SsspResult>(*hit);
    }
    if (!dev_.healthy()) {
      SsspResult out = adaptive::sssp(dev_, g, source, Policy::cpu());
      out.degraded = true;
      if (out.ok()) {
        rcache_store(g, svc::Algo::sssp, source, 0.0, policy,
                     svc::Payload(out));
      }
      return out;
    }
    if (is_registered(g)) {
      AGG_CHECK(source < g.num_nodes());
      AGG_CHECK_MSG(g.is_weighted(),
                    "call set_uniform_weights() or load weights first");
      SsspResult out = detail::run_guarded<SsspResult>(dev_, [&] {
        Pin* pin = ensure_fresh(&g.csr(), g.csr(), true, g.version());
        SsspResult r;
        gg::GpuSsspResult gr;
        if (policy.mode == Policy::Mode::fixed_variant) {
          gg::EngineOptions eo = policy.options.engine;
          if (policy.wants_pull()) eo.csc = &g.csc();
          gr = gg::run_sssp(dev_, pin->dg, g.csr(), source,
                            gg::fixed_variant(policy.variant), eo);
        } else {
          rt::AdaptiveOptions ao = policy.options;
          if (policy.wants_pull()) ao.engine.csc = &g.csc();
          gr = rt::adaptive_sssp(dev_, pin->dg, g.csr(), source, ao);
        }
        r.dist = std::move(gr.dist);
        r.metrics = std::move(gr.metrics);
        return r;
      });
      if (out.ok()) {
        rcache_store(g, svc::Algo::sssp, source, 0.0, policy,
                     svc::Payload(out));
      }
      return out;
    }
  }
  return adaptive::sssp(dev_, g, source, policy);
}

CcResult Session::cc(const Graph& g, const Policy& policy) {
  if (policy.mode != Policy::Mode::cpu_serial) {
    if (const svc::Payload* hit =
            rcache_lookup(g, svc::Algo::cc, 0, 0.0, policy)) {
      return std::get<CcResult>(*hit);
    }
    if (!dev_.healthy()) {
      CcResult out = adaptive::cc(dev_, g, Policy::cpu().with_symmetrize(
                                               policy.symmetrize));
      out.degraded = true;
      if (out.ok()) {
        rcache_store(g, svc::Algo::cc, 0, 0.0, policy, svc::Payload(out));
      }
      return out;
    }
    if (is_registered(g)) {
      const graph::Csr& target = resolve_symmetric(g, policy);
      CcResult out = detail::run_guarded<CcResult>(dev_, [&] {
        Pin* pin = ensure_fresh(&target, target, false, g.version());
        if (!pin && &target != &g.csr()) {
          // First cc() on a registered directed graph: keep the symmetrized
          // CSR resident too, so repeat queries skip the upload.
          Pin derived;
          derived.dg = gg::DeviceGraph::upload(dev_, target, false);
          derived.with_weights = false;
          derived.version = g.version();
          pin = &pins_.emplace(&target, std::move(derived)).first->second;
          derived_[&g.csr()] = &target;
        }
        if (!pin) return adaptive::cc(dev_, g, policy);
        CcResult r;
        gg::GpuCcResult gr =
            policy.mode == Policy::Mode::fixed_variant
                ? gg::run_cc(dev_, pin->dg, target,
                             gg::fixed_variant(policy.variant),
                             policy.options.engine)
                : rt::adaptive_cc(dev_, pin->dg, target, policy.options);
        r.component = std::move(gr.component);
        r.num_components = gr.num_components;
        r.metrics = std::move(gr.metrics);
        return r;
      });
      if (out.ok()) {
        rcache_store(g, svc::Algo::cc, 0, 0.0, policy, svc::Payload(out));
      }
      return out;
    }
  }
  return adaptive::cc(dev_, g, policy);
}

MstResult Session::mst(const Graph& g, const Policy& policy) {
  if (policy.mode != Policy::Mode::cpu_serial && !dev_.healthy()) {
    MstResult out = adaptive::mst(dev_, g, Policy::cpu().with_symmetrize(
                                               policy.symmetrize));
    out.degraded = true;
    return out;
  }
  return adaptive::mst(dev_, g, policy);
}

PageRankResult Session::pagerank(const Graph& g, double damping,
                                 const Policy& policy) {
  if (policy.mode != Policy::Mode::cpu_serial) {
    if (const svc::Payload* hit =
            rcache_lookup(g, svc::Algo::pagerank, 0, damping, policy)) {
      return std::get<PageRankResult>(*hit);
    }
    if (!dev_.healthy()) {
      PageRankResult out = adaptive::pagerank(dev_, g, damping, Policy::cpu());
      out.degraded = true;
      if (out.ok()) {
        rcache_store(g, svc::Algo::pagerank, 0, damping, policy,
                     svc::Payload(out));
      }
      return out;
    }
    if (is_registered(g)) {
      PageRankResult out = detail::run_guarded<PageRankResult>(dev_, [&] {
        Pin* pin = ensure_fresh(&g.csr(), g.csr(), false, g.version());
        PageRankResult r;
        gg::PageRankOptions po;
        po.damping = damping;
        gg::GpuPageRankResult gr;
        if (policy.mode == Policy::Mode::fixed_variant) {
          po.engine = policy.options.engine;
          gr = gg::run_pagerank(dev_, pin->dg, g.csr(),
                                gg::fixed_variant(policy.variant), po);
        } else {
          gr = rt::adaptive_pagerank(dev_, pin->dg, g.csr(), po,
                                     policy.options);
        }
        r.rank.assign(gr.rank.begin(), gr.rank.end());
        r.metrics = std::move(gr.metrics);
        return r;
      });
      if (out.ok()) {
        rcache_store(g, svc::Algo::pagerank, 0, damping, policy,
                     svc::Payload(out));
      }
      return out;
    }
  }
  return adaptive::pagerank(dev_, g, damping, policy);
}

Session& Session::default_session() {
  thread_local Session session;
  return session;
}

}  // namespace adaptive
