// Algorithm entry points of the public API. Each call runs on a simulated
// GPU device: either one you pass in (sharing a device across calls keeps a
// cumulative clock and statistics), or — for the device-less convenience
// overloads — the calling thread's default Session (api/session.h), which
// keeps one device alive across calls. Prefer constructing a Session
// explicitly: it also keeps graphs resident on the device between queries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/graph_api.h"
#include "gpu_graph/metrics.h"
#include "gpu_graph/variant.h"
#include "runtime/adaptive_engine.h"
#include "simt/device.h"

namespace adaptive {

// Symmetrization policy for algorithms that require both arcs of every edge
// (cc, mst). auto_detect checks the graph (cached on adaptive::Graph) and
// symmetrizes only when needed; always/never skip the check and force the
// respective behavior. With `never`, the caller asserts the graph already
// stores both arcs — the result is otherwise arc-direction components.
enum class Symmetrize { auto_detect, always, never };

struct Policy {
  enum class Mode { adaptive, fixed_variant, cpu_serial };
  Mode mode = Mode::adaptive;
  gg::Variant variant{};          // used by fixed_variant
  rt::AdaptiveOptions options{};  // used by adaptive
  Symmetrize symmetrize = Symmetrize::auto_detect;  // cc()/mst() only

  static Policy adapt(rt::AdaptiveOptions opts = {}) {
    Policy p;
    p.mode = Mode::adaptive;
    p.options = std::move(opts);
    return p;
  }
  static Policy fixed(gg::Variant v) {
    Policy p;
    p.mode = Mode::fixed_variant;
    p.variant = v;
    return p;
  }
  // Accepts the paper's names, e.g. "U_B_QU".
  static Policy fixed(const std::string& variant_name) {
    return fixed(gg::parse_variant(variant_name));
  }
  static Policy cpu() {
    Policy p;
    p.mode = Mode::cpu_serial;
    return p;
  }
  Policy with_symmetrize(Symmetrize s) const {
    Policy p = *this;
    p.symmetrize = s;
    return p;
  }
  // Sets the traversal direction for BFS/SSSP/CC: on a fixed policy it pins
  // the variant's direction; on an adaptive policy Direction::adaptive
  // enables the direction-optimizing controller (Beamer push<->pull
  // hysteresis, alpha/beta knobs on options.thresholds).
  Policy with_direction(gg::Direction d) const {
    Policy p = *this;
    p.variant.direction = d;
    p.options.direction = d;
    return p;
  }
  // True when this policy can reach a pull (gather) iteration, i.e. when
  // the CSC view may be needed.
  bool wants_pull() const {
    if (mode == Mode::cpu_serial) return false;
    const gg::Direction d =
        mode == Mode::fixed_variant ? variant.direction : options.direction;
    return d != gg::Direction::push;
  }
};

enum class Status {
  ok,
  rejected,   // serving layer: admission control refused the query
  timed_out,  // serving layer: deadline exceeded (payload dropped)
  error,      // see Result::error / Result::code
};

// Typed error taxonomy. Failures that used to abort the process (device
// memory exhaustion) or surface as ad-hoc strings (serving-layer rejections)
// carry one of these so callers can branch without parsing messages.
enum class ErrorCode : std::uint8_t {
  none = 0,          // status != error (or error field unused)
  device_oom,        // simulated global memory exhausted / injected alloc fault
  transfer_failed,   // injected host<->device transfer fault
  kernel_fault,      // injected kernel-launch fault
  device_lost,       // permanent device death (fault plan dead.after)
  deadline_exceeded, // serving layer: modeled finish time passed the deadline
  queue_full,        // serving layer: admission control (bounded queue)
  invalid_argument,  // bad source node, unweighted sssp, unservable policy
  io_error,          // typed graph-loading failure (graph/io.h)
  internal,          // catch-all; see the error string
};

const char* error_code_name(ErrorCode code);  // "device_oom", ...
// Human-readable description of the code ("simulated device memory
// exhausted", ...), for messages that must stand without the error string.
const char* error_code_message(ErrorCode code);

// Non-aborting policy parsing for user-supplied strings: "adaptive", "cpu",
// or a variant name ("U_T_BM", optionally with a _PULL/_DO direction
// suffix). Malformed input returns the typed invalid_argument error in the
// envelope instead of aborting the process (Policy::fixed keeps the legacy
// abort contract for programmatic names).
struct ParsedPolicy {
  Policy policy{};
  Status status = Status::ok;
  ErrorCode code = ErrorCode::none;
  std::string error;
  bool ok() const { return status == Status::ok; }
};
ParsedPolicy parse_policy(const std::string& name);

// Every algorithm returns its payload plus this uniform envelope. The
// payload's fields are inherited, so result.level / result.dist /
// result.component read exactly as they did with the per-algorithm *Output
// structs (kept as aliases below for source compatibility).
template <typename Payload>
struct Result : Payload {
  gg::TraversalMetrics metrics;  // empty for cpu_serial runs
  double cpu_wall_ms = 0;        // only for cpu_serial runs
  Status status = Status::ok;
  std::string error;             // non-empty iff status == Status::error
  ErrorCode code = ErrorCode::none;  // typed cause when status != ok
  // True when the query was answered by the serial CPU oracle because the
  // device was unhealthy or deadline pressure ruled out a device run. The
  // payload is exact; metrics are empty and cpu_wall_ms is modeled.
  bool degraded = false;

  bool ok() const { return status == Status::ok; }

  // One attributable line for logs and test failures: the typed code plus
  // the context string ("device_lost: dev2: device fault: kernel 'bfs.expand'
  // at op 7 (device dead)"). Fleet paths prefix the device index / shard id
  // into `error`, so the message pinpoints the faulting component.
  std::string error_message() const {
    if (status == Status::ok) return "";
    std::string msg = error_code_name(code);
    msg += ": ";
    msg += error.empty() ? error_code_message(code) : error;
    return msg;
  }
};

struct BfsPayload {
  std::vector<std::uint32_t> level;  // kUnreachable where not reached
};
struct SsspPayload {
  std::vector<std::uint32_t> dist;
};
struct CcPayload {
  std::vector<std::uint32_t> component;  // smallest node id per component
  std::uint32_t num_components = 0;
};
struct MstPayload {
  std::uint64_t total_weight = 0;
  std::uint32_t num_trees = 0;
  std::uint32_t edges_in_forest = 0;
};
struct PageRankPayload {
  std::vector<double> rank;
};

using BfsResult = Result<BfsPayload>;
using SsspResult = Result<SsspPayload>;
using CcResult = Result<CcPayload>;
using MstResult = Result<MstPayload>;
using PageRankResult = Result<PageRankPayload>;

// Pre-Result<> spelling; prefer the *Result names in new code.
using BfsOutput = BfsResult;
using SsspOutput = SsspResult;
using CcOutput = CcResult;
using MstOutput = MstResult;
using PageRankOutput = PageRankResult;

BfsResult bfs(simt::Device& dev, const Graph& g, NodeId source,
              const Policy& policy = {});
SsspResult sssp(simt::Device& dev, const Graph& g, NodeId source,
                const Policy& policy = {});
// Weakly-connected components; policy.symmetrize controls reverse-arc
// closure (auto_detect by default — directed graphs are symmetrized first).
CcResult cc(simt::Device& dev, const Graph& g, const Policy& policy = {});
// Minimum spanning forest (Boruvka on the device, Kruskal on the CPU
// policy); policy.symmetrize as in cc().
MstResult mst(simt::Device& dev, const Graph& g, const Policy& policy = {});
// PageRank with damping knob; dangling mass absorbed (see
// cpu/pagerank_serial.h for the exact fixpoint).
PageRankResult pagerank(simt::Device& dev, const Graph& g,
                        double damping = 0.85, const Policy& policy = {});

// Device-less convenience overloads: thin wrappers over the calling thread's
// default Session (api/session.h). The session's device — and therefore its
// modeled clock and cumulative stats — persists across calls on the thread.
BfsResult bfs(const Graph& g, NodeId source, const Policy& policy = {});
SsspResult sssp(const Graph& g, NodeId source, const Policy& policy = {});
CcResult cc(const Graph& g, const Policy& policy = {});
PageRankResult pagerank(const Graph& g, double damping = 0.85,
                        const Policy& policy = {});
MstResult mst(const Graph& g, const Policy& policy = {});

namespace detail {

// Maps a device fault to the public taxonomy; permanent faults (dead
// device) collapse to device_lost regardless of the faulting op kind.
ErrorCode fault_code(const simt::DeviceFault& f);

// Runs a device-touching body, converting a DeviceFault into an error
// Result. Snapshot/reclaim brackets the body so buffers orphaned by the
// unwind do not leak simulated-memory accounting.
template <typename ResultT, typename Fn>
ResultT run_guarded(simt::Device& dev, Fn&& fn) {
  const std::uint64_t mark = dev.mem_mark();
  try {
    return fn();
  } catch (const simt::DeviceFault& f) {
    dev.mem_reclaim(mark);
    ResultT out;
    out.status = Status::error;
    out.code = fault_code(f);
    out.error = f.what();
    return out;
  }
}

}  // namespace detail

}  // namespace adaptive
