// Algorithm entry points of the public API. Each call runs on a simulated
// GPU device: either one you pass in (sharing a device across calls keeps a
// cumulative clock and statistics) or a fresh default Tesla C2070.
#pragma once

#include <vector>

#include "api/graph_api.h"
#include "gpu_graph/metrics.h"
#include "gpu_graph/variant.h"
#include "runtime/adaptive_engine.h"
#include "simt/device.h"

namespace adaptive {

struct Policy {
  enum class Mode { adaptive, fixed_variant, cpu_serial };
  Mode mode = Mode::adaptive;
  gg::Variant variant{};          // used by fixed_variant
  rt::AdaptiveOptions options{};  // used by adaptive

  static Policy adapt(rt::AdaptiveOptions opts = {}) {
    Policy p;
    p.mode = Mode::adaptive;
    p.options = std::move(opts);
    return p;
  }
  static Policy fixed(gg::Variant v) {
    Policy p;
    p.mode = Mode::fixed_variant;
    p.variant = v;
    return p;
  }
  // Accepts the paper's names, e.g. "U_B_QU".
  static Policy fixed(const std::string& variant_name) {
    return fixed(gg::parse_variant(variant_name));
  }
  static Policy cpu() {
    Policy p;
    p.mode = Mode::cpu_serial;
    return p;
  }
};

struct BfsOutput {
  std::vector<std::uint32_t> level;  // kUnreachable where not reached
  gg::TraversalMetrics metrics;      // empty for cpu_serial runs
  double cpu_wall_ms = 0;            // only for cpu_serial runs
};

struct SsspOutput {
  std::vector<std::uint32_t> dist;
  gg::TraversalMetrics metrics;
  double cpu_wall_ms = 0;
};

struct CcOutput {
  std::vector<std::uint32_t> component;  // smallest node id per component
  std::uint32_t num_components = 0;
  gg::TraversalMetrics metrics;
  double cpu_wall_ms = 0;
};

BfsOutput bfs(simt::Device& dev, const Graph& g, NodeId source,
              const Policy& policy = {});
SsspOutput sssp(simt::Device& dev, const Graph& g, NodeId source,
                const Policy& policy = {});
// Weakly-connected components. `symmetrize` adds reverse arcs first (needed
// for directed graphs); pass false when the graph already stores both arcs.
CcOutput cc(simt::Device& dev, const Graph& g, const Policy& policy = {},
            bool symmetrize = true);

struct MstOutput {
  std::uint64_t total_weight = 0;
  std::uint32_t num_trees = 0;
  std::uint32_t edges_in_forest = 0;
  gg::TraversalMetrics metrics;
  double cpu_wall_ms = 0;
};

// Minimum spanning forest (Boruvka on the device, Kruskal on the CPU
// policy). `symmetrize` as in cc().
MstOutput mst(simt::Device& dev, const Graph& g, const Policy& policy = {},
              bool symmetrize = true);

struct PageRankOutput {
  std::vector<double> rank;
  gg::TraversalMetrics metrics;
  double cpu_wall_ms = 0;
};

// PageRank with damping/tolerance knobs; dangling mass absorbed (see
// cpu/pagerank_serial.h for the exact fixpoint).
PageRankOutput pagerank(simt::Device& dev, const Graph& g,
                        double damping = 0.85, const Policy& policy = {});

// Convenience overloads running on a fresh default device.
BfsOutput bfs(const Graph& g, NodeId source, const Policy& policy = {});
SsspOutput sssp(const Graph& g, NodeId source, const Policy& policy = {});
CcOutput cc(const Graph& g, const Policy& policy = {}, bool symmetrize = true);
PageRankOutput pagerank(const Graph& g, double damping = 0.85,
                        const Policy& policy = {});
MstOutput mst(const Graph& g, const Policy& policy = {}, bool symmetrize = true);

}  // namespace adaptive
