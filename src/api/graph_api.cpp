#include "api/graph_api.h"

#include <atomic>
#include <utility>
#include <vector>

#include "graph/io.h"
#include "graph/transform.h"

namespace adaptive {

Graph::Graph(graph::Csr csr) : csr_(std::move(csr)) { csr_.validate(); }

std::uint64_t Graph::next_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Graph::Graph(const Graph& other)
    : csr_(other.csr_),
      version_(other.version_),
      stats_(other.stats_),
      symmetric_(other.symmetric_),
      weight_symmetric_(other.weight_symmetric_),
      symmetrized_(other.symmetrized_),
      csc_(other.csc_) {}

Graph& Graph::operator=(const Graph& other) {
  if (this == &other) return *this;
  csr_ = other.csr_;
  version_ = other.version_;
  stats_ = other.stats_;
  symmetric_ = other.symmetric_;
  weight_symmetric_ = other.weight_symmetric_;
  symmetrized_ = other.symmetrized_;
  csc_ = other.csc_;
  // Assignment replaces this object's contents wholesale: it is a new
  // registrable identity, exactly like a copy construction.
  uid_ = next_uid();
  return *this;
}

Graph Graph::from_csr(graph::Csr csr) { return Graph(std::move(csr)); }

Graph Graph::from_edges(std::uint32_t num_nodes,
                        std::initializer_list<graph::Edge> edges) {
  const std::vector<graph::Edge> list(edges);
  return Graph(graph::csr_from_edges(num_nodes, list));
}

Graph Graph::from_builder(const graph::GraphBuilder& builder) {
  return Graph(builder.build());
}

Graph Graph::load_dimacs(const std::string& path) {
  return Graph(graph::read_dimacs(path));
}

Graph Graph::load_snap(const std::string& path) {
  return Graph(graph::read_snap_edgelist(path));
}

Graph Graph::load_binary(const std::string& path) {
  return Graph(graph::read_binary(path));
}

const graph::GraphStats& Graph::stats() const {
  if (!stats_) stats_ = graph::GraphStats::compute(csr_);
  return *stats_;
}

bool Graph::is_symmetric() const {
  if (!symmetric_) symmetric_ = graph::is_symmetric(csr_);
  return *symmetric_;
}

bool Graph::is_weight_symmetric() const {
  if (!weight_symmetric_) {
    weight_symmetric_ =
        csr_.has_weights() ? graph::is_weight_symmetric(csr_) : is_symmetric();
  }
  return *weight_symmetric_;
}

const graph::Csr& Graph::symmetrized() const {
  if (is_symmetric()) return csr_;
  if (!symmetrized_) symmetrized_ = graph::symmetrize(csr_);
  return *symmetrized_;
}

const graph::Csr& Graph::csc() const {
  // A structurally symmetric graph is its own transpose only when the
  // weights agree arc-for-arc too: is_symmetric() ignores weights, and
  // transposing a weight-asymmetric graph permutes them. The explicit
  // weighted predicate makes the aliasing decision exact instead of
  // conservatively copying every weighted graph.
  if (is_weight_symmetric()) return csr_;
  if (!csc_) csc_ = graph::build_csc(csr_);
  return *csc_;
}

void Graph::set_uniform_weights(std::uint32_t lo, std::uint32_t hi,
                                std::uint64_t seed) {
  graph::assign_uniform_weights(csr_, lo, hi, seed);
  ++version_;
  stats_.reset();
  symmetric_.reset();
  weight_symmetric_.reset();
  symmetrized_.reset();
  csc_.reset();
}

void Graph::apply_delta(const graph::EdgeDelta& delta) {
  csr_ = graph::apply_delta(csr_, delta);
  ++version_;
  stats_.reset();
  symmetric_.reset();
  weight_symmetric_.reset();
  symmetrized_.reset();
  csc_.reset();
}

void Graph::save_binary(const std::string& path) const {
  graph::write_binary(csr_, path);
}

}  // namespace adaptive
