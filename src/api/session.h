// adaptive::Session — the primary entry point of the public API: a fleet of
// simulated devices (one by default) shared across calls, with graphs kept
// device-resident between queries.
//
//   adaptive::Session session;  // one default device
//   adaptive::Graph g = adaptive::Graph::from_edges(4, {{0,1},{1,2},{2,3}});
//   adaptive::GraphId id = session.register_graph(g);  // uploaded once
//   auto a = session.bfs(g, 0);         // no upload: graph is resident
//   auto b = session.sssp(g, 0);        // same resident CSR
//
//   // Multi-device: a ClusterSpec describes the fleet; registered graphs are
//   // replicated to every device and queries balance across them by
//   // earliest-modeled-ready-time.
//   adaptive::Session fleet(simt::ClusterSpec::homogeneous(
//       4, simt::DeviceProps::fermi_c2070()));
//
// Registration is keyed by Graph::uid() — a process-unique object identity —
// so re-creating a graph at a recycled address can never alias a stale
// registration. register_graph returns an opaque GraphId accepted by the
// id-taking query overloads; the Graph object must stay alive while
// registered. Mutating a registered graph (set_uniform_weights) is detected
// via Graph::version() and triggers a transparent re-upload on the next
// query. Queries on unregistered graphs work too — they upload/release per
// call, exactly like the free functions in api/algorithms.h.
//
// Fleet routing: each query runs on the healthy device whose default stream
// is ready earliest (ties: lowest ordinal). When a device dies mid-query
// (permanent fault), the query fails over to the next healthy device; the
// serial CPU oracle answers — with Result::degraded set — only when no
// healthy device remains. Cache hits and CPU work are charged to the modeled
// host/device-0 timelines, so single-device sessions behave exactly as
// before.
//
// Under memory pressure, evict() / evict_all() release the device copies
// while keeping registrations — the next query re-uploads transparently.
// enable_result_cache(bytes) additionally serves repeat queries on
// registered graphs from a byte-bounded LRU of completed exact results
// (service/result_cache.h) at modeled host-copy cost; Graph::version() bumps
// invalidate the graph's entries.
//
// The device-less convenience overloads (adaptive::bfs(g, s) etc.) are thin
// wrappers over Session::default_session(), a thread-local instance — so
// legacy call sites now share one device per thread instead of constructing
// a fresh one per call.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "api/algorithms.h"
#include "gpu_graph/device_graph.h"
#include "graph/incremental_cc.h"
#include "service/result_cache.h"
#include "simt/cluster.h"
#include "simt/device.h"

namespace adaptive {

// Opaque registration handle returned by Session::register_graph; stable for
// the lifetime of the registration, never reused within a session.
using GraphId = std::uint64_t;

class Session {
 public:
  // Primary constructor: the spec describes the whole fleet. An empty
  // ClusterSpec means a single default device (the historical behavior).
  explicit Session(const simt::ClusterSpec& spec = {});
  // Deprecated shim for the old positional (DeviceProps, TimingModel)
  // signature; forwards to ClusterSpec::single(props, tm).
  [[deprecated("use Session(simt::ClusterSpec)")]]
  explicit Session(const simt::DeviceProps& props,
                   simt::TimingModel tm = simt::TimingModel::fermi_default());
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Legacy accessors: device 0 of the fleet.
  simt::Device& device() { return fleet_.device(0); }
  const simt::Device& device() const { return fleet_.device(0); }
  simt::Fleet& fleet() { return fleet_; }
  std::uint32_t num_devices() const { return fleet_.size(); }

  // ---- residency ----
  // Uploads the graph's CSR (with weights when present) to every fleet
  // device and keeps the replicas resident until unregister_graph() or
  // destruction. Idempotent: re-registering an already-registered graph
  // refreshes it and returns its existing id.
  GraphId register_graph(const Graph& g);
  // Mutable registration: identical residency semantics, but additionally
  // entitles the session to mutate the graph in place via mutate_graph().
  // Non-const Graph lvalues resolve here automatically.
  GraphId register_graph(Graph& g);
  void unregister_graph(const Graph& g);
  void unregister_graph(GraphId id);
  bool is_registered(const Graph& g) const;
  bool is_registered(GraphId id) const { return regs_.count(id) > 0; }
  // The registration id of `g`, or 0 when unregistered.
  GraphId graph_id(const Graph& g) const;
  std::size_t num_registered() const { return regs_.size(); }

  // Releases the device copies of a registered graph (memory pressure) while
  // keeping the registration: the next query against it transparently
  // re-uploads. A lazily pinned symmetrized closure (cc) is dropped outright
  // — it is re-derived on demand. Cached results stay valid: eviction
  // changes residency, not answers.
  void evict(const Graph& g);
  void evict(GraphId id);
  // evict() for every registered graph; frees all device graph memory.
  void evict_all();
  // True when the graph is registered and its CSR is currently uploaded on
  // at least one device.
  bool is_resident(const Graph& g) const;

  // ---- mutation (ISSUE 9: dynamic graphs) ----
  // Applies a batched edge delta to a graph registered via the mutable
  // register_graph overload: bumps Graph::version(), incrementally patches
  // every resident device replica (dirty-region transfers; compacting
  // rebuild when the edge buffer capacity is exceeded) instead of the
  // re-upload a version mismatch would otherwise trigger, drops the stale
  // symmetrized closure per-structure, advances the incremental CC state,
  // and delta-invalidates the result cache — entries whose source component
  // is untouched by the delta survive under the new version. Aborts on an
  // inapplicable delta or a const registration.
  void mutate_graph(GraphId id, const graph::EdgeDelta& delta);
  void mutate_graph(Graph& g, const graph::EdgeDelta& delta);
  // The incremental CC labels of a registered graph (initialized lazily on
  // first use; byte-identical to cpu::connected_components on the current
  // CSR). Exposed for tests and delta-aware consumers.
  const graph::IncrementalCc& incremental_cc(GraphId id);

  // ---- result cache ----
  // Enables (capacity > 0) or disables (0) the session's query-result cache:
  // repeat queries on *registered* graphs with the same (graph id + version,
  // algo, source/params, policy) are answered from host memory at modeled
  // copy cost (svc::CacheCostModel) without touching any device. Off by
  // default.
  void enable_result_cache(std::size_t capacity_bytes);
  const svc::ResultCache<svc::Payload>& result_cache() const {
    return rcache_;
  }

  // ---- queries ----
  // Same semantics as the free functions (api/algorithms.h); registered
  // graphs skip the per-query upload, so metrics cover the traversal only.
  // On a fleet, the earliest-ready healthy device serves the query.
  BfsResult bfs(const Graph& g, NodeId source, const Policy& policy = {});
  SsspResult sssp(const Graph& g, NodeId source, const Policy& policy = {});
  // cc on a registered directed graph lazily uploads (and keeps) the
  // symmetrized CSR as well, so repeat queries stay resident.
  CcResult cc(const Graph& g, const Policy& policy = {});
  // MST contracts the graph in place on the device, so it has no resident
  // form; registration does not change its cost.
  MstResult mst(const Graph& g, const Policy& policy = {});
  PageRankResult pagerank(const Graph& g, double damping = 0.85,
                          const Policy& policy = {});

  // Id-taking overloads for callers that hold the opaque handle instead of
  // the Graph. The registration's Graph object must still be alive.
  BfsResult bfs(GraphId id, NodeId source, const Policy& policy = {});
  SsspResult sssp(GraphId id, NodeId source, const Policy& policy = {});
  CcResult cc(GraphId id, const Policy& policy = {});
  PageRankResult pagerank(GraphId id, double damping = 0.85,
                          const Policy& policy = {});

  // The calling thread's default session (constructed on first use).
  static Session& default_session();

 private:
  // One device's resident replica of a registered graph.
  struct Pin {
    gg::DeviceGraph dg;
    bool with_weights = false;
    std::uint64_t version = 0;
    // False after evict(): the registration survives but the device copy is
    // gone until the next query re-uploads.
    bool resident = true;
    // Lazily uploaded symmetrized closure for cc() on directed graphs.
    std::optional<gg::DeviceGraph> sym_dg;
    std::uint64_t sym_version = 0;
  };
  struct Registration {
    const Graph* g = nullptr;
    // Non-null only for graphs registered via the mutable overload; gates
    // mutate_graph.
    Graph* mutable_g = nullptr;
    std::uint64_t uid = 0;
    std::vector<Pin> pins;  // one per fleet device, ordinal-indexed
    // Weak-connectivity labels maintained across deltas; constructed on the
    // first mutate_graph / incremental_cc call.
    std::optional<graph::IncrementalCc> inc_cc;
  };
  static constexpr simt::DeviceIndex kNoDevice = ~simt::DeviceIndex{0};

  Registration* find_reg(const Graph& g);
  const Registration* find_reg(const Graph& g) const;
  const Graph& graph_for(GraphId id) const;
  // Earliest-ready healthy device (default-stream ready time, ties lowest
  // ordinal); kNoDevice when the whole fleet is dead.
  simt::DeviceIndex route_device() const;
  void release_pin(simt::DeviceIndex d, Pin& pin);
  // Refreshes device d's pin of `reg` (re-upload on eviction, version bump,
  // or missing weights); throws simt::DeviceFault on upload failure.
  Pin& ensure_fresh(Registration& reg, simt::DeviceIndex d, bool with_weights);
  // Device-resident symmetrized closure for cc(); `target` is the CSR the
  // query runs on (g.csr() when already symmetric).
  gg::DeviceGraph& ensure_sym(Registration& reg, simt::DeviceIndex d,
                              const graph::Csr& target);

  // One device attempt per algorithm; a device_lost error triggers failover
  // in the public entry points.
  BfsResult bfs_on(simt::DeviceIndex d, const Graph& g, NodeId source,
                   const Policy& policy);
  SsspResult sssp_on(simt::DeviceIndex d, const Graph& g, NodeId source,
                     const Policy& policy);
  CcResult cc_on(simt::DeviceIndex d, const Graph& g, const Policy& policy);
  PageRankResult pagerank_on(simt::DeviceIndex d, const Graph& g,
                             double damping, const Policy& policy);

  // ---- result cache plumbing ----
  // GraphId for registered graphs, uid otherwise — never an address, so a
  // recycled allocation cannot alias a cached answer.
  std::uint64_t rcache_graph_key(const Graph& g) const;
  // Invalidates stale entries when g's version moved since last seen.
  void rcache_refresh_version(const Graph& g);
  // Cached payload for the key (charging the modeled copy cost to device
  // 0's current stream) or nullptr; only registered graphs are served.
  const svc::Payload* rcache_lookup(const Graph& g, svc::Algo algo,
                                    NodeId source, double damping,
                                    const Policy& policy);
  // Stores a completed exact payload (no-op when the cache is off, the graph
  // is unregistered, or the result is not ok).
  void rcache_store(const Graph& g, svc::Algo algo, NodeId source,
                    double damping, const Policy& policy,
                    svc::Payload payload);

  simt::Fleet fleet_;
  std::map<GraphId, Registration> regs_;
  std::map<std::uint64_t, GraphId> by_uid_;
  GraphId next_graph_id_ = 1;
  svc::ResultCache<svc::Payload> rcache_{0};  // disabled until enabled
  svc::CacheCostModel rcache_cost_{};
  // Last Graph::version() seen per registered graph, for eager invalidation.
  std::map<std::uint64_t, std::uint64_t> rcache_versions_;  // uid -> version
};

}  // namespace adaptive
