// adaptive::Session — the primary entry point of the public API: one
// simulated device shared across calls, with graphs kept device-resident
// between queries.
//
//   adaptive::Session session;
//   adaptive::Graph g = adaptive::Graph::from_edges(4, {{0,1},{1,2},{2,3}});
//   session.register_graph(g);          // uploaded once
//   auto a = session.bfs(g, 0);         // no upload: graph is resident
//   auto b = session.sssp(g, 0);        // same resident CSR
//
// Registration is keyed by the graph's CSR storage address, so the Graph
// object must stay alive (and un-moved) while registered; mutating a
// registered graph (set_uniform_weights) is detected via Graph::version()
// and triggers a transparent re-upload on the next query. Queries on
// unregistered graphs work too — they upload/release per call, exactly like
// the free functions in api/algorithms.h.
//
// Under memory pressure, evict() / evict_all() release the device copies
// while keeping registrations — the next query re-uploads transparently.
// enable_result_cache(bytes) additionally serves repeat queries on
// registered graphs from a byte-bounded LRU of completed exact results
// (service/result_cache.h) at modeled host-copy cost; Graph::version() bumps
// invalidate the graph's entries.
//
// The device-less convenience overloads (adaptive::bfs(g, s) etc.) are thin
// wrappers over Session::default_session(), a thread-local instance — so
// legacy call sites now share one device per thread instead of constructing
// a fresh one per call.
#pragma once

#include <cstdint>
#include <map>

#include "api/algorithms.h"
#include "gpu_graph/device_graph.h"
#include "service/result_cache.h"
#include "simt/device.h"

namespace adaptive {

class Session {
 public:
  explicit Session(const simt::DeviceProps& props = simt::DeviceProps::fermi_c2070(),
                   simt::TimingModel tm = simt::TimingModel::fermi_default());
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  simt::Device& device() { return dev_; }
  const simt::Device& device() const { return dev_; }

  // ---- residency ----
  // Uploads the graph's CSR (with weights when present) and keeps it
  // resident until unregister_graph() or destruction. Idempotent.
  void register_graph(const Graph& g);
  void unregister_graph(const Graph& g);
  bool is_registered(const Graph& g) const;
  std::size_t num_registered() const { return pins_.size(); }

  // Releases the device copies of a registered graph (memory pressure) while
  // keeping the registration: the next query against it transparently
  // re-uploads. A lazily pinned symmetrized closure (cc) is dropped outright
  // — it is re-derived on demand. Cached results stay valid: eviction
  // changes residency, not answers.
  void evict(const Graph& g);
  // evict() for every registered graph; frees all device graph memory.
  void evict_all();
  // True when the graph is registered and its CSR is currently uploaded.
  bool is_resident(const Graph& g) const;

  // ---- result cache ----
  // Enables (capacity > 0) or disables (0) the session's query-result cache:
  // repeat queries on *registered* graphs with the same (graph version,
  // algo, source/params, policy) are answered from host memory at modeled
  // copy cost (svc::CacheCostModel) without touching the device. Version
  // bumps (Graph mutation) invalidate. Off by default.
  void enable_result_cache(std::size_t capacity_bytes);
  const svc::ResultCache<svc::Payload>& result_cache() const {
    return rcache_;
  }

  // ---- queries ----
  // Same semantics as the free functions (api/algorithms.h); registered
  // graphs skip the per-query upload, so metrics cover the traversal only.
  BfsResult bfs(const Graph& g, NodeId source, const Policy& policy = {});
  SsspResult sssp(const Graph& g, NodeId source, const Policy& policy = {});
  // cc on a registered directed graph lazily uploads (and keeps) the
  // symmetrized CSR as well, so repeat queries stay resident.
  CcResult cc(const Graph& g, const Policy& policy = {});
  // MST contracts the graph in place on the device, so it has no resident
  // form; registration does not change its cost.
  MstResult mst(const Graph& g, const Policy& policy = {});
  PageRankResult pagerank(const Graph& g, double damping = 0.85,
                          const Policy& policy = {});

  // The calling thread's default session (constructed on first use).
  static Session& default_session();

 private:
  struct Pin {
    gg::DeviceGraph dg;
    bool with_weights = false;
    std::uint64_t version = 0;
    // False after evict(): the registration survives but the device copy is
    // gone until the next query re-uploads.
    bool resident = true;
  };

  // Returns the pin for `key` (uploading or refreshing a stale or evicted
  // one) when `key` belongs to a registered graph; nullptr when
  // unregistered.
  Pin* ensure_fresh(const graph::Csr* key, const graph::Csr& csr,
                    bool with_weights, std::uint64_t version);

  // ---- result cache plumbing ----
  std::uint64_t rcache_graph_key(const Graph& g) const;
  // Invalidates stale entries when g's version moved since last seen.
  void rcache_refresh_version(const Graph& g);
  // Cached payload for the key (charging the modeled copy cost to the
  // device's current stream) or nullptr; only registered graphs are served.
  const svc::Payload* rcache_lookup(const Graph& g, svc::Algo algo,
                                    NodeId source, double damping,
                                    const Policy& policy);
  // Stores a completed exact payload (no-op when the cache is off, the graph
  // is unregistered, or the result is not ok).
  void rcache_store(const Graph& g, svc::Algo algo, NodeId source,
                    double damping, const Policy& policy,
                    svc::Payload payload);

  simt::Device dev_;
  std::map<const graph::Csr*, Pin> pins_;
  // base-graph key -> key of its lazily pinned symmetrized CSR (cc()).
  std::map<const graph::Csr*, const graph::Csr*> derived_;
  svc::ResultCache<svc::Payload> rcache_{0};  // disabled until enabled
  svc::CacheCostModel rcache_cost_{};
  // Last Graph::version() seen per registered CSR, for eager invalidation.
  std::map<const graph::Csr*, std::uint64_t> rcache_versions_;
};

}  // namespace adaptive
