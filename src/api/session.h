// adaptive::Session — the primary entry point of the public API: one
// simulated device shared across calls, with graphs kept device-resident
// between queries.
//
//   adaptive::Session session;
//   adaptive::Graph g = adaptive::Graph::from_edges(4, {{0,1},{1,2},{2,3}});
//   session.register_graph(g);          // uploaded once
//   auto a = session.bfs(g, 0);         // no upload: graph is resident
//   auto b = session.sssp(g, 0);        // same resident CSR
//
// Registration is keyed by the graph's CSR storage address, so the Graph
// object must stay alive (and un-moved) while registered; mutating a
// registered graph (set_uniform_weights) is detected via Graph::version()
// and triggers a transparent re-upload on the next query. Queries on
// unregistered graphs work too — they upload/release per call, exactly like
// the free functions in api/algorithms.h.
//
// The device-less convenience overloads (adaptive::bfs(g, s) etc.) are thin
// wrappers over Session::default_session(), a thread-local instance — so
// legacy call sites now share one device per thread instead of constructing
// a fresh one per call.
#pragma once

#include <cstdint>
#include <map>

#include "api/algorithms.h"
#include "gpu_graph/device_graph.h"
#include "simt/device.h"

namespace adaptive {

class Session {
 public:
  explicit Session(const simt::DeviceProps& props = simt::DeviceProps::fermi_c2070(),
                   simt::TimingModel tm = simt::TimingModel::fermi_default());
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  simt::Device& device() { return dev_; }
  const simt::Device& device() const { return dev_; }

  // ---- residency ----
  // Uploads the graph's CSR (with weights when present) and keeps it
  // resident until unregister_graph() or destruction. Idempotent.
  void register_graph(const Graph& g);
  void unregister_graph(const Graph& g);
  bool is_registered(const Graph& g) const;
  std::size_t num_registered() const { return pins_.size(); }

  // ---- queries ----
  // Same semantics as the free functions (api/algorithms.h); registered
  // graphs skip the per-query upload, so metrics cover the traversal only.
  BfsResult bfs(const Graph& g, NodeId source, const Policy& policy = {});
  SsspResult sssp(const Graph& g, NodeId source, const Policy& policy = {});
  // cc on a registered directed graph lazily uploads (and keeps) the
  // symmetrized CSR as well, so repeat queries stay resident.
  CcResult cc(const Graph& g, const Policy& policy = {});
  // MST contracts the graph in place on the device, so it has no resident
  // form; registration does not change its cost.
  MstResult mst(const Graph& g, const Policy& policy = {});
  PageRankResult pagerank(const Graph& g, double damping = 0.85,
                          const Policy& policy = {});

  // The calling thread's default session (constructed on first use).
  static Session& default_session();

 private:
  struct Pin {
    gg::DeviceGraph dg;
    bool with_weights = false;
    std::uint64_t version = 0;
  };

  // Returns the pin for `key` (uploading or refreshing a stale one) when
  // `key` belongs to a registered graph; nullptr when unregistered.
  Pin* ensure_fresh(const graph::Csr* key, const graph::Csr& csr,
                    bool with_weights, std::uint64_t version);

  simt::Device dev_;
  std::map<const graph::Csr*, Pin> pins_;
  // base-graph key -> key of its lazily pinned symmetrized CSR (cc()).
  std::map<const graph::Csr*, const graph::Csr*> derived_;
};

}  // namespace adaptive
