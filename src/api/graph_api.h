// Public API (paper Fig. 10, "Graph API" layer): an abstract graph data type
// with primitives to define/instantiate graphs plus BFS/SSSP entry points
// (api/algorithms.h) that route through the adaptive runtime.
//
// Quickstart:
//
//   adaptive::Graph g = adaptive::Graph::from_edges(4, {{0,1},{1,2},{2,3}});
//   auto bfs = adaptive::bfs(g, /*source=*/0);            // adaptive policy
//   auto fixed = adaptive::bfs(g, 0, adaptive::Policy::fixed("U_T_BM"));
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>

#include "graph/builder.h"
#include "graph/csr.h"
#include "graph/delta.h"
#include "graph/graph_stats.h"

namespace adaptive {

using NodeId = graph::NodeId;
inline constexpr std::uint32_t kUnreachable = graph::kInfinity;

class Graph {
 public:
  // ---- construction ----
  static Graph from_csr(graph::Csr csr);
  static Graph from_edges(std::uint32_t num_nodes,
                          std::initializer_list<graph::Edge> edges);
  static Graph from_builder(const graph::GraphBuilder& builder);
  // File loaders (see graph/io.h for the formats).
  static Graph load_dimacs(const std::string& path);
  static Graph load_snap(const std::string& path);
  static Graph load_binary(const std::string& path);

  // ---- inspection ----
  std::uint32_t num_nodes() const { return csr_.num_nodes; }
  std::uint64_t num_edges() const { return csr_.num_edges(); }
  bool is_weighted() const { return csr_.has_weights(); }
  const graph::Csr& csr() const { return csr_; }
  // Computed lazily on first use and cached.
  const graph::GraphStats& stats() const;
  // True iff every arc has its reverse arc stored (the precondition of
  // cc()/mst()); computed lazily and cached alongside stats(). Structural
  // only — weights are not consulted (see is_weight_symmetric).
  bool is_symmetric() const;
  // True iff every arc has its reverse arc stored WITH the same weight;
  // equals is_symmetric() on unweighted graphs. This is the predicate that
  // decides whether csc() may alias csr() on weighted graphs.
  bool is_weight_symmetric() const;
  // The symmetrized CSR (both arcs per edge), computed lazily on first use
  // and cached — repeated cc()/mst() calls pay the O(m) closure once. When
  // the graph is already symmetric this returns csr() itself (no copy).
  const graph::Csr& symmetrized() const;
  // The CSC (in-neighbor) view that the pull/direction-optimizing kernels
  // gather over, computed lazily on first use and cached alongside the
  // symmetrized closure. When the graph is symmetric the CSC equals the CSR
  // and this returns csr() itself (no copy). Invalidated on mutation.
  const graph::Csr& csc() const;
  // A deterministic well-connected source (max outdegree).
  NodeId default_source() const { return graph::suggest_source(csr_); }
  // Bumped on every mutation; lets device-resident uploads (Session, the
  // serving layer) detect a stale registration.
  std::uint64_t version() const { return version_; }
  // Stable process-unique identity of this Graph object, used by Session
  // registrations and result-cache keys. A copy receives a fresh uid (it is a
  // distinct registrable object); a move keeps the uid (identity transfers).
  // Replaces address-based keying, which aliased whenever a new graph reused
  // a destroyed graph's storage address.
  std::uint64_t uid() const { return uid_; }

  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;
  ~Graph() = default;

  // ---- mutation ----
  // Assigns pseudo-random integer edge weights (needed before sssp()).
  void set_uniform_weights(std::uint32_t lo, std::uint32_t hi,
                           std::uint64_t seed = 2013);

  // Applies a batched edge mutation (graph/delta.h) atomically: the CSR is
  // replaced by the canonical graph::apply_delta result, version() is
  // bumped, and every cached derived structure (stats, symmetry flags,
  // symmetrized closure, CSC) is invalidated. Aborts on an inapplicable
  // delta — validate with graph::delta_error first for untrusted input.
  void apply_delta(const graph::EdgeDelta& delta);

  void save_binary(const std::string& path) const;

 private:
  explicit Graph(graph::Csr csr);
  static std::uint64_t next_uid();
  graph::Csr csr_;
  std::uint64_t version_ = 0;
  std::uint64_t uid_ = next_uid();
  mutable std::optional<graph::GraphStats> stats_;
  mutable std::optional<bool> symmetric_;
  mutable std::optional<bool> weight_symmetric_;
  mutable std::optional<graph::Csr> symmetrized_;  // empty when symmetric
  mutable std::optional<graph::Csr> csc_;          // empty when symmetric
};

}  // namespace adaptive
