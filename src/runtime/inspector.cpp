#include "runtime/inspector.h"

// GraphInspector is header-only; this TU anchors it in the library.
namespace rt {
static_assert(sizeof(GraphInspector) > 0);
}
