// Empirical threshold tuning (paper Sec. VII.B): sweeps the T3 fraction (and
// optionally the monitoring interval R) on a given graph and reports the
// execution-time curve plus the best setting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"
#include "runtime/adaptive_engine.h"

namespace rt {

struct SweepPoint {
  double value;     // the swept parameter (T3 fraction or R)
  double time_us;   // adaptive SSSP or BFS execution time at that setting
};

struct SweepResult {
  std::vector<SweepPoint> curve;
  double best_value = 0;
  double best_time_us = 0;
};

enum class TunedAlgorithm { bfs, sssp };

// Runs the adaptive engine at each T3 fraction; the rest of the options is
// taken from `base`.
SweepResult sweep_t3(simt::Device& dev, const graph::Csr& g, graph::NodeId source,
                     std::span<const double> fractions, TunedAlgorithm algo,
                     const AdaptiveOptions& base = {});

// Runs the adaptive engine at each monitoring interval R (Sec. VI.E).
SweepResult sweep_monitor_interval(simt::Device& dev, const graph::Csr& g,
                                   graph::NodeId source,
                                   std::span<const std::uint32_t> intervals,
                                   TunedAlgorithm algo,
                                   const AdaptiveOptions& base = {});

}  // namespace rt
