#include "runtime/adaptive_engine.h"

#include <memory>
#include <string>

#include "trace/trace_sink.h"

namespace rt {
namespace {

gg::EngineOptions engine_opts(const AdaptiveOptions& opts) {
  gg::EngineOptions eo = opts.engine;
  eo.monitor_interval = opts.monitor_interval == 0 ? 1 : opts.monitor_interval;
  return eo;
}

Thresholds effective_thresholds(simt::Device& dev, const AdaptiveOptions& opts) {
  if (opts.thresholds_overridden) return opts.thresholds;
  Thresholds t = Thresholds::for_device(dev.props(), opts.engine.thread_tpb,
                                        opts.thresholds.t3_fraction);
  // The direction knobs are not device-derived; they always flow from the
  // caller so --do-alpha/--do-beta work without pinning T1/T2.
  t.do_alpha = opts.thresholds.do_alpha;
  t.do_beta = opts.thresholds.do_beta;
  return t;
}

// Cold path of the selector's trace::active() branch: one DecisionEvent per
// decision point, stamped with the modeled-clock high-water mark (the
// selector has no Device handle).
void emit_decision(const Thresholds& t, std::uint32_t interval,
                   const char* algo, const gg::SelectorInput& in,
                   const gg::Variant& chosen, std::string& prev_variant) {
  auto& tracer = trace::Tracer::instance();
  std::string name = gg::variant_name(chosen);
  if (tracer.has_sinks()) {
    trace::DecisionEvent ev;
    ev.algo = algo;
    ev.iteration = in.iteration;
    ev.ws_size = in.ws_size;
    ev.avg_outdegree = in.avg_outdegree;
    ev.outdeg_stddev = in.outdeg_stddev;
    ev.num_nodes = in.num_nodes;
    ev.t1 = t.t1_avg_outdegree;
    ev.t2 = t.t2_ws_size;
    ev.t3_fraction = t.t3_fraction;
    ev.t3 = static_cast<std::uint64_t>(t.t3_fraction * in.num_nodes);
    ev.skew_weight = t.skew_weight;
    ev.direction = gg::direction_name(chosen.direction);
    ev.frontier_edges = in.frontier_edges;
    ev.unexplored_edges = in.unexplored_edges;
    ev.do_alpha = t.do_alpha;
    ev.do_beta = t.do_beta;
    ev.interval = interval;
    ev.prev_variant = prev_variant;
    ev.variant = name;
    ev.switched = !prev_variant.empty() && prev_variant != name;
    ev.ts_us = tracer.time_us();
    tracer.decision(std::move(ev));
  }
  prev_variant = std::move(name);
}

}  // namespace

gg::VariantSelector make_adaptive_selector(const Thresholds& thresholds) {
  return make_adaptive_selector(thresholds, 1, "adaptive");
}

gg::VariantSelector make_adaptive_selector(const Thresholds& thresholds,
                                           std::uint32_t interval,
                                           const char* algo,
                                           gg::Direction direction) {
  // The engine copies the selector; the prev-variant state is shared across
  // copies so the switch flag tracks the single underlying traversal.
  auto prev = std::make_shared<std::string>();
  return [thresholds, interval, algo, direction, prev](const gg::SelectorInput& in) {
    gg::Variant v = decide(thresholds, in.ws_size, in.avg_outdegree,
                           in.num_nodes, in.outdeg_stddev);
    if (direction == gg::Direction::adaptive) {
      // Direction-optimizing controller: pure hysteresis over the engine's
      // own frontier bookkeeping (in.direction is what is currently running,
      // so the state round-trips through the engine, not the selector).
      v.direction = decide_direction(thresholds, in.direction,
                                     in.frontier_edges, in.unexplored_edges,
                                     in.num_nodes);
    } else {
      v.direction = direction;
    }
    // Canonicalize before tracing so the logged variant is what executes.
    v = gg::normalize_direction(v);
    if (trace::active()) {
      emit_decision(thresholds, interval, algo, in, v, *prev);
    }
    return v;
  };
}

gg::GpuBfsResult adaptive_bfs(simt::Device& dev, const graph::Csr& g,
                              graph::NodeId source, const AdaptiveOptions& opts) {
  const Thresholds t = effective_thresholds(dev, opts);
  const gg::EngineOptions eo = engine_opts(opts);
  return gg::run_bfs(
      dev, g, source,
      make_adaptive_selector(t, eo.monitor_interval, "bfs", opts.direction), eo);
}

gg::GpuSsspResult adaptive_sssp(simt::Device& dev, const graph::Csr& g,
                                graph::NodeId source, const AdaptiveOptions& opts) {
  const Thresholds t = effective_thresholds(dev, opts);
  const gg::EngineOptions eo = engine_opts(opts);
  return gg::run_sssp(
      dev, g, source,
      make_adaptive_selector(t, eo.monitor_interval, "sssp", opts.direction), eo);
}

gg::GpuCcResult adaptive_cc(simt::Device& dev, const graph::Csr& g,
                            const AdaptiveOptions& opts) {
  const Thresholds t = effective_thresholds(dev, opts);
  const gg::EngineOptions eo = engine_opts(opts);
  return gg::run_cc(
      dev, g,
      make_adaptive_selector(t, eo.monitor_interval, "cc", opts.direction), eo);
}

gg::GpuMstResult adaptive_mst(simt::Device& dev, const graph::Csr& g,
                              const AdaptiveOptions& opts) {
  const Thresholds t = effective_thresholds(dev, opts);
  const gg::EngineOptions eo = engine_opts(opts);
  return gg::run_mst(dev, g, make_adaptive_selector(t, eo.monitor_interval, "mst"),
                     eo);
}

gg::GpuPageRankResult adaptive_pagerank(simt::Device& dev, const graph::Csr& g,
                                        const gg::PageRankOptions& pr,
                                        const AdaptiveOptions& opts) {
  const Thresholds t = effective_thresholds(dev, opts);
  gg::PageRankOptions options = pr;
  options.engine = engine_opts(opts);
  return gg::run_pagerank(
      dev, g,
      make_adaptive_selector(t, options.engine.monitor_interval, "pagerank"),
      options);
}

gg::GpuBfsResult adaptive_bfs(simt::Device& dev, gg::DeviceGraph& dg,
                              const graph::Csr& g, graph::NodeId source,
                              const AdaptiveOptions& opts) {
  const Thresholds t = effective_thresholds(dev, opts);
  const gg::EngineOptions eo = engine_opts(opts);
  return gg::run_bfs(
      dev, dg, g, source,
      make_adaptive_selector(t, eo.monitor_interval, "bfs", opts.direction), eo);
}

gg::GpuSsspResult adaptive_sssp(simt::Device& dev, gg::DeviceGraph& dg,
                                const graph::Csr& g, graph::NodeId source,
                                const AdaptiveOptions& opts) {
  const Thresholds t = effective_thresholds(dev, opts);
  const gg::EngineOptions eo = engine_opts(opts);
  return gg::run_sssp(
      dev, dg, g, source,
      make_adaptive_selector(t, eo.monitor_interval, "sssp", opts.direction), eo);
}

gg::GpuCcResult adaptive_cc(simt::Device& dev, gg::DeviceGraph& dg,
                            const graph::Csr& g, const AdaptiveOptions& opts) {
  const Thresholds t = effective_thresholds(dev, opts);
  const gg::EngineOptions eo = engine_opts(opts);
  return gg::run_cc(
      dev, dg, g,
      make_adaptive_selector(t, eo.monitor_interval, "cc", opts.direction), eo);
}

gg::GpuPageRankResult adaptive_pagerank(simt::Device& dev, gg::DeviceGraph& dg,
                                        const graph::Csr& g,
                                        const gg::PageRankOptions& pr,
                                        const AdaptiveOptions& opts) {
  const Thresholds t = effective_thresholds(dev, opts);
  gg::PageRankOptions options = pr;
  options.engine = engine_opts(opts);
  return gg::run_pagerank(
      dev, dg, g,
      make_adaptive_selector(t, options.engine.monitor_interval, "pagerank"),
      options);
}

gg::GpuBfsMultiResult adaptive_bfs_multi(simt::Device& dev, gg::DeviceGraph& dg,
                                         const graph::Csr& g,
                                         std::span<const graph::NodeId> sources,
                                         const AdaptiveOptions& opts) {
  const Thresholds t = effective_thresholds(dev, opts);
  const gg::EngineOptions eo = engine_opts(opts);
  return gg::run_bfs_multi(
      dev, dg, g, sources,
      make_adaptive_selector(t, eo.monitor_interval, "msbfs"), eo);
}

}  // namespace rt
