#include "runtime/adaptive_engine.h"

namespace rt {
namespace {

gg::EngineOptions engine_opts(const AdaptiveOptions& opts) {
  gg::EngineOptions eo = opts.engine;
  eo.monitor_interval = opts.monitor_interval == 0 ? 1 : opts.monitor_interval;
  return eo;
}

Thresholds effective_thresholds(simt::Device& dev, const AdaptiveOptions& opts) {
  if (opts.thresholds_overridden) return opts.thresholds;
  return Thresholds::for_device(dev.props(), opts.engine.thread_tpb,
                                opts.thresholds.t3_fraction);
}

}  // namespace

gg::VariantSelector make_adaptive_selector(const Thresholds& thresholds) {
  return [thresholds](const gg::SelectorInput& in) {
    return decide(thresholds, in.ws_size, in.avg_outdegree, in.num_nodes,
                  in.outdeg_stddev);
  };
}

gg::GpuBfsResult adaptive_bfs(simt::Device& dev, const graph::Csr& g,
                              graph::NodeId source, const AdaptiveOptions& opts) {
  const Thresholds t = effective_thresholds(dev, opts);
  return gg::run_bfs(dev, g, source, make_adaptive_selector(t), engine_opts(opts));
}

gg::GpuSsspResult adaptive_sssp(simt::Device& dev, const graph::Csr& g,
                                graph::NodeId source, const AdaptiveOptions& opts) {
  const Thresholds t = effective_thresholds(dev, opts);
  return gg::run_sssp(dev, g, source, make_adaptive_selector(t), engine_opts(opts));
}

gg::GpuCcResult adaptive_cc(simt::Device& dev, const graph::Csr& g,
                            const AdaptiveOptions& opts) {
  const Thresholds t = effective_thresholds(dev, opts);
  return gg::run_cc(dev, g, make_adaptive_selector(t), engine_opts(opts));
}

gg::GpuMstResult adaptive_mst(simt::Device& dev, const graph::Csr& g,
                              const AdaptiveOptions& opts) {
  const Thresholds t = effective_thresholds(dev, opts);
  return gg::run_mst(dev, g, make_adaptive_selector(t), engine_opts(opts));
}

gg::GpuPageRankResult adaptive_pagerank(simt::Device& dev, const graph::Csr& g,
                                        const gg::PageRankOptions& pr,
                                        const AdaptiveOptions& opts) {
  const Thresholds t = effective_thresholds(dev, opts);
  gg::PageRankOptions options = pr;
  options.engine = engine_opts(opts);
  return gg::run_pagerank(dev, g, make_adaptive_selector(t), options);
}

}  // namespace rt
