#include "runtime/decision.h"

namespace rt {

Thresholds Thresholds::for_device(const simt::DeviceProps& props,
                                  std::uint32_t thread_tpb, double t3_fraction) {
  Thresholds t;
  t.t1_avg_outdegree = simt::kWarpSize;  // Sec. VII.B: "we set T1 to 32"
  t.t2_ws_size = static_cast<double>(thread_tpb) * props.num_sms;
  t.t3_fraction = t3_fraction;
  return t;
}

gg::Variant decide(const Thresholds& t, std::uint64_t ws_size, double avg_outdegree,
                   std::uint32_t num_nodes, double outdeg_stddev) {
  gg::Variant v;
  v.ordering = gg::Ordering::unordered;  // Sec. VI.A: adaptive pool is unordered

  const auto ws = static_cast<double>(ws_size);
  if (ws < t.t2_ws_size) {
    // Left of T2: too little coarse-grained parallelism for thread mapping,
    // and a bitmap over N nodes would be nearly all waste.
    v.mapping = gg::Mapping::block;
    v.repr = gg::WorksetRepr::queue;
    return v;
  }
  const double effective_outdegree =
      avg_outdegree + t.skew_weight * outdeg_stddev;
  v.mapping = effective_outdegree < t.t1_avg_outdegree ? gg::Mapping::thread
                                                       : gg::Mapping::block;
  const double t3 = t.t3_fraction * static_cast<double>(num_nodes);
  v.repr = ws > t3 ? gg::WorksetRepr::bitmap : gg::WorksetRepr::queue;
  return v;
}

gg::Direction decide_direction(const Thresholds& t, gg::Direction current,
                               std::uint64_t frontier_edges,
                               std::uint64_t unexplored_edges,
                               std::uint32_t num_nodes) {
  // Modeled cost of one gather iteration: a dense sweep over every vertex
  // plus the unexplored in-edges it still has to read. A scatter iteration
  // costs the frontier's out-edges — with contended atomics, which is what
  // pull saves. Flip to pull when the scatter mass covers do_alpha of the
  // gather volume; flip back once it drains below the (much lower) do_beta
  // band. The gap between the two is the hysteresis that keeps a post-peak
  // frontier pulling and makes push<->pull<->push thrash impossible.
  const double gather_volume =
      static_cast<double>(unexplored_edges) + static_cast<double>(num_nodes);
  const double scatter_mass = static_cast<double>(frontier_edges);
  if (current != gg::Direction::pull) {
    return scatter_mass > t.do_alpha * gather_volume ? gg::Direction::pull
                                                     : gg::Direction::push;
  }
  return scatter_mass < t.do_beta * gather_volume ? gg::Direction::push
                                                  : gg::Direction::pull;
}

bool choose_cpu_fallback(const FallbackInput& in) {
  if (!in.device_healthy) return true;
  if (in.deadline_us <= 0) return false;
  const double deadline = in.submit_us + in.deadline_us;
  if (in.gpu_start_us <= deadline) return false;
  // The GPU cannot even start in time; the CPU is the only path that might
  // still meet the deadline.
  return in.cpu_start_us + in.cpu_estimate_us <= deadline;
}

}  // namespace rt
