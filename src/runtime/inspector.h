// The graph inspector (paper Sec. VI.A / VI.E): computes the static topology
// attributes once per graph and carries the runtime monitoring policy. The
// per-iteration monitored attribute (working-set size) flows through the
// engines' SelectorInput; the inspector decides how often it is refreshed
// (sampling) and exposes the whole-graph average outdegree used in place of
// the per-frontier average (the paper's overhead reduction (i)).
#pragma once

#include <cstdint>

#include "graph/csr.h"
#include "graph/graph_stats.h"

namespace rt {

class GraphInspector {
 public:
  explicit GraphInspector(const graph::Csr& g)
      : stats_(graph::GraphStats::compute(g)) {}

  const graph::GraphStats& stats() const { return stats_; }
  double avg_outdegree() const { return stats_.outdeg_avg; }
  std::uint32_t num_nodes() const { return stats_.num_nodes; }
  std::uint64_t num_edges() const { return stats_.num_edges; }

  // Sampling interval R for working-set monitoring (Sec. VI.E (ii)).
  std::uint32_t monitor_interval() const { return monitor_interval_; }
  void set_monitor_interval(std::uint32_t r) { monitor_interval_ = r == 0 ? 1 : r; }

 private:
  graph::GraphStats stats_;
  std::uint32_t monitor_interval_ = 1;
};

}  // namespace rt
