#include "runtime/tuner.h"

#include <limits>

namespace rt {
namespace {

double run_once(simt::Device& dev, const graph::Csr& g, graph::NodeId source,
                TunedAlgorithm algo, const AdaptiveOptions& opts) {
  if (algo == TunedAlgorithm::bfs) {
    return adaptive_bfs(dev, g, source, opts).metrics.total_us;
  }
  return adaptive_sssp(dev, g, source, opts).metrics.total_us;
}

}  // namespace

SweepResult sweep_t3(simt::Device& dev, const graph::Csr& g, graph::NodeId source,
                     std::span<const double> fractions, TunedAlgorithm algo,
                     const AdaptiveOptions& base) {
  SweepResult result;
  result.best_time_us = std::numeric_limits<double>::infinity();
  for (const double f : fractions) {
    AdaptiveOptions opts = base;
    opts.thresholds =
        Thresholds::for_device(dev.props(), opts.engine.thread_tpb, f);
    opts.thresholds_overridden = true;
    const double t = run_once(dev, g, source, algo, opts);
    result.curve.push_back({f, t});
    if (t < result.best_time_us) {
      result.best_time_us = t;
      result.best_value = f;
    }
  }
  return result;
}

SweepResult sweep_monitor_interval(simt::Device& dev, const graph::Csr& g,
                                   graph::NodeId source,
                                   std::span<const std::uint32_t> intervals,
                                   TunedAlgorithm algo,
                                   const AdaptiveOptions& base) {
  SweepResult result;
  result.best_time_us = std::numeric_limits<double>::infinity();
  for (const std::uint32_t r : intervals) {
    AdaptiveOptions opts = base;
    opts.monitor_interval = r;
    const double t = run_once(dev, g, source, algo, opts);
    result.curve.push_back({static_cast<double>(r), t});
    if (t < result.best_time_us) {
      result.best_time_us = t;
      result.best_value = static_cast<double>(r);
    }
  }
  return result;
}

}  // namespace rt
