// The decision maker (paper Sec. VI.B-VI.D, Fig. 11).
//
// Given the runtime attributes — working-set size |WS| and the graph's
// average outdegree — selects one of the four unordered implementations:
//
//      avg outdegree
//        ^
//        |   B_QU      B_QU        B_BM
//   T1 --+           ----------+----------
//        |   B_QU      T_QU    |   T_BM
//        +---------+-----------+-----------> |WS|
//                  T2          T3
//
//  * T1 = warp size: below it, block mapping underutilizes the cores of an
//    SM during the cooperative neighborhood visit;
//  * T2 = thread_tpb x num_SMs: below it, thread mapping cannot put work on
//    every SM, so block mapping is always preferred (B_QU region);
//  * T3 = fraction of the node count: above it, the bitmap's wasted-thread
//    fraction (1 - |WS|/N) is low enough to beat the queue's atomic
//    serialization.
#pragma once

#include <cstdint>

#include "gpu_graph/variant.h"
#include "simt/device_props.h"

namespace rt {

struct Thresholds {
  double t1_avg_outdegree = 32.0;
  double t2_ws_size = 2688.0;    // 192 threads/block x 14 SMs on the C2070
  // Fraction of the node count. Experimentally tuned on the simulated
  // device via bench/fig13_t3_sweep (per-dataset optima fall at 10-80%; the
  // paper's Fermi measurements put them at 1-13% — our modeled queue
  // insertion is cheaper relative to bitmap thread waste).
  double t3_fraction = 0.30;

  // Extension over the paper's Fig. 11 (motivated by its own Sec. VI.B
  // thread-divergence discussion): the mapping decision compares
  // avg + skew_weight * stddev of the outdegree against T1, so heavy-tailed
  // graphs with a low *average* outdegree (e.g. SNS) still select block
  // mapping, whose cooperative neighborhood visit absorbs the tail. Set
  // skew_weight = 0 for the paper's exact rule.
  double skew_weight = 0.5;

  // Direction-optimizing thresholds (after Beamer et al., "Direction-
  // Optimizing Breadth-First Search"; the 4th adaptive dimension). Both
  // rules compare the frontier's edge mass against the volume one gather
  // iteration would scan, `unexplored_edges + num_nodes` (every pull kernel
  // sweeps all vertices; unexplored_edges is the engine's estimate of the
  // in-edges that sweep still has to read — see each engine for its proxy):
  //   push -> pull  when  frontier_edges > do_alpha * (unexplored + n)
  //   pull -> push  when  frontier_edges < do_beta  * (unexplored + n)
  // do_beta well below do_alpha gives hysteresis: a post-peak frontier keeps
  // pulling until it has truly drained. Beamer's CPU-tuned alpha=1/14 and
  // beta=1/24 (against different denominators) do not transfer to the
  // simulated kernels' cost model; these defaults are calibrated against
  // per-iteration push/pull timings on the bench corpus, where pull starts
  // winning once the frontier covers roughly half the gather volume.
  double do_alpha = 0.5;
  double do_beta = 0.05;

  // Derives T1/T2 from the device per the paper's rules; keeps the given
  // T3 fraction (and the defaults for the direction knobs).
  static Thresholds for_device(const simt::DeviceProps& props,
                               std::uint32_t thread_tpb = 192,
                               double t3_fraction = 0.30);
};

gg::Variant decide(const Thresholds& t, std::uint64_t ws_size, double avg_outdegree,
                   std::uint32_t num_nodes, double outdeg_stddev = 0.0);

// Direction-optimizing controller step (the push<->pull hysteresis above):
// given the direction the traversal is currently running in and the
// inspector's frontier statistics, returns the direction for the next
// iteration. Pure function — the adaptive selector threads the returned
// value back in as `current`.
gg::Direction decide_direction(const Thresholds& t, gg::Direction current,
                               std::uint64_t frontier_edges,
                               std::uint64_t unexplored_edges,
                               std::uint32_t num_nodes);

// CPU-fallback decision for the serving layer: answer a query with the
// serial oracle instead of launching on the device. Complements the variant
// decision above — it picks *whether* to use the GPU at all, on modeled
// time alone, so the choice replays deterministically.
struct FallbackInput {
  bool device_healthy = true;  // false once a fault plan killed the device
  double deadline_us = 0;      // modeled budget from submit; 0 = none
  double submit_us = 0;        // modeled submission time
  double gpu_start_us = 0;     // earliest slot on any device stream
  double cpu_start_us = 0;     // host serial timeline ready time
  double cpu_estimate_us = 0;  // modeled serial execution time (upper bound)
};

// True when the device is unhealthy, or the earliest device slot already
// misses the deadline while the host can still answer in time.
bool choose_cpu_fallback(const FallbackInput& in);

}  // namespace rt
