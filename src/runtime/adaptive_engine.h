// The adaptive runtime (paper Sec. VI): couples the graph inspector and the
// decision maker to the traversal engines, re-selecting the implementation
// among the four unordered variants at (sampled) decision points during the
// traversal. Representation switches cost nothing extra because every
// iteration regenerates the working set from the shared update vector.
#pragma once

#include "gpu_graph/bfs_engine.h"
#include "gpu_graph/bfs_multi_engine.h"
#include "gpu_graph/cc_engine.h"
#include "gpu_graph/mst_engine.h"
#include "gpu_graph/pagerank_engine.h"
#include "gpu_graph/sssp_engine.h"
#include "runtime/decision.h"
#include "runtime/inspector.h"

namespace rt {

struct AdaptiveOptions {
  // Default thresholds are derived from the device at run time; set
  // `thresholds_overridden` to pin explicit values (threshold sweeps).
  Thresholds thresholds;
  bool thresholds_overridden = false;
  std::uint32_t monitor_interval = 1;  // sampling rate R
  // Traversal direction for the unordered BFS/SSSP/CC engines:
  //  * push     — the paper's scatter formulation (default; unchanged);
  //  * pull     — force the gather (CSC) formulation every iteration;
  //  * adaptive — direction-optimizing: the controller flips push->pull when
  //    frontier_edges > do_alpha * unexplored_edges and back to push when
  //    the frontier shrinks below do_beta * num_nodes (Beamer hysteresis,
  //    knobs on `thresholds`). MST, PageRank and the fused MS-BFS path have
  //    no gather formulation and always run push.
  gg::Direction direction = gg::Direction::push;
  gg::EngineOptions engine;            // tpb knobs (monitor_interval is set here)
};

// Wraps the decision maker as an engine selector. The three-argument form
// additionally publishes a trace::DecisionEvent at every decision point
// (inputs, thresholds, chosen variant, whether the running variant switched)
// when tracing is active; `interval` is the sampling rate R recorded in the
// event, `algo` labels the trace stream. Selector copies share the
// prev-variant state, so the switch flag stays correct however the engine
// stores the std::function.
gg::VariantSelector make_adaptive_selector(const Thresholds& thresholds);
gg::VariantSelector make_adaptive_selector(const Thresholds& thresholds,
                                           std::uint32_t interval,
                                           const char* algo,
                                           gg::Direction direction =
                                               gg::Direction::push);

gg::GpuBfsResult adaptive_bfs(simt::Device& dev, const graph::Csr& g,
                              graph::NodeId source, const AdaptiveOptions& opts = {});

gg::GpuSsspResult adaptive_sssp(simt::Device& dev, const graph::Csr& g,
                                graph::NodeId source,
                                const AdaptiveOptions& opts = {});

// Connected components (extension algorithm); the graph must be symmetric.
gg::GpuCcResult adaptive_cc(simt::Device& dev, const graph::Csr& g,
                            const AdaptiveOptions& opts = {});

// Minimum spanning forest by Boruvka (extension algorithm); the graph must
// be symmetric and weighted.
gg::GpuMstResult adaptive_mst(simt::Device& dev, const graph::Csr& g,
                              const AdaptiveOptions& opts = {});

// PageRank by residual push (extension algorithm).
gg::GpuPageRankResult adaptive_pagerank(simt::Device& dev, const graph::Csr& g,
                                        const gg::PageRankOptions& pr = {},
                                        const AdaptiveOptions& opts = {});

// Resident-graph forms (see bfs_engine.h): the caller keeps `dg` uploaded
// across queries (Session / the serving layer), so no upload is charged and
// opts.engine.stream places the whole traversal on a simt stream.
gg::GpuBfsResult adaptive_bfs(simt::Device& dev, gg::DeviceGraph& dg,
                              const graph::Csr& g, graph::NodeId source,
                              const AdaptiveOptions& opts = {});
gg::GpuSsspResult adaptive_sssp(simt::Device& dev, gg::DeviceGraph& dg,
                                const graph::Csr& g, graph::NodeId source,
                                const AdaptiveOptions& opts = {});
gg::GpuCcResult adaptive_cc(simt::Device& dev, gg::DeviceGraph& dg,
                            const graph::Csr& g,
                            const AdaptiveOptions& opts = {});
gg::GpuPageRankResult adaptive_pagerank(simt::Device& dev, gg::DeviceGraph& dg,
                                        const graph::Csr& g,
                                        const gg::PageRankOptions& pr = {},
                                        const AdaptiveOptions& opts = {});

// Batched multi-source BFS with adaptive selection over the fused traversal
// (the serving layer's coalesced same-graph BFS path).
gg::GpuBfsMultiResult adaptive_bfs_multi(simt::Device& dev, gg::DeviceGraph& dg,
                                         const graph::Csr& g,
                                         std::span<const graph::NodeId> sources,
                                         const AdaptiveOptions& opts = {});

}  // namespace rt
