// Sharded (vertex-cut) query execution across a fleet.
//
// A graph too large for any single device is split into contiguous row-range
// shards (service/placement.h); each shard is a row-slice CSR in the global
// node-id space resident on its own device. Queries then run as
// level-synchronous BSP supersteps: every owner device processes the part of
// the frontier whose rows it holds with a simt::launch kernel, the host
// merges the per-device discoveries (modeled host compute), and the next
// superstep starts after a barrier at the max ready time of all participating
// streams — emulated with host-compute padding on the lagging streams, since
// streams on different simulated devices have no hardware sync primitive.
//
//  * BFS: per superstep each owner expands its frontier rows and appends
//    newly-seen vertices (against its device-local level array) to a device
//    queue; the host dedupes candidates against the global level array and
//    forms the next frontier. Level-synchronous BFS levels are independent
//    of the partition, so payloads are bit-identical to single-device runs.
//
//  * CC: each shard's row slice is symmetrized locally and solved with the
//    resident per-device CC engine; the host merges the per-shard label
//    arrays with a union-find pass and relabels components to the smallest
//    member id — the same canonical labeling the engines produce. Weakly
//    connected components are partition-independent, so this matches the
//    single-device answer exactly.
//
// SSSP and PageRank have no sharded kernels yet; the serving layer answers
// them with the exact CPU oracle (degraded outcome), never a wrong answer.
//
// Determinism: all device work is host-driven simt accounting, all merges
// are plain host code over deterministic queue contents (serial launch
// policy), so sharded outcomes are bit-identical at any --sim-threads.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gpu_graph/device_graph.h"
#include "service/placement.h"
#include "simt/cluster.h"
#include "simt/stream.h"

namespace svc {

struct Shard {
  simt::DeviceIndex device = 0;
  graph::NodeId row_begin = 0;
  graph::NodeId row_end = 0;  // exclusive
  graph::Csr csr;             // row-slice, global id space
  gg::DeviceGraph dg;         // resident upload of `csr`
  // Local symmetric closure of the slice, uploaded lazily on first cc().
  graph::Csr sym_csr;
  std::optional<gg::DeviceGraph> sym_dg;
};

struct ShardedGraph {
  std::uint32_t num_nodes = 0;
  bool with_weights = false;
  std::vector<Shard> shards;

  // Shard owning vertex v's out-edges (contiguous ranges, linear scan is
  // fine at shard counts <= fleet size).
  const Shard* owner(graph::NodeId v) const {
    for (const Shard& s : shards)
      if (v >= s.row_begin && v < s.row_end) return &s;
    return nullptr;
  }
};

// Builds and uploads the row slices per `plan`. Throws simt::DeviceFault
// when an upload fails (caller degrades / propagates).
ShardedGraph make_sharded(simt::Fleet& fleet, const graph::Csr& g,
                          bool with_weights, const PlacementPlan& plan);
void release_sharded(simt::Fleet& fleet, ShardedGraph& sg);

// Result of one sharded run: the exact payload vector plus schedule times.
struct ShardedRun {
  double start_us = 0;   // barrier at which the first superstep started
  double finish_us = 0;  // barrier after the last merge
  std::uint32_t supersteps = 0;
};

// Level-synchronous multi-device BFS. `streams[i]` is the stream on
// shards[i]'s device to issue that shard's work on (one entry per shard).
// `not_before_us` is the earliest modeled start (query dispatch time).
// Fills `levels` (size num_nodes) with the exact BFS levels.
ShardedRun sharded_bfs(simt::Fleet& fleet, ShardedGraph& sg,
                       graph::NodeId source,
                       const std::vector<simt::StreamId>& streams,
                       double not_before_us, std::vector<std::uint32_t>& levels);

// Per-shard device CC + host union-find merge. Fills `component` (size
// num_nodes, smallest-member-id labels) and `num_components`.
ShardedRun sharded_cc(simt::Fleet& fleet, ShardedGraph& sg,
                      const std::vector<simt::StreamId>& streams,
                      double not_before_us, std::vector<std::uint32_t>& component,
                      std::uint32_t& num_components);

}  // namespace svc
