// Query-result cache shared by svc::GraphService and adaptive::Session.
//
// Motivation (ISSUE 5 / ROADMAP "serving scale"): skewed query traffic —
// millions of users hitting the same (graph, algo, source) keys — pays full
// device cost per query even though the answer never changes while the graph
// does not. Every algorithm here is deterministic, so a completed exact
// result can be replayed from host memory at modeled copy cost: no kernel
// launch, no PCIe round-trip, no stream occupancy.
//
// Keying & invalidation: entries are keyed by CacheKey — a stable graph key
// (service graph id + upload generation, or the Session's hashed CSR
// address), the graph *version* (adaptive::Graph::version() bumps on every
// mutation), the algorithm, its source/parameters, and a policy signature.
// A version bump therefore never produces a stale hit, and re-uploading a
// graph under the same id bumps the upload generation, which retires every
// older entry. invalidate_graph() additionally drops entries eagerly so
// their bytes return to the budget.
//
// Capacity: byte-bounded LRU. The recency list *is* the eviction order —
// the hash index only accelerates lookup — so eviction is deterministic and
// identical at any --sim-threads value. payload_bytes() models an entry's
// host-memory footprint (result vectors + per-iteration metrics + fixed
// bookkeeping overhead).
//
// Cost model: a hit costs CacheCostModel::hit_us(bytes) of modeled host time
// (index probe + memcpy of the payload at host memory bandwidth). Callers
// charge that to their host timeline; the device is untouched.
//
// Resilience interaction: degraded (CPU-oracle) results are exact and
// therefore cacheable; faulted partial attempts never reach insert() because
// the service only stores payloads of completed queries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <list>
#include <span>
#include <unordered_map>
#include <variant>
#include <vector>

#include "api/algorithms.h"
#include "graph/csr.h"
#include "graph/delta.h"

namespace svc {

enum class Algo { bfs, sssp, cc, pagerank };
const char* algo_name(Algo a);

// The payload variant a service query can produce; also the value type the
// result cache stores (one entry per completed exact answer).
using Payload = std::variant<std::monostate, adaptive::BfsResult,
                             adaptive::SsspResult, adaptive::CcResult,
                             adaptive::PageRankResult>;

// Modeled host-memory footprint of a cached payload: result vectors,
// per-iteration metrics samples, and fixed per-entry bookkeeping.
std::size_t payload_bytes(const Payload& p);

struct CacheKey {
  std::uint64_t graph_key = 0;  // owner-scoped stable graph identity
  std::uint64_t version = 0;    // graph version (+ upload generation)
  std::uint8_t algo = 0;        // static_cast<uint8_t>(Algo)
  std::uint32_t source = 0;     // bfs/sssp; 0 for cc/pagerank
  std::uint64_t param_bits = 0; // pagerank damping bits; 0 otherwise
  std::uint64_t policy_sig = 0; // policy_signature(req.policy)

  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const;
};

// Digest of every policy field that can change a query's answer or its
// adaptive execution: mode, fixed variant, symmetrization, thresholds and
// monitoring interval, tpb knobs. The dispatch stream is deliberately
// excluded — it is a placement artifact, not part of the question asked.
std::uint64_t policy_signature(const adaptive::Policy& policy);

CacheKey make_cache_key(std::uint64_t graph_key, std::uint64_t version,
                        Algo algo, graph::NodeId source, double damping,
                        const adaptive::Policy& policy);

// ---- delta-aware invalidation predicate (ISSUE 9) ----
// The old-component labels touched by a delta: labels of every insert and
// delete endpoint, sorted and deduplicated. `old_labels` are the weak
// connectivity labels of the graph BEFORE the delta (graph::IncrementalCc).
std::vector<std::uint32_t> affected_components(
    std::span<const std::uint32_t> old_labels, const graph::EdgeDelta& delta);

// Conservative per-component survival test: a BFS/SSSP answer from source s
// is provably unchanged when no delta endpoint lies in s's old weak
// component — directed reachability from s is contained in that component,
// and a kept entry also implies no insert attaches to it, so every path
// from s runs over unchanged arcs. Global answers (cc, pagerank) never
// survive a non-empty delta.
bool entry_survives_delta(const CacheKey& key,
                          std::span<const std::uint32_t> old_labels,
                          std::span<const std::uint32_t> affected_sorted);

// Modeled cost of serving a hit: one index probe plus copying the payload
// out of the cache at host memcpy bandwidth.
struct CacheCostModel {
  double lookup_us = 0.5;       // hash probe + entry bookkeeping
  double host_copy_gbps = 12.0; // DDR3-class memcpy bandwidth

  double hit_us(std::size_t bytes) const {
    // 1 GB/s = 1e3 bytes/us.
    return lookup_us + static_cast<double>(bytes) / (host_copy_gbps * 1e3);
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;  // entries dropped by invalidate_graph()
  std::uint64_t rejected = 0;       // single value larger than capacity
  std::uint64_t delta_kept = 0;     // entries carried across a delta_invalidate
  std::uint64_t delta_dropped = 0;  // entries evicted by delta_invalidate
};

// Byte-capacity-bounded LRU, templated on the stored value so tests can
// exercise the replacement policy with trivial values. Deterministic: the
// recency list drives eviction; the unordered index never decides anything.
template <typename Value>
class ResultCache {
 public:
  struct Entry {
    CacheKey key;
    Value value;
    std::size_t bytes = 0;
  };

  explicit ResultCache(std::size_t capacity_bytes = 0)
      : capacity_(capacity_bytes) {}

  bool enabled() const { return capacity_ > 0; }
  std::size_t capacity_bytes() const { return capacity_; }
  std::size_t bytes_in_use() const { return bytes_; }
  std::size_t entries() const { return lru_.size(); }
  const CacheStats& stats() const { return stats_; }

  // Re-sizes the budget; shrinking evicts from the LRU tail immediately.
  void set_capacity(std::size_t capacity_bytes) {
    capacity_ = capacity_bytes;
    while (bytes_ > capacity_) evict_one();
  }

  // Returns the entry (and marks it most-recently-used) or nullptr. The
  // pointer is valid until the next mutating call.
  const Entry* lookup(const CacheKey& key) {
    if (!enabled()) return nullptr;
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    return &*it->second;
  }

  // Inserts `key`, evicting least-recently-used entries until it fits;
  // returns the number of entries evicted. A value larger than the whole
  // budget is rejected (stats().rejected); a key already present keeps its
  // existing entry (identical queries produce identical exact payloads).
  std::size_t insert(const CacheKey& key, Value value, std::size_t bytes) {
    if (!enabled()) return 0;
    if (index_.count(key)) return 0;
    if (bytes > capacity_) {
      ++stats_.rejected;
      return 0;
    }
    std::size_t evicted = 0;
    while (bytes_ + bytes > capacity_) {
      evict_one();
      ++evicted;
    }
    lru_.push_front(Entry{key, std::move(value), bytes});
    index_[key] = lru_.begin();
    bytes_ += bytes;
    ++stats_.insertions;
    return evicted;
  }

  // Drops every entry of `graph_key`, regardless of version; returns the
  // number of entries removed.
  std::size_t invalidate_graph(std::uint64_t graph_key) {
    std::size_t dropped = 0;
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (it->key.graph_key == graph_key) {
        bytes_ -= it->bytes;
        index_.erase(it->key);
        it = lru_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    stats_.invalidations += dropped;
    return dropped;
  }

  // Delta-aware invalidation (ISSUE 9): after a batched mutation of
  // `graph_key`, drops only the entries `keep` rejects and re-keys the
  // survivors to `new_version` so post-mutation lookups (which use the new
  // version) still hit them. `keep` receives each entry's key and must be
  // conservative: keep only answers provably unchanged by the delta (the
  // service passes a per-component reachability test built on incremental
  // CC labels). LRU order and recency are preserved across the re-key.
  // Returns {kept, dropped}.
  struct DeltaInvalidateResult {
    std::size_t kept = 0;
    std::size_t dropped = 0;
  };
  template <typename KeepFn>
  DeltaInvalidateResult delta_invalidate(std::uint64_t graph_key,
                                         std::uint64_t new_version,
                                         KeepFn&& keep) {
    DeltaInvalidateResult r;
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (it->key.graph_key != graph_key) {
        ++it;
        continue;
      }
      if (keep(static_cast<const CacheKey&>(it->key))) {
        index_.erase(it->key);
        it->key.version = new_version;
        index_[it->key] = it;
        ++r.kept;
        ++it;
      } else {
        bytes_ -= it->bytes;
        index_.erase(it->key);
        it = lru_.erase(it);
        ++r.dropped;
      }
    }
    stats_.delta_kept += r.kept;
    stats_.delta_dropped += r.dropped;
    stats_.invalidations += r.dropped;
    return r;
  }

  void clear() {
    lru_.clear();
    index_.clear();
    bytes_ = 0;
  }

  // Least-recently-used key first (eviction order); for tests.
  std::vector<CacheKey> keys_lru_first() const {
    std::vector<CacheKey> out;
    out.reserve(lru_.size());
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      out.push_back(it->key);
    }
    return out;
  }

 private:
  void evict_one() {
    Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }

  std::size_t capacity_ = 0;
  std::size_t bytes_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<CacheKey, typename std::list<Entry>::iterator,
                     CacheKeyHash>
      index_;
  CacheStats stats_;
};

}  // namespace svc
