// Resilience policy for GraphService: bounded retry with modeled-time
// exponential backoff for transient device faults, and graceful degradation
// to the serial CPU oracles when the device is unhealthy (or a permanent
// fault killed it) or a query's deadline leaves no room for a device run.
//
// The policy layer is pure decision logic over modeled time — it never
// consults the wall clock — so a given fault plan yields the same retry /
// degrade schedule at any --sim-threads value.
#pragma once

#include <cstdint>
#include <string>

#include "api/algorithms.h"
#include "simt/fault.h"

namespace svc {

struct ResiliencePolicy {
  // Maximum *re*-executions after the first attempt. 0 disables retry.
  int max_retries = 2;
  // Backoff charged to the query's stream before retry k (1-based) is
  // backoff_base_us * 2^(k-1), capped at backoff_cap_us.
  double backoff_base_us = 50.0;
  double backoff_cap_us = 5000.0;
  // Degrade to the CPU oracle instead of failing when retries are exhausted
  // or the device is dead. Off = exhausted queries report their fault.
  bool degrade_to_cpu = true;
};

// Backoff delay before retry `attempt` (1-based), in modeled microseconds.
double backoff_us(const ResiliencePolicy& policy, int attempt);

// Maps a device fault to the typed taxonomy: alloc -> device_oom,
// transfer -> transfer_failed, kernel -> kernel_fault.
adaptive::ErrorCode fault_error_code(const simt::DeviceFault& f);

// Whether a fault is worth retrying on-device (a permanent fault is not).
bool retryable(const simt::DeviceFault& f);

// Decision for one faulted attempt: retry on-device, fail over to another
// replica device, degrade to CPU, or give up and report the fault.
enum class FaultAction : std::uint8_t { retry, degrade, fail, failover };
FaultAction next_action(const ResiliencePolicy& policy, int attempts_done,
                        bool permanent, bool device_healthy);
// Fleet form: when the faulting device is dead (permanent fault) and another
// healthy replica holds the graph, the query fails over instead of degrading
// — CPU degradation is reserved for "no replica left". Transient faults keep
// the single-device retry/degrade schedule (the replica would re-pay the
// backoff anyway and determinism favors a stable stream placement).
FaultAction next_action(const ResiliencePolicy& policy, int attempts_done,
                        bool permanent, bool device_healthy,
                        bool replica_available);

const char* fault_action_name(FaultAction a);

}  // namespace svc
