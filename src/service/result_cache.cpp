#include "service/result_cache.h"

#include <algorithm>

#include "gpu_graph/metrics.h"
#include "gpu_graph/variant.h"

namespace svc {

namespace {

// splitmix64 finalizer (common/prng.h uses the stateful form; hashing wants
// the pure mix of one word).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t combine(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ mix64(v));
}

std::uint64_t double_bits(double d) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

template <typename T>
std::size_t vector_bytes(const std::vector<T>& v) {
  return v.size() * sizeof(T);
}

std::size_t metrics_bytes(const gg::TraversalMetrics& m) {
  return sizeof(m) + m.iterations.size() * sizeof(m.iterations[0]);
}

}  // namespace

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::bfs:
      return "bfs";
    case Algo::sssp:
      return "sssp";
    case Algo::cc:
      return "cc";
    case Algo::pagerank:
      return "pagerank";
  }
  return "?";
}

std::size_t payload_bytes(const Payload& p) {
  // Fixed bookkeeping: key, LRU node, index slot, envelope scalars.
  constexpr std::size_t kEntryOverhead = 160;
  struct Visitor {
    std::size_t operator()(const std::monostate&) const { return 0; }
    std::size_t operator()(const adaptive::BfsResult& r) const {
      return vector_bytes(r.level) + metrics_bytes(r.metrics);
    }
    std::size_t operator()(const adaptive::SsspResult& r) const {
      return vector_bytes(r.dist) + metrics_bytes(r.metrics);
    }
    std::size_t operator()(const adaptive::CcResult& r) const {
      return vector_bytes(r.component) + metrics_bytes(r.metrics);
    }
    std::size_t operator()(const adaptive::PageRankResult& r) const {
      return vector_bytes(r.rank) + metrics_bytes(r.metrics);
    }
  };
  return kEntryOverhead + std::visit(Visitor{}, p);
}

std::size_t CacheKeyHash::operator()(const CacheKey& k) const {
  std::uint64_t h = combine(k.graph_key, k.version);
  h = combine(h, (static_cast<std::uint64_t>(k.algo) << 32) | k.source);
  h = combine(h, k.param_bits);
  h = combine(h, k.policy_sig);
  return static_cast<std::size_t>(h);
}

std::uint64_t policy_signature(const adaptive::Policy& policy) {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(policy.mode));
  h = combine(h, static_cast<std::uint64_t>(policy.symmetrize));
  h = combine(h,
              (static_cast<std::uint64_t>(policy.variant.direction) << 24) |
                  (static_cast<std::uint64_t>(policy.variant.ordering) << 16) |
                  (static_cast<std::uint64_t>(policy.variant.mapping) << 8) |
                  static_cast<std::uint64_t>(policy.variant.repr));
  const rt::AdaptiveOptions& o = policy.options;
  // The traversal direction changes which kernels run (and, for adaptive
  // direction, the whole push<->pull trajectory): push/pull/adaptive answers
  // must never alias even though the payloads agree bit-for-bit (metrics and
  // modeled costs differ).
  h = combine(h, static_cast<std::uint64_t>(o.direction));
  h = combine(h, o.thresholds_overridden ? 1 : 0);
  h = combine(h, double_bits(o.thresholds.t1_avg_outdegree));
  h = combine(h, double_bits(o.thresholds.t2_ws_size));
  h = combine(h, double_bits(o.thresholds.t3_fraction));
  h = combine(h, double_bits(o.thresholds.skew_weight));
  h = combine(h, double_bits(o.thresholds.do_alpha));
  h = combine(h, double_bits(o.thresholds.do_beta));
  h = combine(h, o.monitor_interval);
  // Engine knobs that shape the adaptive trajectory; the stream is a
  // placement artifact and stays out of the signature.
  h = combine(h, (static_cast<std::uint64_t>(o.engine.thread_tpb) << 32) |
                     o.engine.block_tpb);
  return h;
}

CacheKey make_cache_key(std::uint64_t graph_key, std::uint64_t version,
                        Algo algo, graph::NodeId source, double damping,
                        const adaptive::Policy& policy) {
  CacheKey key;
  key.graph_key = graph_key;
  key.version = version;
  key.algo = static_cast<std::uint8_t>(algo);
  switch (algo) {
    case Algo::bfs:
    case Algo::sssp:
      key.source = source;
      break;
    case Algo::pagerank:
      key.param_bits = double_bits(damping);
      break;
    case Algo::cc:
      break;
  }
  key.policy_sig = policy_signature(policy);
  return key;
}

std::vector<std::uint32_t> affected_components(
    std::span<const std::uint32_t> old_labels, const graph::EdgeDelta& delta) {
  std::vector<std::uint32_t> affected;
  affected.reserve(2 * delta.num_ops());
  for (const graph::NodeId v : graph::delta_touched_nodes(delta)) {
    if (v < old_labels.size()) affected.push_back(old_labels[v]);
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  return affected;
}

bool entry_survives_delta(const CacheKey& key,
                          std::span<const std::uint32_t> old_labels,
                          std::span<const std::uint32_t> affected_sorted) {
  if (affected_sorted.empty()) return true;  // empty delta changes nothing
  const Algo algo = static_cast<Algo>(key.algo);
  // cc and pagerank are whole-graph answers: any arc change can move them.
  if (algo != Algo::bfs && algo != Algo::sssp) return false;
  if (key.source >= old_labels.size()) return false;
  return !std::binary_search(affected_sorted.begin(), affected_sorted.end(),
                             old_labels[key.source]);
}

}  // namespace svc
