#include "service/graph_service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "cpu/bfs_serial.h"
#include "cpu/cc_serial.h"
#include "cpu/cpu_cost_model.h"
#include "cpu/pagerank_serial.h"
#include "cpu/sssp_serial.h"
#include "graph/csr.h"
#include "runtime/adaptive_engine.h"
#include "runtime/decision.h"
#include "trace/counters.h"
#include "trace/trace_sink.h"

namespace svc {

namespace {

void bump(std::string_view name, double d = 1) {
  auto& reg = trace::CounterRegistry::instance();
  if (reg.enabled()) reg.counter(name).add(d);
}

void gauge_max(const char* name, double v) {
  auto& reg = trace::CounterRegistry::instance();
  if (reg.enabled()) reg.gauge(name).set_max(v);
}

}  // namespace

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::bfs:
      return "bfs";
    case Algo::sssp:
      return "sssp";
    case Algo::cc:
      return "cc";
    case Algo::pagerank:
      return "pagerank";
  }
  return "?";
}

GraphService::GraphService(ServiceOptions opts, const simt::DeviceProps& props,
                           simt::TimingModel tm)
    : opts_(opts), dev_(props, tm) {
  if (opts_.concurrency == 0) opts_.concurrency = 1;
  opts_.max_batch = std::clamp<std::uint32_t>(opts_.max_batch, 1,
                                              gg::kMaxBatchedSources);
  streams_.reserve(opts_.concurrency);
  for (std::uint32_t i = 0; i < opts_.concurrency; ++i) {
    streams_.push_back(dev_.create_stream("svc" + std::to_string(i)));
  }
}

GraphService::~GraphService() {
  for (auto& entry : graphs_) {
    entry->dg.release(dev_);
    if (entry->sym_dg) entry->sym_dg->release(dev_);
  }
}

GraphId GraphService::add_graph(adaptive::Graph g) {
  auto entry = std::make_unique<GraphEntry>(std::move(g));
  entry->dg = gg::DeviceGraph::upload(dev_, entry->g.csr(),
                                      entry->g.is_weighted());
  graphs_.push_back(std::move(entry));
  return static_cast<GraphId>(graphs_.size() - 1);
}

const adaptive::Graph& GraphService::graph(GraphId id) const {
  AGG_CHECK(id < graphs_.size());
  return graphs_[id]->g;
}

std::optional<QueryId> GraphService::submit(const QueryRequest& req) {
  AGG_CHECK(req.graph < graphs_.size());
  if (queue_.size() >= opts_.queue_capacity) {
    QueryOutcome out;
    out.id = next_id_++;
    out.algo = req.algo;
    out.graph = req.graph;
    out.status = adaptive::Status::rejected;
    out.error = "queue full";
    out.code = adaptive::ErrorCode::queue_full;
    out.submit_us = dev_.makespan_us();
    done_.push_back(std::move(out));
    bump("svc.rejected");
    return std::nullopt;
  }
  PendingQuery q;
  q.id = next_id_++;
  q.req = req;
  q.submit_us = dev_.makespan_us();
  queue_.push_back(std::move(q));
  bump("svc.queued");
  return queue_.back().id;
}

simt::StreamId GraphService::pick_stream() const {
  simt::StreamId best = streams_.front();
  double best_ready = dev_.stream_ready_us(best);
  for (std::size_t i = 1; i < streams_.size(); ++i) {
    const double r = dev_.stream_ready_us(streams_[i]);
    if (r < best_ready) {
      best_ready = r;
      best = streams_[i];
    }
  }
  return best;
}

bool GraphService::batchable(const PendingQuery& a, const PendingQuery& b) const {
  return a.req.algo == Algo::bfs && b.req.algo == Algo::bfs &&
         a.req.graph == b.req.graph &&
         a.req.policy.mode == b.req.policy.mode &&
         a.req.policy.mode != adaptive::Policy::Mode::cpu_serial &&
         a.req.policy.variant == b.req.policy.variant;
}

QueryOutcome GraphService::make_outcome(const PendingQuery& q) const {
  QueryOutcome out;
  out.id = q.id;
  out.algo = q.req.algo;
  out.graph = q.req.graph;
  out.submit_us = q.submit_us;
  return out;
}

std::vector<QueryOutcome> GraphService::drain() {
  while (!queue_.empty()) {
    if (opts_.batch_bfs && queue_.front().req.algo == Algo::bfs &&
        queue_.front().req.policy.mode != adaptive::Policy::Mode::cpu_serial) {
      // Collect the longest batchable FIFO prefix (dispatch order preserved).
      std::vector<PendingQuery> batch;
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      while (!queue_.empty() && batch.size() < opts_.max_batch &&
             batchable(batch.front(), queue_.front())) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (batch.size() > 1) {
        execute_bfs_batch(batch);
      } else {
        execute_single(batch.front());
      }
    } else {
      PendingQuery q = std::move(queue_.front());
      queue_.pop_front();
      execute_single(q);
    }
  }
  return std::exchange(done_, {});
}

void GraphService::finish_outcome(QueryOutcome& out, simt::StreamId stream,
                                  double start) {
  out.stream = stream;
  out.start_us = start;
  out.finish_us = dev_.stream_ready_us(stream);
  // Modeled concurrency at this point in the schedule: streams still busy
  // past this query's start.
  std::uint32_t inflight = 0;
  for (const simt::StreamId s : streams_) {
    if (dev_.stream_ready_us(s) > start) ++inflight;
  }
  gauge_max("svc.running", inflight);
}

void GraphService::execute_single(const PendingQuery& q) {
  QueryOutcome out = make_outcome(q);
  GraphEntry& entry = *graphs_[q.req.graph];
  const adaptive::Graph& g = entry.g;

  if (q.req.policy.mode == adaptive::Policy::Mode::cpu_serial) {
    out.status = adaptive::Status::error;
    out.error = "cpu_serial policies are not servable (wall-clock timing)";
    out.code = adaptive::ErrorCode::invalid_argument;
    done_.push_back(std::move(out));
    bump("svc.completed");
    return;
  }
  if ((q.req.algo == Algo::sssp) && !g.is_weighted()) {
    out.status = adaptive::Status::error;
    out.error = "sssp requires edge weights";
    out.code = adaptive::ErrorCode::invalid_argument;
    done_.push_back(std::move(out));
    bump("svc.completed");
    return;
  }
  if ((q.req.algo == Algo::bfs || q.req.algo == Algo::sssp) &&
      q.req.source >= g.num_nodes()) {
    out.status = adaptive::Status::error;
    out.error = "source out of range";
    out.code = adaptive::ErrorCode::invalid_argument;
    done_.push_back(std::move(out));
    bump("svc.completed");
    return;
  }

  if (!dev_.healthy()) {
    // Dead device: every attempt would fail permanently, so skip straight to
    // degradation (or report the loss when degradation is off).
    if (opts_.resilience.degrade_to_cpu) {
      run_degraded(q, g, out);
      bump("svc.degraded");
      bump("svc.degraded.dead");
      bump("svc.completed");
    } else {
      out.status = adaptive::Status::error;
      out.error = "device lost";
      out.code = adaptive::ErrorCode::device_lost;
      bump("svc.failed");
    }
    done_.push_back(std::move(out));
    return;
  }

  const simt::StreamId stream = pick_stream();
  const double ready = dev_.stream_ready_us(stream);
  if (q.req.deadline_us > 0 && ready > q.submit_us + q.req.deadline_us) {
    // The earliest slot already misses the deadline. The CPU may still make
    // it: its timeline is independent of the congested streams.
    rt::FallbackInput fi;
    fi.device_healthy = true;
    fi.deadline_us = q.req.deadline_us;
    fi.submit_us = q.submit_us;
    fi.gpu_start_us = ready;
    fi.cpu_start_us = std::max(host_ready_us_, q.submit_us);
    fi.cpu_estimate_us = estimate_cpu_us(q.req.algo, g);
    if (opts_.resilience.degrade_to_cpu && rt::choose_cpu_fallback(fi)) {
      run_degraded(q, g, out);
      bump("svc.degraded");
      bump("svc.degraded.deadline");
      bump("svc.completed");
      done_.push_back(std::move(out));
      return;
    }
    // Time out without spending device time.
    out.status = adaptive::Status::timed_out;
    out.code = adaptive::ErrorCode::deadline_exceeded;
    out.stream = stream;
    out.start_us = ready;
    done_.push_back(std::move(out));
    bump("svc.timeout");
    return;
  }

  // Resilient execution: retry transient faults with modeled-time backoff,
  // then degrade to the CPU oracle (or fail) per the resilience policy.
  int attempts = 0;
  for (;;) {
    const std::uint64_t mark = dev_.mem_mark();
    const bool had_sym = entry.sym_dg.has_value();
    try {
      run_device_query(q, entry, stream, out);
      break;
    } catch (const simt::DeviceFault& f) {
      dev_.mem_reclaim(mark);
      if (!had_sym && entry.sym_dg) {
        // The symmetrized upload of this attempt died with the fault; its
        // accounting was just reclaimed, so drop the handle without release.
        entry.sym_dg.reset();
      }
      ++attempts;
      bump("svc.fault");
      bump(std::string("svc.fault.") + simt::fault_kind_name(f.kind()));
      const FaultAction action = next_action(opts_.resilience, attempts,
                                             f.permanent(), dev_.healthy());
      if (action == FaultAction::retry) {
        const double delay = backoff_us(opts_.resilience, attempts);
        {
          simt::StreamGuard sguard(dev_, stream);
          dev_.account_host_compute(delay);
        }
        ++out.retries;
        bump("svc.retry");
        bump("svc.retry.backoff_us", delay);
        continue;
      }
      if (action == FaultAction::degrade) {
        run_degraded(q, g, out);
        bump("svc.degraded");
        bump(f.permanent() ? "svc.degraded.dead" : "svc.degraded.fault");
        bump("svc.completed");
        done_.push_back(std::move(out));
        return;
      }
      out.status = adaptive::Status::error;
      out.error = f.what();
      out.code = adaptive::detail::fault_code(f);
      out.stream = stream;
      out.start_us = ready;
      done_.push_back(std::move(out));
      bump("svc.failed");
      return;
    }
  }

  finish_outcome(out, stream, ready);
  if (q.req.deadline_us > 0 &&
      out.finish_us > q.submit_us + q.req.deadline_us) {
    out.status = adaptive::Status::timed_out;
    out.code = adaptive::ErrorCode::deadline_exceeded;
    out.payload = std::monostate{};
    bump("svc.timeout");
  } else {
    bump("svc.completed");
  }
  done_.push_back(std::move(out));
}

void GraphService::run_device_query(const PendingQuery& q, GraphEntry& entry,
                                    simt::StreamId stream, QueryOutcome& out) {
  const adaptive::Graph& g = entry.g;
  adaptive::Policy policy = q.req.policy;
  policy.options.engine.stream = stream;
  const bool fixed = policy.mode == adaptive::Policy::Mode::fixed_variant;

  switch (q.req.algo) {
    case Algo::bfs: {
      adaptive::BfsResult r;
      gg::GpuBfsResult gr =
          fixed ? gg::run_bfs(dev_, entry.dg, g.csr(), q.req.source,
                              gg::fixed_variant(policy.variant),
                              policy.options.engine)
                : rt::adaptive_bfs(dev_, entry.dg, g.csr(), q.req.source,
                                   policy.options);
      r.level = std::move(gr.level);
      r.metrics = std::move(gr.metrics);
      out.payload = std::move(r);
      break;
    }
    case Algo::sssp: {
      adaptive::SsspResult r;
      gg::GpuSsspResult gr =
          fixed ? gg::run_sssp(dev_, entry.dg, g.csr(), q.req.source,
                               gg::fixed_variant(policy.variant),
                               policy.options.engine)
                : rt::adaptive_sssp(dev_, entry.dg, g.csr(), q.req.source,
                                    policy.options);
      r.dist = std::move(gr.dist);
      r.metrics = std::move(gr.metrics);
      out.payload = std::move(r);
      break;
    }
    case Algo::cc: {
      // cc needs both arcs; lazily upload the symmetrized closure once.
      const bool needs_sym =
          policy.symmetrize == adaptive::Symmetrize::always ||
          (policy.symmetrize == adaptive::Symmetrize::auto_detect &&
           !g.is_symmetric());
      gg::DeviceGraph* dg = &entry.dg;
      const graph::Csr* csr = &g.csr();
      if (needs_sym) {
        csr = &g.symmetrized();
        if (!entry.sym_dg) {
          simt::StreamGuard sguard(dev_, stream);
          entry.sym_dg = gg::DeviceGraph::upload(dev_, *csr,
                                                 /*with_weights=*/false);
        }
        dg = &*entry.sym_dg;
      }
      adaptive::CcResult r;
      gg::GpuCcResult gr =
          fixed ? gg::run_cc(dev_, *dg, *csr, gg::fixed_variant(policy.variant),
                             policy.options.engine)
                : rt::adaptive_cc(dev_, *dg, *csr, policy.options);
      r.component = std::move(gr.component);
      r.num_components = gr.num_components;
      r.metrics = std::move(gr.metrics);
      out.payload = std::move(r);
      break;
    }
    case Algo::pagerank: {
      gg::PageRankOptions po;
      po.damping = q.req.damping;
      po.engine = policy.options.engine;
      adaptive::PageRankResult r;
      gg::GpuPageRankResult gr =
          fixed ? gg::run_pagerank(dev_, entry.dg, g.csr(),
                                   gg::fixed_variant(policy.variant), po)
                : rt::adaptive_pagerank(dev_, entry.dg, g.csr(), po,
                                        policy.options);
      r.rank.assign(gr.rank.begin(), gr.rank.end());
      r.metrics = std::move(gr.metrics);
      out.payload = std::move(r);
      break;
    }
  }
}

void GraphService::run_degraded(const PendingQuery& q, const adaptive::Graph& g,
                                QueryOutcome& out) {
  const cpu::CpuModel& model = cpu::CpuModel::core_i7();
  const double start = std::max(host_ready_us_, q.submit_us);
  double dur_us = 0;
  switch (q.req.algo) {
    case Algo::bfs: {
      cpu::BfsResult r = cpu::bfs(g.csr(), q.req.source);
      dur_us = model.bfs_time_us(r.counts, g.num_nodes());
      adaptive::BfsResult ar;
      ar.level = std::move(r.level);
      ar.cpu_wall_ms = r.wall_ms;
      ar.degraded = true;
      out.payload = std::move(ar);
      break;
    }
    case Algo::sssp: {
      cpu::SsspResult r = cpu::dijkstra(g.csr(), q.req.source);
      dur_us = model.dijkstra_time_us(r.counts, g.num_nodes());
      adaptive::SsspResult ar;
      ar.dist = std::move(r.dist);
      ar.cpu_wall_ms = r.wall_ms;
      ar.degraded = true;
      out.payload = std::move(ar);
      break;
    }
    case Algo::cc: {
      const bool needs_sym =
          q.req.policy.symmetrize == adaptive::Symmetrize::always ||
          (q.req.policy.symmetrize == adaptive::Symmetrize::auto_detect &&
           !g.is_symmetric());
      cpu::CcResult r =
          cpu::connected_components(needs_sym ? g.symmetrized() : g.csr());
      dur_us = model.cc_time_us(r.counts, g.num_nodes());
      adaptive::CcResult ar;
      ar.component = std::move(r.component);
      ar.num_components = r.num_components;
      ar.cpu_wall_ms = r.wall_ms;
      ar.degraded = true;
      out.payload = std::move(ar);
      break;
    }
    case Algo::pagerank: {
      cpu::PageRankOptions po;
      po.damping = q.req.damping;
      cpu::PageRankResult r = cpu::pagerank(g.csr(), po);
      dur_us = model.pagerank_time_us(r.counts, g.num_nodes());
      adaptive::PageRankResult ar;
      ar.rank = std::move(r.rank);
      ar.cpu_wall_ms = r.wall_ms;
      ar.degraded = true;
      out.payload = std::move(ar);
      break;
    }
  }
  host_ready_us_ = start + dur_us;
  out.degraded = true;
  out.stream = 0;  // never dispatched to a device stream
  out.start_us = start;
  out.finish_us = host_ready_us_;
}

double GraphService::estimate_cpu_us(Algo algo, const adaptive::Graph& g) const {
  const cpu::CpuModel& model = cpu::CpuModel::core_i7();
  const std::uint32_t n = g.num_nodes();
  const auto m = static_cast<std::uint64_t>(g.num_edges());
  switch (algo) {
    case Algo::bfs: {
      cpu::BfsCounts c;
      c.nodes_popped = n;
      c.edges_scanned = m;
      return model.bfs_time_us(c, n);
    }
    case Algo::sssp: {
      cpu::SsspCounts c;
      c.heap_pops = n;
      c.heap_pushes = m;
      c.edges_relaxed = m;
      return model.dijkstra_time_us(c, n);
    }
    case Algo::cc: {
      cpu::CcCounts c;
      c.edges_scanned = m;
      c.find_steps = 2 * m;
      return model.cc_time_us(c, n);
    }
    case Algo::pagerank: {
      cpu::PageRankCounts c;
      c.iterations = 20;  // typical convergence at the default tolerance
      c.edge_updates = 20 * m;
      return model.pagerank_time_us(c, n);
    }
  }
  return 0;
}

void GraphService::execute_bfs_batch(const std::vector<PendingQuery>& batch) {
  GraphEntry& entry = *graphs_[batch.front().req.graph];
  const adaptive::Graph& g = entry.g;
  const std::uint32_t k = static_cast<std::uint32_t>(batch.size());

  // Per-query validity check first; invalid members are answered with an
  // error outcome and excluded from the fused launch.
  std::vector<const PendingQuery*> live;
  std::vector<QueryOutcome> outs;
  outs.reserve(k);
  for (const PendingQuery& q : batch) {
    QueryOutcome out = make_outcome(q);
    if (q.req.source >= g.num_nodes()) {
      out.status = adaptive::Status::error;
      out.error = "source out of range";
      out.code = adaptive::ErrorCode::invalid_argument;
      bump("svc.completed");
    } else {
      live.push_back(&q);
    }
    outs.push_back(std::move(out));
  }

  if (!live.empty()) {
    const simt::StreamId stream = pick_stream();
    const double ready = dev_.stream_ready_us(stream);

    // Pre-dispatch deadline check, as in the single-query path: members whose
    // earliest slot already misses their deadline drop out of the launch.
    for (std::size_t i = 0, s = 0; i < outs.size(); ++i) {
      QueryOutcome& out = outs[i];
      if (out.status != adaptive::Status::ok) continue;
      const PendingQuery& q = *live[s];
      if (q.req.deadline_us > 0 && ready > q.submit_us + q.req.deadline_us) {
        out.status = adaptive::Status::timed_out;
        out.code = adaptive::ErrorCode::deadline_exceeded;
        out.stream = stream;
        out.start_us = ready;
        bump("svc.timeout");
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(s));
      } else {
        ++s;
      }
    }
    if (live.empty()) {
      for (QueryOutcome& out : outs) done_.push_back(std::move(out));
      return;
    }

    std::vector<graph::NodeId> sources;
    sources.reserve(live.size());
    for (const PendingQuery* q : live) sources.push_back(q->req.source);

    adaptive::Policy policy = live.front()->req.policy;
    policy.options.engine.stream = stream;
    gg::GpuBfsMultiResult mr;
    const std::uint64_t mark = dev_.mem_mark();
    try {
      mr = policy.mode == adaptive::Policy::Mode::fixed_variant
               ? gg::run_bfs_multi(dev_, entry.dg, g.csr(), sources,
                                   gg::fixed_variant(policy.variant),
                                   policy.options.engine)
               : rt::adaptive_bfs_multi(dev_, entry.dg, g.csr(), sources,
                                        policy.options);
    } catch (const simt::DeviceFault& f) {
      // Fused launch died: unbatch. Record the members already answered
      // (invalid / timed out), then route each live member through the
      // single-query path, whose retry/degradation policy applies per query.
      dev_.mem_reclaim(mark);
      bump("svc.fault");
      bump(std::string("svc.fault.") + simt::fault_kind_name(f.kind()));
      bump("svc.batch_aborted");
      for (QueryOutcome& out : outs) {
        if (out.status != adaptive::Status::ok) done_.push_back(std::move(out));
      }
      for (const PendingQuery* q : live) execute_single(*q);
      return;
    }

    // Scatter the fused result back to the member queries: query s's level
    // of node v lives at levels[v*k + s].
    const std::uint32_t nk = mr.num_sources;
    const std::size_t n = g.num_nodes();
    std::uint32_t s = 0;
    for (QueryOutcome& out : outs) {
      if (out.status != adaptive::Status::ok) continue;
      const PendingQuery& q = *live[s];
      adaptive::BfsResult r;
      r.level.resize(n);
      for (std::size_t v = 0; v < n; ++v) {
        r.level[v] = mr.levels[v * nk + s];
      }
      r.metrics = mr.metrics;  // shared batch metrics, one copy per member
      out.payload = std::move(r);
      out.batch_size = nk;
      finish_outcome(out, stream, ready);
      if (q.req.deadline_us > 0 &&
          out.finish_us > q.submit_us + q.req.deadline_us) {
        out.status = adaptive::Status::timed_out;
        out.code = adaptive::ErrorCode::deadline_exceeded;
        out.payload = std::monostate{};
        bump("svc.timeout");
      } else {
        bump("svc.completed");
      }
      ++s;
    }
    bump("svc.batches");
    bump("svc.batched", static_cast<double>(nk));
  }

  for (QueryOutcome& out : outs) done_.push_back(std::move(out));
}

}  // namespace svc
