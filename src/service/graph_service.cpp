#include "service/graph_service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "cpu/bfs_serial.h"
#include "cpu/cc_serial.h"
#include "cpu/cpu_cost_model.h"
#include "cpu/pagerank_serial.h"
#include "cpu/sssp_serial.h"
#include "graph/csr.h"
#include "runtime/adaptive_engine.h"
#include "runtime/decision.h"
#include "trace/counters.h"
#include "trace/trace_sink.h"

namespace svc {

namespace {

void bump(std::string_view name, double d = 1) {
  auto& reg = trace::CounterRegistry::instance();
  if (reg.enabled()) reg.counter(name).add(d);
}

void gauge_max(const char* name, double v) {
  auto& reg = trace::CounterRegistry::instance();
  if (reg.enabled()) reg.gauge(name).set_max(v);
}

void bump_route(simt::DeviceIndex device) {
  bump("svc.route.dev" + std::to_string(device));
}

}  // namespace

GraphService::GraphService(ServiceOptions opts, const simt::ClusterSpec& cluster)
    : opts_(opts), fleet_(cluster), cache_(opts.cache_bytes) {
  if (opts_.concurrency == 0) opts_.concurrency = 1;
  opts_.max_batch = std::clamp<std::uint32_t>(opts_.max_batch, 1,
                                              gg::kMaxBatchedSources);
  streams_.resize(fleet_.size());
  for (simt::DeviceIndex d = 0; d < fleet_.size(); ++d) {
    streams_[d].reserve(opts_.concurrency);
    for (std::uint32_t i = 0; i < opts_.concurrency; ++i) {
      streams_[d].push_back(
          fleet_.device(d).create_stream("svc" + std::to_string(i)));
    }
  }
}

GraphService::GraphService(ServiceOptions opts, const simt::DeviceProps& props,
                           simt::TimingModel tm)
    : GraphService(std::move(opts), simt::ClusterSpec::single(props, tm)) {}

GraphService::~GraphService() {
  for (auto& entry : graphs_) release_graph(*entry);
}

void GraphService::place_graph(GraphEntry& entry) {
  entry.plan = plan_placement(entry.g.csr(), entry.g.is_weighted(), fleet_,
                              opts_.placement);
  if (entry.plan.replicated()) {
    entry.replicas.reserve(entry.plan.replicas.size());
    for (const simt::DeviceIndex d : entry.plan.replicas) {
      Replica rep;
      rep.device = d;
      rep.dg = gg::DeviceGraph::upload(fleet_.device(d), entry.g.csr(),
                                       entry.g.is_weighted());
      entry.replicas.push_back(std::move(rep));
    }
  } else {
    entry.sharded = make_sharded(fleet_, entry.g.csr(), entry.g.is_weighted(),
                                 entry.plan);
    bump("svc.placement.sharded");
  }
}

void GraphService::release_graph(GraphEntry& entry) {
  for (Replica& rep : entry.replicas) {
    rep.dg.release(fleet_.device(rep.device));
    if (rep.sym_dg) rep.sym_dg->release(fleet_.device(rep.device));
  }
  entry.replicas.clear();
  if (entry.sharded) {
    release_sharded(fleet_, *entry.sharded);
    entry.sharded.reset();
  }
}

GraphId GraphService::add_graph(adaptive::Graph g) {
  auto entry = std::make_unique<GraphEntry>(std::move(g));
  place_graph(*entry);
  graphs_.push_back(std::move(entry));
  return static_cast<GraphId>(graphs_.size() - 1);
}

void GraphService::update_graph(GraphId id, adaptive::Graph g) {
  AGG_CHECK(id < graphs_.size());
  GraphEntry& entry = *graphs_[id];
  release_graph(entry);
  entry.g = std::move(g);
  entry.gen = next_gen_++;
  place_graph(entry);
  // Every cached answer for this id is stale regardless of version: the
  // upload generation in the key already guarantees no hit, dropping them
  // eagerly returns their bytes to the budget.
  const std::size_t dropped = cache_.invalidate_graph(id);
  if (dropped > 0) {
    bump("svc.cache.invalidate", static_cast<double>(dropped));
    gauge_max("svc.cache.bytes", static_cast<double>(cache_.bytes_in_use()));
    if (trace::active()) {
      trace::ServiceEvent ev;
      ev.action = "cache_invalidate";
      ev.graph = id;
      ev.version = (entry.gen << 32) ^ entry.g.version();
      ev.bytes = dropped;  // entry count; their bytes are already released
      ev.ts_us = fleet_.device(0).now_us();
      trace::Tracer::instance().service(ev);
    }
  }
}

const adaptive::Graph& GraphService::graph(GraphId id) const {
  AGG_CHECK(id < graphs_.size());
  return graphs_[id]->g;
}

const PlacementPlan& GraphService::placement(GraphId id) const {
  AGG_CHECK(id < graphs_.size());
  return graphs_[id]->plan;
}

std::optional<QueryId> GraphService::submit(QueryRequest req) {
  AGG_CHECK(req.graph < graphs_.size());
  if (queue_.size() >= opts_.queue_capacity) {
    QueryOutcome out;
    out.id = next_id_++;
    out.algo = req.algo;
    out.graph = req.graph;
    out.status = adaptive::Status::rejected;
    out.error = "queue full";
    out.code = adaptive::ErrorCode::queue_full;
    out.submit_us = fleet_.makespan_us();
    done_.push_back(std::move(out));
    bump("svc.rejected");
    return std::nullopt;
  }
  PendingQuery q;
  q.id = next_id_++;
  q.req = std::move(req);
  q.submit_us = fleet_.makespan_us();
  queue_.push_back(std::move(q));
  bump("svc.queued");
  return queue_.back().id;
}

std::optional<QueryId> GraphService::submit_mutation(GraphId graph,
                                                     graph::EdgeDelta delta) {
  AGG_CHECK(graph < graphs_.size());
  if (queue_.size() >= opts_.queue_capacity) {
    QueryOutcome out;
    out.id = next_id_++;
    out.graph = graph;
    out.mutation = true;
    out.status = adaptive::Status::rejected;
    out.error = "queue full";
    out.code = adaptive::ErrorCode::queue_full;
    out.submit_us = fleet_.makespan_us();
    done_.push_back(std::move(out));
    bump("svc.rejected");
    return std::nullopt;
  }
  PendingQuery q;
  q.id = next_id_++;
  q.req.graph = graph;
  q.mutation = std::move(delta);
  q.submit_us = fleet_.makespan_us();
  queue_.push_back(std::move(q));
  bump("svc.queued");
  return queue_.back().id;
}

const graph::IncrementalCc& GraphService::incremental_cc(GraphId id) {
  AGG_CHECK(id < graphs_.size());
  GraphEntry& entry = *graphs_[id];
  if (!entry.inc_cc) entry.inc_cc = graph::IncrementalCc(entry.g.csr());
  return *entry.inc_cc;
}

simt::StreamId GraphService::pick_stream(simt::DeviceIndex device) const {
  const simt::Device& dev = fleet_.device(device);
  const std::vector<simt::StreamId>& pool = streams_[device];
  simt::StreamId best = pool.front();
  double best_ready = dev.stream_ready_us(best);
  for (std::size_t i = 1; i < pool.size(); ++i) {
    const double r = dev.stream_ready_us(pool[i]);
    if (r < best_ready) {
      best_ready = r;
      best = pool[i];
    }
  }
  return best;
}

GraphService::Replica* GraphService::replica_on(GraphEntry& entry,
                                                simt::DeviceIndex device) {
  for (Replica& rep : entry.replicas) {
    if (rep.device == device) return &rep;
  }
  return nullptr;
}

std::uint32_t GraphService::healthy_replicas(const GraphEntry& entry) const {
  std::uint32_t n = 0;
  for (const Replica& rep : entry.replicas) {
    if (fleet_.device(rep.device).healthy()) ++n;
  }
  return n;
}

GraphService::Route GraphService::route_query(const GraphEntry& entry) const {
  // Earliest-modeled-ready-time over every healthy replica's stream pool.
  // Replicas are stored in device-ordinal order and pick_stream breaks ties
  // by lowest stream id, so the choice is deterministic.
  Route route;
  bool saw_dead = false;
  for (const Replica& rep : entry.replicas) {
    if (!fleet_.device(rep.device).healthy()) {
      saw_dead = true;
      continue;
    }
    const simt::StreamId s = pick_stream(rep.device);
    const double ready = fleet_.device(rep.device).stream_ready_us(s);
    if (!route.ok || ready < route.ready_us) {
      route.ok = true;
      route.device = rep.device;
      route.stream = s;
      route.ready_us = ready;
    }
  }
  route.failover = route.ok && saw_dead;
  return route;
}

bool GraphService::batchable(const PendingQuery& a, const PendingQuery& b) const {
  return !a.mutation && !b.mutation &&
         a.req.algo == Algo::bfs && b.req.algo == Algo::bfs &&
         a.req.graph == b.req.graph &&
         a.req.policy.mode == b.req.policy.mode &&
         a.req.policy.mode != adaptive::Policy::Mode::cpu_serial &&
         a.req.policy.variant == b.req.policy.variant;
}

QueryOutcome GraphService::make_outcome(const PendingQuery& q) const {
  QueryOutcome out;
  out.id = q.id;
  out.algo = q.req.algo;
  out.graph = q.req.graph;
  out.submit_us = q.submit_us;
  return out;
}

bool GraphService::cache_servable(const QueryRequest& req) const {
  // cpu_serial is refused by the service anyway; everything else produces a
  // deterministic exact payload, so it can be keyed, cached and collapsed.
  return req.policy.mode != adaptive::Policy::Mode::cpu_serial;
}

CacheKey GraphService::key_for(const QueryRequest& req) const {
  const GraphEntry& entry = *graphs_[req.graph];
  return make_cache_key(req.graph, (entry.gen << 32) ^ entry.g.version(),
                        req.algo, req.source, req.damping, req.policy);
}

void GraphService::publish_service_event(const char* action,
                                         const QueryRequest& req, QueryId query,
                                         QueryId leader, std::uint64_t bytes,
                                         double ts_us) const {
  if (!trace::active()) return;
  const GraphEntry& entry = *graphs_[req.graph];
  trace::ServiceEvent ev;
  ev.action = action;
  ev.algo = algo_name(req.algo);
  ev.graph = req.graph;
  ev.version = (entry.gen << 32) ^ entry.g.version();
  ev.source = req.source;
  ev.query = query;
  ev.leader = leader;
  ev.bytes = bytes;
  ev.ts_us = ts_us;
  trace::Tracer::instance().service(ev);
}

void GraphService::serve_copy(const PendingQuery& q, const Payload& payload,
                              std::size_t bytes, QueryOutcome& out,
                              QueryId leader, double not_before) {
  // Host-memory serving: the payload is copied out of the cache (or the
  // collapse leader's outcome) on the modeled single-core host timeline.
  // The device is untouched — no kernel, no transfer, no stream slot.
  const double start =
      std::max(std::max(host_ready_us_, q.submit_us), not_before);
  const double dur = opts_.cache_cost.hit_us(bytes);
  host_ready_us_ = start + dur;
  out.payload = payload;
  out.cached = leader == 0;
  out.collapsed = leader != 0;
  out.collapsed_into = leader;
  out.stream = 0;  // never dispatched to a device stream
  out.start_us = start;
  out.finish_us = host_ready_us_;
  if (q.req.deadline_us > 0 &&
      out.finish_us > q.submit_us + q.req.deadline_us) {
    out.status = adaptive::Status::timed_out;
    out.code = adaptive::ErrorCode::deadline_exceeded;
    out.payload = std::monostate{};
    bump("svc.timeout");
  } else {
    bump("svc.completed");
  }
}

void GraphService::store_result(const PendingQuery& q, const Payload& payload) {
  // Only completed exact payloads reach this point: faulted attempts throw
  // before their outcome carries a payload, and error paths never call it —
  // a partial result can therefore never poison the cache.
  if (!cache_.enabled() || !cache_servable(q.req)) return;
  if (std::holds_alternative<std::monostate>(payload)) return;
  const CacheKey key = key_for(q.req);
  const std::size_t bytes = payload_bytes(payload);
  const std::size_t before = cache_.entries();
  const std::size_t evicted = cache_.insert(key, payload, bytes);
  if (evicted > 0) bump("svc.cache.evict", static_cast<double>(evicted));
  if (cache_.entries() > before - evicted) {
    bump("svc.cache.insert");
    gauge_max("svc.cache.bytes", static_cast<double>(cache_.bytes_in_use()));
    publish_service_event("cache_insert", q.req, q.id, 0, bytes,
                          fleet_.device(0).now_us());
  }
}

std::vector<QueryOutcome> GraphService::drain() {
  while (!queue_.empty()) {
    // Mutations execute strictly in admission order: everything ahead of
    // one in the FIFO has already run against the old version by the time
    // it applies, everything behind it sees the new version.
    if (queue_.front().mutation) {
      PendingQuery q = std::move(queue_.front());
      queue_.pop_front();
      execute_mutation(std::move(q));
      continue;
    }
    // Sharded entries never batch: their BSP executor has no fused
    // multi-source path (queries run whole-fleet supersteps instead).
    const bool front_replicated =
        graphs_[queue_.front().req.graph]->plan.replicated();
    if (opts_.batch_bfs && front_replicated &&
        queue_.front().req.algo == Algo::bfs &&
        queue_.front().req.policy.mode != adaptive::Policy::Mode::cpu_serial) {
      // Collect the longest batchable FIFO prefix (dispatch order preserved).
      std::vector<PendingQuery> batch;
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      while (!queue_.empty() && batch.size() < opts_.max_batch &&
             batchable(batch.front(), queue_.front())) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (batch.size() > 1) {
        execute_bfs_batch(std::move(batch));
      } else {
        execute_query(std::move(batch.front()));
      }
    } else {
      PendingQuery q = std::move(queue_.front());
      queue_.pop_front();
      execute_query(std::move(q));
    }
  }
  return std::exchange(done_, {});
}

void GraphService::execute_query(PendingQuery q) {
  // Request collapsing (singleflight): every identical pending query —
  // anywhere in the queue — attaches to this execution and is served a copy
  // of its result instead of re-running.
  std::vector<PendingQuery> followers;
  if (opts_.collapse && cache_servable(q.req)) {
    const CacheKey key = key_for(q.req);
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (it->mutation) {
        // A pending mutation of the same graph is a version barrier: keys
        // are computed against the current version, so a query behind it
        // must not collapse onto this pre-mutation execution.
        if (it->req.graph == q.req.graph) break;
        ++it;
        continue;
      }
      if (cache_servable(it->req) && key_for(it->req) == key) {
        followers.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  const QueryId leader = q.id;
  execute_single(std::move(q));
  if (followers.empty()) return;

  const QueryOutcome& led = done_.back();
  if (led.id == leader &&
      !std::holds_alternative<std::monostate>(led.payload)) {
    // Copy once: pushing follower outcomes may reallocate done_.
    const Payload payload = led.payload;
    const double not_before = led.finish_us;
    const std::size_t bytes = payload_bytes(payload);
    for (PendingQuery& f : followers) {
      QueryOutcome out = make_outcome(f);
      serve_copy(f, payload, bytes, out, leader, not_before);
      bump("svc.collapse");
      publish_service_event("collapse", f.req, f.id, leader, bytes,
                            out.finish_us);
      done_.push_back(std::move(out));
    }
  } else {
    // The leader produced no payload (error, or its deadline dropped it);
    // followers execute on their own — the first success repopulates the
    // cache and answers the rest.
    for (PendingQuery& f : followers) execute_single(std::move(f));
  }
}

void GraphService::finish_outcome(QueryOutcome& out, simt::DeviceIndex device,
                                  simt::StreamId stream, double start) {
  out.device = device;
  out.stream = stream;
  out.start_us = start;
  out.finish_us = fleet_.device(device).stream_ready_us(stream);
  // Modeled concurrency at this point in the schedule: streams — across the
  // whole fleet — still busy past this query's start.
  std::uint32_t inflight = 0;
  for (simt::DeviceIndex d = 0; d < fleet_.size(); ++d) {
    for (const simt::StreamId s : streams_[d]) {
      if (fleet_.device(d).stream_ready_us(s) > start) ++inflight;
    }
  }
  gauge_max("svc.running", inflight);
}

void GraphService::execute_single(PendingQuery q) {
  QueryOutcome out = make_outcome(q);
  GraphEntry& entry = *graphs_[q.req.graph];
  const adaptive::Graph& g = entry.g;

  if (q.req.policy.mode == adaptive::Policy::Mode::cpu_serial) {
    out.status = adaptive::Status::error;
    out.error = "cpu_serial policies are not servable (wall-clock timing)";
    out.code = adaptive::ErrorCode::invalid_argument;
    done_.push_back(std::move(out));
    bump("svc.completed");
    return;
  }
  if ((q.req.algo == Algo::sssp) && !g.is_weighted()) {
    out.status = adaptive::Status::error;
    out.error = "sssp requires edge weights";
    out.code = adaptive::ErrorCode::invalid_argument;
    done_.push_back(std::move(out));
    bump("svc.completed");
    return;
  }
  if ((q.req.algo == Algo::bfs || q.req.algo == Algo::sssp) &&
      q.req.source >= g.num_nodes()) {
    out.status = adaptive::Status::error;
    out.error = "source out of range";
    out.code = adaptive::ErrorCode::invalid_argument;
    done_.push_back(std::move(out));
    bump("svc.completed");
    return;
  }

  // Result cache: a completed exact answer for this key is served from host
  // memory — before the health check, because a hit needs no device at all.
  if (cache_.enabled() && cache_servable(q.req)) {
    if (const auto* e = cache_.lookup(key_for(q.req))) {
      serve_copy(q, e->value, e->bytes, out, 0, 0);
      bump("svc.cache.hit");
      publish_service_event("cache_hit", q.req, q.id, 0, e->bytes,
                            out.finish_us);
      done_.push_back(std::move(out));
      return;
    }
    bump("svc.cache.miss");
  }

  if (entry.sharded) {
    execute_sharded(std::move(q), entry, std::move(out));
    return;
  }

  Route route = route_query(entry);
  if (!route.ok) {
    // No healthy replica holds the graph: every attempt would fail
    // permanently, so skip straight to degradation (or report the loss when
    // degradation is off). This is the single-device dead-device behavior.
    if (opts_.resilience.degrade_to_cpu) {
      run_degraded(q, g, out);
      bump("svc.degraded");
      bump("svc.degraded.dead");
      bump("svc.completed");
      store_result(q, out.payload);
    } else {
      out.status = adaptive::Status::error;
      out.error = "no healthy replica for graph " +
                  std::to_string(q.req.graph) + " (" +
                  std::to_string(entry.replicas.size()) +
                  " replicas, all devices lost)";
      out.code = adaptive::ErrorCode::device_lost;
      bump("svc.failed");
    }
    done_.push_back(std::move(out));
    return;
  }
  if (route.failover) {
    // A dead replica was routed around: the query is served by a surviving
    // device instead of degrading to the CPU.
    out.failover = true;
    bump("svc.failover");
  }

  double ready = route.ready_us;
  if (q.req.deadline_us > 0 && ready > q.submit_us + q.req.deadline_us) {
    // The earliest slot already misses the deadline. The CPU may still make
    // it: its timeline is independent of the congested streams.
    rt::FallbackInput fi;
    fi.device_healthy = true;
    fi.deadline_us = q.req.deadline_us;
    fi.submit_us = q.submit_us;
    fi.gpu_start_us = ready;
    fi.cpu_start_us = std::max(host_ready_us_, q.submit_us);
    fi.cpu_estimate_us = estimate_cpu_us(q.req.algo, g);
    if (opts_.resilience.degrade_to_cpu && rt::choose_cpu_fallback(fi)) {
      run_degraded(q, g, out);
      bump("svc.degraded");
      bump("svc.degraded.deadline");
      bump("svc.completed");
      store_result(q, out.payload);
      done_.push_back(std::move(out));
      return;
    }
    // Time out without spending device time.
    out.status = adaptive::Status::timed_out;
    out.code = adaptive::ErrorCode::deadline_exceeded;
    out.device = route.device;
    out.stream = route.stream;
    out.start_us = ready;
    done_.push_back(std::move(out));
    bump("svc.timeout");
    return;
  }

  // Resilient execution: retry transient faults with modeled-time backoff on
  // the routed slot, fail over to a surviving replica when the device dies,
  // then degrade to the CPU oracle (or fail) per the resilience policy.
  bump_route(route.device);
  int attempts = 0;
  for (;;) {
    simt::Device& dev = fleet_.device(route.device);
    Replica* rep = replica_on(entry, route.device);
    AGG_CHECK(rep != nullptr);
    const std::uint64_t mark = dev.mem_mark();
    const bool had_sym = rep->sym_dg.has_value();
    try {
      run_device_query(q, entry, route, out);
      break;
    } catch (const simt::DeviceFault& f) {
      dev.mem_reclaim(mark);
      if (!had_sym && rep->sym_dg) {
        // The symmetrized upload of this attempt died with the fault; its
        // accounting was just reclaimed, so drop the handle without release.
        rep->sym_dg.reset();
      }
      ++attempts;
      bump("svc.fault");
      bump(std::string("svc.fault.") + simt::fault_kind_name(f.kind()));
      const FaultAction action =
          next_action(opts_.resilience, attempts, f.permanent(), dev.healthy(),
                      healthy_replicas(entry) > 0);
      if (action == FaultAction::retry) {
        const double delay = backoff_us(opts_.resilience, attempts);
        {
          simt::StreamGuard sguard(dev, route.stream);
          dev.account_host_compute(delay);
        }
        ++out.retries;
        bump("svc.retry");
        bump("svc.retry.backoff_us", delay);
        continue;
      }
      if (action == FaultAction::failover) {
        // The routed device is dead but another replica survives: re-route
        // and re-execute there. Failed-over attempts count as retries.
        route = route_query(entry);
        AGG_CHECK(route.ok);
        ready = route.ready_us;
        out.failover = true;
        ++out.retries;
        bump("svc.failover");
        bump_route(route.device);
        continue;
      }
      if (action == FaultAction::degrade) {
        run_degraded(q, g, out);
        bump("svc.degraded");
        bump(f.permanent() ? "svc.degraded.dead" : "svc.degraded.fault");
        bump("svc.completed");
        store_result(q, out.payload);
        done_.push_back(std::move(out));
        return;
      }
      out.status = adaptive::Status::error;
      out.error = f.what();
      out.code = adaptive::detail::fault_code(f);
      out.device = route.device;
      out.stream = route.stream;
      out.start_us = ready;
      done_.push_back(std::move(out));
      bump("svc.failed");
      return;
    }
  }

  finish_outcome(out, route.device, route.stream, ready);
  // The payload is complete and exact, so it enters the cache even when the
  // deadline check right after drops it from this outcome.
  store_result(q, out.payload);
  if (q.req.deadline_us > 0 &&
      out.finish_us > q.submit_us + q.req.deadline_us) {
    out.status = adaptive::Status::timed_out;
    out.code = adaptive::ErrorCode::deadline_exceeded;
    out.payload = std::monostate{};
    bump("svc.timeout");
  } else {
    bump("svc.completed");
  }
  done_.push_back(std::move(out));
}

void GraphService::execute_mutation(PendingQuery q) {
  QueryOutcome out = make_outcome(q);
  out.mutation = true;
  GraphEntry& entry = *graphs_[q.req.graph];
  const graph::EdgeDelta& delta = *q.mutation;

  const std::string err = graph::delta_error(entry.g.csr(), delta);
  if (!err.empty()) {
    // The graph is untouched: an inapplicable delta is the caller's bug and
    // must not leave host/device state out of sync.
    out.status = adaptive::Status::error;
    out.error = "inapplicable delta: " + err;
    out.code = adaptive::ErrorCode::invalid_argument;
    done_.push_back(std::move(out));
    bump("svc.completed");
    return;
  }
  const double start = std::max(host_ready_us_, q.submit_us);
  if (delta.empty()) {
    out.start_us = start;
    out.finish_us = start;
    done_.push_back(std::move(out));
    bump("svc.completed");
    return;
  }

  bump("svc.mutate");
  bump("svc.mutate.edges", static_cast<double>(delta.num_ops()));

  // Snapshot the pre-delta component labels: the cache keep-test below is
  // defined entirely in terms of the OLD partition.
  if (!entry.inc_cc) entry.inc_cc = graph::IncrementalCc(entry.g.csr());
  std::vector<std::uint32_t> old_labels;
  std::vector<std::uint32_t> affected;
  if (cache_.enabled()) {
    old_labels.assign(entry.inc_cc->labels().begin(),
                      entry.inc_cc->labels().end());
    affected = affected_components(old_labels, delta);
  }

  // Host-side apply + incremental CC update, charged to the modeled host
  // timeline (the same single-core line degraded queries and cache hits
  // use): proportional to the delta plus the CC rescan it forced.
  entry.g.apply_delta(delta);
  entry.inc_cc->apply(entry.g.csr(), delta);
  const std::size_t host_bytes =
      delta.num_ops() * 16 + entry.inc_cc->last_edges_rescanned() * 8;
  host_ready_us_ = start + opts_.cache_cost.hit_us(host_bytes);
  out.start_us = start;
  double finish = host_ready_us_;

  if (entry.plan.replicated()) {
    // Patch every healthy replica in place. The patch transfer is ordered
    // after everything already issued on the device (max over the stream
    // pool): a dispatched pre-mutation query may still be reading the very
    // buffers the patch overwrites. Post-mutation queries in turn start
    // after the patch on every stream.
    std::vector<std::size_t> dead;
    for (std::size_t ri = 0; ri < entry.replicas.size(); ++ri) {
      Replica& rep = entry.replicas[ri];
      simt::Device& dev = fleet_.device(rep.device);
      if (!dev.healthy()) continue;
      double barrier = host_ready_us_;
      for (const simt::StreamId s : streams_[rep.device]) {
        barrier = std::max(barrier, dev.stream_ready_us(s));
      }
      const simt::StreamId s0 = streams_[rep.device].front();
      {
        simt::StreamGuard sguard(dev, s0);
        const double r0 = dev.stream_ready_us(s0);
        if (barrier > r0) dev.account_host_compute(barrier - r0);
        try {
          const gg::DeviceGraph::PatchStats ps =
              rep.dg.patch(dev, entry.g.csr(), entry.g.is_weighted());
          out.rebuilt = out.rebuilt || ps.rebuilt;
          bump(ps.rebuilt ? "svc.mutate.rebuild" : "svc.mutate.patch");
          bump("svc.mutate.bytes", static_cast<double>(ps.bytes_sent));
          if (rep.sym_dg) {
            // The symmetrized closure is a derived structure; drop it and
            // let the next cc query re-derive it from the new CSR.
            rep.sym_dg->release(dev);
            rep.sym_dg.reset();
          }
        } catch (const simt::DeviceFault&) {
          // The replica's device copy may be half-patched: release it and
          // re-upload from scratch; if the device cannot even hold a fresh
          // copy, drop the replica (routing skips it from now on).
          bump("svc.fault");
          rep.dg.release(dev);
          if (rep.sym_dg) {
            rep.sym_dg->release(dev);
            rep.sym_dg.reset();
          }
          const std::uint64_t mark = dev.mem_mark();
          try {
            rep.dg = gg::DeviceGraph::upload(dev, entry.g.csr(),
                                             entry.g.is_weighted());
            out.rebuilt = true;
            bump("svc.mutate.reupload");
          } catch (const simt::DeviceFault&) {
            dev.mem_reclaim(mark);
            dead.push_back(ri);
          }
        }
      }
      // Make the patch a barrier for the rest of the pool: subsequent
      // queries on any stream must observe the new CSR.
      const double patched = dev.stream_ready_us(s0);
      for (const simt::StreamId s : streams_[rep.device]) {
        if (s == s0) continue;
        const double r = dev.stream_ready_us(s);
        if (patched > r) {
          simt::StreamGuard sguard(dev, s);
          dev.account_host_compute(patched - r);
        }
      }
      finish = std::max(finish, patched);
    }
    for (auto it = dead.rbegin(); it != dead.rend(); ++it) {
      entry.replicas.erase(entry.replicas.begin() +
                           static_cast<std::ptrdiff_t>(*it));
    }
  } else {
    // Sharded placements have no incremental patch path (shard boundaries
    // move with the edge distribution): compacting re-place. The upload
    // generation stays — the version bump already retires stale keys, and
    // placement does not change answers.
    release_graph(entry);
    place_graph(entry);
    out.rebuilt = true;
    bump("svc.mutate.reshard");
    if (entry.sharded) {
      for (const Shard& sh : entry.sharded->shards) {
        finish = std::max(finish, fleet_.device(sh.device).now_us());
      }
    }
  }

  // Delta-aware cache invalidation: survivors are re-keyed to the new
  // version so post-mutation repeats still hit.
  if (cache_.enabled()) {
    const std::uint64_t new_version = (entry.gen << 32) ^ entry.g.version();
    const auto res = cache_.delta_invalidate(
        q.req.graph, new_version, [&](const CacheKey& k) {
          return entry_survives_delta(k, old_labels, affected);
        });
    if (res.kept > 0) bump("svc.cache.delta_keep", static_cast<double>(res.kept));
    if (res.dropped > 0) {
      bump("svc.cache.invalidate", static_cast<double>(res.dropped));
    }
    gauge_max("svc.cache.bytes", static_cast<double>(cache_.bytes_in_use()));
    if (trace::active()) {
      trace::ServiceEvent ev;
      ev.action = "cache_delta";
      ev.graph = q.req.graph;
      ev.version = new_version;
      ev.query = q.id;
      ev.bytes = res.kept;  // survivors; dropped bytes already released
      ev.ts_us = finish;
      trace::Tracer::instance().service(ev);
    }
  }

  if (trace::active()) {
    trace::ServiceEvent ev;
    ev.action = "mutate";
    ev.graph = q.req.graph;
    ev.version = (entry.gen << 32) ^ entry.g.version();
    ev.query = q.id;
    ev.bytes = delta.num_ops();
    ev.ts_us = finish;
    trace::Tracer::instance().service(ev);
  }
  out.finish_us = finish;
  done_.push_back(std::move(out));
  bump("svc.completed");
}

void GraphService::execute_sharded(PendingQuery q, GraphEntry& entry,
                                   QueryOutcome out) {
  const adaptive::Graph& g = entry.g;
  ShardedGraph& sg = *entry.sharded;
  bump("svc.sharded");

  // A BSP superstep needs every shard's device; a single dead shard device
  // makes the sharded copy unusable (there are no replicas to fail over to),
  // so the query degrades to the CPU oracle — or reports the loss.
  for (std::size_t si = 0; si < sg.shards.size(); ++si) {
    const Shard& sh = sg.shards[si];
    if (fleet_.device(sh.device).healthy()) continue;
    if (opts_.resilience.degrade_to_cpu) {
      run_degraded(q, g, out);
      bump("svc.degraded");
      bump("svc.degraded.dead");
      bump("svc.completed");
      store_result(q, out.payload);
    } else {
      out.status = adaptive::Status::error;
      out.error = "shard " + std::to_string(si) + " of graph " +
                  std::to_string(q.req.graph) + " on " +
                  fleet_.device(sh.device).label() + " lost";
      out.code = adaptive::ErrorCode::device_lost;
      bump("svc.failed");
    }
    done_.push_back(std::move(out));
    return;
  }

  // SSSP / PageRank have no sharded kernels: the exact CPU oracle answers
  // (degraded outcome), never a wrong answer.
  if (q.req.algo == Algo::sssp || q.req.algo == Algo::pagerank) {
    run_degraded(q, g, out);
    bump("svc.degraded");
    bump("svc.degraded.sharded");
    bump("svc.completed");
    store_result(q, out.payload);
    done_.push_back(std::move(out));
    return;
  }

  // One stream per shard, earliest-ready on each owner device.
  std::vector<simt::StreamId> shard_streams;
  std::vector<std::uint64_t> marks;
  std::vector<char> had_sym;
  shard_streams.reserve(sg.shards.size());
  for (const Shard& sh : sg.shards) {
    shard_streams.push_back(pick_stream(sh.device));
    marks.push_back(fleet_.device(sh.device).mem_mark());
    had_sym.push_back(sh.sym_dg.has_value() ? 1 : 0);
    bump_route(sh.device);
  }

  ShardedRun run;
  try {
    switch (q.req.algo) {
      case Algo::bfs: {
        adaptive::BfsResult r;
        run = sharded_bfs(fleet_, sg, q.req.source, shard_streams, q.submit_us,
                          r.level);
        out.payload = std::move(r);
        break;
      }
      case Algo::cc: {
        adaptive::CcResult r;
        run = sharded_cc(fleet_, sg, shard_streams, q.submit_us, r.component,
                         r.num_components);
        out.payload = std::move(r);
        break;
      }
      default:
        AGG_CHECK(false);
    }
  } catch (const simt::DeviceFault& f) {
    // A shard attempt died mid-superstep. Partial BSP state spans several
    // devices, so there is no cheap same-placement retry; reclaim every
    // shard device's scratch and answer from the CPU oracle per policy.
    for (std::size_t i = 0; i < sg.shards.size(); ++i) {
      fleet_.device(sg.shards[i].device).mem_reclaim(marks[i]);
      if (!had_sym[i] && sg.shards[i].sym_dg) sg.shards[i].sym_dg.reset();
    }
    bump("svc.fault");
    bump(std::string("svc.fault.") + simt::fault_kind_name(f.kind()));
    if (opts_.resilience.degrade_to_cpu) {
      run_degraded(q, g, out);
      bump("svc.degraded");
      bump(f.permanent() ? "svc.degraded.dead" : "svc.degraded.fault");
      bump("svc.completed");
      store_result(q, out.payload);
    } else {
      out.status = adaptive::Status::error;
      out.error = f.what();
      out.code = adaptive::detail::fault_code(f);
      bump("svc.failed");
    }
    done_.push_back(std::move(out));
    return;
  }

  out.sharded = true;
  out.device = sg.shards.front().device;
  out.stream = shard_streams.front();
  out.start_us = run.start_us;
  out.finish_us = run.finish_us;
  store_result(q, out.payload);
  if (q.req.deadline_us > 0 &&
      out.finish_us > q.submit_us + q.req.deadline_us) {
    out.status = adaptive::Status::timed_out;
    out.code = adaptive::ErrorCode::deadline_exceeded;
    out.payload = std::monostate{};
    bump("svc.timeout");
  } else {
    bump("svc.completed");
  }
  done_.push_back(std::move(out));
}

void GraphService::run_device_query(const PendingQuery& q, GraphEntry& entry,
                                    const Route& route, QueryOutcome& out) {
  simt::Device& dev = fleet_.device(route.device);
  Replica& rep = *replica_on(entry, route.device);
  const simt::StreamId stream = route.stream;
  const adaptive::Graph& g = entry.g;
  adaptive::Policy policy = q.req.policy;
  policy.options.engine.stream = stream;
  const bool fixed = policy.mode == adaptive::Policy::Mode::fixed_variant;

  switch (q.req.algo) {
    case Algo::bfs: {
      adaptive::BfsResult r;
      gg::GpuBfsResult gr =
          fixed ? gg::run_bfs(dev, rep.dg, g.csr(), q.req.source,
                              gg::fixed_variant(policy.variant),
                              policy.options.engine)
                : rt::adaptive_bfs(dev, rep.dg, g.csr(), q.req.source,
                                   policy.options);
      r.level = std::move(gr.level);
      r.metrics = std::move(gr.metrics);
      out.payload = std::move(r);
      break;
    }
    case Algo::sssp: {
      adaptive::SsspResult r;
      gg::GpuSsspResult gr =
          fixed ? gg::run_sssp(dev, rep.dg, g.csr(), q.req.source,
                               gg::fixed_variant(policy.variant),
                               policy.options.engine)
                : rt::adaptive_sssp(dev, rep.dg, g.csr(), q.req.source,
                                    policy.options);
      r.dist = std::move(gr.dist);
      r.metrics = std::move(gr.metrics);
      out.payload = std::move(r);
      break;
    }
    case Algo::cc: {
      // cc needs both arcs; lazily upload the symmetrized closure once per
      // replica device.
      const bool needs_sym =
          policy.symmetrize == adaptive::Symmetrize::always ||
          (policy.symmetrize == adaptive::Symmetrize::auto_detect &&
           !g.is_symmetric());
      gg::DeviceGraph* dg = &rep.dg;
      const graph::Csr* csr = &g.csr();
      if (needs_sym) {
        csr = &g.symmetrized();
        if (!rep.sym_dg) {
          simt::StreamGuard sguard(dev, stream);
          rep.sym_dg = gg::DeviceGraph::upload(dev, *csr,
                                               /*with_weights=*/false);
        }
        dg = &*rep.sym_dg;
      }
      adaptive::CcResult r;
      gg::GpuCcResult gr =
          fixed ? gg::run_cc(dev, *dg, *csr, gg::fixed_variant(policy.variant),
                             policy.options.engine)
                : rt::adaptive_cc(dev, *dg, *csr, policy.options);
      r.component = std::move(gr.component);
      r.num_components = gr.num_components;
      r.metrics = std::move(gr.metrics);
      out.payload = std::move(r);
      break;
    }
    case Algo::pagerank: {
      gg::PageRankOptions po;
      po.damping = q.req.damping;
      po.engine = policy.options.engine;
      adaptive::PageRankResult r;
      gg::GpuPageRankResult gr =
          fixed ? gg::run_pagerank(dev, rep.dg, g.csr(),
                                   gg::fixed_variant(policy.variant), po)
                : rt::adaptive_pagerank(dev, rep.dg, g.csr(), po,
                                        policy.options);
      r.rank.assign(gr.rank.begin(), gr.rank.end());
      r.metrics = std::move(gr.metrics);
      out.payload = std::move(r);
      break;
    }
  }
}

void GraphService::run_degraded(const PendingQuery& q, const adaptive::Graph& g,
                                QueryOutcome& out) {
  const cpu::CpuModel& model = cpu::CpuModel::core_i7();
  const double start = std::max(host_ready_us_, q.submit_us);
  double dur_us = 0;
  switch (q.req.algo) {
    case Algo::bfs: {
      cpu::BfsResult r = cpu::bfs(g.csr(), q.req.source);
      dur_us = model.bfs_time_us(r.counts, g.num_nodes());
      adaptive::BfsResult ar;
      ar.level = std::move(r.level);
      ar.cpu_wall_ms = r.wall_ms;
      ar.degraded = true;
      out.payload = std::move(ar);
      break;
    }
    case Algo::sssp: {
      cpu::SsspResult r = cpu::dijkstra(g.csr(), q.req.source);
      dur_us = model.dijkstra_time_us(r.counts, g.num_nodes());
      adaptive::SsspResult ar;
      ar.dist = std::move(r.dist);
      ar.cpu_wall_ms = r.wall_ms;
      ar.degraded = true;
      out.payload = std::move(ar);
      break;
    }
    case Algo::cc: {
      const bool needs_sym =
          q.req.policy.symmetrize == adaptive::Symmetrize::always ||
          (q.req.policy.symmetrize == adaptive::Symmetrize::auto_detect &&
           !g.is_symmetric());
      cpu::CcResult r =
          cpu::connected_components(needs_sym ? g.symmetrized() : g.csr());
      dur_us = model.cc_time_us(r.counts, g.num_nodes());
      adaptive::CcResult ar;
      ar.component = std::move(r.component);
      ar.num_components = r.num_components;
      ar.cpu_wall_ms = r.wall_ms;
      ar.degraded = true;
      out.payload = std::move(ar);
      break;
    }
    case Algo::pagerank: {
      cpu::PageRankOptions po;
      po.damping = q.req.damping;
      cpu::PageRankResult r = cpu::pagerank(g.csr(), po);
      dur_us = model.pagerank_time_us(r.counts, g.num_nodes());
      adaptive::PageRankResult ar;
      ar.rank = std::move(r.rank);
      ar.cpu_wall_ms = r.wall_ms;
      ar.degraded = true;
      out.payload = std::move(ar);
      break;
    }
  }
  host_ready_us_ = start + dur_us;
  out.degraded = true;
  out.stream = 0;  // never dispatched to a device stream
  out.start_us = start;
  out.finish_us = host_ready_us_;
}

double GraphService::estimate_cpu_us(Algo algo, const adaptive::Graph& g) const {
  const cpu::CpuModel& model = cpu::CpuModel::core_i7();
  const std::uint32_t n = g.num_nodes();
  const auto m = static_cast<std::uint64_t>(g.num_edges());
  switch (algo) {
    case Algo::bfs: {
      cpu::BfsCounts c;
      c.nodes_popped = n;
      c.edges_scanned = m;
      return model.bfs_time_us(c, n);
    }
    case Algo::sssp: {
      cpu::SsspCounts c;
      c.heap_pops = n;
      c.heap_pushes = m;
      c.edges_relaxed = m;
      return model.dijkstra_time_us(c, n);
    }
    case Algo::cc: {
      cpu::CcCounts c;
      c.edges_scanned = m;
      c.find_steps = 2 * m;
      return model.cc_time_us(c, n);
    }
    case Algo::pagerank: {
      cpu::PageRankCounts c;
      c.iterations = 20;  // typical convergence at the default tolerance
      c.edge_updates = 20 * m;
      return model.pagerank_time_us(c, n);
    }
  }
  return 0;
}

void GraphService::execute_bfs_batch(std::vector<PendingQuery> batch) {
  GraphEntry& entry = *graphs_[batch.front().req.graph];
  const adaptive::Graph& g = entry.g;
  const std::size_t k = batch.size();

  // Per-member validity and cache screening: invalid members get an error
  // outcome, cache hits are served from host memory, and only the rest —
  // `live`, as indices into `batch` — head for the fused launch.
  std::vector<QueryOutcome> outs;
  outs.reserve(k);
  std::vector<char> resolved(k, 0);
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < k; ++i) {
    const PendingQuery& q = batch[i];
    QueryOutcome out = make_outcome(q);
    if (q.req.source >= g.num_nodes()) {
      out.status = adaptive::Status::error;
      out.error = "source out of range";
      out.code = adaptive::ErrorCode::invalid_argument;
      bump("svc.completed");
      resolved[i] = 1;
    } else {
      const ResultCache<Payload>::Entry* e =
          cache_.enabled() && cache_servable(q.req)
              ? cache_.lookup(key_for(q.req))
              : nullptr;
      if (e != nullptr) {
        serve_copy(q, e->value, e->bytes, out, 0, 0);
        bump("svc.cache.hit");
        publish_service_event("cache_hit", q.req, q.id, 0, e->bytes,
                              out.finish_us);
        resolved[i] = 1;
      } else {
        if (cache_.enabled() && cache_servable(q.req)) bump("svc.cache.miss");
        live.push_back(i);
      }
    }
    outs.push_back(std::move(out));
  }

  if (!live.empty()) {
    const Route route = route_query(entry);
    if (!route.ok) {
      // No healthy replica: record what's already resolved and route the
      // live members through the single-query degradation path.
      for (std::size_t i = 0; i < k; ++i) {
        if (resolved[i]) done_.push_back(std::move(outs[i]));
      }
      for (const std::size_t i : live) execute_single(std::move(batch[i]));
      return;
    }
    simt::Device& dev = fleet_.device(route.device);
    Replica& rep = *replica_on(entry, route.device);
    const simt::StreamId stream = route.stream;
    const double ready = route.ready_us;

    // Pre-dispatch deadline check, as in the single-query path: members whose
    // earliest slot already misses their deadline drop out of the launch.
    for (auto it = live.begin(); it != live.end();) {
      const PendingQuery& q = batch[*it];
      if (q.req.deadline_us > 0 && ready > q.submit_us + q.req.deadline_us) {
        QueryOutcome& out = outs[*it];
        out.status = adaptive::Status::timed_out;
        out.code = adaptive::ErrorCode::deadline_exceeded;
        out.device = route.device;
        out.stream = stream;
        out.start_us = ready;
        bump("svc.timeout");
        resolved[*it] = 1;
        it = live.erase(it);
      } else {
        ++it;
      }
    }
    if (live.empty()) {
      for (QueryOutcome& out : outs) done_.push_back(std::move(out));
      return;
    }
    bump_route(route.device);
    if (route.failover) bump("svc.failover");

    // Dedup against the in-flight set: each distinct source is fused once;
    // duplicate members collapse onto the first occurrence (their slot
    // leader) and are answered by the same launch. With collapsing disabled
    // every member keeps its own slot (run_bfs_multi permits duplicate
    // sources), reproducing the un-deduped baseline.
    std::vector<graph::NodeId> sources;       // distinct, first-seen order
    std::vector<std::uint32_t> slot(live.size(), 0);
    sources.reserve(live.size());
    for (std::size_t li = 0; li < live.size(); ++li) {
      const graph::NodeId s = batch[live[li]].req.source;
      std::uint32_t idx = static_cast<std::uint32_t>(sources.size());
      if (opts_.collapse) {
        idx = 0;
        while (idx < sources.size() && sources[idx] != s) ++idx;
      }
      if (idx == sources.size()) sources.push_back(s);
      slot[li] = idx;
    }

    adaptive::Policy policy = batch[live.front()].req.policy;
    policy.options.engine.stream = stream;
    gg::GpuBfsMultiResult mr;
    const std::uint64_t mark = dev.mem_mark();
    try {
      mr = policy.mode == adaptive::Policy::Mode::fixed_variant
               ? gg::run_bfs_multi(dev, rep.dg, g.csr(), sources,
                                   gg::fixed_variant(policy.variant),
                                   policy.options.engine)
               : rt::adaptive_bfs_multi(dev, rep.dg, g.csr(), sources,
                                        policy.options);
    } catch (const simt::DeviceFault& f) {
      // Fused launch died: unbatch. Record the members already answered
      // (invalid / timed out / cache hits), then route each live member
      // through the single-query path, whose retry/failover/degradation
      // policy applies per query.
      dev.mem_reclaim(mark);
      bump("svc.fault");
      bump(std::string("svc.fault.") + simt::fault_kind_name(f.kind()));
      bump("svc.batch_aborted");
      for (std::size_t i = 0; i < k; ++i) {
        if (resolved[i]) done_.push_back(std::move(outs[i]));
      }
      for (const std::size_t i : live) execute_single(std::move(batch[i]));
      return;
    }

    // Gather each distinct source's result once: query slot s's level of
    // node v lives at levels[v*nk + s].
    const std::uint32_t nk = mr.num_sources;
    const std::size_t n = g.num_nodes();
    std::vector<adaptive::BfsResult> uniq(nk);
    for (std::uint32_t s = 0; s < nk; ++s) {
      uniq[s].level.resize(n);
      for (std::size_t v = 0; v < n; ++v) {
        uniq[s].level[v] = mr.levels[v * nk + s];
      }
      uniq[s].metrics = mr.metrics;  // shared batch metrics, one copy each
    }

    // Slot bookkeeping: the first member of each slot is its leader (cache
    // key owner); later members are collapsed followers.
    std::vector<QueryId> slot_leader(nk, 0);
    std::vector<std::uint32_t> slot_uses(nk, 0);
    for (std::size_t li = 0; li < live.size(); ++li) {
      if (slot_uses[slot[li]]++ == 0) slot_leader[slot[li]] = batch[live[li]].id;
    }
    // Every distinct source's payload is complete and exact: cache it under
    // its slot leader's key before scattering (post-deadline drops below do
    // not affect cacheability).
    for (std::size_t li = 0; li < live.size(); ++li) {
      if (slot_leader[slot[li]] == batch[live[li]].id) {
        store_result(batch[live[li]], Payload(uniq[slot[li]]));
      }
    }

    for (std::size_t li = 0; li < live.size(); ++li) {
      const PendingQuery& q = batch[live[li]];
      QueryOutcome& out = outs[live[li]];
      const std::uint32_t s = slot[li];
      // Last member of a slot takes the level vector by move.
      if (--slot_uses[s] == 0) {
        out.payload = std::move(uniq[s]);
      } else {
        out.payload = uniq[s];
      }
      out.batch_size = nk;
      out.failover = route.failover;
      finish_outcome(out, route.device, stream, ready);
      if (slot_leader[s] != q.id) {
        out.collapsed = true;
        out.collapsed_into = slot_leader[s];
        bump("svc.collapse");
        publish_service_event("collapse", q.req, q.id, slot_leader[s],
                              payload_bytes(out.payload), out.finish_us);
      }
      if (q.req.deadline_us > 0 &&
          out.finish_us > q.submit_us + q.req.deadline_us) {
        out.status = adaptive::Status::timed_out;
        out.code = adaptive::ErrorCode::deadline_exceeded;
        out.payload = std::monostate{};
        bump("svc.timeout");
      } else {
        bump("svc.completed");
      }
    }
    bump("svc.batches");
    bump("svc.batched", static_cast<double>(live.size()));
  }

  for (QueryOutcome& out : outs) done_.push_back(std::move(out));
}

}  // namespace svc
