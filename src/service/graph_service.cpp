#include "service/graph_service.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "graph/csr.h"
#include "runtime/adaptive_engine.h"
#include "trace/counters.h"
#include "trace/trace_sink.h"

namespace svc {

namespace {

void bump(const char* name, double d = 1) {
  auto& reg = trace::CounterRegistry::instance();
  if (reg.enabled()) reg.counter(name).add(d);
}

void gauge_max(const char* name, double v) {
  auto& reg = trace::CounterRegistry::instance();
  if (reg.enabled()) reg.gauge(name).set_max(v);
}

}  // namespace

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::bfs:
      return "bfs";
    case Algo::sssp:
      return "sssp";
    case Algo::cc:
      return "cc";
    case Algo::pagerank:
      return "pagerank";
  }
  return "?";
}

GraphService::GraphService(ServiceOptions opts, const simt::DeviceProps& props,
                           simt::TimingModel tm)
    : opts_(opts), dev_(props, tm) {
  if (opts_.concurrency == 0) opts_.concurrency = 1;
  opts_.max_batch = std::clamp<std::uint32_t>(opts_.max_batch, 1,
                                              gg::kMaxBatchedSources);
  streams_.reserve(opts_.concurrency);
  for (std::uint32_t i = 0; i < opts_.concurrency; ++i) {
    streams_.push_back(dev_.create_stream("svc" + std::to_string(i)));
  }
}

GraphService::~GraphService() {
  for (auto& entry : graphs_) {
    entry->dg.release(dev_);
    if (entry->sym_dg) entry->sym_dg->release(dev_);
  }
}

GraphId GraphService::add_graph(adaptive::Graph g) {
  auto entry = std::make_unique<GraphEntry>(std::move(g));
  entry->dg = gg::DeviceGraph::upload(dev_, entry->g.csr(),
                                      entry->g.is_weighted());
  graphs_.push_back(std::move(entry));
  return static_cast<GraphId>(graphs_.size() - 1);
}

const adaptive::Graph& GraphService::graph(GraphId id) const {
  AGG_CHECK(id < graphs_.size());
  return graphs_[id]->g;
}

std::optional<QueryId> GraphService::submit(const QueryRequest& req) {
  AGG_CHECK(req.graph < graphs_.size());
  if (queue_.size() >= opts_.queue_capacity) {
    QueryOutcome out;
    out.id = next_id_++;
    out.algo = req.algo;
    out.graph = req.graph;
    out.status = adaptive::Status::rejected;
    out.error = "queue full";
    out.submit_us = dev_.makespan_us();
    done_.push_back(std::move(out));
    bump("svc.rejected");
    return std::nullopt;
  }
  PendingQuery q;
  q.id = next_id_++;
  q.req = req;
  q.submit_us = dev_.makespan_us();
  queue_.push_back(std::move(q));
  bump("svc.queued");
  return queue_.back().id;
}

simt::StreamId GraphService::pick_stream() const {
  simt::StreamId best = streams_.front();
  double best_ready = dev_.stream_ready_us(best);
  for (std::size_t i = 1; i < streams_.size(); ++i) {
    const double r = dev_.stream_ready_us(streams_[i]);
    if (r < best_ready) {
      best_ready = r;
      best = streams_[i];
    }
  }
  return best;
}

bool GraphService::batchable(const PendingQuery& a, const PendingQuery& b) const {
  return a.req.algo == Algo::bfs && b.req.algo == Algo::bfs &&
         a.req.graph == b.req.graph &&
         a.req.policy.mode == b.req.policy.mode &&
         a.req.policy.mode != adaptive::Policy::Mode::cpu_serial &&
         a.req.policy.variant == b.req.policy.variant;
}

QueryOutcome GraphService::make_outcome(const PendingQuery& q) const {
  QueryOutcome out;
  out.id = q.id;
  out.algo = q.req.algo;
  out.graph = q.req.graph;
  out.submit_us = q.submit_us;
  return out;
}

std::vector<QueryOutcome> GraphService::drain() {
  while (!queue_.empty()) {
    if (opts_.batch_bfs && queue_.front().req.algo == Algo::bfs &&
        queue_.front().req.policy.mode != adaptive::Policy::Mode::cpu_serial) {
      // Collect the longest batchable FIFO prefix (dispatch order preserved).
      std::vector<PendingQuery> batch;
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      while (!queue_.empty() && batch.size() < opts_.max_batch &&
             batchable(batch.front(), queue_.front())) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (batch.size() > 1) {
        execute_bfs_batch(batch);
      } else {
        execute_single(batch.front());
      }
    } else {
      PendingQuery q = std::move(queue_.front());
      queue_.pop_front();
      execute_single(q);
    }
  }
  return std::exchange(done_, {});
}

void GraphService::finish_outcome(QueryOutcome& out, simt::StreamId stream,
                                  double start) {
  out.stream = stream;
  out.start_us = start;
  out.finish_us = dev_.stream_ready_us(stream);
  // Modeled concurrency at this point in the schedule: streams still busy
  // past this query's start.
  std::uint32_t inflight = 0;
  for (const simt::StreamId s : streams_) {
    if (dev_.stream_ready_us(s) > start) ++inflight;
  }
  gauge_max("svc.running", inflight);
}

void GraphService::execute_single(const PendingQuery& q) {
  QueryOutcome out = make_outcome(q);
  GraphEntry& entry = *graphs_[q.req.graph];
  const adaptive::Graph& g = entry.g;

  if (q.req.policy.mode == adaptive::Policy::Mode::cpu_serial) {
    out.status = adaptive::Status::error;
    out.error = "cpu_serial policies are not servable (wall-clock timing)";
    done_.push_back(std::move(out));
    bump("svc.completed");
    return;
  }
  if ((q.req.algo == Algo::sssp) && !g.is_weighted()) {
    out.status = adaptive::Status::error;
    out.error = "sssp requires edge weights";
    done_.push_back(std::move(out));
    bump("svc.completed");
    return;
  }
  if ((q.req.algo == Algo::bfs || q.req.algo == Algo::sssp) &&
      q.req.source >= g.num_nodes()) {
    out.status = adaptive::Status::error;
    out.error = "source out of range";
    done_.push_back(std::move(out));
    bump("svc.completed");
    return;
  }

  const simt::StreamId stream = pick_stream();
  const double ready = dev_.stream_ready_us(stream);
  if (q.req.deadline_us > 0 && ready > q.submit_us + q.req.deadline_us) {
    // The earliest slot already misses the deadline: time out without
    // spending device time.
    out.status = adaptive::Status::timed_out;
    out.stream = stream;
    out.start_us = ready;
    done_.push_back(std::move(out));
    bump("svc.timeout");
    return;
  }

  adaptive::Policy policy = q.req.policy;
  policy.options.engine.stream = stream;
  const bool fixed = policy.mode == adaptive::Policy::Mode::fixed_variant;

  switch (q.req.algo) {
    case Algo::bfs: {
      adaptive::BfsResult r;
      gg::GpuBfsResult gr =
          fixed ? gg::run_bfs(dev_, entry.dg, g.csr(), q.req.source,
                              gg::fixed_variant(policy.variant),
                              policy.options.engine)
                : rt::adaptive_bfs(dev_, entry.dg, g.csr(), q.req.source,
                                   policy.options);
      r.level = std::move(gr.level);
      r.metrics = std::move(gr.metrics);
      out.payload = std::move(r);
      break;
    }
    case Algo::sssp: {
      adaptive::SsspResult r;
      gg::GpuSsspResult gr =
          fixed ? gg::run_sssp(dev_, entry.dg, g.csr(), q.req.source,
                               gg::fixed_variant(policy.variant),
                               policy.options.engine)
                : rt::adaptive_sssp(dev_, entry.dg, g.csr(), q.req.source,
                                    policy.options);
      r.dist = std::move(gr.dist);
      r.metrics = std::move(gr.metrics);
      out.payload = std::move(r);
      break;
    }
    case Algo::cc: {
      // cc needs both arcs; lazily upload the symmetrized closure once.
      const bool needs_sym =
          policy.symmetrize == adaptive::Symmetrize::always ||
          (policy.symmetrize == adaptive::Symmetrize::auto_detect &&
           !g.is_symmetric());
      gg::DeviceGraph* dg = &entry.dg;
      const graph::Csr* csr = &g.csr();
      if (needs_sym) {
        csr = &g.symmetrized();
        if (!entry.sym_dg) {
          simt::StreamGuard sguard(dev_, stream);
          entry.sym_dg = gg::DeviceGraph::upload(dev_, *csr,
                                                 /*with_weights=*/false);
        }
        dg = &*entry.sym_dg;
      }
      adaptive::CcResult r;
      gg::GpuCcResult gr =
          fixed ? gg::run_cc(dev_, *dg, *csr, gg::fixed_variant(policy.variant),
                             policy.options.engine)
                : rt::adaptive_cc(dev_, *dg, *csr, policy.options);
      r.component = std::move(gr.component);
      r.num_components = gr.num_components;
      r.metrics = std::move(gr.metrics);
      out.payload = std::move(r);
      break;
    }
    case Algo::pagerank: {
      gg::PageRankOptions po;
      po.damping = q.req.damping;
      po.engine = policy.options.engine;
      adaptive::PageRankResult r;
      gg::GpuPageRankResult gr =
          fixed ? gg::run_pagerank(dev_, entry.dg, g.csr(),
                                   gg::fixed_variant(policy.variant), po)
                : rt::adaptive_pagerank(dev_, entry.dg, g.csr(), po,
                                        policy.options);
      r.rank.assign(gr.rank.begin(), gr.rank.end());
      r.metrics = std::move(gr.metrics);
      out.payload = std::move(r);
      break;
    }
  }

  finish_outcome(out, stream, ready);
  if (q.req.deadline_us > 0 &&
      out.finish_us > q.submit_us + q.req.deadline_us) {
    out.status = adaptive::Status::timed_out;
    out.payload = std::monostate{};
    bump("svc.timeout");
  } else {
    bump("svc.completed");
  }
  done_.push_back(std::move(out));
}

void GraphService::execute_bfs_batch(const std::vector<PendingQuery>& batch) {
  GraphEntry& entry = *graphs_[batch.front().req.graph];
  const adaptive::Graph& g = entry.g;
  const std::uint32_t k = static_cast<std::uint32_t>(batch.size());

  // Per-query validity check first; invalid members are answered with an
  // error outcome and excluded from the fused launch.
  std::vector<const PendingQuery*> live;
  std::vector<QueryOutcome> outs;
  outs.reserve(k);
  for (const PendingQuery& q : batch) {
    QueryOutcome out = make_outcome(q);
    if (q.req.source >= g.num_nodes()) {
      out.status = adaptive::Status::error;
      out.error = "source out of range";
      bump("svc.completed");
    } else {
      live.push_back(&q);
    }
    outs.push_back(std::move(out));
  }

  if (!live.empty()) {
    const simt::StreamId stream = pick_stream();
    const double ready = dev_.stream_ready_us(stream);

    // Pre-dispatch deadline check, as in the single-query path: members whose
    // earliest slot already misses their deadline drop out of the launch.
    for (std::size_t i = 0, s = 0; i < outs.size(); ++i) {
      QueryOutcome& out = outs[i];
      if (out.status != adaptive::Status::ok) continue;
      const PendingQuery& q = *live[s];
      if (q.req.deadline_us > 0 && ready > q.submit_us + q.req.deadline_us) {
        out.status = adaptive::Status::timed_out;
        out.stream = stream;
        out.start_us = ready;
        bump("svc.timeout");
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(s));
      } else {
        ++s;
      }
    }
    if (live.empty()) {
      for (QueryOutcome& out : outs) done_.push_back(std::move(out));
      return;
    }

    std::vector<graph::NodeId> sources;
    sources.reserve(live.size());
    for (const PendingQuery* q : live) sources.push_back(q->req.source);

    adaptive::Policy policy = live.front()->req.policy;
    policy.options.engine.stream = stream;
    gg::GpuBfsMultiResult mr =
        policy.mode == adaptive::Policy::Mode::fixed_variant
            ? gg::run_bfs_multi(dev_, entry.dg, g.csr(), sources,
                                gg::fixed_variant(policy.variant),
                                policy.options.engine)
            : rt::adaptive_bfs_multi(dev_, entry.dg, g.csr(), sources,
                                     policy.options);

    // Scatter the fused result back to the member queries: query s's level
    // of node v lives at levels[v*k + s].
    const std::uint32_t nk = mr.num_sources;
    const std::size_t n = g.num_nodes();
    std::uint32_t s = 0;
    for (QueryOutcome& out : outs) {
      if (out.status != adaptive::Status::ok) continue;
      const PendingQuery& q = *live[s];
      adaptive::BfsResult r;
      r.level.resize(n);
      for (std::size_t v = 0; v < n; ++v) {
        r.level[v] = mr.levels[v * nk + s];
      }
      r.metrics = mr.metrics;  // shared batch metrics, one copy per member
      out.payload = std::move(r);
      out.batch_size = nk;
      finish_outcome(out, stream, ready);
      if (q.req.deadline_us > 0 &&
          out.finish_us > q.submit_us + q.req.deadline_us) {
        out.status = adaptive::Status::timed_out;
        out.payload = std::monostate{};
        bump("svc.timeout");
      } else {
        bump("svc.completed");
      }
      ++s;
    }
    bump("svc.batches");
    bump("svc.batched", static_cast<double>(nk));
  }

  for (QueryOutcome& out : outs) done_.push_back(std::move(out));
}

}  // namespace svc
