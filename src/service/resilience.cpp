#include "service/resilience.h"

#include <algorithm>

namespace svc {

double backoff_us(const ResiliencePolicy& policy, int attempt) {
  if (attempt < 1) return 0;
  double d = policy.backoff_base_us;
  for (int i = 1; i < attempt && d < policy.backoff_cap_us; ++i) d *= 2;
  return std::min(d, policy.backoff_cap_us);
}

adaptive::ErrorCode fault_error_code(const simt::DeviceFault& f) {
  switch (f.kind()) {
    case simt::FaultKind::alloc:
      return adaptive::ErrorCode::device_oom;
    case simt::FaultKind::transfer:
      return adaptive::ErrorCode::transfer_failed;
    case simt::FaultKind::kernel:
      return adaptive::ErrorCode::kernel_fault;
  }
  return adaptive::ErrorCode::internal;
}

bool retryable(const simt::DeviceFault& f) { return !f.permanent(); }

FaultAction next_action(const ResiliencePolicy& policy, int attempts_done,
                        bool permanent, bool device_healthy) {
  if (!permanent && device_healthy && attempts_done <= policy.max_retries) {
    return FaultAction::retry;
  }
  return policy.degrade_to_cpu ? FaultAction::degrade : FaultAction::fail;
}

FaultAction next_action(const ResiliencePolicy& policy, int attempts_done,
                        bool permanent, bool device_healthy,
                        bool replica_available) {
  const FaultAction single =
      next_action(policy, attempts_done, permanent, device_healthy);
  if (single == FaultAction::retry) return single;
  // The device is lost (or retries are exhausted on a dead device): prefer a
  // healthy replica over the CPU oracle.
  if ((permanent || !device_healthy) && replica_available) {
    return FaultAction::failover;
  }
  return single;
}

const char* fault_action_name(FaultAction a) {
  switch (a) {
    case FaultAction::retry:
      return "retry";
    case FaultAction::degrade:
      return "degrade";
    case FaultAction::fail:
      return "fail";
    case FaultAction::failover:
      return "failover";
  }
  return "?";
}

}  // namespace svc
