// GraphService — the concurrent multi-query serving layer.
//
// The service owns one simulated device, keeps registered graphs resident
// (uploaded once at add_graph), and executes submitted queries on a pool of
// simt streams so their kernels and transfers interleave on the modeled
// clock: compute backfills gaps in the single compute engine (kernel-
// granularity round-robin across streams) and H<->D transfers overlap
// compute on the copy engine (simt/stream.h).
//
// Scheduling: FIFO with a configurable concurrency limit (= stream count).
// Each dispatch picks the stream that frees up earliest, so up to
// `concurrency` queries are in flight on the modeled timeline at once.
// Admission control rejects submissions when the pending queue is full;
// per-query deadlines (modeled microseconds from submission) time out
// queries either before dispatch (the chosen stream cannot start in time) or
// after execution (the traversal finished past the deadline).
//
// Batching: consecutive same-graph BFS queries with the same policy are
// coalesced — up to 32 at a time — into one fused multi-source traversal
// (gpu_graph/bfs_multi_engine.h), which answers the whole batch in a single
// pass over the shared frontier structure. Only a *contiguous* FIFO prefix
// is batched, so dispatch order remains FIFO.
//
// Result cache & request collapsing (service/result_cache.h): completed
// exact payloads enter a byte-bounded LRU keyed by (graph id + upload
// generation + graph version, algo, source/params, policy signature); a
// repeat query is answered from host memory at modeled copy cost — no
// kernel launch, no PCIe, no stream slot. Identical queries pending in the
// same drain collapse onto one execution (singleflight): the leader runs,
// followers receive copies of its payload; the MS-BFS batcher dedups batch
// members against the cache and fuses each distinct source once. Re-upload
// via update_graph() (or a Graph::version() bump) invalidates. Faulted
// partial attempts never reach the cache — only completed exact payloads
// (device or degraded CPU-oracle) are stored.
//
// Determinism: execution is entirely host-driven on modeled time (queries
// with Policy::Mode::cpu_serial are refused — they report wall-clock time),
// so outcomes, svc.* counters and traces are byte-identical at any
// --sim-threads value. Cache hits and collapses are served on the modeled
// host timeline, which the makespan covers.
//
// Resilience: an installed FaultPlan (set_fault_plan) makes device ops fail
// deterministically. A faulted query is retried with modeled-time
// exponential backoff (ServiceOptions::resilience); when retries are
// exhausted, the device is dead, or deadline pressure rules out a device
// launch entirely, the query degrades to the serial CPU oracle on a modeled
// single-core host timeline — exact payload, outcome marked degraded. Fault
// decisions hash (seed, kind, op index) only, so outcomes, retry schedules
// and traces still replay bit-identically at any --sim-threads value.
//
// Observability: per-stream Chrome-trace lanes come from the stream tags the
// device stamps on every event; the service additionally maintains the
// svc.queued / svc.running / svc.completed / svc.rejected / svc.timeout /
// svc.batched / svc.batches / svc.cache.hit / svc.cache.miss /
// svc.cache.insert / svc.cache.evict / svc.cache.bytes / svc.collapse
// counters in the trace::CounterRegistry, and publishes a
// trace::ServiceEvent for every cache/collapse decision.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "api/algorithms.h"
#include "api/graph_api.h"
#include "gpu_graph/device_graph.h"
#include "service/resilience.h"
#include "service/result_cache.h"
#include "simt/device.h"
#include "simt/fault.h"

namespace svc {

using GraphId = std::uint32_t;
using QueryId = std::uint64_t;

struct QueryRequest {
  Algo algo = Algo::bfs;
  GraphId graph = 0;
  graph::NodeId source = 0;   // bfs / sssp
  double damping = 0.85;      // pagerank
  // adaptive (default) or fixed_variant; cpu_serial queries fail (their
  // timing is host wall-clock, which would break service determinism).
  adaptive::Policy policy{};
  // Modeled-time budget from submission; 0 = none. A query whose stream
  // cannot start it in time is timed out without running; one that finishes
  // past the deadline is timed out after the fact (payload dropped).
  double deadline_us = 0;
};

struct QueryOutcome {
  QueryId id = 0;
  Algo algo = Algo::bfs;
  GraphId graph = 0;
  adaptive::Status status = adaptive::Status::ok;
  std::string error;             // set when status == error
  adaptive::ErrorCode code = adaptive::ErrorCode::none;  // typed cause
  std::uint32_t retries = 0;     // on-device re-executions after faults
  bool degraded = false;         // answered by the serial CPU oracle
  bool cached = false;           // answered from the result cache
  bool collapsed = false;        // attached to an identical in-flight query
  QueryId collapsed_into = 0;    // the leader execution (when collapsed)
  simt::StreamId stream = 0;     // stream it ran on; 0 = never dispatched
  double submit_us = 0;          // modeled time of submission
  double start_us = 0;           // stream time when dispatched
  double finish_us = 0;          // stream time when complete
  std::uint32_t batch_size = 1;  // > 1: answered by a fused MS-BFS launch
  Payload payload;

  bool ok() const { return status == adaptive::Status::ok; }
  const adaptive::BfsResult& bfs() const {
    return std::get<adaptive::BfsResult>(payload);
  }
  const adaptive::SsspResult& sssp() const {
    return std::get<adaptive::SsspResult>(payload);
  }
  const adaptive::CcResult& cc() const {
    return std::get<adaptive::CcResult>(payload);
  }
  const adaptive::PageRankResult& pagerank() const {
    return std::get<adaptive::PageRankResult>(payload);
  }
};

struct ServiceOptions {
  std::uint32_t concurrency = 4;    // in-flight query slots (simt streams)
  std::size_t queue_capacity = 64;  // pending submissions before rejection
  bool batch_bfs = true;            // fuse same-graph BFS prefixes
  std::uint32_t max_batch = 32;     // <= gg::kMaxBatchedSources
  // Result-cache budget in bytes; 0 disables caching entirely. Hits are
  // served from host memory at CacheCostModel::hit_us() — no device work.
  std::size_t cache_bytes = 64ull << 20;
  // Collapse identical pending queries onto one execution (singleflight).
  bool collapse = true;
  CacheCostModel cache_cost{};
  // Retry / degradation behavior for injected or genuine device faults
  // (service/resilience.h).
  ResiliencePolicy resilience{};
};

class GraphService {
 public:
  explicit GraphService(
      ServiceOptions opts = {},
      const simt::DeviceProps& props = simt::DeviceProps::fermi_c2070(),
      simt::TimingModel tm = simt::TimingModel::fermi_default());
  ~GraphService();
  GraphService(const GraphService&) = delete;
  GraphService& operator=(const GraphService&) = delete;

  // Takes ownership and uploads the CSR once; all queries against the
  // returned id run on the resident copy (no per-query upload).
  GraphId add_graph(adaptive::Graph g);
  // Replaces the resident graph under `id`: the device copy is re-uploaded
  // and every cached result for the id is retired (the upload generation is
  // part of the cache key, so even a same-version replacement cannot produce
  // a stale hit).
  void update_graph(GraphId id, adaptive::Graph g);
  const adaptive::Graph& graph(GraphId id) const;
  std::size_t num_graphs() const { return graphs_.size(); }

  simt::Device& device() { return dev_; }
  const ServiceOptions& options() const { return opts_; }
  const ResultCache<Payload>& result_cache() const { return cache_; }

  // Arms deterministic fault injection on the service device. Install after
  // add_graph() so the resident uploads are not subject to the plan; the
  // plan then applies to every query until replaced by an empty plan.
  void set_fault_plan(const simt::FaultPlan& plan) { dev_.set_fault_plan(plan); }
  // False once a permanent fault killed the device; every later query is
  // answered by CPU degradation (or failed, when degradation is off).
  bool device_healthy() const { return dev_.healthy(); }

  // Admission: enqueues and returns the query id, or std::nullopt when the
  // pending queue is full (a rejected outcome is still recorded for drain()).
  std::optional<QueryId> submit(QueryRequest req);

  // Runs every pending query to completion (FIFO dispatch, batching, cache
  // lookup, collapsing, stream placement) and returns all outcomes produced
  // since the last drain — including immediate rejections — in
  // dispatch/record order.
  std::vector<QueryOutcome> drain();

  std::size_t pending() const { return queue_.size(); }
  // End of all issued work: the modeled makespan of the schedule so far —
  // device engines plus the modeled host timeline (degraded queries, cache
  // hits).
  double makespan_us() const {
    return std::max(dev_.makespan_us(), host_ready_us_);
  }

 private:
  struct PendingQuery {
    QueryId id = 0;
    QueryRequest req;
    double submit_us = 0;
  };
  struct GraphEntry {
    adaptive::Graph g;
    gg::DeviceGraph dg;
    // Lazily uploaded symmetrized CSR for cc() on directed graphs.
    std::optional<gg::DeviceGraph> sym_dg;
    // Upload generation: bumped by update_graph() and folded into the cache
    // key version so replaced graphs never serve stale hits.
    std::uint64_t gen = 0;
    GraphEntry(adaptive::Graph graph) : g(std::move(graph)) {}
  };

  simt::StreamId pick_stream() const;  // earliest-ready stream, lowest id wins
  bool batchable(const PendingQuery& a, const PendingQuery& b) const;
  // Collapses identical pending queries onto q's execution, then runs q.
  void execute_query(PendingQuery q);
  void execute_single(PendingQuery q);
  void execute_bfs_batch(std::vector<PendingQuery> batch);
  QueryOutcome make_outcome(const PendingQuery& q) const;
  void finish_outcome(QueryOutcome& out, simt::StreamId stream, double start);
  // One device attempt of q on `stream` (may throw simt::DeviceFault).
  void run_device_query(const PendingQuery& q, GraphEntry& entry,
                        simt::StreamId stream, QueryOutcome& out);
  // Serial-oracle execution on the modeled single-core host timeline.
  void run_degraded(const PendingQuery& q, const adaptive::Graph& g,
                    QueryOutcome& out);
  // Modeled upper bound of the serial execution time (full-scan counts).
  double estimate_cpu_us(Algo algo, const adaptive::Graph& g) const;

  // ---- result cache / collapsing ----
  // True when the query's answer is deterministic and keyable (servable
  // algo/policy); only such queries consult or populate the cache and
  // participate in collapsing.
  bool cache_servable(const QueryRequest& req) const;
  CacheKey key_for(const QueryRequest& req) const;
  // Serves `q` a host-memory copy of `payload` (a cache hit, or the collapse
  // leader's result; leader == 0 means cache hit). Charges the modeled copy
  // cost to the host timeline and applies q's deadline.
  void serve_copy(const PendingQuery& q, const Payload& payload,
                  std::size_t bytes, QueryOutcome& out, QueryId leader,
                  double not_before);
  // Stores a completed exact payload under q's key (no-op for faulted /
  // empty payloads — those must never poison the cache).
  void store_result(const PendingQuery& q, const Payload& payload);
  void publish_service_event(const char* action, const QueryRequest& req,
                             QueryId query, QueryId leader, std::uint64_t bytes,
                             double ts_us) const;

  ServiceOptions opts_;
  simt::Device dev_;
  std::vector<simt::StreamId> streams_;
  std::vector<std::unique_ptr<GraphEntry>> graphs_;
  std::deque<PendingQuery> queue_;
  std::vector<QueryOutcome> done_;
  ResultCache<Payload> cache_;
  QueryId next_id_ = 1;
  std::uint64_t next_gen_ = 1;
  // Ready time of the modeled serial CPU used for degraded queries and
  // cache/collapse copies: one core, so host-side serving serializes here.
  double host_ready_us_ = 0;
};

}  // namespace svc
