// GraphService — the concurrent multi-query serving layer over a fleet.
//
// The service owns a simt::Fleet of N simulated devices (one by default; a
// ClusterSpec configures more, possibly heterogeneous), places registered
// graphs on it (service/placement.h), and executes submitted queries on
// per-device pools of simt streams so their kernels and transfers interleave
// on each device's modeled clock.
//
// Placement & routing: a graph that fits a device is uploaded to every
// replica device (full replication — the hot-read-traffic placement); a
// deterministic router then balances queries across replicas by
// earliest-modeled-ready-time over every healthy replica's stream pool
// (ties: lowest device ordinal, then lowest stream id). A graph exceeding
// every device's memory budget is vertex-cut sharded: contiguous row ranges
// balanced by edge count, one shard per device, queries running
// level-synchronous BSP supersteps with host merges
// (service/sharded_exec.h). BFS and CC run sharded on-device with
// bit-identical payloads; SSSP/PageRank on sharded graphs are answered by
// the exact CPU oracle (degraded outcome), never a wrong answer.
//
// Scheduling: FIFO with a configurable per-device concurrency limit
// (= stream-pool size). Each dispatch picks the earliest-ready
// (device, stream) pair among the graph's healthy replicas, so up to
// N * concurrency queries are in flight on the modeled timelines at once.
// Admission control rejects submissions when the pending queue is full;
// per-query deadlines time out queries before dispatch (the chosen slot
// cannot start in time) or after execution.
//
// Batching: consecutive same-graph BFS queries with the same policy on a
// *replicated* graph are coalesced — up to 32 — into one fused multi-source
// traversal on the routed device (gpu_graph/bfs_multi_engine.h). Only a
// contiguous FIFO prefix is batched, so dispatch order remains FIFO.
//
// Result cache & request collapsing: unchanged from the single-device
// service (service/result_cache.h) — completed exact payloads enter a
// byte-bounded LRU keyed by (graph id + upload generation + graph version,
// algo, source/params, policy signature); identical pending queries collapse
// onto one execution. Cache hits and collapses are served on the modeled
// host timeline.
//
// Resilience & failover: an installed FaultPlan arms one device (or all).
// Transient faults retry on the same slot with modeled exponential backoff.
// When a *permanent* fault kills a device, queries against replicated graphs
// fail over to the earliest-ready healthy replica (svc.failover counter);
// CPU degradation — the single-device behavior — remains only when no
// healthy replica holds the graph (and for sharded graphs, which have no
// replicas). Fault messages carry the device label ("dev2: device fault:
// ..."), so fleet errors are attributable.
//
// Determinism: execution is entirely host-driven on modeled time, placement
// and routing depend only on modeled quantities, so outcomes, svc.* counters
// and traces are byte-identical at any --sim-threads value.
//
// Observability: per-device Chrome-trace process groups (trace/chrome_trace.h)
// from the device ordinals stamped on every event; per-stream lanes within
// each group; svc.* counters as before plus svc.route.dev<K> (queries routed
// to device K), svc.failover, svc.sharded.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "api/algorithms.h"
#include "api/graph_api.h"
#include "gpu_graph/device_graph.h"
#include "graph/incremental_cc.h"
#include "service/placement.h"
#include "service/resilience.h"
#include "service/result_cache.h"
#include "service/sharded_exec.h"
#include "simt/cluster.h"
#include "simt/device.h"
#include "simt/fault.h"

namespace svc {

using GraphId = std::uint32_t;
using QueryId = std::uint64_t;

struct QueryRequest {
  Algo algo = Algo::bfs;
  GraphId graph = 0;
  graph::NodeId source = 0;   // bfs / sssp
  double damping = 0.85;      // pagerank
  // adaptive (default) or fixed_variant; cpu_serial queries fail (their
  // timing is host wall-clock, which would break service determinism).
  adaptive::Policy policy{};
  // Modeled-time budget from submission; 0 = none. A query whose stream
  // cannot start it in time is timed out without running; one that finishes
  // past the deadline is timed out after the fact (payload dropped).
  double deadline_us = 0;
};

struct QueryOutcome {
  QueryId id = 0;
  Algo algo = Algo::bfs;
  GraphId graph = 0;
  adaptive::Status status = adaptive::Status::ok;
  std::string error;             // set when status == error
  adaptive::ErrorCode code = adaptive::ErrorCode::none;  // typed cause
  std::uint32_t retries = 0;     // on-device re-executions after faults
  bool degraded = false;         // answered by the serial CPU oracle
  bool mutation = false;         // a submit_mutation item, not a query
  bool rebuilt = false;          // mutation fell back to a compacting rebuild
  bool cached = false;           // answered from the result cache
  bool collapsed = false;        // attached to an identical in-flight query
  QueryId collapsed_into = 0;    // the leader execution (when collapsed)
  std::uint32_t device = 0;      // fleet ordinal it ran on (replicated path)
  bool failover = false;         // rerouted around a dead replica device
  bool sharded = false;          // answered by the sharded BSP executor
  simt::StreamId stream = 0;     // stream it ran on; 0 = never dispatched
  double submit_us = 0;          // modeled time of submission
  double start_us = 0;           // stream time when dispatched
  double finish_us = 0;          // stream time when complete
  std::uint32_t batch_size = 1;  // > 1: answered by a fused MS-BFS launch
  Payload payload;

  bool ok() const { return status == adaptive::Status::ok; }
  const adaptive::BfsResult& bfs() const {
    return std::get<adaptive::BfsResult>(payload);
  }
  const adaptive::SsspResult& sssp() const {
    return std::get<adaptive::SsspResult>(payload);
  }
  const adaptive::CcResult& cc() const {
    return std::get<adaptive::CcResult>(payload);
  }
  const adaptive::PageRankResult& pagerank() const {
    return std::get<adaptive::PageRankResult>(payload);
  }
  // "device_oom: dev2: device fault: ..." — see adaptive::Result.
  std::string error_message() const {
    if (status == adaptive::Status::ok) return "";
    std::string msg = adaptive::error_code_name(code);
    msg += ": ";
    msg += error.empty() ? adaptive::error_code_message(code) : error;
    return msg;
  }
};

struct ServiceOptions {
  std::uint32_t concurrency = 4;    // in-flight slots per device (simt streams)
  std::size_t queue_capacity = 64;  // pending submissions before rejection
  bool batch_bfs = true;            // fuse same-graph BFS prefixes
  std::uint32_t max_batch = 32;     // <= gg::kMaxBatchedSources
  // Result-cache budget in bytes; 0 disables caching entirely. Hits are
  // served from host memory at CacheCostModel::hit_us() — no device work.
  std::size_t cache_bytes = 64ull << 20;
  // Collapse identical pending queries onto one execution (singleflight).
  bool collapse = true;
  CacheCostModel cache_cost{};
  // Retry / degradation behavior for injected or genuine device faults
  // (service/resilience.h).
  ResiliencePolicy resilience{};
  // Replication count and shard thresholds (service/placement.h).
  PlacementPolicy placement{};
};

class GraphService {
 public:
  // Primary constructor: one spec describes the whole fleet. An empty
  // ClusterSpec means a single default device (the historical behavior).
  explicit GraphService(ServiceOptions opts = {},
                        const simt::ClusterSpec& cluster = {});
  // Deprecated shim for the old positional (DeviceProps, TimingModel)
  // signature; forwards to ClusterSpec::single(props, tm).
  [[deprecated("use GraphService(opts, simt::ClusterSpec)")]]
  GraphService(ServiceOptions opts, const simt::DeviceProps& props,
               simt::TimingModel tm = simt::TimingModel::fermi_default());
  ~GraphService();
  GraphService(const GraphService&) = delete;
  GraphService& operator=(const GraphService&) = delete;

  // Takes ownership and places the graph on the fleet: replicated uploads
  // when it fits a device, vertex-cut shards otherwise. All queries against
  // the returned id run on the resident copies (no per-query upload).
  GraphId add_graph(adaptive::Graph g);
  // Replaces the resident graph under `id`: placement is re-planned, device
  // copies are re-uploaded, and every cached result for the id is retired.
  void update_graph(GraphId id, adaptive::Graph g);
  const adaptive::Graph& graph(GraphId id) const;
  std::size_t num_graphs() const { return graphs_.size(); }
  // The placement the service chose for `id` (tests, introspection).
  const PlacementPlan& placement(GraphId id) const;

  simt::Fleet& fleet() { return fleet_; }
  std::uint32_t num_devices() const { return fleet_.size(); }
  // Legacy accessor: device 0.
  simt::Device& device() { return fleet_.device(0); }
  const ServiceOptions& options() const { return opts_; }
  const ResultCache<Payload>& result_cache() const { return cache_; }

  // Arms deterministic fault injection on one device (default: device 0,
  // the single-device behavior). Install after add_graph() so the resident
  // uploads are not subject to the plan.
  void set_fault_plan(const simt::FaultPlan& plan,
                      simt::DeviceIndex device = 0) {
    fleet_.device(device).set_fault_plan(plan);
  }
  void set_fault_plan_all(const simt::FaultPlan& plan) {
    for (simt::DeviceIndex d = 0; d < fleet_.size(); ++d)
      fleet_.device(d).set_fault_plan(plan);
  }
  // False once a permanent fault killed the device. With no argument this is
  // device 0 (single-device compatibility).
  bool device_healthy(simt::DeviceIndex device = 0) const {
    return fleet_.device(device).healthy();
  }

  // Admission: enqueues and returns the query id, or std::nullopt when the
  // pending queue is full (a rejected outcome is still recorded for drain()).
  std::optional<QueryId> submit(QueryRequest req);

  // Enqueues a batched graph mutation (ISSUE 9: dynamic graphs). Mutations
  // share the FIFO queue with queries, so ordering on the modeled timeline
  // is exact: queries admitted before the mutation answer against the old
  // version, queries after it against the new one. Execution validates the
  // delta (an inapplicable one yields an invalid_argument outcome, the
  // graph untouched), applies it to the owned Graph, incrementally patches
  // every healthy replica behind a per-device stream barrier (sharded
  // placements re-place wholesale), advances the incremental CC labels, and
  // delta-invalidates the cache — entries whose source component the delta
  // does not touch survive re-keyed to the new version
  // (svc.cache.delta_keep). Admission control applies as for submit().
  std::optional<QueryId> submit_mutation(GraphId graph,
                                         graph::EdgeDelta delta);

  // The incremental CC labels of `id`'s current graph (built lazily;
  // byte-identical to a from-scratch cpu::connected_components). Exposed
  // for tests and delta-aware consumers.
  const graph::IncrementalCc& incremental_cc(GraphId id);

  // Runs every pending query to completion (FIFO dispatch, batching, cache
  // lookup, collapsing, routing, stream placement) and returns all outcomes
  // produced since the last drain — including immediate rejections — in
  // dispatch/record order.
  std::vector<QueryOutcome> drain();

  std::size_t pending() const { return queue_.size(); }
  // End of all issued work: the modeled makespan of the schedule so far —
  // every device's engines plus the modeled host timeline (degraded queries,
  // cache hits, BSP merges).
  double makespan_us() const {
    return std::max(fleet_.makespan_us(), host_ready_us_);
  }

 private:
  struct PendingQuery {
    QueryId id = 0;
    QueryRequest req;
    double submit_us = 0;
    // Set for submit_mutation items: req.graph is the target, req.algo is
    // meaningless. Mutations act as version barriers in the queue — they
    // never batch or collapse, and queries behind one neither collapse onto
    // nor batch with queries ahead of it for the same graph.
    std::optional<graph::EdgeDelta> mutation;
  };
  // One device-resident copy of a replicated graph.
  struct Replica {
    simt::DeviceIndex device = 0;
    gg::DeviceGraph dg;
    // Lazily uploaded symmetrized CSR for cc() on directed graphs.
    std::optional<gg::DeviceGraph> sym_dg;
  };
  struct GraphEntry {
    adaptive::Graph g;
    // Upload generation: bumped by update_graph() and folded into the cache
    // key version so replaced graphs never serve stale hits.
    std::uint64_t gen = 0;
    PlacementPlan plan;
    std::vector<Replica> replicas;       // replicated placement
    std::optional<ShardedGraph> sharded; // sharded placement
    // Weak-connectivity labels maintained across deltas (lazily built).
    std::optional<graph::IncrementalCc> inc_cc;
    GraphEntry(adaptive::Graph graph) : g(std::move(graph)) {}
  };
  // A routed dispatch slot: the chosen replica device and stream.
  struct Route {
    bool ok = false;       // false: no healthy replica (degrade / fail)
    bool failover = false; // at least one dead replica was routed around
    simt::DeviceIndex device = 0;
    simt::StreamId stream = 0;
    double ready_us = 0;
  };

  void place_graph(GraphEntry& entry);
  void release_graph(GraphEntry& entry);
  // Earliest-ready (device, stream) among the entry's healthy replicas;
  // ties: lowest device ordinal, then lowest stream id.
  Route route_query(const GraphEntry& entry) const;
  // Earliest-ready stream of `device`'s pool, lowest id wins.
  simt::StreamId pick_stream(simt::DeviceIndex device) const;
  Replica* replica_on(GraphEntry& entry, simt::DeviceIndex device);
  std::uint32_t healthy_replicas(const GraphEntry& entry) const;

  bool batchable(const PendingQuery& a, const PendingQuery& b) const;
  // Collapses identical pending queries onto q's execution, then runs q.
  void execute_query(PendingQuery q);
  // Applies a queued mutation: host delta apply + incremental CC update on
  // the modeled host timeline, per-replica device patch behind a stream
  // barrier, delta-aware cache invalidation.
  void execute_mutation(PendingQuery q);
  void execute_single(PendingQuery q);
  void execute_bfs_batch(std::vector<PendingQuery> batch);
  // Sharded BSP execution (BFS/CC on-device, SSSP/PageRank via the oracle).
  void execute_sharded(PendingQuery q, GraphEntry& entry, QueryOutcome out);
  QueryOutcome make_outcome(const PendingQuery& q) const;
  void finish_outcome(QueryOutcome& out, simt::DeviceIndex device,
                      simt::StreamId stream, double start);
  // One device attempt of q on `route`'s slot (may throw simt::DeviceFault).
  void run_device_query(const PendingQuery& q, GraphEntry& entry,
                        const Route& route, QueryOutcome& out);
  // Serial-oracle execution on the modeled single-core host timeline.
  void run_degraded(const PendingQuery& q, const adaptive::Graph& g,
                    QueryOutcome& out);
  // Modeled upper bound of the serial execution time (full-scan counts).
  double estimate_cpu_us(Algo algo, const adaptive::Graph& g) const;

  // ---- result cache / collapsing ----
  // True when the query's answer is deterministic and keyable (servable
  // algo/policy); only such queries consult or populate the cache and
  // participate in collapsing.
  bool cache_servable(const QueryRequest& req) const;
  CacheKey key_for(const QueryRequest& req) const;
  // Serves `q` a host-memory copy of `payload` (a cache hit, or the collapse
  // leader's result; leader == 0 means cache hit). Charges the modeled copy
  // cost to the host timeline and applies q's deadline.
  void serve_copy(const PendingQuery& q, const Payload& payload,
                  std::size_t bytes, QueryOutcome& out, QueryId leader,
                  double not_before);
  // Stores a completed exact payload under q's key (no-op for faulted /
  // empty payloads — those must never poison the cache).
  void store_result(const PendingQuery& q, const Payload& payload);
  void publish_service_event(const char* action, const QueryRequest& req,
                             QueryId query, QueryId leader, std::uint64_t bytes,
                             double ts_us) const;

  ServiceOptions opts_;
  simt::Fleet fleet_;
  // streams_[d] = device d's stream pool (`concurrency` entries).
  std::vector<std::vector<simt::StreamId>> streams_;
  std::vector<std::unique_ptr<GraphEntry>> graphs_;
  std::deque<PendingQuery> queue_;
  std::vector<QueryOutcome> done_;
  ResultCache<Payload> cache_;
  QueryId next_id_ = 1;
  std::uint64_t next_gen_ = 1;
  // Ready time of the modeled serial CPU used for degraded queries and
  // cache/collapse copies: one core, so host-side serving serializes here.
  double host_ready_us_ = 0;
};

}  // namespace svc
