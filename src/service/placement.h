// Placement: where a graph lives on a fleet (svc layer).
//
// Two placements, chosen by a deterministic decision rule at add_graph time:
//
//  * replicated — the CSR fits on a device (modeled upload footprint times a
//    working-set headroom factor is within the device's free simulated
//    memory): the graph is uploaded to every replica device and the router
//    load-balances queries across replicas by earliest-modeled-ready-time.
//    This is the hot-read-traffic placement.
//
//  * sharded (vertex-cut) — the CSR exceeds every device's budget: rows are
//    partitioned into contiguous ranges balanced by edge count, one shard
//    per device; each shard is a row-slice CSR (global node-id space, rows
//    outside the range empty) so queries run level-synchronous BSP steps
//    per shard with host merges (service/sharded_exec.h).
//
// All decisions depend only on modeled quantities (CSR bytes, device free
// memory, fleet size), so placement — like everything else — is bit-identical
// at any --sim-threads value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "simt/cluster.h"

namespace svc {

struct PlacementPolicy {
  // Replicas per graph under the replicated placement; 0 = every device that
  // can hold it. Clamped to the fleet size.
  std::uint32_t replication = 0;
  // Permit vertex-cut sharding when no single device can hold the graph.
  // When off (or the fleet has one device) an oversized graph is placed
  // replicated anyway and the upload surfaces DeviceFault/OOM as before.
  bool allow_shard = true;
  // Working-set headroom: a device must have headroom * csr_bytes free to
  // host a copy (traversal state, symmetrized closures, batch buffers).
  double headroom = 2.0;
};

// One contiguous row range of a vertex-cut plan, owned by `device`.
struct ShardRange {
  simt::DeviceIndex device = 0;
  graph::NodeId row_begin = 0;
  graph::NodeId row_end = 0;  // exclusive
  std::uint64_t edges = 0;
};

struct PlacementPlan {
  enum class Kind { replicated, sharded };
  Kind kind = Kind::replicated;
  std::vector<simt::DeviceIndex> replicas;  // replicated: owning devices
  std::vector<ShardRange> shards;           // sharded: row ranges per device
  std::uint64_t graph_bytes = 0;            // modeled full-CSR upload footprint

  bool replicated() const { return kind == Kind::replicated; }
  // "replicated x3 (dev0 dev1 dev2)" / "sharded x4 (edges 250k/250k/...)".
  std::string describe() const;
};

// Modeled device footprint of a resident CSR upload: row offsets, column
// indices, and weights when present.
std::uint64_t device_graph_bytes(const graph::Csr& g, bool with_weights);

// Decides the placement of `g` on `fleet` under `policy`. Deterministic:
// replica sets and shard cuts depend only on modeled sizes and device order.
PlacementPlan plan_placement(const graph::Csr& g, bool with_weights,
                             const simt::Fleet& fleet,
                             const PlacementPolicy& policy);

// Row-slice CSR for a shard: same global num_nodes; rows outside
// [row_begin, row_end) are empty. Weights follow their edges.
graph::Csr shard_slice(const graph::Csr& g, graph::NodeId row_begin,
                       graph::NodeId row_end);

}  // namespace svc
