#include "service/sharded_exec.h"

#include <algorithm>

#include "common/check.h"
#include "runtime/adaptive_engine.h"
#include "simt/launch.h"

namespace svc {

namespace {

// Modeled cost of a host-side merge step between supersteps: one core
// touching `items` entries. Matches the order of magnitude of the CPU cost
// model without pulling in algorithm-specific counters.
constexpr double kMergeBaseUs = 2.0;
constexpr double kMergePerItemUs = 0.004;  // ~250M items/s

double merge_cost_us(std::uint64_t items) {
  return kMergeBaseUs + static_cast<double>(items) * kMergePerItemUs;
}

double max_ready_us(simt::Fleet& fleet, const ShardedGraph& sg,
                    const std::vector<simt::StreamId>& streams) {
  double t = 0;
  for (std::size_t i = 0; i < sg.shards.size(); ++i) {
    t = std::max(t, fleet.device(sg.shards[i].device).stream_ready_us(streams[i]));
  }
  return t;
}

// BSP barrier: streams on different simulated devices have no hardware sync,
// so the host models the wait by padding every lagging stream to `barrier`.
void sync_to(simt::Fleet& fleet, const ShardedGraph& sg,
             const std::vector<simt::StreamId>& streams, double barrier) {
  for (std::size_t i = 0; i < sg.shards.size(); ++i) {
    simt::Device& dev = fleet.device(sg.shards[i].device);
    const double ready = dev.stream_ready_us(streams[i]);
    if (ready < barrier) {
      simt::StreamGuard guard(dev, streams[i]);
      dev.account_host_compute(barrier - ready);
    }
  }
}

}  // namespace

ShardedGraph make_sharded(simt::Fleet& fleet, const graph::Csr& g,
                          bool with_weights, const PlacementPlan& plan) {
  AGG_CHECK(plan.kind == PlacementPlan::Kind::sharded && !plan.shards.empty());
  ShardedGraph sg;
  sg.num_nodes = g.num_nodes;
  sg.with_weights = with_weights && g.has_weights();
  sg.shards.reserve(plan.shards.size());
  for (const ShardRange& r : plan.shards) {
    Shard sh;
    sh.device = r.device;
    sh.row_begin = r.row_begin;
    sh.row_end = r.row_end;
    sh.csr = shard_slice(g, r.row_begin, r.row_end);
    sh.dg = gg::DeviceGraph::upload(fleet.device(r.device), sh.csr,
                                    sg.with_weights);
    sg.shards.push_back(std::move(sh));
  }
  return sg;
}

void release_sharded(simt::Fleet& fleet, ShardedGraph& sg) {
  for (Shard& sh : sg.shards) {
    simt::Device& dev = fleet.device(sh.device);
    sh.dg.release(dev);
    if (sh.sym_dg) {
      sh.sym_dg->release(dev);
      sh.sym_dg.reset();
    }
  }
  sg.shards.clear();
}

ShardedRun sharded_bfs(simt::Fleet& fleet, ShardedGraph& sg,
                       graph::NodeId source,
                       const std::vector<simt::StreamId>& streams,
                       double not_before_us,
                       std::vector<std::uint32_t>& levels) {
  AGG_CHECK(streams.size() == sg.shards.size());
  const std::uint32_t n = sg.num_nodes;
  AGG_CHECK(source < n);
  const std::size_t k = sg.shards.size();
  ShardedRun run;

  levels.assign(n, graph::kInfinity);
  levels[source] = 0;

  // Per-shard device state: a device-local level array (dedup of this
  // device's own discoveries), an H2D frontier slice, and a candidate queue.
  struct DevState {
    simt::DeviceBuffer<std::uint32_t> level;
    simt::DeviceBuffer<std::uint32_t> frontier;
    simt::DeviceBuffer<std::uint32_t> next;
    simt::DeviceBuffer<std::uint32_t> next_count;
  };
  std::vector<DevState> st(k);

  double barrier = std::max(not_before_us,
                            max_ready_us(fleet, sg, streams));
  sync_to(fleet, sg, streams, barrier);
  run.start_us = barrier;

  for (std::size_t i = 0; i < k; ++i) {
    simt::Device& dev = fleet.device(sg.shards[i].device);
    simt::StreamGuard guard(dev, streams[i]);
    st[i].level = dev.alloc<std::uint32_t>(n, "shard.bfs.level");
    dev.fill(st[i].level, graph::kInfinity);
    dev.write_scalar(st[i].level, source, 0u);
    st[i].frontier = dev.alloc<std::uint32_t>(n, "shard.bfs.frontier");
    st[i].next = dev.alloc<std::uint32_t>(n, "shard.bfs.next");
    st[i].next_count = dev.alloc<std::uint32_t>(1, "shard.bfs.next_count");
  }

  std::vector<graph::NodeId> frontier{source};
  std::vector<std::vector<graph::NodeId>> slices(k);
  std::vector<std::vector<std::uint32_t>> cands(k);
  std::uint32_t cur = 0;

  while (!frontier.empty()) {
    // Partition the frontier by owning shard (contiguous row ranges).
    for (auto& s : slices) s.clear();
    for (const graph::NodeId u : frontier) {
      for (std::size_t i = 0; i < k; ++i) {
        if (u >= sg.shards[i].row_begin && u < sg.shards[i].row_end) {
          slices[i].push_back(u);
          break;
        }
      }
    }

    // Superstep: every owner expands its slice and queues candidates that
    // are new to *its* local level array; cross-device duplicates are
    // resolved by the host merge below.
    const std::uint32_t next_level = cur + 1;
    std::uint64_t total_cands = 0;
    for (std::size_t i = 0; i < k; ++i) {
      cands[i].clear();
      if (slices[i].empty()) continue;
      Shard& sh = sg.shards[i];
      simt::Device& dev = fleet.device(sh.device);
      simt::StreamGuard guard(dev, streams[i]);
      dev.memcpy_h2d(st[i].frontier,
                     std::span<const std::uint32_t>(slices[i]));
      dev.write_scalar(st[i].next_count, 0, 0u);
      const std::uint64_t slice_n = slices[i].size();
      DevState& ds = st[i];
      simt::launch(
          dev, "shard.bfs_expand", simt::GridSpec::dense(slice_n, 256),
          [&](simt::ThreadCtx& t) {
            constexpr simt::Site kF{0, "frontier"};
            constexpr simt::Site kRow{1, "row_offsets"};
            constexpr simt::Site kCol{2, "col_indices"};
            constexpr simt::Site kLvl{3, "level"};
            constexpr simt::Site kMark{4, "level_store"};
            constexpr simt::Site kCnt{5, "next_count"};
            constexpr simt::Site kQ{6, "next_queue"};
            const std::uint64_t gid = t.global_id();
            if (gid >= slice_n) return;
            const std::uint32_t u = t.load(ds.frontier, gid, kF);
            const std::uint32_t beg = t.load(sh.dg.row_offsets, u, kRow);
            const std::uint32_t end = t.load(sh.dg.row_offsets, u + 1, kRow);
            for (std::uint32_t e = beg; e < end; ++e) {
              const std::uint32_t v = t.load(sh.dg.col_indices, e, kCol);
              if (t.load(ds.level, v, kLvl) == graph::kInfinity) {
                t.store(ds.level, v, next_level, kMark);
                const std::uint32_t pos =
                    t.atomic_add(ds.next_count, 0, 1u, kCnt);
                t.store(ds.next, pos, v, kQ);
              }
            }
          });
      const std::uint32_t cnt = dev.read_scalar(st[i].next_count);
      if (cnt > 0) {
        cands[i].resize(cnt);
        dev.memcpy_d2h(std::span<std::uint32_t>(cands[i]), st[i].next);
      }
      total_cands += cnt;
    }

    // Host merge: dedup candidates against the global level array (a vertex
    // reachable from two shards is discovered on both devices) and form the
    // next frontier. Shard order then queue order — deterministic.
    frontier.clear();
    for (std::size_t i = 0; i < k; ++i) {
      for (const std::uint32_t v : cands[i]) {
        if (levels[v] == graph::kInfinity) {
          levels[v] = next_level;
          frontier.push_back(v);
        }
      }
    }

    barrier = max_ready_us(fleet, sg, streams) + merge_cost_us(total_cands);
    sync_to(fleet, sg, streams, barrier);
    ++cur;
    ++run.supersteps;
  }

  for (std::size_t i = 0; i < k; ++i) {
    simt::Device& dev = fleet.device(sg.shards[i].device);
    dev.free(st[i].level);
    dev.free(st[i].frontier);
    dev.free(st[i].next);
    dev.free(st[i].next_count);
  }
  run.finish_us = barrier;
  return run;
}

ShardedRun sharded_cc(simt::Fleet& fleet, ShardedGraph& sg,
                      const std::vector<simt::StreamId>& streams,
                      double not_before_us,
                      std::vector<std::uint32_t>& component,
                      std::uint32_t& num_components) {
  AGG_CHECK(streams.size() == sg.shards.size());
  const std::uint32_t n = sg.num_nodes;
  const std::size_t k = sg.shards.size();
  ShardedRun run;

  double barrier = std::max(not_before_us, max_ready_us(fleet, sg, streams));
  sync_to(fleet, sg, streams, barrier);
  run.start_us = barrier;

  // Each shard solves its local symmetric closure with the resident CC
  // engine; the per-device runs overlap on the modeled clock (one stream per
  // device, all starting at the barrier).
  std::vector<gg::GpuCcResult> results(k);
  for (std::size_t i = 0; i < k; ++i) {
    Shard& sh = sg.shards[i];
    simt::Device& dev = fleet.device(sh.device);
    simt::StreamGuard guard(dev, streams[i]);
    if (!sh.sym_dg) {
      if (sh.sym_csr.num_nodes == 0) sh.sym_csr = graph::symmetrize(sh.csr);
      sh.sym_dg = gg::DeviceGraph::upload(dev, sh.sym_csr,
                                          /*with_weights=*/false);
    }
    rt::AdaptiveOptions opts;
    opts.engine.stream = streams[i];
    results[i] = rt::adaptive_cc(dev, *sh.sym_dg, sh.sym_csr, opts);
  }

  // Host union-find merge: union every vertex with its per-shard label.
  // Roots are kept at the smallest member id, so component[v] = find(v)
  // reproduces the engines' canonical smallest-id labeling exactly.
  std::vector<std::uint32_t> parent(n);
  for (std::uint32_t v = 0; v < n; ++v) parent[v] = v;
  const auto find = [&parent](std::uint32_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];  // path halving
      v = parent[v];
    }
    return v;
  };
  for (const gg::GpuCcResult& r : results) {
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint32_t a = find(v);
      const std::uint32_t b = find(r.component[v]);
      if (a < b) {
        parent[b] = a;
      } else if (b < a) {
        parent[a] = b;
      }
    }
  }
  component.assign(n, 0);
  num_components = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    component[v] = find(v);
    if (component[v] == v) ++num_components;
  }

  barrier = max_ready_us(fleet, sg, streams) +
            merge_cost_us(static_cast<std::uint64_t>(k) * n + n);
  sync_to(fleet, sg, streams, barrier);
  run.finish_us = barrier;
  run.supersteps = 1;
  return run;
}

}  // namespace svc
