#include "service/placement.h"

#include <algorithm>

#include "common/check.h"

namespace svc {

std::uint64_t device_graph_bytes(const graph::Csr& g, bool with_weights) {
  const std::uint64_t n = g.num_nodes;
  const std::uint64_t m = g.num_edges();
  std::uint64_t bytes = (n + 1) * sizeof(std::uint32_t) + m * sizeof(std::uint32_t);
  if (with_weights && g.has_weights()) bytes += m * sizeof(std::uint32_t);
  return bytes;
}

namespace {

std::uint64_t free_bytes(const simt::Device& dev) {
  const std::uint64_t total = dev.props().global_mem_bytes;
  const std::uint64_t used = dev.mem_in_use();
  return used >= total ? 0 : total - used;
}

// Cuts [0, n) into `k` contiguous ranges with ~equal edge counts (prefix-sum
// walk over row offsets). Ranges may be empty when n < k.
std::vector<ShardRange> edge_balanced_cuts(const graph::Csr& g, std::uint32_t k) {
  std::vector<ShardRange> out;
  out.reserve(k);
  const std::uint64_t m = g.num_edges();
  graph::NodeId row = 0;
  for (std::uint32_t s = 0; s < k; ++s) {
    const std::uint64_t target = (m * (s + 1)) / k;  // cumulative edge goal
    ShardRange r;
    r.device = s;
    r.row_begin = row;
    if (s + 1 == k) {
      row = g.num_nodes;  // last shard takes the tail
    } else {
      while (row < g.num_nodes && g.row_offsets[row + 1] <= target) ++row;
    }
    r.row_end = row;
    r.edges = g.row_offsets[r.row_end] - g.row_offsets[r.row_begin];
    out.push_back(r);
  }
  return out;
}

}  // namespace

std::string PlacementPlan::describe() const {
  if (kind == Kind::replicated) {
    std::string s = "replicated x" + std::to_string(replicas.size()) + " (";
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      if (i) s += ' ';
      s += "dev" + std::to_string(replicas[i]);
    }
    return s + ")";
  }
  std::string s = "sharded x" + std::to_string(shards.size()) + " (edges";
  for (const ShardRange& r : shards) s += ' ' + std::to_string(r.edges);
  return s + ")";
}

PlacementPlan plan_placement(const graph::Csr& g, bool with_weights,
                             const simt::Fleet& fleet,
                             const PlacementPolicy& policy) {
  PlacementPlan plan;
  plan.graph_bytes = device_graph_bytes(g, with_weights);
  const double need = static_cast<double>(plan.graph_bytes) * policy.headroom;

  // Devices that can host a full copy, in ordinal order (deterministic).
  std::vector<simt::DeviceIndex> fits;
  for (simt::DeviceIndex d = 0; d < fleet.size(); ++d) {
    if (static_cast<double>(free_bytes(fleet.device(d))) >= need)
      fits.push_back(d);
  }

  if (!fits.empty() || !policy.allow_shard || fleet.size() < 2) {
    plan.kind = PlacementPlan::Kind::replicated;
    std::vector<simt::DeviceIndex> targets = fits;
    if (targets.empty()) {
      // Nothing fits and sharding is unavailable: keep the legacy behavior
      // (place everywhere requested; the upload OOMs like a single device).
      for (simt::DeviceIndex d = 0; d < fleet.size(); ++d) targets.push_back(d);
    }
    std::uint32_t want = policy.replication == 0
                             ? static_cast<std::uint32_t>(targets.size())
                             : policy.replication;
    want = std::min<std::uint32_t>(
        want, static_cast<std::uint32_t>(targets.size()));
    want = std::max<std::uint32_t>(want, 1);
    plan.replicas.assign(targets.begin(), targets.begin() + want);
    return plan;
  }

  // Vertex-cut: the smallest shard count whose every slice fits its device;
  // fall back to one shard per device (the upload then surfaces OOM faults,
  // which degrade per the resilience policy).
  plan.kind = PlacementPlan::Kind::sharded;
  for (std::uint32_t k = 2; k <= fleet.size(); ++k) {
    std::vector<ShardRange> cuts = edge_balanced_cuts(g, k);
    bool ok = true;
    for (const ShardRange& r : cuts) {
      graph::Csr slice = shard_slice(g, r.row_begin, r.row_end);
      // Besides the slice itself (headroom-scaled: traversal state lives
      // next to it), the device must hold the slice's lazy local symmetric
      // closure — cc uploads it on first use. Worst case every slice arc
      // gains its reverse: full-length row offsets plus twice the slice's
      // column bytes. It is resident data, not working set, so no headroom
      // multiplier.
      const std::uint64_t sym_bytes =
          (static_cast<std::uint64_t>(slice.num_nodes) + 1) *
              sizeof(std::uint32_t) +
          2 * r.edges * sizeof(std::uint32_t);
      const double slice_need =
          static_cast<double>(device_graph_bytes(slice, with_weights)) *
              policy.headroom +
          static_cast<double>(sym_bytes);
      if (static_cast<double>(free_bytes(fleet.device(r.device))) < slice_need) {
        ok = false;
        break;
      }
    }
    if (ok || k == fleet.size()) {
      plan.shards = std::move(cuts);
      return plan;
    }
  }
  plan.shards = edge_balanced_cuts(g, fleet.size());
  return plan;
}

graph::Csr shard_slice(const graph::Csr& g, graph::NodeId row_begin,
                       graph::NodeId row_end) {
  AGG_CHECK(row_begin <= row_end && row_end <= g.num_nodes);
  graph::Csr out;
  out.num_nodes = g.num_nodes;
  out.row_offsets.assign(g.num_nodes + 1, 0);
  const std::uint32_t base = g.row_offsets[row_begin];
  const std::uint32_t limit = g.row_offsets[row_end];
  for (graph::NodeId v = row_begin; v < row_end; ++v)
    out.row_offsets[v + 1] = g.row_offsets[v + 1] - base;
  for (graph::NodeId v = row_end; v < g.num_nodes; ++v)
    out.row_offsets[v + 1] = limit - base;
  out.col_indices.assign(g.col_indices.begin() + base,
                         g.col_indices.begin() + limit);
  if (g.has_weights()) {
    out.weights.assign(g.weights.begin() + base, g.weights.begin() + limit);
  }
  return out;
}

}  // namespace svc
