// Cluster-first device configuration (PR-8 API redesign).
//
// Every entry point that used to take a positional (DeviceProps, TimingModel)
// pair — simt::Device, svc::GraphService, adaptive::Session — now takes one
// ClusterSpec describing the whole fleet:
//
//   auto spec = simt::ClusterSpec::homogeneous(4);            // 4x C2070
//   auto one  = simt::ClusterSpec::single(props, tm);         // old behavior
//   simt::ClusterSpec mixed;
//   mixed.add_device(simt::DeviceProps::fermi_c2070())
//        .add_device(simt::DeviceProps::kepler_k20(),
//                    simt::TimingModel::kepler_default(), "k20");
//
// A default-constructed (empty) spec means "one default device", so
// `Session()` / `GraphService(opts)` keep their historical meaning.
//
// Fleet instantiates the spec: N Devices with independent modeled clocks,
// SM counts and memory spaces. Each device is stamped with its ordinal and a
// human label ("dev0", "dev1", ... unless the spec names it) so trace events
// and fault messages are attributable to a device. The fleet makespan is the
// max over member devices — host-side serving timelines are tracked by the
// layers above (GraphService).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "simt/device.h"
#include "simt/device_props.h"
#include "simt/timing_model.h"

namespace simt {

using DeviceIndex = std::uint32_t;

// One member of a cluster: a device model plus its timing model and an
// optional human-readable name (defaults to "dev<ordinal>").
struct DeviceSpec {
  DeviceProps props = DeviceProps::fermi_c2070();
  TimingModel tm = TimingModel::fermi_default();
  std::string name;
};

class ClusterSpec {
 public:
  // Empty spec: entry points treat it as single() — one default C2070.
  ClusterSpec() = default;

  // One device. `single()` is the canonical replacement for the old
  // fully-defaulted (DeviceProps, TimingModel) constructors.
  static ClusterSpec single(const DeviceProps& props = DeviceProps::fermi_c2070(),
                            TimingModel tm = TimingModel::fermi_default()) {
    ClusterSpec spec;
    spec.add_device(props, tm);
    return spec;
  }

  // N identical devices.
  static ClusterSpec homogeneous(std::size_t n,
                                 const DeviceProps& props = DeviceProps::fermi_c2070(),
                                 TimingModel tm = TimingModel::fermi_default()) {
    AGG_CHECK_MSG(n >= 1, "ClusterSpec::homogeneous: need at least one device");
    ClusterSpec spec;
    for (std::size_t i = 0; i < n; ++i) spec.add_device(props, tm);
    return spec;
  }

  // Builder: append one (possibly heterogeneous) device. Returns *this for
  // chaining.
  ClusterSpec& add_device(DeviceSpec spec) {
    devices_.push_back(std::move(spec));
    return *this;
  }
  ClusterSpec& add_device(const DeviceProps& props,
                          TimingModel tm = TimingModel::fermi_default(),
                          std::string name = "") {
    return add_device(DeviceSpec{props, tm, std::move(name)});
  }

  bool empty() const { return devices_.empty(); }
  // Number of devices the spec will instantiate (empty spec counts as 1).
  std::size_t num_devices() const { return devices_.empty() ? 1 : devices_.size(); }
  const std::vector<DeviceSpec>& devices() const { return devices_; }

  // "4x Tesla C2070 (sim)" / "Tesla C2070 (sim) + Tesla K20 (sim)".
  std::string summary() const;

 private:
  std::vector<DeviceSpec> devices_;
};

// The instantiated cluster: owns the Devices. Device addresses are stable for
// the Fleet's lifetime (unique_ptr storage), which the serving layers rely on
// for resident DeviceGraph handles.
class Fleet {
 public:
  explicit Fleet(const ClusterSpec& spec = ClusterSpec());
  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  DeviceIndex size() const { return static_cast<DeviceIndex>(devices_.size()); }
  Device& device(DeviceIndex i) {
    AGG_CHECK(i < devices_.size());
    return *devices_[i];
  }
  const Device& device(DeviceIndex i) const {
    AGG_CHECK(i < devices_.size());
    return *devices_[i];
  }

  // Health roll-up over per-device fault plans.
  bool healthy(DeviceIndex i) const { return device(i).healthy(); }
  DeviceIndex num_healthy() const;
  bool any_healthy() const { return num_healthy() > 0; }

  // End of all issued device work across the fleet: max member makespan.
  double makespan_us() const;

 private:
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace simt
