#include "simt/profiler.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/table.h"

namespace simt {

Profiler::Profiler(Device& dev) : dev_(&dev), previous_(dev.kernel_observer()) {
  dev_->set_kernel_observer([this](const KernelStats& ks) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      Entry& e = entries_[ks.name];
      ++e.launches;
      e.time_us += ks.time_us;
      e.sm_time_us += ks.sm_time_us;
      e.bw_time_us += ks.bw_time_us;
      e.atomic_time_us += ks.atomic_time_us;
      e.transactions += ks.transactions;
      e.atomics += ks.atomics;
      e.lane_work += ks.lane_work;
      e.lockstep_work += ks.lockstep_work;
      e.warps_executed += ks.warps_executed;
      total_us_ += ks.time_us;
    }
    if (previous_) previous_(ks);  // chain: stacked profilers both observe
  });
}

Profiler::~Profiler() { dev_->set_kernel_observer(std::move(previous_)); }

std::map<std::string, Profiler::Entry> Profiler::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

double Profiler::total_time_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_us_;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  total_us_ = 0;
}

const char* Profiler::Entry::bottleneck() const {
  if (bw_time_us >= sm_time_us && bw_time_us >= atomic_time_us) return "bandwidth";
  if (atomic_time_us >= sm_time_us) return "atomics";
  return "compute";
}

std::string Profiler::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Entry*>> sorted;
  sorted.reserve(entries_.size());
  for (const auto& [name, e] : entries_) sorted.emplace_back(name, &e);
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second->time_us > b.second->time_us;
  });

  agg::Table table({"kernel", "launches", "time (ms)", "% total", "SIMD eff",
                    "MB moved", "bound by"});
  for (const auto& [name, e] : sorted) {
    table.add_row({name, agg::Table::fmt_int(e->launches),
                   agg::Table::fmt(e->time_us / 1000.0, 3),
                   agg::Table::fmt(total_us_ > 0 ? 100.0 * e->time_us / total_us_ : 0, 1),
                   agg::Table::fmt(e->simd_efficiency(), 3),
                   agg::Table::fmt(e->transactions * 128.0 / 1e6, 1),
                   e->bottleneck()});
  }
  std::ostringstream os;
  os << table.render() << "total kernel time: " << agg::Table::fmt(total_us_ / 1000.0, 3)
     << " ms\n";
  return os.str();
}

}  // namespace simt
