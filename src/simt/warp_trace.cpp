#include "simt/warp_trace.h"

#include <algorithm>

namespace simt {

WarpCost& WarpCost::operator+=(const WarpCost& o) {
  issue_cycles += o.issue_cycles;
  mem_instrs += o.mem_instrs;
  transactions += o.transactions;
  atomics += o.atomics;
  atomic_steps += o.atomic_steps;
  lane_work += o.lane_work;
  lockstep_work += o.lockstep_work;
  return *this;
}

WarpCost WarpCost::operator*(double k) const {
  WarpCost c = *this;
  c.issue_cycles *= k;
  c.mem_instrs *= k;
  c.transactions *= k;
  c.atomics *= k;
  c.atomic_steps *= k;
  c.lane_work *= k;
  c.lockstep_work *= k;
  return c;
}

void AtomicTally::reset() {
  if (used_ > 0) {
    std::fill(slots_.begin(), slots_.end(), Slot{});
    used_ = 0;
  }
  max_count_ = 0;
  total_ = 0;
}

void AtomicTally::add(std::uint64_t addr, std::uint64_t count) {
  if (used_ * 2 >= slots_.size()) grow();
  // addr 0 is an invalid device address, safe to use as the empty marker.
  AGG_DCHECK(addr != 0);
  std::uint64_t h = addr;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  std::size_t i = h & (slots_.size() - 1);
  while (slots_[i].key != 0 && slots_[i].key != addr) {
    i = (i + 1) & (slots_.size() - 1);
  }
  if (slots_[i].key == 0) {
    slots_[i].key = addr;
    ++used_;
  }
  slots_[i].count += count;
  max_count_ = std::max(max_count_, slots_[i].count);
  total_ += count;
}

void AtomicTally::merge_into(AtomicTally& dst) const {
  if (total_ == 0) return;
  for (const Slot& s : slots_) {
    if (s.key != 0) dst.add(s.key, s.count);
  }
}

void AtomicTally::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  used_ = 0;
  const std::uint64_t keep_max = max_count_;
  const std::uint64_t keep_total = total_;
  for (const Slot& s : old) {
    if (s.key != 0) add(s.key, s.count);
  }
  max_count_ = keep_max;
  total_ = keep_total;
}

void WarpTrace::begin_warp() {
  for (std::uint8_t id : touched_) {
    SiteState& s = sites_[id];
    s.kind = Kind::unused;
    s.lane_steps.fill(0);
    s.lane_miss.fill(0);
    s.lane_hits.fill(0);
    s.last_seg.fill(0);
    s.lane_ops.fill(0);
    s.steps.clear();
    s.atomic_addrs.clear();
  }
  touched_.clear();
  lane_ = 0;
}

WarpTrace::SiteState& WarpTrace::touch(Site site, Kind kind) {
  AGG_DCHECK(site.id < kMaxSites);
  SiteState& s = sites_[site.id];
  if (s.kind == Kind::unused) {
    s.kind = kind;
    touched_.push_back(site.id);
  }
  AGG_DCHECK(s.kind == kind);
  return s;
}

void WarpTrace::on_global(Site site, std::uint64_t addr, std::uint32_t bytes) {
  SiteState& s = touch(site, Kind::global);
  const std::uint32_t k = s.lane_steps[lane_]++;
  if (k >= s.steps.size()) s.steps.resize(k + 1);
  Step& step = s.steps[k];
  const auto seg = static_cast<std::uint64_t>(
      addr / static_cast<std::uint64_t>(tm_->segment_bytes));
  // Line-buffer model of per-thread spatial locality: a lane re-reading the
  // 128 B segment it touched last at this site (e.g. the sequential
  // adjacency scan of thread mapping) hits in L1 and skips the latency step;
  // the lockstep instruction itself is still issued. Because L1 is shared by
  // all resident warps, only part of the stream survives between a lane's
  // own accesses: every stream_refetch_period-th hit refetches the segment
  // (counted against DRAM bandwidth below, but not the latency chain).
  if (s.last_seg[lane_] == seg + 1) {
    ++step.lanes;
    step.bytes += bytes;
    if (static_cast<int>(++s.lane_hits[lane_]) % tm_->stream_refetch_period != 0) {
      return;
    }
    bool refetched = false;
    for (std::uint32_t i = 0; i < step.nsegs; ++i) {
      if (step.segs[i] == seg) {
        refetched = true;
        break;
      }
    }
    if (!refetched && step.nsegs < static_cast<std::uint32_t>(kWarpSize)) {
      step.segs[step.nsegs++] = seg;
    }
    return;
  }
  s.last_seg[lane_] = seg + 1;
  ++s.lane_miss[lane_];
  bool found = false;
  for (std::uint32_t i = 0; i < step.nsegs; ++i) {
    if (step.segs[i] == seg) {
      found = true;
      break;
    }
  }
  if (!found) {
    AGG_DCHECK(step.nsegs < static_cast<std::uint32_t>(kWarpSize));
    step.segs[step.nsegs++] = seg;
  }
  ++step.lanes;
  step.bytes += bytes;
}

void WarpTrace::on_compute(Site site, std::uint64_t ops) {
  SiteState& s = touch(site, Kind::compute);
  s.lane_ops[lane_] += ops;
}

void WarpTrace::on_atomic(Site site, std::uint64_t addr) {
  SiteState& s = touch(site, Kind::atomic);
  ++s.lane_steps[lane_];
  s.atomic_addrs.push_back(addr);
}

void WarpTrace::on_shared(Site site, std::uint32_t word_index) {
  SiteState& s = touch(site, Kind::shared);
  const std::uint32_t k = s.lane_steps[lane_]++;
  if (k >= s.steps.size()) s.steps.resize(k + 1);
  Step& step = s.steps[k];
  // For shared sites, segs[] holds raw word indices (not deduplicated); bank
  // conflicts are derived in finish_warp.
  AGG_DCHECK(step.nsegs < static_cast<std::uint32_t>(kWarpSize));
  step.segs[step.nsegs++] = word_index;
  ++step.lanes;
  step.bytes += 4;
}

WarpCost WarpTrace::finish_warp(AtomicTally& tally) {
  WarpCost cost;
  for (std::uint8_t id : touched_) {
    SiteState& s = sites_[id];
    switch (s.kind) {
      case Kind::compute: {
        std::uint64_t max_ops = 0;
        std::uint64_t sum_ops = 0;
        for (int l = 0; l < kWarpSize; ++l) {
          max_ops = std::max(max_ops, s.lane_ops[l]);
          sum_ops += s.lane_ops[l];
        }
        cost.issue_cycles += static_cast<double>(max_ops);
        cost.lane_work += static_cast<double>(sum_ops);
        cost.lockstep_work += static_cast<double>(kWarpSize * max_ops);
        break;
      }
      case Kind::global: {
        for (const Step& step : s.steps) {
          cost.issue_cycles += tm_->issue_cycles_per_mem_instr +
                               tm_->lsu_cycles_per_transaction * step.nsegs;
          cost.transactions += step.nsegs;
        }
        // The latency chain counts only line-buffer misses (hits are served
        // from L1 within the issue cost), lockstep across lanes.
        std::uint32_t max_miss = 0;
        for (int l = 0; l < kWarpSize; ++l) {
          max_miss = std::max(max_miss, s.lane_miss[l]);
        }
        cost.mem_instrs += static_cast<double>(max_miss);
        break;
      }
      case Kind::atomic: {
        std::uint32_t max_steps = 0;
        for (int l = 0; l < kWarpSize; ++l) {
          max_steps = std::max(max_steps, s.lane_steps[l]);
        }
        cost.issue_cycles +=
            tm_->issue_cycles_per_atomic * static_cast<double>(max_steps);
        cost.atomic_steps += static_cast<double>(max_steps);
        cost.atomics += static_cast<double>(s.atomic_addrs.size());
        for (std::uint64_t addr : s.atomic_addrs) tally.add(addr);
        break;
      }
      case Kind::shared: {
        for (const Step& step : s.steps) {
          // Replays: max accesses that map to one bank; conflict-free = 1.
          std::array<std::uint8_t, 32> bank{};
          std::uint32_t replays = 1;
          for (std::uint32_t i = 0; i < step.nsegs; ++i) {
            const auto b = static_cast<std::uint32_t>(step.segs[i] % 32);
            replays = std::max<std::uint32_t>(replays, ++bank[b]);
          }
          cost.issue_cycles += 1.0 + tm_->shared_replay_cycles * (replays - 1);
        }
        break;
      }
      case Kind::unused:
        break;
    }
  }
  return cost;
}

}  // namespace simt
