#include "simt/fault.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace simt {
namespace {

// splitmix64: the per-op decision hash. Uniform enough for probability
// thresholds and fully determined by its input.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double op_roll(std::uint64_t seed, FaultKind kind, std::uint64_t index) {
  const std::uint64_t h =
      mix64(seed ^ mix64(static_cast<std::uint64_t>(kind) + 1) ^ mix64(index));
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::alloc:
      return "alloc";
    case FaultKind::transfer:
      return "transfer";
    case FaultKind::kernel:
      return "kernel";
  }
  return "?";
}

DeviceFault::DeviceFault(FaultKind kind, std::string op, std::uint64_t op_index,
                         bool permanent, std::string device)
    : kind_(kind),
      op_(std::move(op)),
      op_index_(op_index),
      permanent_(permanent),
      device_(std::move(device)) {
  message_ = (device_.empty() ? std::string() : device_ + ": ") +
             "device fault: " + fault_kind_name(kind_) + " '" + op_ +
             "' at op " + std::to_string(op_index_) +
             (permanent_ ? " (device dead)" : "");
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  const auto trim = [](std::string s) {
    const auto b = s.find_first_not_of(" \t");
    if (b == std::string::npos) return std::string();
    return s.substr(b, s.find_last_not_of(" \t") - b + 1);
  };
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = trim(spec.substr(pos, end - pos));
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    AGG_CHECK_MSG(eq != std::string::npos, "fault-plan items are key=value");
    const std::string key = trim(item.substr(0, eq));
    const std::string value = trim(item.substr(eq + 1));
    char* tail = nullptr;
    if (key == "seed") {
      plan.seed = std::strtoull(value.c_str(), &tail, 10);
    } else if (key == "alloc.p") {
      plan.p_alloc = std::strtod(value.c_str(), &tail);
    } else if (key == "transfer.p") {
      plan.p_transfer = std::strtod(value.c_str(), &tail);
    } else if (key == "kernel.p") {
      plan.p_kernel = std::strtod(value.c_str(), &tail);
    } else if (key == "alloc.at") {
      plan.alloc_at.push_back(std::strtoull(value.c_str(), &tail, 10));
    } else if (key == "transfer.at") {
      plan.transfer_at.push_back(std::strtoull(value.c_str(), &tail, 10));
    } else if (key == "kernel.at") {
      plan.kernel_at.push_back(std::strtoull(value.c_str(), &tail, 10));
    } else if (key == "dead.after") {
      plan.dead_after = std::strtoull(value.c_str(), &tail, 10);
    } else {
      AGG_CHECK_MSG(false, "unknown fault-plan key");
    }
    AGG_CHECK_MSG(tail && *tail == '\0', "malformed fault-plan value");
  }
  AGG_CHECK_MSG(plan.p_alloc >= 0 && plan.p_alloc <= 1 && plan.p_transfer >= 0 &&
                    plan.p_transfer <= 1 && plan.p_kernel >= 0 && plan.p_kernel <= 1,
                "fault probabilities must be in [0, 1]");
  return plan;
}

std::string FaultPlan::summary() const {
  if (empty()) return "none";
  std::string out = "seed=" + std::to_string(seed);
  char buf[64];
  auto prob = [&](const char* name, double p) {
    if (p > 0) {
      std::snprintf(buf, sizeof buf, ",%s.p=%g", name, p);
      out += buf;
    }
  };
  prob("alloc", p_alloc);
  prob("transfer", p_transfer);
  prob("kernel", p_kernel);
  auto indices = [&](const char* name, const std::vector<std::uint64_t>& at) {
    for (const auto i : at) {
      out += ",";
      out += name;
      out += ".at=" + std::to_string(i);
    }
  };
  indices("alloc", alloc_at);
  indices("transfer", transfer_at);
  indices("kernel", kernel_at);
  if (dead_after > 0) out += ",dead.after=" + std::to_string(dead_after);
  return out;
}

FaultInjector::Decision FaultInjector::next(FaultKind kind) {
  Decision d;
  d.op_index = counts_[static_cast<std::size_t>(kind)]++;
  ++total_;
  if (plan_.dead_after > 0 && total_ > plan_.dead_after) dead_ = true;
  if (dead_) {
    d.fail = true;
    d.permanent = true;
    return d;
  }
  const std::vector<std::uint64_t>* at = nullptr;
  double p = 0;
  switch (kind) {
    case FaultKind::alloc:
      at = &plan_.alloc_at;
      p = plan_.p_alloc;
      break;
    case FaultKind::transfer:
      at = &plan_.transfer_at;
      p = plan_.p_transfer;
      break;
    case FaultKind::kernel:
      at = &plan_.kernel_at;
      p = plan_.p_kernel;
      break;
  }
  if (std::find(at->begin(), at->end(), d.op_index) != at->end()) {
    d.fail = true;
  } else if (p > 0 && op_roll(plan_.seed, kind, d.op_index) < p) {
    d.fail = true;
  }
  return d;
}

}  // namespace simt
