#include "simt/exec_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>

namespace simt {
namespace {

// SIMT_THREADS env var, else hardware concurrency. Only consulted when no
// explicit set_threads(n >= 1) override is in effect.
int resolve_auto_threads() {
  if (const char* env = std::getenv("SIMT_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 512) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

}  // namespace

struct ExecPool::State {
  std::mutex m;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::vector<std::thread> workers;

  int explicit_threads = 0;  // 0 = auto (env / hardware)
  bool stop = false;

  // Current job; workers detect a new one by the sequence number.
  std::uint64_t seq = 0;
  std::atomic<std::uint64_t> cursor{0};
  std::uint64_t count = 0;
  void* env = nullptr;
  ChunkFn fn = nullptr;
  int running = 0;
};

ExecPool& ExecPool::instance() {
  static ExecPool pool;
  return pool;
}

void ExecPool::set_threads(int n) {
  ExecPool& p = instance();
  if (!p.state_) p.state_ = std::make_unique<State>();
  std::lock_guard<std::mutex> lk(p.state_->m);
  p.state_->explicit_threads = n >= 1 ? n : 0;
}

int ExecPool::threads() {
  ExecPool& p = instance();
  if (!p.state_) p.state_ = std::make_unique<State>();
  int explicit_threads;
  {
    std::lock_guard<std::mutex> lk(p.state_->m);
    explicit_threads = p.state_->explicit_threads;
  }
  return explicit_threads >= 1 ? explicit_threads : resolve_auto_threads();
}

void ExecPool::prepare(int workers, const TimingModel& tm) {
  while (scratch_.size() < static_cast<std::size_t>(workers)) {
    scratch_.push_back(std::make_unique<WorkerScratch>());
  }
  for (int w = 0; w < workers; ++w) {
    scratch(w).trace.rebind(tm);
    scratch(w).tally.reset();
  }
  prepared_workers_ = workers;
}

AtomicTally& ExecPool::merged_tally() {
  AtomicTally& dst = scratch(0).tally;
  for (int w = 1; w < prepared_workers_; ++w) {
    scratch(w).tally.merge_into(dst);
  }
  return dst;
}

void ExecPool::worker_loop(int worker) {
  State& st = *state_;
  WorkerScratch& ws = scratch(worker + 1);
  std::uint64_t seen = 0;
  for (;;) {
    void* env;
    ChunkFn fn;
    std::uint64_t count;
    {
      std::unique_lock<std::mutex> lk(st.m);
      st.cv_work.wait(lk, [&] { return st.stop || st.seq != seen; });
      if (st.stop) return;
      seen = st.seq;
      env = st.env;
      fn = st.fn;
      count = st.count;
    }
    for (;;) {
      const std::uint64_t begin =
          st.cursor.fetch_add(kChunkBlocks, std::memory_order_relaxed);
      if (begin >= count) break;
      fn(env, ws, begin, std::min<std::uint64_t>(begin + kChunkBlocks, count));
    }
    {
      std::lock_guard<std::mutex> lk(st.m);
      if (--st.running == 0) st.cv_done.notify_one();
    }
  }
}

void ExecPool::dispatch(std::uint64_t count, void* env, ChunkFn fn) {
  State& st = *state_;
  const int target_workers = prepared_workers_ - 1;
  if (static_cast<int>(st.workers.size()) != target_workers) {
    stop_workers();
    st.workers.reserve(static_cast<std::size_t>(target_workers));
    for (int w = 0; w < target_workers; ++w) {
      st.workers.emplace_back([this, w] { worker_loop(w); });
    }
  }
  {
    std::lock_guard<std::mutex> lk(st.m);
    st.cursor.store(0, std::memory_order_relaxed);
    st.count = count;
    st.env = env;
    st.fn = fn;
    st.running = static_cast<int>(st.workers.size());
    ++st.seq;
    st.cv_work.notify_all();
  }
  // The calling thread is worker 0.
  WorkerScratch& ws = scratch(0);
  for (;;) {
    const std::uint64_t begin =
        st.cursor.fetch_add(kChunkBlocks, std::memory_order_relaxed);
    if (begin >= count) break;
    fn(env, ws, begin, std::min<std::uint64_t>(begin + kChunkBlocks, count));
  }
  std::unique_lock<std::mutex> lk(st.m);
  st.cv_done.wait(lk, [&] { return st.running == 0; });
}

void ExecPool::stop_workers() {
  State& st = *state_;
  if (st.workers.empty()) return;
  {
    std::lock_guard<std::mutex> lk(st.m);
    st.stop = true;
    st.cv_work.notify_all();
  }
  for (std::thread& t : st.workers) t.join();
  st.workers.clear();
  std::lock_guard<std::mutex> lk(st.m);
  st.stop = false;
}

ExecPool::~ExecPool() {
  if (state_) stop_workers();
}

}  // namespace simt
