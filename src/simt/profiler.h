// Per-kernel profiling: aggregates the KernelStats stream of a Device into a
// by-kernel-name report (launch counts, time, divergence, memory traffic,
// bottleneck classification). Attach before a run, render afterwards:
//
//   simt::Profiler prof(dev);
//   ... run algorithms ...
//   std::puts(prof.report().c_str());
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "simt/device.h"

namespace simt {

class Profiler {
 public:
  // Installs itself as the device's kernel observer. Detaches (and restores
  // nothing) on destruction; only one profiler per device at a time.
  explicit Profiler(Device& dev);
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  struct Entry {
    std::uint64_t launches = 0;
    double time_us = 0;
    double sm_time_us = 0;
    double bw_time_us = 0;
    double atomic_time_us = 0;
    double transactions = 0;
    double atomics = 0;
    double lane_work = 0;
    double lockstep_work = 0;
    std::uint64_t warps_executed = 0;

    double simd_efficiency() const {
      return lockstep_work > 0 ? lane_work / lockstep_work : 1.0;
    }
    // Which time component bound the kernel most often (by accumulated us).
    const char* bottleneck() const;
  };

  const std::map<std::string, Entry>& entries() const { return entries_; }
  double total_time_us() const { return total_us_; }
  void reset();

  // Table sorted by accumulated time, descending.
  std::string report() const;

 private:
  Device* dev_;
  std::map<std::string, Entry> entries_;
  double total_us_ = 0;
};

}  // namespace simt
