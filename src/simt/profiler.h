// Per-kernel profiling: aggregates the KernelStats stream of a Device into a
// by-kernel-name report (launch counts, time, divergence, memory traffic,
// bottleneck classification). Attach before a run, render afterwards:
//
//   simt::Profiler prof(dev);
//   ... run algorithms ...
//   std::puts(prof.report().c_str());
//
// Pooled-launch safety: the observer fires on the thread that called
// launch()/launch_phased(), after the pool's per-block results have been
// reduced — never on an ExecPool worker — so the aggregation maps are
// identical for any SIMT_THREADS value. A mutex still guards the entries so
// report()/entries() may be read while another host thread drives the device.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "simt/device.h"

namespace simt {

class Profiler {
 public:
  // Installs itself as the device's kernel observer, chaining to (and on
  // destruction restoring) any observer that was already installed.
  explicit Profiler(Device& dev);
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  struct Entry {
    std::uint64_t launches = 0;
    double time_us = 0;
    double sm_time_us = 0;
    double bw_time_us = 0;
    double atomic_time_us = 0;
    double transactions = 0;
    double atomics = 0;
    double lane_work = 0;
    double lockstep_work = 0;
    std::uint64_t warps_executed = 0;

    double simd_efficiency() const {
      return lockstep_work > 0 ? lane_work / lockstep_work : 1.0;
    }
    // Which time component bound the kernel most often (by accumulated us).
    const char* bottleneck() const;
  };

  // Copies under the lock so callers can inspect while the device runs.
  std::map<std::string, Entry> entries() const;
  double total_time_us() const;
  void reset();

  // Table sorted by accumulated time, descending.
  std::string report() const;

 private:
  Device* dev_;
  Device::KernelObserver previous_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  double total_us_ = 0;
};

}  // namespace simt
