// Simulated streams (cf. CUDA streams): independent in-order operation
// queues whose work interleaves on the modeled clock.
//
// Model (see DESIGN.md, "Serving layer"):
//
//  * The device owns two engine timelines — a *compute engine* (the SMs) and
//    a *copy engine* (the PCIe DMA unit). A kernel occupies the compute
//    engine for its modeled duration; a transfer occupies the copy engine.
//    Kernels from different streams therefore time-share the SMs at kernel
//    granularity (round-robin through the backfill scheduler below) while
//    transfers overlap compute — the two overlap sources a real device with
//    one copy engine offers.
//  * Operations within one stream are totally ordered: an op starts no
//    earlier than the completion of the stream's previous op.
//  * Engine occupancy uses *backfill*: an op is placed into the earliest
//    idle gap of its engine at or after the stream's ready time. Placement
//    depends only on the (deterministic, host-sequential) issue order, never
//    on host threads, so modeled timelines are identical for any
//    --sim-threads value.
//  * StreamId 0 is the default stream and keeps the legacy fully-serialized
//    semantics: every op starts at the device clock and advances it. Code
//    that never creates a stream behaves bit-identically to before streams
//    existed.
#pragma once

#include <cstdint>
#include <vector>

namespace simt {

// 0 = default stream (legacy serialized clock); 1.. = created streams.
using StreamId = std::uint32_t;

// Busy-interval timeline of one device engine. Intervals are kept sorted,
// disjoint and merged-when-touching, so back-to-back placements collapse and
// the vector stays short.
class EngineTimeline {
 public:
  // Earliest start >= t0 such that [start, start + dur) fits into an idle
  // gap; marks the chosen interval busy and returns the start time.
  double place(double t0, double dur);

  // Marks [start, end) busy unconditionally (default-stream ops, which are
  // placed by the legacy serialized clock, still occupy their engine so
  // stream ops cannot be backfilled underneath them).
  void mark(double start, double end);

  // End of the last busy interval (0 when idle forever).
  double busy_until() const { return busy_.empty() ? 0.0 : busy_.back().end; }

  void clear() { busy_.clear(); }

 private:
  struct Interval {
    double start;
    double end;
  };
  void insert(double start, double end);
  std::vector<Interval> busy_;
};

}  // namespace simt
