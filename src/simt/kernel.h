// Kernel-side programming model: ThreadCtx is the device handle a kernel body
// receives per thread; every architectural interaction (global loads/stores,
// atomics, arithmetic work, shared memory) goes through it so the warp tracer
// can observe the access pattern.
//
// Execution semantics (documented contract):
//  * lanes of a warp run one after another in lane order, warps in warp
//    order; blocks run in block order on one host thread unless the launch
//    declares LaunchPolicy::parallel (launch.h), in which case blocks of the
//    same kernel may execute concurrently on the host worker pool;
//  * there is no intra-kernel barrier; kernels that need block-wide
//    synchronization are written as *phased* kernels (launch_phased), where
//    each phase boundary is a __syncthreads() equivalent;
//  * atomics are sequentially consistent under the serial order above; under
//    a parallel launch they are real std::atomic_ref operations, so a kernel
//    may only opt in when its functional result does not depend on the
//    inter-block order in which atomics land (see LaunchPolicy).
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/check.h"
#include "simt/memory.h"
#include "simt/warp_trace.h"

namespace simt {

// Per-block shared memory arena; slot-addressed so every thread of the block
// resolves the same allocation.
class BlockSharedState {
 public:
  void reset(std::uint64_t capacity_bytes) {
    capacity_ = capacity_bytes;
    used_ = 0;
    slots_.clear();
    if (storage_.size() < capacity_bytes) storage_.resize(capacity_bytes);
  }

  // Returns the byte offset of `slot`, allocating it on first request.
  std::size_t acquire(std::uint32_t slot, std::size_t bytes) {
    if (slot >= slots_.size()) slots_.resize(slot + 1, kUnallocated);
    if (slots_[slot] == kUnallocated) {
      AGG_CHECK_MSG(used_ + bytes <= capacity_, "shared memory overflow");
      slots_[slot] = used_;
      used_ += (bytes + 3) / 4 * 4;  // 4-byte banked words
    }
    return slots_[slot];
  }

  std::byte* data() { return storage_.data(); }

 private:
  static constexpr std::size_t kUnallocated = static_cast<std::size_t>(-1);
  std::vector<std::byte> storage_;
  std::vector<std::size_t> slots_;
  std::size_t used_ = 0;
  std::uint64_t capacity_ = 0;
};

// Handle to a shared-memory allocation; word_base positions it for the
// bank-conflict model.
template <typename T>
struct SharedArray {
  T* data = nullptr;
  std::uint32_t word_base = 0;
  std::size_t count = 0;
};

class ThreadCtx {
 public:
  // `concurrent` marks a block running on the parallel launch path: other
  // blocks of the same kernel may touch the same device buffers from other
  // host threads, so every global access goes through std::atomic_ref.
  ThreadCtx(WarpTrace& trace, BlockSharedState* shared, std::uint64_t block_idx,
            std::uint32_t tpb, std::uint64_t grid_blocks, bool concurrent = false)
      : trace_(&trace),
        shared_(shared),
        block_idx_(block_idx),
        tpb_(tpb),
        grid_blocks_(grid_blocks),
        concurrent_(concurrent) {}

  void bind_lane(std::uint32_t thread_in_block) {
    thread_in_block_ = thread_in_block;
    trace_->set_lane(static_cast<int>(thread_in_block % kWarpSize));
  }

  std::uint64_t block_idx() const { return block_idx_; }
  std::uint32_t thread_in_block() const { return thread_in_block_; }
  std::uint32_t block_dim() const { return tpb_; }
  std::uint64_t grid_blocks() const { return grid_blocks_; }
  std::uint64_t global_id() const { return block_idx_ * tpb_ + thread_in_block_; }

  // ---- global memory ----
  template <typename T>
  T load(const DeviceBuffer<T>& b, std::size_t i, Site site) {
    AGG_DCHECK(i < b.size());
    trace_->on_global(site, b.addr_of(i), sizeof(T));
    if constexpr (std::is_arithmetic_v<T>) {
      if (concurrent_) {
        // std::atomic_ref<const T> is ill-formed in C++20; the cell itself is
        // mutable backing storage, only the buffer handle is const here.
        return std::atomic_ref<T>(const_cast<T&>(b.host_view()[i]))
            .load(std::memory_order_relaxed);
      }
    }
    return b.host_view()[i];
  }

  template <typename T>
  void store(DeviceBuffer<T>& b, std::size_t i, T v, Site site) {
    AGG_DCHECK(i < b.size());
    trace_->on_global(site, b.addr_of(i), sizeof(T));
    if constexpr (std::is_arithmetic_v<T>) {
      if (concurrent_) {
        std::atomic_ref<T>(b.host_view()[i]).store(v, std::memory_order_relaxed);
        return;
      }
    }
    b.host_view()[i] = v;
  }

  // ---- atomics (return the previous value, CUDA-style) ----
  template <typename T>
  T atomic_min(DeviceBuffer<T>& b, std::size_t i, T v, Site site) {
    AGG_DCHECK(i < b.size());
    trace_->on_atomic(site, b.addr_of(i));
    if constexpr (std::is_arithmetic_v<T>) {
      if (concurrent_) {
        std::atomic_ref<T> cell(b.host_view()[i]);
        T old = cell.load(std::memory_order_relaxed);
        while (v < old &&
               !cell.compare_exchange_weak(old, v, std::memory_order_relaxed)) {
        }
        return old;
      }
    }
    T& cell = b.host_view()[i];
    const T old = cell;
    if (v < cell) cell = v;
    return old;
  }

  template <typename T>
  T atomic_add(DeviceBuffer<T>& b, std::size_t i, T v, Site site) {
    AGG_DCHECK(i < b.size());
    trace_->on_atomic(site, b.addr_of(i));
    if constexpr (std::is_integral_v<T>) {
      if (concurrent_) {
        return std::atomic_ref<T>(b.host_view()[i])
            .fetch_add(v, std::memory_order_relaxed);
      }
    } else if constexpr (std::is_floating_point_v<T>) {
      if (concurrent_) {
        std::atomic_ref<T> cell(b.host_view()[i]);
        T old = cell.load(std::memory_order_relaxed);
        while (!cell.compare_exchange_weak(old, static_cast<T>(old + v),
                                           std::memory_order_relaxed)) {
        }
        return old;
      }
    }
    T& cell = b.host_view()[i];
    const T old = cell;
    cell = static_cast<T>(cell + v);
    return old;
  }

  template <typename T>
  T atomic_cas(DeviceBuffer<T>& b, std::size_t i, T expected, T desired, Site site) {
    AGG_DCHECK(i < b.size());
    trace_->on_atomic(site, b.addr_of(i));
    if constexpr (std::is_arithmetic_v<T>) {
      if (concurrent_) {
        T old = expected;
        std::atomic_ref<T>(b.host_view()[i])
            .compare_exchange_strong(old, desired, std::memory_order_relaxed);
        return old;
      }
    }
    T& cell = b.host_view()[i];
    const T old = cell;
    if (cell == expected) cell = desired;
    return old;
  }

  // ---- arithmetic / control work (ops are cycles on a CUDA core) ----
  void compute(std::uint64_t ops, Site site) { trace_->on_compute(site, ops); }

  // ---- shared memory ----
  template <typename T>
  SharedArray<T> shared_alloc(std::uint32_t slot, std::size_t count) {
    AGG_CHECK_MSG(shared_ != nullptr, "shared memory requires launch_phased");
    const std::size_t off = shared_->acquire(slot, count * sizeof(T));
    return SharedArray<T>{reinterpret_cast<T*>(shared_->data() + off),
                          static_cast<std::uint32_t>(off / 4), count};
  }

  template <typename T>
  T shared_load(const SharedArray<T>& a, std::size_t i, Site site) {
    AGG_DCHECK(i < a.count);
    trace_->on_shared(site, a.word_base + static_cast<std::uint32_t>(i * sizeof(T) / 4));
    return a.data[i];
  }

  template <typename T>
  void shared_store(SharedArray<T>& a, std::size_t i, T v, Site site) {
    AGG_DCHECK(i < a.count);
    trace_->on_shared(site, a.word_base + static_cast<std::uint32_t>(i * sizeof(T) / 4));
    a.data[i] = v;
  }

 private:
  WarpTrace* trace_;
  BlockSharedState* shared_;
  std::uint64_t block_idx_;
  std::uint32_t tpb_;
  std::uint64_t grid_blocks_;
  bool concurrent_;
  std::uint32_t thread_in_block_ = 0;
};

// Cost of evaluating the working-set predicate for threads/blocks that turn
// out to be inactive (e.g. `if (!bitmap[id]) return;`). The launcher charges
// this analytically for warps it does not execute, and records the same
// access for the inactive lanes of partially-active warps.
struct Predicate {
  std::uint64_t base_addr = 0;  // 0 = no predicate (dense launch)
  std::uint32_t stride = 0;     // bytes between consecutive ids; 0 = broadcast
  std::uint32_t id_shift = 0;   // element id = thread id >> id_shift
                                // (warp-centric mapping: 5)
  double ops = 2.0;             // branch + index arithmetic

  bool enabled() const { return base_addr != 0; }
};

// Reserved site ids for launcher-recorded predicate accesses; kernel bodies
// may use ids 0..17.
inline constexpr Site kPredicateSite{19, "ws-predicate"};
inline constexpr Site kPredicateOpsSite{18, "ws-predicate-ops"};

}  // namespace simt
