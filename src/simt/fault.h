// Deterministic fault injection for the simulated device.
//
// A FaultPlan describes which device operations fail: per-kind probabilities
// (decided by a hash of the plan seed and the op's per-kind index, so a plan
// replays bit-identically at any --sim-threads value), explicit op indices,
// and an optional permanent device death after N total ops. The Device
// consults its installed plan on every allocation, transfer and kernel
// launch; an injected failure surfaces as a DeviceFault exception, which the
// layers above translate into the adaptive::ErrorCode taxonomy instead of
// aborting the process.
//
// Determinism contract: every fault decision is a pure function of
// (plan.seed, kind, per-kind op index). All decision sites run on the host
// API thread (the same contract as Device accounting), so op indices — and
// therefore the whole failure schedule — are independent of the worker count
// of the parallel launch path.
#pragma once

#include <array>
#include <cstdint>
#include <exception>
#include <string>
#include <vector>

namespace simt {

enum class FaultKind : std::uint8_t { alloc, transfer, kernel };
const char* fault_kind_name(FaultKind kind);

// Thrown by Device when an operation fails — injected by a FaultPlan or a
// genuine simulated-memory exhaustion. `permanent` marks a dead device:
// every subsequent operation will fail too, so callers should stop
// retrying and fall back to a host execution path.
class DeviceFault : public std::exception {
 public:
  // `device` is the throwing device's fleet label ("dev2"); it prefixes the
  // what() message so fleet faults are attributable without extra plumbing.
  DeviceFault(FaultKind kind, std::string op, std::uint64_t op_index,
              bool permanent, std::string device = "");

  const char* what() const noexcept override { return message_.c_str(); }

  FaultKind kind() const { return kind_; }
  const std::string& op() const { return op_; }
  std::uint64_t op_index() const { return op_index_; }
  bool permanent() const { return permanent_; }
  const std::string& device() const { return device_; }

 private:
  FaultKind kind_;
  std::string op_;
  std::uint64_t op_index_ = 0;
  bool permanent_ = false;
  std::string device_;
  std::string message_;
};

struct FaultPlan {
  std::uint64_t seed = 2013;
  // Per-operation failure probabilities, decided independently per op.
  double p_alloc = 0;
  double p_transfer = 0;
  double p_kernel = 0;
  // Explicit per-kind op indices that must fail (0-based, in issue order).
  std::vector<std::uint64_t> alloc_at;
  std::vector<std::uint64_t> transfer_at;
  std::vector<std::uint64_t> kernel_at;
  // Total device ops (any kind) after which the device dies permanently:
  // every later op fails with permanent = true. 0 = never.
  std::uint64_t dead_after = 0;

  bool empty() const {
    return p_alloc == 0 && p_transfer == 0 && p_kernel == 0 &&
           alloc_at.empty() && transfer_at.empty() && kernel_at.empty() &&
           dead_after == 0;
  }

  // Spec grammar (the CLI's --fault-plan): comma-separated key=value pairs.
  //   seed=N            decision seed (default 2013)
  //   alloc.p=F         per-allocation failure probability
  //   transfer.p=F      per-transfer failure probability
  //   kernel.p=F        per-launch failure probability
  //   alloc.at=N        fail the N-th allocation (repeatable)
  //   transfer.at=N     fail the N-th transfer (repeatable)
  //   kernel.at=N       fail the N-th launch (repeatable)
  //   dead.after=N      device dies permanently after N total ops
  // Aborts (AGG_CHECK) on a malformed spec: plans come from trusted
  // experiment scripts, not user data.
  static FaultPlan parse(const std::string& spec);

  // One-line human-readable echo of the plan (CLI, bench headers).
  std::string summary() const;
};

// Per-device injection state: per-kind op counters plus the installed plan.
class FaultInjector {
 public:
  void install(FaultPlan plan) {
    plan_ = std::move(plan);
    counts_ = {};
    total_ = 0;
    dead_ = false;
  }

  bool armed() const { return !plan_.empty(); }
  bool device_dead() const { return dead_; }
  const FaultPlan& plan() const { return plan_; }

  struct Decision {
    bool fail = false;
    bool permanent = false;
    std::uint64_t op_index = 0;  // per-kind index of the op just decided
  };

  // Decides the fate of the next op of `kind`; advances the per-kind and
  // total counters either way.
  Decision next(FaultKind kind);

 private:
  FaultPlan plan_;
  std::array<std::uint64_t, 3> counts_{};  // indexed by FaultKind
  std::uint64_t total_ = 0;
  bool dead_ = false;
};

}  // namespace simt
