// Architectural parameters of the simulated GPU.
//
// The default profile models the NVIDIA Tesla C2070 (Fermi GF100) used in the
// paper's evaluation: 14 streaming multiprocessors x 32 CUDA cores, 1.15 GHz,
// 144 GB/s GDDR5, warp size 32. Figures come from the paper (Sec. VII) and
// NVIDIA's public Fermi documentation.
#pragma once

#include <cstdint>
#include <string>

namespace simt {

inline constexpr int kWarpSize = 32;

struct DeviceProps {
  std::string name = "Tesla C2070 (simulated)";
  int num_sms = 14;
  int cores_per_sm = 32;
  double clock_ghz = 1.15;            // SM clock; 1 warp-instruction issued per cycle
  int max_threads_per_block = 1024;
  int max_resident_threads_per_sm = 1536;
  int max_resident_blocks_per_sm = 8;
  std::uint64_t global_mem_bytes = 6ull << 30;
  double dram_gbps = 144.0;           // global memory bandwidth
  double pcie_gbps = 6.0;             // effective host<->device bandwidth
  std::uint64_t shared_mem_per_block = 48u << 10;
  int shared_banks = 32;

  // Max resident blocks for a given block size (occupancy).
  int resident_blocks(std::uint32_t threads_per_block) const;

  // Named profiles.
  static const DeviceProps& fermi_c2070();
  // GeForce GTX 580: the larger Fermi (16 SMs, higher clock and bandwidth).
  static const DeviceProps& fermi_gtx580();
  // Tesla K20 (Kepler GK110): more SMs, quad-issue schedulers, fast atomics
  // (pair with TimingModel::kepler_default()).
  static const DeviceProps& kepler_k20();
  // A deliberately tiny device (2 SMs, 2 resident blocks) used by unit tests
  // so that scheduling corner cases (waves, partial warps) are easy to reason
  // about by hand.
  static const DeviceProps& test_tiny();
};

// Cost constants of the timing model. All values are in SM cycles unless
// suffixed otherwise. They are deliberately few in number and first-order:
// the model's purpose is to preserve the *relative* behaviour of the kernel
// variants (divergence, coalescing, atomic serialization, occupancy), not to
// predict absolute Fermi timings.
struct TimingModel {
  double issue_cycles_per_mem_instr = 4.0;   // issue + address generation
  double lsu_cycles_per_transaction = 1.0;   // LSU occupancy per 128 B segment
  double issue_cycles_per_atomic = 4.0;
  double mem_latency_cycles = 400.0;         // global load-use latency
  double atomic_latency_cycles = 400.0;      // atomic round-trip latency
  double mem_level_parallelism = 4.0;        // overlapping loads per warp
  double atomic_serial_cycles = 4.0;         // per-op throughput on one address
                                             // (Fermi L2 contended atomics)
  double block_dispatch_cycles = 2.0;        // GigaThread block scheduling cost
                                             // (amortized; empty blocks stream)
  double segment_bytes = 128.0;              // coalescing granularity
  // L1 is shared by every resident warp, so a thread's sequential stream is
  // periodically evicted between its own accesses: every `stream_refetch`-th
  // line-buffer hit refetches the segment (DRAM bandwidth, not latency).
  int stream_refetch_period = 2;
  double launch_overhead_us = 4.0;           // per kernel launch
  double transfer_latency_us = 8.0;          // per cudaMemcpy
  double shared_replay_cycles = 1.0;         // per extra bank-conflict replay
  double warps_issued_per_cycle = 1.0;       // SM scheduler issue width

  static TimingModel fermi_default() { return {}; }
  // Kepler-generation constants: wider issue, an order of magnitude faster
  // same-address atomics, slightly lower memory latency.
  static TimingModel kepler_default() {
    TimingModel tm;
    tm.warps_issued_per_cycle = 2.0;
    tm.atomic_serial_cycles = 1.0;
    tm.mem_latency_cycles = 320.0;
    tm.atomic_latency_cycles = 320.0;
    return tm;
  }
};

}  // namespace simt
