#include "simt/launch.h"

#include <cmath>

namespace simt::detail {

WarpCost predicate_warp_cost(const TimingModel& tm, const Predicate& pred,
                             bool broadcast) {
  WarpCost wc;
  if (!pred.enabled()) {
    // No working-set predicate: an out-of-work warp just evaluates the grid
    // bound check and exits.
    wc.issue_cycles = 2.0;
    wc.lane_work = 2.0 * kWarpSize;
    wc.lockstep_work = 2.0 * kWarpSize;
    return wc;
  }
  double transactions;
  if (broadcast || pred.stride == 0) {
    // Block-mapped predicate: all lanes read the same element — one segment.
    transactions = 1.0;
  } else {
    transactions = std::ceil(static_cast<double>(kWarpSize) * pred.stride /
                             tm.segment_bytes);
  }
  wc.issue_cycles = pred.ops + tm.issue_cycles_per_mem_instr +
                    tm.lsu_cycles_per_transaction * transactions;
  wc.mem_instrs = 1;
  wc.transactions = transactions;
  wc.lane_work = pred.ops * kWarpSize;
  wc.lockstep_work = pred.ops * kWarpSize;
  return wc;
}

}  // namespace simt::detail
